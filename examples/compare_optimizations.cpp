// Scenario: you applied a fix (here: the botsspar bmod loop interchange)
// and want the grain-level verdict, not just wall-clock. compare_runs()
// matches grains by schedule-independent id and diffs the problem views per
// source definition — the paper's re-profile-and-compare loop in one call.
#include <cstdio>

#include "analysis/compare.hpp"
#include "apps/sparselu.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

using namespace gg;

namespace {

struct RunPair {
  Trace trace;
  Analysis analysis;
};

RunPair run_botsspar(bool interchange) {
  sim::Capture cap;
  sim::CaptureRegionEngine ce(cap);
  apps::SparseLuParams p;
  p.blocks = 16;
  p.block_size = 24;
  p.interchange = interchange;
  const sim::Program prog =
      cap.run("359.botsspar", apps::sparselu_program(ce, p));
  sim::SimOptions o;  // 48 cores, memory model on
  RunPair r{sim::simulate(prog, o), {}};
  // A 1-core baseline enables the work-deviation view in both analyses.
  sim::SimOptions o1 = o;
  o1.num_cores = 1;
  static GrainTable baseline;  // outlives the analyses below
  baseline = GrainTable::build(sim::simulate(prog, o1));
  AnalysisOptions ao;
  ao.baseline = &baseline;
  ProblemThresholds th = ProblemThresholds::defaults(48, Topology::opteron48());
  th.work_deviation_max = 1.2;
  ao.thresholds = th;
  r.analysis = analyze(r.trace, Topology::opteron48(), ao);
  return r;
}

}  // namespace

int main() {
  std::printf("profiling 359.botsspar before and after the bmod loop "
              "interchange...\n\n");
  const RunPair before = run_botsspar(false);
  const RunPair after = run_botsspar(true);
  const Comparison c =
      compare_runs(before.trace, before.analysis, after.trace, after.analysis);
  std::printf("%s", render_comparison(c).c_str());
  std::printf("\nThe per-definition rows show the fix hit exactly "
              "sparselu.c:246(bmod) — the culprit the grain graph "
              "pin-pointed in §4.3.2.\n");
  return 0;
}
