// Scenario (paper §4.3.1): a divide-and-conquer program is load-balanced
// according to every thread-level tool, yet scales poorly. Per-grain work
// deviation against a 1-core baseline exposes work inflation; round-robin
// NUMA page placement fixes it.
//
// This is the Sort workflow end-to-end: capture once, simulate at 1 and 48
// cores, match grains by schedule-independent id, count inflated grains,
// apply the placement fix, and re-measure.
#include <cstdio>

#include "analysis/report.hpp"
#include "apps/sort.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

using namespace gg;

namespace {

struct Measured {
  double inflated_percent = 0.0;
  TimeNs makespan = 0;
};

Measured measure(front::PagePlacement placement) {
  sim::Capture cap;
  sim::CaptureRegionEngine eng(cap);
  apps::SortParams p;
  p.num_elements = 1 << 20;
  p.quick_cutoff = 1 << 14;
  p.merge_cutoff = 1 << 14;
  p.placement = placement;
  const sim::Program prog = cap.run("sort", apps::sort_program(eng, p));

  sim::SimOptions one;
  one.num_cores = 1;
  const GrainTable baseline = GrainTable::build(sim::simulate(prog, one));

  sim::SimOptions full;  // 48 cores
  const Trace trace = sim::simulate(prog, full);
  AnalysisOptions ao;
  ao.baseline = &baseline;
  ProblemThresholds th = ProblemThresholds::defaults(48, Topology::opteron48());
  th.work_deviation_max = 1.2;  // inspect mild inflation, like the paper
  ao.thresholds = th;
  const Analysis a = analyze(trace, Topology::opteron48(), ao);
  return Measured{
      a.problems[static_cast<size_t>(Problem::WorkInflation)].flagged_percent,
      trace.makespan()};
}

}  // namespace

int main() {
  std::printf("== first-touch placement (the default) ==\n");
  const Measured before = measure(front::PagePlacement::FirstTouch);
  std::printf("48-core makespan %.2fms; %.1f%% of grains work-inflated "
              "(execution time grew vs the same grain on 1 core)\n\n",
              static_cast<double>(before.makespan) / 1e6,
              before.inflated_percent);

  std::printf("== round-robin page distribution across NUMA nodes ==\n");
  const Measured after = measure(front::PagePlacement::RoundRobin);
  std::printf("48-core makespan %.2fms; %.1f%% of grains work-inflated\n\n",
              static_cast<double>(after.makespan) / 1e6,
              after.inflated_percent);

  std::printf("The thread-level view said 'load is balanced' in both runs — "
              "only per-grain work deviation, computable because grain ids "
              "are schedule-independent, shows why the first run was slow.\n");
  return 0;
}
