// Scenario (paper §4.3.4): a dynamically scheduled loop is irreparably
// imbalanced — a few iterations dwarf the rest. Instead of fighting the
// imbalance, trim resources: bin-pack the observed chunk durations to find
// the smallest team that retains the makespan, then set num_threads.
//
// This is the Freqmine FPGF workflow, with our bin-packer replacing the
// paper's Gecode model.
#include <cstdio>
#include <vector>

#include "analysis/binpack.hpp"
#include "apps/freqmine.hpp"
#include "metrics/metrics.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

using namespace gg;

namespace {

Trace run_freqmine(int fpgf_threads) {
  sim::Capture cap;
  sim::CaptureRegionEngine eng(cap);
  apps::FreqmineParams p;
  p.fpgf_threads = fpgf_threads;
  const sim::Program prog =
      cap.run("freqmine", apps::freqmine_program(eng, p));
  sim::SimOptions o;  // 48 cores
  return sim::simulate(prog, o);
}

}  // namespace

int main() {
  std::printf("== step 1: profile the loop on the full machine ==\n");
  const Trace full = run_freqmine(0);
  const LoopRec& fpgf = full.loops[1];  // the dominant FPGF instance
  const auto chunks = full.chunks_of(fpgf.uid);
  std::printf("FPGF: %zu chunks, load balance %.1f on 48 cores — a few "
              "single-iteration chunks dwarf the rest\n",
              chunks.size(), loop_load_balance(full, fpgf));

  std::printf("\n== step 2: bin-pack chunk durations against the observed "
              "makespan ==\n");
  std::vector<u64> durations;
  for (const ChunkRec* c : chunks) durations.push_back(c->end - c->start);
  const TimeNs span = fpgf.end - fpgf.start;
  const BinPackResult pack = min_bins(durations, span);
  std::printf("minimum cores that fit every chunk under the %.2fms makespan: "
              "%d (%s)\n",
              static_cast<double>(span) / 1e6, pack.bins,
              pack.exact ? "proven optimal" : "FFD bound");

  std::printf("\n== step 3: set num_threads(%d) on the loop and re-measure "
              "==\n", pack.bins);
  const Trace trimmed = run_freqmine(pack.bins);
  const LoopRec& fpgf2 = trimmed.loops[1];
  std::printf("load balance: %.2f; loop time %.2fms (was %.2fms on 48 "
              "cores) — %d cores freed for other work\n",
              loop_load_balance(trimmed, fpgf2),
              static_cast<double>(fpgf2.end - fpgf2.start) / 1e6,
              static_cast<double>(span) / 1e6, 48 - pack.bins);
  return 0;
}
