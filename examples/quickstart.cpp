// Quickstart: write an OpenMP-style task program against gg::front, run it
// on the real threaded runtime, build the grain graph, derive the paper's
// metrics, print the analysis report, and export the graph for yEd.
//
//   $ ./examples/quickstart
//
// The program itself is a toy divide-and-conquer sum with one deliberately
// tiny task definition, so the low-parallel-benefit highlight has something
// to find.
#include <cstdio>
#include <numeric>
#include <vector>

#include "analysis/report.hpp"
#include "export/graphml.hpp"
#include "rts/threaded_engine.hpp"
#include "trace/serialize.hpp"

using namespace gg;
using front::Ctx;

namespace {

long sum_range(Ctx& ctx, const std::vector<long>& data, size_t lo, size_t hi) {
  if (hi - lo <= 1024) {
    return std::accumulate(data.begin() + static_cast<std::ptrdiff_t>(lo),
                           data.begin() + static_cast<std::ptrdiff_t>(hi),
                           0L);
  }
  const size_t mid = (lo + hi) / 2;
  long left = 0, right = 0;
  ctx.spawn(GG_SRC, [&, lo, mid](Ctx& c) { left = sum_range(c, data, lo, mid); });
  ctx.spawn(GG_SRC, [&, mid, hi](Ctx& c) { right = sum_range(c, data, mid, hi); });
  ctx.taskwait();
  return left + right;
}

}  // namespace

int main() {
  // 1. Run a task program on the threaded runtime with profiling on.
  std::vector<long> data(1 << 18);
  std::iota(data.begin(), data.end(), 0L);

  rts::Options opts;
  opts.num_workers = 2;
  rts::ThreadedEngine engine(opts);
  long result = 0;
  const Trace trace = engine.run("quickstart", [&](Ctx& ctx) {
    result = sum_range(ctx, data, 0, data.size());
    // A deliberately tiny task: watch the parallel-benefit view flag it.
    for (int i = 0; i < 16; ++i) {
      ctx.spawn(GG_SRC_NAMED("quickstart.cpp", 99, "tiny"), [](Ctx&) {});
    }
    ctx.taskwait();
  });
  std::printf("sum = %ld (expected %ld)\n", result,
              (long)data.size() * ((long)data.size() - 1) / 2);

  // 2. Analyze: grain graph -> grain table -> metrics -> problem views.
  const Analysis analysis = analyze(trace, Topology::generic4());
  std::printf("%s", render_report(trace, analysis).c_str());

  // 3. Export the annotated graph (open in yEd / Cytoscape) and the raw
  //    trace (reload later with load_trace_file).
  GraphMlOptions gopts;
  gopts.view = Problem::LowParallelBenefit;
  write_graphml_file("quickstart.graphml", analysis.graph, trace,
                     &analysis.grains, &analysis.metrics, gopts);
  save_trace_file(trace, "quickstart.ggtrace");
  std::printf("wrote quickstart.graphml (low-parallel-benefit view) and "
              "quickstart.ggtrace\n");
  return 0;
}
