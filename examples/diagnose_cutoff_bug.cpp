// Scenario (paper §2): a task program scales badly and existing tools only
// say "load is balanced". Use the grain graph to find the structural
// anomaly — a cutoff that has no effect — fix it, and verify the win.
//
// Walks the exact 376.kdtree debugging session: the graph's depth profile
// shows recursion far beyond the configured cutoff; inspecting sweeptree
// reveals the missing depth increment; the fix shrinks the grain count by
// orders of magnitude and restores scalability.
#include <algorithm>
#include <cstdio>

#include "analysis/recommend.hpp"
#include "analysis/report.hpp"
#include "apps/kdtree.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

using namespace gg;

namespace {

struct RunResult {
  Trace trace;
  Analysis analysis;
  TimeNs t1 = 0;
};

RunResult run_kdtree(bool fixed) {
  sim::Capture cap;
  sim::CaptureRegionEngine eng(cap);
  apps::KdtreeParams p;
  p.num_points = 8000;
  p.cutoff = 2;
  p.sweep_cutoff = 9;
  p.fixed = fixed;
  const sim::Program prog =
      cap.run("376.kdtree", apps::kdtree_program(eng, p));
  sim::SimOptions o;  // the paper's 48-core machine
  RunResult r;
  r.trace = sim::simulate(prog, o);
  r.analysis = analyze(r.trace, Topology::opteron48());
  sim::SimOptions o1 = o;
  o1.num_cores = 1;
  r.t1 = sim::simulate(prog, o1).makespan();
  return r;
}

size_t max_depth(const GrainTable& grains) {
  size_t depth = 0;
  for (const Grain& g : grains.grains()) {
    depth = std::max(depth, static_cast<size_t>(std::count(
                                g.path.begin(), g.path.end(), '.')));
  }
  return depth;
}

}  // namespace

int main() {
  std::printf("== step 1: the program is slow; what does the graph say? ==\n");
  const RunResult buggy = run_kdtree(false);
  std::printf("grains: %zu, recursion depth: %zu — but the cutoff is 2!\n",
              buggy.analysis.grains.size(), max_depth(buggy.analysis.grains));
  std::printf("low parallel benefit: %.1f%% of grains\n",
              buggy.analysis
                  .problems[static_cast<size_t>(Problem::LowParallelBenefit)]
                  .flagged_percent);
  std::printf("%s", render_recommendations(
                        recommend(buggy.trace, buggy.analysis)).c_str());
  std::printf("=> the cutoff has no effect: kdnode::sweeptree() recurses "
              "without incrementing depth (the bug that escaped SPEC QA for "
              "three years)\n\n");

  std::printf("== step 2: fix the depth increment, separate the sweep "
              "cutoff ==\n");
  const RunResult fixed = run_kdtree(true);
  std::printf("grains: %zu, recursion depth: %zu (bounded by the sweep "
              "cutoff)\n",
              fixed.analysis.grains.size(), max_depth(fixed.analysis.grains));

  std::printf("\n== step 3: verify the win on the 48-core machine ==\n");
  const double speedup_before = static_cast<double>(buggy.t1) /
                                static_cast<double>(buggy.trace.makespan());
  const double speedup_after = static_cast<double>(fixed.t1) /
                               static_cast<double>(fixed.trace.makespan());
  std::printf("48-core makespan: %.2fms -> %.2fms; self-relative speedup "
              "%.1f -> %.1f\n",
              static_cast<double>(buggy.trace.makespan()) / 1e6,
              static_cast<double>(fixed.trace.makespan()) / 1e6,
              speedup_before, speedup_after);
  return 0;
}
