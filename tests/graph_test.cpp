#include <gtest/gtest.h>

#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "graph/reductions.hpp"
#include "graph/summarize.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

using front::Ctx;
using front::ForOpts;

// Fig. 3a program: task foo creates bar and baz, computes in between, and
// synchronizes with its children.
Trace foo_bar_baz_trace() {
  sim::Capture cap;
  sim::Program p = cap.run("foo", [](Ctx& ctx) {
    ctx.compute(1000);
    ctx.spawn(GG_SRC_NAMED("fig3.c", 2, "bar"),
              [](Ctx& c) { c.compute(5000); });
    ctx.compute(2000);
    ctx.spawn(GG_SRC_NAMED("fig3.c", 4, "baz"),
              [](Ctx& c) { c.compute(3000); });
    ctx.compute(500);
    ctx.taskwait();
    ctx.compute(100);
  });
  sim::SimOptions o;
  o.num_cores = 2;
  o.memory_model = false;
  return sim::simulate(p, o);
}

size_t count_kind(const GrainGraph& g, NodeKind k) {
  return g.nodes_of_kind(k).size();
}

size_t count_edges(const GrainGraph& g, EdgeKind k) {
  size_t n = 0;
  for (const GraphEdge& e : g.edges())
    if (e.kind == k) ++n;
  return n;
}

TEST(GrainGraphTest, Fig3StructureTasks) {
  const Trace t = foo_bar_baz_trace();
  ASSERT_TRUE(validate_trace(t).empty());
  const GrainGraph g = GrainGraph::build(t);
  EXPECT_TRUE(validate_graph(g).empty());
  // Root: 4 fragments (fork, fork, join, end). bar/baz: 1 fragment each.
  EXPECT_EQ(count_kind(g, NodeKind::Fragment), 6u);
  EXPECT_EQ(count_kind(g, NodeKind::Fork), 2u);
  EXPECT_EQ(count_kind(g, NodeKind::Join), 1u);
  EXPECT_EQ(count_kind(g, NodeKind::Bookkeep), 0u);
  // Two creation edges (one per child), two join edges into the join node.
  EXPECT_EQ(count_edges(g, EdgeKind::Creation), 2u);
  EXPECT_EQ(count_edges(g, EdgeKind::Join), 2u);
}

TEST(GrainGraphTest, CreationEdgeTargetsChildFirstFragment) {
  const Trace t = foo_bar_baz_trace();
  const GrainGraph g = GrainGraph::build(t);
  for (const GraphEdge& e : g.edges()) {
    if (e.kind != EdgeKind::Creation) continue;
    const GraphNode& from = g.nodes()[e.from];
    const GraphNode& to = g.nodes()[e.to];
    EXPECT_EQ(from.kind, NodeKind::Fork);
    EXPECT_EQ(to.kind, NodeKind::Fragment);
    EXPECT_EQ(to.seq, 0u);  // first fragment
    EXPECT_NE(to.task, from.task);
  }
}

TEST(GrainGraphTest, JoinEdgesComeFromChildLastFragments) {
  const Trace t = foo_bar_baz_trace();
  const GrainGraph g = GrainGraph::build(t);
  const auto joins = g.nodes_of_kind(NodeKind::Join);
  ASSERT_EQ(joins.size(), 1u);
  size_t join_edges = 0;
  for (u32 e : g.in_edges(joins[0])) {
    if (g.edges()[e].kind != EdgeKind::Join) continue;
    ++join_edges;
    const GraphNode& from = g.nodes()[g.edges()[e].from];
    EXPECT_EQ(from.kind, NodeKind::Fragment);
    // Children bar/baz have a single fragment, which is also their last.
    EXPECT_NE(from.task, kRootTask);
  }
  EXPECT_EQ(join_edges, 2u);
}

TEST(GrainGraphTest, Fig3LoopStructure) {
  // Fig. 3b/g: a 20-iteration loop in chunks of 4 on two threads.
  sim::Capture cap;
  sim::Program p = cap.run("loop", [](Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Static;
    fo.chunk = 4;
    ctx.parallel_for(GG_SRC, 0, 20, fo, [](u64, Ctx& c) { c.compute(10000); });
  });
  sim::SimOptions o;
  o.num_cores = 2;
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  ASSERT_TRUE(validate_trace(t).empty());
  const GrainGraph g = GrainGraph::build(t);
  EXPECT_TRUE(validate_graph(g).empty());
  // 5 chunks; each participating thread has chunks+1 bookkeeps.
  EXPECT_EQ(count_kind(g, NodeKind::Chunk), 5u);
  const size_t books = count_kind(g, NodeKind::Bookkeep);
  EXPECT_EQ(books, 7u);  // thread0: 3+1, thread1: 2+1
  // One loop join; chains end there with join edges.
  const auto joins = g.nodes_of_kind(NodeKind::Join);
  ASSERT_EQ(joins.size(), 1u);
  EXPECT_EQ(g.in_edges(joins[0]).size(), 2u);  // one per thread chain
  // Every chunk continues to a bookkeep.
  for (u32 c : g.nodes_of_kind(NodeKind::Chunk)) {
    ASSERT_EQ(g.out_edges(c).size(), 1u);
    const GraphEdge& e = g.edges()[g.out_edges(c)[0]];
    EXPECT_EQ(g.nodes()[e.to].kind, NodeKind::Bookkeep);
  }
}

TEST(GrainGraphTest, ValidGraphAcrossPoliciesAndCores) {
  std::function<void(Ctx&, int)> rec = [&rec](Ctx& ctx, int d) {
    ctx.compute(500);
    if (d == 0) return;
    const int kids = 1 + d % 3;
    for (int i = 0; i < kids; ++i)
      ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    if (d % 2 == 0) ctx.taskwait();
  };
  const sim::Program p =
      sim::capture_program("random_tree", [&](Ctx& ctx) { rec(ctx, 6); });
  for (int cores : {1, 5, 48}) {
    for (auto pol : {sim::SimPolicy::mir(), sim::SimPolicy::icc(),
                     sim::SimPolicy::mir_central()}) {
      sim::SimOptions o;
      o.num_cores = cores;
      o.policy = pol;
      o.memory_model = false;
      const Trace t = sim::simulate(p, o);
      ASSERT_TRUE(validate_trace(t).empty()) << pol.name << cores;
      const GrainGraph g = GrainGraph::build(t);
      const auto errs = validate_graph(g);
      EXPECT_TRUE(errs.empty())
          << pol.name << "/" << cores << ": " << (errs.empty() ? "" : errs[0]);
    }
  }
}

TEST(GrainGraphTest, GraphFromThreadedRuntime) {
  rts::Options o;
  o.num_workers = 3;
  rts::ThreadedEngine eng(o);
  std::function<void(Ctx&, int)> fib = [&fib](Ctx& ctx, int n) {
    if (n < 2) return;
    ctx.spawn(GG_SRC, [&fib, n](Ctx& c) { fib(c, n - 1); });
    ctx.spawn(GG_SRC, [&fib, n](Ctx& c) { fib(c, n - 2); });
    ctx.taskwait();
  };
  const Trace t = eng.run("fib", [&](Ctx& ctx) { fib(ctx, 10); });
  ASSERT_TRUE(validate_trace(t).empty());
  const GrainGraph g = GrainGraph::build(t);
  EXPECT_TRUE(validate_graph(g).empty());
  EXPECT_GT(g.node_count(), t.tasks.size());
}

TEST(GrainGraphTest, TopoOrderRespectsEdges) {
  const Trace t = foo_bar_baz_trace();
  const GrainGraph g = GrainGraph::build(t);
  std::vector<u32> pos(g.node_count());
  for (u32 i = 0; i < g.topo_order().size(); ++i) pos[g.topo_order()[i]] = i;
  for (const GraphEdge& e : g.edges()) EXPECT_LT(pos[e.from], pos[e.to]);
}

// ---------------------------------------------------------------------------
// Reductions

TEST(ReductionTest, FragmentReductionOnePerTask) {
  const Trace t = foo_bar_baz_trace();
  const GrainGraph g = GrainGraph::build(t);
  ReductionOptions ro;
  ro.fragments = true;
  ro.forks = false;
  ro.bookkeeps = false;
  const GrainGraph r = reduce_graph(g, ro);
  EXPECT_EQ(r.nodes_of_kind(NodeKind::Fragment).size(), 3u);  // root,bar,baz
  // Aggregated weights: the root group holds 4 members whose busy times sum.
  TimeNs root_busy_full = 0;
  for (u32 i : g.nodes_of_kind(NodeKind::Fragment)) {
    if (g.nodes()[i].task == kRootTask) root_busy_full += g.nodes()[i].busy;
  }
  bool found = false;
  for (u32 i : r.nodes_of_kind(NodeKind::Fragment)) {
    if (r.nodes()[i].task == kRootTask) {
      found = true;
      EXPECT_EQ(r.nodes()[i].group_size, 4u);
      EXPECT_EQ(r.nodes()[i].busy, root_busy_full);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ReductionTest, ForkReductionMergesForksBeforeJoin) {
  const Trace t = foo_bar_baz_trace();
  const GrainGraph g = GrainGraph::build(t);
  ReductionOptions ro;
  ro.fragments = false;
  ro.forks = true;
  ro.bookkeeps = false;
  const GrainGraph r = reduce_graph(g, ro);
  const auto forks = r.nodes_of_kind(NodeKind::Fork);
  ASSERT_EQ(forks.size(), 1u);  // both forks precede the same join
  EXPECT_EQ(r.nodes()[forks[0]].group_size, 2u);
  // The merged fork still has creation edges to both children.
  size_t creations = 0;
  for (u32 e : r.out_edges(forks[0])) {
    if (r.edges()[e].kind == EdgeKind::Creation) ++creations;
  }
  EXPECT_EQ(creations, 2u);
}

TEST(ReductionTest, BookkeepGroupedPerThread) {
  sim::Capture cap;
  sim::Program p = cap.run("loop", [](Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 2;
    ctx.parallel_for(GG_SRC, 0, 40, fo, [](u64, Ctx& c) { c.compute(20000); });
  });
  sim::SimOptions o;
  o.num_cores = 4;
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  const GrainGraph g = GrainGraph::build(t);
  ReductionOptions ro;
  ro.fragments = false;
  ro.forks = false;
  ro.bookkeeps = true;
  const GrainGraph r = reduce_graph(g, ro);
  // After grouping, at most one bookkeep node per participating thread.
  std::set<u16> threads;
  for (const ChunkRec& c : t.chunks) threads.insert(c.thread);
  EXPECT_EQ(r.nodes_of_kind(NodeKind::Bookkeep).size(), threads.size());
  EXPECT_LT(r.node_count(), g.node_count());
}

TEST(ReductionTest, FullReductionShrinksBigGraph) {
  std::function<void(Ctx&, int)> rec = [&rec](Ctx& ctx, int d) {
    ctx.compute(100);
    if (d == 0) return;
    for (int i = 0; i < 2; ++i)
      ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.taskwait();
  };
  const sim::Program p =
      sim::capture_program("tree", [&](Ctx& ctx) { rec(ctx, 8); });
  sim::SimOptions o;
  o.num_cores = 8;
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  const GrainGraph g = GrainGraph::build(t);
  const GrainGraph r = reduce_graph(g, ReductionOptions{});
  EXPECT_LT(r.node_count(), g.node_count() * 6 / 10);
  // Total busy time is conserved by reductions.
  TimeNs busy_g = 0, busy_r = 0;
  for (const GraphNode& n : g.nodes()) busy_g += n.busy;
  for (const GraphNode& n : r.nodes()) busy_r += n.busy;
  EXPECT_EQ(busy_g, busy_r);
}

// ---------------------------------------------------------------------------
// Grain table

TEST(GrainTableTest, PathsAreUniqueAndWellFormed) {
  const Trace t = foo_bar_baz_trace();
  const GrainTable gt = GrainTable::build(t);
  ASSERT_EQ(gt.size(), 2u);
  EXPECT_NE(gt.by_path("0.0"), nullptr);
  EXPECT_NE(gt.by_path("0.1"), nullptr);
  EXPECT_EQ(gt.by_path("0.2"), nullptr);
  EXPECT_EQ(gt.by_path("0.0")->parent, kRootTask);
}

TEST(GrainTableTest, PathsStableAcrossMachineSizes) {
  std::function<void(Ctx&, int)> rec = [&rec](Ctx& ctx, int d) {
    ctx.compute(1000);
    if (d == 0) return;
    ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.taskwait();
  };
  const sim::Program p =
      sim::capture_program("tree", [&](Ctx& ctx) { rec(ctx, 5); });
  sim::SimOptions o1, o48;
  o1.num_cores = 1;
  o48.num_cores = 48;
  o1.memory_model = o48.memory_model = false;
  const GrainTable a = GrainTable::build(sim::simulate(p, o1));
  const GrainTable b = GrainTable::build(sim::simulate(p, o48));
  ASSERT_EQ(a.size(), b.size());
  for (const Grain& g : a.grains()) {
    EXPECT_NE(b.by_path(g.path), nullptr) << g.path;
  }
}

TEST(GrainTableTest, ChunkIdentifiersFollowPaperScheme) {
  sim::Capture cap;
  sim::Program p = cap.run("loop", [](Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Static;
    fo.chunk = 8;
    ctx.parallel_for(GG_SRC, 0, 32, fo, [](u64, Ctx& c) { c.compute(5000); });
  });
  sim::SimOptions o;
  o.num_cores = 4;
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  const GrainTable gt = GrainTable::build(t);
  ASSERT_EQ(gt.size(), 4u);
  // Loop started by thread 0 with seq 0: chunk covering [0,8) is "L0.0:0-8".
  EXPECT_NE(gt.by_path("L0.0:0-8"), nullptr);
  EXPECT_NE(gt.by_path("L0.0:24-32"), nullptr);
}

TEST(GrainTableTest, ExecTimeSumsFragmentsAndCostsPopulated) {
  const Trace t = foo_bar_baz_trace();
  const GrainTable gt = GrainTable::build(t);
  for (const Grain& g : gt.grains()) {
    EXPECT_GT(g.exec_time, 0u);
    EXPECT_GT(g.creation_cost, 0u);  // sim charges task_create_cycles
    EXPECT_EQ(g.n_fragments, 1u);
    EXPECT_EQ(g.n_children, 0u);
  }
  // Root (excluded) spawned both grains; their sync shares split the join.
  const Grain* bar = gt.by_path("0.0");
  const Grain* baz = gt.by_path("0.1");
  ASSERT_NE(bar, nullptr);
  ASSERT_NE(baz, nullptr);
  EXPECT_EQ(bar->sync_cost, baz->sync_cost);
}

TEST(GrainTableTest, InlinedTasksAreStillGrains) {
  const sim::Program p = sim::capture_program("inline", [](Ctx& ctx) {
    for (int i = 0; i < 50; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(100); });
    ctx.taskwait();
  });
  sim::SimOptions o;
  o.num_cores = 1;
  o.policy = sim::SimPolicy::icc();
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  const GrainTable gt = GrainTable::build(t);
  EXPECT_EQ(gt.size(), 50u);
  size_t inlined = 0;
  for (const Grain& g : gt.grains())
    if (g.inlined) ++inlined;
  EXPECT_GT(inlined, 0u);
}

// ---------------------------------------------------------------------------
// Subtree summarization (§6)

TEST(SummarizeTest, CollapsesDeepTreeIntoBudget) {
  std::function<void(Ctx&, int)> rec = [&rec](Ctx& ctx, int d) {
    ctx.compute(1000);
    if (d == 0) return;
    for (int i = 0; i < 2; ++i)
      ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.taskwait();
  };
  const sim::Program p =
      sim::capture_program("tree", [&](Ctx& ctx) { rec(ctx, 8); });
  sim::SimOptions o;
  o.num_cores = 8;
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  const GrainGraph g = GrainGraph::build(t);
  ASSERT_GT(g.node_count(), 500u);

  const SummarizeResult s = summarize_graph(g, 200);
  EXPECT_LE(s.graph.node_count(), 200u + 50u);  // best-effort budget
  EXPECT_LT(s.graph.node_count(), g.node_count() / 4);
  EXPECT_GT(s.collapsed_subtrees, 0u);
  // Aggregate busy time is conserved.
  TimeNs busy_g = 0, busy_s = 0;
  for (const GraphNode& n : g.nodes()) busy_g += n.busy;
  for (const GraphNode& n : s.graph.nodes()) busy_s += n.busy;
  EXPECT_EQ(busy_g, busy_s);
  // Summary nodes carry member counts.
  u32 biggest_group = 0;
  for (const GraphNode& n : s.graph.nodes())
    biggest_group = std::max(biggest_group, n.group_size);
  EXPECT_GT(biggest_group, 10u);
}

TEST(SummarizeTest, SmallGraphPassesThrough) {
  const Trace t = foo_bar_baz_trace();
  const GrainGraph g = GrainGraph::build(t);
  const SummarizeResult s = summarize_graph(g, 1000);
  EXPECT_EQ(s.graph.node_count(), g.node_count());
  EXPECT_EQ(s.graph.edge_count(), g.edge_count());
  EXPECT_EQ(s.collapsed_subtrees, 0u);
}

TEST(SummarizeTest, DeeperBudgetKeepsMoreStructure) {
  std::function<void(Ctx&, int)> rec = [&rec](Ctx& ctx, int d) {
    ctx.compute(500);
    if (d == 0) return;
    for (int i = 0; i < 2; ++i)
      ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.taskwait();
  };
  const sim::Program p =
      sim::capture_program("tree", [&](Ctx& ctx) { rec(ctx, 7); });
  sim::SimOptions o;
  o.num_cores = 4;
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  const GrainGraph g = GrainGraph::build(t);
  const SummarizeResult tight = summarize_graph(g, 60);
  const SummarizeResult loose = summarize_graph(g, 400);
  EXPECT_LT(tight.cut_depth, loose.cut_depth);
  EXPECT_LT(tight.graph.node_count(), loose.graph.node_count());
}

}  // namespace
}  // namespace gg
