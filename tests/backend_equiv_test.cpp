// Cross-backend trace equivalence: the queue backend a run is scheduled on
// must be invisible in the analysis. For every program — the golden-corpus
// seeds plus GG_BACKEND_PROGRAMS generated ones (default 8; the deep tier
// runs 50) — the threaded engine executes under a deterministic controller
// schedule once per backend, and every run must produce the same canonical
// structural signature as the serial reference elaborator. Wall-clock
// timings legitimately differ between runs; the signature is the
// schedule-independent structure (task tree, fragments, joins, chunk
// decompositions), so equality here is the precise sense in which analysis
// output is identical regardless of backend.
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "check/genprog.hpp"
#include "common/prng.hpp"
#include "check/schedule.hpp"
#include "check/serial_ref.hpp"
#include "check/signature.hpp"
#include "rts/threaded_engine.hpp"
#include "support/test_support.hpp"
#include "topology/topology.hpp"

namespace gg {
namespace {

using check::ProgramSpec;
using check::ScheduleController;
using check::ScheduleOptions;
using check::Strategy;

int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

std::string serial_signature(const ProgramSpec& spec, int team) {
  check::SerialRefOptions opts;
  opts.topology = Topology::opteron48();
  opts.team_size = team;
  check::SerialRefEngine eng(opts);
  return check::canonical_signature(run_spec(spec, eng));
}

/// One threaded-engine run on `backend`, fully serialized by a controller
/// built from `sopts`; returns the canonical structural signature.
std::string backend_signature(const ProgramSpec& spec,
                              const ScheduleOptions& sopts,
                              rts::QueueBackend backend) {
  ScheduleController ctrl(sopts);
  rts::Options ropts;
  ropts.num_workers = sopts.num_threads;
  ropts.queue_backend = backend;
  ctrl.install();
  Trace trace;
  {
    rts::ThreadedEngine eng(ropts);
    trace = run_spec(spec, eng);
  }
  ctrl.uninstall();
  return check::canonical_signature(trace);
}

void expect_backends_equivalent(const ProgramSpec& spec, int workers,
                                u64 schedule_seed) {
  const std::string ref = serial_signature(spec, workers);
  ASSERT_FALSE(ref.empty());
  for (const rts::QueueBackend backend : rts::kAllQueueBackends) {
    ScheduleOptions sopts;
    sopts.strategy = Strategy::RandomWalk;
    sopts.seed = schedule_seed;
    sopts.num_threads = workers;
    const std::string got = backend_signature(spec, sopts, backend);
    EXPECT_EQ(got, ref)
        << spec.name() << " on " << rts::to_string(backend)
        << " diverged from the serial reference; first diff: "
        << check::first_signature_diff(ref, got);
  }
}

TEST(BackendEquivalenceTest, SeededProgramsAgreeAcrossBackends) {
  const int programs = env_int("GG_BACKEND_PROGRAMS", 8);
  const u64 base = test::test_seed();
  GG_SEED_TRACE(base);
  for (int i = 0; i < programs; ++i) {
    const ProgramSpec spec =
        check::generate_program(base + static_cast<u64>(i));
    const int workers = 2 + i % 2;
    expect_backends_equivalent(
        spec, workers,
        mix64(base ^ (0x9e3779b97f4a7c15ull * static_cast<u64>(i + 1))));
  }
}

TEST(BackendEquivalenceTest, GoldenCorpusSeedsAgreeAcrossBackends) {
  // The same programs the committed golden corpus was generated from
  // (tools/make_golden.cpp), at the corpus team sizes. Additionally pins
  // the serial reference to the committed .expect signature, so a backend
  // bug and a signature-definition drift are distinguishable.
  struct Entry {
    const char* name;
    u64 seed;
    int workers;
  };
  const Entry entries[] = {
      {"tasks_mir4", 8, 4},
      {"loops_gcc2", 4, 2},
      {"exact_zero1", 5, 1},
  };
  for (const Entry& e : entries) {
    const ProgramSpec spec = check::generate_program(e.seed);
    const std::string ref = serial_signature(spec, e.workers);

    std::ifstream in(std::string(GG_GOLDEN_DIR) + "/" + e.name + ".expect");
    ASSERT_TRUE(in.good()) << e.name << ".expect missing from the corpus";
    std::ostringstream committed;
    committed << in.rdbuf();
    EXPECT_NE(committed.str().find(ref), std::string::npos)
        << e.name << ": serial-reference signature not found in the "
        << "committed .expect — corpus and generator have drifted";

    expect_backends_equivalent(spec, e.workers, 0x5eedull + e.seed);
  }
}

}  // namespace
}  // namespace gg
