// Shared support for randomized tests.
//
// Every randomized test derives its seeds from test_seed(), which honors the
// GG_TEST_SEED environment variable (decimal or 0x-hex). The effective base
// seed is printed once to stderr, so a failing CI log always carries enough
// to replay locally:
//
//   GG_TEST_SEED=<seed from the log> ctest -R <test> --output-on-failure
//
// Per-case messages should use GG_SEED_TRACE(seed) so the specific failing
// seed (not just the base) lands next to the assertion output.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.hpp"

namespace gg::test {

/// Base seed: GG_TEST_SEED when set, 1 otherwise. Stable for the lifetime
/// of the process; the first call prints the effective value.
inline u64 test_seed() {
  static const u64 seed = [] {
    u64 s = 1;
    bool overridden = false;
    if (const char* env = std::getenv("GG_TEST_SEED")) {
      s = std::strtoull(env, nullptr, 0);
      overridden = true;
    }
    std::fprintf(stderr,
                 "[test_support] base seed = %llu%s (override with "
                 "GG_TEST_SEED)\n",
                 static_cast<unsigned long long>(s),
                 overridden ? " [from GG_TEST_SEED]" : "");
    return s;
  }();
  return seed;
}

/// The shared randomized-test generator, seeded from test_seed() and an
/// optional per-call-site salt so independent tests draw independent
/// streams from the same base seed.
inline std::mt19937_64 test_rng(u64 salt = 0) {
  return std::mt19937_64(test_seed() ^ (salt * 0x9e3779b97f4a7c15ull) ^
                         0x6767746573740000ull);
}

/// `n` consecutive parameter seeds starting at the base seed, for
/// INSTANTIATE_TEST_SUITE_P: a failing case prints its own seed, and
/// GG_TEST_SEED=<that seed> with n=1 coverage replays it as the first case.
inline std::vector<u64> param_seeds(int n) {
  std::vector<u64> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(test_seed() + static_cast<u64>(i));
  return out;
}

}  // namespace gg::test

/// Attaches the effective seed (and the replay recipe) to every assertion
/// in the current scope.
#define GG_SEED_TRACE(seed)                                          \
  SCOPED_TRACE(::testing::Message()                                  \
               << "seed=" << (seed) << " (replay: GG_TEST_SEED="     \
               << (seed) << ")")
