#include <gtest/gtest.h>

#include <vector>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace gg {
namespace {

TEST(PrngTest, SplitMixIsDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(PrngTest, XoshiroIsDeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    const u64 x = a.next();
    EXPECT_EQ(x, b.next());
    if (x != c.next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(PrngTest, BoundedStaysInBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(PrngTest, BoundedCoversAllResidues) {
  Xoshiro256 rng(3);
  std::vector<int> seen(8, 0);
  for (int i = 0; i < 4000; ++i) ++seen[rng.bounded(8)];
  for (int count : seen) EXPECT_GT(count, 0);
}

TEST(PrngTest, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(PrngTest, RangeIsInclusive) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const i64 v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(PrngTest, ExponentialMeanIsApproximatelyRight) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(PrngTest, ParetoRespectsScale) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(StatsTest, MedianOddEven) {
  const std::vector<double> odd = {5, 1, 3};
  EXPECT_DOUBLE_EQ(stats::median(odd), 3.0);
  const std::vector<double> even = {4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
  EXPECT_DOUBLE_EQ(stats::median(std::span<const double>{}), 0.0);
}

TEST(StatsTest, MedianU64) {
  const std::vector<u64> v = {10, 30, 20};
  EXPECT_DOUBLE_EQ(stats::median(v), 20.0);
}

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> v = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::mean(v), 5.0);
  EXPECT_DOUBLE_EQ(stats::stddev(v), 2.0);
}

TEST(StatsTest, Percentile) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(stats::percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(stats::percentile(v, 25), 2.0);
}

TEST(StatsTest, MinMaxGeomean) {
  const std::vector<u64> v = {5, 2, 9};
  EXPECT_EQ(stats::min_value(v), 2u);
  EXPECT_EQ(stats::max_value(v), 9u);
  const std::vector<double> g = {1.0, 4.0};
  EXPECT_NEAR(stats::geomean(g), 2.0, 1e-12);
  const std::vector<double> bad = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(stats::geomean(bad), 0.0);
}

TEST(StringTableTest, InternIsIdempotentAndDense) {
  StringTable t;
  EXPECT_EQ(t.get(0), "");
  const StrId a = t.intern("alpha");
  const StrId b = t.intern("beta");
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(t.intern("alpha"), a);
  EXPECT_EQ(t.get(a), "alpha");
  EXPECT_EQ(t.find("beta"), b);
  EXPECT_EQ(t.find("missing"), 0u);
  EXPECT_EQ(t.get(999), "");
}

TEST(StringsTest, XmlEscape) {
  EXPECT_EQ(strings::xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
  EXPECT_EQ(strings::xml_escape("plain"), "plain");
}

TEST(StringsTest, TrimDouble) {
  EXPECT_EQ(strings::trim_double(1.5), "1.5");
  EXPECT_EQ(strings::trim_double(2.0), "2");
  EXPECT_EQ(strings::trim_double(0.125, 3), "0.125");
  EXPECT_EQ(strings::trim_double(0.1239, 3), "0.124");
}

TEST(StringsTest, HumanTime) {
  EXPECT_EQ(strings::human_time(12), "12ns");
  EXPECT_EQ(strings::human_time(3400), "3.4us");
  EXPECT_EQ(strings::human_time(1'200'000), "1.2ms");
  EXPECT_EQ(strings::human_time(5'600'000'000ull), "5.6s");
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(strings::join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(strings::join({}, ","), "");
  EXPECT_TRUE(strings::starts_with("sparselu.c:246", "sparselu"));
  EXPECT_FALSE(strings::starts_with("x", "xyz"));
}

TEST(TableTest, TextRendering) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("| name "), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, CsvQuoting) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_EQ(csv, "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(TableTest, MixedRowFormatsDoubles) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row_mixed({1.0, 2.25});
  EXPECT_NE(t.to_text().find("2.25"), std::string::npos);
}

}  // namespace
}  // namespace gg
