// Corrupted-trace corpus: systematically damage serialized traces (truncate
// at every record boundary and every byte, flip a bit at every byte) and
// assert the hardened loaders never crash, never hang, and always land in
// one of three states: loaded clean, salvaged (then structurally valid), or
// failed with diagnostics. This is the regression corpus the ASan/UBSan CI
// job runs.
#include <gtest/gtest.h>

#include <sstream>

#include "fault/fault.hpp"
#include "trace/recorder.hpp"
#include "trace/salvage.hpp"
#include "trace/serialize.hpp"
#include "trace/spool.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

// Small but fully-featured trace: tasks, fragments, joins, a loop with
// chunks and bookkeeping, dependences, worker stats, and a string table.
Trace make_corpus_trace() {
  TraceRecorder rec(2);
  auto w0 = rec.writer(0);
  auto w1 = rec.writer(1);

  const StrId src_root = rec.intern("<root>");
  const StrId src_task = rec.intern_source("corpus.c", 10, "work");
  const StrId src_loop = rec.intern_source("corpus.c", 50, "loop");

  TaskRec root;
  root.uid = kRootTask;
  root.parent = kNoTask;
  root.src = src_root;
  w0.task(root);

  auto frag = [&](TaskId task, u32 seq, TimeNs s, TimeNs e, FragmentEnd r,
                  u64 ref) {
    FragmentRec f;
    f.task = task;
    f.seq = seq;
    f.start = s;
    f.end = e;
    f.end_reason = r;
    f.end_ref = ref;
    f.counters.compute = e - s;
    return f;
  };
  w0.fragment(frag(kRootTask, 0, 0, 10, FragmentEnd::Fork, 1));
  w0.fragment(frag(kRootTask, 1, 12, 20, FragmentEnd::Fork, 2));
  w0.fragment(frag(kRootTask, 2, 22, 30, FragmentEnd::Join, 0));
  w0.fragment(frag(kRootTask, 3, 40, 41, FragmentEnd::Loop, 1));
  w0.fragment(frag(kRootTask, 4, 100, 101, FragmentEnd::TaskEnd, 0));

  TaskRec t1;
  t1.uid = 1;
  t1.parent = kRootTask;
  t1.child_index = 0;
  t1.src = src_task;
  t1.create_time = 10;
  w0.task(t1);
  TaskRec t2 = t1;
  t2.uid = 2;
  t2.child_index = 1;
  t2.create_time = 20;
  w0.task(t2);

  w1.fragment(frag(1, 0, 11, 25, FragmentEnd::TaskEnd, 0));
  w0.fragment(frag(2, 0, 21, 28, FragmentEnd::TaskEnd, 0));

  JoinRec j;
  j.task = kRootTask;
  j.seq = 0;
  j.start = 30;
  j.end = 39;
  w0.join(j);

  LoopRec loop;
  loop.uid = 1;
  loop.enclosing_task = kRootTask;
  loop.src = src_loop;
  loop.sched = ScheduleKind::Static;
  loop.iter_begin = 0;
  loop.iter_end = 8;
  loop.num_threads = 2;
  loop.start = 41;
  loop.end = 99;
  w0.loop(loop);

  auto chunk = [&](u16 thread, u32 seq, u64 lo, u64 hi, TimeNs s, TimeNs e) {
    ChunkRec c;
    c.loop = 1;
    c.thread = thread;
    c.core = thread;
    c.seq_on_thread = seq;
    c.iter_begin = lo;
    c.iter_end = hi;
    c.start = s;
    c.end = e;
    return c;
  };
  w0.chunk(chunk(0, 0, 0, 4, 43, 60));
  w1.chunk(chunk(1, 0, 4, 8, 44, 70));
  BookkeepRec b;
  b.loop = 1;
  b.thread = 0;
  b.seq_on_thread = 0;
  b.start = 42;
  b.end = 43;
  b.got_chunk = true;
  w0.bookkeep(b);

  DependRec d;
  d.pred = 1;
  d.succ = 2;
  w0.depend(d);

  WorkerStatsRec s0;
  s0.worker = 0;
  s0.tasks_spawned = 2;
  s0.tasks_executed = 2;
  w0.stats(s0);
  WorkerStatsRec s1 = s0;
  s1.worker = 1;
  w1.stats(s1);

  TraceMeta meta;
  meta.program = "corpus";
  meta.runtime = "handmade";
  meta.topology = "generic4";
  meta.num_workers = 2;
  meta.num_cores = 2;
  meta.region_start = 0;
  meta.region_end = 101;
  return rec.finish(meta);
}

std::string text_bytes() {
  std::ostringstream os;
  save_trace(make_corpus_trace(), os);
  return os.str();
}

std::string binary_bytes() {
  std::ostringstream os;
  save_trace_binary(make_corpus_trace(), os);
  return os.str();
}

// The corpus invariant: whatever the damage, a load lands in exactly one of
// {Ok, Salvaged, Failed}; anything usable is structurally valid; Strict
// never reports Salvaged.
void check_invariants(const std::string& bytes, bool binary) {
  for (const LoadMode mode :
       {LoadMode::Strict, LoadMode::Lenient, LoadMode::Salvage}) {
    std::istringstream is(bytes);
    const LoadOptions opts{mode, true};
    const LoadResult lr =
        binary ? load_trace_binary_ex(is, opts) : load_trace_ex(is, opts);
    ASSERT_TRUE(lr.status == LoadStatus::Ok ||
                lr.status == LoadStatus::Salvaged ||
                lr.status == LoadStatus::Failed);
    if (mode != LoadMode::Salvage) {
      EXPECT_NE(lr.status, LoadStatus::Salvaged);
    }
    if (lr.status == LoadStatus::Failed) {
      EXPECT_NE(lr.first_error(), nullptr) << "failure without diagnostics";
    }
    if (lr.usable()) {
      EXPECT_TRUE(lr.trace->finalized());
      EXPECT_TRUE(validate_trace(*lr.trace).empty())
          << "usable trace failed validation: " << lr.describe();
    }
  }
}

TEST(CorruptCorpusTest, PristineInputsLoadOk) {
  {
    std::istringstream is(text_bytes());
    const LoadResult lr = load_trace_ex(is, LoadOptions{LoadMode::Salvage, true});
    EXPECT_EQ(lr.status, LoadStatus::Ok) << lr.describe();
  }
  {
    std::istringstream is(binary_bytes());
    const LoadResult lr =
        load_trace_binary_ex(is, LoadOptions{LoadMode::Salvage, true});
    EXPECT_EQ(lr.status, LoadStatus::Ok) << lr.describe();
  }
}

TEST(CorruptCorpusTest, TextTruncatedAtEveryLineBoundary) {
  const std::string text = text_bytes();
  for (size_t pos = 0; pos < text.size(); ++pos) {
    if (text[pos] != '\n') continue;
    const std::string cut = fault::truncate_stream(text, pos + 1);
    check_invariants(cut, /*binary=*/false);
    // Any cut that keeps the header must be salvageable: the valid prefix of
    // records is real data.
    std::istringstream is(cut);
    const LoadResult lr =
        load_trace_ex(is, LoadOptions{LoadMode::Salvage, true});
    EXPECT_TRUE(lr.usable()) << "line-boundary cut at byte " << pos
                             << " unsalvageable: " << lr.describe();
  }
}

TEST(CorruptCorpusTest, TextTruncatedAtEveryByte) {
  const std::string text = text_bytes();
  const size_t header_len = text.find('\n') + 1;
  for (size_t keep = 0; keep <= text.size(); ++keep) {
    const std::string cut = fault::truncate_stream(text, keep);
    check_invariants(cut, /*binary=*/false);
    if (keep >= header_len) {
      std::istringstream is(cut);
      const LoadResult lr =
          load_trace_ex(is, LoadOptions{LoadMode::Salvage, true});
      EXPECT_TRUE(lr.usable()) << "cut at byte " << keep
                               << " unsalvageable: " << lr.describe();
    }
  }
}

TEST(CorruptCorpusTest, BinaryTruncatedAtEveryByte) {
  const std::string bin = binary_bytes();
  for (size_t keep = 0; keep <= bin.size(); ++keep) {
    const std::string cut = fault::truncate_stream(bin, keep);
    check_invariants(cut, /*binary=*/true);
    if (keep >= 5) {  // magic intact: the readable prefix must salvage
      std::istringstream is(cut);
      const LoadResult lr =
          load_trace_binary_ex(is, LoadOptions{LoadMode::Salvage, true});
      EXPECT_TRUE(lr.usable()) << "cut at byte " << keep
                               << " unsalvageable: " << lr.describe();
    }
  }
}

TEST(CorruptCorpusTest, TextBitFlipAtEveryByte) {
  const std::string text = text_bytes();
  for (size_t i = 0; i < text.size(); ++i) {
    check_invariants(fault::flip_bit(text, i, static_cast<int>((i * 7) % 8)),
                     /*binary=*/false);
  }
}

TEST(CorruptCorpusTest, BinaryBitFlipAtEveryByte) {
  const std::string bin = binary_bytes();
  for (size_t i = 0; i < bin.size(); ++i) {
    check_invariants(fault::flip_bit(bin, i, static_cast<int>((i * 7) % 8)),
                     /*binary=*/true);
  }
}

TEST(CorruptCorpusTest, ShuffledRecordOrderLoadsOk) {
  const std::string text = text_bytes();
  for (u64 seed = 1; seed <= 8; ++seed) {
    std::istringstream is(fault::shuffle_lines(text, seed));
    const LoadResult lr =
        load_trace_ex(is, LoadOptions{LoadMode::Strict, true});
    EXPECT_EQ(lr.status, LoadStatus::Ok) << "seed " << seed << ": "
                                         << lr.describe();
  }
}

TEST(CorruptCorpusTest, EmptyAndGarbageInputsFailCleanly) {
  for (const std::string& bytes :
       {std::string(), std::string("garbage\n"), std::string("ggtrace 99\n"),
        std::string("GGTB9everything-else"), std::string(1000, '\0')}) {
    check_invariants(bytes, /*binary=*/false);
    check_invariants(bytes, /*binary=*/true);
  }
}

// --- spool corpus: frame-level damage on .ggspool streams -------------------
//
// Same philosophy as the stream corpus above, aimed at the crash-spool
// format: truncate at every frame boundary and every byte, tear every
// frame mid-write, rot every frame's payload. Recovery must terminate,
// keep every intact frame before the damage, and anything usable must be
// structurally valid after the prescribed salvage pass.

std::string spool_bytes() {
  // Tiny epochs so the corpus trace spreads over many 'E' frames.
  return spool::spool_trace_bytes(make_corpus_trace(), /*epoch_bytes=*/128);
}

void check_spool_invariants(const std::string& bytes) {
  spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
  if (!rr.usable) return;  // nothing recoverable is a legal outcome
  if (rr.report.partial() || rr.report.frames_corrupt > 0 ||
      rr.report.torn_tail || rr.report.frames_out_of_order > 0 ||
      rr.report.epoch_gaps > 0) {
    salvage_trace(rr.trace);
  }
  EXPECT_TRUE(validate_trace(rr.trace).empty())
      << "usable recovery failed validation: " << rr.report.summary();
}

TEST(SpoolCorpusTest, PristineSpoolRoundTrips) {
  const Trace original = make_corpus_trace();
  const spool::RecoverResult rr = spool::recover_spool_bytes(spool_bytes());
  ASSERT_TRUE(rr.usable) << rr.report.summary();
  EXPECT_TRUE(rr.report.clean_footer);
  EXPECT_FALSE(rr.report.partial());
  EXPECT_EQ(rr.report.frames_corrupt, 0u);
  EXPECT_EQ(rr.trace.tasks.size(), original.tasks.size());
  EXPECT_EQ(rr.trace.fragments.size(), original.fragments.size());
  EXPECT_EQ(rr.trace.chunks.size(), original.chunks.size());
  EXPECT_EQ(rr.trace.depends.size(), original.depends.size());
  EXPECT_TRUE(validate_trace(rr.trace).empty());
}

TEST(SpoolCorpusTest, TruncatedAtEveryFrameBoundary) {
  const std::string bytes = spool_bytes();
  const auto frames = spool::scan_frames(bytes);
  ASSERT_GT(frames.size(), 3u);  // meta, strings, epochs..., footer
  for (size_t keep = 0; keep <= frames.size(); ++keep) {
    const std::string cut = fault::truncate_spool_at_frame(bytes, keep);
    check_spool_invariants(cut);
    const spool::RecoverResult rr = spool::recover_spool_bytes(cut);
    if (keep == frames.size()) {
      EXPECT_TRUE(rr.report.clean_footer);
    } else {
      // Losing the footer (or more) must read as a partial recovery, and
      // every frame before the cut must survive.
      EXPECT_FALSE(rr.report.clean_footer) << "cut at frame " << keep;
      EXPECT_EQ(rr.report.frames_total, keep);
    }
  }
}

TEST(SpoolCorpusTest, TruncatedAtEveryByte) {
  const std::string bytes = spool_bytes();
  for (size_t keep = 0; keep <= bytes.size(); ++keep) {
    check_spool_invariants(fault::truncate_stream(bytes, keep));
  }
}

TEST(SpoolCorpusTest, BitFlipAtEveryByte) {
  const std::string bytes = spool_bytes();
  for (size_t i = 0; i < bytes.size(); ++i) {
    check_spool_invariants(
        fault::flip_bit(bytes, i, static_cast<int>((i * 5) % 8)));
  }
}

TEST(SpoolCorpusTest, TornFrameAtEveryFrame) {
  const std::string bytes = spool_bytes();
  const auto frames = spool::scan_frames(bytes);
  for (size_t i = 0; i < frames.size(); ++i) {
    for (const size_t keep_payload : {size_t{0}, size_t{3}}) {
      const std::string torn =
          fault::tear_spool_frame(bytes, i, keep_payload);
      check_spool_invariants(torn);
      const spool::RecoverResult rr = spool::recover_spool_bytes(torn);
      // The torn frame's header is intact (the tear lands in its payload),
      // so it is counted but never applied, and the tail reads as torn.
      EXPECT_EQ(rr.report.frames_total, i + 1) << "torn frame " << i;
      EXPECT_LE(rr.report.frames_kept, i) << "torn frame " << i;
      EXPECT_TRUE(rr.report.torn_tail) << "torn frame " << i;
      EXPECT_FALSE(rr.report.clean_footer);
    }
  }
}

TEST(SpoolCorpusTest, ChecksumRotSkipsTheRottedFrame) {
  const std::string bytes = spool_bytes();
  const auto frames = spool::scan_frames(bytes);
  for (size_t i = 0; i < frames.size(); ++i) {
    const std::string rotted =
        fault::flip_spool_frame_checksum(bytes, i, /*seed=*/i + 1);
    check_spool_invariants(rotted);
    const spool::RecoverResult rr = spool::recover_spool_bytes(rotted);
    EXPECT_GE(rr.report.frames_corrupt, 1u) << "frame " << i;
    // Every frame still parses (lengths untouched), so the scan reaches
    // the end of the stream.
    EXPECT_EQ(rr.report.frames_total, frames.size());
    EXPECT_FALSE(rr.report.torn_tail);
  }
}

TEST(SpoolCorpusTest, TelemetryDamageDegradesWithoutHurtingRecords) {
  // Telemetry ('T') frames are advisory: every way of damaging one must
  // degrade to "telemetry unavailable" (or the previous snapshot) and must
  // never surface as a damaged trace.
  const std::vector<std::string> payloads = {"snap-a", "snap-b", "snap-c"};
  const std::string bytes = spool::spool_trace_bytes(
      make_corpus_trace(), /*epoch_bytes=*/128, payloads);
  const auto records_of = [](const Trace& t) {
    std::ostringstream os;
    save_trace(t, os);
    return os.str();
  };
  const spool::RecoverResult clean = spool::recover_spool_bytes(bytes);
  ASSERT_TRUE(clean.usable) << clean.report.summary();
  ASSERT_EQ(clean.report.telemetry_frames, payloads.size());
  EXPECT_EQ(clean.report.telemetry, payloads.back());
  const std::string clean_records = records_of(clean.trace);

  for (size_t i = 0; i < payloads.size(); ++i) {
    // Payload rot: exactly one 'T' frame fails its checksum. The records
    // and the footer survive untouched and the damage is counted in
    // telemetry_corrupt, never in frames_corrupt.
    const std::string rotted =
        fault::flip_spool_telemetry(bytes, i, /*seed=*/i + 1);
    ASSERT_NE(rotted, bytes) << "T frame " << i << " not found";
    check_spool_invariants(rotted);
    const spool::RecoverResult rr = spool::recover_spool_bytes(rotted);
    ASSERT_TRUE(rr.usable) << "rotted T frame " << i;
    EXPECT_EQ(rr.report.telemetry_corrupt, 1u) << "T frame " << i;
    EXPECT_EQ(rr.report.telemetry_frames, payloads.size() - 1);
    EXPECT_EQ(rr.report.frames_corrupt, 0u) << "T frame " << i;
    EXPECT_TRUE(rr.report.clean_footer) << "T frame " << i;
    EXPECT_FALSE(rr.report.partial()) << "T frame " << i;
    EXPECT_EQ(records_of(rr.trace), clean_records) << "T frame " << i;
    // The last *intact* snapshot is served, or none when the newest rotted.
    EXPECT_EQ(rr.report.telemetry,
              i + 1 == payloads.size() ? payloads[i - 1] : payloads.back());
  }

  for (size_t i = 0; i < payloads.size(); ++i) {
    // Crash mid-telemetry-write: the stream ends inside the 'T' frame's
    // payload. Everything spooled before it must survive; telemetry
    // degrades to the previous snapshot (or to "unavailable").
    const std::string torn =
        fault::truncate_spool_telemetry(bytes, i, /*keep_payload=*/2);
    ASSERT_LT(torn.size(), bytes.size()) << "T frame " << i << " not found";
    check_spool_invariants(torn);
    const spool::RecoverResult rr = spool::recover_spool_bytes(torn);
    ASSERT_TRUE(rr.usable) << "torn T frame " << i;
    EXPECT_TRUE(rr.report.torn_tail) << "torn T frame " << i;
    EXPECT_FALSE(rr.report.clean_footer);
    EXPECT_EQ(rr.report.telemetry_frames, i);
    EXPECT_EQ(rr.report.telemetry, i == 0 ? "" : payloads[i - 1]);
  }
}

TEST(SpoolCorpusTest, CraftedCountsRejectedBeforeAllocation) {
  // A checksum-valid epoch frame whose payload *declares* 2^30 fragment
  // records (minimum encoded size 71 bytes each — dozens of GiB) in a
  // 32-byte payload. The decoder must reject the counts against the bytes
  // actually present before sizing any allocation from them; under ASan
  // a missing bound turns this into an allocation-failure crash.
  std::string payload;
  const auto put_u32 = [&payload](u32 v) {
    for (int i = 0; i < 4; ++i) payload.push_back(static_cast<char>(v >> (8 * i)));
  };
  const u32 counts[8] = {0, 0x40000000u, 0, 0, 0, 0, 0, 0};
  for (const u32 c : counts) put_u32(c);
  ASSERT_EQ(payload.size(), 32u);

  spool::RecordBuffer buf;
  EXPECT_FALSE(spool::decode_epoch_payload(payload, &buf));
  EXPECT_TRUE(buf.fragments.empty());

  // The same payload riding a well-formed, checksum-valid frame inside an
  // otherwise pristine spool: recovery must skip exactly that frame (with
  // a diagnostic), keep every real record, and stay usable.
  std::string frame(spool::kFrameMagic, sizeof spool::kFrameMagic);
  frame.push_back(static_cast<char>(spool::FrameType::Epoch));
  const auto app_u32 = [&frame](u32 v) {
    for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>(v >> (8 * i)));
  };
  const auto app_u64 = [&frame](u64 v) {
    for (int i = 0; i < 8; ++i) frame.push_back(static_cast<char>(v >> (8 * i)));
  };
  app_u32(0);     // worker
  app_u32(1000);  // seq, past any real epoch so the prefix check passes
  app_u64(payload.size());
  app_u64(spool::frame_checksum(spool::FrameType::Epoch, 0, 1000,
                                payload.data(), payload.size()));
  frame += payload;
  ASSERT_EQ(frame.size(), spool::kFrameHeaderBytes + payload.size());

  std::string bytes = spool_bytes();
  const auto frames = spool::scan_frames(bytes);
  ASSERT_FALSE(frames.empty());
  ASSERT_EQ(frames.back().type, spool::FrameType::CleanFooter);
  bytes.insert(frames.back().offset, frame);

  const spool::RecoverResult clean = spool::recover_spool_bytes(spool_bytes());
  const spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
  ASSERT_TRUE(rr.usable) << rr.report.summary();
  EXPECT_GE(rr.report.frames_corrupt, 1u);
  EXPECT_TRUE(rr.report.clean_footer);
  bool noted = false;
  for (const std::string& d : rr.report.diagnostics) {
    if (d.find("undecodable epoch at offset") != std::string::npos) noted = true;
  }
  EXPECT_TRUE(noted) << rr.report.summary();
  // Identical records; the damaged recovery additionally carries the
  // "recovered ..." provenance note, which is the point of the exercise.
  const auto records_of = [](Trace t) {
    t.meta.notes.clear();
    std::ostringstream os;
    save_trace(t, os);
    return os.str();
  };
  EXPECT_EQ(records_of(rr.trace), records_of(clean.trace));
  EXPECT_FALSE(rr.trace.meta.notes.empty());
  check_spool_invariants(bytes);
}

TEST(SpoolCorpusTest, EmptyAndGarbageSpoolsFailCleanly) {
  for (const std::string& bytes :
       {std::string(), std::string("garbage"), std::string("GGSPOOL1\n"),
        std::string("GGSPOOL1\n\x02\x00\x00\x00", 13),
        std::string(1000, '\0')}) {
    const spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
    check_spool_invariants(bytes);
    if (!rr.usable) {
      EXPECT_FALSE(rr.report.clean_footer);
    }
  }
}

}  // namespace
}  // namespace gg
