// Acceptance tests pinning the paper-reproduction claims (EXPERIMENTS.md).
// These are deliberately coarse (shape, not absolute values): they protect
// the calibration of the simulator's policy/memory models — if a model
// change breaks a paper story, it fails here before anyone re-reads bench
// output.
#include <gtest/gtest.h>

#include "analysis/binpack.hpp"
#include "analysis/report.hpp"
#include "apps/blackscholes.hpp"
#include "apps/fft.hpp"
#include "apps/freqmine.hpp"
#include "apps/kdtree.hpp"
#include "apps/sort.hpp"
#include "apps/sparselu.hpp"
#include "apps/strassen.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

namespace gg {
namespace {

using front::Ctx;

sim::Program capture(const char* name,
                     const std::function<front::TaskFn(front::Engine&)>& make) {
  sim::Capture cap;
  sim::CaptureRegionEngine eng(cap);
  return cap.run(name, make(eng));
}

TimeNs makespan48(const sim::Program& p,
                  sim::SimPolicy pol = sim::SimPolicy::mir(),
                  int cores = 48) {
  sim::SimOptions o;
  o.policy = pol;
  o.num_cores = cores;
  return sim::simulate(p, o).makespan();
}

// ---- §2: the kdtree cutoff bug ---------------------------------------------

TEST(FidelityTest, KdtreeFixHelpsEveryRuntimeAndIccResistsTheBug) {
  auto cap = [](bool fixed) {
    return capture("kdtree", [&](front::Engine& e) {
      apps::KdtreeParams p;
      p.num_points = 8000;
      p.fixed = fixed;
      return apps::kdtree_program(e, p);
    });
  };
  const sim::Program before = cap(false);
  const sim::Program after = cap(true);
  for (auto pol : {sim::SimPolicy::gcc(), sim::SimPolicy::icc(),
                   sim::SimPolicy::mir()}) {
    EXPECT_LT(makespan48(after, pol), makespan48(before, pol)) << pol.name;
  }
  // GCC (locked task queue) suffers far more from the bug than ICC
  // (internal cutoff): the paper's §2 cross-runtime observation.
  const double gcc_pain =
      static_cast<double>(makespan48(before, sim::SimPolicy::gcc())) /
      static_cast<double>(makespan48(after, sim::SimPolicy::gcc()));
  const double icc_pain =
      static_cast<double>(makespan48(before, sim::SimPolicy::icc())) /
      static_cast<double>(makespan48(after, sim::SimPolicy::icc()));
  EXPECT_GT(gcc_pain, 2.0 * icc_pain);
}

// ---- §4.3.1: Sort -----------------------------------------------------------

TEST(FidelityTest, SortRoundRobinReducesInflationAndMakespan) {
  auto analyzed = [](front::PagePlacement placement) {
    sim::Capture cap;
    sim::CaptureRegionEngine ce(cap);
    apps::SortParams p;
    p.num_elements = 1 << 19;
    p.quick_cutoff = 1 << 13;
    p.merge_cutoff = 1 << 13;
    p.placement = placement;
    const sim::Program prog = cap.run("sort", apps::sort_program(ce, p));
    sim::SimOptions o1;
    o1.num_cores = 1;
    static GrainTable baselines[2];
    GrainTable& baseline =
        baselines[placement == front::PagePlacement::RoundRobin ? 1 : 0];
    baseline = GrainTable::build(sim::simulate(prog, o1));
    sim::SimOptions o;
    const Trace t = sim::simulate(prog, o);
    AnalysisOptions ao;
    ao.baseline = &baseline;
    ProblemThresholds th =
        ProblemThresholds::defaults(48, Topology::opteron48());
    th.work_deviation_max = 1.2;
    ao.thresholds = th;
    return std::make_pair(
        t.makespan(),
        analyze(t, Topology::opteron48(), ao)
            .problems[static_cast<size_t>(Problem::WorkInflation)]
            .flagged_percent);
  };
  const auto [t_ft, inflated_ft] = analyzed(front::PagePlacement::FirstTouch);
  const auto [t_rr, inflated_rr] = analyzed(front::PagePlacement::RoundRobin);
  EXPECT_LT(t_rr, t_ft);                        // performance improves
  EXPECT_LT(inflated_rr, inflated_ft * 0.85);   // inflation share drops
  EXPECT_GT(inflated_ft, 30.0);                 // it was widespread before
}

// ---- §4.3.2: botsspar -------------------------------------------------------

TEST(FidelityTest, BotssparInterchangeRemovesBmodInflation) {
  auto median_bmod_dev = [](bool interchange) {
    sim::Capture cap;
    sim::CaptureRegionEngine ce(cap);
    apps::SparseLuParams p;
    p.blocks = 12;
    p.block_size = 24;
    p.interchange = interchange;
    const sim::Program prog =
        cap.run("botsspar", apps::sparselu_program(ce, p));
    sim::SimOptions o1;
    o1.num_cores = 1;
    static GrainTable baselines[2];
    GrainTable& baseline = baselines[interchange ? 1 : 0];
    baseline = GrainTable::build(sim::simulate(prog, o1));
    sim::SimOptions o;
    const Trace t = sim::simulate(prog, o);
    AnalysisOptions ao;
    ao.baseline = &baseline;
    const Analysis a = analyze(t, Topology::opteron48(), ao);
    for (const SourceProfileRow& r : a.sources) {
      if (r.source.find("bmod") != std::string::npos)
        return r.median_work_deviation;
    }
    return -1.0;
  };
  const double before = median_bmod_dev(false);
  const double after = median_bmod_dev(true);
  ASSERT_GT(before, 0.0);
  ASSERT_GT(after, 0.0);
  EXPECT_GT(before, 2.0);          // flagged at the default threshold
  EXPECT_LT(after, before / 2.0);  // the fix collapses bmod's inflation
}

// ---- §4.3.3: FFT -------------------------------------------------------------

TEST(FidelityTest, FftCutoffCollapsesGrainCountAndHelpsAbsolutely) {
  auto cap = [](u64 cutoff) {
    return capture("fft", [&](front::Engine& e) {
      apps::FftParams p;
      p.num_samples = 1 << 14;
      p.spawn_cutoff = cutoff;
      return apps::fft_program(e, p);
    });
  };
  const sim::Program before = cap(2);
  const sim::Program after = cap(1 << 7);
  EXPECT_GT(before.task_count(), 20 * after.task_count());
  EXPECT_LT(makespan48(after), makespan48(before));
}

// ---- §4.3.4: Freqmine ---------------------------------------------------------

TEST(FidelityTest, FreqmineBinPackerSaysSevenCores) {
  sim::Capture cap;
  sim::CaptureRegionEngine ce(cap);
  const sim::Program prog =
      cap.run("freqmine", apps::freqmine_program(ce, apps::FreqmineParams{}));
  sim::SimOptions o;
  const Trace t = sim::simulate(prog, o);
  ASSERT_EQ(t.loops.size(), 3u);
  const LoopRec& fpgf = t.loops[1];
  EXPECT_EQ(t.chunks_of(fpgf.uid).size(), 1292u);  // the paper's count
  EXPECT_GT(loop_load_balance(t, fpgf), 5.0);      // irreparably imbalanced
  std::vector<u64> durations;
  for (const ChunkRec* c : t.chunks_of(fpgf.uid))
    durations.push_back(c->end - c->start);
  EXPECT_EQ(min_cores_for_makespan(durations, fpgf.end - fpgf.start), 7);
}

// ---- §4.3.5: Strassen ----------------------------------------------------------

TEST(FidelityTest, StrassenGrainCountsMatchPaper) {
  auto grain_count = [](bool hard_cutoff, u64 sc) {
    sim::Capture cap;
    sim::CaptureRegionEngine ce(cap);
    apps::StrassenParams p;
    p.matrix_size = 2048;
    p.sc = sc;
    p.hard_coded_cutoff = hard_cutoff;
    return cap.run("strassen", apps::strassen_program(ce, p)).task_count();
  };
  // Paper: "limited to 58 grains" with the bug, 2801 without (sc=128).
  EXPECT_EQ(grain_count(true, 128), 56u);
  EXPECT_EQ(grain_count(true, 64), 56u);  // SC has no effect: the bug
  EXPECT_EQ(grain_count(false, 128), 2800u);
}

// ---- §4.3.6: blackscholes -------------------------------------------------------

TEST(FidelityTest, BlackscholesChunksAreMemoryBoundButBalanced) {
  sim::Capture cap;
  sim::CaptureRegionEngine ce(cap);
  apps::BlackscholesParams p;
  p.num_options = 50000;
  p.sched = ScheduleKind::Dynamic;
  p.chunk = 64;
  const sim::Program prog =
      cap.run("blackscholes", apps::blackscholes_program(ce, p));
  sim::SimOptions o;
  const Trace t = sim::simulate(prog, o);
  const Analysis a = analyze(t, Topology::opteron48());
  EXPECT_GT(a.problems[static_cast<size_t>(Problem::PoorMemUtil)]
                .flagged_percent,
            65.0);  // ">65% of chunks"
  EXPECT_LT(a.metrics.loop_load_balance.begin()->second, 2.0);  // balanced
}

}  // namespace
}  // namespace gg
