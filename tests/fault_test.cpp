// Fault-injection harness tests: every fault class the harness can inject is
// driven end-to-end — inject, observe the damage, salvage, and verify the
// repaired trace passes full structural validation.
#include <gtest/gtest.h>

#include <sstream>

#include "fault/fault.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"
#include "trace/recorder.hpp"
#include "trace/salvage.hpp"
#include "trace/serialize.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

using front::Ctx;

// Same shape as trace_test's sample: root spawns two tasks, waits, runs one
// 2-thread static loop with two chunks. Fully consistent.
Trace make_sample_trace() {
  TraceRecorder rec(2);
  auto w0 = rec.writer(0);
  auto w1 = rec.writer(1);

  const StrId src_root = rec.intern("<root>");
  const StrId src_task = rec.intern_source("demo.c", 10, "work");
  const StrId src_loop = rec.intern_source("demo.c", 50, "loop");

  TaskRec root;
  root.uid = kRootTask;
  root.parent = kNoTask;
  root.src = src_root;
  w0.task(root);

  auto frag = [&](TaskId task, u32 seq, TimeNs s, TimeNs e, FragmentEnd r,
                  u64 ref) {
    FragmentRec f;
    f.task = task;
    f.seq = seq;
    f.start = s;
    f.end = e;
    f.end_reason = r;
    f.end_ref = ref;
    f.counters.compute = e - s;
    return f;
  };
  w0.fragment(frag(kRootTask, 0, 0, 10, FragmentEnd::Fork, 1));
  w0.fragment(frag(kRootTask, 1, 12, 20, FragmentEnd::Fork, 2));
  w0.fragment(frag(kRootTask, 2, 22, 30, FragmentEnd::Join, 0));
  w0.fragment(frag(kRootTask, 3, 40, 41, FragmentEnd::Loop, 1));
  w0.fragment(frag(kRootTask, 4, 100, 101, FragmentEnd::TaskEnd, 0));

  TaskRec t1;
  t1.uid = 1;
  t1.parent = kRootTask;
  t1.child_index = 0;
  t1.src = src_task;
  t1.create_time = 10;
  t1.creation_cost = 2;
  w0.task(t1);
  TaskRec t2 = t1;
  t2.uid = 2;
  t2.child_index = 1;
  t2.create_time = 20;
  w0.task(t2);

  FragmentRec f1 = frag(1, 0, 11, 25, FragmentEnd::TaskEnd, 0);
  f1.core = 1;
  w1.fragment(f1);
  w0.fragment(frag(2, 0, 21, 28, FragmentEnd::TaskEnd, 0));

  JoinRec j;
  j.task = kRootTask;
  j.seq = 0;
  j.start = 30;
  j.end = 39;
  w0.join(j);

  LoopRec loop;
  loop.uid = 1;
  loop.enclosing_task = kRootTask;
  loop.src = src_loop;
  loop.sched = ScheduleKind::Static;
  loop.iter_begin = 0;
  loop.iter_end = 8;
  loop.num_threads = 2;
  loop.starting_thread = 0;
  loop.start = 41;
  loop.end = 99;
  w0.loop(loop);

  auto chunk = [&](u16 thread, u32 seq, u64 lo, u64 hi, TimeNs s, TimeNs e) {
    ChunkRec c;
    c.loop = 1;
    c.thread = thread;
    c.core = thread;
    c.seq_on_thread = seq;
    c.iter_begin = lo;
    c.iter_end = hi;
    c.start = s;
    c.end = e;
    c.counters.compute = e - s;
    return c;
  };
  auto book = [&](u16 thread, u32 seq, TimeNs s, TimeNs e, bool got) {
    BookkeepRec b;
    b.loop = 1;
    b.thread = thread;
    b.core = thread;
    b.seq_on_thread = seq;
    b.start = s;
    b.end = e;
    b.got_chunk = got;
    return b;
  };
  w0.bookkeep(book(0, 0, 42, 43, true));
  w0.chunk(chunk(0, 0, 0, 4, 43, 60));
  w0.bookkeep(book(0, 1, 60, 61, false));
  w1.bookkeep(book(1, 0, 42, 44, true));
  w1.chunk(chunk(1, 0, 4, 8, 44, 70));
  w1.bookkeep(book(1, 1, 70, 71, false));

  auto stats = [&](u16 worker) {
    WorkerStatsRec s;
    s.worker = worker;
    s.tasks_spawned = 2;
    s.tasks_executed = 1 + worker;
    s.tasks_inlined = 1;
    s.steals = worker;
    s.idle_ns = 7;
    return s;
  };
  w0.stats(stats(0));
  w1.stats(stats(1));

  TraceMeta meta;
  meta.program = "sample";
  meta.runtime = "handmade";
  meta.topology = "generic4";
  meta.num_workers = 2;
  meta.num_cores = 2;
  meta.region_start = 0;
  meta.region_end = 101;
  return rec.finish(meta);
}

std::string to_text(const Trace& t) {
  std::ostringstream os;
  save_trace(t, os);
  return os.str();
}

// Damaged -> salvaged -> structurally valid, for one plan.
void expect_salvageable(const fault::FaultPlan& plan) {
  Trace t = make_sample_trace();
  const fault::InjectionReport rep = fault::inject(t, plan);
  EXPECT_TRUE(rep.any()) << rep.summary();
  const SalvageReport srep = salvage_trace(t);
  EXPECT_TRUE(validate_trace(t).empty())
      << "after " << rep.summary() << " then " << srep.summary() << ": "
      << validate_trace(t).front();
}

TEST(FaultInjectTest, DisabledPlanIsNoop) {
  Trace t = make_sample_trace();
  const std::string before = to_text(t);
  const fault::InjectionReport rep = fault::inject(t, fault::FaultPlan{});
  EXPECT_FALSE(rep.any());
  EXPECT_EQ(to_text(t), before);
}

TEST(FaultInjectTest, DeterministicForSameSeed) {
  fault::FaultPlan plan;
  plan.seed = 42;
  plan.drop_rate = 0.4;
  plan.duplicate_rate = 0.4;
  plan.clock_skew_max_ns = 500;

  Trace a = make_sample_trace();
  Trace b = make_sample_trace();
  const auto ra = fault::inject(a, plan);
  const auto rb = fault::inject(b, plan);
  EXPECT_EQ(ra.summary(), rb.summary());
  EXPECT_EQ(to_text(a), to_text(b));

  Trace c = make_sample_trace();
  plan.seed = 43;
  fault::inject(c, plan);
  EXPECT_NE(to_text(a), to_text(c));
}

TEST(FaultInjectTest, DropRecordsThenSalvageRecovers) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 0.5;
  expect_salvageable(plan);
}

TEST(FaultInjectTest, DuplicateRecordsThenSalvageDeduplicates) {
  fault::FaultPlan plan;
  plan.seed = 7;
  plan.duplicate_rate = 1.0;

  Trace t = make_sample_trace();
  const size_t tasks_before = t.tasks.size();
  const auto rep = fault::inject(t, plan);
  EXPECT_GT(rep.duplicated, 0u);
  EXPECT_EQ(t.tasks.size(), 2 * tasks_before);  // every record delivered twice
  const SalvageReport srep = salvage_trace(t);
  EXPECT_GT(srep.dropped_records, 0u);
  EXPECT_EQ(t.tasks.size(), tasks_before);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(FaultInjectTest, ClockSkewThenSalvageExtendsBounds) {
  fault::FaultPlan plan;
  plan.seed = 3;
  plan.clock_skew_max_ns = 10'000;

  Trace t = make_sample_trace();
  const auto rep = fault::inject(t, plan);
  EXPECT_GE(rep.skewed_workers, 1u);
  EXPECT_FALSE(validate_trace(t).empty());  // records past region_end
  const SalvageReport srep = salvage_trace(t);
  EXPECT_TRUE(srep.bounds_extended || srep.repaired_times > 0);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(FaultInjectTest, BufferOverflowThenSalvageRecovers) {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.buffer_capacity = 2;

  Trace t = make_sample_trace();
  const auto rep = fault::inject(t, plan);
  EXPECT_GT(rep.overflow_dropped, 0u);
  const SalvageReport srep = salvage_trace(t);
  EXPECT_TRUE(validate_trace(t).empty()) << srep.summary();
}

TEST(FaultInjectTest, WorkerDeathThenSalvageRecovers) {
  fault::FaultPlan plan;
  plan.seed = 5;
  plan.dead_workers = {1};
  plan.death_time_ns = 20;

  Trace t = make_sample_trace();
  const auto rep = fault::inject(t, plan);
  EXPECT_GT(rep.death_dropped, 0u);
  // Worker 1's stats and post-death records are gone.
  for (const WorkerStatsRec& s : t.worker_stats) EXPECT_NE(s.worker, 1);
  const SalvageReport srep = salvage_trace(t);
  EXPECT_TRUE(validate_trace(t).empty()) << srep.summary();
  // Task 1 lost its only fragment (it ran on the dead worker); salvage must
  // have synthesized a closing fragment rather than dropping the task.
  EXPECT_GT(srep.synthesized_fragments, 0u);
}

TEST(FaultInjectTest, EverythingAtOnceThenSalvageRecovers) {
  fault::FaultPlan plan;
  plan.seed = 11;
  plan.drop_rate = 0.3;
  plan.duplicate_rate = 0.3;
  plan.clock_skew_max_ns = 1000;
  plan.buffer_capacity = 4;
  plan.dead_workers = {1};
  plan.death_time_ns = 50;
  expect_salvageable(plan);
}

TEST(SalvageTest, NoopOnCleanTrace) {
  Trace t = make_sample_trace();
  const std::string before = to_text(t);
  const SalvageReport rep = salvage_trace(t);
  EXPECT_FALSE(rep.any()) << rep.summary();
  EXPECT_EQ(rep.grain_survival(), 1.0);
  EXPECT_EQ(to_text(t), before);
}

TEST(SalvageTest, SynthesizesRootWhenMissing) {
  Trace t = make_sample_trace();
  std::erase_if(t.tasks, [](const TaskRec& r) { return r.uid == kRootTask; });
  t.finalize();
  const SalvageReport rep = salvage_trace(t);
  EXPECT_TRUE(rep.root_synthesized);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(SalvageTest, QuarantinesOrphanedSubtree) {
  Trace t = make_sample_trace();
  // Point task 2 at a parent that never existed: unrecoverable context.
  for (TaskRec& task : t.tasks) {
    if (task.uid == 2) task.parent = 777;
  }
  t.finalize();
  const SalvageReport rep = salvage_trace(t);
  EXPECT_EQ(rep.quarantined_tasks, 1u);
  ASSERT_FALSE(rep.unrecoverable_tasks.empty());
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_LT(rep.grains_after, rep.grains_before);
}

TEST(SalvageTest, FillsChunkCoverageHole) {
  Trace t = make_sample_trace();
  std::erase_if(t.chunks, [](const ChunkRec& c) { return c.thread == 1; });
  t.finalize();
  EXPECT_FALSE(validate_trace(t).empty());
  const SalvageReport rep = salvage_trace(t);
  EXPECT_GT(rep.synthesized_chunks, 0u);
  EXPECT_TRUE(validate_trace(t).empty());
}

// --- engine integration ----------------------------------------------------

TEST(FaultEngineTest, ThreadedEngineAppliesPlanAndNotesProvenance) {
  rts::Options o;
  o.num_workers = 2;
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.drop_rate = 0.5;
  o.fault_plan = plan;
  rts::ThreadedEngine eng(o);
  Trace t = eng.run("faulty", [&](Ctx& ctx) {
    for (int i = 0; i < 8; ++i) {
      ctx.spawn(GG_SRC, [](Ctx&) {});
    }
    ctx.taskwait();
  });
  bool noted = false;
  for (const std::string& n : t.meta.notes)
    noted = noted || n.rfind("fault_injection", 0) == 0;
  EXPECT_TRUE(noted);
  salvage_trace(t);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(FaultEngineTest, SimulatorAppliesPlanAndNotesProvenance) {
  sim::Program p = sim::capture_program("faulty", [](Ctx& ctx) {
    for (int i = 0; i < 8; ++i) {
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(100); });
    }
    ctx.taskwait();
  });
  sim::SimOptions o;
  o.num_cores = 2;
  fault::FaultPlan plan;
  plan.seed = 9;
  plan.drop_rate = 0.5;
  o.fault_plan = plan;
  const Trace damaged = sim::simulate(p, o);
  bool noted = false;
  for (const std::string& n : damaged.meta.notes)
    noted = noted || n.rfind("fault_injection", 0) == 0;
  EXPECT_TRUE(noted);

  // Same program without the plan must still be pristine.
  o.fault_plan.reset();
  const Trace clean = sim::simulate(p, o);
  EXPECT_TRUE(validate_trace(clean).empty());

  Trace repaired = damaged;
  salvage_trace(repaired);
  EXPECT_TRUE(validate_trace(repaired).empty());
}

// --- stream-level corruptions ---------------------------------------------

TEST(FaultStreamTest, ShuffledTextTraceStillLoadsCleanly) {
  const Trace t = make_sample_trace();
  const std::string text = to_text(t);
  for (u64 seed : {1, 2, 3}) {
    const std::string shuffled = fault::shuffle_lines(text, seed);
    EXPECT_EQ(shuffled.substr(0, 9), "ggtrace 3");
    std::istringstream is(shuffled);
    const LoadResult lr = load_trace_ex(is, LoadOptions{LoadMode::Strict, true});
    EXPECT_EQ(lr.status, LoadStatus::Ok) << lr.describe();
  }
}

TEST(FaultStreamTest, TruncatedTextFailsStrictButSalvages) {
  const Trace t = make_sample_trace();
  const std::string text = to_text(t);
  const std::string cut = fault::truncate_stream(text, text.size() / 2);
  {
    std::istringstream is(cut);
    const LoadResult lr = load_trace_ex(is, LoadOptions{LoadMode::Strict, true});
    EXPECT_EQ(lr.status, LoadStatus::Failed);
    EXPECT_NE(lr.first_error(), nullptr);
  }
  {
    std::istringstream is(cut);
    const LoadResult lr =
        load_trace_ex(is, LoadOptions{LoadMode::Salvage, true});
    ASSERT_TRUE(lr.usable()) << lr.describe();
    EXPECT_EQ(lr.status, LoadStatus::Salvaged);
    EXPECT_TRUE(validate_trace(*lr.trace).empty());
    EXPECT_LE(lr.salvage.grain_survival(), 1.0);
  }
}

TEST(FaultStreamTest, TruncatedBinaryMidTrailerSalvages) {
  const Trace t = make_sample_trace();
  std::ostringstream os;
  save_trace_binary(t, os);
  const std::string bin = os.str();
  // Cut inside the v3 trailer (worker stats live at the very end).
  const std::string cut = fault::truncate_stream(bin, bin.size() - 40);
  {
    std::istringstream is(cut);
    const LoadResult lr =
        load_trace_binary_ex(is, LoadOptions{LoadMode::Strict, true});
    EXPECT_EQ(lr.status, LoadStatus::Failed);
  }
  {
    std::istringstream is(cut);
    const LoadResult lr =
        load_trace_binary_ex(is, LoadOptions{LoadMode::Salvage, true});
    ASSERT_TRUE(lr.usable()) << lr.describe();
    EXPECT_TRUE(validate_trace(*lr.trace).empty());
    // Everything before the trailer survived.
    EXPECT_EQ(lr.trace->tasks.size(), t.tasks.size());
    EXPECT_EQ(lr.trace->chunks.size(), t.chunks.size());
  }
}

TEST(FaultStreamTest, FlipBitIsDeterministicAndBounded) {
  const std::string s = "abc";
  EXPECT_EQ(fault::flip_bit(s, 1, 0), "acc");
  EXPECT_EQ(fault::flip_bit(s, 99, 0), s);  // out of range: no-op
  EXPECT_EQ(fault::flip_bit(fault::flip_bit(s, 0, 5), 0, 5), s);
}

// --- structured diagnostics ------------------------------------------------

TEST(LoadResultTest, MalformedRecordNamesLineAndKind) {
  const Trace t = make_sample_trace();
  std::string text = to_text(t);
  // Corrupt the first frag line.
  const size_t pos = text.find("\nfrag ");
  ASSERT_NE(pos, std::string::npos);
  const size_t eol = text.find('\n', pos + 1);
  text.replace(pos, eol - pos, "\nfrag bogus");
  std::istringstream is(text);
  const LoadResult lr = load_trace_ex(is, LoadOptions{LoadMode::Strict, true});
  EXPECT_EQ(lr.status, LoadStatus::Failed);
  ASSERT_NE(lr.first_error(), nullptr);
  EXPECT_EQ(lr.first_error()->code, LoadErrorCode::MalformedRecord);
  EXPECT_EQ(lr.first_error()->context, "frag");
  EXPECT_TRUE(lr.first_error()->offset_is_line);
  EXPECT_GT(lr.first_error()->offset, 1u);
  EXPECT_NE(lr.describe().find("malformed frag record"), std::string::npos);
}

TEST(LoadResultTest, LenientSkipsUnknownRecordKinds) {
  const Trace t = make_sample_trace();
  std::string text = to_text(t);
  text += "future-record 1 2 3\n";
  {
    std::istringstream is(text);
    const LoadResult lr =
        load_trace_ex(is, LoadOptions{LoadMode::Strict, true});
    EXPECT_EQ(lr.status, LoadStatus::Failed);
  }
  {
    std::istringstream is(text);
    const LoadResult lr =
        load_trace_ex(is, LoadOptions{LoadMode::Lenient, true});
    EXPECT_EQ(lr.status, LoadStatus::Ok) << lr.describe();
    EXPECT_EQ(lr.diagnostics.size(), 1u);
    EXPECT_EQ(lr.diagnostics[0].code, LoadErrorCode::UnknownRecordKind);
  }
}

TEST(LoadResultTest, ValidationViolationsCarryEntityContext) {
  Trace t = make_sample_trace();
  std::erase_if(t.chunks, [](const ChunkRec& c) { return c.thread == 1; });
  t.finalize();
  std::ostringstream os;
  save_trace(t, os);
  std::istringstream is(os.str());
  const LoadResult lr = load_trace_ex(is, LoadOptions{LoadMode::Lenient, true});
  EXPECT_EQ(lr.status, LoadStatus::Failed);
  ASSERT_NE(lr.first_error(), nullptr);
  EXPECT_EQ(lr.first_error()->code, LoadErrorCode::InvalidStructure);
  EXPECT_EQ(lr.first_error()->context, "loop 1");
}

TEST(LoadResultTest, StructuredValidationMatchesLegacyMessages) {
  Trace t = make_sample_trace();
  t.meta.region_end = 50;  // fragments now out of bounds
  t.finalize();
  const ValidationReport rep = validate_trace_structured(t);
  ASSERT_FALSE(rep.ok());
  EXPECT_EQ(rep.messages(), validate_trace(t));
  EXPECT_FALSE(rep.violations.front().where().empty());
}

}  // namespace
}  // namespace gg
