// Fast-path equivalence suite: the buffered parser (ParseEngine::Fast) and
// the parallel metric passes must be drop-in replacements — every analysis
// output (report, GraphML, CSV, JSON summary) byte-identical to the legacy
// istream parser with serial metrics, on the committed golden corpus, on a
// sweep of generator-seeded traces, and across --threads settings.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "export/grain_csv.hpp"
#include "export/graphml.hpp"
#include "export/json_summary.hpp"
#include "trace/serialize.hpp"
#include "trace/synth.hpp"
#include "trace/validate.hpp"

#ifndef GG_GOLDEN_DIR
#error "GG_GOLDEN_DIR must point at the committed corpus"
#endif

namespace gg {
namespace {

/// Every deterministic analysis output of one trace as a single byte
/// string. Any engine- or thread-count-dependent behavior shows up as a
/// byte diff here.
std::string analysis_bytes(const Trace& trace, int threads) {
  AnalysisOptions opts;
  opts.threads = threads;
  opts.metrics.threads = threads;
  const Analysis a = analyze(trace, Topology::generic4(), opts);
  std::ostringstream os;
  os << render_report(trace, a);
  write_graphml(os, a.graph, trace, &a.grains, &a.metrics, GraphMlOptions{});
  write_grain_csv(os, trace, a.grains, a.metrics);
  write_json_summary(os, trace, a);
  return os.str();
}

Trace load_with(const std::string& path, ParseEngine engine) {
  LoadOptions lo;
  lo.engine = engine;
  lo.mode = LoadMode::Strict;
  LoadResult lr = load_trace_file_ex(path, lo);
  EXPECT_TRUE(lr.usable()) << path << ": " << lr.describe();
  return lr.trace.value();
}

class GoldenFastPathTest : public ::testing::TestWithParam<const char*> {};

// Both serialization formats, both parse engines, serial and parallel
// metrics: all four paths must agree byte-for-byte on the full output.
TEST_P(GoldenFastPathTest, EnginesAgreeOnEveryOutput) {
  const std::string base = std::string(GG_GOLDEN_DIR) + "/" + GetParam();
  const Trace legacy_text = load_with(base + ".ggtrace", ParseEngine::Legacy);
  const Trace fast_text = load_with(base + ".ggtrace", ParseEngine::Fast);
  const Trace fast_bin = load_with(base + ".ggbin", ParseEngine::Fast);

  const std::string expected = analysis_bytes(legacy_text, /*threads=*/1);
  EXPECT_EQ(expected, analysis_bytes(fast_text, /*threads=*/1));
  EXPECT_EQ(expected, analysis_bytes(fast_text, /*threads=*/0));
  EXPECT_EQ(expected, analysis_bytes(fast_bin, /*threads=*/0));
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenFastPathTest,
                         ::testing::Values("tasks_mir4", "loops_gcc2",
                                           "exact_zero1"));

// 50 generator-seeded traces round-tripped through the text format and
// loaded by both engines; the full analysis output must match.
TEST(FastPathSweepTest, FiftySeededTracesAgree) {
  for (u64 seed = 1; seed <= 50; ++seed) {
    SynthOptions sopts;
    sopts.seed = seed;
    sopts.grains = 300 + (seed % 7) * 100;
    sopts.workers = 2 + static_cast<int>(seed % 7);
    sopts.loop_fraction = (seed % 3) * 0.3;
    const Trace trace = synth_trace(sopts);
    ASSERT_TRUE(validate_trace_structured(trace).violations.empty())
        << "seed " << seed;
    std::ostringstream text;
    save_trace(trace, text);

    LoadOptions fast, legacy;
    fast.engine = ParseEngine::Fast;
    legacy.engine = ParseEngine::Legacy;
    fast.mode = legacy.mode = LoadMode::Strict;
    std::istringstream fis(text.str()), lis(text.str());
    LoadResult fr = load_trace_ex(fis, fast);
    LoadResult lr = load_trace_ex(lis, legacy);
    ASSERT_TRUE(fr.usable()) << "seed " << seed << ": " << fr.describe();
    ASSERT_TRUE(lr.usable()) << "seed " << seed << ": " << lr.describe();
    ASSERT_EQ(analysis_bytes(*lr.trace, /*threads=*/1),
              analysis_bytes(*fr.trace, /*threads=*/0))
        << "seed " << seed;
  }
}

// The parallel metric passes (and, via analysis_bytes, the sharded graph
// and grain-table builders) must be bit-deterministic: any thread count
// (serial, small, large, auto) yields identical bytes.
TEST(FastPathThreadsTest, ThreadCountNeverChangesOutput) {
  SynthOptions sopts;
  sopts.seed = 99;
  sopts.grains = 5000;
  sopts.workers = 8;
  const Trace trace = synth_trace(sopts);
  const std::string serial = analysis_bytes(trace, /*threads=*/1);
  EXPECT_EQ(serial, analysis_bytes(trace, /*threads=*/0));
  EXPECT_EQ(serial, analysis_bytes(trace, /*threads=*/4));
  EXPECT_EQ(serial, analysis_bytes(trace, /*threads=*/8));
  // And across repeated runs at the same setting.
  EXPECT_EQ(analysis_bytes(trace, 0), analysis_bytes(trace, 0));
}

// The sharded graph build and grain derivation at a size where the shards
// genuinely run in parallel (well past the serial-fallback threshold): node
// ids, edge order, topological order, and every grain row must be the exact
// serial result for every thread count. The trace round-trips through the
// binary format so the parallel section decoder is in the loop too.
TEST(FastPathThreadsTest, ShardedBuildersDeterministicAtScale) {
  SynthOptions sopts;
  sopts.seed = 123;
  sopts.grains = 30000;
  sopts.workers = 8;
  sopts.loop_fraction = 0.4;
  const Trace synthesized = synth_trace(sopts);
  std::ostringstream bin;
  save_trace_binary(synthesized, bin);

  // Parallel binary decode: identical trace for every load thread count.
  std::string serial_trace_bytes;
  for (const int threads : {1, 2, 4, 8}) {
    LoadOptions lo;
    lo.mode = LoadMode::Strict;
    lo.threads = threads;
    std::istringstream is(bin.str());
    const LoadResult lr = load_trace_binary_ex(is, lo);
    ASSERT_TRUE(lr.usable()) << "threads " << threads << ": "
                             << lr.describe();
    std::ostringstream rt;
    save_trace_binary(*lr.trace, rt);
    if (threads == 1) {
      serial_trace_bytes = rt.str();
    } else {
      EXPECT_EQ(serial_trace_bytes, rt.str()) << "threads " << threads;
    }
  }

  // Sharded builders: structural identity against the serial build.
  const GrainGraph g1 = GrainGraph::build(synthesized, /*threads=*/1);
  const GrainTable t1 = GrainTable::build(synthesized, /*threads=*/1);
  auto graph_bytes = [&](const GrainGraph& g) {
    std::ostringstream os;
    write_graphml(os, g, synthesized, nullptr, nullptr, GraphMlOptions{});
    for (const u32 n : g.topo_order()) os << n << ',';
    return os.str();
  };
  auto table_bytes = [&](const GrainTable& t) {
    std::ostringstream os;
    for (const Grain& g : t.grains()) {
      os << static_cast<int>(g.kind) << '|' << g.task << '|' << g.loop << '|'
         << g.thread << '|' << g.chunk_seq << '|' << g.path << '|' << g.src
         << '|' << g.parent << '|' << g.first_start << '|' << g.last_end
         << '|' << g.exec_time << '|' << g.core << '|' << g.n_fragments
         << '|' << g.n_children << '|' << g.inlined << '|' << g.creation_cost
         << '|' << g.sync_cost << '\n';
    }
    return os.str();
  };
  const std::string g_serial = graph_bytes(g1);
  const std::string t_serial = table_bytes(t1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(g_serial, graph_bytes(GrainGraph::build(synthesized, threads)))
        << "graph differs at " << threads << " threads";
    EXPECT_EQ(t_serial, table_bytes(GrainTable::build(synthesized, threads)))
        << "grain table differs at " << threads << " threads";
  }
}

}  // namespace
}  // namespace gg
