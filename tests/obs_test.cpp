// Self-telemetry layer tests: deterministic histogram merges across thread
// counts, Prometheus exposition grammar, the binary 'T'-frame payload codec,
// spool round-trips (live monitoring, crash recovery of the last snapshot,
// corrupt-frame degradation), and the compiled-in-but-off contract — a null
// registry must leave engine output bit-identical.
#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "front/front.hpp"
#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "obs/telemetry.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"
#include "sim/program.hpp"
#include "trace/serialize.hpp"
#include "trace/spool.hpp"
#include "trace/synth.hpp"

namespace gg {
namespace {

using front::Ctx;

// ---------------------------------------------------------------------------
// Counters / histograms

TEST(ObsCounterTest, ShardedAddsSumExactly) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr u64 kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (u64 i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsHistogramTest, BucketBoundaries) {
  obs::Histogram h;
  h.observe(0);    // bucket 0: exactly {0}
  h.observe(1);    // bucket 1: [1, 1]
  h.observe(2);    // bucket 2: [2, 3]
  h.observe(3);    // bucket 2
  h.observe(4);    // bucket 3: [4, 7]
  h.observe(255);  // bucket 8: [128, 255]
  const obs::HistogramSnapshot s = h.snapshot_values();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 0u + 1 + 2 + 3 + 4 + 255);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 255u);
  EXPECT_EQ(s.counts[0], 1u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 2u);
  EXPECT_EQ(s.counts[3], 1u);
  EXPECT_EQ(s.counts[8], 1u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(0), 0u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(1), 1u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(2), 3u);
  EXPECT_EQ(obs::HistogramSnapshot::bucket_upper(8), 255u);
}

/// The same multiset of observations must merge to the same snapshot no
/// matter how many threads (and which shards) recorded it.
TEST(ObsHistogramTest, MergeDeterministicAcrossThreadCounts) {
  std::vector<u64> values;
  u64 x = 88172645463325252ULL;
  for (int i = 0; i < 20000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    values.push_back(x >> (x % 50));
  }
  obs::HistogramSnapshot reference;
  {
    obs::Histogram h;
    for (u64 v : values) h.observe(v);
    reference = h.snapshot_values();
  }
  for (int nthreads : {2, 4, 8}) {
    obs::Histogram h;
    std::vector<std::thread> threads;
    const size_t chunk = values.size() / static_cast<size_t>(nthreads);
    for (int t = 0; t < nthreads; ++t) {
      const size_t lo = static_cast<size_t>(t) * chunk;
      const size_t hi =
          t == nthreads - 1 ? values.size() : lo + chunk;
      threads.emplace_back([&h, &values, lo, hi] {
        for (size_t i = lo; i < hi; ++i) h.observe(values[i]);
      });
    }
    for (auto& t : threads) t.join();
    const obs::HistogramSnapshot s = h.snapshot_values();
    EXPECT_EQ(s.count, reference.count) << nthreads << " threads";
    EXPECT_EQ(s.sum, reference.sum) << nthreads << " threads";
    EXPECT_EQ(s.min, reference.min) << nthreads << " threads";
    EXPECT_EQ(s.max, reference.max) << nthreads << " threads";
    EXPECT_EQ(s.counts, reference.counts) << nthreads << " threads";
  }
}

TEST(ObsRegistryTest, InstancesAreIsolated) {
  obs::Registry a, b;
  a.counter("x")->add(3);
  b.counter("x")->add(5);
  a.gauge("g")->set(1.5);
  EXPECT_EQ(a.snapshot().counters.at("x"), 3u);
  EXPECT_EQ(b.snapshot().counters.at("x"), 5u);
  EXPECT_EQ(b.snapshot().gauges.count("g"), 0u);
  // Same name, same handle (call sites cache pointers).
  EXPECT_EQ(a.counter("x"), a.counter("x"));
}

// ---------------------------------------------------------------------------
// Exposition formats

obs::MetricsSnapshot sample_snapshot() {
  obs::Registry reg;
  reg.counter("engine.tasks_executed")->add(42);
  reg.counter("spool.frames_written")->add(7);
  reg.gauge("engine.progress")->set(123.0);
  reg.gauge("engine.worker.0.heartbeat")->set(9.0);
  obs::Histogram* h = reg.histogram("engine.task_latency_ns");
  for (u64 v : {0ULL, 5ULL, 1000ULL, 70000ULL, 70001ULL}) h->observe(v);
  obs::MetricsSnapshot s = reg.snapshot();
  s.ts_ns = 123456789;
  return s;
}

TEST(ObsExpositionTest, PrometheusGrammar) {
  const std::string text = obs::render_prometheus(sample_snapshot());
  std::istringstream is(text);
  std::string line;
  size_t samples = 0;
  while (std::getline(is, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0 || line.rfind("# HELP ", 0) == 0)
      continue;
    // Sample line: metric_name[{labels}] value
    ASSERT_TRUE(std::isalpha(static_cast<unsigned char>(line[0])) ||
                line[0] == '_')
        << line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name_part = line.substr(0, space);
    for (char ch : name_part.substr(0, name_part.find('{'))) {
      ASSERT_TRUE(std::isalnum(static_cast<unsigned char>(ch)) || ch == '_')
          << line;
    }
    EXPECT_EQ(name_part.rfind("gg_", 0), 0u) << line;
    ++samples;
  }
  EXPECT_GT(samples, 0u);
  // Histogram series must be present, cumulative, and capped by +Inf.
  EXPECT_NE(text.find("gg_engine_task_latency_ns_bucket{le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("gg_engine_task_latency_ns_count 5"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gg_engine_tasks_executed counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gg_engine_progress gauge"), std::string::npos);
}

TEST(ObsExpositionTest, JsonRendersEveryMetric) {
  const std::string json = obs::render_json(sample_snapshot());
  EXPECT_NE(json.find("\"engine.tasks_executed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"engine.progress\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.task_latency_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"ts_ns\":123456789"), std::string::npos);
}

TEST(ObsPayloadTest, RoundTripsExactly) {
  const obs::MetricsSnapshot in = sample_snapshot();
  const std::string payload = obs::encode_telemetry_payload(in);
  obs::MetricsSnapshot out;
  ASSERT_TRUE(obs::decode_telemetry_payload(payload, &out));
  EXPECT_EQ(out.ts_ns, in.ts_ns);
  EXPECT_EQ(out.counters, in.counters);
  EXPECT_EQ(out.gauges, in.gauges);
  ASSERT_EQ(out.histograms.size(), in.histograms.size());
  for (const auto& [name, h] : in.histograms) {
    ASSERT_EQ(out.histograms.count(name), 1u);
    const obs::HistogramSnapshot& o = out.histograms.at(name);
    EXPECT_EQ(o.count, h.count);
    EXPECT_EQ(o.sum, h.sum);
    EXPECT_EQ(o.min, h.min);
    EXPECT_EQ(o.max, h.max);
    EXPECT_EQ(o.counts, h.counts);
  }
}

TEST(ObsPayloadTest, DecodeRejectsDamage) {
  const std::string payload =
      obs::encode_telemetry_payload(sample_snapshot());
  obs::MetricsSnapshot out;
  EXPECT_FALSE(obs::decode_telemetry_payload("", &out));
  EXPECT_FALSE(obs::decode_telemetry_payload(
      payload.substr(0, payload.size() / 2), &out));
  std::string bad_version = payload;
  bad_version[0] = 9;
  EXPECT_FALSE(obs::decode_telemetry_payload(bad_version, &out));
}

// ---------------------------------------------------------------------------
// Spans

TEST(ObsSpanTest, ChromeExportContainsSpans) {
  obs::SpanTracer tracer;
  tracer.record("analysis.graph", 0, 1000, 5000);
  tracer.record("metrics.scatter", 1, 2000, 3000);
  std::ostringstream os;
  obs::write_chrome_spans(os, tracer.spans());
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("analysis.graph"), std::string::npos);
  EXPECT_NE(json.find("metrics.scatter"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ObsSpanTest, PhaseSpanIsInertWithoutContext) {
  obs::install(nullptr);
  { obs::PhaseSpan span("should.not.record"); }
  obs::Telemetry telem;
  obs::install(&telem);
  { obs::PhaseSpan span("should.record"); }
  obs::install(nullptr);
  ASSERT_EQ(telem.tracer.spans().size(), 1u);
  EXPECT_EQ(telem.tracer.spans()[0].name, "should.record");
}

// ---------------------------------------------------------------------------
// 'T' frames in the spool

std::vector<std::string> sample_payloads(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    obs::Registry reg;
    reg.counter("engine.tasks_executed")->add(static_cast<u64>(10 * (i + 1)));
    reg.gauge("engine.progress")->set(static_cast<double>(i + 1));
    obs::MetricsSnapshot s = reg.snapshot();
    s.ts_ns = static_cast<u64>(1000 + i);
    out.push_back(obs::encode_telemetry_payload(s));
  }
  return out;
}

TEST(ObsSpoolTest, TelemetryFramesRoundTrip) {
  SynthOptions so;
  so.seed = 7;
  so.grains = 300;
  const Trace trace = synth_trace(so);
  const std::vector<std::string> payloads = sample_payloads(3);
  const std::string bytes = spool::spool_trace_bytes(trace, 4 * 1024, payloads);

  spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
  ASSERT_TRUE(rr.usable);
  EXPECT_TRUE(rr.report.clean_footer);
  EXPECT_EQ(rr.report.telemetry_frames, 3u);
  EXPECT_EQ(rr.report.telemetry_corrupt, 0u);
  // The last snapshot wins.
  EXPECT_EQ(rr.report.telemetry, payloads.back());
  obs::MetricsSnapshot snap;
  ASSERT_TRUE(obs::decode_telemetry_payload(rr.report.telemetry, &snap));
  EXPECT_EQ(snap.counters.at("engine.tasks_executed"), 30u);
  EXPECT_EQ(snap.gauges.at("engine.progress"), 3.0);
  // Telemetry must not perturb the recovered records.
  std::ostringstream with_t, without_t;
  save_trace(rr.trace, with_t);
  spool::RecoverResult plain =
      spool::recover_spool_bytes(spool::spool_trace_bytes(trace, 4 * 1024));
  ASSERT_TRUE(plain.usable);
  save_trace(plain.trace, without_t);
  EXPECT_EQ(with_t.str(), without_t.str());
}

TEST(ObsSpoolTest, CrashedRunKeepsLastSnapshot) {
  SynthOptions so;
  so.seed = 11;
  so.grains = 300;
  const Trace trace = synth_trace(so);
  const std::vector<std::string> payloads = sample_payloads(2);
  std::string bytes = spool::spool_trace_bytes(trace, 4 * 1024, payloads);
  // Chop the clean footer (and any trailing bytes) to model a crash after
  // the last telemetry frame was durably written.
  const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
  ASSERT_FALSE(frames.empty());
  const spool::FrameSpan& last = frames.back();
  ASSERT_EQ(last.type, spool::FrameType::CleanFooter);
  bytes.resize(last.offset);

  spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
  ASSERT_TRUE(rr.usable);
  EXPECT_TRUE(rr.report.partial());
  EXPECT_EQ(rr.report.telemetry_frames, 2u);
  EXPECT_EQ(rr.report.telemetry, payloads.back());
  obs::MetricsSnapshot snap;
  EXPECT_TRUE(obs::decode_telemetry_payload(rr.report.telemetry, &snap));
}

TEST(ObsSpoolTest, CorruptTelemetryDegradesWithoutDamage) {
  SynthOptions so;
  so.seed = 13;
  so.grains = 300;
  const Trace trace = synth_trace(so);
  const std::vector<std::string> payloads = sample_payloads(1);
  std::string bytes = spool::spool_trace_bytes(trace, 4 * 1024, payloads);
  bool flipped = false;
  for (const spool::FrameSpan& f : spool::scan_frames(bytes)) {
    if (f.type == spool::FrameType::Telemetry) {
      bytes[f.offset + spool::kFrameHeaderBytes] ^= 0x40;
      flipped = true;
      break;
    }
  }
  ASSERT_TRUE(flipped);

  spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
  ASSERT_TRUE(rr.usable);
  // Telemetry-only corruption: advisory channel lost, trace undamaged.
  EXPECT_EQ(rr.report.telemetry_corrupt, 1u);
  EXPECT_EQ(rr.report.telemetry_frames, 0u);
  EXPECT_TRUE(rr.report.telemetry.empty());
  EXPECT_EQ(rr.report.frames_corrupt, 0u);
  EXPECT_TRUE(rr.report.clean_footer);
  EXPECT_FALSE(rr.trace.meta.recovered());
  // Records survive byte-for-byte.
  std::ostringstream corrupted, clean;
  save_trace(rr.trace, corrupted);
  spool::RecoverResult cr =
      spool::recover_spool_bytes(spool::spool_trace_bytes(trace, 4 * 1024));
  ASSERT_TRUE(cr.usable);
  save_trace(cr.trace, clean);
  EXPECT_EQ(corrupted.str(), clean.str());
}

// ---------------------------------------------------------------------------
// Engines: modeled telemetry + the compiled-in-but-off contract

sim::Program small_program() {
  return sim::capture_program("obs-fib", [](Ctx& ctx) {
    std::function<void(Ctx&, int)> fib = [&fib](Ctx& c, int k) {
      c.compute(1500);
      if (k < 2) return;
      c.spawn(GG_SRC, [&fib, k](Ctx& cc) { fib(cc, k - 1); });
      c.spawn(GG_SRC, [&fib, k](Ctx& cc) { fib(cc, k - 2); });
      c.taskwait();
    };
    fib(ctx, 9);
  });
}

TEST(ObsEngineTest, SimPublishesModeledSchema) {
  const sim::Program p = small_program();
  sim::SimOptions o;
  o.num_cores = 4;
  o.memory_model = false;
  obs::Registry reg;
  o.telemetry = &reg;
  const Trace t = sim::simulate(p, o);
  const obs::MetricsSnapshot s = reg.snapshot();
  ASSERT_EQ(s.counters.count("engine.tasks_executed"), 1u);
  EXPECT_GT(s.counters.at("engine.tasks_executed"), 0u);
  ASSERT_EQ(s.histograms.count("engine.task_latency_ns"), 1u);
  EXPECT_GT(s.histograms.at("engine.task_latency_ns").count, 0u);
  ASSERT_EQ(s.gauges.count("engine.progress"), 1u);
  EXPECT_EQ(static_cast<size_t>(s.gauges.at("engine.progress")),
            t.grain_count());
}

TEST(ObsEngineTest, DisabledPathIsBitIdentical) {
  const sim::Program p = small_program();
  sim::SimOptions off;
  off.num_cores = 4;
  off.memory_model = false;
  sim::SimOptions on = off;
  obs::Registry reg;
  on.telemetry = &reg;
  std::ostringstream a, b, c;
  save_trace(sim::simulate(p, off), a);
  save_trace(sim::simulate(p, on), b);
  save_trace(sim::simulate(p, off), c);
  EXPECT_EQ(a.str(), c.str());  // determinism baseline
  EXPECT_EQ(a.str(), b.str());  // telemetry leaves the trace untouched
}

}  // namespace
}  // namespace gg
