// OpenMP 4.5 taskloop tests (§6 future work, implemented): coverage,
// grainsize control, graph shape (tasks, not chunks), both engines.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "analysis/report.hpp"
#include "graph/grain_graph.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/sim_engine.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

using front::Ctx;

TEST(TaskloopTest, EveryIterationRunsOnceThreaded) {
  for (int workers : {1, 4}) {
    rts::Options o;
    o.num_workers = workers;
    rts::ThreadedEngine eng(o);
    std::vector<std::atomic<int>> hits(777);
    for (auto& h : hits) h.store(0);
    const Trace t = eng.run("taskloop", [&](Ctx& ctx) {
      ctx.taskloop(GG_SRC, 0, hits.size(), 16,
                   [&](u64 i, Ctx&) { hits[i].fetch_add(1); });
    });
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
    const auto errs = validate_trace(t);
    EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs[0]);
  }
}

TEST(TaskloopTest, GrainsizeControlsTaskCount) {
  auto leaves_with_grain = [](u64 grain) {
    sim::SimEngine eng(sim::SimOptions{});
    const Trace t = eng.run("taskloop", [&](Ctx& ctx) {
      ctx.taskloop(GG_SRC, 0, 1024, grain,
                   [](u64, Ctx& c) { c.compute(1000); });
    });
    // Leaves are tasks with no children.
    size_t leaves = 0;
    for (const TaskRec& task : t.tasks) {
      if (task.uid == kRootTask) continue;
      bool has_child = false;
      for (const FragmentRec* f : t.fragments_of(task.uid)) {
        if (f->end_reason == FragmentEnd::Fork) has_child = true;
      }
      if (!has_child) ++leaves;
    }
    return leaves;
  };
  // Binary splitting: 1024/grain leaves for powers of two.
  EXPECT_EQ(leaves_with_grain(256), 4u);
  EXPECT_EQ(leaves_with_grain(64), 16u);
  EXPECT_EQ(leaves_with_grain(1024), 1u);
  EXPECT_EQ(leaves_with_grain(0), 1024u);  // grainsize 0 -> 1
}

TEST(TaskloopTest, ProducesTaskGrainsNotChunks) {
  sim::SimEngine eng(sim::SimOptions{});
  const Trace t = eng.run("taskloop", [&](Ctx& ctx) {
    ctx.taskloop(GG_SRC, 0, 256, 32, [](u64, Ctx& c) { c.compute(10000); });
  });
  EXPECT_TRUE(t.loops.empty());   // no parallel-for machinery
  EXPECT_TRUE(t.chunks.empty());  // grains are tasks
  EXPECT_GT(t.tasks.size(), 8u);
  const GrainGraph g = GrainGraph::build(t);
  EXPECT_TRUE(validate_graph(g).empty());
  EXPECT_FALSE(g.nodes_of_kind(NodeKind::Fork).empty());
  EXPECT_TRUE(g.nodes_of_kind(NodeKind::Chunk).empty());
}

TEST(TaskloopTest, ImplicitTaskgroupJoinsBeforeReturn) {
  rts::Options o;
  o.num_workers = 4;
  rts::ThreadedEngine eng(o);
  std::atomic<long> sum{0};
  long observed = -1;
  eng.run("taskloop", [&](Ctx& ctx) {
    ctx.taskloop(GG_SRC, 1, 101, 8, [&](u64 i, Ctx&) {
      sum.fetch_add(static_cast<long>(i));
    });
    observed = sum.load();  // all 100 iterations must be done here
  });
  EXPECT_EQ(observed, 5050);
}

TEST(TaskloopTest, ScalesInTheSimulator) {
  auto makespan = [](int cores) {
    sim::SimOptions o;
    o.num_cores = cores;
    o.memory_model = false;
    sim::SimEngine eng(o);
    const Trace t = eng.run("taskloop", [&](Ctx& ctx) {
      ctx.taskloop(GG_SRC, 0, 480, 10,
                   [](u64, Ctx& c) { c.compute(200000); });
    });
    return t.makespan();
  };
  EXPECT_GT(makespan(1) / makespan(48), 20u);
}

TEST(TaskloopTest, TinyGrainsizeFlagsLowBenefit) {
  sim::SimOptions o;
  o.num_cores = 8;
  sim::SimEngine eng(o);
  const Trace t = eng.run("taskloop", [&](Ctx& ctx) {
    ctx.taskloop(GG_SRC, 0, 512, 1, [](u64, Ctx& c) { c.compute(40); });
  });
  const Analysis a = analyze(t, Topology::opteron48());
  EXPECT_GT(
      a.problems[static_cast<size_t>(Problem::LowParallelBenefit)]
          .flagged_percent,
      50.0);
}

}  // namespace
}  // namespace gg
