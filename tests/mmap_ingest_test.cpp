// mmap ingestion equivalence suite: file-path loads through the zero-copy
// mmap source and the read()-based stream fallback must be indistinguishable
// — identical status, identical diagnostics (codes, offsets, contexts,
// messages), identical salvaged traces — in every load mode, on pristine
// inputs, on a damaged-file sweep, and on the edge cases where the two io
// paths genuinely differ underneath (zero-length files, page-boundary
// truncation, non-regular files that force the fallback).
#include <sys/stat.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault.hpp"
#include "trace/serialize.hpp"
#include "trace/spool.hpp"
#include "trace/synth.hpp"

namespace gg {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "mmap_ingest_" + name;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(os) << path;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good()) << path;
}

/// Every observable fact of one load as a single byte string: status, each
/// diagnostic field, the salvage summary, and (when usable) the full trace
/// re-serialized. Two loads are equivalent iff their fingerprints match.
std::string fingerprint(const LoadResult& lr) {
  std::ostringstream os;
  os << to_string(lr.status) << '\n';
  for (const LoadDiagnostic& d : lr.diagnostics) {
    os << static_cast<int>(d.code) << '|' << d.offset << '|'
       << d.offset_is_line << '|' << d.context << '|' << d.message << '\n';
  }
  os << lr.salvage.summary() << '\n';
  if (lr.usable()) save_trace_binary(*lr.trace, os);
  return os.str();
}

LoadResult load_io(const std::string& path, LoadMode mode, IoSource io,
                   int threads = 1) {
  LoadOptions opts;
  opts.mode = mode;
  opts.io = io;
  opts.threads = threads;
  return load_trace_file_ex(path, opts);
}

/// The core check: write `bytes` to a file and require the mmap and stream
/// paths to agree byte-for-byte on the outcome in all three load modes.
void expect_io_equivalence(const std::string& path, const std::string& bytes) {
  write_file(path, bytes);
  for (const LoadMode mode :
       {LoadMode::Strict, LoadMode::Lenient, LoadMode::Salvage}) {
    const LoadResult m = load_io(path, mode, IoSource::Mmap);
    const LoadResult s = load_io(path, mode, IoSource::Stream);
    ASSERT_EQ(fingerprint(m), fingerprint(s))
        << "io paths disagree, mode " << static_cast<int>(mode) << ", "
        << bytes.size() << " bytes, " << path;
  }
}

Trace small_trace() {
  SynthOptions sopts;
  sopts.seed = 7;
  sopts.grains = 60;
  sopts.workers = 4;
  sopts.loop_fraction = 0.5;
  return synth_trace(sopts);
}

std::string text_bytes(const Trace& t) {
  std::ostringstream os;
  save_trace(t, os);
  return os.str();
}

std::string binary_bytes(const Trace& t) {
  std::ostringstream os;
  save_trace_binary(t, os);
  return os.str();
}

TEST(MmapIngestTest, PristineFilesAgreeAndLoadOk) {
  const Trace t = small_trace();
  const std::string text = temp_path("clean.ggtrace");
  const std::string bin = temp_path("clean.ggbin");
  expect_io_equivalence(text, text_bytes(t));
  expect_io_equivalence(bin, binary_bytes(t));
  EXPECT_EQ(load_io(text, LoadMode::Strict, IoSource::Mmap).status,
            LoadStatus::Ok);
  EXPECT_EQ(load_io(bin, LoadMode::Strict, IoSource::Mmap).status,
            LoadStatus::Ok);
}

TEST(MmapIngestTest, ZeroLengthFilesFailIdentically) {
  for (const char* name : {"empty.ggtrace", "empty.ggbin"}) {
    const std::string path = temp_path(name);
    expect_io_equivalence(path, std::string());
    const LoadResult lr = load_io(path, LoadMode::Salvage, IoSource::Mmap);
    EXPECT_EQ(lr.status, LoadStatus::Failed) << path;
    ASSERT_NE(lr.first_error(), nullptr) << path;
    // Text reports the missing header, binary the missing magic.
    EXPECT_TRUE(lr.first_error()->code == LoadErrorCode::EmptyInput ||
                lr.first_error()->code == LoadErrorCode::BadMagic)
        << path;
  }
}

TEST(MmapIngestTest, NonexistentFilesFailIdentically) {
  const std::string path = temp_path("does_not_exist.ggbin");
  ::unlink(path.c_str());
  for (const LoadMode mode :
       {LoadMode::Strict, LoadMode::Lenient, LoadMode::Salvage}) {
    const LoadResult m = load_io(path, mode, IoSource::Mmap);
    const LoadResult s = load_io(path, mode, IoSource::Stream);
    EXPECT_EQ(fingerprint(m), fingerprint(s));
    EXPECT_EQ(m.status, LoadStatus::Failed);
    ASSERT_NE(m.first_error(), nullptr);
    EXPECT_EQ(m.first_error()->code, LoadErrorCode::CannotOpen);
  }
}

TEST(MmapIngestTest, PageBoundaryTruncationAgrees) {
  // A binary trace spanning several pages, truncated exactly at, one byte
  // short of, and one byte past each page boundary. The mmap view length
  // comes from fstat, not page rounding: the parser must see the same
  // truncated stream the read() path delivers, never mapped zero-fill.
  SynthOptions sopts;
  sopts.seed = 11;
  sopts.grains = 2000;
  sopts.workers = 4;
  const std::string bytes = binary_bytes(synth_trace(sopts));
  const long page = ::sysconf(_SC_PAGESIZE);
  ASSERT_GT(page, 0);
  ASSERT_GT(bytes.size(), static_cast<size_t>(2 * page));
  const std::string path = temp_path("page.ggbin");
  for (size_t boundary = static_cast<size_t>(page); boundary < bytes.size();
       boundary += static_cast<size_t>(page)) {
    for (const size_t keep : {boundary - 1, boundary, boundary + 1}) {
      expect_io_equivalence(path, fault::truncate_stream(bytes, keep));
    }
  }
}

TEST(MmapIngestTest, DamagedFileSweepAgrees) {
  // Truncations and bit flips over both serialization formats; stride keeps
  // the sweep fast while still landing inside every section.
  const Trace t = small_trace();
  const std::string text = text_bytes(t);
  const std::string bin = binary_bytes(t);
  const std::string text_path = temp_path("sweep.ggtrace");
  const std::string bin_path = temp_path("sweep.ggbin");
  for (size_t keep = 0; keep <= text.size(); keep += 31) {
    expect_io_equivalence(text_path, fault::truncate_stream(text, keep));
  }
  for (size_t keep = 0; keep <= bin.size(); keep += 31) {
    expect_io_equivalence(bin_path, fault::truncate_stream(bin, keep));
  }
  for (size_t i = 0; i < text.size(); i += 53) {
    expect_io_equivalence(
        text_path, fault::flip_bit(text, i, static_cast<int>((i * 7) % 8)));
  }
  for (size_t i = 0; i < bin.size(); i += 53) {
    expect_io_equivalence(
        bin_path, fault::flip_bit(bin, i, static_cast<int>((i * 7) % 8)));
  }
}

TEST(MmapIngestTest, CorruptedSectionsDecodeIdenticallyAcrossThreadCounts) {
  // Sections large enough for the parallel fixed-stride decoder to actually
  // shard (>= kParForMinItems records), with damage planted mid-section:
  // the diagnostics (first bad record in Strict/Lenient, every bad record
  // in Salvage) must not depend on the decode thread count or io path.
  SynthOptions sopts;
  sopts.seed = 23;
  sopts.grains = 20000;
  sopts.workers = 8;
  sopts.loop_fraction = 0.4;
  const std::string bytes = binary_bytes(synth_trace(sopts));
  const std::string path = temp_path("threads.ggbin");
  for (const size_t at :
       {bytes.size() / 5, bytes.size() / 2, (bytes.size() * 4) / 5}) {
    const std::string damaged =
        fault::flip_bit(bytes, at, static_cast<int>(at % 8));
    write_file(path, damaged);
    for (const LoadMode mode :
         {LoadMode::Strict, LoadMode::Lenient, LoadMode::Salvage}) {
      const std::string serial =
          fingerprint(load_io(path, mode, IoSource::Mmap, /*threads=*/1));
      for (const int threads : {2, 4, 8}) {
        EXPECT_EQ(serial,
                  fingerprint(load_io(path, mode, IoSource::Mmap, threads)))
            << "threads " << threads << ", mode " << static_cast<int>(mode);
      }
      EXPECT_EQ(serial,
                fingerprint(load_io(path, mode, IoSource::Stream, 8)));
    }
  }
}

TEST(MmapIngestTest, FifoFallsBackToShortReadLoop) {
  // A FIFO is not mappable: the mmap source must quietly fall back to the
  // EINTR-safe read() loop. The writer dribbles the trace in small odd-sized
  // chunks so the reader sees genuinely short reads.
  const Trace t = small_trace();
  const std::string bytes = binary_bytes(t);
  const std::string path = temp_path("pipe.ggbin");
  ::unlink(path.c_str());
  ASSERT_EQ(::mkfifo(path.c_str(), 0600), 0) << strerror(errno);
  std::thread writer([&] {
    std::ofstream os(path, std::ios::binary);
    size_t pos = 0;
    while (pos < bytes.size()) {
      const size_t n = std::min<size_t>(613, bytes.size() - pos);
      os.write(bytes.data() + pos, static_cast<std::streamsize>(n));
      os.flush();
      pos += n;
    }
  });
  const LoadResult lr = load_io(path, LoadMode::Strict, IoSource::Mmap);
  writer.join();
  ::unlink(path.c_str());
  ASSERT_TRUE(lr.usable()) << lr.describe();
  EXPECT_EQ(lr.status, LoadStatus::Ok);
  EXPECT_EQ(binary_bytes(*lr.trace), binary_bytes(t));
}

// --- spool recovery: the file path mmaps too ------------------------------

std::string spool_fingerprint(const spool::RecoverResult& rr) {
  std::ostringstream os;
  os << rr.usable << '\n' << rr.report.summary() << '\n';
  if (rr.usable) save_trace_binary(rr.trace, os);
  return os.str();
}

TEST(MmapIngestTest, SpoolFileRecoveryMatchesInMemoryRecovery) {
  const std::string bytes =
      spool::spool_trace_bytes(small_trace(), /*epoch_bytes=*/128);
  const std::string path = temp_path("spool.ggspool");
  for (size_t keep = 0; keep <= bytes.size(); keep += 37) {
    const std::string cut = fault::truncate_stream(bytes, keep);
    write_file(path, cut);
    std::string err;
    const spool::RecoverResult from_file =
        spool::recover_spool_file(path, &err);
    const spool::RecoverResult from_bytes = spool::recover_spool_bytes(cut);
    EXPECT_EQ(spool_fingerprint(from_file), spool_fingerprint(from_bytes))
        << "cut at " << keep;
  }
  for (size_t i = 0; i < bytes.size(); i += 41) {
    const std::string rotted =
        fault::flip_bit(bytes, i, static_cast<int>((i * 5) % 8));
    write_file(path, rotted);
    std::string err;
    const spool::RecoverResult from_file =
        spool::recover_spool_file(path, &err);
    const spool::RecoverResult from_bytes = spool::recover_spool_bytes(rotted);
    EXPECT_EQ(spool_fingerprint(from_file), spool_fingerprint(from_bytes))
        << "flip at " << i;
  }
}

}  // namespace
}  // namespace gg
