// Golden-trace regression corpus (tests/golden/): committed traces in both
// serialization formats plus a committed .expect summary. Asserts the whole
// ingestion pipeline — load -> graph -> metrics — is byte-stable across
// formats and across time: any change to the trace format, the graph
// builder, or the integer metrics shows up as a diff against the committed
// expectation. Regenerate with `make_golden tests/golden` and commit the
// result together with the change that caused it.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "check/signature.hpp"
#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "trace/serialize.hpp"
#include "trace/validate.hpp"

#ifndef GG_GOLDEN_DIR
#error "GG_GOLDEN_DIR must point at the committed corpus"
#endif

namespace gg {
namespace {

const char* const kEntries[] = {"tasks_mir4", "loops_gcc2", "exact_zero1"};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Must stay in sync with make_golden.cpp (the committed .expect files are
/// the actual contract; this merely recomputes the same summary).
std::string golden_summary(const Trace& t) {
  const GrainGraph graph = GrainGraph::build(t);
  const GrainTable grains = GrainTable::build(t);
  const MetricsResult m =
      compute_metrics(t, graph, grains, Topology::opteron48());
  std::ostringstream os;
  os << "makespan=" << t.makespan() << "\n"
     << "total_work=" << m.total_work << "\n"
     << "critical_path=" << m.critical_path_time << "\n"
     << "grains=" << grains.size() << "\n"
     << check::canonical_signature(t);
  return os.str();
}

class GoldenTraceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenTraceTest, BothFormatsLoadToTheSameValidTrace) {
  const std::string base = std::string(GG_GOLDEN_DIR) + "/" + GetParam();
  const auto text = load_trace_file(base + ".ggtrace");
  const auto binary = load_trace_file(base + ".ggbin");
  ASSERT_TRUE(text.has_value());
  ASSERT_TRUE(binary.has_value());
  EXPECT_TRUE(validate_trace(*text).empty());
  EXPECT_TRUE(validate_trace(*binary).empty());
  EXPECT_EQ(check::canonical_signature(*text),
            check::canonical_signature(*binary));
  EXPECT_EQ(text->makespan(), binary->makespan());
  EXPECT_EQ(text->meta.clock_source, binary->meta.clock_source);
  EXPECT_EQ(text->worker_stats.size(), binary->worker_stats.size());
}

TEST_P(GoldenTraceTest, PipelineMatchesCommittedExpectation) {
  const std::string base = std::string(GG_GOLDEN_DIR) + "/" + GetParam();
  const std::string expected = read_file(base + ".expect");
  for (const char* ext : {".ggtrace", ".ggbin"}) {
    const auto t = load_trace_file(base + ext);
    ASSERT_TRUE(t.has_value()) << ext;
    EXPECT_EQ(golden_summary(*t) + "\n", expected)
        << ext << ": load -> graph -> metrics drifted from the committed "
        << "expectation; if the change is intentional, regenerate with "
        << "make_golden";
  }
}

TEST_P(GoldenTraceTest, SerializationRoundTripsByteExactly) {
  const std::string base = std::string(GG_GOLDEN_DIR) + "/" + GetParam();
  {
    const auto t = load_trace_file(base + ".ggtrace");
    ASSERT_TRUE(t.has_value());
    std::ostringstream os;
    save_trace(*t, os);
    EXPECT_EQ(os.str(), read_file(base + ".ggtrace")) << "text format";
  }
  {
    const auto t = load_trace_file(base + ".ggbin");
    ASSERT_TRUE(t.has_value());
    std::ostringstream os(std::ios::binary);
    save_trace_binary(*t, os);
    EXPECT_EQ(os.str(), read_file(base + ".ggbin")) << "binary format";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, GoldenTraceTest,
                         ::testing::ValuesIn(kEntries));

}  // namespace
}  // namespace gg
