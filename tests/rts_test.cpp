#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "rts/central_queue.hpp"
#include "rts/chase_lev_deque.hpp"
#include "rts/threaded_engine.hpp"
#include "trace/validate.hpp"

namespace gg::rts {
namespace {

using front::Ctx;
using front::ForOpts;

// ---------------------------------------------------------------------------
// Chase-Lev deque

TEST(ChaseLevTest, OwnerLifoOrder) {
  ChaseLevDeque<int*> dq;
  int vals[3] = {1, 2, 3};
  dq.push(&vals[0]);
  dq.push(&vals[1]);
  dq.push(&vals[2]);
  EXPECT_EQ(dq.pop().value(), &vals[2]);
  EXPECT_EQ(dq.pop().value(), &vals[1]);
  EXPECT_EQ(dq.pop().value(), &vals[0]);
  EXPECT_FALSE(dq.pop().has_value());
}

TEST(ChaseLevTest, ThiefFifoOrder) {
  ChaseLevDeque<int*> dq;
  int vals[3] = {1, 2, 3};
  for (auto& v : vals) dq.push(&v);
  EXPECT_EQ(dq.steal().value(), &vals[0]);
  EXPECT_EQ(dq.steal().value(), &vals[1]);
  EXPECT_EQ(dq.steal().value(), &vals[2]);
  EXPECT_FALSE(dq.steal().has_value());
}

TEST(ChaseLevTest, GrowsPastInitialCapacity) {
  ChaseLevDeque<size_t*> dq(4);
  std::vector<size_t> vals(1000);
  std::iota(vals.begin(), vals.end(), 0);
  for (auto& v : vals) dq.push(&v);
  EXPECT_EQ(dq.size_estimate(), 1000u);
  for (size_t i = 0; i < 1000; ++i) {
    auto p = dq.steal();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(**p, i);
  }
}

TEST(ChaseLevTest, ConcurrentStealersReceiveEachItemExactlyOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  ChaseLevDeque<int*> dq;
  std::vector<int> vals(kItems);
  std::iota(vals.begin(), vals.end(), 0);
  std::atomic<bool> go{false};
  std::atomic<bool> done_pushing{false};
  std::vector<std::vector<int>> stolen(kThieves);
  std::vector<int> popped;

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      while (!done_pushing.load() || dq.size_estimate() > 0) {
        if (auto v = dq.steal()) stolen[static_cast<size_t>(t)].push_back(**v);
      }
    });
  }

  go.store(true);
  for (int i = 0; i < kItems; ++i) {
    dq.push(&vals[static_cast<size_t>(i)]);
    if (i % 3 == 0) {
      if (auto v = dq.pop()) popped.push_back(**v);
    }
  }
  while (auto v = dq.pop()) popped.push_back(**v);
  done_pushing.store(true);
  for (auto& th : thieves) th.join();
  // Drain any residue raced at the end.
  while (auto v = dq.steal()) popped.push_back(**v);

  std::vector<int> all = popped;
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);
}

TEST(ChaseLevTest, ResizeCountReadableWhileOwnerGrows) {
  // The resize counter is polled live by the telemetry sampler and the
  // supervisor while the owner is still pushing (and growing); it is an
  // atomic precisely so that cross-thread read is race-free. TSan covers
  // this test in the sanitizer CI job.
  ChaseLevDeque<size_t*> dq(2);
  std::vector<size_t> vals(4000);
  std::iota(vals.begin(), vals.end(), 0);
  std::atomic<bool> done{false};
  u64 last_seen = 0;
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const u64 r = dq.resize_count();
      EXPECT_GE(r, last_seen);  // monotone under a single grower
      last_seen = r;
    }
  });
  for (auto& v : vals) dq.push(&v);
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(dq.resize_count(), 0u);
}

// ---------------------------------------------------------------------------
// Pluggable work-queue backends (rts/work_queue.hpp)

class WorkQueueBackendTest : public ::testing::TestWithParam<QueueBackend> {
 protected:
  std::unique_ptr<WorkQueue<u64>> make(size_t capacity = 64) {
    WorkQueueConfig cfg;
    cfg.initial_capacity = capacity;
    return make_work_queue<u64>(GetParam(), cfg);
  }
};

TEST_P(WorkQueueBackendTest, OwnerLifoOrder) {
  auto q = make();
  EXPECT_EQ(q->backend(), GetParam());
  for (u64 v = 1; v <= 3; ++v) q->push(v);
  EXPECT_EQ(q->pop().value(), 3u);
  EXPECT_EQ(q->pop().value(), 2u);
  EXPECT_EQ(q->pop().value(), 1u);
  EXPECT_FALSE(q->pop().has_value());
}

TEST_P(WorkQueueBackendTest, ThiefFifoOrder) {
  auto q = make();
  for (u64 v = 1; v <= 3; ++v) q->push(v);
  EXPECT_EQ(q->steal().value(), 1u);
  EXPECT_EQ(q->steal().value(), 2u);
  EXPECT_EQ(q->steal().value(), 3u);
  EXPECT_FALSE(q->steal().has_value());
}

TEST_P(WorkQueueBackendTest, GrowsPastInitialCapacity) {
  auto q = make(/*capacity=*/4);
  for (u64 v = 1; v <= 1000; ++v) q->push(v);
  EXPECT_EQ(q->size_estimate(), 1000u);
  for (u64 v = 1; v <= 1000; ++v) {
    auto got = q->steal();
    ASSERT_TRUE(got.has_value()) << v;
    EXPECT_EQ(*got, v);
  }
  // Segmented/resizing backends must report growth; the flat-combining and
  // locked deques legitimately report none.
  if (GetParam() == QueueBackend::ChaseLev ||
      GetParam() == QueueBackend::OFDeque ||
      GetParam() == QueueBackend::TSDeque) {
    EXPECT_GT(q->grow_count(), 0u);
  }
}

TEST_P(WorkQueueBackendTest, ConcurrentStealersReceiveEachItemExactlyOnce) {
  // Free-running (no schedule controller): the real-concurrency cousin of
  // the check_deque harness, exercised under TSan in the sanitizer job.
  constexpr u64 kItems = 20000;
  constexpr int kThieves = 3;
  auto q = make();
  std::atomic<bool> go{false};
  std::atomic<bool> done_pushing{false};
  std::vector<std::vector<u64>> stolen(kThieves);
  std::vector<u64> popped;

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&, t] {
      while (!go.load()) std::this_thread::yield();
      while (!done_pushing.load() || q->size_estimate() > 0) {
        if (auto v = q->steal()) stolen[static_cast<size_t>(t)].push_back(*v);
      }
    });
  }

  go.store(true);
  for (u64 i = 1; i <= kItems; ++i) {
    q->push(i);
    if (i % 3 == 0) {
      if (auto v = q->pop()) popped.push_back(*v);
    }
  }
  while (auto v = q->pop()) popped.push_back(*v);
  done_pushing.store(true);
  for (auto& th : thieves) th.join();
  while (auto v = q->steal()) popped.push_back(*v);

  std::vector<u64> all = popped;
  for (const auto& s : stolen) all.insert(all.end(), s.begin(), s.end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), static_cast<size_t>(kItems));
  for (u64 i = 1; i <= kItems; ++i) EXPECT_EQ(all[static_cast<size_t>(i - 1)], i);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, WorkQueueBackendTest,
    ::testing::ValuesIn(kAllQueueBackends),
    [](const ::testing::TestParamInfo<QueueBackend>& info) {
      std::string name = to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(WorkQueueTest, ParseBackendRoundTrips) {
  for (const QueueBackend b : kAllQueueBackends) {
    QueueBackend parsed;
    ASSERT_TRUE(parse_queue_backend(to_string(b), parsed)) << to_string(b);
    EXPECT_EQ(parsed, b);
  }
  QueueBackend parsed;
  EXPECT_FALSE(parse_queue_backend("nonesuch", parsed));
}

TEST(WorkQueueTest, SharedStampClockStaysMonotonePerSlot) {
  StutteringStamp clock(2);
  u64 prev = 0;
  for (int i = 0; i < 100; ++i) {
    const u64 s = clock.acquire(i % 2);
    EXPECT_GE(s, StutteringStamp::kFirstStamp);
    EXPECT_GT(s, prev);  // single-threaded: strictly increasing overall
    prev = s;
  }
  EXPECT_EQ(clock.last(1), prev);  // slot 1 took the final stamp
}

TEST(CentralQueueTest, FifoAndSize) {
  CentralQueue<int*> q;
  int vals[2] = {1, 2};
  EXPECT_FALSE(q.pop().has_value());
  q.push(&vals[0]);
  q.push(&vals[1]);
  EXPECT_EQ(q.size_estimate(), 2u);
  EXPECT_EQ(q.pop().value(), &vals[0]);
  EXPECT_EQ(q.pop().value(), &vals[1]);
}

// ---------------------------------------------------------------------------
// Threaded engine

Options ws_opts(int workers) {
  Options o;
  o.num_workers = workers;
  o.scheduler = SchedulerKind::WorkStealing;
  return o;
}

TEST(ThreadedEngineTest, RunsRootOnly) {
  ThreadedEngine eng(ws_opts(1));
  bool ran = false;
  Trace t = eng.run("root_only", [&](Ctx&) { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_EQ(t.tasks.size(), 1u);
  EXPECT_EQ(t.grain_count(), 0u);
  EXPECT_GT(t.makespan(), 0u);
}

TEST(ThreadedEngineTest, SpawnAndTaskwaitComputesCorrectResult) {
  for (int workers : {1, 2, 4}) {
    ThreadedEngine eng(ws_opts(workers));
    std::atomic<int> sum{0};
    Trace t = eng.run("spawn", [&](Ctx& ctx) {
      for (int i = 1; i <= 10; ++i) {
        ctx.spawn(GG_SRC, [&sum, i](Ctx&) { sum.fetch_add(i); });
      }
      ctx.taskwait();
      EXPECT_EQ(sum.load(), 55);
    });
    const auto errs = validate_trace(t);
    EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
    EXPECT_EQ(t.tasks.size(), 11u);
    EXPECT_EQ(t.joins_of(kRootTask).size(), 1u);
  }
}

// Recursive fib via tasks: checks deep nesting, work stealing, and that the
// recorded task tree matches the recursion tree exactly.
void fib_task(Ctx& ctx, int n, std::atomic<long>* out) {
  if (n < 2) {
    out->fetch_add(n);
    return;
  }
  ctx.spawn(GG_SRC, [n, out](Ctx& c) { fib_task(c, n - 1, out); });
  ctx.spawn(GG_SRC, [n, out](Ctx& c) { fib_task(c, n - 2, out); });
  ctx.taskwait();
}

TEST(ThreadedEngineTest, RecursiveFibAcrossWorkers) {
  for (int workers : {1, 3}) {
    ThreadedEngine eng(ws_opts(workers));
    std::atomic<long> result{0};
    Trace t = eng.run("fib", [&](Ctx& ctx) { fib_task(ctx, 12, &result); });
    EXPECT_EQ(result.load(), 144);
    const auto errs = validate_trace(t);
    EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
    // fib task-count recurrence: T(n) = T(n-1) + T(n-2) + 2, T(<2) = 0.
    long expect_tasks = 0;
    {
      std::vector<long> tn(13, 0);
      for (int i = 2; i <= 12; ++i) tn[i] = tn[i - 1] + tn[i - 2] + 2;
      expect_tasks = tn[12];
    }
    EXPECT_EQ(t.tasks.size(), static_cast<size_t>(expect_tasks) + 1);
  }
}

TEST(ThreadedEngineTest, CentralQueueSchedulerWorks) {
  Options o = ws_opts(4);
  o.scheduler = SchedulerKind::CentralQueue;
  ThreadedEngine eng(o);
  std::atomic<long> result{0};
  Trace t = eng.run("fib_central", [&](Ctx& ctx) { fib_task(ctx, 10, &result); });
  EXPECT_EQ(result.load(), 55);
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_EQ(t.meta.runtime, "threaded/central");
}

TEST(ThreadedEngineTest, EveryQueueBackendRunsFibAndNamesItsRuntime) {
  for (const QueueBackend b : kAllQueueBackends) {
    Options o = ws_opts(3);
    o.queue_backend = b;
    ThreadedEngine eng(o);
    std::atomic<long> result{0};
    Trace t = eng.run("fib_backend",
                      [&](Ctx& ctx) { fib_task(ctx, 10, &result); });
    EXPECT_EQ(result.load(), 55) << to_string(b);
    const auto errs = validate_trace(t);
    EXPECT_TRUE(errs.empty())
        << to_string(b) << ": " << (errs.empty() ? "" : errs.front());
    const std::string expected =
        b == QueueBackend::ChaseLev
            ? "threaded/ws"
            : std::string("threaded/ws-") + to_string(b);
    EXPECT_EQ(t.meta.runtime, expected);
  }
}

TEST(ThreadedEngineTest, UnjoinedChildrenDrainAtImplicitBarrier) {
  ThreadedEngine eng(ws_opts(2));
  std::atomic<int> count{0};
  Trace t = eng.run("fire_and_forget", [&](Ctx& ctx) {
    for (int i = 0; i < 5; ++i) ctx.spawn(GG_SRC, [&](Ctx&) { count++; });
    // no taskwait: tasks complete at the region's implicit barrier
  });
  EXPECT_EQ(count.load(), 5);
  EXPECT_TRUE(validate_trace(t).empty());
  // The implicit barrier shows up as a join on the root task.
  EXPECT_EQ(t.joins_of(kRootTask).size(), 1u);
}

TEST(ThreadedEngineTest, InlineQueueLimitMarksTasksInlined) {
  Options o = ws_opts(1);
  o.inline_queue_limit = 2;
  ThreadedEngine eng(o);
  std::atomic<int> count{0};
  Trace t = eng.run("inline", [&](Ctx& ctx) {
    for (int i = 0; i < 10; ++i) ctx.spawn(GG_SRC, [&](Ctx&) { count++; });
    ctx.taskwait();
  });
  EXPECT_EQ(count.load(), 10);
  EXPECT_TRUE(validate_trace(t).empty());
  size_t inlined = 0;
  for (const auto& task : t.tasks)
    if (task.inlined) ++inlined;
  // With a single worker and queue limit 2, most spawns exceed the limit.
  EXPECT_GE(inlined, 7u);
}

TEST(ThreadedEngineTest, ThrottleLimitsLiveTasks) {
  Options o = ws_opts(2);
  o.task_throttle_per_worker = 1;
  ThreadedEngine eng(o);
  std::atomic<long> result{0};
  Trace t = eng.run("fib_throttled", [&](Ctx& ctx) { fib_task(ctx, 10, &result); });
  EXPECT_EQ(result.load(), 55);
  EXPECT_TRUE(validate_trace(t).empty());
  size_t inlined = 0;
  for (const auto& task : t.tasks)
    if (task.inlined) ++inlined;
  EXPECT_GT(inlined, 0u);
}

TEST(ThreadedEngineTest, TaskwaitWithoutChildrenIsStructuralNoop) {
  ThreadedEngine eng(ws_opts(2));
  Trace t = eng.run("empty_wait", [&](Ctx& ctx) {
    ctx.taskwait();
    ctx.taskwait();
  });
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_TRUE(t.joins_of(kRootTask).empty());
  EXPECT_EQ(t.fragments_of(kRootTask).size(), 1u);
}

// ---------------------------------------------------------------------------
// Parallel for

struct LoopCase {
  ScheduleKind sched;
  u64 chunk;
  int workers;
  u64 iters;
};

class ParallelForTest : public ::testing::TestWithParam<LoopCase> {};

TEST_P(ParallelForTest, AllIterationsExecuteExactlyOnce) {
  const LoopCase p = GetParam();
  ThreadedEngine eng(ws_opts(p.workers));
  std::vector<std::atomic<int>> hits(p.iters);
  for (auto& h : hits) h.store(0);
  ForOpts fo;
  fo.sched = p.sched;
  fo.chunk = p.chunk;
  Trace t = eng.run("pfor", [&](Ctx& ctx) {
    ctx.parallel_for(GG_SRC, 0, p.iters, fo,
                     [&](u64 i, Ctx&) { hits[i].fetch_add(1); });
  });
  for (u64 i = 0; i < p.iters; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  const auto errs = validate_trace(t);
  EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
  ASSERT_EQ(t.loops.size(), 1u);
  const LoopRec& loop = t.loops.front();
  EXPECT_EQ(loop.iter_begin, 0u);
  EXPECT_EQ(loop.iter_end, p.iters);
  EXPECT_EQ(loop.sched, p.sched);
  // Chunks partition the space (validated above); check bookkeeping pairing:
  // per thread, #bookkeeps == #chunks + 1 when the thread worked, else 0.
  for (u16 th = 0; th < loop.num_threads; ++th) {
    size_t nchunks = 0, nbooks = 0;
    for (const auto* c : t.chunks_of(loop.uid))
      if (c->thread == th) ++nchunks;
    for (const auto* b : t.bookkeeps_of(loop.uid))
      if (b->thread == th) ++nbooks;
    if (nchunks > 0) {
      EXPECT_EQ(nbooks, nchunks + 1);
    } else {
      EXPECT_EQ(nbooks, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ParallelForTest,
    ::testing::Values(LoopCase{ScheduleKind::Static, 0, 1, 100},
                      LoopCase{ScheduleKind::Static, 0, 4, 100},
                      LoopCase{ScheduleKind::Static, 7, 4, 100},
                      LoopCase{ScheduleKind::Static, 1, 3, 17},
                      LoopCase{ScheduleKind::Dynamic, 1, 4, 100},
                      LoopCase{ScheduleKind::Dynamic, 13, 2, 100},
                      LoopCase{ScheduleKind::Guided, 1, 4, 100},
                      LoopCase{ScheduleKind::Guided, 4, 3, 1000}));

TEST(ThreadedEngineTest, EmptyLoopProducesNoChunks) {
  ThreadedEngine eng(ws_opts(2));
  Trace t = eng.run("empty_loop", [&](Ctx& ctx) {
    ctx.parallel_for(GG_SRC, 5, 5, ForOpts{}, [&](u64, Ctx&) { FAIL(); });
  });
  EXPECT_TRUE(validate_trace(t).empty());
  ASSERT_EQ(t.loops.size(), 1u);
  EXPECT_TRUE(t.chunks_of(t.loops.front().uid).empty());
}

TEST(ThreadedEngineTest, NumThreadsRestrictsTeam) {
  ThreadedEngine eng(ws_opts(4));
  ForOpts fo;
  fo.sched = ScheduleKind::Dynamic;
  fo.chunk = 1;
  fo.num_threads = 2;
  std::set<int> seen_workers;
  std::mutex m;
  Trace t = eng.run("team2", [&](Ctx& ctx) {
    ctx.parallel_for(GG_SRC, 0, 64, fo, [&](u64, Ctx& c) {
      std::lock_guard lock(m);
      seen_workers.insert(c.worker());
    });
  });
  EXPECT_TRUE(validate_trace(t).empty());
  ASSERT_EQ(t.loops.size(), 1u);
  EXPECT_EQ(t.loops.front().num_threads, 2);
  for (int w : seen_workers) EXPECT_LT(w, 2);
}

TEST(ThreadedEngineTest, SequentialLoopsGetDistinctSeq) {
  ThreadedEngine eng(ws_opts(2));
  Trace t = eng.run("two_loops", [&](Ctx& ctx) {
    ctx.parallel_for(GG_SRC, 0, 8, ForOpts{}, [](u64, Ctx&) {});
    ctx.parallel_for(GG_SRC, 0, 8, ForOpts{}, [](u64, Ctx&) {});
  });
  EXPECT_TRUE(validate_trace(t).empty());
  ASSERT_EQ(t.loops.size(), 2u);
  EXPECT_NE(t.loops[0].seq, t.loops[1].seq);
  EXPECT_EQ(t.loops[0].starting_thread, t.loops[1].starting_thread);
}

TEST(ThreadedEngineTest, TasksThenLoopThenTasks) {
  ThreadedEngine eng(ws_opts(3));
  std::atomic<int> task_sum{0};
  std::vector<std::atomic<int>> hits(32);
  for (auto& h : hits) h.store(0);
  Trace t = eng.run("mixed", [&](Ctx& ctx) {
    for (int i = 0; i < 4; ++i) ctx.spawn(GG_SRC, [&](Ctx&) { task_sum++; });
    ctx.taskwait();
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 4;
    ctx.parallel_for(GG_SRC, 0, 32, fo, [&](u64 i, Ctx&) { hits[i]++; });
    for (int i = 0; i < 4; ++i) ctx.spawn(GG_SRC, [&](Ctx&) { task_sum++; });
    ctx.taskwait();
  });
  EXPECT_EQ(task_sum.load(), 8);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  const auto errs = validate_trace(t);
  EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
  EXPECT_EQ(t.loops.size(), 1u);
  EXPECT_EQ(t.joins_of(kRootTask).size(), 2u);
  // Root fragment stream contains a Loop-terminated fragment.
  bool saw_loop_fragment = false;
  for (const auto* f : t.fragments_of(kRootTask))
    saw_loop_fragment |= f->end_reason == FragmentEnd::Loop;
  EXPECT_TRUE(saw_loop_fragment);
}

TEST(ThreadedEngineTest, ProfilingOffStillRunsAndReportsMakespan) {
  Options o = ws_opts(2);
  o.profile = false;
  ThreadedEngine eng(o);
  std::atomic<int> n{0};
  Trace t = eng.run("noprof", [&](Ctx& ctx) {
    for (int i = 0; i < 8; ++i) ctx.spawn(GG_SRC, [&](Ctx&) { n++; });
    ctx.taskwait();
  });
  EXPECT_EQ(n.load(), 8);
  EXPECT_GT(t.makespan(), 0u);
  EXPECT_TRUE(t.tasks.empty());
  EXPECT_TRUE(t.fragments.empty());
}

TEST(ThreadedEngineTest, WorkerStatsSatisfyCounterInvariants) {
  const int workers = 4;
  ThreadedEngine eng(ws_opts(workers));
  std::atomic<long> result{0};
  Trace t = eng.run("fib_stats", [&](Ctx& ctx) { fib_task(ctx, 14, &result); });
  EXPECT_TRUE(validate_trace(t).empty());
  ASSERT_EQ(t.worker_stats.size(), static_cast<size_t>(workers));
  u64 spawned = 0, executed = 0, inlined = 0, trace_bytes = 0;
  for (const WorkerStatsRec& s : t.worker_stats) {
    spawned += s.tasks_spawned;
    executed += s.tasks_executed;
    inlined += s.tasks_inlined;
    trace_bytes += s.trace_bytes;
    // A steal always dispatches a task on the stealing worker.
    EXPECT_LE(s.steals, s.tasks_executed);
    EXPECT_LE(s.tasks_inlined, s.tasks_spawned);
  }
  EXPECT_GT(trace_bytes, 0u);
  // Every spawned child executed exactly once (the root body is the
  // region's implicit task and is not dispatched through the scheduler).
  EXPECT_EQ(spawned, executed);
  EXPECT_EQ(executed, static_cast<u64>(t.tasks.size() - 1));
  // Stats are discoverable per worker, and the metadata names the substrate.
  ASSERT_NE(t.worker_stats_of(0), nullptr);
  EXPECT_TRUE(t.meta.profiled);
  EXPECT_FALSE(t.meta.clock_source.empty());
  EXPECT_GT(t.meta.trace_buffer_bytes, 0u);
  (void)inlined;
}

TEST(ThreadedEngineTest, ProfilingOffEmitsNoWorkerStats) {
  Options o = ws_opts(2);
  o.profile = false;
  ThreadedEngine eng(o);
  std::atomic<int> n{0};
  Trace t = eng.run("noprof_stats", [&](Ctx& ctx) {
    for (int i = 0; i < 8; ++i) ctx.spawn(GG_SRC, [&](Ctx&) { n++; });
    ctx.taskwait();
  });
  EXPECT_EQ(n.load(), 8);
  EXPECT_TRUE(t.worker_stats.empty());
  EXPECT_FALSE(t.meta.profiled);
}

TEST(ThreadedEngineTest, SourceLocationsAreRecorded) {
  ThreadedEngine eng(ws_opts(1));
  Trace t = eng.run("src", [&](Ctx& ctx) {
    ctx.spawn(GG_SRC_NAMED("sparselu.c", 246, "bmod"), [](Ctx&) {});
    ctx.taskwait();
  });
  ASSERT_EQ(t.tasks.size(), 2u);
  bool found = false;
  for (const auto& task : t.tasks) {
    if (t.strings.get(task.src) == "sparselu.c:246(bmod)") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ThreadedEngineTest, FragmentsSplitAtForkAndJoin) {
  ThreadedEngine eng(ws_opts(1));
  Trace t = eng.run("frag_structure", [&](Ctx& ctx) {
    ctx.spawn(GG_SRC, [](Ctx&) {});
    ctx.spawn(GG_SRC, [](Ctx&) {});
    ctx.taskwait();
  });
  EXPECT_TRUE(validate_trace(t).empty());
  const auto frags = t.fragments_of(kRootTask);
  // fork, fork, join, end -> 4 fragments.
  ASSERT_EQ(frags.size(), 4u);
  EXPECT_EQ(frags[0]->end_reason, FragmentEnd::Fork);
  EXPECT_EQ(frags[1]->end_reason, FragmentEnd::Fork);
  EXPECT_EQ(frags[2]->end_reason, FragmentEnd::Join);
  EXPECT_EQ(frags[3]->end_reason, FragmentEnd::TaskEnd);
  // Fork refs point at the two children in creation order.
  EXPECT_EQ(frags[0]->end_ref, t.children_of(kRootTask)[0]->uid);
  EXPECT_EQ(frags[1]->end_ref, t.children_of(kRootTask)[1]->uid);
}

TEST(ThreadedEngineTest, OversubscriptionStress) {
  // 8 workers on however few physical cores: heavy preemption shakes out
  // ordering races in the deque/engine (run under ASan in build-asan).
  Options o = ws_opts(8);
  ThreadedEngine eng(o);
  std::atomic<long> sum{0};
  std::function<void(Ctx&, int)> rec = [&](Ctx& ctx, int d) {
    sum.fetch_add(1);
    if (d == 0) return;
    for (int i = 0; i < 3; ++i)
      ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.taskwait();
  };
  const Trace t = eng.run("stress", [&](Ctx& ctx) { rec(ctx, 6); });
  // Nodes in a full ternary tree of depth 6: (3^7 - 1) / 2 = 1093.
  EXPECT_EQ(sum.load(), 1093);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(ThreadedEngineTest, ReuseEngineAcrossRuns) {
  ThreadedEngine eng(ws_opts(2));
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> n{0};
    const Trace t = eng.run("round", [&](Ctx& ctx) {
      for (int i = 0; i < 20; ++i) ctx.spawn(GG_SRC, [&](Ctx&) { n++; });
      ctx.taskwait();
    });
    EXPECT_EQ(n.load(), 20);
    EXPECT_TRUE(validate_trace(t).empty());
    EXPECT_EQ(t.tasks.size(), 21u);  // ids restart every run
  }
}

}  // namespace
}  // namespace gg::rts
