// The deterministic schedule controller: token discipline, strategy
// behavior, preemption bounding, and — the property everything else rests
// on — bit-identical decision trails when a {strategy, seed, bound} replays.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/genprog.hpp"
#include "check/schedule.hpp"
#include "check/signature.hpp"
#include "rts/preempt.hpp"
#include "rts/threaded_engine.hpp"
#include "support/test_support.hpp"

namespace gg {
namespace {

using check::ScheduleController;
using check::ScheduleOptions;
using check::Strategy;

struct TrailResult {
  std::vector<i32> trail;
  u64 preemptions = 0;
  std::vector<int> order;  ///< thread id per recorded step, program order
};

/// Two threads, each hitting a mix of non-idle and idle preemption points
/// while appending their id to a shared log. Fully serialized by the
/// controller, so `order` is a pure function of the schedule.
TrailResult run_two_thread_harness(const ScheduleOptions& base) {
  ScheduleOptions opts = base;
  opts.num_threads = 2;
  ScheduleController ctrl(opts);
  TrailResult r;
  ctrl.install();
  rts::preempt_thread_start(0);
  std::thread other([&r] {
    rts::preempt_thread_start(1);
    for (int i = 0; i < 40; ++i) {
      rts::preempt_point(i % 4 == 3 ? rts::PreemptPoint::Idle
                                    : rts::PreemptPoint::QueuePush);
      r.order.push_back(1);
    }
    rts::preempt_thread_stop();
  });
  for (int i = 0; i < 40; ++i) {
    rts::preempt_point(i % 4 == 3 ? rts::PreemptPoint::Idle
                                  : rts::PreemptPoint::DequePush);
    r.order.push_back(0);
  }
  rts::preempt_thread_stop();
  other.join();
  ctrl.uninstall();
  r.trail = ctrl.trail();
  r.preemptions = ctrl.preemption_count();
  return r;
}

TEST(ScheduleControllerTest, StrategyNamesRoundTrip) {
  EXPECT_STREQ(to_string(Strategy::RoundRobin), "round-robin");
  EXPECT_STREQ(to_string(Strategy::RandomWalk), "random-walk");
  EXPECT_STREQ(to_string(Strategy::SleepSet), "sleep-set");
}

TEST(ScheduleControllerTest, DescribeEmbedsReplayTriple) {
  ScheduleOptions opts;
  opts.strategy = Strategy::SleepSet;
  opts.seed = 0x2a;
  opts.max_preemptions = 3;
  ScheduleController ctrl(opts);
  const std::string d = ctrl.describe();
  EXPECT_NE(d.find("sleep-set"), std::string::npos) << d;
  EXPECT_NE(d.find("seed="), std::string::npos) << d;
  EXPECT_NE(d.find("bound=3"), std::string::npos) << d;
}

TEST(ScheduleControllerTest, TrailsReplayIdenticallyPerStrategy) {
  for (const Strategy s :
       {Strategy::RoundRobin, Strategy::RandomWalk, Strategy::SleepSet}) {
    ScheduleOptions opts;
    opts.strategy = s;
    opts.seed = test::test_seed();
    GG_SEED_TRACE(opts.seed);
    const TrailResult a = run_two_thread_harness(opts);
    const TrailResult b = run_two_thread_harness(opts);
    EXPECT_EQ(a.trail, b.trail) << to_string(s);
    EXPECT_EQ(a.order, b.order) << to_string(s);
    EXPECT_EQ(a.preemptions, b.preemptions) << to_string(s);
    EXPECT_FALSE(a.trail.empty()) << to_string(s);
  }
}

TEST(ScheduleControllerTest, DifferentSeedsExploreDifferentSchedules) {
  // Not guaranteed for any single pair, so demand at least one difference
  // across a handful of seeds — a fixed-point RNG bug fails this reliably.
  ScheduleOptions opts;
  opts.strategy = Strategy::RandomWalk;
  opts.seed = test::test_seed();
  const TrailResult base = run_two_thread_harness(opts);
  bool any_different = false;
  for (u64 d = 1; d <= 4 && !any_different; ++d) {
    ScheduleOptions o2 = opts;
    o2.seed = opts.seed + d;
    any_different = run_two_thread_harness(o2).order != base.order;
  }
  EXPECT_TRUE(any_different);
}

TEST(ScheduleControllerTest, RoundRobinAlternatesThreads) {
  ScheduleOptions opts;
  opts.strategy = Strategy::RoundRobin;
  const TrailResult r = run_two_thread_harness(opts);
  // With both threads runnable, round-robin must not let either thread run
  // an overwhelming majority of consecutive steps.
  int switches = 0;
  for (size_t i = 1; i < r.order.size(); ++i) {
    if (r.order[i] != r.order[i - 1]) ++switches;
  }
  EXPECT_GT(switches, static_cast<int>(r.order.size()) / 4) << "order barely "
      "alternates under round-robin";
}

TEST(ScheduleControllerTest, ZeroPreemptionBoundDisablesPreemption) {
  for (const Strategy s :
       {Strategy::RoundRobin, Strategy::RandomWalk, Strategy::SleepSet}) {
    ScheduleOptions opts;
    opts.strategy = s;
    opts.seed = test::test_seed();
    opts.max_preemptions = 0;
    const TrailResult r = run_two_thread_harness(opts);
    EXPECT_EQ(r.preemptions, 0u) << to_string(s);
  }
}

TEST(ScheduleControllerTest, BoundedPreemptionsRespectTheBound) {
  ScheduleOptions opts;
  opts.strategy = Strategy::RandomWalk;
  opts.seed = test::test_seed();
  opts.max_preemptions = 5;
  const TrailResult r = run_two_thread_harness(opts);
  EXPECT_LE(r.preemptions, 5u);
}

TEST(ScheduleControllerTest, EngineRunsReplayUnderTheController) {
  const check::ProgramSpec spec =
      check::generate_program(test::test_seed() + 7);
  GG_SEED_TRACE(spec.seed);
  auto run_once = [&spec](std::vector<i32>* trail) {
    ScheduleOptions sopts;
    sopts.strategy = Strategy::RandomWalk;
    sopts.seed = test::test_seed() + 99;
    sopts.num_threads = 2;
    ScheduleController ctrl(sopts);
    ctrl.install();
    rts::Options ropts;
    ropts.num_workers = 2;
    Trace t;
    {
      rts::ThreadedEngine eng(ropts);
      t = run_spec(spec, eng);
    }
    ctrl.uninstall();
    *trail = ctrl.trail();
    return check::canonical_signature(t);
  };
  std::vector<i32> trail_a, trail_b;
  const std::string sig_a = run_once(&trail_a);
  const std::string sig_b = run_once(&trail_b);
  EXPECT_EQ(trail_a, trail_b);
  EXPECT_FALSE(trail_a.empty());
  EXPECT_EQ(sig_a, sig_b) << check::first_signature_diff(sig_a, sig_b);
}

}  // namespace
}  // namespace gg
