// Crash-recovery harness: fork a real spooled run, kill it at seeded
// points (SIGKILL mid-region, SIGSEGV in a task body, supervisor
// abort-on-stall), and assert the spool recovers an analyzable trace with
// the documented loss bound — at most one unflushed epoch per worker plus
// the records of tasks in flight at the instant of death. Also pins the
// deterministic halves of the contract: a cleanly-footered spool
// round-trips a trace exactly, losing only the footer loses zero records,
// and the supervisor detects a seeded taskwait-cycle hang both live
// (on_stall hook) and modeled (trace scan).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "check/genprog.hpp"
#include "fault/fault.hpp"
#include "front/front.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/sim_engine.hpp"
#include "trace/salvage.hpp"
#include "trace/serialize.hpp"
#include "trace/spool.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

namespace fs = std::filesystem;

std::string temp_spool(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("gg-crash-") + tag + "-" +
           std::to_string(::getpid()) + ".ggspool"))
      .string();
}

struct ChildOutcome {
  int status = 0;
  bool signaled(int sig) const {
    return WIFSIGNALED(status) && WTERMSIG(status) == sig;
  }
};

/// Forks, runs `body` in the child (which must die or _exit), reaps it.
template <typename Body>
ChildOutcome run_child(Body body) {
  const pid_t pid = ::fork();
  EXPECT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Keep the child's death quiet: the parent asserts on the spool, not
    // on stderr.
    std::fclose(stderr);
    body();
    ::_exit(0);
  }
  ChildOutcome out;
  ::waitpid(pid, &out.status, 0);
  return out;
}

/// Recovery + the prescribed salvage pass; asserts structural validity.
spool::RecoverResult recover_checked(const std::string& path) {
  std::string err;
  spool::RecoverResult rr = spool::recover_spool_file(path, &err);
  EXPECT_TRUE(rr.usable) << "recovery failed: " << err << " / "
                         << rr.report.summary();
  if (rr.usable) {
    if (rr.report.partial() || rr.report.frames_corrupt > 0 ||
        rr.report.torn_tail) {
      salvage_trace(rr.trace);
    }
    EXPECT_TRUE(validate_trace(rr.trace).empty())
        << "recovered trace invalid: " << rr.report.summary();
  }
  return rr;
}

constexpr int kWorkers = 2;
constexpr u64 kEpochBytes = 2 * 1024;
constexpr int kTasks = 400;

/// The spooled run every kill-point test executes: kTasks identical
/// compute tasks, self-SIGKILL after `kill_at` completions (0 = run to a
/// clean finish).
void spooled_run(const std::string& path, u64 kill_at) {
  rts::Options o;
  o.num_workers = kWorkers;
  o.spool.path = path;
  o.spool.epoch_bytes = kEpochBytes;
  o.spool.crash_handlers = false;  // SIGKILL is not catchable anyway
  rts::ThreadedEngine eng(o);
  eng.run("crash-matrix", [kill_at](front::Ctx& ctx) {
    static std::atomic<u64> finished{0};
    for (int i = 0; i < kTasks; ++i) {
      ctx.spawn(front::SrcLoc{"crash.c", 10, "victim"},
                [kill_at](front::Ctx& c) {
                  c.compute(500);
                  if (kill_at != 0 && finished.fetch_add(1) + 1 == kill_at) {
                    ::kill(::getpid(), SIGKILL);
                  }
                });
    }
    ctx.taskwait();
  });
}

TEST(CrashRecoveryTest, ForkKillMatrixEveryKillPoint) {
  // Seeded kill points spanning the region: first epochs barely sealed
  // through most of the run committed.
  u64 base = 0;
  if (const char* env = std::getenv("GG_TEST_SEED")) {
    base = std::strtoull(env, nullptr, 10);
  }
  const u64 kill_points[] = {5,   20 + base % 7,  60 + base % 13,
                             120, 200 + base % 31, 350};
  for (const u64 kill_at : kill_points) {
    const std::string path = temp_spool("matrix");
    const ChildOutcome out =
        run_child([&] { spooled_run(path, kill_at); });
    ASSERT_TRUE(out.signaled(SIGKILL))
        << "kill_at=" << kill_at << " status=" << out.status;

    const spool::RecoverResult rr = recover_checked(path);
    ASSERT_TRUE(rr.usable);
    EXPECT_FALSE(rr.report.clean_footer) << "kill_at=" << kill_at;

    // Loss bound: with durable epochs every sealed frame is on disk, so
    // each worker loses at most the one epoch still accumulating (plus
    // its in-flight task, whose fragment was never recorded). Completed
    // tasks are a lower bound witness: `kill_at` fragments existed.
    const u64 per_worker_slack = kEpochBytes / sizeof(FragmentRec) + 1;
    const u64 slack = kWorkers * (per_worker_slack + 1);
    EXPECT_GE(rr.trace.fragments.size() + slack, kill_at)
        << "kill_at=" << kill_at << ": lost more than one epoch per worker ("
        << rr.trace.fragments.size() << " fragments recovered)";
    EXPECT_TRUE(rr.trace.meta.recovered()) << "kill_at=" << kill_at;
    fs::remove(path);
  }
}

TEST(CrashRecoveryTest, CleanRunWritesCleanFooter) {
  const std::string path = temp_spool("clean");
  const ChildOutcome out = run_child([&] { spooled_run(path, 0); });
  EXPECT_TRUE(WIFEXITED(out.status) && WEXITSTATUS(out.status) == 0);
  const spool::RecoverResult rr = recover_checked(path);
  EXPECT_TRUE(rr.report.clean_footer);
  EXPECT_FALSE(rr.trace.meta.recovered());
  // Every spawned task completed, so every fragment must be present.
  EXPECT_GE(rr.trace.fragments.size(), static_cast<size_t>(kTasks));
  fs::remove(path);
}

TEST(CrashRecoveryTest, SigsegvEmergencyFlushStampsProvenance) {
  const std::string path = temp_spool("segv");
  const ChildOutcome out = run_child([&] {
    rts::Options o;
    o.num_workers = kWorkers;
    o.spool.path = path;
    o.spool.epoch_bytes = kEpochBytes;  // crash_handlers default: on
    rts::ThreadedEngine eng(o);
    eng.run("crash-segv", [](front::Ctx& ctx) {
      static std::atomic<u64> finished{0};
      for (int i = 0; i < kTasks; ++i) {
        ctx.spawn(front::SrcLoc{"crash.c", 20, "segv_task"},
                  [](front::Ctx& c) {
                    c.compute(500);
                    if (finished.fetch_add(1) + 1 == 80) {
                      ::raise(SIGSEGV);
                    }
                  });
      }
      ctx.taskwait();
    });
  });
  ASSERT_TRUE(out.signaled(SIGSEGV)) << "status=" << out.status;
  const spool::RecoverResult rr = recover_checked(path);
  EXPECT_FALSE(rr.report.clean_footer);
  // The emergency flush appended a 'C' footer naming the signal.
  EXPECT_NE(rr.report.crash_reason.find(std::to_string(SIGSEGV)),
            std::string::npos)
      << "crash_reason: " << rr.report.crash_reason;
  EXPECT_FALSE(rr.trace.meta.crash_note().empty());
  fs::remove(path);
}

// --- deterministic halves of the contract ----------------------------------

Trace sim_trace() {
  sim::SimOptions o;
  o.num_cores = 4;
  sim::SimEngine eng(o);
  check::ProgramSpec spec = check::generate_program(7);
  return check::run_spec(spec, eng);
}

TEST(CrashRecoveryTest, SpoolRoundTripPreservesEveryRecord) {
  const Trace original = sim_trace();
  const std::string bytes = spool::spool_trace_bytes(original, 512);
  const spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
  ASSERT_TRUE(rr.usable) << rr.report.summary();
  EXPECT_TRUE(rr.report.clean_footer);
  EXPECT_EQ(rr.trace.tasks.size(), original.tasks.size());
  EXPECT_EQ(rr.trace.fragments.size(), original.fragments.size());
  EXPECT_EQ(rr.trace.joins.size(), original.joins.size());
  EXPECT_EQ(rr.trace.loops.size(), original.loops.size());
  EXPECT_EQ(rr.trace.chunks.size(), original.chunks.size());
  EXPECT_EQ(rr.trace.bookkeeps.size(), original.bookkeeps.size());
  EXPECT_EQ(rr.trace.depends.size(), original.depends.size());
  EXPECT_EQ(rr.trace.worker_stats.size(), original.worker_stats.size());
  EXPECT_TRUE(validate_trace(rr.trace).empty());
}

TEST(CrashRecoveryTest, LosingOnlyTheFooterLosesZeroRecords) {
  // The documented loss bound at its edge: every epoch sealed and durable,
  // only the clean footer missing (the crash landed after the last seal).
  const Trace original = sim_trace();
  const std::string bytes = spool::spool_trace_bytes(original, 512);
  const auto frames = spool::scan_frames(bytes);
  ASSERT_GT(frames.size(), 2u);
  const std::string cut =
      fault::truncate_spool_at_frame(bytes, frames.size() - 1);
  spool::RecoverResult rr = spool::recover_spool_bytes(cut);
  ASSERT_TRUE(rr.usable) << rr.report.summary();
  EXPECT_TRUE(rr.report.partial());
  EXPECT_TRUE(rr.trace.meta.recovered());
  EXPECT_EQ(rr.trace.tasks.size(), original.tasks.size());
  EXPECT_EQ(rr.trace.fragments.size(), original.fragments.size());
  EXPECT_EQ(rr.trace.chunks.size(), original.chunks.size());
  EXPECT_EQ(rr.trace.depends.size(), original.depends.size());
  salvage_trace(rr.trace);
  EXPECT_TRUE(validate_trace(rr.trace).empty());
}

// --- supervisor -------------------------------------------------------------

TEST(CrashRecoveryTest, SupervisorDetectsHangAndHookReleasesIt) {
  const check::ProgramSpec spec = check::generate_hang_program(11);
  ASSERT_TRUE(spec.tokens != nullptr);

  rts::Options o;
  o.num_workers = 2;
  o.supervisor.enabled = true;
  o.supervisor.stall_timeout_ns = 200'000'000;   // 200ms
  o.supervisor.poll_interval_ns = 10'000'000;
  o.supervisor.dump_on_stall = false;  // keep the test's stderr quiet
  std::atomic<int> stalls{0};
  rts::SupervisorReport seen;
  o.supervisor.on_stall = [&](const rts::SupervisorReport& rep) {
    if (stalls.fetch_add(1) == 0) seen = rep;
    spec.tokens->release_all();
  };
  rts::ThreadedEngine eng(o);
  const Trace trace = check::run_spec(spec, eng);

  ASSERT_GE(stalls.load(), 1) << "supervisor never fired on a real deadlock";
  EXPECT_FALSE(seen.modeled);
  EXPECT_GE(seen.stalled_for_ns, o.supervisor.stall_timeout_ns);
  ASSERT_EQ(seen.workers.size(), 2u);
  // Both deadlocked tasks spin inside user code: at least one worker must
  // be sampled wedged in Exec.
  bool any_exec = false;
  for (const rts::WorkerSnapshot& w : seen.workers) {
    any_exec |= w.state == rts::WorkerState::Exec;
  }
  EXPECT_TRUE(any_exec) << seen.render();
  // The run completed after release; its trace carries the provenance.
  EXPECT_FALSE(trace.meta.supervisor_note().empty());
  EXPECT_TRUE(validate_trace(trace).empty());
}

TEST(CrashRecoveryTest, SupervisorAbortOnStallLeavesRecoverableSpool) {
  const std::string path = temp_spool("stall");
  const ChildOutcome out = run_child([&] {
    const check::ProgramSpec spec = check::generate_hang_program(13);
    rts::Options o;
    o.num_workers = 2;
    o.spool.path = path;
    o.spool.epoch_bytes = kEpochBytes;
    o.supervisor.enabled = true;
    o.supervisor.stall_timeout_ns = 200'000'000;
    o.supervisor.poll_interval_ns = 10'000'000;
    rts::ThreadedEngine eng(o);
    check::run_spec(spec, eng);  // never returns: abort_on_stall
  });
  ASSERT_TRUE(out.signaled(SIGABRT)) << "status=" << out.status;
  const spool::RecoverResult rr = recover_checked(path);
  EXPECT_FALSE(rr.report.clean_footer);
  EXPECT_NE(rr.report.crash_reason.find("supervisor"), std::string::npos)
      << "crash_reason: " << rr.report.crash_reason;
  // The 'D' frame carried the structured diagnostic into the spool.
  EXPECT_FALSE(rr.report.supervisor_dump.empty());
  EXPECT_NE(rr.report.supervisor_dump.find("no progress"),
            std::string::npos);
  fs::remove(path);
}

TEST(CrashRecoveryTest, ModeledScanFlagsGapAndSimStaysClean) {
  // A healthy deterministic simulation never trips the modeled scan at the
  // default deadline...
  const Trace healthy = sim_trace();
  rts::SupervisorReport rep;
  rts::SupervisorOptions defaults;
  EXPECT_FALSE(rts::supervisor_scan_trace(healthy, defaults, &rep));

  // ...and a synthetic trace with a hole larger than the deadline trips it.
  Trace holed = healthy;
  holed.meta.region_end += 3'000'000'000ull;
  EXPECT_TRUE(rts::supervisor_scan_trace(holed, defaults, &rep));
  EXPECT_TRUE(rep.modeled);
  EXPECT_GE(rep.stalled_for_ns, defaults.stall_timeout_ns);
  EXPECT_FALSE(rep.render().empty());
}

}  // namespace
}  // namespace gg
