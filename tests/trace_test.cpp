#include <gtest/gtest.h>

#include <sstream>

#include "trace/recorder.hpp"
#include "trace/serialize.hpp"
#include "trace/trace.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

// Builds a small, fully consistent trace: root spawns two tasks, waits, and
// runs one 2-thread static loop with two chunks.
Trace make_sample_trace() {
  TraceRecorder rec(2);
  auto w0 = rec.writer(0);
  auto w1 = rec.writer(1);

  const StrId src_root = rec.intern("<root>");
  const StrId src_task = rec.intern_source("demo.c", 10, "work");
  const StrId src_loop = rec.intern_source("demo.c", 50, "loop");

  TaskRec root;
  root.uid = kRootTask;
  root.parent = kNoTask;
  root.src = src_root;
  w0.task(root);

  // Root fragments: [0,10) fork t1, [12,20) fork t2, [22,30) join, [40,41) loop,
  // [100,101) end.
  auto frag = [&](TaskId task, u32 seq, TimeNs s, TimeNs e, FragmentEnd r,
                  u64 ref) {
    FragmentRec f;
    f.task = task;
    f.seq = seq;
    f.start = s;
    f.end = e;
    f.end_reason = r;
    f.end_ref = ref;
    f.counters.compute = e - s;
    return f;
  };
  w0.fragment(frag(kRootTask, 0, 0, 10, FragmentEnd::Fork, 1));
  w0.fragment(frag(kRootTask, 1, 12, 20, FragmentEnd::Fork, 2));
  w0.fragment(frag(kRootTask, 2, 22, 30, FragmentEnd::Join, 0));
  w0.fragment(frag(kRootTask, 3, 40, 41, FragmentEnd::Loop, 1));
  w0.fragment(frag(kRootTask, 4, 100, 101, FragmentEnd::TaskEnd, 0));

  TaskRec t1;
  t1.uid = 1;
  t1.parent = kRootTask;
  t1.child_index = 0;
  t1.src = src_task;
  t1.create_time = 10;
  t1.creation_cost = 2;
  w0.task(t1);
  TaskRec t2 = t1;
  t2.uid = 2;
  t2.child_index = 1;
  t2.create_time = 20;
  w0.task(t2);

  w1.fragment(frag(1, 0, 11, 25, FragmentEnd::TaskEnd, 0));
  w0.fragment(frag(2, 0, 21, 28, FragmentEnd::TaskEnd, 0));

  JoinRec j;
  j.task = kRootTask;
  j.seq = 0;
  j.start = 30;
  j.end = 39;
  w0.join(j);

  LoopRec loop;
  loop.uid = 1;
  loop.enclosing_task = kRootTask;
  loop.src = src_loop;
  loop.sched = ScheduleKind::Static;
  loop.iter_begin = 0;
  loop.iter_end = 8;
  loop.num_threads = 2;
  loop.starting_thread = 0;
  loop.start = 41;
  loop.end = 99;
  w0.loop(loop);

  auto chunk = [&](u16 thread, u32 seq, u64 lo, u64 hi, TimeNs s, TimeNs e) {
    ChunkRec c;
    c.loop = 1;
    c.thread = thread;
    c.core = thread;
    c.seq_on_thread = seq;
    c.iter_begin = lo;
    c.iter_end = hi;
    c.start = s;
    c.end = e;
    c.counters.compute = e - s;
    return c;
  };
  auto book = [&](u16 thread, u32 seq, TimeNs s, TimeNs e, bool got) {
    BookkeepRec b;
    b.loop = 1;
    b.thread = thread;
    b.core = thread;
    b.seq_on_thread = seq;
    b.start = s;
    b.end = e;
    b.got_chunk = got;
    return b;
  };
  w0.bookkeep(book(0, 0, 42, 43, true));
  w0.chunk(chunk(0, 0, 0, 4, 43, 60));
  w0.bookkeep(book(0, 1, 60, 61, false));
  w1.bookkeep(book(1, 0, 42, 44, true));
  w1.chunk(chunk(1, 0, 4, 8, 44, 70));
  w1.bookkeep(book(1, 1, 70, 71, false));

  auto stats = [&](u16 worker) {
    WorkerStatsRec s;
    s.worker = worker;
    s.tasks_spawned = 2 + worker;
    s.tasks_executed = 1 + worker;
    s.tasks_inlined = 1;
    s.steals = worker;  // <= tasks_executed
    s.steal_failures = 3;
    s.cas_failures = 1;
    s.deque_pushes = 2;
    s.deque_pops = 1;
    s.deque_resizes = worker;
    s.taskwait_helps = 1;
    s.idle_ns = 7 + worker;
    s.trace_bytes = 1000 + worker;
    return s;
  };
  w0.stats(stats(0));
  w1.stats(stats(1));

  TraceMeta meta;
  meta.program = "sample";
  meta.runtime = "handmade";
  meta.topology = "generic4";
  meta.num_workers = 2;
  meta.num_cores = 2;
  meta.ghz = 1.0;
  meta.region_start = 0;
  meta.region_end = 101;
  meta.notes = {"note one", "note two"};
  meta.profiled = true;
  meta.clock_source = "steady_clock";
  return rec.finish(meta);
}

TEST(TraceTest, SampleTraceIsValid) {
  const Trace t = make_sample_trace();
  const auto errs = validate_trace(t);
  EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs.front());
}

TEST(TraceTest, FinalizeSortsAndIndexes) {
  const Trace t = make_sample_trace();
  ASSERT_TRUE(t.finalized());
  ASSERT_TRUE(t.task_index(kRootTask).has_value());
  ASSERT_TRUE(t.task_index(2).has_value());
  EXPECT_FALSE(t.task_index(99).has_value());
  const auto frags = t.fragments_of(kRootTask);
  ASSERT_EQ(frags.size(), 5u);
  for (u32 i = 0; i < frags.size(); ++i) EXPECT_EQ(frags[i]->seq, i);
  EXPECT_EQ(t.fragments_of(1).size(), 1u);
  EXPECT_EQ(t.children_of(kRootTask).size(), 2u);
  EXPECT_EQ(t.children_of(1).size(), 0u);
  EXPECT_EQ(t.joins_of(kRootTask).size(), 1u);
  EXPECT_EQ(t.chunks_of(1).size(), 2u);
  EXPECT_EQ(t.bookkeeps_of(1).size(), 4u);
}

TEST(TraceTest, GrainCountExcludesRootIncludesChunks) {
  const Trace t = make_sample_trace();
  // 2 tasks + 2 chunks.
  EXPECT_EQ(t.grain_count(), 4u);
}

TEST(TraceTest, MakespanFromMeta) {
  const Trace t = make_sample_trace();
  EXPECT_EQ(t.makespan(), 101u);
}

TEST(TraceTest, InternSrcFormat) {
  StringTable st;
  const StrId id = intern_src(st, "sparselu.c", 246, "bmod");
  EXPECT_EQ(st.get(id), "sparselu.c:246(bmod)");
}

TEST(TraceSerializeTest, RoundTripPreservesEverything) {
  const Trace t = make_sample_trace();
  std::ostringstream os;
  save_trace(t, os);
  std::istringstream is(os.str());
  std::string error;
  auto loaded = load_trace(is, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  EXPECT_EQ(loaded->meta.program, t.meta.program);
  EXPECT_EQ(loaded->meta.runtime, t.meta.runtime);
  EXPECT_EQ(loaded->meta.num_workers, t.meta.num_workers);
  EXPECT_EQ(loaded->meta.region_end, t.meta.region_end);
  EXPECT_EQ(loaded->meta.notes, t.meta.notes);
  ASSERT_EQ(loaded->tasks.size(), t.tasks.size());
  ASSERT_EQ(loaded->fragments.size(), t.fragments.size());
  ASSERT_EQ(loaded->joins.size(), t.joins.size());
  ASSERT_EQ(loaded->loops.size(), t.loops.size());
  ASSERT_EQ(loaded->chunks.size(), t.chunks.size());
  ASSERT_EQ(loaded->bookkeeps.size(), t.bookkeeps.size());
  for (size_t i = 0; i < t.tasks.size(); ++i) {
    EXPECT_EQ(loaded->tasks[i].uid, t.tasks[i].uid);
    EXPECT_EQ(loaded->tasks[i].parent, t.tasks[i].parent);
    EXPECT_EQ(loaded->tasks[i].src, t.tasks[i].src);
  }
  for (size_t i = 0; i < t.fragments.size(); ++i) {
    EXPECT_EQ(loaded->fragments[i].start, t.fragments[i].start);
    EXPECT_EQ(loaded->fragments[i].end_reason, t.fragments[i].end_reason);
    EXPECT_EQ(loaded->fragments[i].counters.compute,
              t.fragments[i].counters.compute);
  }
  // String table identical.
  ASSERT_EQ(loaded->strings.size(), t.strings.size());
  for (StrId i = 0; i < t.strings.size(); ++i)
    EXPECT_EQ(loaded->strings.get(i), t.strings.get(i));
  // Worker stats and the v3 meta fields.
  EXPECT_EQ(loaded->meta.profiled, t.meta.profiled);
  EXPECT_EQ(loaded->meta.clock_source, t.meta.clock_source);
  EXPECT_EQ(loaded->meta.trace_buffer_bytes, t.meta.trace_buffer_bytes);
  ASSERT_EQ(loaded->worker_stats.size(), t.worker_stats.size());
  for (size_t i = 0; i < t.worker_stats.size(); ++i) {
    const WorkerStatsRec& a = loaded->worker_stats[i];
    const WorkerStatsRec& b = t.worker_stats[i];
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.tasks_spawned, b.tasks_spawned);
    EXPECT_EQ(a.tasks_executed, b.tasks_executed);
    EXPECT_EQ(a.tasks_inlined, b.tasks_inlined);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.steal_failures, b.steal_failures);
    EXPECT_EQ(a.cas_failures, b.cas_failures);
    EXPECT_EQ(a.deque_pushes, b.deque_pushes);
    EXPECT_EQ(a.deque_pops, b.deque_pops);
    EXPECT_EQ(a.deque_resizes, b.deque_resizes);
    EXPECT_EQ(a.taskwait_helps, b.taskwait_helps);
    EXPECT_EQ(a.idle_ns, b.idle_ns);
    EXPECT_EQ(a.trace_bytes, b.trace_bytes);
  }
  // And the loaded trace still validates.
  EXPECT_TRUE(validate_trace(*loaded).empty());
}

TEST(TraceSerializeTest, BinaryRoundTripPreservesWorkerStats) {
  const Trace t = make_sample_trace();
  ASSERT_EQ(t.worker_stats.size(), 2u);
  std::ostringstream os(std::ios::binary);
  save_trace_binary(t, os);
  std::istringstream is(os.str(), std::ios::binary);
  std::string error;
  auto loaded = load_trace_binary(is, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->meta.profiled, t.meta.profiled);
  EXPECT_EQ(loaded->meta.clock_source, t.meta.clock_source);
  EXPECT_EQ(loaded->meta.trace_buffer_bytes, t.meta.trace_buffer_bytes);
  ASSERT_EQ(loaded->worker_stats.size(), t.worker_stats.size());
  for (size_t i = 0; i < t.worker_stats.size(); ++i) {
    const WorkerStatsRec& a = loaded->worker_stats[i];
    const WorkerStatsRec& b = t.worker_stats[i];
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.tasks_spawned, b.tasks_spawned);
    EXPECT_EQ(a.steals, b.steals);
    EXPECT_EQ(a.cas_failures, b.cas_failures);
    EXPECT_EQ(a.deque_resizes, b.deque_resizes);
    EXPECT_EQ(a.idle_ns, b.idle_ns);
    EXPECT_EQ(a.trace_bytes, b.trace_bytes);
  }
  EXPECT_TRUE(validate_trace(*loaded).empty());
}

TEST(TraceSerializeTest, PreV3TextTraceStillLoads) {
  // A v2 writer never emitted metax/wstat lines; strip them and lower the
  // version header to simulate an old on-disk trace.
  const Trace t = make_sample_trace();
  std::ostringstream os;
  save_trace(t, os);
  std::istringstream lines(os.str());
  std::string line, old;
  while (std::getline(lines, line)) {
    if (line.rfind("ggtrace ", 0) == 0) {
      old += "ggtrace 2\n";
    } else if (line.rfind("metax", 0) == 0 || line.rfind("wstat", 0) == 0) {
      continue;
    } else {
      old += line + "\n";
    }
  }
  std::istringstream is(old);
  std::string error;
  auto loaded = load_trace(is, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  // Pre-v3 defaults: profiling on, no stats, no buffer accounting.
  EXPECT_TRUE(loaded->meta.profiled);
  EXPECT_TRUE(loaded->meta.clock_source.empty());
  EXPECT_EQ(loaded->meta.trace_buffer_bytes, 0u);
  EXPECT_TRUE(loaded->worker_stats.empty());
  EXPECT_EQ(loaded->tasks.size(), t.tasks.size());
  EXPECT_TRUE(validate_trace(*loaded).empty());
}

TEST(TraceTest, WorkerStatsLookup) {
  const Trace t = make_sample_trace();
  ASSERT_NE(t.worker_stats_of(1), nullptr);
  EXPECT_EQ(t.worker_stats_of(1)->worker, 1);
  EXPECT_EQ(t.worker_stats_of(7), nullptr);
}

TEST(TraceValidateTest, DetectsBogusWorkerStats) {
  Trace t = make_sample_trace();
  WorkerStatsRec s;
  s.worker = 9;  // >= num_workers
  s.steals = 5;
  s.tasks_executed = 1;  // steals > executed
  t.worker_stats.push_back(s);
  t.finalize();
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(TraceSerializeTest, RejectsGarbage) {
  std::istringstream is("not a trace\n");
  std::string error;
  EXPECT_FALSE(load_trace(is, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(TraceSerializeTest, RejectsBadRecord) {
  std::istringstream is("ggtrace 1\ntask nonsense\n");
  std::string error;
  EXPECT_FALSE(load_trace(is, &error).has_value());
}

TEST(TraceSerializeTest, EscapedStringsSurvive) {
  TraceRecorder rec(1);
  rec.intern("has space and %percent%");
  TraceMeta meta;
  meta.program = "white space program";
  meta.region_end = 1;
  TaskRec root;
  root.uid = kRootTask;
  root.parent = kNoTask;
  rec.writer(0).task(root);
  FragmentRec f;
  f.task = kRootTask;
  f.end = 1;
  rec.writer(0).fragment(f);
  const Trace t = rec.finish(meta);

  std::ostringstream os;
  save_trace(t, os);
  std::istringstream is(os.str());
  auto loaded = load_trace(is);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->meta.program, "white space program");
  EXPECT_NE(loaded->strings.find("has space and %percent%"), 0u);
}

TEST(TraceValidateTest, DetectsMissingParent) {
  Trace t = make_sample_trace();
  TaskRec orphan;
  orphan.uid = 77;
  orphan.parent = 55;  // does not exist
  t.tasks.push_back(orphan);
  FragmentRec f;
  f.task = 77;
  f.end = 1;
  t.fragments.push_back(f);
  t.finalize();
  const auto errs = validate_trace(t);
  EXPECT_FALSE(errs.empty());
}

TEST(TraceValidateTest, DetectsFragmentGap) {
  Trace t = make_sample_trace();
  // Remove fragment seq 1 of root.
  std::erase_if(t.fragments, [](const FragmentRec& f) {
    return f.task == kRootTask && f.seq == 1;
  });
  t.finalize();
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(TraceValidateTest, DetectsChunkCoverageHole) {
  Trace t = make_sample_trace();
  std::erase_if(t.chunks, [](const ChunkRec& c) { return c.thread == 1; });
  t.finalize();
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(TraceValidateTest, DetectsTaskWithoutFragments) {
  Trace t = make_sample_trace();
  std::erase_if(t.fragments, [](const FragmentRec& f) { return f.task == 2; });
  t.finalize();
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(TraceValidateTest, DetectsOutOfBoundsTimes) {
  Trace t = make_sample_trace();
  t.meta.region_end = 50;  // several records end later
  t.finalize();
  EXPECT_FALSE(validate_trace(t).empty());
}

TEST(TraceRecorderTest, ParallelWritersMerge) {
  TraceRecorder rec(4);
  for (int w = 0; w < 4; ++w) {
    auto writer = rec.writer(w);
    TaskRec t;
    t.uid = w == 0 ? kRootTask : static_cast<TaskId>(w);
    t.parent = w == 0 ? kNoTask : kRootTask;
    t.child_index = w == 0 ? 0 : static_cast<u32>(w - 1);
    writer.task(t);
  }
  TraceMeta meta;
  meta.num_workers = 4;
  const Trace t = rec.finish(meta);
  EXPECT_EQ(t.tasks.size(), 4u);
  // Sorted by uid after finalize.
  for (size_t i = 1; i < t.tasks.size(); ++i)
    EXPECT_LT(t.tasks[i - 1].uid, t.tasks[i].uid);
}

}  // namespace
}  // namespace gg
