// Tests for the before/after comparison module, the work/span summary, and
// the Strassen blocked-leaf fix knob.
#include <gtest/gtest.h>

#include "analysis/compare.hpp"
#include "apps/fft.hpp"
#include "apps/strassen.hpp"
#include "sim/capture.hpp"
#include "sim/sim_engine.hpp"

namespace gg {
namespace {

using front::Ctx;

struct RunPair {
  Trace trace;
  Analysis analysis;
};

RunPair analyze_fft(u64 cutoff) {
  sim::SimOptions o;
  o.num_cores = 16;
  sim::SimEngine eng(o);
  apps::FftParams p;
  p.num_samples = 1 << 12;
  p.spawn_cutoff = cutoff;
  Trace t = eng.run("fft", apps::fft_program(eng, p));
  Analysis a = analyze(t, Topology::opteron48());
  return RunPair{std::move(t), std::move(a)};
}

TEST(CompareTest, FftBeforeAfterCutoffs) {
  const RunPair before = analyze_fft(2);
  const RunPair after = analyze_fft(1 << 8);
  const Comparison c =
      compare_runs(before.trace, before.analysis, after.trace, after.analysis);
  EXPECT_GT(c.speedup, 1.0);  // the fix wins
  EXPECT_GT(c.grains_before, 10 * c.grains_after);
  // The low-parallel-benefit problem shrinks.
  const auto [lb_before, lb_after] =
      c.problems[static_cast<size_t>(Problem::LowParallelBenefit)];
  EXPECT_GT(lb_before, lb_after);
  // fft.c:4680 appears in the per-source deltas with fewer grains after.
  bool found = false;
  for (const SourceDelta& d : c.sources) {
    if (d.source.find("fft_aux") != std::string::npos) {
      found = true;
      EXPECT_GT(d.grains_before, d.grains_after);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CompareTest, IdenticalRunsCompareNeutral) {
  const RunPair a = analyze_fft(1 << 8);
  const RunPair b = analyze_fft(1 << 8);
  const Comparison c = compare_runs(a.trace, a.analysis, b.trace, b.analysis);
  EXPECT_DOUBLE_EQ(c.speedup, 1.0);  // simulator is deterministic
  EXPECT_EQ(c.grains_before, c.grains_after);
  EXPECT_EQ(c.grains_faster, 0u);
  EXPECT_EQ(c.grains_slower, 0u);
}

TEST(CompareTest, RenderedReportMentionsKeyNumbers) {
  const RunPair before = analyze_fft(2);
  const RunPair after = analyze_fft(1 << 8);
  const Comparison c =
      compare_runs(before.trace, before.analysis, after.trace, after.analysis);
  const std::string text = render_comparison(c);
  EXPECT_NE(text.find("speedup"), std::string::npos);
  EXPECT_NE(text.find("low parallel benefit"), std::string::npos);
  EXPECT_NE(text.find("fft_aux"), std::string::npos);
}

TEST(WorkSpanTest, AverageParallelismIsWorkOverSpan) {
  sim::SimOptions o;
  o.num_cores = 8;
  o.memory_model = false;
  sim::SimEngine eng(o);
  const Trace t = eng.run("fan", [](Ctx& ctx) {
    for (int i = 0; i < 16; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(1'000'000); });
    ctx.taskwait();
  });
  const Analysis a = analyze(t, Topology::opteron48());
  EXPECT_GT(a.metrics.total_work, 0u);
  EXPECT_NEAR(a.metrics.avg_parallelism,
              static_cast<double>(a.metrics.total_work) /
                  static_cast<double>(a.metrics.critical_path_time),
              1e-9);
  // 16 equal tasks: work ~ 16x one task, span ~ one task -> avg ~ 16.
  EXPECT_NEAR(a.metrics.avg_parallelism, 16.0, 1.5);
}

TEST(BlockedLeafTest, FixReducesStrassenStalls) {
  auto run = [](bool blocked) {
    sim::Capture cap;
    sim::CaptureRegionEngine ce(cap);
    apps::StrassenParams p;
    p.matrix_size = 1024;
    p.sc = 128;
    p.hard_coded_cutoff = false;
    p.blocked_leaf = blocked;
    const sim::Program prog = cap.run("strassen", apps::strassen_program(ce, p));
    sim::SimOptions o;
    o.num_cores = 48;
    return sim::simulate(prog, o);
  };
  const Trace naive = run(false);
  const Trace blocked = run(true);
  Cycles stall_naive = 0, stall_blocked = 0;
  for (const auto& f : naive.fragments) stall_naive += f.counters.stall;
  for (const auto& f : blocked.fragments) stall_blocked += f.counters.stall;
  // The leaf L1-miss storm disappears; the NUMA fetch floor (same distinct
  // lines either way) remains, so expect a solid but not total reduction.
  EXPECT_LT(stall_blocked, stall_naive * 2 / 3);
  EXPECT_LT(blocked.makespan(), naive.makespan());
}

}  // namespace
}  // namespace gg
