// API-contract tests: the restrictions both engines enforce (mirroring the
// paper's profiler, which does not support nested parallelism — §4.1 omits
// 352.nab for this reason) must fail loudly, not silently corrupt traces.
#include <gtest/gtest.h>

#include "rts/threaded_engine.hpp"
#include "sim/capture.hpp"
#include "sim/sim_engine.hpp"

namespace gg {
namespace {

using front::Ctx;
using front::ForOpts;

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, SpawnFromChunkAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::SimEngine eng(sim::SimOptions{});
        eng.run("bad", [](Ctx& ctx) {
          ctx.parallel_for(GG_SRC, 0, 4, ForOpts{}, [](u64, Ctx& c) {
            c.spawn(GG_SRC, [](Ctx&) {});
          });
        });
      },
      "spawning tasks from loop chunks");
}

TEST(ContractDeathTest, TaskwaitFromChunkAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::SimEngine eng(sim::SimOptions{});
        eng.run("bad", [](Ctx& ctx) {
          ctx.parallel_for(GG_SRC, 0, 4, ForOpts{},
                           [](u64, Ctx& c) { c.taskwait(); });
        });
      },
      "taskwait inside loop chunks");
}

TEST(ContractDeathTest, NestedParallelForAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::SimEngine eng(sim::SimOptions{});
        eng.run("bad", [](Ctx& ctx) {
          ctx.spawn(GG_SRC, [](Ctx& c) {
            c.parallel_for(GG_SRC, 0, 4, ForOpts{}, [](u64, Ctx&) {});
          });
          ctx.taskwait();
        });
      },
      "parallel_for is only supported from the root task");
}

TEST(ContractDeathTest, ThreadedSpawnFromChunkAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        rts::Options o;
        o.num_workers = 1;
        rts::ThreadedEngine eng(o);
        eng.run("bad", [](Ctx& ctx) {
          ctx.parallel_for(GG_SRC, 0, 4, ForOpts{}, [](u64, Ctx& c) {
            c.spawn(GG_SRC, [](Ctx&) {});
          });
        });
      },
      "spawning tasks from loop chunks");
}

TEST(ContractDeathTest, CaptureRunTwiceAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::Capture cap;
        cap.run("first", [](Ctx&) {});
        cap.run("second", [](Ctx&) {});
      },
      "once per Capture");
}

TEST(ContractDeathTest, CaptureRegionEngineRunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::Capture cap;
        sim::CaptureRegionEngine eng(cap);
        eng.run("nope", [](Ctx&) {});
      },
      "only allocates regions");
}

TEST(ContractTest, TouchOnUnallocatedRegionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        sim::SimEngine eng(sim::SimOptions{});
        eng.run("bad", [](Ctx& ctx) { ctx.touch(7, 0, 64); });
      },
      "unallocated region");
}

}  // namespace
}  // namespace gg
