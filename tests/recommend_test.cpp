// Tests for the recommendation rules: each paper case study's situation
// must trigger its matching advice (and healthy programs must stay quiet).
#include <gtest/gtest.h>

#include "analysis/recommend.hpp"
#include "apps/fft.hpp"
#include "apps/freqmine.hpp"
#include "apps/kdtree.hpp"
#include "apps/sort.hpp"
#include "apps/strassen.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"
#include "sim/sim_engine.hpp"

namespace gg {
namespace {

using front::Ctx;

struct R {
  Trace trace;
  Analysis analysis;
  std::vector<Recommendation> recs;
};

R run(const std::function<front::TaskFn(front::Engine&)>& make,
      bool with_baseline = false, sim::SimPolicy pol = sim::SimPolicy::mir()) {
  sim::Capture cap;
  sim::CaptureRegionEngine ce(cap);
  const sim::Program prog = cap.run("p", make(ce));
  sim::SimOptions o;
  o.policy = pol;
  R r{sim::simulate(prog, o), {}, {}};
  AnalysisOptions ao;
  static GrainTable baseline;
  if (with_baseline) {
    sim::SimOptions o1 = o;
    o1.num_cores = 1;
    baseline = GrainTable::build(sim::simulate(prog, o1));
    ao.baseline = &baseline;
    ProblemThresholds th =
        ProblemThresholds::defaults(48, Topology::opteron48());
    th.work_deviation_max = 1.2;
    ao.thresholds = th;
  }
  r.analysis = analyze(r.trace, Topology::opteron48(), ao);
  r.recs = recommend(r.trace, r.analysis);
  return r;
}

bool any_mentions(const std::vector<Recommendation>& recs,
                  const std::string& needle) {
  for (const Recommendation& r : recs) {
    if (r.headline.find(needle) != std::string::npos ||
        r.paper_ref.find(needle) != std::string::npos) {
      return true;
    }
  }
  return false;
}

TEST(RecommendTest, UnoptimizedFftSuggestsCutoffAtTheCulprit) {
  const R r = run([](front::Engine& e) {
    apps::FftParams p;
    p.num_samples = 1 << 12;
    p.spawn_cutoff = 2;
    return apps::fft_program(e, p);
  });
  ASSERT_FALSE(r.recs.empty());
  EXPECT_TRUE(any_mentions(r.recs, "cutoff"));
  EXPECT_TRUE(any_mentions(r.recs, "fft"));  // names the culprit definition
}

TEST(RecommendTest, SortFirstTouchSuggestsPageDistribution) {
  const R r = run(
      [](front::Engine& e) {
        apps::SortParams p;
        p.num_elements = 1 << 19;
        p.quick_cutoff = 1 << 13;
        p.merge_cutoff = 1 << 13;
        return apps::sort_program(e, p);
      },
      /*with_baseline=*/true);
  EXPECT_TRUE(any_mentions(r.recs, "round-robin"));
}

TEST(RecommendTest, FreqmineSuggestsTeamTrim) {
  const R r = run([](front::Engine& e) {
    return apps::freqmine_program(e, apps::FreqmineParams{});
  });
  bool found = false;
  for (const Recommendation& rec : r.recs) {
    if (rec.headline.find("num_threads(") != std::string::npos) {
      found = true;
      EXPECT_NE(rec.headline.find("FP_growth_first"), std::string::npos);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RecommendTest, CentralQueueStrassenSuggestsWorkStealing) {
  const R r = run(
      [](front::Engine& e) {
        apps::StrassenParams p;
        p.matrix_size = 2048;
        p.hard_coded_cutoff = false;
        return apps::strassen_program(e, p);
      },
      false, sim::SimPolicy::mir_central());
  EXPECT_TRUE(any_mentions(r.recs, "work-stealing"));
}

TEST(RecommendTest, HealthyProgramStaysQuietOnBenefitAndInflation) {
  const R r = run([](front::Engine&) {
    return front::TaskFn([](Ctx& ctx) {
      for (int i = 0; i < 96; ++i)
        ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(20'000'000); });
      ctx.taskwait();
    });
  });
  EXPECT_FALSE(any_mentions(r.recs, "cutoff"));
  EXPECT_FALSE(any_mentions(r.recs, "round-robin"));
  EXPECT_FALSE(any_mentions(r.recs, "num_threads("));
}

TEST(RecommendTest, RenderedListIsNumberedWithEvidence) {
  const R r = run([](front::Engine& e) {
    apps::KdtreeParams p;
    p.num_points = 3000;
    return apps::kdtree_program(e, p);
  });
  const std::string text = render_recommendations(r.recs);
  if (!r.recs.empty()) {
    EXPECT_NE(text.find("1. "), std::string::npos);
    EXPECT_NE(text.find("evidence:"), std::string::npos);
    EXPECT_NE(text.find("cf. "), std::string::npos);
  } else {
    EXPECT_NE(text.find("healthy"), std::string::npos);
  }
}

}  // namespace
}  // namespace gg
