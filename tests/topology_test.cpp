#include <gtest/gtest.h>

#include "topology/topology.hpp"

namespace gg {
namespace {

TEST(TopologyTest, Opteron48MatchesPaperMachine) {
  const Topology t = Topology::opteron48();
  EXPECT_EQ(t.num_cores(), 48);
  EXPECT_EQ(t.num_sockets(), 4);
  EXPECT_EQ(t.cores_per_socket(), 12);
  EXPECT_EQ(t.cores_per_numa(), 6);
  EXPECT_EQ(t.num_numa_nodes(), 8);
  EXPECT_DOUBLE_EQ(t.ghz(), 2.1);
}

TEST(TopologyTest, CoreToNodeMapping) {
  const Topology t = Topology::opteron48();
  EXPECT_EQ(t.numa_of_core(0), 0);
  EXPECT_EQ(t.numa_of_core(5), 0);
  EXPECT_EQ(t.numa_of_core(6), 1);
  EXPECT_EQ(t.numa_of_core(47), 7);
  EXPECT_EQ(t.socket_of_core(0), 0);
  EXPECT_EQ(t.socket_of_core(11), 0);
  EXPECT_EQ(t.socket_of_core(12), 1);
  EXPECT_EQ(t.socket_of_core(47), 3);
}

TEST(TopologyTest, DistanceTableConventions) {
  const Topology t = Topology::opteron48();
  EXPECT_EQ(t.numa_distance(0, 0), 10);   // local
  EXPECT_EQ(t.numa_distance(0, 1), 16);   // same socket
  EXPECT_EQ(t.numa_distance(0, 2), 22);   // remote socket
  EXPECT_EQ(t.numa_distance(3, 2), 16);
  // Symmetry.
  for (int a = 0; a < t.num_numa_nodes(); ++a)
    for (int b = 0; b < t.num_numa_nodes(); ++b)
      EXPECT_EQ(t.numa_distance(a, b), t.numa_distance(b, a));
}

TEST(TopologyTest, CoreDistance) {
  const Topology t = Topology::opteron48();
  EXPECT_EQ(t.core_distance(3, 3), 0);
  EXPECT_EQ(t.core_distance(0, 1), 10);   // same node
  EXPECT_EQ(t.core_distance(0, 6), 16);   // same socket, other die
  EXPECT_EQ(t.core_distance(0, 12), 22);  // other socket
}

TEST(TopologyTest, CoresOfNuma) {
  const Topology t = Topology::opteron48();
  const auto cores = t.cores_of_numa(1);
  ASSERT_EQ(cores.size(), 6u);
  EXPECT_EQ(cores.front(), 6);
  EXPECT_EQ(cores.back(), 11);
}

TEST(TopologyTest, CycleTimeConversionRoundTrips) {
  const Topology t = Topology::opteron48();
  EXPECT_EQ(t.cycles_to_ns(2100), 1000u);
  EXPECT_EQ(t.ns_to_cycles(1000), 2100u);
  Topology g = Topology::generic4();
  g.set_ghz(1.0);
  EXPECT_EQ(g.cycles_to_ns(123), 123u);
}

TEST(TopologyTest, SmallPresets) {
  const Topology g4 = Topology::generic4();
  EXPECT_EQ(g4.num_cores(), 4);
  EXPECT_EQ(g4.num_numa_nodes(), 1);
  const Topology g16 = Topology::generic16();
  EXPECT_EQ(g16.num_cores(), 16);
  EXPECT_EQ(g16.num_numa_nodes(), 4);
  EXPECT_EQ(g16.num_sockets(), 2);
}

TEST(TopologyTest, SymmetricCustomShape) {
  const Topology t = Topology::symmetric(3, 2, 5, "custom");
  EXPECT_EQ(t.num_cores(), 30);
  EXPECT_EQ(t.num_numa_nodes(), 6);
  EXPECT_EQ(t.cores_per_socket(), 10);
  EXPECT_EQ(t.name(), "custom");
}

}  // namespace
}  // namespace gg
