// The cross-engine differential oracle (rts under deterministic schedule
// exploration, simulator, serial reference). The default run is sized for
// per-commit CI; the deep configuration — 200 programs x 50 schedules, the
// acceptance bar — runs the same binary under `ctest -L deep`, which sets
// GG_CHECK_PROGRAMS / GG_CHECK_SCHEDULES.
#include <cstdlib>

#include <gtest/gtest.h>

#include "check/genprog.hpp"
#include "check/oracle.hpp"
#include "check/serial_ref.hpp"
#include "check/signature.hpp"
#include "sim/sim_engine.hpp"
#include "support/test_support.hpp"

namespace gg {
namespace {

int env_int(const char* name, int fallback) {
  if (const char* v = std::getenv(name)) {
    const int parsed = std::atoi(v);
    if (parsed > 0) return parsed;
  }
  return fallback;
}

TEST(GenProgTest, SameSeedSameProgram) {
  const u64 seed = test::test_seed();
  GG_SEED_TRACE(seed);
  const check::ProgramSpec a = check::generate_program(seed);
  const check::ProgramSpec b = check::generate_program(seed);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (size_t t = 0; t < a.tasks.size(); ++t) {
    ASSERT_EQ(a.tasks[t].actions.size(), b.tasks[t].actions.size());
    for (size_t i = 0; i < a.tasks[t].actions.size(); ++i) {
      EXPECT_EQ(a.tasks[t].actions[i].kind, b.tasks[t].actions[i].kind);
      EXPECT_EQ(a.tasks[t].actions[i].cycles, b.tasks[t].actions[i].cycles);
    }
  }
}

TEST(GenProgTest, EveryProgramHasGrains) {
  for (u64 d = 0; d < 32; ++d) {
    const check::ProgramSpec spec =
        check::generate_program(test::test_seed() + d);
    GG_SEED_TRACE(spec.seed);
    bool has_grain = spec.spawned_tasks() > 0;
    for (const check::GenAction& a : spec.tasks[0].actions) {
      if (a.kind == check::GenAction::Kind::ParallelFor ||
          a.kind == check::GenAction::Kind::Taskloop) {
        has_grain = true;
      }
    }
    EXPECT_TRUE(has_grain) << spec.name() << " is all-compute";
  }
}

TEST(OracleTest, SerialReferenceMatchesZeroOverheadSimExactly) {
  // A focused version of the oracle's exact tier, for a sharper failure
  // when only the serial reference drifts.
  for (u64 d = 0; d < 6; ++d) {
    const check::ProgramSpec spec =
        check::generate_program(test::test_seed() + d);
    GG_SEED_TRACE(spec.seed);
    check::SerialRefOptions sropts;
    check::SerialRefEngine ser(sropts);
    const Trace t_ser = run_spec(spec, ser);

    sim::SimOptions so;
    so.num_cores = 1;
    so.policy = sim::SimPolicy::zero_overhead();
    so.memory_model = false;
    sim::SimEngine sim_eng(so);
    const Trace t_sim = run_spec(spec, sim_eng);

    const std::string sig_ser = check::canonical_signature(t_ser);
    const std::string sig_sim = check::canonical_signature(t_sim);
    EXPECT_EQ(sig_ser, sig_sim)
        << spec.name() << ": "
        << check::first_signature_diff(sig_ser, sig_sim);
    EXPECT_EQ(t_ser.makespan(), t_sim.makespan()) << spec.name();
  }
}

TEST(OracleTest, DifferentialOraclePasses) {
  const int programs = env_int("GG_CHECK_PROGRAMS", 8);
  const int schedules = env_int("GG_CHECK_SCHEDULES", 6);
  const u64 base = test::test_seed();
  GG_SEED_TRACE(base);
  check::OracleOptions opts;
  opts.schedules = schedules;
  opts.log = programs > 20;  // progress lines for the deep configuration
  const check::OracleResult res = check::check_many(base, programs, opts);
  EXPECT_EQ(res.programs_checked, programs);
  EXPECT_EQ(res.schedules_explored, programs * schedules);
  EXPECT_TRUE(res.ok()) << res.summary();
}

}  // namespace
}  // namespace gg
