// Work-queue edge cases explored under the schedule controller, across
// every pluggable backend (rts/work_queue.hpp): steal-vs-pop on a size-1
// queue, growth during concurrent steals, and an empty-queue steal storm.
// All runs must account for every value exactly once, on every backend,
// strategy, and seed tried — the same value-accounting harness the seeded
// GG_MUT_* mutations must fail.
#include <gtest/gtest.h>

#include "check/deque_check.hpp"
#include "rts/chase_lev_deque.hpp"
#include "support/test_support.hpp"

namespace gg {
namespace {

using check::DequeCheckOptions;
using check::DequeCheckResult;
using check::Strategy;

constexpr Strategy kStrategies[] = {Strategy::RoundRobin,
                                    Strategy::RandomWalk,
                                    Strategy::SleepSet};

void expect_clean(const DequeCheckResult& r) {
  EXPECT_TRUE(r.ok()) << r.violations.front();
  EXPECT_GT(r.decisions, 0u) << "controller never consulted — points not "
                                "reached [" << r.schedule_desc << "]";
}

/// Every test in this fixture runs once per queue backend; the matrices
/// inside sweep strategy x seed on top of that.
class BackendDequeCheckTest
    : public ::testing::TestWithParam<rts::QueueBackend> {};

TEST_P(BackendDequeCheckTest, StealVsPopAtSizeOne) {
  // One item in flight per round: every round is a direct owner-pop vs
  // thief-steal race on the same slot — the classic Chase-Lev CAS window,
  // the per-cell claim race in the OF/TS deques, and a one-request combining
  // batch in the FC deque.
  for (const Strategy s : kStrategies) {
    for (u64 d = 0; d < 6; ++d) {
      DequeCheckOptions opts;
      opts.backend = GetParam();
      opts.schedule.strategy = s;
      opts.schedule.seed = test::test_seed() + d;
      GG_SEED_TRACE(opts.schedule.seed);
      opts.num_thieves = 1;
      opts.items_per_round = 1;
      opts.rounds = 12;
      opts.owner_pops = 1;
      expect_clean(check_deque(opts));
    }
  }
}

TEST_P(BackendDequeCheckTest, GrowthDuringConcurrentSteal) {
  // Capacity 2 with 16 pushes per round forces several growths (Chase-Lev
  // buffer doublings; OF/TS segment appends) while thieves hold top indices
  // into the old storage.
  for (const Strategy s : kStrategies) {
    for (u64 d = 0; d < 4; ++d) {
      DequeCheckOptions opts;
      opts.backend = GetParam();
      opts.schedule.strategy = s;
      opts.schedule.seed = test::test_seed() + 17 * (d + 1);
      GG_SEED_TRACE(opts.schedule.seed);
      opts.num_thieves = 2;
      opts.items_per_round = 16;
      opts.rounds = 4;
      opts.owner_pops = 3;
      opts.initial_capacity = 2;
      expect_clean(check_deque(opts));
    }
  }
}

TEST_P(BackendDequeCheckTest, EmptyQueueStealStorm) {
  // Nothing is ever pushed: three thieves hammer an empty queue while the
  // owner drains nothing. Terminates (no lost wakeup / livelock under the
  // controller) and delivers the empty set.
  for (const Strategy s : kStrategies) {
    DequeCheckOptions opts;
    opts.backend = GetParam();
    opts.schedule.strategy = s;
    opts.schedule.seed = test::test_seed();
    GG_SEED_TRACE(opts.schedule.seed);
    opts.num_thieves = 3;
    opts.items_per_round = 0;
    opts.rounds = 1;
    opts.owner_pops = 0;
    opts.max_steal_attempts = 64;
    expect_clean(check_deque(opts));
  }
}

TEST_P(BackendDequeCheckTest, RunsAreDeterministic) {
  DequeCheckOptions opts;
  opts.backend = GetParam();
  opts.schedule.strategy = Strategy::RandomWalk;
  opts.schedule.seed = test::test_seed() + 5;
  GG_SEED_TRACE(opts.schedule.seed);
  opts.num_thieves = 2;
  opts.items_per_round = 4;
  opts.rounds = 6;
  opts.initial_capacity = 4;
  const DequeCheckResult a = check_deque(opts);
  const DequeCheckResult b = check_deque(opts);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.schedule_desc, b.schedule_desc);
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, BackendDequeCheckTest,
    ::testing::ValuesIn(rts::kAllQueueBackends),
    [](const ::testing::TestParamInfo<rts::QueueBackend>& info) {
      std::string name = rts::to_string(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DequeCheckTest, GrowthPreservesAllValues) {
  // Single-threaded growth sanity apart from the controller: push far past
  // the initial capacity, then pop everything back in LIFO order.
  rts::ChaseLevDeque<u64> dq(/*initial_capacity=*/2);
  for (u64 v = 1; v <= 100; ++v) dq.push(v);
  EXPECT_GT(dq.resize_count(), 0u);
  for (u64 v = 100; v >= 1; --v) {
    auto got = dq.pop();
    ASSERT_TRUE(got.has_value()) << "value " << v;
    EXPECT_EQ(*got, v);
  }
  EXPECT_FALSE(dq.pop().has_value());
}

TEST(DequeCheckTest, CentralQueueAccountsEveryValue) {
  for (const Strategy s : kStrategies) {
    for (u64 d = 0; d < 4; ++d) {
      DequeCheckOptions opts;
      opts.schedule.strategy = s;
      opts.schedule.seed = test::test_seed() + 31 * (d + 1);
      GG_SEED_TRACE(opts.schedule.seed);
      opts.num_thieves = 2;
      opts.items_per_round = 3;
      opts.rounds = 4;
      expect_clean(check_central_queue(opts));
    }
  }
}

}  // namespace
}  // namespace gg
