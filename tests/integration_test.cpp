// Cross-module integration tests: app -> engine -> trace -> (serialize) ->
// graph -> metrics -> analysis -> export, and threaded-vs-simulated
// structural equality.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "analysis/report.hpp"
#include "apps/fib.hpp"
#include "apps/nqueens.hpp"
#include "apps/sort.hpp"
#include "apps/sparselu.hpp"
#include "export/graphml.hpp"
#include "export/grain_csv.hpp"
#include "export/json_summary.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/capture.hpp"
#include "sim/sim_engine.hpp"
#include "trace/serialize.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

using front::Ctx;

std::set<std::string> path_set(const Trace& t) {
  std::set<std::string> out;
  const GrainTable table = GrainTable::build(t);
  for (const Grain& g : table.grains()) out.insert(g.path);
  return out;
}

// The defining property of grain graphs (§3.1): for a deterministic task
// program, the structure is independent of the runtime, machine size, and
// scheduling. The REAL threaded runtime and the simulator must produce
// identical grain-id sets.
TEST(IntegrationTest, ThreadedAndSimulatedRunsShareGrainIds) {
  auto make_fib = [](front::Engine& e) {
    apps::FibParams p;
    p.n = 16;
    p.cutoff = 6;
    return apps::fib_program(e, p);
  };
  rts::Options ro;
  ro.num_workers = 3;
  rts::ThreadedEngine threaded(ro);
  const Trace t_real = threaded.run("fib", make_fib(threaded));

  sim::SimOptions so;
  so.num_cores = 48;
  sim::SimEngine simulated(so);
  const Trace t_sim = simulated.run("fib", make_fib(simulated));

  EXPECT_TRUE(validate_trace(t_real).empty());
  EXPECT_TRUE(validate_trace(t_sim).empty());
  EXPECT_EQ(path_set(t_real), path_set(t_sim));
}

TEST(IntegrationTest, GrainIdsStableAcrossSchedulersAndCores) {
  auto make = [](front::Engine& e) {
    apps::NQueensParams p;
    p.n = 7;
    p.cutoff = 3;
    return apps::nqueens_program(e, p);
  };
  std::set<std::string> reference;
  bool first = true;
  for (auto pol : {sim::SimPolicy::mir(), sim::SimPolicy::gcc(),
                   sim::SimPolicy::icc(), sim::SimPolicy::mir_central()}) {
    for (int cores : {1, 13, 48}) {
      sim::SimOptions o;
      o.policy = pol;
      o.num_cores = cores;
      sim::SimEngine eng(o);
      const Trace t = eng.run("nqueens", make(eng));
      const auto paths = path_set(t);
      if (first) {
        reference = paths;
        first = false;
      } else {
        EXPECT_EQ(paths, reference) << pol.name << "/" << cores;
      }
    }
  }
  EXPECT_FALSE(reference.empty());
}

TEST(IntegrationTest, TextAndBinarySerializationAgree) {
  sim::SimOptions o;
  o.num_cores = 8;
  sim::SimEngine eng(o);
  apps::SortParams p;
  p.num_elements = 1 << 14;
  p.quick_cutoff = 1 << 11;
  p.merge_cutoff = 1 << 11;
  const Trace original = eng.run("sort", apps::sort_program(eng, p));

  std::stringstream text, binary;
  save_trace(original, text);
  save_trace_binary(original, binary);
  auto from_text = load_trace(text);
  auto from_binary = load_trace_binary(binary);
  ASSERT_TRUE(from_text.has_value());
  ASSERT_TRUE(from_binary.has_value());

  // Both round trips re-serialize to identical text.
  std::stringstream a, b, c;
  save_trace(original, a);
  save_trace(*from_text, b);
  save_trace(*from_binary, c);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(a.str(), c.str());
}

TEST(IntegrationTest, BinaryRejectsGarbageAndTruncation) {
  std::stringstream bad("not a binary trace at all");
  EXPECT_FALSE(load_trace_binary(bad).has_value());

  sim::SimOptions o;
  o.num_cores = 2;
  sim::SimEngine eng(o);
  apps::FibParams p;
  p.n = 8;
  p.cutoff = 4;
  const Trace t = eng.run("fib", apps::fib_program(eng, p));
  std::stringstream full;
  save_trace_binary(t, full);
  const std::string bytes = full.str();
  for (size_t cut : {size_t{3}, bytes.size() / 2, bytes.size() - 4}) {
    std::stringstream truncated(bytes.substr(0, cut));
    std::string error;
    EXPECT_FALSE(load_trace_binary(truncated, &error).has_value()) << cut;
    EXPECT_FALSE(error.empty());
  }
}

TEST(IntegrationTest, FileRoundTripByExtension) {
  sim::SimOptions o;
  o.num_cores = 4;
  sim::SimEngine eng(o);
  apps::FibParams p;
  p.n = 10;
  p.cutoff = 4;
  const Trace t = eng.run("fib", apps::fib_program(eng, p));
  for (const char* path : {"/tmp/gg_it.ggtrace", "/tmp/gg_it.ggbin"}) {
    ASSERT_TRUE(save_trace_file(t, path));
    std::string error;
    auto loaded = load_trace_file(path, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->tasks.size(), t.tasks.size());
    EXPECT_EQ(loaded->makespan(), t.makespan());
  }
}

TEST(IntegrationTest, AnalysisSurvivesSerializationRoundTrip) {
  sim::SimOptions o;
  o.num_cores = 16;
  sim::SimEngine eng(o);
  apps::SparseLuParams p;
  p.blocks = 6;
  p.block_size = 8;
  const Trace t = eng.run("sparselu", apps::sparselu_program(eng, p));
  std::stringstream ss;
  save_trace_binary(t, ss);
  auto loaded = load_trace_binary(ss);
  ASSERT_TRUE(loaded.has_value());

  const Analysis a1 = analyze(t, Topology::opteron48());
  const Analysis a2 = analyze(*loaded, Topology::opteron48());
  EXPECT_EQ(a1.grains.size(), a2.grains.size());
  EXPECT_EQ(a1.metrics.critical_path_time, a2.metrics.critical_path_time);
  for (size_t i = 0; i < kProblemCount; ++i) {
    EXPECT_EQ(a1.problems[i].flagged_count, a2.problems[i].flagged_count) << i;
  }
}

TEST(IntegrationTest, ExportsProduceParsableOutput) {
  sim::SimOptions o;
  o.num_cores = 4;
  sim::SimEngine eng(o);
  apps::FibParams p;
  p.n = 10;
  p.cutoff = 5;
  const Trace t = eng.run("fib", apps::fib_program(eng, p));
  const Analysis a = analyze(t, Topology::generic4());

  std::ostringstream json;
  write_json_summary(json, t, a);
  const std::string js = json.str();
  // Structural sanity: balanced braces/brackets, expected keys.
  long depth = 0;
  for (char c : js) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(js.find("\"critical_path_ns\""), std::string::npos);
  EXPECT_NE(js.find("\"low parallel benefit\""), std::string::npos);

  std::ostringstream csv;
  write_grain_csv(csv, t, a.grains, a.metrics);
  size_t lines = 0;
  for (char c : csv.str())
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, a.grains.size() + 1);
}

TEST(IntegrationTest, ReportMentionsEverySourceLocation) {
  sim::SimOptions o;
  o.num_cores = 8;
  sim::SimEngine eng(o);
  const Trace t = eng.run("multi_src", [](Ctx& ctx) {
    ctx.spawn(GG_SRC_NAMED("a.c", 1, "alpha"), [](Ctx& c) { c.compute(1000); });
    ctx.spawn(GG_SRC_NAMED("b.c", 2, "beta"), [](Ctx& c) { c.compute(2000); });
    ctx.taskwait();
  });
  const Analysis a = analyze(t, Topology::generic4());
  const std::string report = render_report(t, a);
  EXPECT_NE(report.find("a.c:1(alpha)"), std::string::npos);
  EXPECT_NE(report.find("b.c:2(beta)"), std::string::npos);
}

}  // namespace
}  // namespace gg
