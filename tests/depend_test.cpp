// Task-dependence tests (OpenMP 4.0 depend clauses — the paper's §6 future
// work, implemented end to end): resolution rules, runtime ordering under
// real threads, simulator equivalence, graph dependence edges, and the
// data-flow SparseLU variant.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "apps/sparselu.hpp"
#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/capture.hpp"
#include "sim/sim_engine.hpp"
#include "trace/serialize.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

using front::Ctx;
using front::Depends;

// ---------------------------------------------------------------------------
// Resolution rules (capture, deterministic)

size_t depend_count(const Trace& t) { return t.depends.size(); }

TEST(DependResolutionTest, WriteThenReadMakesOneEdge) {
  sim::SimEngine eng(sim::SimOptions{});
  const Trace t = eng.run("war", [](Ctx& ctx) {
    Depends w;
    w.out = {1};
    ctx.spawn(GG_SRC, w, [](Ctx& c) { c.compute(100); });
    Depends r;
    r.in = {1};
    ctx.spawn(GG_SRC, r, [](Ctx& c) { c.compute(100); });
    ctx.taskwait();
  });
  EXPECT_TRUE(validate_trace(t).empty());
  ASSERT_EQ(depend_count(t), 1u);
  EXPECT_EQ(t.depends[0].pred, 1u);
  EXPECT_EQ(t.depends[0].succ, 2u);
}

TEST(DependResolutionTest, ReadersSerializeBeforeNextWriter) {
  sim::SimEngine eng(sim::SimOptions{});
  const Trace t = eng.run("rrw", [](Ctx& ctx) {
    Depends w;
    w.out = {7};
    ctx.spawn(GG_SRC, w, [](Ctx&) {});  // task 1: writer
    Depends r;
    r.in = {7};
    ctx.spawn(GG_SRC, r, [](Ctx&) {});  // task 2: reader
    ctx.spawn(GG_SRC, r, [](Ctx&) {});  // task 3: reader
    ctx.spawn(GG_SRC, w, [](Ctx&) {});  // task 4: writer again
    ctx.taskwait();
  });
  // Edges: 1->2, 1->3 (RAW), 1->4? (the new writer waits on last writer AND
  // readers: 2->4, 3->4; writer 1 is superseded by reader tracking but still
  // a pred of 4 through the "last writer" rule).
  const auto preds2 = t.predecessors_of(2);
  const auto preds3 = t.predecessors_of(3);
  const auto preds4 = t.predecessors_of(4);
  EXPECT_EQ(preds2, std::vector<TaskId>{1});
  EXPECT_EQ(preds3, std::vector<TaskId>{1});
  EXPECT_EQ(preds4, (std::vector<TaskId>{1, 2, 3}));
}

TEST(DependResolutionTest, IndependentHandlesMakeNoEdges) {
  sim::SimEngine eng(sim::SimOptions{});
  const Trace t = eng.run("indep", [](Ctx& ctx) {
    for (u64 h = 1; h <= 6; ++h) {
      Depends d;
      d.out = {h};
      ctx.spawn(GG_SRC, d, [](Ctx& c) { c.compute(50); });
    }
    ctx.taskwait();
  });
  EXPECT_EQ(depend_count(t), 0u);
}

TEST(DependResolutionTest, ChainSerializesWriters) {
  sim::SimEngine eng(sim::SimOptions{});
  const Trace t = eng.run("chain", [](Ctx& ctx) {
    Depends d;
    d.out = {3};
    for (int i = 0; i < 5; ++i) ctx.spawn(GG_SRC, d, [](Ctx&) {});
    ctx.taskwait();
  });
  // WAW chain: 1->2->3->4->5.
  ASSERT_EQ(depend_count(t), 4u);
  for (TaskId succ = 2; succ <= 5; ++succ) {
    EXPECT_EQ(t.predecessors_of(succ), std::vector<TaskId>{succ - 1});
  }
}

// ---------------------------------------------------------------------------
// Runtime ordering (threaded, real concurrency)

TEST(DependThreadedTest, OrderingEnforcedUnderThreads) {
  // A chain of increments through a shared (unsynchronized!) variable:
  // only the dependence ordering makes this race-free.
  for (int trial = 0; trial < 20; ++trial) {
    rts::Options o;
    o.num_workers = 4;
    rts::ThreadedEngine eng(o);
    long value = 0;
    std::atomic<bool> out_of_order{false};
    const Trace t = eng.run("chain", [&](Ctx& ctx) {
      Depends d;
      d.out = {42};
      for (long i = 0; i < 32; ++i) {
        ctx.spawn(GG_SRC, d, [&value, &out_of_order, i](Ctx&) {
          if (value != i) out_of_order.store(true);
          value = i + 1;
        });
      }
      ctx.taskwait();
    });
    EXPECT_FALSE(out_of_order.load()) << "trial " << trial;
    EXPECT_EQ(value, 32);
    EXPECT_TRUE(validate_trace(t).empty());
  }
}

TEST(DependThreadedTest, DiamondPattern) {
  for (int trial = 0; trial < 20; ++trial) {
    rts::Options o;
    o.num_workers = 4;
    rts::ThreadedEngine eng(o);
    int a = 0, b = 0, c = 0;
    const Trace t = eng.run("diamond", [&](Ctx& ctx) {
      Depends wa;
      wa.out = {1};
      ctx.spawn(GG_SRC, wa, [&](Ctx&) { a = 10; });
      Depends rb;
      rb.in = {1};
      rb.out = {2};
      ctx.spawn(GG_SRC, rb, [&](Ctx&) { b = a + 1; });
      Depends rc;
      rc.in = {1};
      rc.out = {3};
      ctx.spawn(GG_SRC, rc, [&](Ctx&) { c = a + 2; });
      Depends join;
      join.in = {2, 3};
      ctx.spawn(GG_SRC, join, [&](Ctx&) { a = b + c; });
      ctx.taskwait();
    });
    EXPECT_EQ(a, 23);  // (10+1) + (10+2)
    EXPECT_TRUE(validate_trace(t).empty());
  }
}

TEST(DependThreadedTest, DependencesRecordedInTrace) {
  rts::Options o;
  o.num_workers = 2;
  rts::ThreadedEngine eng(o);
  const Trace t = eng.run("rec", [&](Ctx& ctx) {
    Depends d;
    d.out = {9};
    ctx.spawn(GG_SRC, d, [](Ctx&) {});
    ctx.spawn(GG_SRC, d, [](Ctx&) {});
    ctx.taskwait();
  });
  ASSERT_EQ(t.depends.size(), 1u);
  EXPECT_EQ(t.predecessors_of(2), std::vector<TaskId>{1});
}

// ---------------------------------------------------------------------------
// Graph + serialization

TEST(DependGraphTest, DependenceEdgesAppearInGraph) {
  sim::SimEngine eng(sim::SimOptions{});
  const Trace t = eng.run("g", [](Ctx& ctx) {
    Depends d;
    d.out = {5};
    for (int i = 0; i < 3; ++i)
      ctx.spawn(GG_SRC, d, [](Ctx& c) { c.compute(1000); });
    ctx.taskwait();
  });
  const GrainGraph g = GrainGraph::build(t);
  EXPECT_TRUE(validate_graph(g).empty());
  size_t dep_edges = 0;
  for (const GraphEdge& e : g.edges()) {
    if (e.kind == EdgeKind::Dependence) {
      ++dep_edges;
      EXPECT_EQ(g.nodes()[e.from].kind, NodeKind::Fragment);
      EXPECT_EQ(g.nodes()[e.to].kind, NodeKind::Fragment);
      EXPECT_NE(g.nodes()[e.from].task, g.nodes()[e.to].task);
    }
  }
  EXPECT_EQ(dep_edges, 2u);
}

TEST(DependGraphTest, CriticalPathFollowsDependenceChain) {
  // 8 independent-looking tasks forced into a chain by WAW dependences: the
  // critical path must cover (approximately) all of their work.
  sim::SimOptions o;
  o.num_cores = 8;
  o.memory_model = false;
  sim::SimEngine eng(o);
  const Trace t = eng.run("cp", [](Ctx& ctx) {
    Depends d;
    d.out = {1};
    for (int i = 0; i < 8; ++i)
      ctx.spawn(GG_SRC, d, [](Ctx& c) { c.compute(1'000'000); });
    ctx.taskwait();
  });
  const GrainGraph g = GrainGraph::build(t);
  const GrainTable grains = GrainTable::build(t);
  const MetricsResult m =
      compute_metrics(t, g, grains, Topology::opteron48());
  const TimeNs chain_work = Topology::opteron48().cycles_to_ns(8'000'000);
  EXPECT_GE(m.critical_path_time, chain_work);
  // And the makespan cannot beat the chain either (ordering enforced).
  EXPECT_GE(t.makespan(), chain_work);
}

TEST(DependSerializeTest, RoundTripsBothFormats) {
  sim::SimEngine eng(sim::SimOptions{});
  const Trace t = eng.run("ser", [](Ctx& ctx) {
    Depends d;
    d.out = {11};
    ctx.spawn(GG_SRC, d, [](Ctx&) {});
    ctx.spawn(GG_SRC, d, [](Ctx&) {});
    ctx.taskwait();
  });
  ASSERT_EQ(t.depends.size(), 1u);
  std::stringstream text, bin;
  save_trace(t, text);
  save_trace_binary(t, bin);
  auto t1 = load_trace(text);
  auto t2 = load_trace_binary(bin);
  ASSERT_TRUE(t1.has_value());
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t1->depends.size(), 1u);
  EXPECT_EQ(t2->depends.size(), 1u);
  EXPECT_EQ(t2->depends[0].pred, t.depends[0].pred);
}

TEST(DependValidateTest, RejectsBrokenDependences) {
  sim::SimEngine eng(sim::SimOptions{});
  Trace t = eng.run("v", [](Ctx& ctx) {
    Depends d;
    d.out = {2};
    ctx.spawn(GG_SRC, d, [](Ctx&) {});
    ctx.spawn(GG_SRC, d, [](Ctx&) {});
    ctx.taskwait();
  });
  t.depends.push_back(DependRec{99, 1});  // missing pred, inverted order
  t.finalize();
  EXPECT_FALSE(validate_trace(t).empty());
}

// ---------------------------------------------------------------------------
// Data-flow SparseLU

TEST(DependSparseLuTest, DataflowMatchesBarrierResult) {
  auto checksum_of = [](bool dataflow, bool threaded) {
    apps::SparseLuParams p;
    p.blocks = 6;
    p.block_size = 12;
    p.dataflow = dataflow;
    double checksum = 0.0;
    if (threaded) {
      rts::Options o;
      o.num_workers = 4;
      rts::ThreadedEngine eng(o);
      eng.run("sparselu", apps::sparselu_program(eng, p, &checksum));
    } else {
      sim::SimEngine eng(sim::SimOptions{});
      eng.run("sparselu", apps::sparselu_program(eng, p, &checksum));
    }
    return checksum;
  };
  const double barrier = checksum_of(false, false);
  const double dataflow_sim = checksum_of(true, false);
  const double dataflow_real = checksum_of(true, true);
  ASSERT_NE(barrier, 0.0);
  EXPECT_NEAR(dataflow_sim, barrier, std::abs(barrier) * 1e-6);
  EXPECT_NEAR(dataflow_real, barrier, std::abs(barrier) * 1e-6);
}

TEST(DependSparseLuTest, DataflowExposesMoreParallelism) {
  auto run48 = [](bool dataflow) {
    sim::Capture cap;
    sim::CaptureRegionEngine ce(cap);
    apps::SparseLuParams p;
    p.blocks = 12;
    p.block_size = 16;
    p.dataflow = dataflow;
    const sim::Program prog =
        cap.run("sparselu", apps::sparselu_program(ce, p));
    sim::SimOptions o;
    o.memory_model = false;
    return sim::simulate(prog, o);
  };
  const Trace barrier = run48(false);
  const Trace dataflow = run48(true);
  EXPECT_TRUE(validate_trace(dataflow).empty());
  // Removing the per-phase barriers shortens the makespan.
  EXPECT_LT(dataflow.makespan(), barrier.makespan());
  EXPECT_GT(dataflow.depends.size(), 100u);
}

TEST(DependSparseLuTest, GraphValidWithDependenceEdges) {
  sim::SimEngine eng(sim::SimOptions{});
  apps::SparseLuParams p;
  p.blocks = 5;
  p.block_size = 8;
  p.dataflow = true;
  const Trace t = eng.run("sparselu", apps::sparselu_program(eng, p));
  EXPECT_TRUE(validate_trace(t).empty());
  const GrainGraph g = GrainGraph::build(t);
  EXPECT_TRUE(validate_graph(g).empty());
  size_t dep_edges = 0;
  for (const GraphEdge& e : g.edges())
    if (e.kind == EdgeKind::Dependence) ++dep_edges;
  EXPECT_EQ(dep_edges, t.depends.size());
}

}  // namespace
}  // namespace gg
