#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "analysis/report.hpp"
#include "export/dot.hpp"
#include "export/grain_csv.hpp"
#include "export/graphml.hpp"
#include "export/html_report.hpp"
#include "graph/reductions.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

namespace gg {
namespace {

using front::Ctx;
using front::ForOpts;

struct Fixture {
  Trace trace;
  Analysis analysis;
};

Fixture make_fixture() {
  sim::Capture cap;
  sim::Program p = cap.run("export_demo", [](Ctx& ctx) {
    ctx.spawn(GG_SRC_NAMED("e.c", 1, "alpha"),
              [](Ctx& c) { c.compute(2'000'000); });
    ctx.spawn(GG_SRC_NAMED("e.c", 2, "beta"), [](Ctx& c) { c.compute(50); });
    ctx.taskwait();
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 4;
    ctx.parallel_for(GG_SRC_NAMED("e.c", 9, "loop"), 0, 16, fo,
                     [](u64, Ctx& c) { c.compute(100'000); });
  });
  sim::SimOptions o;
  o.num_cores = 4;
  o.memory_model = false;
  Trace t = sim::simulate(p, o);
  Analysis a = analyze(t, Topology::opteron48());
  return Fixture{std::move(t), std::move(a)};
}

// Minimal structural XML balance check: every <tag opens a matching </tag>.
void expect_balanced_xml(const std::string& xml) {
  std::vector<std::string> stack;
  size_t i = 0;
  while ((i = xml.find('<', i)) != std::string::npos) {
    if (xml.compare(i, 2, "<?") == 0) {
      i = xml.find('>', i);
      continue;
    }
    const size_t end = xml.find('>', i);
    ASSERT_NE(end, std::string::npos);
    std::string tag = xml.substr(i + 1, end - i - 1);
    const bool closing = !tag.empty() && tag[0] == '/';
    const bool selfclosing = !tag.empty() && tag.back() == '/';
    std::string name = closing ? tag.substr(1) : tag;
    const size_t sp = name.find_first_of(" \t\n");
    if (sp != std::string::npos) name = name.substr(0, sp);
    if (closing) {
      ASSERT_FALSE(stack.empty()) << "unbalanced at " << name;
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
    } else if (!selfclosing) {
      stack.push_back(name);
    }
    i = end + 1;
  }
  EXPECT_TRUE(stack.empty());
}

TEST(GraphMlTest, WellFormedWithAllNodeAndEdgeKinds) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  GraphMlOptions opts;
  write_graphml(os, f.analysis.graph, f.trace, &f.analysis.grains,
                &f.analysis.metrics, opts);
  const std::string xml = os.str();
  expect_balanced_xml(xml);
  EXPECT_NE(xml.find("<graphml"), std::string::npos);
  EXPECT_NE(xml.find("y:ShapeNode"), std::string::npos);
  for (const char* kind : {"fragment", "fork", "join", "bookkeep", "chunk"})
    EXPECT_NE(xml.find(">" + std::string(kind) + "<"), std::string::npos)
        << kind;
  for (const char* kind : {"creation", "continuation"})
    EXPECT_NE(xml.find(">" + std::string(kind) + "<"), std::string::npos);
  // Node/edge counts match the graph.
  size_t n_nodes = 0, pos = 0;
  while ((pos = xml.find("<node ", pos)) != std::string::npos) {
    ++n_nodes;
    ++pos;
  }
  EXPECT_EQ(n_nodes, f.analysis.graph.node_count());
}

TEST(GraphMlTest, ProblemViewColorsFlaggedAndDimsOthers) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  GraphMlOptions opts;
  opts.view = Problem::LowParallelBenefit;
  write_graphml(os, f.analysis.graph, f.trace, &f.analysis.grains,
                &f.analysis.metrics, opts);
  const std::string xml = os.str();
  // beta (50 cycles) is flagged red-ish; alpha is dimmed.
  EXPECT_NE(xml.find(dimmed_color()), std::string::npos);
  EXPECT_NE(xml.find("#ff"), std::string::npos);
}

TEST(GraphMlTest, ReducedGraphExports) {
  const Fixture f = make_fixture();
  const GrainGraph r = reduce_graph(f.analysis.graph, ReductionOptions{});
  std::ostringstream os;
  write_graphml(os, r, f.trace, nullptr, nullptr, GraphMlOptions{});
  expect_balanced_xml(os.str());
  EXPECT_NE(os.str().find("grp\">5<"), std::string::npos);  // a merged group
}

TEST(DotTest, ContainsNodesAndColoredEdges) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  write_dot(os, f.analysis.graph, f.trace);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("color=green"), std::string::npos);
  EXPECT_NE(dot.find("color=orange"), std::string::npos);
  EXPECT_NE(dot.find("e.c:1(alpha)"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(GrainCsvTest, OneRowPerGrainWithMetrics) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  write_grain_csv(os, f.trace, f.analysis.grains, f.analysis.metrics);
  const std::string csv = os.str();
  // header + one line per grain
  size_t lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, f.analysis.grains.size() + 1);
  EXPECT_NE(csv.find("parallel_benefit"), std::string::npos);
  EXPECT_NE(csv.find("0.0,task"), std::string::npos);
  EXPECT_NE(csv.find("L0.0:"), std::string::npos);
}

TEST(GrainCsvTest, FileRoundTrip) {
  const Fixture f = make_fixture();
  const std::string path = "/tmp/gg_export_test.csv";
  ASSERT_TRUE(
      write_grain_csv_file(path, f.trace, f.analysis.grains, f.analysis.metrics));
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header;
  std::getline(is, header);
  EXPECT_NE(header.find("path,kind"), std::string::npos);
}

TEST(HtmlReportTest, WellFormedAndContainsSections) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  write_html_report(os, f.trace, f.analysis);
  const std::string html = os.str();
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("Instantaneous parallelism"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("e.c:1(alpha)"), std::string::npos);
  EXPECT_NE(html.find("low parallel benefit"), std::string::npos);
  // Loop table present (the fixture has one loop).
  EXPECT_NE(html.find("e.c:9(loop)"), std::string::npos);
  // All tags balanced at least for tables.
  size_t open_tr = 0, close_tr = 0, pos = 0;
  while ((pos = html.find("<tr>", pos)) != std::string::npos) { ++open_tr; ++pos; }
  pos = 0;
  while ((pos = html.find("</tr>", pos)) != std::string::npos) { ++close_tr; ++pos; }
  EXPECT_EQ(open_tr, close_tr);
}

}  // namespace
}  // namespace gg
