#include <gtest/gtest.h>

#include <cctype>
#include <fstream>
#include <sstream>

#include "trace/recorder.hpp"

#include "analysis/report.hpp"
#include "export/chrome_trace.hpp"
#include "export/dot.hpp"
#include "export/grain_csv.hpp"
#include "export/graphml.hpp"
#include "export/html_report.hpp"
#include "graph/reductions.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

namespace gg {
namespace {

using front::Ctx;
using front::ForOpts;

struct Fixture {
  Trace trace;
  Analysis analysis;
};

Fixture make_fixture() {
  sim::Capture cap;
  sim::Program p = cap.run("export_demo", [](Ctx& ctx) {
    ctx.spawn(GG_SRC_NAMED("e.c", 1, "alpha"),
              [](Ctx& c) { c.compute(2'000'000); });
    ctx.spawn(GG_SRC_NAMED("e.c", 2, "beta"), [](Ctx& c) { c.compute(50); });
    ctx.taskwait();
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 4;
    ctx.parallel_for(GG_SRC_NAMED("e.c", 9, "loop"), 0, 16, fo,
                     [](u64, Ctx& c) { c.compute(100'000); });
  });
  sim::SimOptions o;
  o.num_cores = 4;
  o.memory_model = false;
  Trace t = sim::simulate(p, o);
  Analysis a = analyze(t, Topology::opteron48());
  return Fixture{std::move(t), std::move(a)};
}

// Minimal structural XML balance check: every <tag opens a matching </tag>.
void expect_balanced_xml(const std::string& xml) {
  std::vector<std::string> stack;
  size_t i = 0;
  while ((i = xml.find('<', i)) != std::string::npos) {
    if (xml.compare(i, 2, "<?") == 0) {
      i = xml.find('>', i);
      continue;
    }
    const size_t end = xml.find('>', i);
    ASSERT_NE(end, std::string::npos);
    std::string tag = xml.substr(i + 1, end - i - 1);
    const bool closing = !tag.empty() && tag[0] == '/';
    const bool selfclosing = !tag.empty() && tag.back() == '/';
    std::string name = closing ? tag.substr(1) : tag;
    const size_t sp = name.find_first_of(" \t\n");
    if (sp != std::string::npos) name = name.substr(0, sp);
    if (closing) {
      ASSERT_FALSE(stack.empty()) << "unbalanced at " << name;
      EXPECT_EQ(stack.back(), name);
      stack.pop_back();
    } else if (!selfclosing) {
      stack.push_back(name);
    }
    i = end + 1;
  }
  EXPECT_TRUE(stack.empty());
}

// Minimal recursive-descent JSON well-formedness checker, enough to reject
// truncated output, trailing commas, and unescaped strings.
bool json_parse_value(const std::string& s, size_t& i);

void json_skip_ws(const std::string& s, size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r'))
    ++i;
}

bool json_parse_string(const std::string& s, size_t& i) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') ++i;
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;
  return true;
}

bool json_parse_value(const std::string& s, size_t& i) {
  json_skip_ws(s, i);
  if (i >= s.size()) return false;
  const char c = s[i];
  if (c == '{' || c == '[') {
    const char close = c == '{' ? '}' : ']';
    ++i;
    json_skip_ws(s, i);
    if (i < s.size() && s[i] == close) {
      ++i;
      return true;
    }
    while (true) {
      if (close == '}') {
        json_skip_ws(s, i);
        if (!json_parse_string(s, i)) return false;
        json_skip_ws(s, i);
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
      }
      if (!json_parse_value(s, i)) return false;
      json_skip_ws(s, i);
      if (i < s.size() && s[i] == ',') {
        ++i;
        continue;
      }
      if (i < s.size() && s[i] == close) {
        ++i;
        return true;
      }
      return false;
    }
  }
  if (c == '"') return json_parse_string(s, i);
  for (const char* lit : {"true", "false", "null"}) {
    const size_t n = std::string(lit).size();
    if (s.compare(i, n, lit) == 0) {
      i += n;
      return true;
    }
  }
  const size_t start = i;
  if (s[i] == '-') ++i;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
          s[i] == 'e' || s[i] == 'E' || s[i] == '+' || s[i] == '-'))
    ++i;
  return i > start;
}

bool json_valid(const std::string& s) {
  size_t i = 0;
  if (!json_parse_value(s, i)) return false;
  json_skip_ws(s, i);
  return i == s.size();
}

size_t count_occurrences(const std::string& hay, const std::string& needle) {
  size_t n = 0, pos = 0;
  while ((pos = hay.find(needle, pos)) != std::string::npos) {
    ++n;
    pos += needle.size();
  }
  return n;
}

TEST(ChromeTraceTest, EmitsValidJsonWithOneSlicePerGrain) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  write_chrome_trace(os, f.trace);
  const std::string out = os.str();
  ASSERT_TRUE(json_valid(out)) << out.substr(0, 400);
  // One complete ("ph":"X") slice per fragment and per chunk.
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"X\""),
            f.trace.fragments.size() + f.trace.chunks.size());
  // Flow events come in matched start/finish pairs.
  EXPECT_EQ(count_occurrences(out, "\"ph\":\"s\""),
            count_occurrences(out, "\"ph\":\"f\""));
  // Worker tracks are named.
  for (int w = 0; w < f.trace.meta.num_workers; ++w)
    EXPECT_NE(out.find("worker " + std::to_string(w)), std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
}

TEST(ChromeTraceTest, CounterTracksStayNonNegative) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  write_chrome_trace(os, f.trace);
  const std::string out = os.str();
  EXPECT_GT(count_occurrences(out, "\"name\":\"parallelism\""), 0u);
  EXPECT_GT(count_occurrences(out, "\"name\":\"outstanding tasks\""), 0u);
  // Every counter sample value is non-negative.
  EXPECT_EQ(count_occurrences(out, "\"value\":-"), 0u);
  // The parallelism track returns to zero at the end of the region.
  size_t last = out.rfind("\"name\":\"parallelism\"");
  ASSERT_NE(last, std::string::npos);
  const size_t vpos = out.find("\"value\":", last);
  ASSERT_NE(vpos, std::string::npos);
  EXPECT_EQ(out.substr(vpos, 10), "\"value\":0}");
}

TEST(ChromeTraceTest, EmptyTraceStillValidJson) {
  TraceRecorder rec(1);
  TaskRec root;
  root.uid = kRootTask;
  root.parent = kNoTask;
  rec.writer(0).task(root);
  FragmentRec frag;
  frag.task = kRootTask;
  frag.end = 1;
  rec.writer(0).fragment(frag);
  TraceMeta meta;
  meta.program = "tiny";
  meta.region_end = 1;
  const Trace t = rec.finish(meta);
  std::ostringstream os;
  write_chrome_trace(os, t);
  EXPECT_TRUE(json_valid(os.str())) << os.str();
}

TEST(GraphMlTest, WellFormedWithAllNodeAndEdgeKinds) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  GraphMlOptions opts;
  write_graphml(os, f.analysis.graph, f.trace, &f.analysis.grains,
                &f.analysis.metrics, opts);
  const std::string xml = os.str();
  expect_balanced_xml(xml);
  EXPECT_NE(xml.find("<graphml"), std::string::npos);
  EXPECT_NE(xml.find("y:ShapeNode"), std::string::npos);
  for (const char* kind : {"fragment", "fork", "join", "bookkeep", "chunk"})
    EXPECT_NE(xml.find(">" + std::string(kind) + "<"), std::string::npos)
        << kind;
  for (const char* kind : {"creation", "continuation"})
    EXPECT_NE(xml.find(">" + std::string(kind) + "<"), std::string::npos);
  // Node/edge counts match the graph.
  size_t n_nodes = 0, pos = 0;
  while ((pos = xml.find("<node ", pos)) != std::string::npos) {
    ++n_nodes;
    ++pos;
  }
  EXPECT_EQ(n_nodes, f.analysis.graph.node_count());
}

TEST(GraphMlTest, ProblemViewColorsFlaggedAndDimsOthers) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  GraphMlOptions opts;
  opts.view = Problem::LowParallelBenefit;
  write_graphml(os, f.analysis.graph, f.trace, &f.analysis.grains,
                &f.analysis.metrics, opts);
  const std::string xml = os.str();
  // beta (50 cycles) is flagged red-ish; alpha is dimmed.
  EXPECT_NE(xml.find(dimmed_color()), std::string::npos);
  EXPECT_NE(xml.find("#ff"), std::string::npos);
}

TEST(GraphMlTest, ReducedGraphExports) {
  const Fixture f = make_fixture();
  const GrainGraph r = reduce_graph(f.analysis.graph, ReductionOptions{});
  std::ostringstream os;
  write_graphml(os, r, f.trace, nullptr, nullptr, GraphMlOptions{});
  expect_balanced_xml(os.str());
  EXPECT_NE(os.str().find("grp\">5<"), std::string::npos);  // a merged group
}

TEST(DotTest, ContainsNodesAndColoredEdges) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  write_dot(os, f.analysis.graph, f.trace);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("color=green"), std::string::npos);
  EXPECT_NE(dot.find("color=orange"), std::string::npos);
  EXPECT_NE(dot.find("e.c:1(alpha)"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(GrainCsvTest, OneRowPerGrainWithMetrics) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  write_grain_csv(os, f.trace, f.analysis.grains, f.analysis.metrics);
  const std::string csv = os.str();
  // header + one line per grain
  size_t lines = 0;
  for (char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, f.analysis.grains.size() + 1);
  EXPECT_NE(csv.find("parallel_benefit"), std::string::npos);
  EXPECT_NE(csv.find("0.0,task"), std::string::npos);
  EXPECT_NE(csv.find("L0.0:"), std::string::npos);
}

TEST(GrainCsvTest, FileRoundTrip) {
  const Fixture f = make_fixture();
  const std::string path = "/tmp/gg_export_test.csv";
  ASSERT_TRUE(
      write_grain_csv_file(path, f.trace, f.analysis.grains, f.analysis.metrics));
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string header;
  std::getline(is, header);
  EXPECT_NE(header.find("path,kind"), std::string::npos);
}

TEST(HtmlReportTest, WellFormedAndContainsSections) {
  const Fixture f = make_fixture();
  std::ostringstream os;
  write_html_report(os, f.trace, f.analysis);
  const std::string html = os.str();
  EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
  EXPECT_NE(html.find("</html>"), std::string::npos);
  EXPECT_NE(html.find("Instantaneous parallelism"), std::string::npos);
  EXPECT_NE(html.find("<svg"), std::string::npos);
  EXPECT_NE(html.find("e.c:1(alpha)"), std::string::npos);
  EXPECT_NE(html.find("low parallel benefit"), std::string::npos);
  // Loop table present (the fixture has one loop).
  EXPECT_NE(html.find("e.c:9(loop)"), std::string::npos);
  // All tags balanced at least for tables.
  size_t open_tr = 0, close_tr = 0, pos = 0;
  while ((pos = html.find("<tr>", pos)) != std::string::npos) { ++open_tr; ++pos; }
  pos = 0;
  while ((pos = html.find("</tr>", pos)) != std::string::npos) { ++close_tr; ++pos; }
  EXPECT_EQ(open_tr, close_tr);
}

}  // namespace
}  // namespace gg
