// Serving-layer tests: live spool tailing, session lifecycle, admission
// backpressure, the query server, and the chaos/parity bound.
//
// Everything time-dependent runs on a fake clock — backoff schedules,
// torn-tail deadlines, staleness, eviction — so every lifecycle path is
// deterministic. The live-tail edge cases (torn tail mid-frame, writer
// appending between reads, valid frames followed by garbage, footer-only
// loss) drive a seeded LiveSpoolWriter against a SpoolTailer and then pin
// the central robustness claim: the live ingest's finalized report and
// analysis are byte-identical to a batch `gganalyze --recover` replica
// over the same final file. The chaos test does the same with real forked
// writer processes killed by SIGKILL mid-write.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "serve/admission.hpp"
#include "serve/endpoint.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/tailer.hpp"
#include "trace/salvage.hpp"
#include "trace/spool.hpp"
#include "trace/synth.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

namespace fs = std::filesystem;

constexpr u64 kMs = 1'000'000;
constexpr u64 kT0 = 1'000'000'000;  // fake clocks never start at 0

std::string temp_path(const char* tag) {
  static int counter = 0;
  return (fs::temp_directory_path() /
          ("gg-serve-" + std::string(tag) + "-" +
           std::to_string(::getpid()) + "-" + std::to_string(counter++)))
      .string();
}

void write_file(const std::string& path, std::string_view bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
}

Trace make_trace(u64 seed, int workers = 4, u64 grains = 120) {
  SynthOptions opts;
  opts.seed = seed;
  opts.workers = workers;
  opts.grains = grains;
  return synth_trace(opts);
}

std::string make_spool_bytes(u64 seed, u64 epoch_bytes = 512) {
  return spool::spool_trace_bytes(make_trace(seed), epoch_bytes);
}

/// Cuts the clean footer off a finished spool stream (footer-only loss).
std::string strip_footer(std::string bytes) {
  const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
  if (!frames.empty() &&
      frames.back().type == spool::FrameType::CleanFooter) {
    bytes.resize(frames.back().offset);
  }
  return bytes;
}

/// The `gganalyze --recover` pipeline over a final file — the batch side
/// of every live/batch parity assertion in this suite.
struct BatchReplica {
  spool::RecoverResult rr;
  std::string report_text;
};

BatchReplica batch_recover(const std::string& path) {
  BatchReplica b;
  b.rr = spool::recover_spool_file(path);
  if (!b.rr.usable) return b;
  if (serve::recovery_degraded(b.rr.report)) salvage_trace(b.rr.trace);
  if (!validate_trace(b.rr.trace).empty()) return b;
  b.report_text = serve::analysis_report_text(b.rr.trace);
  return b;
}

/// Drives `tailer` and `writer` in lockstep: every iteration lets the
/// writer append one slice, polls, and advances the fake clock. Returns
/// the final fake time.
u64 interleave(serve::SpoolTailer& tailer, fault::LiveSpoolWriter& writer,
               u64 step_ns = 3 * kMs, int extra_polls = 64) {
  u64 now = kT0;
  while (!writer.done()) {
    writer.step();
    tailer.poll(now);
    now += step_ns;
  }
  for (int i = 0; i < extra_polls; ++i) {
    tailer.poll(now);
    now += step_ns;
  }
  return now;
}

void expect_parity(serve::SpoolTailer& tailer, const std::string& path,
                   const char* what) {
  const bool live_usable = tailer.finalize();
  const BatchReplica batch = batch_recover(path);
  EXPECT_EQ(live_usable, batch.rr.usable) << what;
  ASSERT_NE(tailer.trace(), nullptr) << what;
  const spool::RecoverReport& live = tailer.trace()->report();
  EXPECT_EQ(live.summary(), batch.rr.report.summary()) << what;
  EXPECT_EQ(live.diagnostics, batch.rr.report.diagnostics) << what;
  if (!live_usable || !batch.rr.usable) return;
  Trace trace = std::move(tailer.trace()->trace());
  if (serve::recovery_degraded(live)) salvage_trace(trace);
  ASSERT_TRUE(validate_trace(trace).empty()) << what;
  EXPECT_EQ(serve::analysis_report_text(trace), batch.report_text) << what;
}

// --- tailer -----------------------------------------------------------------

TEST(ServeTailerTest, SlowWriterAppendingBetweenReadsSealsClean) {
  const std::string path = temp_path("slow") + ".ggspool";
  fault::LiveWriterPlan plan;
  plan.chunk_min = 1;
  plan.chunk_max = 7;  // every read sees a torn prefix of something
  fault::LiveSpoolWriter writer(path, make_spool_bytes(11), plan);
  serve::SpoolTailer tailer(path);
  interleave(tailer, writer);
  EXPECT_EQ(tailer.state(), serve::TailState::Sealed);
  EXPECT_FALSE(tailer.tail_stuck());
  EXPECT_GT(tailer.stats().frames_applied, 0u);
  expect_parity(tailer, path, "slow writer");
  fs::remove(path);
}

TEST(ServeTailerTest, BackoffDoublesCapsAndResetsOnGrowth) {
  const std::string path = temp_path("backoff") + ".ggspool";
  const std::string bytes = make_spool_bytes(12);
  // Half the stream on disk, then the writer stalls.
  write_file(path, std::string_view(bytes).substr(0, bytes.size() / 2));
  serve::TailerOptions opts;
  opts.retry_initial_ns = 2 * kMs;
  opts.retry_max_ns = 50 * kMs;
  serve::SpoolTailer tailer(path, opts);
  u64 now = kT0;
  tailer.poll(now);  // consumes everything available, tail torn
  std::vector<u64> delays;
  for (int i = 0; i < 10; ++i) {
    now = tailer.next_poll_ns();
    tailer.poll(now);
    delays.push_back(tailer.next_poll_ns() - now);
  }
  // No growth: doubling up to the 50ms cap, then flat.
  for (size_t i = 1; i < delays.size(); ++i) {
    EXPECT_EQ(delays[i], std::min<u64>(delays[i - 1] * 2, 50 * kMs)) << i;
  }
  EXPECT_EQ(delays.back(), 50 * kMs);
  // A poll before the scheduled time is an idle no-op (the ~0-CPU path).
  const u64 idle_before = tailer.stats().idle_polls;
  tailer.poll(tailer.next_poll_ns() - 1);
  EXPECT_EQ(tailer.stats().idle_polls, idle_before + 1);
  // Growth resets the backoff to the initial delay.
  write_file(path, std::string_view(bytes).substr(0, bytes.size() * 3 / 4));
  now = tailer.next_poll_ns();
  tailer.poll(now);
  EXPECT_EQ(tailer.next_poll_ns() - now, 2 * kMs);
  fs::remove(path);
}

TEST(ServeTailerTest, TornTailMidFrameWaitsThenMatchesBatch) {
  const std::string path = temp_path("torn") + ".ggspool";
  fault::LiveWriterPlan plan;
  plan.ending = fault::LiveWriterPlan::Ending::TornFrame;
  plan.torn_payload_bytes = 5;
  fault::LiveSpoolWriter writer(path, make_spool_bytes(13), plan);
  serve::SpoolTailer tailer(path);
  u64 now = interleave(tailer, writer);
  EXPECT_EQ(tailer.state(), serve::TailState::Waiting);
  EXPECT_TRUE(tailer.tail_stuck());
  // Even far past the torn deadline the tailer must NOT escalate: there is
  // no later valid frame, so the damage is indistinguishable from an
  // in-flight write. (The session layer's staleness clock owns this case.)
  now += 60'000 * kMs;
  tailer.poll(now);
  tailer.poll(now + 100 * kMs);
  EXPECT_EQ(tailer.stats().resyncs, 0u);
  EXPECT_TRUE(tailer.tail_stuck());
  expect_parity(tailer, path, "torn tail at EOF");
  fs::remove(path);
}

TEST(ServeTailerTest, ValidFramesThenGarbageMatchesBatch) {
  const std::string path = temp_path("garbage") + ".ggspool";
  // Footer gone, then tail rot: checksum-valid frames followed by noise
  // that never contains a 'G' able to fake a frame magic.
  std::string bytes = strip_footer(make_spool_bytes(14));
  for (int i = 0; i < 96; ++i) bytes.push_back(static_cast<char>(0xA5));
  fault::LiveSpoolWriter writer(path, bytes, {});
  serve::SpoolTailer tailer(path);
  u64 now = interleave(tailer, writer);
  EXPECT_EQ(tailer.state(), serve::TailState::Waiting);
  EXPECT_TRUE(tailer.tail_stuck());
  now += 60'000 * kMs;
  tailer.poll(now);  // garbage at EOF: no later valid frame, no resync
  EXPECT_EQ(tailer.stats().resyncs, 0u);
  expect_parity(tailer, path, "garbage tail");
  fs::remove(path);
}

TEST(ServeTailerTest, FooterlessCrashLosesNothingBeforeTheTail) {
  const std::string path = temp_path("nofooter") + ".ggspool";
  fault::LiveWriterPlan plan;
  plan.ending = fault::LiveWriterPlan::Ending::FooterlessCrash;
  fault::LiveSpoolWriter writer(path, make_spool_bytes(15), plan);
  serve::SpoolTailer tailer(path);
  interleave(tailer, writer);
  // The stream ends at a frame boundary: healthy tail, just no footer.
  EXPECT_EQ(tailer.state(), serve::TailState::Streaming);
  EXPECT_FALSE(tailer.tail_stuck());
  expect_parity(tailer, path, "footer-only loss");
  ASSERT_NE(tailer.trace(), nullptr);
  EXPECT_TRUE(tailer.trace()->report().partial());
  EXPECT_EQ(tailer.trace()->report().frames_corrupt, 0u);
  fs::remove(path);
}

TEST(ServeTailerTest, MidStreamGarbleResyncsPastDeadlineLosingOneFrame) {
  const std::string path = temp_path("resync") + ".ggspool";
  const std::string bytes = make_spool_bytes(16);
  // Garble the magic of the first epoch frame; everything after stays
  // intact, so the tailer has proof the damage is not an in-flight write.
  const std::vector<spool::FrameSpan> frames = spool::scan_frames(bytes);
  size_t victim = SIZE_MAX;
  for (size_t i = 0; i < frames.size(); ++i) {
    if (frames[i].type == spool::FrameType::Epoch) {
      victim = i;
      break;
    }
  }
  ASSERT_NE(victim, SIZE_MAX);
  fault::LiveWriterPlan plan;
  plan.garble_frame = victim;
  serve::TailerOptions topts;
  topts.torn_deadline_ns = 500 * kMs;
  fault::LiveSpoolWriter writer(path, bytes, plan);
  serve::SpoolTailer tailer(path, topts);
  u64 now = kT0;
  while (!writer.done()) {
    writer.step();
    tailer.poll(now);
    now += 3 * kMs;
  }
  // Let the deadline pass, then poll: the tailer must abandon the garbled
  // span, resync at the next valid frame, and run through to the footer.
  now += 600 * kMs;
  for (int i = 0; i < 64 && tailer.state() != serve::TailState::Sealed; ++i) {
    tailer.poll(now);
    now += 50 * kMs;
  }
  EXPECT_EQ(tailer.state(), serve::TailState::Sealed);
  EXPECT_EQ(tailer.stats().resyncs, 1u);
  ASSERT_TRUE(tailer.finalize());
  const spool::RecoverReport& rep = tailer.trace()->report();
  // One bad frame, one epoch: the abandoned span is one corrupt frame and
  // the worker's next epoch arrives with a seq jump of exactly one.
  EXPECT_EQ(rep.frames_corrupt, 1u);
  EXPECT_EQ(rep.epoch_gaps, 1u);
  bool noted = false;
  for (const std::string& d : rep.diagnostics) {
    if (d.find("abandoned after the torn-tail deadline") != std::string::npos)
      noted = true;
  }
  EXPECT_TRUE(noted);
  Trace trace = std::move(tailer.trace()->trace());
  salvage_trace(trace);
  EXPECT_TRUE(validate_trace(trace).empty());
  fs::remove(path);
}

TEST(ServeTailerTest, TruncationUnderTheTailFailsExplicitly) {
  const std::string path = temp_path("shrink") + ".ggspool";
  const std::string bytes = make_spool_bytes(17);
  // Stop short of the footer so the tailer keeps watching the file.
  write_file(path, std::string_view(bytes).substr(0, bytes.size() - 10));
  serve::SpoolTailer tailer(path);
  tailer.poll(kT0);
  EXPECT_NE(tailer.state(), serve::TailState::Failed);
  write_file(path, std::string_view(bytes).substr(0, 40));  // shrinks
  tailer.poll(kT0 + 100 * kMs);
  EXPECT_EQ(tailer.state(), serve::TailState::Failed);
  EXPECT_NE(tailer.fail_reason().find("truncated under the tail"),
            std::string::npos);
  fs::remove(path);
}

TEST(ServeTailerTest, MissingFileFinalizesUnusable) {
  serve::SpoolTailer tailer(temp_path("absent") + ".ggspool");
  tailer.poll(kT0);
  tailer.poll(kT0 + 100 * kMs);
  EXPECT_FALSE(tailer.finalize());
  EXPECT_EQ(tailer.fail_reason(), "spool never appeared");
}

// --- sessions ---------------------------------------------------------------

TEST(ServeSessionTest, StaleFooterlessWriterHandsOffToRecovery) {
  const std::string path = temp_path("stale") + ".ggspool";
  fault::LiveWriterPlan plan;
  plan.ending = fault::LiveWriterPlan::Ending::FooterlessCrash;
  fault::LiveSpoolWriter writer(path, make_spool_bytes(21), plan);
  writer.finish();  // the writer is already dead when we attach
  serve::SessionOptions opts;
  opts.stale_after_ns = 200 * kMs;
  serve::Session session(1, path, opts);
  u64 now = kT0;
  for (int i = 0; i < 200 && !session.finalized(); ++i) {
    session.tick(now);
    now += 20 * kMs;
  }
  ASSERT_TRUE(session.finalized());
  EXPECT_EQ(session.state(), serve::SessionState::Stale);
  EXPECT_TRUE(session.usable());
  ASSERT_NE(session.trace(), nullptr);
  EXPECT_TRUE(session.report()->partial());
  // The finalized report text is exactly the batch pipeline's.
  EXPECT_EQ(session.report_text(), batch_recover(path).report_text);
  fs::remove(path);
}

TEST(ServeSessionTest, CrashFooterUpgradesToCrashedWithProvenance) {
  const std::string path = temp_path("crash") + ".ggspool";
  // Replace the clean footer with a crash footer (u32 signal + reason
  // string + NUL) — what the PR 5 emergency flush writes.
  std::string bytes = strip_footer(make_spool_bytes(22));
  std::string payload;
  payload.push_back(9);  // u32 LE signal number
  for (int i = 0; i < 3; ++i) payload.push_back(0);
  payload += "SIGKILL mid-flush";
  payload.push_back('\0');
  std::string frame(spool::kFrameMagic, sizeof spool::kFrameMagic);
  frame.push_back(static_cast<char>(spool::FrameType::CrashFooter));
  for (int i = 0; i < 8; ++i) frame.push_back(0);  // worker=0, seq=0
  for (int i = 0; i < 8; ++i)
    frame.push_back(static_cast<char>((payload.size() >> (8 * i)) & 0xff));
  const u64 sum = spool::frame_checksum(spool::FrameType::CrashFooter, 0, 0,
                                        payload.data(), payload.size());
  for (int i = 0; i < 8; ++i)
    frame.push_back(static_cast<char>((sum >> (8 * i)) & 0xff));
  frame += payload;
  bytes += frame;
  write_file(path, bytes);

  serve::Session session(2, path, {});
  u64 now = kT0;
  for (int i = 0; i < 200 && !session.finalized(); ++i) {
    session.tick(now);
    now += 20 * kMs;
  }
  ASSERT_TRUE(session.finalized());
  EXPECT_EQ(session.state(), serve::SessionState::Crashed);
  EXPECT_TRUE(session.usable());
  EXPECT_NE(session.report()->crash_reason.find("SIGKILL mid-flush"),
            std::string::npos);
  EXPECT_NE(session.status_line().find("crash="), std::string::npos);
  fs::remove(path);
}

TEST(ServeSessionTest, PausedSessionNeverGoesStale) {
  const std::string path = temp_path("paused") + ".ggspool";
  const std::string bytes = make_spool_bytes(23);
  write_file(path, std::string_view(bytes).substr(0, bytes.size() / 2));
  serve::SessionOptions opts;
  opts.stale_after_ns = 100 * kMs;
  serve::Session session(3, path, opts);
  u64 now = kT0;
  session.tick(now);
  session.pause(now);
  // Far beyond the staleness deadline: a paused session must not be
  // declared dead — its writer may be perfectly alive.
  for (int i = 0; i < 50; ++i) {
    now += 100 * kMs;
    session.tick(now);
  }
  EXPECT_FALSE(session.finalized());
  EXPECT_TRUE(session.paused());
  session.resume(now);
  write_file(path, bytes);  // the writer finished while we were paused
  for (int i = 0; i < 50 && !session.finalized(); ++i) {
    session.tick(now);
    now += 20 * kMs;
  }
  EXPECT_EQ(session.state(), serve::SessionState::Sealed);
  fs::remove(path);
}

// --- admission --------------------------------------------------------------

TEST(ServeAdmissionTest, LadderShedsQueriesThenPausesTailers) {
  serve::AdmissionOptions opts;
  opts.budget_bytes = 1000;
  serve::AdmissionController adm(opts, nullptr);

  adm.update(500, 1);
  EXPECT_EQ(adm.level(), serve::DegradeLevel::Normal);
  EXPECT_TRUE(adm.admit_heavy_query());

  adm.update(800, 1);  // >= 75%
  EXPECT_EQ(adm.level(), serve::DegradeLevel::SheddingQueries);
  EXPECT_FALSE(adm.admit_heavy_query());
  EXPECT_FALSE(adm.should_pause_tailers());

  adm.update(950, 1);  // >= 90%
  EXPECT_EQ(adm.level(), serve::DegradeLevel::PausingTailers);
  EXPECT_TRUE(adm.should_pause_tailers());
  EXPECT_FALSE(adm.admit_heavy_query());
  EXPECT_FALSE(adm.over_budget());

  adm.update(1200, 1);
  EXPECT_TRUE(adm.over_budget());

  adm.update(100, 1);  // pressure relieved
  EXPECT_EQ(adm.level(), serve::DegradeLevel::Normal);
  EXPECT_TRUE(adm.admit_heavy_query());
  EXPECT_EQ(adm.queries_shed(), 2u);
}

TEST(ServeAdmissionTest, DecisionsPublishThroughTheRegistry) {
  obs::Registry reg;
  serve::AdmissionOptions opts;
  opts.budget_bytes = 100;
  serve::AdmissionController adm(opts, &reg);
  adm.update(90, 2);
  (void)adm.admit_heavy_query();
  adm.note_paused();
  adm.note_evicted();
  const obs::MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("serve.queries_shed"), 1u);
  EXPECT_EQ(snap.counters.at("serve.tailers_paused"), 1u);
  EXPECT_EQ(snap.counters.at("serve.sessions_evicted"), 1u);
  EXPECT_EQ(snap.gauges.at("serve.resident_bytes"), 90.0);
  EXPECT_EQ(snap.gauges.at("serve.budget_bytes"), 100.0);
  EXPECT_EQ(snap.gauges.at("serve.degrade_level"), 2.0);
  EXPECT_EQ(snap.gauges.at("serve.sessions"), 2.0);
}

// --- server -----------------------------------------------------------------

/// A server over a temp directory with a fake clock the test advances.
struct ServerFixture {
  std::string dir;
  u64 now = kT0;
  serve::ServerOptions opts;

  explicit ServerFixture(u64 budget = 256ull << 20) {
    dir = temp_path("srv");
    fs::create_directories(dir);
    opts.dir = dir;
    opts.admission.budget_bytes = budget;
    opts.scan_interval_ns = 10 * kMs;
    opts.clock = [this] { return now; };
  }
  ~ServerFixture() { fs::remove_all(dir); }

  void ticks(serve::Server& server, int n, u64 step = 20 * kMs) {
    for (int i = 0; i < n; ++i) {
      server.tick();
      now += step;
    }
  }
};

/// Extracts the numeric id from the SESSIONS line mentioning `needle`
/// ("session <id> <path> <state> ..."); empty when absent.
std::string session_id_for(const std::string& sessions,
                           const std::string& needle) {
  const size_t at = sessions.find(needle);
  if (at == std::string::npos) return {};
  const size_t line = sessions.rfind("session ", at);
  if (line == std::string::npos) return {};
  const size_t id_start = line + 8;
  const size_t id_end = sessions.find(' ', id_start);
  return sessions.substr(id_start, id_end - id_start);
}

TEST(ServeServerTest, ScansDirectoryIngestsAndAnswersQueries) {
  ServerFixture fx;
  write_file(fx.dir + "/a.ggspool", make_spool_bytes(31));
  write_file(fx.dir + "/b.ggspool", make_spool_bytes(32));
  write_file(fx.dir + "/ignored.txt", "not a spool");
  serve::Server server(fx.opts);
  fx.ticks(server, 30);
  EXPECT_EQ(server.session_count(), 2u);
  EXPECT_TRUE(server.idle());

  EXPECT_EQ(server.query("PING"), "PONG\n");
  const std::string sessions = server.query("SESSIONS");
  EXPECT_NE(sessions.find("a.ggspool sealed"), std::string::npos);
  EXPECT_NE(sessions.find("b.ggspool sealed"), std::string::npos);
  const std::string status = server.query("STATUS");
  EXPECT_NE(status.find("sessions=2"), std::string::npos);
  EXPECT_NE(status.find("level=normal"), std::string::npos);
  const std::string summary = server.query("SUMMARY " + fx.dir + "/a.ggspool");
  EXPECT_NE(summary.find("frames="), std::string::npos);
  // REPORT under normal pressure: the full analysis, batch-identical.
  const std::string report = server.query("REPORT " + fx.dir + "/a.ggspool");
  EXPECT_EQ(report, batch_recover(fx.dir + "/a.ggspool").report_text);
  // Sessions are addressable by their numeric id too.
  const std::string id = session_id_for(sessions, "a.ggspool");
  ASSERT_FALSE(id.empty());
  EXPECT_EQ(server.query("SUMMARY " + id), summary);
  // ...and by unique basename (SESSIONS prints absolute paths, humans type
  // the file name).
  EXPECT_EQ(server.query("SUMMARY a.ggspool"), summary);
  EXPECT_NE(server.query("SUMMARY nope").find("ERR"), std::string::npos);
  EXPECT_NE(server.query("BOGUS").find("ERR unknown command"),
            std::string::npos);
}

TEST(ServeServerTest, BackpressureShedsPausesAndRecovers) {
  ServerFixture fx(/*budget=*/1);  // 1 byte: everything is over budget
  fx.opts.session.stale_after_ns = 3600'000 * kMs;  // staleness off
  // Live (footer-less) spools so the sessions stay unfinalized and cannot
  // simply be evicted to relieve pressure.
  for (int i = 0; i < 3; ++i) {
    fault::LiveWriterPlan plan;
    plan.ending = fault::LiveWriterPlan::Ending::FooterlessCrash;
    fault::LiveSpoolWriter writer(
        fx.dir + "/w" + std::to_string(i) + ".ggspool",
        make_spool_bytes(40 + static_cast<u64>(i)), plan);
    writer.finish();
  }
  serve::Server server(fx.opts);
  fx.ticks(server, 10);
  EXPECT_EQ(server.session_count(), 3u);
  EXPECT_EQ(server.admission().level(), serve::DegradeLevel::PausingTailers);
  // Heavy queries are shed with a cheap refusal...
  const std::string refused = server.query("REPORT 1");
  EXPECT_EQ(refused.rfind("SHED", 0), 0u) << refused;
  // ...cheap ones still answered.
  EXPECT_EQ(server.query("PING"), "PONG\n");
  EXPECT_NE(server.query("SUMMARY 1").find("frames="), std::string::npos);
  // All but one live tailer paused: ingestion never deadlocks itself.
  size_t paused = 0, live = 0;
  server.for_each_session([&](const serve::Session& s) {
    if (s.paused()) ++paused;
    else ++live;
  });
  EXPECT_EQ(paused, 2u);
  EXPECT_EQ(live, 1u);
  EXPECT_GE(server.admission().tailers_paused(), 2u);
  const std::string status = server.query("STATUS");
  EXPECT_NE(status.find("level=pausing-tailers"), std::string::npos);
}

TEST(ServeServerTest, EvictsIdleFinalizedSessions) {
  ServerFixture fx;
  fx.opts.session.evict_after_ns = 500 * kMs;
  write_file(fx.dir + "/done.ggspool", make_spool_bytes(33));
  serve::Server server(fx.opts);
  fx.ticks(server, 10);
  EXPECT_EQ(server.session_count(), 1u);
  EXPECT_TRUE(server.idle());
  fx.now += 600 * kMs;  // idle past the eviction deadline
  server.tick();
  EXPECT_EQ(server.session_count(), 0u);
  EXPECT_EQ(server.admission().sessions_evicted(), 1u);
  // Explicit EVICT of a re-attached session works too.
  EXPECT_NE(server.query("ATTACH " + fx.dir + "/done.ggspool").find("OK"),
            std::string::npos);
  fx.ticks(server, 10);
  EXPECT_NE(server.query("EVICT " + fx.dir + "/done.ggspool").find("OK"),
            std::string::npos);
  EXPECT_EQ(server.session_count(), 0u);
}

TEST(ServeServerTest, TelemetryQueryExposesServeMetrics) {
  obs::Registry reg;
  ServerFixture fx;
  fx.opts.telemetry = &reg;
  write_file(fx.dir + "/t.ggspool", make_spool_bytes(34));
  serve::Server server(fx.opts);
  fx.ticks(server, 10);
  const std::string prom = server.query("TELEMETRY PROM");
  EXPECT_NE(prom.find("gg_serve_ticks"), std::string::npos);
  EXPECT_NE(prom.find("gg_serve_sessions_attached"), std::string::npos);
  const std::string json = server.query("TELEMETRY JSON");
  EXPECT_NE(json.find("serve.frames_applied"), std::string::npos);
  serve::Server no_reg{serve::ServerOptions{}};
  EXPECT_EQ(no_reg.query("TELEMETRY"), "no telemetry\n");
}

TEST(ServeServerTest, DiagnosisDumpsSessionTable) {
  ServerFixture fx;
  write_file(fx.dir + "/d.ggspool", make_spool_bytes(35));
  serve::Server server(fx.opts);
  fx.ticks(server, 10);
  const std::string diag = server.diagnosis();
  EXPECT_NE(diag.find("ggserved stall diagnosis"), std::string::npos);
  EXPECT_NE(diag.find("d.ggspool"), std::string::npos);
}

TEST(ServeServerTest, RunExitsWhenIdleAndWatchdogSurvivesStalls) {
  ServerFixture fx;
  {
    fault::LiveWriterPlan plan;
    plan.ending = fault::LiveWriterPlan::Ending::FooterlessCrash;
    fault::LiveSpoolWriter writer(fx.dir + "/run.ggspool",
                                  make_spool_bytes(36), plan);
    writer.finish();
  }
  fx.opts.clock = nullptr;  // real clock: run() owns the loop
  fx.opts.exit_when_idle = true;
  // A footer-less spool keeps the session live until real-clock staleness,
  // and a tick sleep far above the stall deadline makes every sleep a
  // stall. The watchdog must diagnose (never abort) and run() still exits
  // cleanly once the session goes stale and finalizes.
  fx.opts.session.stale_after_ns = 600 * kMs;
  fx.opts.tick_sleep_ns = 300 * kMs;
  fx.opts.watchdog_stall_ns = 50 * kMs;
  fx.opts.watchdog_poll_ns = 5 * kMs;
  std::string stall_report;
  fx.opts.on_stall = [&](const std::string& report) { stall_report = report; };
  serve::Server server(fx.opts);
  EXPECT_EQ(server.run(), 0);
  EXPECT_GE(server.watchdog_stalls(), 1u);
  EXPECT_NE(stall_report.find("stall diagnosis"), std::string::npos);
  server.for_each_session([](const serve::Session& s) {
    EXPECT_TRUE(s.finalized());
    EXPECT_EQ(s.state(), serve::SessionState::Stale);
  });
}

// --- endpoint ---------------------------------------------------------------

TEST(ServeEndpointTest, RoundTripsOneRequestPerConnection) {
  const std::string sock = temp_path("sock");
  serve::Endpoint ep(sock, [](const std::string& req) {
    return "echo:" + req + "\n";
  });
  std::string err;
  ASSERT_TRUE(ep.start(&err)) << err;
  std::string response;
  ASSERT_TRUE(serve::endpoint_request(sock, "PING", &response, &err)) << err;
  EXPECT_EQ(response, "echo:PING\n");
  ASSERT_TRUE(serve::endpoint_request(sock, "STATUS all\n", &response, &err));
  EXPECT_EQ(response, "echo:STATUS all\n");
  ep.stop();
  EXPECT_FALSE(serve::endpoint_request(sock, "PING", &response, &err));
}

// --- chaos: forked writers, SIGKILL, live/batch parity ----------------------

TEST(ServeChaosTest, ForkKillWritersRecoverWithBatchParityAndLossBound) {
  const std::string dir = temp_path("chaos");
  fs::create_directories(dir);
  constexpr int kWriters = 4;

  // Writers 0 and 1 die by SIGKILL mid-write; 2 crashes footer-less on its
  // own; 3 shuts down cleanly. Each child writes slowly enough that the
  // kill lands mid-stream.
  std::vector<pid_t> pids;
  std::vector<std::string> paths;
  for (int w = 0; w < kWriters; ++w) {
    const std::string path = dir + "/worker" + std::to_string(w) + ".ggspool";
    paths.push_back(path);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      std::fclose(stderr);
      fault::LiveWriterPlan plan;
      plan.seed = 100 + static_cast<u64>(w);
      plan.chunk_max = 256;
      if (w == 2) plan.ending = fault::LiveWriterPlan::Ending::FooterlessCrash;
      fault::LiveSpoolWriter writer(
          path, make_spool_bytes(50 + static_cast<u64>(w), 512), plan);
      while (!writer.done()) {
        writer.step();
        ::usleep(1000);
      }
      ::_exit(0);
    }
    pids.push_back(pid);
  }
  ::usleep(50'000);  // let every writer get frames down, none finish
  ::kill(pids[0], SIGKILL);
  ::kill(pids[1], SIGKILL);
  for (int w = 0; w < kWriters; ++w) {
    int status = 0;
    ::waitpid(pids[w], &status, 0);
  }

  // Serve the directory on a fake clock: tick until every session
  // finalized (the two killed writers and the footer-less one go stale,
  // the clean one seals).
  serve::ServerOptions opts;
  opts.dir = dir;
  opts.scan_interval_ns = 10 * kMs;
  opts.session.stale_after_ns = 300 * kMs;
  opts.session.evict_after_ns = 3600'000 * kMs;  // keep them for inspection
  opts.admission.budget_bytes = 64ull << 20;
  u64 now = kT0;
  opts.clock = [&now] { return now; };
  serve::Server server(opts);
  bool all_final = false;
  for (int i = 0; i < 500 && !all_final; ++i) {
    server.tick();
    now += 20 * kMs;
    all_final = server.session_count() == kWriters;
    server.for_each_session([&](const serve::Session& s) {
      all_final = all_final && s.finalized();
    });
  }
  ASSERT_TRUE(all_final);

  // Resident accounting never pushed past the budget: with four small
  // spools the degrade ladder must never have engaged.
  EXPECT_LE(server.admission().resident_bytes(),
            server.admission().budget_bytes());
  EXPECT_EQ(server.admission().level(), serve::DegradeLevel::Normal);

  for (int w = 0; w < kWriters; ++w) {
    SCOPED_TRACE("worker " + std::to_string(w));
    const BatchReplica batch = batch_recover(paths[w]);
    EXPECT_TRUE(batch.rr.usable);
    bool seen = false;
    server.for_each_session([&](const serve::Session& s) {
      if (s.path() != paths[w]) return;
      seen = true;
      // Every session recovered (usable), none silently dropped.
      EXPECT_TRUE(s.finalized());
      EXPECT_TRUE(s.usable());
      ASSERT_NE(s.report(), nullptr);
      // Live/batch parity: same recovery report, same analysis text.
      EXPECT_EQ(s.report()->summary(), batch.rr.report.summary());
      EXPECT_EQ(s.report_text(), batch.report_text);
      // Loss bound: a SIGKILLed writer loses at most the one torn frame
      // at its tail — every complete frame before it is kept.
      EXPECT_LE(s.report()->frames_total - s.report()->frames_kept, 1u);
      if (w == 2) {
        EXPECT_EQ(s.state(), serve::SessionState::Stale);
        EXPECT_TRUE(s.report()->partial());
      } else if (w == 3) {
        EXPECT_EQ(s.state(), serve::SessionState::Sealed);
        EXPECT_FALSE(s.report()->partial());
      }
    });
    EXPECT_TRUE(seen);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace gg
