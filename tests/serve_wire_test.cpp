// GGWIRE1 network-ingestion tests: codec hardening, the socketless
// protocol state machine, resumable sessions over real sockets, the
// client/proxy fault matrix, and the endpoint satellites.
//
// The central claim mirrors the filesystem tailer's: a spool stream pushed
// over the wire — through resets, partial writes, duplicated sends, bit
// flips, stalls, garbage preambles, a killed client, or a killed-and-
// restarted daemon — finalizes with a report byte-identical to a batch
// `gganalyze --recover` over the same source bytes, losing at most the
// unacked tail. Wire damage may cost a connection; it never costs the
// session.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "fault/wire_fault.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "serve/endpoint.hpp"
#include "serve/ingest.hpp"
#include "serve/server.hpp"
#include "serve/session.hpp"
#include "serve/wire.hpp"
#include "serve/wire_client.hpp"
#include "trace/salvage.hpp"
#include "trace/spool.hpp"
#include "trace/synth.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

namespace fs = std::filesystem;
using serve::wire::Token;

constexpr u64 kT0 = 1'000'000'000;  // fake clocks never start at 0

std::string temp_path(const char* tag) {
  static int counter = 0;
  return (fs::temp_directory_path() /
          ("gg-wire-" + std::string(tag) + "-" + std::to_string(::getpid()) +
           "-" + std::to_string(counter++)))
      .string();
}

std::string make_spool_bytes(u64 seed, u64 grains = 200,
                             u64 epoch_bytes = 512) {
  SynthOptions opts;
  opts.seed = seed;
  opts.workers = 4;
  opts.grains = grains;
  return spool::spool_trace_bytes(synth_trace(opts), epoch_bytes);
}

/// The `gganalyze --recover` pipeline over the source bytes — the batch
/// side of every wire/batch parity assertion below.
std::string batch_report(const std::string& bytes) {
  spool::RecoverResult rr = spool::recover_spool_bytes(bytes);
  if (!rr.usable) return {};
  if (serve::recovery_degraded(rr.report)) salvage_trace(rr.trace);
  if (!validate_trace(rr.trace).empty()) return {};
  return serve::analysis_report_text(rr.trace);
}

u32 spool_num_workers(const std::string& bytes) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(
             static_cast<u8>(bytes[spool::kSpoolMagic.size() + i]))
         << (8 * i);
  return v;
}

std::vector<serve::wire::AckMsg> parse_acks(std::string_view out) {
  std::vector<serve::wire::AckMsg> acks;
  serve::wire::Decoder dec;
  dec.feed(out);
  serve::wire::Frame f;
  while (dec.next(&f) == serve::wire::Decoder::Result::Frame) {
    serve::wire::AckMsg a;
    std::string err;
    if (f.type == serve::wire::Type::Ack &&
        serve::wire::decode_ack(f.payload, &a, &err))
      acks.push_back(a);
  }
  return acks;
}

Token test_token(u64 salt) { return Token{0x1234567890abcdefull, salt}; }

// --- codec -----------------------------------------------------------------

TEST(WireCodecTest, RoundTripAllTypes) {
  using namespace serve::wire;
  const Token tok{0xdeadbeefcafef00dull, 0x0123456789abcdefull};

  HelloMsg h;
  std::string err;
  {
    const std::string bytes = encode_hello(tok, 41, "push-1");
    Decoder dec;
    dec.feed(bytes);
    Frame f;
    ASSERT_EQ(dec.next(&f), Decoder::Result::Frame);
    ASSERT_EQ(f.type, Type::Hello);
    ASSERT_TRUE(decode_hello(f.payload, &h, &err)) << err;
    EXPECT_EQ(h.proto, kProtoVersion);
    EXPECT_EQ(h.token, tok);
    EXPECT_EQ(h.resume_seq, 41u);
    EXPECT_EQ(h.name, "push-1");
  }
  {
    OfferMsg o;
    Decoder dec;
    dec.feed(encode_offer(8, 1));
    Frame f;
    ASSERT_EQ(dec.next(&f), Decoder::Result::Frame);
    ASSERT_TRUE(decode_offer(f.payload, &o, &err)) << err;
    EXPECT_EQ(o.num_workers, 8u);
  }
  {
    AckMsg a;
    Decoder dec;
    dec.feed(encode_ack(Status::Shed, 7, "overloaded"));
    Frame f;
    ASSERT_EQ(dec.next(&f), Decoder::Result::Frame);
    ASSERT_TRUE(decode_ack(f.payload, &a, &err)) << err;
    EXPECT_EQ(a.status, Status::Shed);
    EXPECT_EQ(a.acked_seq, 7u);
    EXPECT_EQ(a.message, "overloaded");
  }
  {
    const std::string spool_frame =
        spool::encode_frame(spool::FrameType::Dump, 0, 0, "diag");
    EpochMsg e;
    Decoder dec;
    dec.feed(encode_epoch(3, 1234, spool_frame));
    Frame f;
    ASSERT_EQ(dec.next(&f), Decoder::Result::Frame);
    EXPECT_EQ(f.seq, 3u);
    ASSERT_TRUE(decode_epoch(f.payload, &e, &err)) << err;
    EXPECT_EQ(e.spool_offset, 1234u);
    EXPECT_EQ(e.spool_frame, spool_frame);
  }
  {
    SealMsg s;
    Decoder dec;
    dec.feed(encode_seal(9, EndKind::Garbled, 555, 17));
    Frame f;
    ASSERT_EQ(dec.next(&f), Decoder::Result::Frame);
    ASSERT_TRUE(decode_seal(f.payload, &s, &err)) << err;
    EXPECT_EQ(s.end, EndKind::Garbled);
    EXPECT_EQ(s.end_offset, 555u);
    EXPECT_EQ(s.end_len, 17u);
  }
}

TEST(WireCodecTest, DecoderReassemblesSplitFeeds) {
  using namespace serve::wire;
  const std::string bytes = encode_offer(4, 2) + encode_bye(3);
  Decoder dec;
  Frame f;
  // Dribble one byte at a time: Need until each frame completes.
  size_t frames = 0;
  for (size_t i = 0; i < bytes.size(); ++i) {
    dec.feed(std::string_view(bytes.data() + i, 1));
    while (dec.next(&f) == Decoder::Result::Frame) ++frames;
  }
  EXPECT_EQ(frames, 2u);
  EXPECT_FALSE(dec.poisoned());
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(WireCodecTest, BitFlipPoisons) {
  using namespace serve::wire;
  std::string bytes = encode_offer(4, 1);
  bytes[bytes.size() - 1] ^= 0x10;  // damage the payload
  Decoder dec;
  dec.feed(bytes);
  Frame f;
  EXPECT_EQ(dec.next(&f), Decoder::Result::Poison);
  EXPECT_TRUE(dec.poisoned());
  EXPECT_NE(dec.error().find("checksum"), std::string::npos);
  // Poison is terminal: later clean frames never resurrect the stream.
  dec.feed(encode_bye(2));
  EXPECT_EQ(dec.next(&f), Decoder::Result::Poison);
}

TEST(WireCodecTest, BadMagicAndUnknownTypePoison) {
  using namespace serve::wire;
  {
    Decoder dec;
    dec.feed("XXXXjunkjunkjunkjunkjunkjunk");
    Frame f;
    EXPECT_EQ(dec.next(&f), Decoder::Result::Poison);
    EXPECT_NE(dec.error().find("magic"), std::string::npos);
  }
  {
    std::string bytes = encode_bye(1);
    bytes[4] = 'Z';  // unknown frame type
    Decoder dec;
    dec.feed(bytes);
    Frame f;
    EXPECT_EQ(dec.next(&f), Decoder::Result::Poison);
  }
}

TEST(WireCodecTest, HostileLengthRejectedBeforeAllocation) {
  using namespace serve::wire;
  std::string bytes = encode_bye(1);
  // Patch payload_len to 2^60: the decoder must poison at the header, not
  // allocate a buffer sized by a hostile field.
  const u64 huge = 1ull << 60;
  for (int i = 0; i < 8; ++i)
    bytes[9 + i] = static_cast<char>((huge >> (8 * i)) & 0xff);
  Decoder dec;
  dec.feed(bytes);
  Frame f;
  EXPECT_EQ(dec.next(&f), Decoder::Result::Poison);
  EXPECT_NE(dec.error().find("payload"), std::string::npos);
}

TEST(WireCodecTest, TokenHexStable) {
  const Token tok{0x0123456789abcdefull, 0xfedcba9876543210ull};
  EXPECT_EQ(tok.hex(), "0123456789abcdeffedcba9876543210");
  EXPECT_TRUE(Token{}.zero());
  EXPECT_FALSE(tok.zero());
}

TEST(WireCodecTest, StrictDecodersRejectMalformedPayloads) {
  using namespace serve::wire;
  std::string err;
  HelloMsg h;
  EXPECT_FALSE(decode_hello("short", &h, &err));
  OfferMsg o;
  EXPECT_FALSE(decode_offer("", &o, &err));
  EXPECT_FALSE(decode_offer(std::string(8, '\0'), &o, &err));  // trailing
  AckMsg a;
  std::string bad_status(9, '\0');
  bad_status[0] = '\xff';  // status byte out of range
  EXPECT_FALSE(decode_ack(bad_status, &a, &err));
  SealMsg s;
  EXPECT_FALSE(decode_seal("", &s, &err));
}

// --- socketless protocol state machine -------------------------------------

struct WireFixture {
  obs::Registry reg;
  serve::IngestOptions opts;
  std::unique_ptr<serve::IngestRegistry> registry;

  explicit WireFixture(serve::IngestOptions o = {}) : opts(o) {
    registry = std::make_unique<serve::IngestRegistry>(opts, &reg);
  }

  /// Pushes a whole spool byte stream through one socketless connection.
  void push_all(const std::string& bytes, const Token& tok,
                std::string* out) {
    serve::IngestConnection conn(registry.get(), nullptr);
    u64 now = kT0;
    ASSERT_TRUE(
        conn.on_bytes(serve::wire::encode_hello(tok, 0, "t"), out, now));
    ASSERT_TRUE(conn.on_bytes(
        serve::wire::encode_offer(spool_num_workers(bytes), 0), out, now));
    u32 seq = 1;
    for (const spool::FrameSpan& span : spool::scan_frames(bytes)) {
      ASSERT_TRUE(conn.on_bytes(
          serve::wire::encode_epoch(
              seq++, span.offset,
              std::string_view(bytes.data() + span.offset, span.size)),
          out, now));
      now += 1000;
    }
    ASSERT_TRUE(conn.on_bytes(
        serve::wire::encode_seal(seq, serve::wire::EndKind::Clean,
                                 bytes.size(), 0),
        out, now));
  }
};

TEST(IngestConnectionTest, CleanPushMatchesBatchRecovery) {
  WireFixture fx;
  const std::string bytes = make_spool_bytes(1);
  std::string out;
  fx.push_all(bytes, test_token(1), &out);

  const auto acks = parse_acks(out);
  ASSERT_FALSE(acks.empty());
  for (const auto& a : acks) EXPECT_EQ(a.status, serve::wire::Status::Ok);
  EXPECT_EQ(acks.back().message, "sealed");

  auto stream = fx.registry->find(test_token(1));
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->state(), serve::IngestState::Sealed);
  EXPECT_TRUE(stream->usable());
  const std::string batch = batch_report(bytes);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(stream->report_text(), batch);
}

TEST(IngestConnectionTest, DuplicateEpochsDedupedOnSeq) {
  WireFixture fx;
  const std::string bytes = make_spool_bytes(2);
  const auto frames = spool::scan_frames(bytes);
  ASSERT_GE(frames.size(), 3u);

  serve::IngestConnection conn(fx.registry.get(), nullptr);
  std::string out;
  ASSERT_TRUE(conn.on_bytes(serve::wire::encode_hello(test_token(2), 0, "d"),
                            &out, kT0));
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_offer(spool_num_workers(bytes), 0), &out, kT0));

  const auto epoch = [&](u32 seq, size_t i) {
    return serve::wire::encode_epoch(
        seq, frames[i].offset,
        std::string_view(bytes.data() + frames[i].offset, frames[i].size));
  };
  out.clear();
  ASSERT_TRUE(conn.on_bytes(epoch(1, 0), &out, kT0));
  ASSERT_TRUE(conn.on_bytes(epoch(1, 0), &out, kT0));  // retransmit
  ASSERT_TRUE(conn.on_bytes(epoch(2, 1), &out, kT0));
  const auto acks = parse_acks(out);
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(acks[0].acked_seq, 1u);
  EXPECT_EQ(acks[1].message, "duplicate");
  EXPECT_EQ(acks[1].acked_seq, 1u);
  EXPECT_EQ(acks[2].acked_seq, 2u);

  // A seq gap is a client bug, not damage: session error, connection
  // closes, the stream survives with its acked state intact.
  out.clear();
  EXPECT_FALSE(conn.on_bytes(epoch(9, 2), &out, kT0));
  const auto gap_acks = parse_acks(out);
  ASSERT_EQ(gap_acks.size(), 1u);
  EXPECT_EQ(gap_acks[0].status, serve::wire::Status::SessionErr);
  auto stream = fx.registry->find(test_token(2));
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->acked_seq(), 2u);
  EXPECT_FALSE(stream->finalized());
}

TEST(IngestConnectionTest, EpochBeforeOfferIsBadProto) {
  WireFixture fx;
  serve::IngestConnection conn(fx.registry.get(), nullptr);
  std::string out;
  ASSERT_TRUE(conn.on_bytes(serve::wire::encode_hello(test_token(3), 0, "x"),
                            &out, kT0));
  const std::string frame =
      spool::encode_frame(spool::FrameType::Dump, 0, 0, "d");
  out.clear();
  EXPECT_FALSE(conn.on_bytes(serve::wire::encode_epoch(1, 13, frame), &out,
                             kT0));
  const auto acks = parse_acks(out);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].status, serve::wire::Status::BadProto);
}

TEST(IngestConnectionTest, PoisonedWireKillsConnectionNotSession) {
  WireFixture fx;
  const std::string bytes = make_spool_bytes(4);
  const auto frames = spool::scan_frames(bytes);

  serve::IngestConnection conn(fx.registry.get(), nullptr);
  std::string out;
  ASSERT_TRUE(conn.on_bytes(serve::wire::encode_hello(test_token(4), 0, "p"),
                            &out, kT0));
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_offer(spool_num_workers(bytes), 0), &out, kT0));
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_epoch(
          1, frames[0].offset,
          std::string_view(bytes.data() + frames[0].offset,
                           frames[0].size)),
      &out, kT0));

  // Bit-flip the next wire frame: BadProto ACK, connection closes.
  std::string damaged = serve::wire::encode_epoch(
      2, frames[1].offset,
      std::string_view(bytes.data() + frames[1].offset, frames[1].size));
  damaged[damaged.size() / 2] ^= 0x4;
  out.clear();
  EXPECT_FALSE(conn.on_bytes(damaged, &out, kT0));
  const auto acks = parse_acks(out);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].status, serve::wire::Status::BadProto);

  // The session survived: a new connection resumes at acked=1 and finishes.
  auto stream = fx.registry->find(test_token(4));
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->acked_seq(), 1u);

  serve::IngestConnection conn2(fx.registry.get(), nullptr);
  std::string out2;
  ASSERT_TRUE(conn2.on_bytes(
      serve::wire::encode_hello(test_token(4), 1, "p"), &out2, kT0));
  const auto hello_acks = parse_acks(out2);
  ASSERT_EQ(hello_acks.size(), 1u);
  EXPECT_EQ(hello_acks[0].message, "resumed");
  EXPECT_EQ(hello_acks[0].acked_seq, 1u);
  u32 seq = 2;
  for (size_t i = 1; i < frames.size(); ++i) {
    ASSERT_TRUE(conn2.on_bytes(
        serve::wire::encode_epoch(
            seq++, frames[i].offset,
            std::string_view(bytes.data() + frames[i].offset,
                             frames[i].size)),
        &out2, kT0));
  }
  ASSERT_TRUE(conn2.on_bytes(
      serve::wire::encode_seal(seq, serve::wire::EndKind::Clean,
                               bytes.size(), 0),
      &out2, kT0));
  EXPECT_EQ(stream->state(), serve::IngestState::Sealed);
  EXPECT_EQ(stream->report_text(), batch_report(bytes));
}

TEST(IngestConnectionTest, NewerConnectionSupersedesZombie) {
  WireFixture fx;
  const std::string bytes = make_spool_bytes(5);
  const auto frames = spool::scan_frames(bytes);

  serve::IngestConnection zombie(fx.registry.get(), nullptr);
  std::string out;
  ASSERT_TRUE(zombie.on_bytes(
      serve::wire::encode_hello(test_token(5), 0, "z"), &out, kT0));
  ASSERT_TRUE(zombie.on_bytes(
      serve::wire::encode_offer(spool_num_workers(bytes), 0), &out, kT0));

  // A second connection HELLOs the same token: it adopts the stream.
  serve::IngestConnection fresh(fx.registry.get(), nullptr);
  std::string out2;
  ASSERT_TRUE(fresh.on_bytes(
      serve::wire::encode_hello(test_token(5), 0, "z"), &out2, kT0));

  // The zombie's next epoch must stand down without touching the stream.
  out.clear();
  EXPECT_FALSE(zombie.on_bytes(
      serve::wire::encode_epoch(
          1, frames[0].offset,
          std::string_view(bytes.data() + frames[0].offset,
                           frames[0].size)),
      &out, kT0));
  EXPECT_NE(zombie.close_reason().find("superseded"), std::string::npos);
  auto stream = fx.registry->find(test_token(5));
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->acked_seq(), 0u);
}

TEST(IngestConnectionTest, SessionCapShedsNewTokensOnly) {
  serve::IngestOptions opts;
  opts.max_sessions = 1;
  WireFixture fx(opts);

  serve::IngestConnection first(fx.registry.get(), nullptr);
  std::string out;
  ASSERT_TRUE(first.on_bytes(
      serve::wire::encode_hello(test_token(6), 0, "a"), &out, kT0));

  // A second brand-new token is shed at the cap...
  serve::IngestConnection second(fx.registry.get(), nullptr);
  std::string out2;
  EXPECT_FALSE(second.on_bytes(
      serve::wire::encode_hello(test_token(7), 0, "b"), &out2, kT0));
  const auto acks = parse_acks(out2);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].status, serve::wire::Status::Shed);

  // ...but a resume of the accepted token is always admitted.
  serve::IngestConnection resume(fx.registry.get(), nullptr);
  std::string out3;
  EXPECT_TRUE(resume.on_bytes(
      serve::wire::encode_hello(test_token(6), 0, "a"), &out3, kT0));
  EXPECT_EQ(parse_acks(out3)[0].status, serve::wire::Status::Ok);
}

TEST(IngestConnectionTest, DegradeLadderShedsOffersOfEmptyStreamsOnly) {
  WireFixture fx;
  bool admit = true;
  const auto gate = [&admit] { return admit; };
  const std::string bytes = make_spool_bytes(8);
  const auto frames = spool::scan_frames(bytes);

  // Accepted while Normal: HELLO + OFFER + one epoch.
  serve::IngestConnection conn(fx.registry.get(), gate);
  std::string out;
  ASSERT_TRUE(conn.on_bytes(serve::wire::encode_hello(test_token(8), 0, "g"),
                            &out, kT0));
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_offer(spool_num_workers(bytes), 0), &out, kT0));
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_epoch(
          1, frames[0].offset,
          std::string_view(bytes.data() + frames[0].offset,
                           frames[0].size)),
      &out, kT0));

  // Degraded: a brand-new stream's OFFER is shed before any tailer pauses.
  admit = false;
  serve::IngestConnection fresh(fx.registry.get(), gate);
  std::string out2;
  ASSERT_TRUE(fresh.on_bytes(
      serve::wire::encode_hello(test_token(9), 0, "n"), &out2, kT0));
  out2.clear();
  EXPECT_FALSE(fresh.on_bytes(serve::wire::encode_offer(4, 0), &out2, kT0));
  EXPECT_EQ(parse_acks(out2)[0].status, serve::wire::Status::Shed);

  // But the stream that already holds data resumes through the same gate:
  // an accepted session is never abandoned by admission.
  serve::IngestConnection resume(fx.registry.get(), gate);
  std::string out3;
  ASSERT_TRUE(resume.on_bytes(
      serve::wire::encode_hello(test_token(8), 1, "g"), &out3, kT0));
  out3.clear();
  EXPECT_TRUE(resume.on_bytes(
      serve::wire::encode_offer(spool_num_workers(bytes), 0), &out3, kT0));
  EXPECT_EQ(parse_acks(out3)[0].status, serve::wire::Status::Ok);
}

TEST(IngestConnectionTest, WireBufferCapDisconnectsResumably) {
  serve::IngestOptions opts;
  opts.max_wire_buffer_bytes = 4096;
  WireFixture fx(opts);

  serve::IngestConnection conn(fx.registry.get(), nullptr);
  std::string out;
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_hello(test_token(10), 0, "cap"), &out, kT0));

  // One giant epoch frame fed without its tail: the decoder buffers, the
  // cap trips, the connection dies with a structured, resumable error.
  const std::string big = serve::wire::encode_epoch(
      1, 13, std::string(64 * 1024, 'x'));
  bool closed = false;
  out.clear();
  for (size_t off = 0; off + 512 < big.size(); off += 512) {
    if (!conn.on_bytes(std::string_view(big.data() + off, 512), &out,
                       kT0)) {
      closed = true;
      break;
    }
  }
  ASSERT_TRUE(closed);
  EXPECT_NE(conn.close_reason().find("wire buffer cap"), std::string::npos);
  const auto acks = parse_acks(out);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].status, serve::wire::Status::SessionErr);
  EXPECT_NE(fx.registry->find(test_token(10)), nullptr);
}

TEST(IngestConnectionTest, ReadTimeoutAnswersStructuredAck) {
  WireFixture fx;
  serve::IngestConnection conn(fx.registry.get(), nullptr);
  std::string out;
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_hello(test_token(11), 0, "slow"), &out, kT0));
  out.clear();
  conn.on_timeout(&out);
  EXPECT_FALSE(conn.open());
  const auto acks = parse_acks(out);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0].status, serve::wire::Status::SessionErr);
  EXPECT_EQ(acks[0].message, "read timeout");
  // Resumable: the stream is still in the table.
  EXPECT_NE(fx.registry->find(test_token(11)), nullptr);
}

TEST(IngestRegistryTest, SweepFinalizesStaleAndEvictsIdle) {
  serve::IngestOptions opts;
  opts.stale_after_ns = 1000;
  opts.evict_after_ns = 5000;
  WireFixture fx(opts);

  const std::string bytes = make_spool_bytes(12);
  const auto frames = spool::scan_frames(bytes);
  serve::IngestConnection conn(fx.registry.get(), nullptr);
  std::string out;
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_hello(test_token(12), 0, "st"), &out, kT0));
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_offer(spool_num_workers(bytes), 0), &out, kT0));
  ASSERT_TRUE(conn.on_bytes(
      serve::wire::encode_epoch(
          1, frames[0].offset,
          std::string_view(bytes.data() + frames[0].offset,
                           frames[0].size)),
      &out, kT0));

  auto stream = fx.registry->find(test_token(12));
  ASSERT_NE(stream, nullptr);
  EXPECT_FALSE(stream->finalized());

  // No traffic past stale_after_ns: the sweep finalizes with what arrived.
  fx.registry->sweep(kT0 + 2000);
  EXPECT_TRUE(stream->finalized());
  EXPECT_EQ(fx.registry->stream_count(), 1u);

  // Unqueried past evict_after_ns: evicted.
  fx.registry->sweep(kT0 + 2000 + 6000);
  EXPECT_EQ(fx.registry->stream_count(), 0u);
}

TEST(IngestRegistryTest, FindByKeyResolvesIdNameAndTokenPrefix) {
  WireFixture fx;
  const u64 now = kT0;
  auto h = fx.registry->hello(test_token(13), "alpha", now);
  ASSERT_NE(h.stream, nullptr);
  EXPECT_TRUE(h.created);

  EXPECT_EQ(fx.registry->find_by_key(std::to_string(h.stream->id())),
            h.stream);
  EXPECT_EQ(fx.registry->find_by_key("alpha"), h.stream);
  EXPECT_EQ(fx.registry->find_by_key(h.stream->token().hex().substr(0, 12)),
            h.stream);
  EXPECT_EQ(fx.registry->find_by_key("nope"), nullptr);
  EXPECT_EQ(fx.registry->find_by_key("abc"), nullptr);  // prefix too short
}

// --- live sockets: client, faults, resume ----------------------------------

struct LiveServer {
  obs::Registry reg;
  serve::IngestOptions opts;
  std::unique_ptr<serve::IngestRegistry> registry;
  std::unique_ptr<serve::IngestListener> listener;
  std::string socket_path = temp_path("sock");

  explicit LiveServer(serve::IngestOptions o = {}) : opts(o) {
    registry = std::make_unique<serve::IngestRegistry>(opts, &reg);
    listener = std::make_unique<serve::IngestListener>(
        socket_path, registry.get(), nullptr,
        [] { return obs::mono_ns(); });
    std::string err;
    if (!listener->start(&err)) ADD_FAILURE() << err;
  }
  ~LiveServer() {
    if (listener) listener->stop();
    ::unlink(socket_path.c_str());
  }
};

serve::WireClientOptions client_opts(const std::string& socket, u64 seed) {
  serve::WireClientOptions o;
  o.socket_path = socket;
  o.name = "test-client";
  o.seed = seed;
  o.backoff_initial_ns = 1'000'000;  // tests retry fast
  o.backoff_max_ns = 50'000'000;
  return o;
}

TEST(WireClientTest, CleanPushOverSocketMatchesBatch) {
  LiveServer srv;
  const std::string bytes = make_spool_bytes(20);

  serve::WireClient client(client_opts(srv.socket_path, 20));
  std::string err;
  ASSERT_TRUE(client.push_bytes(bytes, &err)) << err;
  EXPECT_TRUE(client.sealed());
  client.bye();

  auto stream = srv.registry->find(client.token());
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->state(), serve::IngestState::Sealed);
  EXPECT_EQ(stream->report_text(), batch_report(bytes));
  EXPECT_EQ(stream->acked_seq(), client.acked_seq());
}

TEST(WireClientTest, DamagedSourceSpoolSealsWithBatchIdenticalTail) {
  LiveServer srv;
  // Torn tail: a spool whose writer died mid-frame. The wire push must
  // carry the same diagnostics batch recovery derives from the file.
  std::string bytes = make_spool_bytes(21);
  const auto frames = spool::scan_frames(bytes);
  bytes.resize(frames.back().offset + 7);  // mid-header tear

  serve::WireClient client(client_opts(srv.socket_path, 21));
  std::string err;
  ASSERT_TRUE(client.push_bytes(bytes, &err)) << err;

  auto stream = srv.registry->find(client.token());
  ASSERT_NE(stream, nullptr);
  const std::string batch = batch_report(bytes);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(stream->report_text(), batch);
}

struct FaultCase {
  const char* name;
  fault::WireFaultPlan plan;
};

std::vector<FaultCase> fault_matrix() {
  using Kind = fault::WireFaultPlan::Kind;
  std::vector<FaultCase> cases;
  const auto add = [&cases](const char* name, Kind kind, u32 seq,
                            u32 repeat) {
    FaultCase c;
    c.name = name;
    c.plan.kind = kind;
    c.plan.target_seq = seq;
    c.plan.repeat = repeat;
    c.plan.seed = 7;
    c.plan.stall_ns = 30'000'000;  // keep slowloris cases fast
    cases.push_back(c);
  };
  add("reset", Kind::ResetAtFrame, 2, 1);
  add("reset-repeat", Kind::ResetAtFrame, 3, 3);
  add("mid-frame-reset", Kind::ResetMidFrame, 2, 2);
  add("partial-write", Kind::PartialWrite, 1, 4);
  add("duplicate", Kind::DuplicateFrame, 2, 2);
  add("bit-flip", Kind::BitFlip, 2, 2);
  add("slowloris", Kind::Slowloris, 2, 1);
  add("garbage", Kind::GarbagePreamble, 1, 2);
  return cases;
}

TEST(WireClientTest, ClientSideFaultMatrixRecoversWithParity) {
  const std::string bytes = make_spool_bytes(22);
  const std::string batch = batch_report(bytes);
  ASSERT_FALSE(batch.empty());

  u64 seed = 100;
  for (const FaultCase& fc : fault_matrix()) {
    LiveServer srv;
    serve::WireClientOptions opts = client_opts(srv.socket_path, ++seed);
    opts.fault = &fc.plan;
    serve::WireClient client(opts);
    std::string err;
    ASSERT_TRUE(client.push_bytes(bytes, &err)) << fc.name << ": " << err;
    EXPECT_GE(client.faults_injected(), 1u) << fc.name;

    auto stream = srv.registry->find(client.token());
    ASSERT_NE(stream, nullptr) << fc.name;
    EXPECT_EQ(stream->state(), serve::IngestState::Sealed) << fc.name;
    EXPECT_EQ(stream->report_text(), batch) << fc.name;
  }
}

TEST(WireClientTest, ProxyInjectedFaultMatrixRecoversWithParity) {
  const std::string bytes = make_spool_bytes(23);
  const std::string batch = batch_report(bytes);
  ASSERT_FALSE(batch.empty());

  u64 seed = 200;
  for (const FaultCase& fc : fault_matrix()) {
    LiveServer srv;
    fault::WireFaultProxy proxy(temp_path("proxy"), srv.socket_path,
                                fc.plan);
    std::string err;
    ASSERT_TRUE(proxy.start(&err)) << fc.name << ": " << err;

    serve::WireClient client(client_opts(proxy.listen_path(), ++seed));
    ASSERT_TRUE(client.push_bytes(bytes, &err)) << fc.name << ": " << err;
    EXPECT_GE(proxy.injections(), 1u) << fc.name;

    auto stream = srv.registry->find(client.token());
    ASSERT_NE(stream, nullptr) << fc.name;
    EXPECT_EQ(stream->state(), serve::IngestState::Sealed) << fc.name;
    EXPECT_EQ(stream->report_text(), batch) << fc.name;
    proxy.stop();
  }
}

TEST(WireChaosTest, KilledClientResumesFromAnotherProcess) {
  LiveServer srv;
  const std::string bytes = make_spool_bytes(24, /*grains=*/400);
  const auto frames = spool::scan_frames(bytes);
  ASSERT_GE(frames.size(), 8u);
  constexpr u64 kSeed = 77;  // both processes derive the same token

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: push roughly half the stream, then die without SEAL or BYE —
    // the wire equivalent of SIGKILLing a spooling writer.
    serve::WireClient child(client_opts(srv.socket_path, kSeed));
    std::string err;
    if (!child.begin(spool_num_workers(bytes), &err)) ::_exit(10);
    for (size_t i = 0; i < frames.size() / 2; ++i) {
      if (!child.send_frame(
              std::string_view(bytes.data() + frames[i].offset,
                               frames[i].size),
              frames[i].offset, &err))
        ::_exit(11);
    }
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // Same seed, new process: the server's acked state is ahead of this
  // client's, so the push dedupes the already-applied prefix and finishes.
  serve::WireClient resumed(client_opts(srv.socket_path, kSeed));
  std::string err;
  ASSERT_TRUE(resumed.push_bytes(bytes, &err)) << err;

  auto stream = srv.registry->find(resumed.token());
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->state(), serve::IngestState::Sealed);
  EXPECT_EQ(stream->report_text(), batch_report(bytes));
}

TEST(WireChaosTest, DaemonKillAndRestartMidIngest) {
  // Satellite: kill ggserved mid-ingest, restart it on the same socket;
  // the client reconnects on its token, detects the lost session, re-pushes
  // from source, and the final report is byte-identical to batch recovery.
  const std::string bytes = make_spool_bytes(25, /*grains=*/1500);
  const std::string socket_path = temp_path("restart");
  constexpr u64 kSeed = 88;

  obs::Registry reg1;
  auto registry1 =
      std::make_unique<serve::IngestRegistry>(serve::IngestOptions{}, &reg1);
  auto listener1 = std::make_unique<serve::IngestListener>(
      socket_path, registry1.get(), nullptr, [] { return obs::mono_ns(); });
  std::string err;
  ASSERT_TRUE(listener1->start(&err)) << err;

  serve::WireClientOptions copts = client_opts(socket_path, kSeed);
  copts.max_attempts = 200;  // the daemon is down for a stretch mid-push
  // Throttle the push (slowloris on every epoch) so the kill below lands
  // while the stream is demonstrably mid-flight, not after it sealed.
  fault::WireFaultPlan throttle;
  throttle.kind = fault::WireFaultPlan::Kind::Slowloris;
  throttle.target_seq = 0;  // every epoch
  throttle.repeat = 1000;
  throttle.stall_ns = 2'000'000;  // 2ms per epoch
  throttle.seed = kSeed;
  copts.fault = &throttle;
  std::string push_err;
  bool push_ok = false;
  std::thread pusher([&] {
    serve::WireClient client(copts);
    push_ok = client.push_bytes(bytes, &push_err);
    client.bye();
  });

  // Wait until the first daemon has durably acked a few epochs (the push
  // is provably mid-stream), then kill it, hold it down briefly, and
  // restart with a fresh (empty) registry on the same socket path.
  const auto token = serve::WireClient(copts).token();
  for (int i = 0; i < 2000; ++i) {
    auto live = registry1->find(token);
    if (live != nullptr && live->acked_seq() >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  {
    auto live = registry1->find(token);
    ASSERT_NE(live, nullptr);
    ASSERT_GE(live->acked_seq(), 2u);
    ASSERT_EQ(live->state(), serve::IngestState::Open);
  }
  listener1->stop();
  listener1.reset();
  registry1.reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  obs::Registry reg2;
  serve::IngestRegistry registry2(serve::IngestOptions{}, &reg2);
  serve::IngestListener listener2(socket_path, &registry2, nullptr,
                                  [] { return obs::mono_ns(); });
  ASSERT_TRUE(listener2.start(&err)) << err;

  pusher.join();
  ASSERT_TRUE(push_ok) << push_err;

  // The stream must have landed complete in the restarted daemon.
  serve::WireClient probe(client_opts(socket_path, kSeed));
  auto stream = registry2.find(probe.token());
  ASSERT_NE(stream, nullptr);
  EXPECT_EQ(stream->state(), serve::IngestState::Sealed);
  const std::string batch = batch_report(bytes);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(stream->report_text(), batch);
  listener2.stop();
  ::unlink(socket_path.c_str());
}

// --- Server integration: ingest socket + query surface ---------------------

TEST(ServerWireTest, IngestStreamsAnswerTheQuerySurface) {
  serve::ServerOptions opts;
  opts.ingest_socket_path = temp_path("srvingest");
  opts.socket_path = temp_path("srvquery");
  serve::Server server(opts);
  std::thread runner([&server] { server.run(); });

  const std::string bytes = make_spool_bytes(30);
  serve::WireClient client(client_opts(opts.ingest_socket_path, 30));
  std::string err;
  ASSERT_TRUE(client.push_bytes(bytes, &err)) << err;
  client.bye();

  // The wire stream shows up beside tailed sessions on every query verb.
  const std::string sessions = server.query("SESSIONS");
  EXPECT_NE(sessions.find("ingest"), std::string::npos) << sessions;
  EXPECT_NE(sessions.find("test-client"), std::string::npos);

  const std::string status = server.query("STATUS");
  EXPECT_NE(status.find("ingest_streams=1"), std::string::npos) << status;

  const std::string summary = server.query("SUMMARY test-client");
  EXPECT_EQ(summary.find("ERR"), std::string::npos) << summary;

  const std::string report = server.query("REPORT test-client");
  EXPECT_EQ(report, batch_report(bytes));

  // ggstat --connect against the live query socket sees the same report.
  std::string response;
  ASSERT_TRUE(serve::endpoint_request_retry(
      opts.socket_path, "REPORT test-client", 20, 1'000'000, 50'000'000,
      &response, &err))
      << err;
  EXPECT_EQ(response, report);

  server.stop();
  runner.join();
}

// --- endpoint satellites ----------------------------------------------------

TEST(EndpointHardeningTest, ClientDisconnectMidReportDoesNotKillServer) {
  // Regression: the response writer must use MSG_NOSIGNAL — a client that
  // disconnects mid-REPORT used to SIGPIPE the whole daemon.
  const std::string path = temp_path("sigpipe");
  serve::Endpoint ep(path, [](const std::string&) {
    return std::string(8 << 20, 'r');  // a response far beyond any buffer
  });
  std::string err;
  ASSERT_TRUE(ep.start(&err)) << err;

  for (int i = 0; i < 3; ++i) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof addr),
              0);
    ASSERT_GT(::send(fd, "REPORT x\n", 9, MSG_NOSIGNAL), 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ::close(fd);  // disconnect while the server is mid-write
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Still alive and serving (the process would be dead on SIGPIPE).
  std::string response;
  ASSERT_TRUE(serve::endpoint_request(path, "PING", &response, &err)) << err;
  ep.stop();
}

TEST(EndpointHardeningTest, SlowlorisGetsStructuredTimeout) {
  const std::string path = temp_path("slow");
  serve::Endpoint ep(path, [](const std::string&) { return "OK\n"; },
                     /*read_deadline_ns=*/100'000'000);
  std::string err;
  ASSERT_TRUE(ep.start(&err)) << err;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);
  // Trickle a request that never completes its line.
  ASSERT_GT(::send(fd, "STAT", 4, MSG_NOSIGNAL), 0);
  std::string response;
  char buf[256];
  while (true) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(response, "ERR timeout\n");
  ep.stop();
}

TEST(EndpointHardeningTest, RequestRetryRidesOutSlowDaemonStartup) {
  const std::string path = temp_path("retry");
  std::thread late_server([&path] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    serve::Endpoint ep(path, [](const std::string&) { return "PONG\n"; });
    std::string err;
    if (!ep.start(&err)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    ep.stop();
  });

  // Immediate single-shot fails (nothing is listening yet)...
  std::string response, err;
  EXPECT_FALSE(serve::endpoint_request(path, "PING", &response, &err));
  // ...but the retry client rides out the startup race.
  EXPECT_TRUE(serve::endpoint_request_retry(path, "PING", 50, 5'000'000,
                                            50'000'000, &response, &err))
      << err;
  EXPECT_EQ(response, "PONG\n");
  late_server.join();
}

// --- recorder network sink: the spool frame tap ----------------------------

TEST(FrameTapTest, TapMirrorsExactlyTheWrittenStream) {
  // The recorder-side half of "spool straight to a daemon": every frame
  // the sink emits reaches the tap with its stream offset, so a WireClient
  // wired to the tap pushes a byte-exact mirror of the file.
  const std::string path = temp_path("tap.ggspool");
  std::vector<std::pair<u64, std::string>> tapped;

  spool::SpoolOptions opts;
  opts.path = path;
  opts.crash_handlers = false;
  opts.frame_tap = [&tapped](std::string_view frame, u64 offset) {
    tapped.emplace_back(offset, std::string(frame));
  };

  TraceMeta meta;
  meta.num_workers = 2;
  std::string err;
  auto sink = spool::SpoolSink::open(opts, meta, 2, &err);
  ASSERT_NE(sink, nullptr) << err;
  sink->append_dump("supervisor note");
  sink->finish(meta);

  std::string file_bytes;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    file_bytes = ss.str();
  }
  ::unlink(path.c_str());

  const auto frames = spool::scan_frames(file_bytes);
  ASSERT_EQ(tapped.size(), frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(tapped[i].first, frames[i].offset);
    EXPECT_EQ(tapped[i].second,
              file_bytes.substr(frames[i].offset, frames[i].size));
  }
}

}  // namespace
}  // namespace gg
