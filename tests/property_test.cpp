// Property-based sweeps: randomized task/loop programs run through both
// engines under many configurations, checking the invariants the system
// guarantees rather than specific values.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "analysis/report.hpp"
#include "common/prng.hpp"
#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/capture.hpp"
#include "support/test_support.hpp"
#include "sim/des.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

using front::Ctx;
using front::ForOpts;

/// Builds a random but deterministic program: a task tree with mixed
/// fan-outs, taskwait placements, compute costs, and (optionally) a
/// parallel loop at the root.
// Grows one random subtree. A free function (not a capturing closure): tasks
// left unjoined outlive their spawning frame, so child bodies must not
// reference any enclosing stack state.
void grow_random(Ctx& c, int depth, u64 h) {
  c.compute(100 + mix64(h) % 100000);
  if (depth >= 5) return;
  const int kids = static_cast<int>(mix64(h ^ 0x51) % 4);
  const bool wait_mid = mix64(h ^ 0xabcd) % 2 == 0;
  for (int k = 0; k < kids; ++k) {
    const u64 child_h = mix64(h * 31 + static_cast<u64>(k) + 1);
    c.spawn(GG_SRC,
            [depth, child_h](Ctx& g) { grow_random(g, depth + 1, child_h); });
    if (wait_mid && k == 0 && kids > 1) c.taskwait();
  }
  if (mix64(h ^ 0x77) % 4 != 0) c.taskwait();  // sometimes leave unjoined
  c.compute(mix64(h ^ 0x99) % 5000);
}

front::TaskFn random_program(u64 seed) {
  // All randomness is keyed by (seed, tree path), never by execution order:
  // the program must be deterministic under ANY schedule, or the threaded
  // and simulated runs would legitimately diverge.
  return [seed](Ctx& ctx) {
    grow_random(ctx, 0, mix64(seed));
    if (mix64(seed ^ 0x5) % 2 == 0) {
      ForOpts fo;
      const u64 pick = mix64(seed ^ 0x6) % 3;
      fo.sched = pick == 0 ? ScheduleKind::Static
                 : pick == 1 ? ScheduleKind::Dynamic
                             : ScheduleKind::Guided;
      fo.chunk = mix64(seed ^ 0x7) % 7;
      const u64 iters = 10 + mix64(seed ^ 0x8) % 200;
      ctx.parallel_for(GG_SRC, 0, iters, fo, [seed](u64 i, Ctx& c) {
        c.compute(1000 + mix64(seed * 131 + i) % 50000);
      });
    }
  };
}

class RandomProgramTest : public ::testing::TestWithParam<u64> {};

TEST_P(RandomProgramTest, SimInvariantsHoldAcrossConfigurations) {
  const u64 seed = GetParam();
  const sim::Program prog =
      sim::capture_program("random", random_program(seed));
  const Cycles total_compute = prog.total_compute();

  for (auto pol : {sim::SimPolicy::mir(), sim::SimPolicy::gcc(),
                   sim::SimPolicy::icc(), sim::SimPolicy::mir_central()}) {
    for (int cores : {1, 3, 48}) {
      sim::SimOptions o;
      o.policy = pol;
      o.num_cores = cores;
      o.memory_model = false;
      const Trace t = sim::simulate(prog, o);
      // 1. The trace is structurally valid.
      const auto errs = validate_trace(t);
      ASSERT_TRUE(errs.empty())
          << "seed " << seed << " " << pol.name << "/" << cores << ": "
          << errs.front();
      // 2. The graph is a valid DAG with the paper's constraints.
      const GrainGraph g = GrainGraph::build(t);
      ASSERT_TRUE(validate_graph(g).empty()) << "seed " << seed;
      // 3. Work conservation: makespan covers the annotated compute.
      const TimeNs compute_ns = o.topology.cycles_to_ns(total_compute);
      EXPECT_GE(t.makespan() * static_cast<u64>(cores) + cores,
                compute_ns)
          << "seed " << seed;
      // 4. Metrics invariants.
      const GrainTable grains = GrainTable::build(t);
      const MetricsResult m =
          compute_metrics(t, g, grains, o.topology, MetricOptions{});
      EXPECT_LE(m.critical_path_time, t.makespan() + 1) << "seed " << seed;
      for (size_t i = 0; i < m.per_grain.size(); ++i) {
        EXPECT_LE(m.per_grain[i].inst_parallelism,
                  m.per_grain[i].inst_parallelism_optimistic);
        EXPECT_GE(m.per_grain[i].scatter, 0.0);
      }
      // 5. Grain exec time equals the sum of its fragments.
      for (const Grain& grain : grains.grains()) {
        if (grain.kind != GrainKind::Task) continue;
        TimeNs sum = 0;
        for (const FragmentRec* f : t.fragments_of(grain.task))
          sum += f->end - f->start;
        EXPECT_EQ(sum, grain.exec_time);
      }
    }
  }
}

TEST_P(RandomProgramTest, WorkDeviationIsOneWithoutMemoryModel) {
  const u64 seed = GetParam();
  const sim::Program prog =
      sim::capture_program("random", random_program(seed));
  sim::SimOptions o1;
  o1.num_cores = 1;
  o1.memory_model = false;
  sim::SimOptions oN;
  oN.num_cores = 17;
  oN.memory_model = false;
  const GrainTable base = GrainTable::build(sim::simulate(prog, o1));
  const Trace tN = sim::simulate(prog, oN);
  const GrainTable gN = GrainTable::build(tN);
  for (const Grain& g : gN.grains()) {
    if (g.kind != GrainKind::Task) continue;  // chunk splits differ by team
    const double dev = work_deviation(g, base);
    ASSERT_FALSE(std::isnan(dev)) << g.path;
    EXPECT_NEAR(dev, 1.0, 1e-9) << g.path;
  }
}

TEST_P(RandomProgramTest, ThreadedEngineAgreesStructurally) {
  const u64 seed = GetParam();
  rts::Options o;
  o.num_workers = 3;
  rts::ThreadedEngine eng(o);
  const Trace real = eng.run("random", random_program(seed));
  const auto errs = validate_trace(real);
  ASSERT_TRUE(errs.empty()) << "seed " << seed << ": " << errs.front();
  EXPECT_TRUE(validate_graph(GrainGraph::build(real)).empty());

  const sim::Program prog =
      sim::capture_program("random", random_program(seed));
  sim::SimOptions so;
  so.num_cores = 8;
  const Trace simulated = sim::simulate(prog, so);
  // Task-grain ids agree between the real and simulated executions (chunk
  // ids depend on the profiled thread count, §3.1, so compare tasks only).
  auto task_paths = [](const Trace& t) {
    std::set<std::string> out;
    const GrainTable table = GrainTable::build(t);
    for (const Grain& g : table.grains()) {
      if (g.kind == GrainKind::Task) out.insert(g.path);
    }
    return out;
  };
  EXPECT_EQ(task_paths(real), task_paths(simulated)) << "seed " << seed;
}

TEST_P(RandomProgramTest, SimulationIsDeterministic) {
  const u64 seed = GetParam();
  const sim::Program prog =
      sim::capture_program("random", random_program(seed));
  sim::SimOptions o;
  o.num_cores = 29;
  const Trace a = sim::simulate(prog, o);
  const Trace b = sim::simulate(prog, o);
  EXPECT_EQ(a.makespan(), b.makespan());
  ASSERT_EQ(a.fragments.size(), b.fragments.size());
  for (size_t i = 0; i < a.fragments.size(); ++i) {
    EXPECT_EQ(a.fragments[i].start, b.fragments[i].start);
    EXPECT_EQ(a.fragments[i].core, b.fragments[i].core);
  }
}

// Seeds derive from the shared base seed, so GG_TEST_SEED shifts the whole
// sweep (see tests/support/test_support.hpp for the replay workflow).
INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::ValuesIn(test::param_seeds(12)));

}  // namespace
}  // namespace gg
