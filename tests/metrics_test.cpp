#include <gtest/gtest.h>

#include <cmath>

#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

using front::Ctx;
using front::ForOpts;
using front::PagePlacement;

struct SimRun {
  Trace trace;
  GrainGraph graph;
  GrainTable grains;
};

SimRun run_sim(const sim::Program& p, int cores, bool memory = false,
            sim::SimPolicy pol = sim::SimPolicy::mir()) {
  sim::SimOptions o;
  o.num_cores = cores;
  o.policy = pol;
  o.memory_model = memory;
  Trace t = sim::simulate(p, o);
  GrainGraph g = GrainGraph::build(t);
  GrainTable gt = GrainTable::build(t);
  return SimRun{std::move(t), std::move(g), std::move(gt)};
}

MetricsResult metrics_of(const SimRun& r, const GrainTable* baseline = nullptr,
                         MetricOptions opts = {}) {
  return compute_metrics(r.trace, r.graph, r.grains, Topology::opteron48(),
                         opts, baseline);
}

TEST(MetricsTest, ParallelBenefitSeparatesBigAndTinyGrains) {
  const sim::Program p = sim::capture_program("mixed", [](Ctx& ctx) {
    ctx.spawn(GG_SRC_NAMED("m.c", 1, "big"),
              [](Ctx& c) { c.compute(50'000'000); });
    ctx.spawn(GG_SRC_NAMED("m.c", 2, "tiny"), [](Ctx& c) { c.compute(10); });
    ctx.taskwait();
  });
  const SimRun r = run_sim(p, 2);
  const MetricsResult m = metrics_of(r);
  const auto& grains = r.grains.grains();
  ASSERT_EQ(grains.size(), 2u);
  double big = 0, tiny = 0;
  for (size_t i = 0; i < grains.size(); ++i) {
    const auto& name = r.trace.strings.get(grains[i].src);
    if (name.find("big") != std::string::npos)
      big = m.per_grain[i].parallel_benefit;
    else
      tiny = m.per_grain[i].parallel_benefit;
  }
  EXPECT_GT(big, 1.0);   // worth parallelizing
  EXPECT_LT(tiny, 1.0);  // creation cost dwarfs the work
}

TEST(MetricsTest, LoadBalanceNearOneForUniformChunks) {
  sim::Capture cap;
  sim::Program p = cap.run("uniform", [](Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Static;
    fo.chunk = 10;
    ctx.parallel_for(GG_SRC, 0, 80, fo, [](u64, Ctx& c) { c.compute(100000); });
  });
  const SimRun r = run_sim(p, 4);
  ASSERT_EQ(r.trace.loops.size(), 1u);
  const double lb = loop_load_balance(r.trace, r.trace.loops[0]);
  EXPECT_NEAR(lb, 0.5, 0.1);  // longest chunk is half of a 2-chunk chain
}

TEST(MetricsTest, LoadBalanceDetectsOneHugeChunk) {
  sim::Capture cap;
  sim::Program p = cap.run("skew", [](Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 1;
    ctx.parallel_for(GG_SRC, 0, 64, fo, [](u64 i, Ctx& c) {
      c.compute(i == 13 ? 50'000'000 : 50'000);
    });
  });
  const SimRun r = run_sim(p, 8);
  const double lb = loop_load_balance(r.trace, r.trace.loops[0]);
  EXPECT_GT(lb, 5.0);
}

TEST(MetricsTest, WorkDeviationOneWithoutMemoryEffects) {
  std::function<void(Ctx&, int)> rec = [&rec](Ctx& ctx, int d) {
    ctx.compute(100000);
    if (d == 0) return;
    ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.taskwait();
  };
  const sim::Program p =
      sim::capture_program("tree", [&](Ctx& ctx) { rec(ctx, 5); });
  const SimRun serial = run_sim(p, 1);
  const SimRun parallel = run_sim(p, 16);
  const MetricsResult m = metrics_of(parallel, &serial.grains);
  for (const auto& gm : m.per_grain) {
    ASSERT_FALSE(std::isnan(gm.work_deviation));
    EXPECT_NEAR(gm.work_deviation, 1.0, 1e-9);
  }
}

TEST(MetricsTest, WorkInflationAppearsWithSharedFirstTouchData) {
  sim::Capture cap;
  const auto region =
      cap.alloc_region("matrix", 256 << 20, PagePlacement::FirstTouch);
  sim::Program p = cap.run("inflate", [&](Ctx& ctx) {
    for (int i = 0; i < 64; ++i) {
      ctx.spawn(GG_SRC, [&, i](Ctx& c) {
        c.compute(200000);
        c.touch(region, static_cast<u64>(i) * (1 << 20), 1 << 20);
      });
    }
    ctx.taskwait();
  });
  const SimRun serial = run_sim(p, 1, /*memory=*/true);
  const SimRun parallel = run_sim(p, 48, /*memory=*/true);
  const MetricsResult m = metrics_of(parallel, &serial.grains);
  size_t inflated = 0;
  for (const auto& gm : m.per_grain) {
    if (!std::isnan(gm.work_deviation) && gm.work_deviation > 1.2) ++inflated;
  }
  EXPECT_GT(inflated, m.per_grain.size() / 2);
}

TEST(MetricsTest, InstantaneousParallelismSerialChainIsOne) {
  const sim::Program p = sim::capture_program("chain", [](Ctx& ctx) {
    for (int i = 0; i < 10; ++i) {
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(1'000'000); });
      ctx.taskwait();  // serializes every child
    }
  });
  const SimRun r = run_sim(p, 8);
  const MetricsResult m = metrics_of(r);
  for (const auto& gm : m.per_grain) {
    EXPECT_LE(gm.inst_parallelism_optimistic, 2);
    EXPECT_GE(gm.inst_parallelism_optimistic, 1);
  }
}

TEST(MetricsTest, InstantaneousParallelismHighForWideFanout) {
  const sim::Program p = sim::capture_program("fanout", [](Ctx& ctx) {
    for (int i = 0; i < 256; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(20'000'000); });
    ctx.taskwait();
  });
  const SimRun r = run_sim(p, 48);
  MetricOptions mo;
  mo.interval = IntervalPreset::MedianGrain;
  const MetricsResult m = metrics_of(r, nullptr, mo);
  u32 peak = 0;
  for (u32 v : m.parallelism_optimistic) peak = std::max(peak, v);
  EXPECT_GE(peak, 40u);
  // Most grains run while many others do.
  size_t high = 0;
  for (const auto& gm : m.per_grain)
    if (gm.inst_parallelism_optimistic >= 24) ++high;
  EXPECT_GT(high, m.per_grain.size() / 2);
}

TEST(MetricsTest, ConservativeNeverExceedsOptimistic) {
  const sim::Program p = sim::capture_program("mix", [](Ctx& ctx) {
    for (int i = 0; i < 32; ++i)
      ctx.spawn(GG_SRC, [i](Ctx& c) { c.compute(100'000 + 50'000 * (i % 7)); });
    ctx.taskwait();
  });
  const SimRun r = run_sim(p, 8);
  const MetricsResult m = metrics_of(r);
  ASSERT_EQ(m.parallelism_optimistic.size(), m.parallelism_conservative.size());
  for (size_t i = 0; i < m.parallelism_optimistic.size(); ++i)
    EXPECT_LE(m.parallelism_conservative[i], m.parallelism_optimistic[i]);
  for (const auto& gm : m.per_grain)
    EXPECT_LE(gm.inst_parallelism, gm.inst_parallelism_optimistic);
}

TEST(MetricsTest, ScatterZeroOnOneCore) {
  const sim::Program p = sim::capture_program("sib", [](Ctx& ctx) {
    for (int i = 0; i < 8; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(1000); });
    ctx.taskwait();
  });
  const SimRun r = run_sim(p, 1);
  const MetricsResult m = metrics_of(r);
  for (const auto& gm : m.per_grain) EXPECT_DOUBLE_EQ(gm.scatter, 0.0);
}

TEST(MetricsTest, ScatterGrowsWhenSiblingsSpreadAcrossSockets) {
  const sim::Program p = sim::capture_program("spread", [](Ctx& ctx) {
    for (int i = 0; i < 96; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(10'000'000); });
    ctx.taskwait();
  });
  const SimRun r = run_sim(p, 48);
  const MetricsResult m = metrics_of(r);
  // With 96 long tasks over 48 cores on 4 sockets, siblings land everywhere:
  // the median pairwise distance is off-socket.
  ASSERT_FALSE(m.per_grain.empty());
  EXPECT_GT(m.per_grain[0].scatter, 16.0);
}

TEST(MetricsTest, MemUtilFiniteOnlyWithStalls) {
  sim::Capture cap;
  const auto region =
      cap.alloc_region("buf", 64 << 20, PagePlacement::FirstTouch);
  sim::Program p = cap.run("mem", [&](Ctx& ctx) {
    ctx.spawn(GG_SRC_NAMED("m.c", 1, "pure"),
              [](Ctx& c) { c.compute(100000); });
    ctx.spawn(GG_SRC_NAMED("m.c", 2, "memory"), [&](Ctx& c) {
      c.compute(100000);
      c.touch(region, 0, 16 << 20);
    });
    ctx.taskwait();
  });
  const SimRun r = run_sim(p, 2, /*memory=*/true);
  const MetricsResult m = metrics_of(r);
  const auto& grains = r.grains.grains();
  for (size_t i = 0; i < grains.size(); ++i) {
    const auto& name = r.trace.strings.get(grains[i].src);
    if (name.find("pure") != std::string::npos) {
      EXPECT_TRUE(std::isinf(m.per_grain[i].mem_util));
    } else {
      EXPECT_TRUE(std::isfinite(m.per_grain[i].mem_util));
      EXPECT_GT(m.per_grain[i].mem_util, 0.0);
    }
  }
}

TEST(MetricsTest, CriticalPathAtLeastLongestGrainAndAtMostMakespan) {
  std::function<void(Ctx&, int)> rec = [&rec](Ctx& ctx, int d) {
    ctx.compute(300000);
    if (d == 0) return;
    ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.spawn(GG_SRC, [&rec, d](Ctx& c) { rec(c, d - 1); });
    ctx.taskwait();
  };
  const sim::Program p =
      sim::capture_program("tree", [&](Ctx& ctx) { rec(ctx, 6); });
  const SimRun r = run_sim(p, 8);
  const MetricsResult m = metrics_of(r);
  TimeNs longest = 0;
  for (const Grain& g : r.grains.grains())
    longest = std::max(longest, g.exec_time);
  EXPECT_GE(m.critical_path_time, longest);
  EXPECT_LE(m.critical_path_time, r.trace.makespan());
  size_t on_cp = 0;
  for (const auto& gm : m.per_grain)
    if (gm.on_critical_path) ++on_cp;
  EXPECT_GT(on_cp, 0u);
  EXPECT_LT(on_cp, m.per_grain.size());
}

TEST(MetricsTest, SerialChainIsEntirelyCritical) {
  const sim::Program p = sim::capture_program("chain", [](Ctx& ctx) {
    for (int i = 0; i < 6; ++i) {
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(1'000'000); });
      ctx.taskwait();
    }
  });
  const SimRun r = run_sim(p, 4);
  const MetricsResult m = metrics_of(r);
  for (const auto& gm : m.per_grain) EXPECT_TRUE(gm.on_critical_path);
}

TEST(MetricsTest, IntervalPresetsProduceSaneSlots) {
  const sim::Program p = sim::capture_program("fan", [](Ctx& ctx) {
    for (int i = 0; i < 20; ++i)
      ctx.spawn(GG_SRC, [i](Ctx& c) { c.compute(10'000 * (1 + i % 5)); });
    ctx.taskwait();
  });
  const SimRun r = run_sim(p, 4);
  for (auto preset : {IntervalPreset::MinGrain, IntervalPreset::MinGap,
                      IntervalPreset::MedianGrain}) {
    MetricOptions mo;
    mo.interval = preset;
    const MetricsResult m = metrics_of(r, nullptr, mo);
    EXPECT_GT(m.interval_used, 0u);
    EXPECT_LE(m.parallelism_optimistic.size(), mo.max_intervals + 1);
    EXPECT_FALSE(m.parallelism_optimistic.empty());
  }
}

TEST(MetricsTest, RegionLoadBalanceUniformVersusSkewed) {
  const sim::Program uniform = sim::capture_program("u", [](Ctx& ctx) {
    for (int i = 0; i < 32; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(1'000'000); });
    ctx.taskwait();
  });
  const sim::Program skewed = sim::capture_program("s", [](Ctx& ctx) {
    ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(64'000'000); });
    for (int i = 0; i < 31; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(1'000'000); });
    ctx.taskwait();
  });
  const SimRun ru = run_sim(uniform, 8);
  const SimRun rs = run_sim(skewed, 8);
  const double lb_u =
      region_load_balance(ru.grains, ru.trace.meta.num_cores);
  const double lb_s =
      region_load_balance(rs.grains, rs.trace.meta.num_cores);
  EXPECT_GT(lb_s, lb_u * 2);
}

}  // namespace
}  // namespace gg
