#include <gtest/gtest.h>

#include <cmath>

#include "apps/blackscholes.hpp"
#include "apps/fft.hpp"
#include "apps/fib.hpp"
#include "apps/floorplan.hpp"
#include "apps/freqmine.hpp"
#include "apps/health.hpp"
#include "apps/kdtree.hpp"
#include "apps/nqueens.hpp"
#include "apps/others.hpp"
#include "apps/sort.hpp"
#include "apps/sparselu.hpp"
#include "apps/strassen.hpp"
#include "apps/uts.hpp"
#include "common/prng.hpp"
#include "rts/threaded_engine.hpp"
#include "sim/sim_engine.hpp"
#include "trace/validate.hpp"

namespace gg::apps {
namespace {

sim::SimOptions quick_sim(int cores = 8) {
  sim::SimOptions o;
  o.num_cores = cores;
  return o;
}

// ---------------------------------------------------------------------------
// kdtree

TEST(KdtreeTest, BuggyCutoffCreatesTaskPerNode) {
  KdtreeParams p;
  p.num_points = 2000;
  p.fixed = false;
  sim::SimEngine eng(quick_sim());
  long neighbors = 0;
  const Trace t = eng.run("kdtree", kdtree_program(eng, p, &neighbors));
  EXPECT_TRUE(validate_trace(t).empty());
  // The bug: despite cutoff 2, ~one task per tree node.
  EXPECT_GT(t.tasks.size(), static_cast<size_t>(p.num_points) / 2);
  EXPECT_GT(neighbors, 0);
}

TEST(KdtreeTest, FixedCutoffBoundsTasks) {
  KdtreeParams p;
  p.num_points = 2000;
  p.fixed = true;
  p.sweep_cutoff = 6;
  sim::SimEngine eng(quick_sim());
  long neighbors = 0;
  const Trace t = eng.run("kdtree", kdtree_program(eng, p, &neighbors));
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_LT(t.tasks.size(), 1u << 8);  // ~2^(cutoff+1)
  EXPECT_GT(neighbors, 0);
}

TEST(KdtreeTest, NeighborCountIndependentOfCutoffFix) {
  long buggy = 0, fixed = 0;
  {
    KdtreeParams p;
    p.num_points = 800;
    sim::SimEngine eng(quick_sim());
    eng.run("kdtree", kdtree_program(eng, p, &buggy));
  }
  {
    KdtreeParams p;
    p.num_points = 800;
    p.fixed = true;
    sim::SimEngine eng(quick_sim());
    eng.run("kdtree", kdtree_program(eng, p, &fixed));
  }
  EXPECT_EQ(buggy, fixed);
  EXPECT_GT(buggy, 800);  // every point is at least its own neighbor
}

// ---------------------------------------------------------------------------
// sort

TEST(SortTest, SortsCorrectly) {
  SortParams p;
  p.num_elements = 1 << 15;
  p.quick_cutoff = 1 << 11;
  p.merge_cutoff = 1 << 11;
  sim::SimEngine eng(quick_sim());
  bool ok = false;
  const Trace t = eng.run("sort", sort_program(eng, p, &ok));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_GT(t.tasks.size(), 20u);
}

TEST(SortTest, LowerCutoffsCreateMoreGrains) {
  auto grains_with_cutoff = [](u64 cutoff) {
    SortParams p;
    p.num_elements = 1 << 15;
    p.quick_cutoff = cutoff;
    p.merge_cutoff = cutoff;
    sim::SimEngine eng(quick_sim());
    bool ok = false;
    const Trace t = eng.run("sort", sort_program(eng, p, &ok));
    EXPECT_TRUE(ok);
    return t.grain_count();
  };
  EXPECT_GT(grains_with_cutoff(1 << 9), 10 * grains_with_cutoff(1 << 13));
}

TEST(SortTest, RunsOnThreadedEngine) {
  SortParams p;
  p.num_elements = 1 << 13;
  p.quick_cutoff = 1 << 10;
  p.merge_cutoff = 1 << 10;
  rts::Options o;
  o.num_workers = 4;
  rts::ThreadedEngine eng(o);
  bool ok = false;
  const Trace t = eng.run("sort", sort_program(eng, p, &ok));
  EXPECT_TRUE(ok);
  EXPECT_TRUE(validate_trace(t).empty());
}

// ---------------------------------------------------------------------------
// sparselu

TEST(SparseLuTest, InterchangePreservesResult) {
  double plain = 0.0, fixed = 0.0;
  {
    SparseLuParams p;
    p.blocks = 6;
    p.block_size = 16;
    sim::SimEngine eng(quick_sim());
    eng.run("sparselu", sparselu_program(eng, p, &plain));
  }
  {
    SparseLuParams p;
    p.blocks = 6;
    p.block_size = 16;
    p.interchange = true;
    sim::SimEngine eng(quick_sim());
    eng.run("sparselu", sparselu_program(eng, p, &fixed));
  }
  EXPECT_NEAR(plain, fixed, std::abs(plain) * 1e-3 + 1e-6);
  EXPECT_NE(plain, 0.0);
}

TEST(SparseLuTest, PhaseStructure) {
  SparseLuParams p;
  p.blocks = 10;
  p.block_size = 8;
  p.density = 0.6;
  sim::SimEngine eng(quick_sim());
  const Trace t = eng.run("sparselu", sparselu_program(eng, p));
  EXPECT_TRUE(validate_trace(t).empty());
  // Two joins per outer iteration (fwd/bdiv barrier + bmod barrier), except
  // iterations with no spawned work near the end.
  EXPECT_GE(t.joins_of(kRootTask).size(), static_cast<size_t>(p.blocks));
  // bmod dominates the task mix.
  size_t bmod = 0;
  for (const TaskRec& task : t.tasks) {
    if (t.strings.get(task.src).find("bmod") != std::string::npos) ++bmod;
  }
  EXPECT_GT(bmod, t.tasks.size() / 2);
}

// ---------------------------------------------------------------------------
// fft

TEST(FftTest, ParsevalHolds) {
  FftParams p;
  p.num_samples = 1 << 10;
  p.spawn_cutoff = 1 << 7;
  sim::SimEngine eng(quick_sim());
  double energy = 0.0;
  const Trace t = eng.run("fft", fft_program(eng, p, &energy));
  EXPECT_TRUE(validate_trace(t).empty());
  // Parseval: sum |X|^2 == N * sum |x|^2; inputs are U(-0.5,0.5)^2 pairs,
  // so expected time-domain energy ~ N/6 per component * 2.
  const double expected = static_cast<double>(p.num_samples) *
                          static_cast<double>(p.num_samples) / 6.0;
  EXPECT_NEAR(energy / expected, 1.0, 0.1);
}

TEST(FftTest, CutoffShrinksGrainCount) {
  auto grains = [](u64 cutoff) {
    FftParams p;
    p.num_samples = 1 << 12;
    p.spawn_cutoff = cutoff;
    sim::SimEngine eng(quick_sim());
    const Trace t = eng.run("fft", fft_program(eng, p));
    return t.grain_count();
  };
  const size_t unopt = grains(2);
  const size_t opt = grains(1 << 9);
  EXPECT_GT(unopt, 20 * opt);
}

// ---------------------------------------------------------------------------
// strassen

TEST(StrassenTest, ReferenceMatchesNaive) {
  constexpr u64 n = 32;
  std::vector<double> a(n * n), b(n * n), c_str(n * n), c_naive(n * n, 0.0);
  Xoshiro256 rng(5);
  for (auto& v : a) v = rng.uniform01() - 0.5;
  for (auto& v : b) v = rng.uniform01() - 0.5;
  strassen_multiply_reference(a.data(), b.data(), c_str.data(), n, 8);
  for (u64 i = 0; i < n; ++i)
    for (u64 k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      for (u64 j = 0; j < n; ++j) c_naive[i * n + j] += aik * b[k * n + j];
    }
  for (u64 i = 0; i < n * n; ++i) EXPECT_NEAR(c_str[i], c_naive[i], 1e-9);
}

TEST(StrassenTest, HardCodedCutoffCapsGrainsAt58Shape) {
  StrassenParams p;
  p.matrix_size = 2048;
  p.sc = 128;
  p.hard_coded_cutoff = true;
  sim::SimEngine eng(quick_sim());
  const Trace t = eng.run("strassen", strassen_program(eng, p));
  EXPECT_TRUE(validate_trace(t).empty());
  // 7 + 49 = 56 tasks + root: the paper's "graph is limited to 58 grains".
  EXPECT_EQ(t.grain_count(), 56u);
}

TEST(StrassenTest, DisablingHardCutoffExposesParallelism) {
  StrassenParams p;
  p.matrix_size = 2048;
  p.sc = 256;
  p.hard_coded_cutoff = false;
  sim::SimEngine eng(quick_sim());
  const Trace t = eng.run("strassen", strassen_program(eng, p));
  // 7 + 49 + 343 = 399 tasks at sc=256; paper's 2801 uses sc=128:
  EXPECT_EQ(t.grain_count(), 399u);
  StrassenParams p2 = p;
  p2.sc = 128;
  sim::SimEngine eng2(quick_sim());
  const Trace t2 = eng2.run("strassen", strassen_program(eng2, p2));
  EXPECT_EQ(t2.grain_count(), 2800u);  // 7 + 49 + 343 + 2401
}

// ---------------------------------------------------------------------------
// freqmine

TEST(FreqmineTest, SecondLoopHas1292Chunks) {
  FreqmineParams p;
  p.num_transactions = 4000;
  sim::SimEngine eng(quick_sim(48));
  long patterns = 0;
  const Trace t = eng.run("freqmine", freqmine_program(eng, p, &patterns));
  EXPECT_TRUE(validate_trace(t).empty());
  ASSERT_EQ(t.loops.size(), 3u);
  const LoopRec& fpgf = t.loops[1];
  EXPECT_EQ(t.chunks_of(fpgf.uid).size(), 1292u);  // chunk size 1
  EXPECT_GT(patterns, 0);
}

TEST(FreqmineTest, NumThreadsLimitsTeam) {
  FreqmineParams p;
  p.num_transactions = 2000;
  p.fpgf_threads = 7;
  sim::SimEngine eng(quick_sim(48));
  const Trace t = eng.run("freqmine", freqmine_program(eng, p));
  ASSERT_EQ(t.loops.size(), 3u);
  EXPECT_EQ(t.loops[1].num_threads, 7);
  for (const ChunkRec* c : t.chunks_of(t.loops[1].uid))
    EXPECT_LT(c->thread, 7);
}

TEST(FreqmineTest, DeterministicPatternCount) {
  long a = 0, b = 0;
  for (long* out : {&a, &b}) {
    FreqmineParams p;
    p.num_transactions = 1500;
    sim::SimEngine eng(quick_sim());
    eng.run("freqmine", freqmine_program(eng, p, out));
  }
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

// ---------------------------------------------------------------------------
// small programs

TEST(FibTest, ComputesFib) {
  FibParams p;
  p.n = 20;
  p.cutoff = 6;
  sim::SimEngine eng(quick_sim());
  u64 result = 0;
  const Trace t = eng.run("fib", fib_program(eng, p, &result));
  EXPECT_EQ(result, 6765u);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(NQueensTest, CountsSolutions) {
  NQueensParams p;
  p.n = 8;
  p.cutoff = 3;
  sim::SimEngine eng(quick_sim());
  long solutions = 0;
  const Trace t = eng.run("nqueens", nqueens_program(eng, p, &solutions));
  EXPECT_EQ(solutions, 92);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(NQueensTest, CorrectOnThreadedEngine) {
  NQueensParams p;
  p.n = 8;
  p.cutoff = 3;
  rts::Options o;
  o.num_workers = 4;
  rts::ThreadedEngine eng(o);
  long solutions = 0;
  const Trace t = eng.run("nqueens", nqueens_program(eng, p, &solutions));
  EXPECT_EQ(solutions, 92);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(UtsTest, DeterministicUnbalancedTree) {
  UtsParams p;
  p.root_children = 16;
  p.max_depth = 8;
  long a = 0, b = 0;
  {
    sim::SimEngine eng(quick_sim());
    eng.run("uts", uts_program(eng, p, &a));
  }
  {
    sim::SimEngine eng(quick_sim());
    eng.run("uts", uts_program(eng, p, &b));
  }
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 16);
}

TEST(UtsTest, CutoffReducesTaskCount) {
  UtsParams p;
  p.root_children = 16;
  p.max_depth = 10;
  size_t unopt = 0, opt = 0;
  {
    sim::SimEngine eng(quick_sim());
    unopt = eng.run("uts", uts_program(eng, p)).tasks.size();
  }
  {
    UtsParams p2 = p;
    p2.cutoff = 3;
    sim::SimEngine eng(quick_sim());
    opt = eng.run("uts", uts_program(eng, p2)).tasks.size();
  }
  EXPECT_GT(unopt, 2 * opt);
}

TEST(BlackscholesTest, PricesArePositiveAndDeterministic) {
  BlackscholesParams p;
  p.num_options = 5000;
  double s1 = 0.0, s2 = 0.0;
  {
    sim::SimEngine eng(quick_sim());
    const Trace t =
        eng.run("blackscholes", blackscholes_program(eng, p, &s1));
    EXPECT_TRUE(validate_trace(t).empty());
    EXPECT_EQ(t.loops.size(), 1u);
  }
  {
    sim::SimEngine eng(quick_sim());
    eng.run("blackscholes", blackscholes_program(eng, p, &s2));
  }
  EXPECT_GT(s1, 0.0);
  EXPECT_DOUBLE_EQ(s1, s2);
}

TEST(FloorplanTest, ShapeChangesWithSeedButOptimumDoesNot) {
  long best1 = 0, best2 = 0;
  size_t tasks1 = 0, tasks2 = 0;
  {
    FloorplanParams p;
    p.cutoff = p.num_cells;  // tasks everywhere: the explored tree IS the
                             // task tree, as in BOTS floorplan
    p.shape_seed = 1;
    sim::SimEngine eng(quick_sim());
    const Trace t = eng.run("floorplan", floorplan_program(eng, p, &best1));
    tasks1 = t.tasks.size();
  }
  {
    FloorplanParams p;
    p.cutoff = p.num_cells;
    p.shape_seed = 12345;
    sim::SimEngine eng(quick_sim());
    const Trace t = eng.run("floorplan", floorplan_program(eng, p, &best2));
    tasks2 = t.tasks.size();
  }
  EXPECT_EQ(best1, best2);   // optimum is order-independent
  EXPECT_NE(tasks1, tasks2); // executed tree is not (§4.3.6 Floorplan)
}

TEST(HealthTest, DeterministicTreatmentAndPerLevelStructure) {
  apps::HealthParams p;
  p.levels = 4;
  p.branching = 2;
  p.timesteps = 6;
  long a = 0, b = 0;
  {
    sim::SimEngine eng(quick_sim());
    const Trace t = eng.run("health", apps::health_program(eng, p, &a));
    EXPECT_TRUE(validate_trace(t).empty());
    // Per timestep: every non-root village is one task.
    const size_t villages = (1u << 4) - 1;  // full binary tree of 4 levels
    EXPECT_EQ(t.tasks.size(), 1 + p.timesteps * (villages - 1));
    // The hierarchy produces one taskwait (join) per interior village per
    // step plus the root's.
    EXPECT_GT(t.joins.size(), static_cast<size_t>(p.timesteps));
  }
  {
    sim::SimEngine eng(quick_sim());
    eng.run("health", apps::health_program(eng, p, &b));
  }
  EXPECT_EQ(a, b);
  EXPECT_GT(a, 0);
}

TEST(HealthTest, RunsOnThreadedEngine) {
  apps::HealthParams p;
  p.levels = 3;
  p.timesteps = 4;
  rts::Options o;
  o.num_workers = 4;
  rts::ThreadedEngine eng(o);
  long treated = 0;
  const Trace t = eng.run("health", apps::health_program(eng, p, &treated));
  EXPECT_GT(treated, 0);
  EXPECT_TRUE(validate_trace(t).empty());
}

TEST(OthersTest, BotsalgnHealthy) {
  BotsalgnParams p;
  p.num_sequences = 40;
  p.seq_len = 64;
  sim::SimEngine eng(quick_sim());
  long score = 0;
  const Trace t = eng.run("botsalgn", botsalgn_program(eng, p, &score));
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_EQ(t.tasks.size(), 40u);  // root + 39 alignments
  EXPECT_NE(score, 0);
}

TEST(OthersTest, ImagickLoopsPresent) {
  ImagickParams p;
  p.rows = 64;
  p.columns = 128;
  sim::SimEngine eng(quick_sim());
  double sum = 0.0;
  const Trace t = eng.run("imagick", imagick_program(eng, p, &sum));
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_EQ(t.loops.size(), 7u);
  EXPECT_GT(sum, 0.0);
}

TEST(OthersTest, SmithwaTwoBlocks) {
  SmithwaParams p;
  p.matrix_dim = 64;
  sim::SimEngine eng(quick_sim());
  long best = 0;
  const Trace t = eng.run("smithwa", smithwa_program(eng, p, &best));
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_EQ(t.loops.size(), 2u);
  EXPECT_GT(best, 0);
}

TEST(OthersTest, BodytrackFramesAndLoops) {
  BodytrackParams p;
  p.frames = 2;
  p.particles = 64;
  p.image_rows = 32;
  sim::SimEngine eng(quick_sim());
  double lh = 0.0;
  const Trace t = eng.run("bodytrack", bodytrack_program(eng, p, &lh));
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_EQ(t.loops.size(), 6u);  // 3 loops x 2 frames
  EXPECT_GT(lh, 0.0);
}

}  // namespace
}  // namespace gg::apps
