#include <gtest/gtest.h>

#include <sstream>

#include "sim/capture.hpp"
#include "sim/des.hpp"
#include "sim/memory_model.hpp"
#include "sim/sim_engine.hpp"
#include "trace/serialize.hpp"
#include "trace/validate.hpp"

namespace gg::sim {
namespace {

using front::Ctx;
using front::ForOpts;
using front::PagePlacement;

// ---------------------------------------------------------------------------
// Capture

TEST(CaptureTest, RecordsTaskTreeDepthFirst) {
  Program p = capture_program("tree", [](Ctx& ctx) {
    ctx.compute(100);
    ctx.spawn(GG_SRC, [](Ctx& c) {
      c.compute(10);
      c.spawn(GG_SRC, [](Ctx& g) { g.compute(1); });
      c.taskwait();
    });
    ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(20); });
    ctx.taskwait();
  });
  ASSERT_EQ(p.tasks.size(), 4u);  // root + 3
  EXPECT_TRUE(p.tasks[0].is_root);
  // Depth-first order: root, child A, grandchild, child B.
  EXPECT_EQ(p.tasks[1].parent, 0u);
  EXPECT_EQ(p.tasks[1].child_index, 0u);
  EXPECT_EQ(p.tasks[2].parent, 1u);
  EXPECT_EQ(p.tasks[2].child_index, 0u);
  EXPECT_EQ(p.tasks[3].parent, 0u);
  EXPECT_EQ(p.tasks[3].child_index, 1u);
  // Root ops: compute, spawn, spawn, wait.
  ASSERT_EQ(p.tasks[0].ops.size(), 4u);
  EXPECT_EQ(p.tasks[0].ops[0].kind, Op::Kind::Compute);
  EXPECT_EQ(p.tasks[0].ops[0].arg, 100u);
  EXPECT_EQ(p.tasks[0].ops[1].kind, Op::Kind::Spawn);
  EXPECT_EQ(p.tasks[0].ops[3].kind, Op::Kind::Wait);
  EXPECT_EQ(p.total_compute(), 131u);
}

TEST(CaptureTest, MergesAdjacentComputes) {
  Program p = capture_program("merge", [](Ctx& ctx) {
    ctx.compute(5);
    ctx.compute(7);
  });
  ASSERT_EQ(p.tasks[0].ops.size(), 1u);
  EXPECT_EQ(p.tasks[0].ops[0].arg, 12u);
}

TEST(CaptureTest, RecordsLoopIterationCosts) {
  Capture cap;
  const auto region =
      cap.alloc_region("data", 1 << 20, PagePlacement::FirstTouch);
  Program p = cap.run("loop", [&](Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 2;
    ctx.parallel_for(GG_SRC, 10, 20, fo, [&](u64 i, Ctx& c) {
      c.compute(i);
      c.touch(region, i * 64, 64);
    });
  });
  ASSERT_EQ(p.loops.size(), 1u);
  const LoopDef& l = p.loops[0];
  EXPECT_EQ(l.lo, 10u);
  EXPECT_EQ(l.hi, 20u);
  ASSERT_EQ(l.iters.size(), 10u);
  EXPECT_EQ(l.iters[0].compute, 10u);
  EXPECT_EQ(l.iters[9].compute, 19u);
  ASSERT_EQ(l.iters[3].touches.size(), 1u);
  EXPECT_EQ(l.iters[3].touches[0].offset, 13u * 64u);
}

TEST(CaptureTest, RealComputationHappensOnce) {
  int side_effect = 0;
  capture_program("effect", [&](Ctx& ctx) {
    ctx.spawn(GG_SRC, [&](Ctx&) { side_effect++; });
    ctx.taskwait();
  });
  EXPECT_EQ(side_effect, 1);
}

// ---------------------------------------------------------------------------
// Simulation basics

Program fib_program(int n) {
  std::function<void(Ctx&, int)> fib = [&fib](Ctx& ctx, int k) {
    ctx.compute(2000);
    if (k < 2) return;
    ctx.spawn(GG_SRC, [&fib, k](Ctx& c) { fib(c, k - 1); });
    ctx.spawn(GG_SRC, [&fib, k](Ctx& c) { fib(c, k - 2); });
    ctx.taskwait();
  };
  return capture_program("fib", [&](Ctx& ctx) { fib(ctx, n); });
}

SimOptions small_opts(int cores) {
  SimOptions o;
  o.topology = Topology::opteron48();
  o.num_cores = cores;
  o.policy = SimPolicy::mir();
  o.memory_model = false;
  return o;
}

TEST(SimulateTest, TraceValidatesAcrossCoreCountsAndPolicies) {
  const Program p = fib_program(10);
  for (int cores : {1, 2, 7, 48}) {
    for (auto pol : {SimPolicy::mir(), SimPolicy::gcc(), SimPolicy::icc(),
                     SimPolicy::mir_central()}) {
      SimOptions o = small_opts(cores);
      o.policy = pol;
      const Trace t = simulate(p, o);
      const auto errs = validate_trace(t);
      EXPECT_TRUE(errs.empty())
          << pol.name << "/" << cores << ": " << (errs.empty() ? "" : errs[0]);
      EXPECT_EQ(t.tasks.size(), p.tasks.size());
      EXPECT_EQ(t.meta.runtime, "sim/" + pol.name);
    }
  }
}

TEST(SimulateTest, DeterministicTraces) {
  const Program p = fib_program(9);
  SimOptions o = small_opts(8);
  const Trace a = simulate(p, o);
  const Trace b = simulate(p, o);
  std::ostringstream sa, sb;
  save_trace(a, sa);
  save_trace(b, sb);
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(SimulateTest, ParallelExecutionIsFasterThanSerial) {
  const Program p = fib_program(14);
  const TimeNs t1 = simulate(p, small_opts(1)).makespan();
  const TimeNs t8 = simulate(p, small_opts(8)).makespan();
  const TimeNs t48 = simulate(p, small_opts(48)).makespan();
  EXPECT_LT(t8, t1 / 3);
  EXPECT_LE(t48, t8);
}

TEST(SimulateTest, SingleCoreMakespanAtLeastTotalCompute) {
  const Program p = fib_program(10);
  const Trace t = simulate(p, small_opts(1));
  const TimeNs compute_ns =
      Topology::opteron48().cycles_to_ns(p.total_compute());
  EXPECT_GE(t.makespan(), compute_ns);
  // Overheads are bounded: < 2.5x pure compute for this grain size.
  EXPECT_LT(t.makespan(), compute_ns * 5 / 2);
}

TEST(SimulateTest, IccPolicyInlinesAggressively) {
  const Program p = fib_program(18);  // deep enough to exceed the queue bound
  // On one core no thief drains the deque, so recursion depth drives the
  // queue past the ICC internal cutoff and most spawns execute inline.
  SimOptions o = small_opts(1);
  o.policy = SimPolicy::icc();
  // Exercise the mechanism at test scale: the calibrated limit (8) needs
  // deeper recursions than a unit test should run.
  o.policy.inline_queue_limit = 3;
  const Trace t = simulate(p, o);
  size_t inlined = 0;
  for (const auto& task : t.tasks)
    if (task.inlined) ++inlined;
  EXPECT_GT(inlined, t.tasks.size() / 5);
  SimOptions om = small_opts(1);
  const Trace tm = simulate(p, om);  // same program under MIR
  size_t mir_inlined = 0;
  for (const auto& task : tm.tasks)
    if (task.inlined) ++mir_inlined;
  EXPECT_EQ(mir_inlined, 0u);  // MIR has no internal cutoff
}

TEST(SimulateTest, GccThrottleCapsLiveTasks) {
  // A root that fans out 4000 expensive children: with throttle 64 x 4 cores
  // = 256 live tasks, the consumers cannot keep up and creation turns inline
  // once the cap is hit.
  const Program p = capture_program("fanout", [](Ctx& ctx) {
    for (int i = 0; i < 4000; ++i) {
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(200000); });
    }
    ctx.taskwait();
  });
  SimOptions o = small_opts(4);
  o.policy = SimPolicy::gcc();
  const Trace t = simulate(p, o);
  size_t inlined = 0;
  u32 max_live = 0, live = 0;
  for (const auto& task : t.tasks)
    if (task.inlined) ++inlined;
  (void)live;
  (void)max_live;
  EXPECT_GT(inlined, 500u);
  // MIR (no throttle) defers everything.
  const Trace tm = simulate(p, small_opts(4));
  size_t mir_inlined = 0;
  for (const auto& task : tm.tasks)
    if (task.inlined) ++mir_inlined;
  EXPECT_EQ(mir_inlined, 0u);
}

TEST(SimulateTest, UnjoinedTasksDrainAtImplicitBarrier) {
  const Program p = capture_program("noJoin", [](Ctx& ctx) {
    for (int i = 0; i < 10; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(1000); });
  });
  const Trace t = simulate(p, small_opts(4));
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_EQ(t.joins_of(kRootTask).size(), 1u);
}

// ---------------------------------------------------------------------------
// Loops in simulation

class SimLoopTest
    : public ::testing::TestWithParam<std::tuple<ScheduleKind, u64, int>> {};

TEST_P(SimLoopTest, ChunksPartitionAndValidate) {
  const auto [sched, chunk, cores] = GetParam();
  Capture cap;
  Program p = cap.run("loop", [&](Ctx& ctx) {
    ForOpts fo;
    fo.sched = sched;
    fo.chunk = chunk;
    ctx.parallel_for(GG_SRC, 0, 100, fo,
                     [](u64, Ctx& c) { c.compute(10000); });
  });
  const Trace t = simulate(p, small_opts(cores));
  const auto errs = validate_trace(t);
  EXPECT_TRUE(errs.empty()) << (errs.empty() ? "" : errs[0]);
  ASSERT_EQ(t.loops.size(), 1u);
  const auto chunks = t.chunks_of(t.loops[0].uid);
  EXPECT_FALSE(chunks.empty());
  u64 covered = 0;
  for (const auto* c : chunks) covered += c->iter_end - c->iter_begin;
  EXPECT_EQ(covered, 100u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, SimLoopTest,
    ::testing::Values(std::make_tuple(ScheduleKind::Static, u64{0}, 4),
                      std::make_tuple(ScheduleKind::Static, u64{7}, 4),
                      std::make_tuple(ScheduleKind::Static, u64{1}, 48),
                      std::make_tuple(ScheduleKind::Dynamic, u64{1}, 8),
                      std::make_tuple(ScheduleKind::Dynamic, u64{9}, 3),
                      std::make_tuple(ScheduleKind::Guided, u64{1}, 8),
                      std::make_tuple(ScheduleKind::Guided, u64{2}, 48),
                      std::make_tuple(ScheduleKind::Dynamic, u64{1}, 1)));

TEST(SimulateTest, LoopSpeedsUpWithCores) {
  Capture cap;
  Program p = cap.run("loop", [&](Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 1;
    ctx.parallel_for(GG_SRC, 0, 480, fo,
                     [](u64, Ctx& c) { c.compute(100000); });
  });
  const TimeNs t1 = simulate(p, small_opts(1)).makespan();
  const TimeNs t48 = simulate(p, small_opts(48)).makespan();
  EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t48), 30.0);
}

TEST(SimulateTest, LoopTeamRestriction) {
  Capture cap;
  Program p = cap.run("loop7", [&](Ctx& ctx) {
    ForOpts fo;
    fo.sched = ScheduleKind::Dynamic;
    fo.chunk = 1;
    fo.num_threads = 7;
    ctx.parallel_for(GG_SRC, 0, 100, fo, [](u64, Ctx& c) { c.compute(1000); });
  });
  const Trace t = simulate(p, small_opts(48));
  ASSERT_EQ(t.loops.size(), 1u);
  EXPECT_EQ(t.loops[0].num_threads, 7);
  for (const ChunkRec& c : t.chunks) EXPECT_LT(c.thread, 7);
}

TEST(SimulateTest, EmptyLoopIsWellFormed) {
  Capture cap;
  Program p = cap.run("empty", [&](Ctx& ctx) {
    ctx.parallel_for(GG_SRC, 3, 3, ForOpts{}, [](u64, Ctx&) { FAIL(); });
    ctx.compute(10);
  });
  const Trace t = simulate(p, small_opts(4));
  EXPECT_TRUE(validate_trace(t).empty());
  ASSERT_EQ(t.loops.size(), 1u);
  EXPECT_TRUE(t.chunks.empty());
}

// ---------------------------------------------------------------------------
// Memory model

TEST(MemoryModelTest, StridedWalksCostMoreThanSequential) {
  const Topology topo = Topology::opteron48();
  std::vector<RegionDef> regions(2);
  regions[1] = {"m", 1 << 24, PagePlacement::FirstTouch, 0};
  MemoryModel mm(topo, regions, 4);
  // A block re-walked column-wise (stride > line) misses L1 on every access
  // of every walk — the bmod pattern; the sequential walk is prefetched.
  // Equal access counts (16384): sequential walks 16 passes of 1024 lines,
  // strided walks 256 passes of 64 elements each on its own line.
  TouchOp seq{1, 0, 1 << 16, 0, 16};
  TouchOp strided{1, 0, 1 << 16, 1024, 256};
  const auto a = mm.on_touch(0, seq, 1);
  mm.reset();
  const auto b = mm.on_touch(0, strided, 1);
  EXPECT_EQ(a.line_misses, (1u << 16) / 64);  // distinct lines only
  // strided: distinct lines + L1 misses (span/stride per walk x walks)
  EXPECT_EQ(b.line_misses, (1u << 16) / 64 + ((1u << 16) / 1024) * 256);
  EXPECT_GT(b.stall, a.stall);
  // Repeats scale the L1 portion of the stall.
  mm.reset();
  TouchOp once = strided;
  once.repeats = 1;
  const auto c = mm.on_touch(0, once, 1);
  EXPECT_GT(b.stall, c.stall);
}

TEST(MemoryModelTest, ResidentWorkingSetHits) {
  const Topology topo = Topology::opteron48();
  std::vector<RegionDef> regions(2);
  regions[1] = {"m", 1 << 24, PagePlacement::FirstTouch, 0};
  MemoryModel mm(topo, regions, 4);
  TouchOp small{1, 0, 64 * 1024, 0, 1};  // fits in 512 KB private cache
  const auto first = mm.on_touch(0, small, 1);
  const auto second = mm.on_touch(0, small, 1);
  EXPECT_GT(first.stall, 0u);
  // Resident now: only the small L1-stream refill remains.
  EXPECT_LT(second.stall, first.stall / 5);
  // A different core has its own cache.
  const auto other = mm.on_touch(1, small, 1);
  EXPECT_GT(other.stall, second.stall);
}

TEST(MemoryModelTest, CacheEvictsBeyondCapacity) {
  const Topology topo = Topology::opteron48();  // 512 KB private
  std::vector<RegionDef> regions(2);
  regions[1] = {"m", 1 << 24, PagePlacement::FirstTouch, 0};
  MemoryModel mm(topo, regions, 1);
  TouchOp big{1, 0, 4 << 20, 0, 1};  // 4 MB >> cache
  mm.on_touch(0, big, 1);
  const auto again = mm.on_touch(0, big, 1);
  // Streaming over 4 MB evicts everything; second pass misses again (LRU
  // with a scan pattern keeps only the tail resident).
  EXPECT_GT(again.stall, 0u);
}

TEST(MemoryModelTest, RemoteNodeCostsMoreThanLocal) {
  const Topology topo = Topology::opteron48();
  std::vector<RegionDef> regions(3);
  regions[1] = {"local", 1 << 24, PagePlacement::FirstTouch, 0};
  regions[2] = {"remote", 1 << 24, PagePlacement::FirstTouch, 7};
  MemoryModel mm(topo, regions, 48);
  TouchOp local{1, 0, 1 << 20, 0, 1};
  TouchOp remote{2, 0, 1 << 20, 0, 1};
  const auto a = mm.on_touch(0, local, 1);   // core 0 is on node 0
  const auto b = mm.on_touch(0, remote, 1);  // node 7 is cross-socket
  EXPECT_GT(b.stall, a.stall);
}

TEST(MemoryModelTest, FirstTouchContentionExceedsRoundRobin) {
  const Topology topo = Topology::opteron48();
  std::vector<RegionDef> regions(3);
  regions[1] = {"ft", 1 << 24, PagePlacement::FirstTouch, 0};
  regions[2] = {"rr", 1 << 24, PagePlacement::RoundRobin, 0};
  MemoryModel mm(topo, regions, 48);
  // Remote core (node 4), all 48 cores active: the first-touch region's
  // single controller is hammered by everyone.
  TouchOp ft{1, 0, 1 << 20, 0, 1};
  TouchOp rr{2, 0, 1 << 20, 0, 1};
  const auto a = mm.on_touch(24, ft, 48);
  const auto b = mm.on_touch(24, rr, 48);
  EXPECT_GT(a.stall, b.stall);
}

TEST(SimulateTest, WorkInflationEmergesUnderFirstTouch) {
  // Tasks repeatedly stream a shared first-touch region: on 1 core the data
  // is local; on 48 cores most accesses are remote + contended, so per-grain
  // execution time inflates.
  Capture cap;
  const auto region =
      cap.alloc_region("shared", 64 << 20, PagePlacement::FirstTouch);
  Program p = cap.run("inflate", [&](Ctx& ctx) {
    for (int i = 0; i < 96; ++i) {
      ctx.spawn(GG_SRC, [&, i](Ctx& c) {
        c.compute(50000);
        c.touch(region, static_cast<u64>(i) * (512 << 10), 512 << 10);
      });
    }
    ctx.taskwait();
  });
  SimOptions o1 = small_opts(1);
  o1.memory_model = true;
  SimOptions o48 = small_opts(48);
  o48.memory_model = true;
  const Trace t1 = simulate(p, o1);
  const Trace t48 = simulate(p, o48);
  // Sum of task fragment durations (execution time, not span).
  auto total_exec = [](const Trace& t) {
    TimeNs total = 0;
    for (const auto& f : t.fragments)
      if (f.task != kRootTask) total += f.end - f.start;
    return total;
  };
  EXPECT_GT(total_exec(t48), total_exec(t1) * 5 / 4);  // >= 25% inflation
}

TEST(SimEngineTest, EndToEndRun) {
  SimOptions o = small_opts(8);
  SimEngine eng(o);
  int computed = 0;
  const Trace t = eng.run("e2e", [&](Ctx& ctx) {
    ctx.spawn(GG_SRC, [&](Ctx& c) {
      computed = 42;
      c.compute(100);
    });
    ctx.taskwait();
  });
  EXPECT_EQ(computed, 42);
  EXPECT_TRUE(validate_trace(t).empty());
  EXPECT_EQ(t.tasks.size(), 2u);
}

}  // namespace
}  // namespace gg::sim
