// Mutation smoke tests: prove the checking harness detects the bug classes
// it claims to detect.
//
// This file is compiled once per seeded mutation (see tests/CMakeLists.txt):
// each mutation binary also compiles its own copies of the schedule
// controller and queue harnesses so the GG_MUT_* macro reaches the mutated
// template instantiations, and asserts that the harness FINDS a violation.
// The unmutated control binary asserts the same scenarios run CLEAN — the
// harness has no false positives.
//
// Seeded bugs (all compile-time, never in production builds):
//   GG_MUT_DEQUE_POP_SKIP_CAS      pop skips the size-1 top CAS -> the owner
//                                  and a racing thief can both get the item
//   GG_MUT_DEQUE_PUSH_PUBLISH_EARLY push publishes bottom before the slot
//                                  write -> thieves read stale/uninit values
//   GG_MUT_DEQUE_GROW_DROP_OLDEST  growth copies all but the oldest entry
//                                  -> values are lost at every resize
//   GG_MUT_CQ_POP_NO_REMOVE        central queue pop doesn't remove ->
//                                  the same value is delivered repeatedly
//   GG_MUT_RECORDER_DROP_FRAGMENT  recorder drops every task's fragment
//                                  seq 1 -> validate_trace seq-contiguity
//   GG_MUT_OF_PUBLISH_BEFORE_WRITE OF deque publishes Ready before the
//                                  value write -> thieves claim unwritten
//                                  cells (bogus zero + lost value)
//   GG_MUT_FC_DROP_COMBINE         FC combiner marks every third push done
//                                  without applying it -> values vanish
//   GG_MUT_TS_NONMONOTONIC_STAMP   stuttering clock hands out latest-1 ->
//                                  stamps collide with the reserved
//                                  "unpublished" sentinel, values lost
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/deque_check.hpp"
#include "support/test_support.hpp"
#include "trace/recorder.hpp"
#include "trace/validate.hpp"

namespace gg {
namespace {

using check::DequeCheckOptions;
using check::Strategy;

/// Sweeps strategies x seeds until the queue harness reports a violation on
/// the given backend. Bounded and deterministic: either some schedule in
/// the sweep exposes the mutant, or the smoke test fails.
bool deque_sweep_finds_violation(
    int thieves, int items, int rounds, int owner_pops, size_t capacity,
    rts::QueueBackend backend = rts::QueueBackend::ChaseLev) {
  for (int s = 0; s < 48; ++s) {
    DequeCheckOptions opts;
    opts.backend = backend;
    opts.schedule.strategy = static_cast<Strategy>(s % 3);
    opts.schedule.seed = test::test_seed() + static_cast<u64>(s);
    opts.num_thieves = thieves;
    opts.items_per_round = items;
    opts.rounds = rounds;
    opts.owner_pops = owner_pops;
    opts.initial_capacity = capacity;
    if (!check_deque(opts).ok()) return true;
  }
  return false;
}

bool cq_sweep_finds_violation() {
  for (int s = 0; s < 24; ++s) {
    DequeCheckOptions opts;
    opts.schedule.strategy = static_cast<Strategy>(s % 3);
    opts.schedule.seed = test::test_seed() + static_cast<u64>(s);
    opts.num_thieves = 1 + s % 2;
    opts.items_per_round = 2;
    opts.rounds = 3;
    if (!check_central_queue(opts).ok()) return true;
  }
  return false;
}

/// Records a 3-fragment task through THIS binary's (possibly mutated)
/// recorder Writer and validates the result. The drop-fragment mutant
/// creates a seq gap that validate_trace's contiguity check must flag.
std::vector<std::string> recorder_roundtrip_violations() {
  TraceRecorder rec(1);
  TraceRecorder::Writer w = rec.writer(0);
  const StrId src = rec.intern("<root>");
  TaskRec root;
  root.uid = 0;
  root.src = src;
  w.task(root);
  TaskRec child;
  child.uid = 1;
  child.parent = 0;
  child.src = src;
  child.create_time = 10;
  w.task(child);
  const TimeNs bounds[][2] = {{0, 10}, {10, 20}, {20, 30}};
  for (u32 seq = 0; seq < 3; ++seq) {
    FragmentRec f;
    f.task = 0;
    f.seq = seq;
    f.start = bounds[seq][0];
    f.end = bounds[seq][1];
    f.end_reason = seq == 0 ? FragmentEnd::Fork
                   : seq == 1 ? FragmentEnd::Join
                              : FragmentEnd::TaskEnd;
    f.end_ref = seq == 0 ? 1 : 0;
    w.fragment(f);
  }
  JoinRec j;
  j.task = 0;
  j.seq = 0;
  j.start = 20;
  j.end = 20;
  w.join(j);
  FragmentRec cf;
  cf.task = 1;
  cf.seq = 0;
  cf.start = 12;
  cf.end = 18;
  w.fragment(cf);
  TraceMeta meta;
  meta.program = "mutation-smoke";
  meta.runtime = "test";
  meta.region_end = 30;
  return validate_trace(rec.finish(std::move(meta)));
}

#if defined(GG_MUT_DEQUE_POP_SKIP_CAS)

TEST(MutationSmoke, DetectsPopSkippingTheCas) {
  // Size-1 rounds keep the owner-pop vs thief-steal race hot; skipping the
  // CAS double-delivers the contested item on some explored schedule.
  EXPECT_TRUE(deque_sweep_finds_violation(/*thieves=*/1, /*items=*/1,
                                          /*rounds=*/12, /*owner_pops=*/1,
                                          /*capacity=*/64))
      << "no explored schedule exposed the skipped pop CAS";
}

#elif defined(GG_MUT_DEQUE_PUSH_PUBLISH_EARLY)

TEST(MutationSmoke, DetectsPublishBeforeWrite) {
  // Thieves racing the publish window read the slot before the owner's
  // store: a stale value from a previous round (duplicate) or an
  // uninitialized slot (bogus).
  EXPECT_TRUE(deque_sweep_finds_violation(/*thieves=*/2, /*items=*/4,
                                          /*rounds=*/8, /*owner_pops=*/1,
                                          /*capacity=*/4))
      << "no explored schedule exposed the early publish";
}

#elif defined(GG_MUT_DEQUE_GROW_DROP_OLDEST)

TEST(MutationSmoke, DetectsValueDroppedDuringGrowth) {
  // Capacity 2 with 16 pushes per round forces growth every round; the
  // mutant loses the oldest live entry at each resize.
  EXPECT_TRUE(deque_sweep_finds_violation(/*thieves=*/1, /*items=*/16,
                                          /*rounds=*/4, /*owner_pops=*/2,
                                          /*capacity=*/2))
      << "growth-time value loss went undetected";
}

#elif defined(GG_MUT_CQ_POP_NO_REMOVE)

TEST(MutationSmoke, DetectsCentralQueuePopWithoutRemove) {
  EXPECT_TRUE(cq_sweep_finds_violation())
      << "repeated delivery from the central queue went undetected";
}

#elif defined(GG_MUT_OF_PUBLISH_BEFORE_WRITE)

TEST(MutationSmoke, DetectsOFDequePublishBeforeWrite) {
  // The mutated push publishes state=Ready (and bumps bottom) before the
  // value store, with a preemption point in the window: a thief scheduled
  // there claims the cell and reads the never-written slot — a bogus zero,
  // plus the owner's late write lands in a Taken cell and is lost.
  EXPECT_TRUE(deque_sweep_finds_violation(/*thieves=*/2, /*items=*/4,
                                          /*rounds=*/8, /*owner_pops=*/1,
                                          /*capacity=*/4,
                                          rts::QueueBackend::OFDeque))
      << "no explored schedule exposed the OF early publish";
}

#elif defined(GG_MUT_FC_DROP_COMBINE)

TEST(MutationSmoke, DetectsFCDequeDroppedCombineSlot) {
  // The mutated combiner completes every third push request without ever
  // applying it to the sequential deque: deterministic value loss the
  // accounting reports on the very first schedule.
  EXPECT_TRUE(deque_sweep_finds_violation(/*thieves=*/1, /*items=*/4,
                                          /*rounds=*/6, /*owner_pops=*/1,
                                          /*capacity=*/64,
                                          rts::QueueBackend::FCDeque))
      << "the dropped combine slot went undetected";
}

#elif defined(GG_MUT_TS_NONMONOTONIC_STAMP)

TEST(MutationSmoke, DetectsTSDequeNonMonotonicStamp) {
  // The mutated clock hands out latest-1 — i.e. 0 forever, colliding with
  // the TS deque's "unpublished" sentinel — so pushed nodes never look
  // ready and every value is reported lost (the bounded steal attempts
  // keep the run terminating).
  EXPECT_TRUE(deque_sweep_finds_violation(/*thieves=*/1, /*items=*/2,
                                          /*rounds=*/4, /*owner_pops=*/1,
                                          /*capacity=*/64,
                                          rts::QueueBackend::TSDeque))
      << "the non-monotonic timestamp went undetected";
}

#elif defined(GG_MUT_RECORDER_DROP_FRAGMENT)

TEST(MutationSmoke, DetectsDroppedFragmentRecord) {
  const std::vector<std::string> violations = recorder_roundtrip_violations();
  ASSERT_FALSE(violations.empty())
      << "validate_trace accepted a trace with a dropped fragment";
  bool mentions_seq = false;
  for (const std::string& v : violations) {
    if (v.find("seq") != std::string::npos) mentions_seq = true;
  }
  EXPECT_TRUE(mentions_seq) << violations.front();
}

#else  // unmutated control build

TEST(MutationSmoke, CleanDequeScenariosHaveNoFalsePositives) {
  // Every backend runs the same scenarios the mutation binaries use to
  // expose their seeded bugs; unmutated, all of them must come back clean.
  for (const rts::QueueBackend b : rts::kAllQueueBackends) {
    EXPECT_FALSE(deque_sweep_finds_violation(1, 1, 12, 1, 64, b))
        << rts::to_string(b);
    EXPECT_FALSE(deque_sweep_finds_violation(2, 4, 8, 1, 4, b))
        << rts::to_string(b);
    EXPECT_FALSE(deque_sweep_finds_violation(1, 16, 4, 2, 2, b))
        << rts::to_string(b);
  }
}

TEST(MutationSmoke, CleanCentralQueueHasNoFalsePositives) {
  EXPECT_FALSE(cq_sweep_finds_violation());
}

TEST(MutationSmoke, CleanRecorderRoundTripValidates) {
  const std::vector<std::string> violations = recorder_roundtrip_violations();
  EXPECT_TRUE(violations.empty()) << violations.front();
}

#endif

}  // namespace
}  // namespace gg
