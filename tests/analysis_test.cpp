#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.hpp"

#include "analysis/binpack.hpp"
#include "analysis/problems.hpp"
#include "analysis/report.hpp"
#include "analysis/source_profile.hpp"
#include "analysis/timeline.hpp"
#include "sim/capture.hpp"
#include "sim/des.hpp"

namespace gg {
namespace {

using front::Ctx;
using front::ForOpts;

struct SimRun {
  Trace trace;
  Analysis analysis;
};

SimRun analyze_sim(const sim::Program& p, int cores, bool memory = false) {
  sim::SimOptions o;
  o.num_cores = cores;
  o.memory_model = memory;
  Trace t = sim::simulate(p, o);
  Analysis a = analyze(t, Topology::opteron48());
  return SimRun{std::move(t), std::move(a)};
}

// ---------------------------------------------------------------------------
// Problem highlighting

TEST(ProblemsTest, DefaultsMatchPaper) {
  const ProblemThresholds t =
      ProblemThresholds::defaults(48, Topology::opteron48());
  EXPECT_DOUBLE_EQ(t.parallel_benefit_min, 1.0);
  EXPECT_DOUBLE_EQ(t.work_deviation_max, 2.0);
  EXPECT_DOUBLE_EQ(t.mem_util_min, 2.0);
  EXPECT_EQ(t.min_parallelism, 48);
  EXPECT_EQ(t.scatter_max, 16);  // same-socket distance; beyond = off-socket
}

TEST(ProblemsTest, TinyGrainsFlaggedForLowBenefit) {
  const sim::Program p = sim::capture_program("tiny", [](Ctx& ctx) {
    for (int i = 0; i < 20; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(10); });
    ctx.taskwait();
  });
  const SimRun r = analyze_sim(p, 4);
  const auto& v = r.analysis.problems[static_cast<size_t>(
      Problem::LowParallelBenefit)];
  EXPECT_EQ(v.flagged_count, 20u);
  EXPECT_DOUBLE_EQ(v.flagged_percent, 100.0);
  for (double s : v.severity) EXPECT_GT(s, 0.5);  // benefit << 1 -> severe
}

TEST(ProblemsTest, BigGrainsNotFlagged) {
  const sim::Program p = sim::capture_program("big", [](Ctx& ctx) {
    for (int i = 0; i < 20; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(50'000'000); });
    ctx.taskwait();
  });
  const SimRun r = analyze_sim(p, 4);
  const auto& v = r.analysis.problems[static_cast<size_t>(
      Problem::LowParallelBenefit)];
  EXPECT_EQ(v.flagged_count, 0u);
}

TEST(ProblemsTest, SeverityColorGradient) {
  EXPECT_EQ(severity_color(1.0), "#ff0000");
  EXPECT_EQ(severity_color(0.0), "#ffe000");
  const std::string mid = severity_color(0.5);
  EXPECT_EQ(mid.substr(0, 3), "#ff");
  EXPECT_EQ(dimmed_color(), "#d9d9d9");
}

TEST(ProblemsTest, LowParallelismUsesCoreCount) {
  // Serial chain on 48 cores: every grain has parallelism ~1 < 48.
  const sim::Program p = sim::capture_program("chain", [](Ctx& ctx) {
    for (int i = 0; i < 8; ++i) {
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(2'000'000); });
      ctx.taskwait();
    }
  });
  const SimRun r = analyze_sim(p, 48);
  const auto& v =
      r.analysis.problems[static_cast<size_t>(Problem::LowParallelism)];
  EXPECT_EQ(v.flagged_count, 8u);
}

// ---------------------------------------------------------------------------
// Source profile

TEST(SourceProfileTest, GroupsByDefinitionAndSorts) {
  const sim::Program p = sim::capture_program("mix", [](Ctx& ctx) {
    for (int i = 0; i < 30; ++i)
      ctx.spawn(GG_SRC_NAMED("app.c", 10, "many_small"),
                [](Ctx& c) { c.compute(100); });
    for (int i = 0; i < 3; ++i)
      ctx.spawn(GG_SRC_NAMED("app.c", 20, "few_big"),
                [](Ctx& c) { c.compute(80'000'000); });
    ctx.taskwait();
  });
  const SimRun r = analyze_sim(p, 4);
  ASSERT_EQ(r.analysis.sources.size(), 2u);
  // Sorted by creation count: many_small first.
  EXPECT_EQ(r.analysis.sources[0].source, "app.c:10(many_small)");
  EXPECT_EQ(r.analysis.sources[0].grain_count, 30u);
  EXPECT_GT(r.analysis.sources[0].low_benefit_percent, 99.0);
  EXPECT_EQ(r.analysis.sources[1].grain_count, 3u);
  EXPECT_GT(r.analysis.sources[1].work_share, 0.99);
  // Re-sort by work share flips the order.
  MetricsResult& m = const_cast<MetricsResult&>(r.analysis.metrics);
  const auto rows2 =
      source_profile(r.trace, r.analysis.grains, m, r.analysis.thresholds,
                     SourceSort::ByWorkShare);
  EXPECT_EQ(rows2[0].source, "app.c:20(few_big)");
}

// ---------------------------------------------------------------------------
// Bin packing

TEST(BinPackTest, ExactSmallCases) {
  EXPECT_EQ(min_bins({5, 5, 5, 5}, 10).bins, 2);
  EXPECT_EQ(min_bins({5, 5, 5, 5}, 10).exact, true);
  EXPECT_EQ(min_bins({6, 6, 6}, 10).bins, 3);
  EXPECT_EQ(min_bins({3, 3, 3, 3}, 12).bins, 1);
  EXPECT_EQ(min_bins({}, 10).bins, 0);
}

TEST(BinPackTest, BeatsNaiveFfdWhenExactHelps) {
  // FFD packs {6,5,5,4,4,4,2} into capacity 15 as [6,5,4][5,4,4,2] = 2 bins
  // already optimal; try a case where FFD needs 3 but optimal is 2? Classic:
  // items {4,4,4,3,3,3} cap 10: FFD -> [4,4][4,3,3][3] = 3 bins; optimal
  // [4,3,3][4,3]... also 3? Use known example: {7,6,3,2,2} cap 10:
  // FFD: [7,3][6,2,2] = 2, optimal 2. Verify lower bound logic instead.
  const auto r = min_bins({7, 6, 3, 2, 2}, 10);
  EXPECT_EQ(r.bins, 2);
  EXPECT_TRUE(r.exact);
  EXPECT_LE(r.max_bin_load, 10u);
}

TEST(BinPackTest, MinCoresForMakespan) {
  // 10 items of 10 with makespan 25: each core fits 2 (20), so 5 cores.
  std::vector<u64> items(10, 10);
  EXPECT_EQ(min_cores_for_makespan(items, 25), 5);
  // Makespan 100 fits everything on one core.
  EXPECT_EQ(min_cores_for_makespan(items, 100), 1);
}

TEST(BinPackTest, ZeroItemsIgnored) {
  EXPECT_EQ(min_bins({0, 0, 5}, 5).bins, 1);
}

TEST(BinPackTest, FreqmineStyleSkewedChunks) {
  // A few huge chunks and many small ones: the biggest chunk pins the
  // makespan and the rest packs into few cores — the paper's 48 -> 7 story.
  std::vector<u64> chunks;
  Xoshiro256 rng(7);
  for (int i = 0; i < 1292; ++i)
    chunks.push_back(static_cast<u64>(rng.pareto(1000.0, 1.2)));
  std::sort(chunks.begin(), chunks.end(), std::greater<>());
  const u64 makespan = chunks.front();  // LB >> 1 situation
  const int cores = min_cores_for_makespan(chunks, makespan);
  EXPECT_GE(cores, 2);
  EXPECT_LT(cores, 48);
}

// ---------------------------------------------------------------------------
// Timeline foil

TEST(TimelineTest, AccountsBusyOverheadIdle) {
  const sim::Program p = sim::capture_program("fan", [](Ctx& ctx) {
    for (int i = 0; i < 16; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(5'000'000); });
    ctx.taskwait();
  });
  sim::SimOptions o;
  o.num_cores = 4;
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  const TimelineView v = thread_timeline(t, 32);
  ASSERT_EQ(v.threads.size(), 4u);
  ASSERT_EQ(v.strips.size(), 4u);
  for (const auto& th : v.threads) {
    EXPECT_GT(th.busy, 0u);
    EXPECT_NEAR(th.busy_percent + th.overhead_percent + th.idle_percent,
                100.0, 1.0);
  }
  for (const auto& s : v.strips) {
    EXPECT_EQ(s.size(), 32u);
    EXPECT_NE(s.find('#'), std::string::npos);
  }
  EXPECT_GE(v.imbalance, 1.0);
}

TEST(TimelineTest, ImbalanceVisibleButUninformative) {
  // One huge task + tiny tasks: the timeline shows imbalance (the paper's
  // point: that is ALL it shows).
  const sim::Program p = sim::capture_program("imb", [](Ctx& ctx) {
    ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(100'000'000); });
    for (int i = 0; i < 8; ++i)
      ctx.spawn(GG_SRC, [](Ctx& c) { c.compute(500'000); });
    ctx.taskwait();
  });
  sim::SimOptions o;
  o.num_cores = 8;
  o.memory_model = false;
  const Trace t = sim::simulate(p, o);
  const TimelineView v = thread_timeline(t);
  EXPECT_GT(v.imbalance, 3.0);
}

// ---------------------------------------------------------------------------
// Full pipeline + report

TEST(ReportTest, AnalyzeAndRender) {
  const sim::Program p = sim::capture_program("demo", [](Ctx& ctx) {
    for (int i = 0; i < 12; ++i)
      ctx.spawn(GG_SRC_NAMED("demo.c", 5, "work"),
                [i](Ctx& c) { c.compute(1'000'000 + 100'000 * i); });
    ctx.taskwait();
  });
  const SimRun r = analyze_sim(p, 8);
  const std::string report = render_report(r.trace, r.analysis);
  EXPECT_NE(report.find("demo"), std::string::npos);
  EXPECT_NE(report.find("makespan"), std::string::npos);
  EXPECT_NE(report.find("critical path"), std::string::npos);
  EXPECT_NE(report.find("demo.c:5(work)"), std::string::npos);
  EXPECT_NE(report.find("low parallel benefit"), std::string::npos);
  EXPECT_EQ(r.analysis.grains.size(), 12u);
}

TEST(ReportTest, BaselineEnablesWorkDeviation) {
  sim::Capture cap;
  const auto region = cap.alloc_region("data", 128 << 20,
                                       front::PagePlacement::FirstTouch);
  sim::Program p = cap.run("dev", [&](Ctx& ctx) {
    for (int i = 0; i < 48; ++i) {
      ctx.spawn(GG_SRC, [&, i](Ctx& c) {
        c.compute(100'000);
        c.touch(region, static_cast<u64>(i) << 20, 1 << 20);
      });
    }
    ctx.taskwait();
  });
  sim::SimOptions o1;
  o1.num_cores = 1;
  const Trace t1 = sim::simulate(p, o1);
  const GrainTable base = GrainTable::build(t1);
  sim::SimOptions o48;
  o48.num_cores = 48;
  const Trace t48 = sim::simulate(p, o48);
  AnalysisOptions ao;
  ao.baseline = &base;
  const Analysis a = analyze(t48, Topology::opteron48(), ao);
  size_t with_dev = 0;
  for (const auto& m : a.metrics.per_grain)
    if (!std::isnan(m.work_deviation)) ++with_dev;
  EXPECT_EQ(with_dev, a.grains.size());
}

}  // namespace
}  // namespace gg
