file(REMOVE_RECURSE
  "CMakeFiles/compare_test.dir/compare_test.cpp.o"
  "CMakeFiles/compare_test.dir/compare_test.cpp.o.d"
  "compare_test"
  "compare_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
