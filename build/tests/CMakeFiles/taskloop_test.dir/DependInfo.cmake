
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/taskloop_test.cpp" "tests/CMakeFiles/taskloop_test.dir/taskloop_test.cpp.o" "gcc" "tests/CMakeFiles/taskloop_test.dir/taskloop_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rts/CMakeFiles/gg_rts.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/front/CMakeFiles/gg_front.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gg_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
