# Empty compiler generated dependencies file for taskloop_test.
# This may be replaced when dependencies are built.
