file(REMOVE_RECURSE
  "CMakeFiles/taskloop_test.dir/taskloop_test.cpp.o"
  "CMakeFiles/taskloop_test.dir/taskloop_test.cpp.o.d"
  "taskloop_test"
  "taskloop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskloop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
