file(REMOVE_RECURSE
  "CMakeFiles/depend_test.dir/depend_test.cpp.o"
  "CMakeFiles/depend_test.dir/depend_test.cpp.o.d"
  "depend_test"
  "depend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/depend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
