# Empty dependencies file for depend_test.
# This may be replaced when dependencies are built.
