file(REMOVE_RECURSE
  "CMakeFiles/fidelity_test.dir/fidelity_test.cpp.o"
  "CMakeFiles/fidelity_test.dir/fidelity_test.cpp.o.d"
  "fidelity_test"
  "fidelity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fidelity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
