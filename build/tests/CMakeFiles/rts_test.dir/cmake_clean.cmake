file(REMOVE_RECURSE
  "CMakeFiles/rts_test.dir/rts_test.cpp.o"
  "CMakeFiles/rts_test.dir/rts_test.cpp.o.d"
  "rts_test"
  "rts_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rts_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
