# Empty dependencies file for rts_test.
# This may be replaced when dependencies are built.
