# Empty compiler generated dependencies file for recommend_test.
# This may be replaced when dependencies are built.
