file(REMOVE_RECURSE
  "CMakeFiles/recommend_test.dir/recommend_test.cpp.o"
  "CMakeFiles/recommend_test.dir/recommend_test.cpp.o.d"
  "recommend_test"
  "recommend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
