# Empty dependencies file for ablation_reductions.
# This may be replaced when dependencies are built.
