file(REMOVE_RECURSE
  "CMakeFiles/ablation_reductions.dir/bench/ablation_reductions.cpp.o"
  "CMakeFiles/ablation_reductions.dir/bench/ablation_reductions.cpp.o.d"
  "bench/ablation_reductions"
  "bench/ablation_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
