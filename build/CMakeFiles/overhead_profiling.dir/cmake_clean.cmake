file(REMOVE_RECURSE
  "CMakeFiles/overhead_profiling.dir/bench/overhead_profiling.cpp.o"
  "CMakeFiles/overhead_profiling.dir/bench/overhead_profiling.cpp.o.d"
  "bench/overhead_profiling"
  "bench/overhead_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
