# Empty compiler generated dependencies file for fig06_botsspar.
# This may be replaced when dependencies are built.
