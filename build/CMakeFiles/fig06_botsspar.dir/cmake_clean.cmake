file(REMOVE_RECURSE
  "CMakeFiles/fig06_botsspar.dir/bench/fig06_botsspar.cpp.o"
  "CMakeFiles/fig06_botsspar.dir/bench/fig06_botsspar.cpp.o.d"
  "bench/fig06_botsspar"
  "bench/fig06_botsspar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_botsspar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
