# Empty dependencies file for fig08_fft_memutil.
# This may be replaced when dependencies are built.
