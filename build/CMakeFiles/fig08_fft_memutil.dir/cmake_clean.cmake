file(REMOVE_RECURSE
  "CMakeFiles/fig08_fft_memutil.dir/bench/fig08_fft_memutil.cpp.o"
  "CMakeFiles/fig08_fft_memutil.dir/bench/fig08_fft_memutil.cpp.o.d"
  "bench/fig08_fft_memutil"
  "bench/fig08_fft_memutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_fft_memutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
