# Empty compiler generated dependencies file for gg_bench_support.
# This may be replaced when dependencies are built.
