file(REMOVE_RECURSE
  "libgg_bench_support.a"
)
