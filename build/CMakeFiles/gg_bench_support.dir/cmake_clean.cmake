file(REMOVE_RECURSE
  "CMakeFiles/gg_bench_support.dir/bench/support/bench_support.cpp.o"
  "CMakeFiles/gg_bench_support.dir/bench/support/bench_support.cpp.o.d"
  "libgg_bench_support.a"
  "libgg_bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
