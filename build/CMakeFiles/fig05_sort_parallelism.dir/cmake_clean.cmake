file(REMOVE_RECURSE
  "CMakeFiles/fig05_sort_parallelism.dir/bench/fig05_sort_parallelism.cpp.o"
  "CMakeFiles/fig05_sort_parallelism.dir/bench/fig05_sort_parallelism.cpp.o.d"
  "bench/fig05_sort_parallelism"
  "bench/fig05_sort_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_sort_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
