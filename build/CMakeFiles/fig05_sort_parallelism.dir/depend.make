# Empty dependencies file for fig05_sort_parallelism.
# This may be replaced when dependencies are built.
