# Empty dependencies file for fig04_timeline_foil.
# This may be replaced when dependencies are built.
