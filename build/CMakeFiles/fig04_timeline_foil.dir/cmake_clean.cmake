file(REMOVE_RECURSE
  "CMakeFiles/fig04_timeline_foil.dir/bench/fig04_timeline_foil.cpp.o"
  "CMakeFiles/fig04_timeline_foil.dir/bench/fig04_timeline_foil.cpp.o.d"
  "bench/fig04_timeline_foil"
  "bench/fig04_timeline_foil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_timeline_foil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
