# Empty compiler generated dependencies file for fig11_strassen.
# This may be replaced when dependencies are built.
