file(REMOVE_RECURSE
  "CMakeFiles/fig11_strassen.dir/bench/fig11_strassen.cpp.o"
  "CMakeFiles/fig11_strassen.dir/bench/fig11_strassen.cpp.o.d"
  "bench/fig11_strassen"
  "bench/fig11_strassen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_strassen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
