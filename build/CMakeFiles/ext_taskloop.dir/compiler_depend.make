# Empty compiler generated dependencies file for ext_taskloop.
# This may be replaced when dependencies are built.
