file(REMOVE_RECURSE
  "CMakeFiles/ext_taskloop.dir/bench/ext_taskloop.cpp.o"
  "CMakeFiles/ext_taskloop.dir/bench/ext_taskloop.cpp.o.d"
  "bench/ext_taskloop"
  "bench/ext_taskloop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_taskloop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
