# Empty dependencies file for tab1_freqmine.
# This may be replaced when dependencies are built.
