file(REMOVE_RECURSE
  "CMakeFiles/tab1_freqmine.dir/bench/tab1_freqmine.cpp.o"
  "CMakeFiles/tab1_freqmine.dir/bench/tab1_freqmine.cpp.o.d"
  "bench/tab1_freqmine"
  "bench/tab1_freqmine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_freqmine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
