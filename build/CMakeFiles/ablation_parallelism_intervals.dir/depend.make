# Empty dependencies file for ablation_parallelism_intervals.
# This may be replaced when dependencies are built.
