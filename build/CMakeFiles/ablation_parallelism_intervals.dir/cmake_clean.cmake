file(REMOVE_RECURSE
  "CMakeFiles/ablation_parallelism_intervals.dir/bench/ablation_parallelism_intervals.cpp.o"
  "CMakeFiles/ablation_parallelism_intervals.dir/bench/ablation_parallelism_intervals.cpp.o.d"
  "bench/ablation_parallelism_intervals"
  "bench/ablation_parallelism_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallelism_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
