file(REMOVE_RECURSE
  "CMakeFiles/other_benchmarks.dir/bench/other_benchmarks.cpp.o"
  "CMakeFiles/other_benchmarks.dir/bench/other_benchmarks.cpp.o.d"
  "bench/other_benchmarks"
  "bench/other_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/other_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
