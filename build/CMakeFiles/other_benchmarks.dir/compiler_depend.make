# Empty compiler generated dependencies file for other_benchmarks.
# This may be replaced when dependencies are built.
