file(REMOVE_RECURSE
  "CMakeFiles/fig10_freqmine_lb.dir/bench/fig10_freqmine_lb.cpp.o"
  "CMakeFiles/fig10_freqmine_lb.dir/bench/fig10_freqmine_lb.cpp.o.d"
  "bench/fig10_freqmine_lb"
  "bench/fig10_freqmine_lb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_freqmine_lb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
