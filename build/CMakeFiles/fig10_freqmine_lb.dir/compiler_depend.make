# Empty compiler generated dependencies file for fig10_freqmine_lb.
# This may be replaced when dependencies are built.
