file(REMOVE_RECURSE
  "CMakeFiles/fig02_kdtree_graph.dir/bench/fig02_kdtree_graph.cpp.o"
  "CMakeFiles/fig02_kdtree_graph.dir/bench/fig02_kdtree_graph.cpp.o.d"
  "bench/fig02_kdtree_graph"
  "bench/fig02_kdtree_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_kdtree_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
