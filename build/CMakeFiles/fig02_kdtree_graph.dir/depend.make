# Empty dependencies file for fig02_kdtree_graph.
# This may be replaced when dependencies are built.
