file(REMOVE_RECURSE
  "CMakeFiles/fig01_speedup.dir/bench/fig01_speedup.cpp.o"
  "CMakeFiles/fig01_speedup.dir/bench/fig01_speedup.cpp.o.d"
  "bench/fig01_speedup"
  "bench/fig01_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
