# Empty compiler generated dependencies file for fig01_speedup.
# This may be replaced when dependencies are built.
