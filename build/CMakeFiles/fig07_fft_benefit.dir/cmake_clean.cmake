file(REMOVE_RECURSE
  "CMakeFiles/fig07_fft_benefit.dir/bench/fig07_fft_benefit.cpp.o"
  "CMakeFiles/fig07_fft_benefit.dir/bench/fig07_fft_benefit.cpp.o.d"
  "bench/fig07_fft_benefit"
  "bench/fig07_fft_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fft_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
