# Empty compiler generated dependencies file for fig07_fft_benefit.
# This may be replaced when dependencies are built.
