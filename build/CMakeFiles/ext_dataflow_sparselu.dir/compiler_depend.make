# Empty compiler generated dependencies file for ext_dataflow_sparselu.
# This may be replaced when dependencies are built.
