file(REMOVE_RECURSE
  "CMakeFiles/ext_dataflow_sparselu.dir/bench/ext_dataflow_sparselu.cpp.o"
  "CMakeFiles/ext_dataflow_sparselu.dir/bench/ext_dataflow_sparselu.cpp.o.d"
  "bench/ext_dataflow_sparselu"
  "bench/ext_dataflow_sparselu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dataflow_sparselu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
