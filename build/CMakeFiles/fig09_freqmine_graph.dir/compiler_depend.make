# Empty compiler generated dependencies file for fig09_freqmine_graph.
# This may be replaced when dependencies are built.
