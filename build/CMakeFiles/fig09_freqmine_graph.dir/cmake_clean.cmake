file(REMOVE_RECURSE
  "CMakeFiles/fig09_freqmine_graph.dir/bench/fig09_freqmine_graph.cpp.o"
  "CMakeFiles/fig09_freqmine_graph.dir/bench/fig09_freqmine_graph.cpp.o.d"
  "bench/fig09_freqmine_graph"
  "bench/fig09_freqmine_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_freqmine_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
