# Empty dependencies file for tab_sort_inflation.
# This may be replaced when dependencies are built.
