file(REMOVE_RECURSE
  "CMakeFiles/tab_sort_inflation.dir/bench/tab_sort_inflation.cpp.o"
  "CMakeFiles/tab_sort_inflation.dir/bench/tab_sort_inflation.cpp.o.d"
  "bench/tab_sort_inflation"
  "bench/tab_sort_inflation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_sort_inflation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
