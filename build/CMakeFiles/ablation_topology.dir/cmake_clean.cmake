file(REMOVE_RECURSE
  "CMakeFiles/ablation_topology.dir/bench/ablation_topology.cpp.o"
  "CMakeFiles/ablation_topology.dir/bench/ablation_topology.cpp.o.d"
  "bench/ablation_topology"
  "bench/ablation_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
