# Empty compiler generated dependencies file for ablation_topology.
# This may be replaced when dependencies are built.
