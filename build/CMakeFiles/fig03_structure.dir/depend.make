# Empty dependencies file for fig03_structure.
# This may be replaced when dependencies are built.
