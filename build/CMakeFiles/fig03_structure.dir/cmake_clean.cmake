file(REMOVE_RECURSE
  "CMakeFiles/fig03_structure.dir/bench/fig03_structure.cpp.o"
  "CMakeFiles/fig03_structure.dir/bench/fig03_structure.cpp.o.d"
  "bench/fig03_structure"
  "bench/fig03_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
