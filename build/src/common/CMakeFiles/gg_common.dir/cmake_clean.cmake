file(REMOVE_RECURSE
  "CMakeFiles/gg_common.dir/stats.cpp.o"
  "CMakeFiles/gg_common.dir/stats.cpp.o.d"
  "CMakeFiles/gg_common.dir/strings.cpp.o"
  "CMakeFiles/gg_common.dir/strings.cpp.o.d"
  "CMakeFiles/gg_common.dir/table.cpp.o"
  "CMakeFiles/gg_common.dir/table.cpp.o.d"
  "libgg_common.a"
  "libgg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
