file(REMOVE_RECURSE
  "libgg_common.a"
)
