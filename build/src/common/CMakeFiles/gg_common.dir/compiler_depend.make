# Empty compiler generated dependencies file for gg_common.
# This may be replaced when dependencies are built.
