file(REMOVE_RECURSE
  "CMakeFiles/gg_rts.dir/threaded_engine.cpp.o"
  "CMakeFiles/gg_rts.dir/threaded_engine.cpp.o.d"
  "libgg_rts.a"
  "libgg_rts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_rts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
