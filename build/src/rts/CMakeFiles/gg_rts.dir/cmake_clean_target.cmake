file(REMOVE_RECURSE
  "libgg_rts.a"
)
