# Empty compiler generated dependencies file for gg_rts.
# This may be replaced when dependencies are built.
