# Empty compiler generated dependencies file for gg_trace.
# This may be replaced when dependencies are built.
