file(REMOVE_RECURSE
  "libgg_trace.a"
)
