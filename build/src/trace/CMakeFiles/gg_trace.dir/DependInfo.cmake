
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/recorder.cpp" "src/trace/CMakeFiles/gg_trace.dir/recorder.cpp.o" "gcc" "src/trace/CMakeFiles/gg_trace.dir/recorder.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/trace/CMakeFiles/gg_trace.dir/serialize.cpp.o" "gcc" "src/trace/CMakeFiles/gg_trace.dir/serialize.cpp.o.d"
  "/root/repo/src/trace/trace.cpp" "src/trace/CMakeFiles/gg_trace.dir/trace.cpp.o" "gcc" "src/trace/CMakeFiles/gg_trace.dir/trace.cpp.o.d"
  "/root/repo/src/trace/validate.cpp" "src/trace/CMakeFiles/gg_trace.dir/validate.cpp.o" "gcc" "src/trace/CMakeFiles/gg_trace.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gg_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
