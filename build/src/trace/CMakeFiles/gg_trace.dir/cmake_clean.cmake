file(REMOVE_RECURSE
  "CMakeFiles/gg_trace.dir/recorder.cpp.o"
  "CMakeFiles/gg_trace.dir/recorder.cpp.o.d"
  "CMakeFiles/gg_trace.dir/serialize.cpp.o"
  "CMakeFiles/gg_trace.dir/serialize.cpp.o.d"
  "CMakeFiles/gg_trace.dir/trace.cpp.o"
  "CMakeFiles/gg_trace.dir/trace.cpp.o.d"
  "CMakeFiles/gg_trace.dir/validate.cpp.o"
  "CMakeFiles/gg_trace.dir/validate.cpp.o.d"
  "libgg_trace.a"
  "libgg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
