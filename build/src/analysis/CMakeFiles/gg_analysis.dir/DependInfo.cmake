
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/binpack.cpp" "src/analysis/CMakeFiles/gg_analysis.dir/binpack.cpp.o" "gcc" "src/analysis/CMakeFiles/gg_analysis.dir/binpack.cpp.o.d"
  "/root/repo/src/analysis/compare.cpp" "src/analysis/CMakeFiles/gg_analysis.dir/compare.cpp.o" "gcc" "src/analysis/CMakeFiles/gg_analysis.dir/compare.cpp.o.d"
  "/root/repo/src/analysis/problems.cpp" "src/analysis/CMakeFiles/gg_analysis.dir/problems.cpp.o" "gcc" "src/analysis/CMakeFiles/gg_analysis.dir/problems.cpp.o.d"
  "/root/repo/src/analysis/recommend.cpp" "src/analysis/CMakeFiles/gg_analysis.dir/recommend.cpp.o" "gcc" "src/analysis/CMakeFiles/gg_analysis.dir/recommend.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/gg_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/gg_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/source_profile.cpp" "src/analysis/CMakeFiles/gg_analysis.dir/source_profile.cpp.o" "gcc" "src/analysis/CMakeFiles/gg_analysis.dir/source_profile.cpp.o.d"
  "/root/repo/src/analysis/timeline.cpp" "src/analysis/CMakeFiles/gg_analysis.dir/timeline.cpp.o" "gcc" "src/analysis/CMakeFiles/gg_analysis.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/metrics/CMakeFiles/gg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gg_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
