# Empty dependencies file for gg_analysis.
# This may be replaced when dependencies are built.
