file(REMOVE_RECURSE
  "libgg_analysis.a"
)
