file(REMOVE_RECURSE
  "CMakeFiles/gg_analysis.dir/binpack.cpp.o"
  "CMakeFiles/gg_analysis.dir/binpack.cpp.o.d"
  "CMakeFiles/gg_analysis.dir/compare.cpp.o"
  "CMakeFiles/gg_analysis.dir/compare.cpp.o.d"
  "CMakeFiles/gg_analysis.dir/problems.cpp.o"
  "CMakeFiles/gg_analysis.dir/problems.cpp.o.d"
  "CMakeFiles/gg_analysis.dir/recommend.cpp.o"
  "CMakeFiles/gg_analysis.dir/recommend.cpp.o.d"
  "CMakeFiles/gg_analysis.dir/report.cpp.o"
  "CMakeFiles/gg_analysis.dir/report.cpp.o.d"
  "CMakeFiles/gg_analysis.dir/source_profile.cpp.o"
  "CMakeFiles/gg_analysis.dir/source_profile.cpp.o.d"
  "CMakeFiles/gg_analysis.dir/timeline.cpp.o"
  "CMakeFiles/gg_analysis.dir/timeline.cpp.o.d"
  "libgg_analysis.a"
  "libgg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
