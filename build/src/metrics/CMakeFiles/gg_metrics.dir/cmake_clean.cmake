file(REMOVE_RECURSE
  "CMakeFiles/gg_metrics.dir/critical_path.cpp.o"
  "CMakeFiles/gg_metrics.dir/critical_path.cpp.o.d"
  "CMakeFiles/gg_metrics.dir/metrics.cpp.o"
  "CMakeFiles/gg_metrics.dir/metrics.cpp.o.d"
  "libgg_metrics.a"
  "libgg_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
