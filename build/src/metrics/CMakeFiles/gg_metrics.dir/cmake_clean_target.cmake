file(REMOVE_RECURSE
  "libgg_metrics.a"
)
