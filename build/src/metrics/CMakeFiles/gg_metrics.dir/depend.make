# Empty dependencies file for gg_metrics.
# This may be replaced when dependencies are built.
