
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/grain_graph.cpp" "src/graph/CMakeFiles/gg_graph.dir/grain_graph.cpp.o" "gcc" "src/graph/CMakeFiles/gg_graph.dir/grain_graph.cpp.o.d"
  "/root/repo/src/graph/grain_table.cpp" "src/graph/CMakeFiles/gg_graph.dir/grain_table.cpp.o" "gcc" "src/graph/CMakeFiles/gg_graph.dir/grain_table.cpp.o.d"
  "/root/repo/src/graph/reductions.cpp" "src/graph/CMakeFiles/gg_graph.dir/reductions.cpp.o" "gcc" "src/graph/CMakeFiles/gg_graph.dir/reductions.cpp.o.d"
  "/root/repo/src/graph/summarize.cpp" "src/graph/CMakeFiles/gg_graph.dir/summarize.cpp.o" "gcc" "src/graph/CMakeFiles/gg_graph.dir/summarize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/gg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gg_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
