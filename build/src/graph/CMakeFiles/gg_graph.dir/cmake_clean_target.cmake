file(REMOVE_RECURSE
  "libgg_graph.a"
)
