# Empty dependencies file for gg_graph.
# This may be replaced when dependencies are built.
