file(REMOVE_RECURSE
  "CMakeFiles/gg_graph.dir/grain_graph.cpp.o"
  "CMakeFiles/gg_graph.dir/grain_graph.cpp.o.d"
  "CMakeFiles/gg_graph.dir/grain_table.cpp.o"
  "CMakeFiles/gg_graph.dir/grain_table.cpp.o.d"
  "CMakeFiles/gg_graph.dir/reductions.cpp.o"
  "CMakeFiles/gg_graph.dir/reductions.cpp.o.d"
  "CMakeFiles/gg_graph.dir/summarize.cpp.o"
  "CMakeFiles/gg_graph.dir/summarize.cpp.o.d"
  "libgg_graph.a"
  "libgg_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
