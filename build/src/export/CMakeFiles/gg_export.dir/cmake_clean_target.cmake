file(REMOVE_RECURSE
  "libgg_export.a"
)
