
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/export/chrome_trace.cpp" "src/export/CMakeFiles/gg_export.dir/chrome_trace.cpp.o" "gcc" "src/export/CMakeFiles/gg_export.dir/chrome_trace.cpp.o.d"
  "/root/repo/src/export/dot.cpp" "src/export/CMakeFiles/gg_export.dir/dot.cpp.o" "gcc" "src/export/CMakeFiles/gg_export.dir/dot.cpp.o.d"
  "/root/repo/src/export/grain_csv.cpp" "src/export/CMakeFiles/gg_export.dir/grain_csv.cpp.o" "gcc" "src/export/CMakeFiles/gg_export.dir/grain_csv.cpp.o.d"
  "/root/repo/src/export/graphml.cpp" "src/export/CMakeFiles/gg_export.dir/graphml.cpp.o" "gcc" "src/export/CMakeFiles/gg_export.dir/graphml.cpp.o.d"
  "/root/repo/src/export/html_report.cpp" "src/export/CMakeFiles/gg_export.dir/html_report.cpp.o" "gcc" "src/export/CMakeFiles/gg_export.dir/html_report.cpp.o.d"
  "/root/repo/src/export/json_summary.cpp" "src/export/CMakeFiles/gg_export.dir/json_summary.cpp.o" "gcc" "src/export/CMakeFiles/gg_export.dir/json_summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/gg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/gg_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gg_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gg_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
