# Empty dependencies file for gg_export.
# This may be replaced when dependencies are built.
