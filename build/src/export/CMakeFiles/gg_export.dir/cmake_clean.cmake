file(REMOVE_RECURSE
  "CMakeFiles/gg_export.dir/chrome_trace.cpp.o"
  "CMakeFiles/gg_export.dir/chrome_trace.cpp.o.d"
  "CMakeFiles/gg_export.dir/dot.cpp.o"
  "CMakeFiles/gg_export.dir/dot.cpp.o.d"
  "CMakeFiles/gg_export.dir/grain_csv.cpp.o"
  "CMakeFiles/gg_export.dir/grain_csv.cpp.o.d"
  "CMakeFiles/gg_export.dir/graphml.cpp.o"
  "CMakeFiles/gg_export.dir/graphml.cpp.o.d"
  "CMakeFiles/gg_export.dir/html_report.cpp.o"
  "CMakeFiles/gg_export.dir/html_report.cpp.o.d"
  "CMakeFiles/gg_export.dir/json_summary.cpp.o"
  "CMakeFiles/gg_export.dir/json_summary.cpp.o.d"
  "libgg_export.a"
  "libgg_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
