file(REMOVE_RECURSE
  "libgg_apps.a"
)
