# Empty dependencies file for gg_apps.
# This may be replaced when dependencies are built.
