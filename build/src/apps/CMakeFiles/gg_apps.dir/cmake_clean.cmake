file(REMOVE_RECURSE
  "CMakeFiles/gg_apps.dir/blackscholes.cpp.o"
  "CMakeFiles/gg_apps.dir/blackscholes.cpp.o.d"
  "CMakeFiles/gg_apps.dir/fft.cpp.o"
  "CMakeFiles/gg_apps.dir/fft.cpp.o.d"
  "CMakeFiles/gg_apps.dir/fib.cpp.o"
  "CMakeFiles/gg_apps.dir/fib.cpp.o.d"
  "CMakeFiles/gg_apps.dir/floorplan.cpp.o"
  "CMakeFiles/gg_apps.dir/floorplan.cpp.o.d"
  "CMakeFiles/gg_apps.dir/freqmine.cpp.o"
  "CMakeFiles/gg_apps.dir/freqmine.cpp.o.d"
  "CMakeFiles/gg_apps.dir/health.cpp.o"
  "CMakeFiles/gg_apps.dir/health.cpp.o.d"
  "CMakeFiles/gg_apps.dir/kdtree.cpp.o"
  "CMakeFiles/gg_apps.dir/kdtree.cpp.o.d"
  "CMakeFiles/gg_apps.dir/nqueens.cpp.o"
  "CMakeFiles/gg_apps.dir/nqueens.cpp.o.d"
  "CMakeFiles/gg_apps.dir/others.cpp.o"
  "CMakeFiles/gg_apps.dir/others.cpp.o.d"
  "CMakeFiles/gg_apps.dir/sort.cpp.o"
  "CMakeFiles/gg_apps.dir/sort.cpp.o.d"
  "CMakeFiles/gg_apps.dir/sparselu.cpp.o"
  "CMakeFiles/gg_apps.dir/sparselu.cpp.o.d"
  "CMakeFiles/gg_apps.dir/strassen.cpp.o"
  "CMakeFiles/gg_apps.dir/strassen.cpp.o.d"
  "CMakeFiles/gg_apps.dir/uts.cpp.o"
  "CMakeFiles/gg_apps.dir/uts.cpp.o.d"
  "libgg_apps.a"
  "libgg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
