
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/blackscholes.cpp" "src/apps/CMakeFiles/gg_apps.dir/blackscholes.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/blackscholes.cpp.o.d"
  "/root/repo/src/apps/fft.cpp" "src/apps/CMakeFiles/gg_apps.dir/fft.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/fft.cpp.o.d"
  "/root/repo/src/apps/fib.cpp" "src/apps/CMakeFiles/gg_apps.dir/fib.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/fib.cpp.o.d"
  "/root/repo/src/apps/floorplan.cpp" "src/apps/CMakeFiles/gg_apps.dir/floorplan.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/floorplan.cpp.o.d"
  "/root/repo/src/apps/freqmine.cpp" "src/apps/CMakeFiles/gg_apps.dir/freqmine.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/freqmine.cpp.o.d"
  "/root/repo/src/apps/health.cpp" "src/apps/CMakeFiles/gg_apps.dir/health.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/health.cpp.o.d"
  "/root/repo/src/apps/kdtree.cpp" "src/apps/CMakeFiles/gg_apps.dir/kdtree.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/kdtree.cpp.o.d"
  "/root/repo/src/apps/nqueens.cpp" "src/apps/CMakeFiles/gg_apps.dir/nqueens.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/nqueens.cpp.o.d"
  "/root/repo/src/apps/others.cpp" "src/apps/CMakeFiles/gg_apps.dir/others.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/others.cpp.o.d"
  "/root/repo/src/apps/sort.cpp" "src/apps/CMakeFiles/gg_apps.dir/sort.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/sort.cpp.o.d"
  "/root/repo/src/apps/sparselu.cpp" "src/apps/CMakeFiles/gg_apps.dir/sparselu.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/sparselu.cpp.o.d"
  "/root/repo/src/apps/strassen.cpp" "src/apps/CMakeFiles/gg_apps.dir/strassen.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/strassen.cpp.o.d"
  "/root/repo/src/apps/uts.cpp" "src/apps/CMakeFiles/gg_apps.dir/uts.cpp.o" "gcc" "src/apps/CMakeFiles/gg_apps.dir/uts.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/front/CMakeFiles/gg_front.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gg_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
