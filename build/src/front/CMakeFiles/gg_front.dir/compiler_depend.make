# Empty compiler generated dependencies file for gg_front.
# This may be replaced when dependencies are built.
