file(REMOVE_RECURSE
  "libgg_front.a"
)
