file(REMOVE_RECURSE
  "CMakeFiles/gg_front.dir/front.cpp.o"
  "CMakeFiles/gg_front.dir/front.cpp.o.d"
  "libgg_front.a"
  "libgg_front.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_front.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
