# Empty compiler generated dependencies file for gg_topology.
# This may be replaced when dependencies are built.
