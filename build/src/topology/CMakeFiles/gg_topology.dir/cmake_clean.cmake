file(REMOVE_RECURSE
  "CMakeFiles/gg_topology.dir/topology.cpp.o"
  "CMakeFiles/gg_topology.dir/topology.cpp.o.d"
  "libgg_topology.a"
  "libgg_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
