file(REMOVE_RECURSE
  "libgg_topology.a"
)
