# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("topology")
subdirs("trace")
subdirs("rts")
subdirs("sim")
subdirs("front")
subdirs("graph")
subdirs("metrics")
subdirs("analysis")
subdirs("export")
subdirs("apps")
