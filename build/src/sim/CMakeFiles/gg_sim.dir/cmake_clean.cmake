file(REMOVE_RECURSE
  "CMakeFiles/gg_sim.dir/capture.cpp.o"
  "CMakeFiles/gg_sim.dir/capture.cpp.o.d"
  "CMakeFiles/gg_sim.dir/des.cpp.o"
  "CMakeFiles/gg_sim.dir/des.cpp.o.d"
  "CMakeFiles/gg_sim.dir/memory_model.cpp.o"
  "CMakeFiles/gg_sim.dir/memory_model.cpp.o.d"
  "CMakeFiles/gg_sim.dir/policy.cpp.o"
  "CMakeFiles/gg_sim.dir/policy.cpp.o.d"
  "CMakeFiles/gg_sim.dir/sim_engine.cpp.o"
  "CMakeFiles/gg_sim.dir/sim_engine.cpp.o.d"
  "libgg_sim.a"
  "libgg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
