# Empty compiler generated dependencies file for gg_sim.
# This may be replaced when dependencies are built.
