
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/capture.cpp" "src/sim/CMakeFiles/gg_sim.dir/capture.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/capture.cpp.o.d"
  "/root/repo/src/sim/des.cpp" "src/sim/CMakeFiles/gg_sim.dir/des.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/des.cpp.o.d"
  "/root/repo/src/sim/memory_model.cpp" "src/sim/CMakeFiles/gg_sim.dir/memory_model.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/memory_model.cpp.o.d"
  "/root/repo/src/sim/policy.cpp" "src/sim/CMakeFiles/gg_sim.dir/policy.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/policy.cpp.o.d"
  "/root/repo/src/sim/sim_engine.cpp" "src/sim/CMakeFiles/gg_sim.dir/sim_engine.cpp.o" "gcc" "src/sim/CMakeFiles/gg_sim.dir/sim_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/front/CMakeFiles/gg_front.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/gg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gg_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
