file(REMOVE_RECURSE
  "libgg_sim.a"
)
