
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/ggtrace_convert.cpp" "tools/CMakeFiles/ggtrace-convert.dir/ggtrace_convert.cpp.o" "gcc" "tools/CMakeFiles/ggtrace-convert.dir/ggtrace_convert.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/gg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/gg_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
