file(REMOVE_RECURSE
  "CMakeFiles/ggtrace-convert.dir/ggtrace_convert.cpp.o"
  "CMakeFiles/ggtrace-convert.dir/ggtrace_convert.cpp.o.d"
  "ggtrace-convert"
  "ggtrace-convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ggtrace-convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
