# Empty dependencies file for ggtrace-convert.
# This may be replaced when dependencies are built.
