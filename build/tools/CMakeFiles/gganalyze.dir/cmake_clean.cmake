file(REMOVE_RECURSE
  "CMakeFiles/gganalyze.dir/gganalyze.cpp.o"
  "CMakeFiles/gganalyze.dir/gganalyze.cpp.o.d"
  "gganalyze"
  "gganalyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gganalyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
