# Empty compiler generated dependencies file for gganalyze.
# This may be replaced when dependencies are built.
