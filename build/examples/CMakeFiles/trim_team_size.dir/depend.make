# Empty dependencies file for trim_team_size.
# This may be replaced when dependencies are built.
