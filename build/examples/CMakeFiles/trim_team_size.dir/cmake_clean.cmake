file(REMOVE_RECURSE
  "CMakeFiles/trim_team_size.dir/trim_team_size.cpp.o"
  "CMakeFiles/trim_team_size.dir/trim_team_size.cpp.o.d"
  "trim_team_size"
  "trim_team_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trim_team_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
