# Empty compiler generated dependencies file for compare_optimizations.
# This may be replaced when dependencies are built.
