file(REMOVE_RECURSE
  "CMakeFiles/compare_optimizations.dir/compare_optimizations.cpp.o"
  "CMakeFiles/compare_optimizations.dir/compare_optimizations.cpp.o.d"
  "compare_optimizations"
  "compare_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
