# Empty dependencies file for diagnose_cutoff_bug.
# This may be replaced when dependencies are built.
