file(REMOVE_RECURSE
  "CMakeFiles/diagnose_cutoff_bug.dir/diagnose_cutoff_bug.cpp.o"
  "CMakeFiles/diagnose_cutoff_bug.dir/diagnose_cutoff_bug.cpp.o.d"
  "diagnose_cutoff_bug"
  "diagnose_cutoff_bug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagnose_cutoff_bug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
