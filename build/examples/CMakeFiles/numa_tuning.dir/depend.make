# Empty dependencies file for numa_tuning.
# This may be replaced when dependencies are built.
