file(REMOVE_RECURSE
  "CMakeFiles/numa_tuning.dir/numa_tuning.cpp.o"
  "CMakeFiles/numa_tuning.dir/numa_tuning.cpp.o.d"
  "numa_tuning"
  "numa_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/numa_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
