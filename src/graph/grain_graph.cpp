#include "graph/grain_graph.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/flat_hash.hpp"
#include "common/par_for.hpp"
#include "graph/thread_groups.hpp"

namespace gg {

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::Fragment: return "fragment";
    case NodeKind::Fork: return "fork";
    case NodeKind::Join: return "join";
    case NodeKind::Bookkeep: return "bookkeep";
    case NodeKind::Chunk: return "chunk";
  }
  return "?";
}

const char* to_string(EdgeKind k) {
  switch (k) {
    case EdgeKind::Creation: return "creation";
    case EdgeKind::Join: return "join";
    case EdgeKind::Continuation: return "continuation";
    case EdgeKind::Dependence: return "dependence";
  }
  return "?";
}

u32 GrainGraph::add_node(GraphNode node) {
  if (node.busy == 0) node.busy = node.duration();
  nodes_.push_back(node);
  finalized_ = false;
  return static_cast<u32>(nodes_.size() - 1);
}

void GrainGraph::add_edge(u32 from, u32 to, EdgeKind kind) {
  GG_DCHECK(from < nodes_.size() && to < nodes_.size());
  edges_.push_back(GraphEdge{from, to, kind});
  finalized_ = false;
}

std::span<const u32> GrainGraph::out_edges(u32 node) const {
  GG_CHECK(finalized_ && node < nodes_.size());
  return {out_edge_ids_.data() + out_offsets_[node],
          out_offsets_[node + 1] - out_offsets_[node]};
}

std::span<const u32> GrainGraph::in_edges(u32 node) const {
  GG_CHECK(finalized_ && node < nodes_.size());
  return {in_edge_ids_.data() + in_offsets_[node],
          in_offsets_[node + 1] - in_offsets_[node]};
}

std::optional<u32> GrainGraph::first_fragment(TaskId task) const {
  GG_CHECK(finalized_);
  auto it = std::lower_bound(
      frag_range_.begin(), frag_range_.end(), task,
      [](const auto& p, TaskId v) { return p.first < v; });
  if (it == frag_range_.end() || it->first != task) return std::nullopt;
  return it->second.first;
}

std::optional<u32> GrainGraph::last_fragment(TaskId task) const {
  GG_CHECK(finalized_);
  auto it = std::lower_bound(
      frag_range_.begin(), frag_range_.end(), task,
      [](const auto& p, TaskId v) { return p.first < v; });
  if (it == frag_range_.end() || it->first != task) return std::nullopt;
  return it->second.first + it->second.second - 1;
}

std::vector<u32> GrainGraph::nodes_of_kind(NodeKind kind) const {
  std::vector<u32> out;
  for (u32 i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == kind) out.push_back(i);
  }
  return out;
}

void GrainGraph::finalize_lenient() {
  finalize_impl(false);
}

void GrainGraph::finalize() {
  finalize_impl(true);
}

void GrainGraph::finalize_impl(bool require_dag) {
  const size_t n = nodes_.size();
  // CSR adjacency via counting sort over the edge list. Filling in edge-id
  // order keeps each node's list ascending, exactly as repeated push_back
  // into per-node vectors produced before.
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const GraphEdge& e : edges_) {
    out_offsets_[e.from + 1]++;
    in_offsets_[e.to + 1]++;
  }
  for (size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_edge_ids_.resize(edges_.size());
  in_edge_ids_.resize(edges_.size());
  std::vector<u32> out_cur(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<u32> in_cur(in_offsets_.begin(), in_offsets_.end() - 1);
  for (u32 e = 0; e < edges_.size(); ++e) {
    out_edge_ids_[out_cur[edges_[e].from]++] = e;
    in_edge_ids_[in_cur[edges_[e].to]++] = e;
  }
  // Fragment index: contiguous runs per task (builder adds them that way).
  frag_range_.clear();
  for (u32 i = 0; i < n; ++i) {
    if (nodes_[i].kind != NodeKind::Fragment) continue;
    if (!frag_range_.empty() && frag_range_.back().first == nodes_[i].task) {
      frag_range_.back().second.second++;
    } else {
      frag_range_.emplace_back(nodes_[i].task, std::make_pair(i, 1u));
    }
  }
  std::sort(frag_range_.begin(), frag_range_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  topo_.clear();
  if (!require_dag) {
    finalized_ = true;
    return;
  }
  // Kahn topological sort; aborts on cycles (the graph must be a DAG).
  std::vector<u32> indeg(n, 0);
  for (const GraphEdge& e : edges_) indeg[e.to]++;
  topo_.reserve(n);
  std::vector<u32> stack;
  for (u32 i = 0; i < n; ++i) {
    if (indeg[i] == 0) stack.push_back(i);
  }
  while (!stack.empty()) {
    const u32 v = stack.back();
    stack.pop_back();
    topo_.push_back(v);
    for (u32 k = out_offsets_[v]; k < out_offsets_[v + 1]; ++k) {
      const u32 w = edges_[out_edge_ids_[k]].to;
      if (--indeg[w] == 0) stack.push_back(w);
    }
  }
  GG_CHECK_MSG(topo_.size() == n, "grain graph contains a cycle");
  finalized_ = true;
}

namespace {

// --- sharded construction --------------------------------------------------
//
// The serial builder produced nodes in a rigid order: every fragment node in
// flat trace.fragments order, then per task (in uid order) the Fork / Join /
// Bookkeep / Chunk nodes its fragments demand, then at most one synthesized
// barrier join; edges in the same task-major order followed by the unjoined-
// children and dependence edges. That order is what every export, golden
// signature and topo result is pinned to — so the sharded build reproduces
// it exactly:
//
//   phase A  fragment nodes, parallel over task-run-aligned blocks of the
//            (task, seq)-sorted fragment vector (count, prefix-sum, fill —
//            each fragment node lands at the id the serial walk gave it);
//   phase B  each shard wires a contiguous block of tasks into *local* node
//            and edge vectors, encoding references to its own new nodes as
//            F + local_id (F = fragment node count) while fragment
//            references stay absolute — cross-task edges only ever point at
//            fragment nodes, so no shard needs another shard's ids;
//   merge    per-shard node counts prefix-sum into shard bases; nodes and
//            edges concatenate in shard (== task) order while every encoded
//            reference >= F is rebased — yielding exactly the serial ids.
//
// Every phase partitions by a pure function of (size, threads), so the
// result is bit-identical for every thread count; threads == 1 runs the
// same code as a single shard.

constexpr u32 kNoNode = 0xFFFFFFFFu;

/// Fragment-node index from phase A, indexed by task position in
/// trace.tasks: first node id and node count per task (kNoNode/0 for tasks
/// without fragment nodes).
struct FragIndex {
  std::vector<u32> first;
  std::vector<u32> count;
  u32 total = 0;  ///< F: number of fragment nodes

  bool has(size_t task_idx) const { return first[task_idx] != kNoNode; }
};

/// Phase A: appends one node per non-orphan fragment to `nodes` (which must
/// be empty) in flat fragment order, skipping fragments whose task record is
/// missing (damaged traces), exactly like the serial task-by-task walk.
FragIndex add_fragment_nodes(const Trace& trace, int threads,
                             std::vector<GraphNode>& nodes) {
  const auto& frags = trace.fragments;
  FragIndex fi;
  fi.first.assign(trace.tasks.size(), kNoNode);
  fi.count.assign(trace.tasks.size(), 0);

  // Task-run-aligned block bounds: start from the even partition and advance
  // each boundary to the next task change, so every task's fragment run is
  // owned by exactly one block (no write races on fi.first/fi.count, one
  // task_index lookup per run). Alignment depends only on (n, threads) and
  // the sorted fragment keys — never on timing.
  const size_t n = frags.size();
  size_t t = static_cast<size_t>(std::max(threads, 1));
  if (t > n) t = n == 0 ? 1 : n;
  std::vector<size_t> bounds(t + 1);
  for (size_t b = 0; b <= t; ++b) bounds[b] = n * b / t;
  for (size_t b = 1; b < t; ++b) {
    size_t x = std::max(bounds[b], bounds[b - 1]);
    while (x < n && x > 0 && frags[x].task == frags[x - 1].task) ++x;
    bounds[b] = x;
  }
  bounds[t] = n;

  // Pass 1: per-block counts of fragments that get nodes.
  std::vector<size_t> kept(t, 0);
  par_for_shard(t, [&](size_t b) {
    size_t cnt = 0;
    for (size_t i = bounds[b]; i < bounds[b + 1];) {
      const TaskId uid = frags[i].task;
      size_t run = i;
      while (run < bounds[b + 1] && frags[run].task == uid) ++run;
      if (trace.task_index(uid).has_value()) cnt += run - i;
      i = run;
    }
    kept[b] = cnt;
  });
  std::vector<size_t> base(t + 1, 0);
  for (size_t b = 0; b < t; ++b) base[b + 1] = base[b] + kept[b];
  fi.total = static_cast<u32>(base[t]);
  nodes.resize(base[t]);

  // Pass 2: fill node slots and the per-task index.
  par_for_shard(t, [&](size_t b) {
    u32 id = static_cast<u32>(base[b]);
    for (size_t i = bounds[b]; i < bounds[b + 1];) {
      const TaskId uid = frags[i].task;
      size_t run = i;
      while (run < bounds[b + 1] && frags[run].task == uid) ++run;
      const auto idx = trace.task_index(uid);
      if (!idx.has_value()) {
        i = run;  // orphan fragments get no nodes
        continue;
      }
      const StrId src = trace.tasks[*idx].src;
      fi.first[*idx] = id;
      fi.count[*idx] = static_cast<u32>(run - i);
      for (; i < run; ++i) {
        const FragmentRec& f = frags[i];
        GraphNode& gn = nodes[id];
        gn.kind = NodeKind::Fragment;
        gn.task = uid;
        gn.seq = f.seq;
        gn.core = f.core;
        gn.thread = f.core;
        gn.start = f.start;
        gn.end = f.end;
        gn.counters = f.counters;
        gn.src = src;
        gn.busy = gn.duration();
        ++id;
      }
    }
  });
  return fi;
}

/// Phase B: wires tasks [task_lo, task_hi) of trace.tasks into local node /
/// edge vectors. Node references < F (fi.total) are absolute fragment ids;
/// references >= F are F + index into this shard's `nodes`.
class ShardBuilder {
 public:
  ShardBuilder(const Trace& trace, const FragIndex& fi)
      : trace_(trace), fi_(fi) {}

  void wire_range(size_t task_lo, size_t task_hi) {
    for (size_t i = task_lo; i < task_hi; ++i) wire_task(trace_.tasks[i]);
  }

  std::vector<GraphNode> nodes;
  std::vector<GraphEdge> edges;
  std::vector<TaskId> unjoined;   ///< in task order within the shard
  std::vector<u32> root_joins;    ///< encoded refs (root lives in one shard)

 private:
  u32 add_local(GraphNode n) {
    if (n.busy == 0) n.busy = n.duration();
    nodes.push_back(n);
    return fi_.total + static_cast<u32>(nodes.size() - 1);
  }

  void add_edge(u32 from, u32 to, EdgeKind kind) {
    edges.push_back(GraphEdge{from, to, kind});
  }

  u32 first_frag(TaskId task) const {
    const auto idx = trace_.task_index(task);
    GG_CHECK(idx.has_value() && fi_.has(*idx));
    return fi_.first[*idx];
  }

  u32 last_frag(TaskId task) const {
    const auto idx = trace_.task_index(task);
    GG_CHECK(idx.has_value() && fi_.has(*idx));
    return fi_.first[*idx] + fi_.count[*idx] - 1;
  }

  u32 frag_node(TaskId task, u32 seq) const { return first_frag(task) + seq; }

  void wire_task(const TaskRec& t) {
    const auto frags = trace_.fragments_span(t.uid);
    const auto joins = trace_.joins_span(t.uid);
    std::vector<TaskId> pending;  // children forked since the last join
    for (size_t i = 0; i < frags.size(); ++i) {
      const FragmentRec& f = frags[i];
      const u32 fi = frag_node(t.uid, f.seq);
      switch (f.end_reason) {
        case FragmentEnd::Fork: {
          const auto child_idx = trace_.task_index(f.end_ref);
          GG_CHECK(child_idx.has_value());
          const TaskRec& child = trace_.tasks[*child_idx];
          GraphNode fork;
          fork.kind = NodeKind::Fork;
          fork.task = t.uid;
          fork.seq = child.child_index;
          fork.core = child.create_core;
          fork.thread = child.create_core;
          fork.start = child.create_time;
          fork.end = child.create_time + child.creation_cost;
          fork.src = child.src;
          const u32 nf = add_local(fork);
          add_edge(fi, nf, EdgeKind::Continuation);
          add_edge(nf, first_frag(child.uid), EdgeKind::Creation);
          if (i + 1 < frags.size()) {
            add_edge(nf, frag_node(t.uid, frags[i + 1].seq),
                     EdgeKind::Continuation);
          }
          pending.push_back(child.uid);
          break;
        }
        case FragmentEnd::Join: {
          const JoinRec* jr = find_join(joins, f.end_ref);
          GG_CHECK_MSG(jr != nullptr, "fragment references missing join");
          GraphNode join;
          join.kind = NodeKind::Join;
          join.task = t.uid;
          join.seq = jr->seq;
          join.core = jr->core;
          join.thread = jr->core;
          join.start = jr->start;
          join.end = jr->end;
          join.src = t.src;
          const u32 nj = add_local(join);
          add_edge(fi, nj, EdgeKind::Continuation);
          for (TaskId c : pending) {
            add_edge(last_frag(c), nj, EdgeKind::Join);
          }
          pending.clear();
          if (t.uid == kRootTask) root_joins.push_back(nj);
          if (i + 1 < frags.size()) {
            add_edge(nj, frag_node(t.uid, frags[i + 1].seq),
                     EdgeKind::Continuation);
          }
          break;
        }
        case FragmentEnd::Loop: {
          const u32 nlj = wire_loop(f.end_ref, fi);
          if (i + 1 < frags.size()) {
            add_edge(nlj, frag_node(t.uid, frags[i + 1].seq),
                     EdgeKind::Continuation);
          }
          break;
        }
        case FragmentEnd::TaskEnd: {
          for (TaskId c : pending) unjoined.push_back(c);
          pending.clear();
          break;
        }
      }
    }
  }

  /// Wires one parallel for-loop: per-thread book-keeping/chunk chains
  /// hanging off the encountering fragment, all joining at the loop's join
  /// node. Returns the (encoded) join node index.
  u32 wire_loop(LoopId uid, u32 encountering_fragment) {
    const auto loop_idx = trace_.loop_index(uid);
    GG_CHECK(loop_idx.has_value());
    const LoopRec& loop = trace_.loops[*loop_idx];

    GraphNode join;
    join.kind = NodeKind::Join;
    join.task = loop.enclosing_task;
    join.loop = uid;
    join.seq = 0;
    join.start = loop.end;
    join.end = loop.end;
    join.src = loop.src;
    const u32 nlj = add_local(join);

    // Per-thread chains: bookkeeps/chunks are (thread, seq)-sorted after
    // finalize(), so the per-thread groups are contiguous runs.
    bool any_thread = false;
    for_each_thread_pair(
        trace_.bookkeeps_span(uid), trace_.chunks_span(uid),
        [&](u16, std::span<const BookkeepRec> bs,
            std::span<const ChunkRec> cs) {
          any_thread = true;
          u32 prev = encountering_fragment;
          EdgeKind next_kind = EdgeKind::Creation;
          size_t chunk_i = 0;
          for (const BookkeepRec& b : bs) {
            GraphNode bk;
            bk.kind = NodeKind::Bookkeep;
            bk.loop = uid;
            bk.thread = b.thread;
            bk.core = b.core;
            bk.seq = b.seq_on_thread;
            bk.start = b.start;
            bk.end = b.end;
            bk.src = loop.src;
            const u32 nb = add_local(bk);
            add_edge(prev, nb, next_kind);
            next_kind = EdgeKind::Continuation;
            prev = nb;
            if (b.got_chunk && chunk_i < cs.size()) {
              const ChunkRec& c = cs[chunk_i++];
              GraphNode ch;
              ch.kind = NodeKind::Chunk;
              ch.loop = uid;
              ch.thread = c.thread;
              ch.core = c.core;
              ch.seq = c.seq_on_thread;
              ch.start = c.start;
              ch.end = c.end;
              ch.counters = c.counters;
              ch.src = loop.src;
              ch.iter_begin = c.iter_begin;
              ch.iter_end = c.iter_end;
              const u32 nc = add_local(ch);
              add_edge(prev, nc, EdgeKind::Continuation);
              prev = nc;
            }
          }
          // The chain's final node synchronizes at the loop join.
          add_edge(prev, nlj, EdgeKind::Join);
        });
    if (!any_thread) {
      // Empty loop: the fragment continues straight to the join.
      add_edge(encountering_fragment, nlj, EdgeKind::Continuation);
    }
    return nlj;
  }

  const Trace& trace_;
  const FragIndex& fi_;
};

}  // namespace

GrainGraph GrainGraph::build(const Trace& trace, int threads) {
  GG_CHECK_MSG(trace.finalized(), "build requires a finalized trace");
  GrainGraph g;

  // Phase A: fragment nodes.
  FragIndex fi = add_fragment_nodes(trace, threads, g.nodes_);

  // Phase B: shard the task-wiring over contiguous task blocks.
  const size_t ntasks = trace.tasks.size();
  size_t nshards = static_cast<size_t>(std::max(threads, 1));
  if (nshards > ntasks) nshards = ntasks == 0 ? 1 : ntasks;
  std::vector<ShardBuilder> shards;
  shards.reserve(nshards);
  for (size_t s = 0; s < nshards; ++s) shards.emplace_back(trace, fi);
  par_for_shard(nshards, [&](size_t s) {
    shards[s].wire_range(ntasks * s / nshards, ntasks * (s + 1) / nshards);
  });

  // Merge: rebase each shard's encoded references onto its node base and
  // concatenate in shard order — the ids the serial walk would assign.
  const u32 F = fi.total;
  std::vector<u32> node_base(nshards + 1, F);
  std::vector<size_t> edge_base(nshards + 1, 0);
  for (size_t s = 0; s < nshards; ++s) {
    node_base[s + 1] =
        node_base[s] + static_cast<u32>(shards[s].nodes.size());
    edge_base[s + 1] = edge_base[s] + shards[s].edges.size();
  }
  g.nodes_.resize(node_base[nshards]);
  g.edges_.resize(edge_base[nshards]);
  par_for_shard(nshards, [&](size_t s) {
    ShardBuilder& sb = shards[s];
    const u32 nbase = node_base[s];
    std::copy(sb.nodes.begin(), sb.nodes.end(), g.nodes_.begin() + nbase);
    auto rebase = [&](u32 ref) {
      return ref < F ? ref : nbase + (ref - F);
    };
    GraphEdge* out = g.edges_.data() + edge_base[s];
    for (const GraphEdge& e : sb.edges) {
      *out++ = GraphEdge{rebase(e.from), rebase(e.to), e.kind};
    }
  });

  // Serial epilogue, identical to the original builder: unjoined children
  // synchronize at the region's implicit barrier (the root's last join,
  // synthesized when absent), then dependence edges.
  std::vector<TaskId> unjoined;
  u32 barrier = kNoNode;
  for (size_t s = 0; s < nshards; ++s) {
    ShardBuilder& sb = shards[s];
    unjoined.insert(unjoined.end(), sb.unjoined.begin(), sb.unjoined.end());
    if (!sb.root_joins.empty()) {
      barrier = node_base[s] + (sb.root_joins.back() - F);
    }
  }
  const auto first_frag_of = [&](TaskId uid) -> u32 {
    const auto idx = trace.task_index(uid);
    GG_CHECK(idx.has_value() && fi.has(*idx));
    return fi.first[*idx];
  };
  const auto last_frag_of = [&](TaskId uid) -> u32 {
    const auto idx = trace.task_index(uid);
    GG_CHECK(idx.has_value() && fi.has(*idx));
    return fi.first[*idx] + fi.count[*idx] - 1;
  };
  const auto has_frags = [&](TaskId uid) {
    const auto idx = trace.task_index(uid);
    return idx.has_value() && fi.has(*idx);
  };
  if (!unjoined.empty()) {
    if (barrier == kNoNode) {
      GraphNode join;
      join.kind = NodeKind::Join;
      join.task = kRootTask;
      join.seq = 0;
      join.start = trace.meta.region_end;
      join.end = trace.meta.region_end;
      barrier = g.add_node(join);
      if (has_frags(kRootTask)) {
        g.add_edge(last_frag_of(kRootTask), barrier, EdgeKind::Continuation);
      }
    }
    for (TaskId c : unjoined) {
      g.add_edge(last_frag_of(c), barrier, EdgeKind::Join);
    }
  }
  // OpenMP 4.0 task dependences (§6 future work, implemented): the
  // predecessor's last fragment happens-before the successor's first.
  for (const DependRec& d : trace.depends) {
    if (!has_frags(d.pred) || !has_frags(d.succ)) continue;
    g.add_edge(last_frag_of(d.pred), first_frag_of(d.succ),
               EdgeKind::Dependence);
  }
  g.finalize();
  return g;
}

std::vector<std::string> validate_graph(const GrainGraph& g) {
  std::vector<std::string> errs;
  auto report = [&](const std::string& s) { errs.push_back(s); };

  const auto& nodes = g.nodes();
  const auto& edges = g.edges();
  for (u32 i = 0; i < nodes.size(); ++i) {
    const GraphNode& n = nodes[i];
    size_t creation_out = 0, continuation_out = 0, join_in = 0;
    for (u32 e : g.out_edges(i)) {
      if (edges[e].kind == EdgeKind::Creation) ++creation_out;
      if (edges[e].kind == EdgeKind::Continuation) ++continuation_out;
    }
    for (u32 e : g.in_edges(i)) {
      if (edges[e].kind == EdgeKind::Join) ++join_in;
    }
    switch (n.kind) {
      case NodeKind::Fork:
        if (creation_out != 1)
          report("fork node " + std::to_string(i) +
                 " has creation out-degree != 1");
        break;
      case NodeKind::Join: {
        // Root implicit barrier and loop joins of empty loops may be
        // childless; all other joins synchronize at least one child.
        const bool childless_ok = n.task == kRootTask || n.loop != 0;
        if (join_in == 0 && !childless_ok)
          report("join node " + std::to_string(i) + " has no join in-edges");
        break;
      }
      case NodeKind::Chunk: {
        // Chunk nodes always continue to a book-keeping node.
        bool ok = false;
        for (u32 e : g.out_edges(i)) {
          const GraphNode& to = nodes[edges[e].to];
          if (edges[e].kind == EdgeKind::Continuation &&
              to.kind == NodeKind::Bookkeep) {
            ok = true;
          }
          if (edges[e].kind == EdgeKind::Join && to.kind == NodeKind::Join) {
            ok = true;  // reduced graphs may join directly
          }
        }
        if (!ok && !g.out_edges(i).empty()) {
          report("chunk node " + std::to_string(i) +
                 " does not continue to book-keeping or join");
        }
        break;
      }
      default:
        break;
    }
    if (n.end < n.start)
      report("node " + std::to_string(i) + " has negative duration");
  }
  // Continuation edges stay within one task context (fragment -> fork/join
  // of the same task), or within one loop chain.
  for (const GraphEdge& e : edges) {
    if (e.kind != EdgeKind::Continuation) continue;
    const GraphNode& a = nodes[e.from];
    const GraphNode& b = nodes[e.to];
    const bool task_side =
        a.task != kNoTask && b.task != kNoTask && a.task == b.task;
    const bool loop_side = a.loop != 0 || b.loop != 0;
    if (!task_side && !loop_side) {
      report("continuation edge crosses task contexts (" +
             std::to_string(e.from) + " -> " + std::to_string(e.to) + ")");
    }
  }
  return errs;
}

}  // namespace gg
