#include "graph/grain_graph.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/flat_hash.hpp"
#include "graph/thread_groups.hpp"

namespace gg {

const char* to_string(NodeKind k) {
  switch (k) {
    case NodeKind::Fragment: return "fragment";
    case NodeKind::Fork: return "fork";
    case NodeKind::Join: return "join";
    case NodeKind::Bookkeep: return "bookkeep";
    case NodeKind::Chunk: return "chunk";
  }
  return "?";
}

const char* to_string(EdgeKind k) {
  switch (k) {
    case EdgeKind::Creation: return "creation";
    case EdgeKind::Join: return "join";
    case EdgeKind::Continuation: return "continuation";
    case EdgeKind::Dependence: return "dependence";
  }
  return "?";
}

u32 GrainGraph::add_node(GraphNode node) {
  if (node.busy == 0) node.busy = node.duration();
  nodes_.push_back(node);
  finalized_ = false;
  return static_cast<u32>(nodes_.size() - 1);
}

void GrainGraph::add_edge(u32 from, u32 to, EdgeKind kind) {
  GG_DCHECK(from < nodes_.size() && to < nodes_.size());
  edges_.push_back(GraphEdge{from, to, kind});
  finalized_ = false;
}

std::span<const u32> GrainGraph::out_edges(u32 node) const {
  GG_CHECK(finalized_ && node < nodes_.size());
  return {out_edge_ids_.data() + out_offsets_[node],
          out_offsets_[node + 1] - out_offsets_[node]};
}

std::span<const u32> GrainGraph::in_edges(u32 node) const {
  GG_CHECK(finalized_ && node < nodes_.size());
  return {in_edge_ids_.data() + in_offsets_[node],
          in_offsets_[node + 1] - in_offsets_[node]};
}

std::optional<u32> GrainGraph::first_fragment(TaskId task) const {
  GG_CHECK(finalized_);
  auto it = std::lower_bound(
      frag_range_.begin(), frag_range_.end(), task,
      [](const auto& p, TaskId v) { return p.first < v; });
  if (it == frag_range_.end() || it->first != task) return std::nullopt;
  return it->second.first;
}

std::optional<u32> GrainGraph::last_fragment(TaskId task) const {
  GG_CHECK(finalized_);
  auto it = std::lower_bound(
      frag_range_.begin(), frag_range_.end(), task,
      [](const auto& p, TaskId v) { return p.first < v; });
  if (it == frag_range_.end() || it->first != task) return std::nullopt;
  return it->second.first + it->second.second - 1;
}

std::vector<u32> GrainGraph::nodes_of_kind(NodeKind kind) const {
  std::vector<u32> out;
  for (u32 i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == kind) out.push_back(i);
  }
  return out;
}

void GrainGraph::finalize_lenient() {
  finalize_impl(false);
}

void GrainGraph::finalize() {
  finalize_impl(true);
}

void GrainGraph::finalize_impl(bool require_dag) {
  const size_t n = nodes_.size();
  // CSR adjacency via counting sort over the edge list. Filling in edge-id
  // order keeps each node's list ascending, exactly as repeated push_back
  // into per-node vectors produced before.
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const GraphEdge& e : edges_) {
    out_offsets_[e.from + 1]++;
    in_offsets_[e.to + 1]++;
  }
  for (size_t v = 0; v < n; ++v) {
    out_offsets_[v + 1] += out_offsets_[v];
    in_offsets_[v + 1] += in_offsets_[v];
  }
  out_edge_ids_.resize(edges_.size());
  in_edge_ids_.resize(edges_.size());
  std::vector<u32> out_cur(out_offsets_.begin(), out_offsets_.end() - 1);
  std::vector<u32> in_cur(in_offsets_.begin(), in_offsets_.end() - 1);
  for (u32 e = 0; e < edges_.size(); ++e) {
    out_edge_ids_[out_cur[edges_[e].from]++] = e;
    in_edge_ids_[in_cur[edges_[e].to]++] = e;
  }
  // Fragment index: contiguous runs per task (builder adds them that way).
  frag_range_.clear();
  for (u32 i = 0; i < n; ++i) {
    if (nodes_[i].kind != NodeKind::Fragment) continue;
    if (!frag_range_.empty() && frag_range_.back().first == nodes_[i].task) {
      frag_range_.back().second.second++;
    } else {
      frag_range_.emplace_back(nodes_[i].task, std::make_pair(i, 1u));
    }
  }
  std::sort(frag_range_.begin(), frag_range_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  topo_.clear();
  if (!require_dag) {
    finalized_ = true;
    return;
  }
  // Kahn topological sort; aborts on cycles (the graph must be a DAG).
  std::vector<u32> indeg(n, 0);
  for (const GraphEdge& e : edges_) indeg[e.to]++;
  topo_.reserve(n);
  std::vector<u32> stack;
  for (u32 i = 0; i < n; ++i) {
    if (indeg[i] == 0) stack.push_back(i);
  }
  while (!stack.empty()) {
    const u32 v = stack.back();
    stack.pop_back();
    topo_.push_back(v);
    for (u32 k = out_offsets_[v]; k < out_offsets_[v + 1]; ++k) {
      const u32 w = edges_[out_edge_ids_[k]].to;
      if (--indeg[w] == 0) stack.push_back(w);
    }
  }
  GG_CHECK_MSG(topo_.size() == n, "grain graph contains a cycle");
  finalized_ = true;
}

namespace {

/// Builder state for one trace -> graph construction.
class Builder {
 public:
  explicit Builder(const Trace& trace) : trace_(trace) {}

  GrainGraph build() {
    frag_index_.reserve(trace_.tasks.size());
    add_fragment_nodes();
    for (const TaskRec& t : trace_.tasks) wire_task(t);
    attach_unjoined_children();
    add_dependence_edges();
    g_.finalize();
    return std::move(g_);
  }

 private:
  void add_fragment_nodes() {
    // Fragments are sorted by (task, seq) after finalize(), so one walk over
    // the flat vector adds every task's fragments contiguously.
    const auto& frags = trace_.fragments;
    size_t i = 0;
    while (i < frags.size()) {
      const TaskId uid = frags[i].task;
      const auto idx = trace_.task_index(uid);
      if (!idx.has_value()) {
        // Orphan fragments (task record missing from a damaged trace) get no
        // nodes, same as when iteration went task-by-task.
        while (i < frags.size() && frags[i].task == uid) ++i;
        continue;
      }
      const StrId src = trace_.tasks[*idx].src;
      u32 first = 0, count = 0;
      for (; i < frags.size() && frags[i].task == uid; ++i) {
        const FragmentRec& f = frags[i];
        GraphNode n;
        n.kind = NodeKind::Fragment;
        n.task = uid;
        n.seq = f.seq;
        n.core = f.core;
        n.thread = f.core;
        n.start = f.start;
        n.end = f.end;
        n.counters = f.counters;
        n.src = src;
        const u32 node = g_.add_node(n);
        if (count == 0) first = node;
        ++count;
      }
      frag_index_[uid] = {first, count};
    }
  }

  u32 first_frag(TaskId task) const {
    const auto* p = frag_index_.find(task);
    GG_CHECK(p != nullptr);
    return p->first;
  }

  u32 last_frag(TaskId task) const {
    const auto* p = frag_index_.find(task);
    GG_CHECK(p != nullptr);
    return p->first + p->second - 1;
  }

  u32 frag_node(TaskId task, u32 seq) const { return first_frag(task) + seq; }

  void wire_task(const TaskRec& t) {
    const auto frags = trace_.fragments_span(t.uid);
    const auto joins = trace_.joins_span(t.uid);
    std::vector<TaskId> pending;  // children forked since the last join
    for (size_t i = 0; i < frags.size(); ++i) {
      const FragmentRec& f = frags[i];
      const u32 fi = frag_node(t.uid, f.seq);
      switch (f.end_reason) {
        case FragmentEnd::Fork: {
          const auto child_idx = trace_.task_index(f.end_ref);
          GG_CHECK(child_idx.has_value());
          const TaskRec& child = trace_.tasks[*child_idx];
          GraphNode fork;
          fork.kind = NodeKind::Fork;
          fork.task = t.uid;
          fork.seq = child.child_index;
          fork.core = child.create_core;
          fork.thread = child.create_core;
          fork.start = child.create_time;
          fork.end = child.create_time + child.creation_cost;
          fork.src = child.src;
          const u32 nf = g_.add_node(fork);
          g_.add_edge(fi, nf, EdgeKind::Continuation);
          g_.add_edge(nf, first_frag(child.uid), EdgeKind::Creation);
          if (i + 1 < frags.size()) {
            g_.add_edge(nf, frag_node(t.uid, frags[i + 1].seq),
                        EdgeKind::Continuation);
          }
          pending.push_back(child.uid);
          break;
        }
        case FragmentEnd::Join: {
          const JoinRec* jr = nullptr;
          for (const JoinRec& j : joins) {
            if (j.seq == f.end_ref) jr = &j;
          }
          GG_CHECK_MSG(jr != nullptr, "fragment references missing join");
          GraphNode join;
          join.kind = NodeKind::Join;
          join.task = t.uid;
          join.seq = jr->seq;
          join.core = jr->core;
          join.thread = jr->core;
          join.start = jr->start;
          join.end = jr->end;
          join.src = t.src;
          const u32 nj = g_.add_node(join);
          g_.add_edge(fi, nj, EdgeKind::Continuation);
          for (TaskId c : pending) {
            g_.add_edge(last_frag(c), nj, EdgeKind::Join);
          }
          pending.clear();
          if (t.uid == kRootTask) root_joins_.push_back(nj);
          if (i + 1 < frags.size()) {
            g_.add_edge(nj, frag_node(t.uid, frags[i + 1].seq),
                        EdgeKind::Continuation);
          }
          break;
        }
        case FragmentEnd::Loop: {
          const u32 nlj = wire_loop(f.end_ref, fi);
          if (i + 1 < frags.size()) {
            g_.add_edge(nlj, frag_node(t.uid, frags[i + 1].seq),
                        EdgeKind::Continuation);
          }
          break;
        }
        case FragmentEnd::TaskEnd: {
          for (TaskId c : pending) unjoined_.push_back(c);
          pending.clear();
          break;
        }
      }
    }
  }

  /// Wires one parallel for-loop: per-thread book-keeping/chunk chains
  /// hanging off the encountering fragment, all joining at the loop's join
  /// node. Returns the join node index.
  u32 wire_loop(LoopId uid, u32 encountering_fragment) {
    const auto loop_idx = trace_.loop_index(uid);
    GG_CHECK(loop_idx.has_value());
    const LoopRec& loop = trace_.loops[*loop_idx];

    GraphNode join;
    join.kind = NodeKind::Join;
    join.task = loop.enclosing_task;
    join.loop = uid;
    join.seq = 0;
    join.start = loop.end;
    join.end = loop.end;
    join.src = loop.src;
    const u32 nlj = g_.add_node(join);

    // Per-thread chains: bookkeeps/chunks are (thread, seq)-sorted after
    // finalize(), so the per-thread groups are contiguous runs.
    bool any_thread = false;
    for_each_thread_pair(
        trace_.bookkeeps_span(uid), trace_.chunks_span(uid),
        [&](u16, std::span<const BookkeepRec> bs,
            std::span<const ChunkRec> cs) {
          any_thread = true;
          u32 prev = encountering_fragment;
          EdgeKind next_kind = EdgeKind::Creation;
          size_t chunk_i = 0;
          for (const BookkeepRec& b : bs) {
            GraphNode bk;
            bk.kind = NodeKind::Bookkeep;
            bk.loop = uid;
            bk.thread = b.thread;
            bk.core = b.core;
            bk.seq = b.seq_on_thread;
            bk.start = b.start;
            bk.end = b.end;
            bk.src = loop.src;
            const u32 nb = g_.add_node(bk);
            g_.add_edge(prev, nb, next_kind);
            next_kind = EdgeKind::Continuation;
            prev = nb;
            if (b.got_chunk && chunk_i < cs.size()) {
              const ChunkRec& c = cs[chunk_i++];
              GraphNode ch;
              ch.kind = NodeKind::Chunk;
              ch.loop = uid;
              ch.thread = c.thread;
              ch.core = c.core;
              ch.seq = c.seq_on_thread;
              ch.start = c.start;
              ch.end = c.end;
              ch.counters = c.counters;
              ch.src = loop.src;
              ch.iter_begin = c.iter_begin;
              ch.iter_end = c.iter_end;
              const u32 nc = g_.add_node(ch);
              g_.add_edge(prev, nc, EdgeKind::Continuation);
              prev = nc;
            }
          }
          // The chain's final node synchronizes at the loop join.
          g_.add_edge(prev, nlj, EdgeKind::Join);
        });
    if (!any_thread) {
      // Empty loop: the fragment continues straight to the join.
      g_.add_edge(encountering_fragment, nlj, EdgeKind::Continuation);
    }
    return nlj;
  }

  /// OpenMP 4.0 task dependences (§6 future work, implemented): the
  /// predecessor's last fragment happens-before the successor's first.
  void add_dependence_edges() {
    for (const DependRec& d : trace_.depends) {
      if (frag_index_.find(d.pred) == nullptr ||
          frag_index_.find(d.succ) == nullptr)
        continue;
      g_.add_edge(last_frag(d.pred), first_frag(d.succ),
                  EdgeKind::Dependence);
    }
  }

  /// Children never taskwait-ed by their parent synchronize at the region's
  /// implicit barrier — the root's last join. Synthesizes one if absent.
  void attach_unjoined_children() {
    if (unjoined_.empty()) return;
    u32 barrier;
    if (!root_joins_.empty()) {
      barrier = root_joins_.back();
    } else {
      GraphNode join;
      join.kind = NodeKind::Join;
      join.task = kRootTask;
      join.seq = 0;
      join.start = trace_.meta.region_end;
      join.end = trace_.meta.region_end;
      const u32 nj = g_.add_node(join);
      if (frag_index_.find(kRootTask) != nullptr) {
        g_.add_edge(last_frag(kRootTask), nj, EdgeKind::Continuation);
      }
      barrier = nj;
    }
    for (TaskId c : unjoined_) {
      g_.add_edge(last_frag(c), barrier, EdgeKind::Join);
    }
  }

  const Trace& trace_;
  GrainGraph g_;
  FlatMap<TaskId, std::pair<u32, u32>> frag_index_;  // uid -> (first, count)
  std::vector<TaskId> unjoined_;
  std::vector<u32> root_joins_;
};

}  // namespace

GrainGraph GrainGraph::build(const Trace& trace) {
  GG_CHECK_MSG(trace.finalized(), "build requires a finalized trace");
  Builder b(trace);
  return b.build();
}

std::vector<std::string> validate_graph(const GrainGraph& g) {
  std::vector<std::string> errs;
  auto report = [&](const std::string& s) { errs.push_back(s); };

  const auto& nodes = g.nodes();
  const auto& edges = g.edges();
  for (u32 i = 0; i < nodes.size(); ++i) {
    const GraphNode& n = nodes[i];
    size_t creation_out = 0, continuation_out = 0, join_in = 0;
    for (u32 e : g.out_edges(i)) {
      if (edges[e].kind == EdgeKind::Creation) ++creation_out;
      if (edges[e].kind == EdgeKind::Continuation) ++continuation_out;
    }
    for (u32 e : g.in_edges(i)) {
      if (edges[e].kind == EdgeKind::Join) ++join_in;
    }
    switch (n.kind) {
      case NodeKind::Fork:
        if (creation_out != 1)
          report("fork node " + std::to_string(i) +
                 " has creation out-degree != 1");
        break;
      case NodeKind::Join: {
        // Root implicit barrier and loop joins of empty loops may be
        // childless; all other joins synchronize at least one child.
        const bool childless_ok = n.task == kRootTask || n.loop != 0;
        if (join_in == 0 && !childless_ok)
          report("join node " + std::to_string(i) + " has no join in-edges");
        break;
      }
      case NodeKind::Chunk: {
        // Chunk nodes always continue to a book-keeping node.
        bool ok = false;
        for (u32 e : g.out_edges(i)) {
          const GraphNode& to = nodes[edges[e].to];
          if (edges[e].kind == EdgeKind::Continuation &&
              to.kind == NodeKind::Bookkeep) {
            ok = true;
          }
          if (edges[e].kind == EdgeKind::Join && to.kind == NodeKind::Join) {
            ok = true;  // reduced graphs may join directly
          }
        }
        if (!ok && !g.out_edges(i).empty()) {
          report("chunk node " + std::to_string(i) +
                 " does not continue to book-keeping or join");
        }
        break;
      }
      default:
        break;
    }
    if (n.end < n.start)
      report("node " + std::to_string(i) + " has negative duration");
  }
  // Continuation edges stay within one task context (fragment -> fork/join
  // of the same task), or within one loop chain.
  for (const GraphEdge& e : edges) {
    if (e.kind != EdgeKind::Continuation) continue;
    const GraphNode& a = nodes[e.from];
    const GraphNode& b = nodes[e.to];
    const bool task_side =
        a.task != kNoTask && b.task != kNoTask && a.task == b.task;
    const bool loop_side = a.loop != 0 || b.loop != 0;
    if (!task_side && !loop_side) {
      report("continuation edge crosses task contexts (" +
             std::to_string(e.from) + " -> " + std::to_string(e.to) + ")");
    }
  }
  return errs;
}

}  // namespace gg
