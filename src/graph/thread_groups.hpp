#pragma once

// Per-thread grouping of loop-scoped records.
//
// Trace::finalize() sorts chunks and bookkeeping records by
// (loop, thread, seq_on_thread), so the records of one loop form contiguous
// per-thread runs in ascending thread order. Splitting those runs replaces
// the `std::map<u16, std::vector<const Rec*>>` grouping that grain_graph.cpp
// and grain_table.cpp each used to build per loop: same iteration order
// (ascending thread), same per-thread record order (ascending seq), no
// allocation.

#include <span>

#include "common/types.hpp"

namespace gg {

/// Calls `fn(thread, run)` for each maximal run of records sharing `.thread`,
/// in the order the runs appear (ascending thread for finalized traces).
/// `run` is a std::span over the input — valid as long as the trace is.
template <class Rec, class Fn>
void for_each_thread_run(std::span<const Rec> recs, Fn&& fn) {
  size_t i = 0;
  while (i < recs.size()) {
    size_t j = i + 1;
    while (j < recs.size() && recs[j].thread == recs[i].thread) ++j;
    fn(recs[i].thread, recs.subspan(i, j - i));
    i = j;
  }
}

/// Returns the run for one specific thread (empty span if the thread has no
/// records). Linear scan over the loop's records; runs are short.
template <class Rec>
std::span<const Rec> thread_run_of(std::span<const Rec> recs, u16 thread) {
  size_t i = 0;
  while (i < recs.size() && recs[i].thread != thread) ++i;
  size_t j = i;
  while (j < recs.size() && recs[j].thread == thread) ++j;
  return recs.subspan(i, j - i);
}

/// Zips two thread-sorted record sequences: calls `fn(thread, prim, sec)` for
/// each maximal thread run of `primary`, with `sec` the same thread's run of
/// `secondary` (possibly empty). One forward walk over both — this is how the
/// loop wiring pairs book-keeping records with the chunks they delivered.
template <class A, class B, class Fn>
void for_each_thread_pair(std::span<const A> primary,
                          std::span<const B> secondary, Fn&& fn) {
  size_t i = 0, c = 0;
  while (i < primary.size()) {
    const u16 th = primary[i].thread;
    size_t j = i + 1;
    while (j < primary.size() && primary[j].thread == th) ++j;
    while (c < secondary.size() && secondary[c].thread < th) ++c;
    size_t d = c;
    while (d < secondary.size() && secondary[d].thread == th) ++d;
    fn(th, primary.subspan(i, j - i), secondary.subspan(c, d - c));
    i = j;
    c = d;
  }
}

}  // namespace gg
