// Subtree summarization (§6): "Large graphs have long rendering times...
// We have encouraging results from early experiments with collapsing
// collections of nodes and replacing them with a single summary node."
//
// Collapses every task subtree rooted at a chosen depth into one summary
// node (aggregated busy time, counters, span, member count), picking the
// deepest cut that still fits the node budget — so the viewer keeps the
// most top-of-graph structure possible.
#pragma once

#include "graph/grain_graph.hpp"

namespace gg {

struct SummarizeResult {
  GrainGraph graph;     ///< finalized leniently (summary edges can cycle)
  size_t cut_depth = 0; ///< task depth at which subtrees were collapsed
  size_t collapsed_subtrees = 0;
};

/// Summarizes `g` down to at most ~`max_nodes` nodes (best effort: the
/// minimum is one summary node per depth-1 subtree plus the root's own
/// nodes). Returns the input unchanged when it already fits.
SummarizeResult summarize_graph(const GrainGraph& g, size_t max_nodes);

}  // namespace gg
