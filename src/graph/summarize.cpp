#include "graph/summarize.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace gg {

namespace {

/// Merges node weights into an accumulating summary node.
void fold_into(GraphNode& summary, const GraphNode& n) {
  summary.start = std::min(summary.start, n.start);
  summary.end = std::max(summary.end, n.end);
  summary.busy += n.busy;
  summary.counters += n.counters;
  summary.group_size += n.group_size;
}

}  // namespace

SummarizeResult summarize_graph(const GrainGraph& g, size_t max_nodes) {
  SummarizeResult res;
  const auto& nodes = g.nodes();
  const auto& edges = g.edges();
  if (nodes.size() <= max_nodes || max_nodes == 0) {
    // Copy through unchanged.
    for (const GraphNode& n : nodes) res.graph.add_node(n);
    for (const GraphEdge& e : edges) res.graph.add_edge(e.from, e.to, e.kind);
    res.graph.finalize_lenient();
    res.cut_depth = ~size_t{0};
    return res;
  }

  // Task hierarchy from creation edges (fork node's task = parent; the
  // creation target's task = child).
  std::unordered_map<TaskId, TaskId> parent;
  for (const GraphEdge& e : edges) {
    if (e.kind != EdgeKind::Creation) continue;
    const GraphNode& from = nodes[e.from];
    const GraphNode& to = nodes[e.to];
    if (from.kind == NodeKind::Fork && to.kind == NodeKind::Fragment) {
      parent[to.task] = from.task;
    }
  }
  std::unordered_map<TaskId, size_t> depth;
  std::function<size_t(TaskId)> depth_of = [&](TaskId t) -> size_t {
    auto it = depth.find(t);
    if (it != depth.end()) return it->second;
    auto p = parent.find(t);
    const size_t d = p == parent.end() ? 0 : depth_of(p->second) + 1;
    depth.emplace(t, d);
    return d;
  };
  size_t max_depth = 0;
  std::unordered_map<TaskId, size_t> nodes_per_task;
  for (const GraphNode& n : nodes) {
    if (n.task == kNoTask) continue;
    max_depth = std::max(max_depth, depth_of(n.task));
    nodes_per_task[n.task]++;
  }

  /// Ancestor of `t` at depth `cut` (or t itself when shallower).
  auto anchor_at = [&](TaskId t, size_t cut) {
    TaskId a = t;
    size_t d = depth_of(t);
    while (d > cut) {
      a = parent.at(a);
      --d;
    }
    return a;
  };

  // Deepest cut whose result fits the budget: nodes of tasks shallower than
  // the cut survive; each subtree rooted at the cut becomes one node.
  size_t chosen = 1;
  for (size_t cut = max_depth; cut >= 1; --cut) {
    size_t kept = 0;
    std::unordered_set<TaskId> roots;
    for (const auto& [task, count] : nodes_per_task) {
      if (depth_of(task) < cut) {
        kept += count;
      } else {
        roots.insert(anchor_at(task, cut));
      }
    }
    // Non-task nodes (loop book-keeping/chunks) always survive.
    kept += nodes.size();
    for (const auto& [task, count] : nodes_per_task) kept -= count;
    if (kept + roots.size() <= max_nodes || cut == 1) {
      chosen = cut;
      res.collapsed_subtrees = roots.size();
      break;
    }
  }
  res.cut_depth = chosen;

  // Build the summarized graph.
  std::vector<i64> summary_of(nodes.size(), -1);  // node -> summary index
  std::map<TaskId, u32> summaries;                // subtree root -> staged idx
  std::vector<GraphNode> staged;
  std::vector<u32> remap(nodes.size());
  for (u32 i = 0; i < nodes.size(); ++i) {
    const GraphNode& n = nodes[i];
    if (n.task == kNoTask || depth_of(n.task) < chosen) continue;
    const TaskId root = anchor_at(n.task, chosen);
    auto it = summaries.find(root);
    if (it == summaries.end()) {
      GraphNode s;
      s.kind = NodeKind::Fragment;
      s.task = root;
      s.src = n.src;
      s.start = n.start;
      s.end = n.end;
      s.busy = 0;
      s.group_size = 0;
      const u32 si = static_cast<u32>(staged.size());
      staged.push_back(s);
      it = summaries.emplace(root, si).first;
    }
    fold_into(staged[it->second], n);
    summary_of[i] = it->second;
  }
  std::vector<u32> staged_new(staged.size());
  for (u32 si = 0; si < staged.size(); ++si)
    staged_new[si] = res.graph.add_node(staged[si]);
  for (u32 i = 0; i < nodes.size(); ++i) {
    remap[i] = summary_of[i] >= 0
                   ? staged_new[static_cast<size_t>(summary_of[i])]
                   : res.graph.add_node(nodes[i]);
  }
  std::unordered_set<u64> seen;
  for (const GraphEdge& e : edges) {
    const u32 a = remap[e.from];
    const u32 b = remap[e.to];
    if (a == b) continue;
    const u64 sig = (static_cast<u64>(a) << 34) ^ (static_cast<u64>(b) << 2) ^
                    static_cast<u64>(e.kind);
    if (!seen.insert(sig).second) continue;
    res.graph.add_edge(a, b, e.kind);
  }
  res.graph.finalize_lenient();
  return res;
}

}  // namespace gg
