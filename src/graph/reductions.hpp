// Graph reductions (paper §3.1, Fig. 3d-e,h): node groupings that shrink the
// graph for fast rendering. Grouped nodes retain the aggregate weights of
// their members (summed busy time and counters, spanning interval,
// group_size = member count).
//
// Reduced graphs are for export/visualization only — join-back edges into a
// merged task node make them cyclic in general, so they are finalized
// without the DAG check. All metric derivations use the unreduced graph
// (the paper computes load balance "in the unreduced graph").
#pragma once

#include "graph/grain_graph.hpp"

namespace gg {

struct ReductionOptions {
  bool fragments = true;  ///< combine all fragments of a task (Fig. 3d)
  bool forks = true;      ///< combine fork nodes before every join (Fig. 3e)
  bool bookkeeps = true;  ///< group book-keeping nodes per thread (Fig. 3h)
};

/// Applies the selected reductions and returns the (possibly cyclic)
/// reduced graph. Parallel edges of equal kind are coalesced; self-edges
/// created by merging are dropped.
GrainGraph reduce_graph(const GrainGraph& g, const ReductionOptions& opts);

}  // namespace gg
