#include "graph/grain_table.hpp"

#include <algorithm>
#include <functional>
#include <map>

#include "common/check.hpp"

namespace gg {

namespace {

/// Computes the path-enumeration id of every task: root is "0", a child is
/// "<parent path>.<child_index>".
std::unordered_map<TaskId, std::string> task_paths(const Trace& trace) {
  std::unordered_map<TaskId, std::string> paths;
  paths.reserve(trace.tasks.size());
  // Tasks are sorted by uid and every runtime assigns child uids greater
  // than the parent's... which is true for both our engines (monotonic
  // counters), but don't rely on it: iterate until fixpoint-free ordering
  // via recursion over the parent chain.
  std::function<const std::string&(TaskId)> path_of =
      [&](TaskId uid) -> const std::string& {
    auto it = paths.find(uid);
    if (it != paths.end()) return it->second;
    const auto idx = trace.task_index(uid);
    GG_CHECK(idx.has_value());
    const TaskRec& t = trace.tasks[*idx];
    std::string p;
    if (t.uid == kRootTask || t.parent == kNoTask) {
      p = "0";
    } else {
      p = path_of(t.parent) + "." + std::to_string(t.child_index);
    }
    return paths.emplace(uid, std::move(p)).first->second;
  };
  for (const TaskRec& t : trace.tasks) path_of(t.uid);
  return paths;
}

}  // namespace

GrainTable GrainTable::build(const Trace& trace) {
  GG_CHECK(trace.finalized());
  GrainTable table;
  const auto paths = task_paths(trace);

  // --- Task grains ---------------------------------------------------------
  // First pass: per-task aggregates.
  std::unordered_map<TaskId, size_t> index_of;
  for (const TaskRec& t : trace.tasks) {
    if (t.uid == kRootTask) continue;
    Grain g;
    g.kind = GrainKind::Task;
    g.task = t.uid;
    g.parent = t.parent;
    g.src = t.src;
    g.path = paths.at(t.uid);
    g.creation_cost = t.creation_cost;
    g.inlined = t.inlined;
    const auto frags = trace.fragments_of(t.uid);
    GG_CHECK(!frags.empty());
    g.first_start = frags.front()->start;
    g.last_end = frags.back()->end;
    g.core = frags.front()->core;
    g.n_fragments = static_cast<u32>(frags.size());
    for (const FragmentRec* f : frags) {
      g.exec_time += f->end - f->start;
      g.counters += f->counters;
      if (f->end_reason == FragmentEnd::Fork) g.n_children++;
    }
    index_of[t.uid] = table.grains_.size();
    table.grains_.push_back(std::move(g));
  }

  // Second pass: synchronization-cost shares. Walk every task's fragment
  // stream matching forked children to the join they synchronize at (the
  // same pending-children discipline as the graph builder). Children left
  // unjoined synchronize at the root's last join (the implicit barrier).
  std::vector<TaskId> unjoined;
  const JoinRec* root_last_join = nullptr;
  {
    const auto rjoins = trace.joins_of(kRootTask);
    if (!rjoins.empty()) root_last_join = rjoins.back();
  }
  size_t root_barrier_extra = 0;  // children of root pending at its last join
  for (const TaskRec& t : trace.tasks) {
    const auto frags = trace.fragments_of(t.uid);
    const auto joins = trace.joins_of(t.uid);
    std::vector<TaskId> pending;
    for (const FragmentRec* f : frags) {
      if (f->end_reason == FragmentEnd::Fork) {
        pending.push_back(f->end_ref);
      } else if (f->end_reason == FragmentEnd::Join) {
        const JoinRec* jr = nullptr;
        for (const JoinRec* j : joins) {
          if (j->seq == f->end_ref) jr = j;
        }
        GG_CHECK(jr != nullptr);
        // The chargeable synchronization cost is the join overhead — the
        // tail of the join interval not overlapped by any synchronizing
        // child's execution. Time the parent spends merely *waiting* for
        // (or helping while) children run is not a parallelization cost.
        TimeNs last_child_end = jr->start;
        for (TaskId c : pending) {
          auto it = index_of.find(c);
          if (it != index_of.end()) {
            last_child_end =
                std::max(last_child_end, table.grains_[it->second].last_end);
          }
        }
        const TimeNs overhead =
            jr->end > last_child_end ? jr->end - last_child_end : 0;
        const TimeNs share = pending.empty() ? 0 : overhead / pending.size();
        for (TaskId c : pending) {
          auto it = index_of.find(c);
          if (it != index_of.end()) table.grains_[it->second].sync_cost = share;
        }
        if (t.uid == kRootTask && jr == root_last_join)
          root_barrier_extra = pending.size();
        pending.clear();
      }
    }
    for (TaskId c : pending) unjoined.push_back(c);
  }
  if (!unjoined.empty() && root_last_join != nullptr) {
    const size_t total = unjoined.size() + root_barrier_extra;
    TimeNs last_child_end = root_last_join->start;
    for (TaskId c : unjoined) {
      auto it = index_of.find(c);
      if (it != index_of.end()) {
        last_child_end =
            std::max(last_child_end, table.grains_[it->second].last_end);
      }
    }
    const TimeNs overhead = root_last_join->end > last_child_end
                                ? root_last_join->end - last_child_end
                                : 0;
    const TimeNs share = overhead / total;
    for (TaskId c : unjoined) {
      auto it = index_of.find(c);
      if (it != index_of.end()) table.grains_[it->second].sync_cost = share;
    }
  }

  // --- Chunk grains ----------------------------------------------------------
  for (const LoopRec& loop : trace.loops) {
    // Pair each chunk with the book-keeping step that delivered it: the
    // n-th got_chunk book-keeping of a thread delivered the n-th chunk.
    std::map<u16, std::vector<const BookkeepRec*>> delivering;
    for (const BookkeepRec* b : trace.bookkeeps_of(loop.uid)) {
      if (b->got_chunk) delivering[b->thread].push_back(b);
    }
    std::map<u16, u32> nth;
    for (const ChunkRec* c : trace.chunks_of(loop.uid)) {
      Grain g;
      g.kind = GrainKind::Chunk;
      g.loop = loop.uid;
      g.thread = c->thread;
      g.chunk_seq = c->seq_on_thread;
      g.iter_begin = c->iter_begin;
      g.iter_end = c->iter_end;
      g.parent = loop.enclosing_task;
      g.src = loop.src;
      g.path = "L" + std::to_string(loop.starting_thread) + "." +
               std::to_string(loop.seq) + ":" + std::to_string(c->iter_begin) +
               "-" + std::to_string(c->iter_end);
      g.first_start = c->start;
      g.last_end = c->end;
      g.exec_time = c->end - c->start;
      g.counters = c->counters;
      g.core = c->core;
      const u32 k = nth[c->thread]++;
      const auto& dl = delivering[c->thread];
      if (k < dl.size()) g.creation_cost = dl[k]->end - dl[k]->start;
      table.grains_.push_back(std::move(g));
    }
  }

  table.by_path_.reserve(table.grains_.size());
  for (size_t i = 0; i < table.grains_.size(); ++i)
    table.by_path_.emplace(table.grains_[i].path, i);
  return table;
}

const Grain* GrainTable::by_path(const std::string& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? nullptr : &grains_[it->second];
}

std::vector<const Grain*> GrainTable::children_of(TaskId parent) const {
  std::vector<const Grain*> out;
  for (const Grain& g : grains_) {
    if (g.kind == GrainKind::Task && g.parent == parent) out.push_back(&g);
  }
  std::sort(out.begin(), out.end(), [](const Grain* a, const Grain* b) {
    return a->task < b->task;
  });
  return out;
}

}  // namespace gg
