#include "graph/grain_table.hpp"

#include <algorithm>
#include <functional>

#include "common/check.hpp"
#include "graph/thread_groups.hpp"

namespace gg {

namespace {

/// Computes the path-enumeration id of every task: root is "0", a child is
/// "<parent path>.<child_index>".
std::unordered_map<TaskId, std::string> task_paths(const Trace& trace) {
  std::unordered_map<TaskId, std::string> paths;
  paths.reserve(trace.tasks.size());
  // Tasks are sorted by uid and every runtime assigns child uids greater
  // than the parent's... which is true for both our engines (monotonic
  // counters), but don't rely on it: iterate until fixpoint-free ordering
  // via recursion over the parent chain.
  std::function<const std::string&(TaskId)> path_of =
      [&](TaskId uid) -> const std::string& {
    auto it = paths.find(uid);
    if (it != paths.end()) return it->second;
    const auto idx = trace.task_index(uid);
    GG_CHECK(idx.has_value());
    const TaskRec& t = trace.tasks[*idx];
    std::string p;
    if (t.uid == kRootTask || t.parent == kNoTask) {
      p = "0";
    } else {
      p = path_of(t.parent) + "." + std::to_string(t.child_index);
    }
    return paths.emplace(uid, std::move(p)).first->second;
  };
  for (const TaskRec& t : trace.tasks) path_of(t.uid);
  return paths;
}

}  // namespace

GrainTable GrainTable::build(const Trace& trace) {
  GG_CHECK(trace.finalized());
  GrainTable table;
  const auto paths = task_paths(trace);

  // --- Task grains ---------------------------------------------------------
  // First pass: per-task aggregates.
  FlatMap<TaskId, size_t> index_of;
  index_of.reserve(trace.tasks.size());
  table.grains_.reserve(trace.grain_count());
  for (const TaskRec& t : trace.tasks) {
    if (t.uid == kRootTask) continue;
    Grain g;
    g.kind = GrainKind::Task;
    g.task = t.uid;
    g.parent = t.parent;
    g.src = t.src;
    g.path = paths.at(t.uid);
    g.creation_cost = t.creation_cost;
    g.inlined = t.inlined;
    const auto frags = trace.fragments_span(t.uid);
    GG_CHECK(!frags.empty());
    g.first_start = frags.front().start;
    g.last_end = frags.back().end;
    g.core = frags.front().core;
    g.n_fragments = static_cast<u32>(frags.size());
    for (const FragmentRec& f : frags) {
      g.exec_time += f.end - f.start;
      g.counters += f.counters;
      if (f.end_reason == FragmentEnd::Fork) g.n_children++;
    }
    index_of[t.uid] = table.grains_.size();
    table.grains_.push_back(std::move(g));
  }

  // Second pass: synchronization-cost shares. Walk every task's fragment
  // stream matching forked children to the join they synchronize at (the
  // same pending-children discipline as the graph builder). Children left
  // unjoined synchronize at the root's last join (the implicit barrier).
  std::vector<TaskId> unjoined;
  const JoinRec* root_last_join = nullptr;
  {
    const auto rjoins = trace.joins_span(kRootTask);
    if (!rjoins.empty()) root_last_join = &rjoins.back();
  }
  size_t root_barrier_extra = 0;  // children of root pending at its last join
  for (const TaskRec& t : trace.tasks) {
    const auto frags = trace.fragments_span(t.uid);
    const auto joins = trace.joins_span(t.uid);
    std::vector<TaskId> pending;
    for (const FragmentRec& f : frags) {
      if (f.end_reason == FragmentEnd::Fork) {
        pending.push_back(f.end_ref);
      } else if (f.end_reason == FragmentEnd::Join) {
        const JoinRec* jr = nullptr;
        for (const JoinRec& j : joins) {
          if (j.seq == f.end_ref) jr = &j;
        }
        GG_CHECK(jr != nullptr);
        // The chargeable synchronization cost is the join overhead — the
        // tail of the join interval not overlapped by any synchronizing
        // child's execution. Time the parent spends merely *waiting* for
        // (or helping while) children run is not a parallelization cost.
        TimeNs last_child_end = jr->start;
        for (TaskId c : pending) {
          if (const size_t* row = index_of.find(c)) {
            last_child_end =
                std::max(last_child_end, table.grains_[*row].last_end);
          }
        }
        const TimeNs overhead =
            jr->end > last_child_end ? jr->end - last_child_end : 0;
        const TimeNs share = pending.empty() ? 0 : overhead / pending.size();
        for (TaskId c : pending) {
          if (const size_t* row = index_of.find(c))
            table.grains_[*row].sync_cost = share;
        }
        if (t.uid == kRootTask && jr == root_last_join)
          root_barrier_extra = pending.size();
        pending.clear();
      }
    }
    for (TaskId c : pending) unjoined.push_back(c);
  }
  if (!unjoined.empty() && root_last_join != nullptr) {
    const size_t total = unjoined.size() + root_barrier_extra;
    TimeNs last_child_end = root_last_join->start;
    for (TaskId c : unjoined) {
      if (const size_t* row = index_of.find(c)) {
        last_child_end =
            std::max(last_child_end, table.grains_[*row].last_end);
      }
    }
    const TimeNs overhead = root_last_join->end > last_child_end
                                ? root_last_join->end - last_child_end
                                : 0;
    const TimeNs share = overhead / total;
    for (TaskId c : unjoined) {
      if (const size_t* row = index_of.find(c))
        table.grains_[*row].sync_cost = share;
    }
  }

  // --- Chunk grains ----------------------------------------------------------
  for (const LoopRec& loop : trace.loops) {
    // Pair each chunk with the book-keeping step that delivered it: the
    // n-th got_chunk book-keeping of a thread delivered the n-th chunk.
    // Both record kinds are (thread, seq)-sorted runs after finalize().
    std::string loop_prefix = "L";
    loop_prefix += std::to_string(loop.starting_thread);
    loop_prefix += '.';
    loop_prefix += std::to_string(loop.seq);
    loop_prefix += ':';
    for_each_thread_pair(
        trace.chunks_span(loop.uid), trace.bookkeeps_span(loop.uid),
        [&](u16, std::span<const ChunkRec> cs,
            std::span<const BookkeepRec> bs) {
          size_t bi = 0;  // next got_chunk book-keeping record
          for (const ChunkRec& c : cs) {
            Grain g;
            g.kind = GrainKind::Chunk;
            g.loop = loop.uid;
            g.thread = c.thread;
            g.chunk_seq = c.seq_on_thread;
            g.iter_begin = c.iter_begin;
            g.iter_end = c.iter_end;
            g.parent = loop.enclosing_task;
            g.src = loop.src;
            g.path = loop_prefix + std::to_string(c.iter_begin) + "-" +
                     std::to_string(c.iter_end);
            g.first_start = c.start;
            g.last_end = c.end;
            g.exec_time = c.end - c.start;
            g.counters = c.counters;
            g.core = c.core;
            while (bi < bs.size() && !bs[bi].got_chunk) ++bi;
            if (bi < bs.size()) {
              g.creation_cost = bs[bi].end - bs[bi].start;
              ++bi;
            }
            table.grains_.push_back(std::move(g));
          }
        });
  }

  table.by_path_.reserve(table.grains_.size());
  for (size_t i = 0; i < table.grains_.size(); ++i)
    table.by_path_.emplace(table.grains_[i].path, i);
  return table;
}

const Grain* GrainTable::by_path(const std::string& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? nullptr : &grains_[it->second];
}

std::vector<const Grain*> GrainTable::children_of(TaskId parent) const {
  std::vector<const Grain*> out;
  for (const Grain& g : grains_) {
    if (g.kind == GrainKind::Task && g.parent == parent) out.push_back(&g);
  }
  std::sort(out.begin(), out.end(), [](const Grain* a, const Grain* b) {
    return a->task < b->task;
  });
  return out;
}

GrainLookup::GrainLookup(const GrainTable& table) {
  const auto& grains = table.grains();
  task_.reserve(grains.size());
  chunk_.reserve(grains.size());
  for (size_t i = 0; i < grains.size(); ++i) {
    const Grain& g = grains[i];
    if (g.kind == GrainKind::Task) {
      task_[g.task] = i;
    } else {
      chunk_[ChunkKey{g.loop, g.chunk_seq, g.thread}] = i;
    }
  }
}

std::optional<size_t> GrainLookup::task_row(TaskId uid) const {
  const size_t* row = task_.find(uid);
  if (row == nullptr) return std::nullopt;
  return *row;
}

std::optional<size_t> GrainLookup::chunk_row(LoopId loop, u16 thread,
                                             u32 seq) const {
  const size_t* row = chunk_.find(ChunkKey{loop, seq, thread});
  if (row == nullptr) return std::nullopt;
  return *row;
}

std::optional<size_t> GrainLookup::row_of(const GraphNode& n) const {
  if (n.kind == NodeKind::Fragment && n.task != kRootTask)
    return task_row(n.task);
  if (n.kind == NodeKind::Chunk) return chunk_row(n.loop, n.thread, n.seq);
  return std::nullopt;
}

}  // namespace gg
