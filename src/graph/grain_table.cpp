#include "graph/grain_table.hpp"

#include <algorithm>
#include <mutex>
#include <string_view>
#include <unordered_map>

#include "common/check.hpp"
#include "common/par_for.hpp"
#include "graph/thread_groups.hpp"

namespace gg {

namespace {

/// Path-enumeration id of one task: root is "0", a child is
/// "<parent path>.<child_index>". Each call walks the parent chain
/// independently, so the pass parallelizes without a shared memo; the cost
/// stays linear in the emitted string length, which is what the memoized
/// serial walk paid too (it copied the parent's path into every child).
std::string task_path(const Trace& trace, const TaskRec& t0) {
  std::vector<u32> chain;  // child indices, deepest first
  const TaskRec* t = &t0;
  size_t steps = 0;
  while (t->uid != kRootTask && t->parent != kNoTask) {
    chain.push_back(t->child_index);
    const auto idx = trace.task_index(t->parent);
    GG_CHECK(idx.has_value());
    t = &trace.tasks[*idx];
    GG_CHECK_MSG(++steps <= trace.tasks.size(),
                 "task parent chain contains a cycle");
  }
  std::string p = "0";
  for (size_t i = chain.size(); i-- > 0;) {
    p += '.';
    p += std::to_string(chain[i]);
  }
  return p;
}

/// Synchronization-cost writes one shard of tasks produced, in walk order.
/// Shards only collect; the writes are applied serially in shard order so
/// the combined sequence is exactly the serial builder's (last writer wins
/// even on damaged traces where two parents claim the same child).
struct SyncShard {
  std::vector<std::pair<size_t, TimeNs>> assigns;  // (row, share)
  std::vector<TaskId> unjoined;
  size_t root_barrier_extra = 0;
  bool root_barrier_seen = false;
};

}  // namespace

struct GrainTable::PathIndex {
  std::once_flag once;
  std::unordered_map<std::string_view, size_t> map;
};

GrainTable::GrainTable() : index_(std::make_unique<PathIndex>()) {}
GrainTable::~GrainTable() = default;
GrainTable::GrainTable(GrainTable&&) noexcept = default;
GrainTable& GrainTable::operator=(GrainTable&&) noexcept = default;

// The path index views into grains_[i].path, so it never transfers across a
// copy: the copy gets a fresh (unbuilt) index over its own strings. Moves
// keep the index — the Grain objects (and their string buffers) stay put.
GrainTable::GrainTable(const GrainTable& other)
    : grains_(other.grains_), index_(std::make_unique<PathIndex>()) {}
GrainTable& GrainTable::operator=(const GrainTable& other) {
  if (this != &other) {
    grains_ = other.grains_;
    index_ = std::make_unique<PathIndex>();
  }
  return *this;
}

GrainTable GrainTable::build(const Trace& trace, int threads) {
  GG_CHECK(trace.finalized());
  GrainTable table;
  const size_t ntasks = trace.tasks.size();
  const size_t t = static_cast<size_t>(std::max(threads, 1));

  // Tasks are uid-sorted and the root uid is 0, so root records (the region
  // itself, not a grain) occupy a prefix; every other task's row is its
  // position minus that prefix — a pure function of the sorted order,
  // independent of sharding.
  size_t nroots = 0;
  while (nroots < ntasks && trace.tasks[nroots].uid == kRootTask) ++nroots;
  const size_t ntask_grains = ntasks - nroots;

  // Chunk grain rows follow the task grains, one run per loop in loop
  // order; prefix-summed bases let every shard fill its loops in place.
  const size_t nloops = trace.loops.size();
  std::vector<size_t> chunk_base(nloops + 1, ntask_grains);
  for (size_t l = 0; l < nloops; ++l) {
    chunk_base[l + 1] =
        chunk_base[l] + trace.chunks_span(trace.loops[l].uid).size();
  }
  table.grains_.resize(chunk_base[nloops]);

  // --- Task grains ---------------------------------------------------------
  // First pass: per-task aggregates, written to disjoint rows.
  const size_t task_shards = ntask_grains == 0 ? 1 : std::min(t, ntask_grains);
  par_for_shard(task_shards, [&](size_t s) {
    const size_t lo = nroots + ntask_grains * s / task_shards;
    const size_t hi = nroots + ntask_grains * (s + 1) / task_shards;
    for (size_t i = lo; i < hi; ++i) {
      const TaskRec& tr = trace.tasks[i];
      Grain g;
      g.kind = GrainKind::Task;
      g.task = tr.uid;
      g.parent = tr.parent;
      g.src = tr.src;
      g.path = task_path(trace, tr);
      g.creation_cost = tr.creation_cost;
      g.inlined = tr.inlined;
      const auto frags = trace.fragments_span(tr.uid);
      GG_CHECK(!frags.empty());
      g.first_start = frags.front().start;
      g.last_end = frags.back().end;
      g.core = frags.front().core;
      g.n_fragments = static_cast<u32>(frags.size());
      for (const FragmentRec& f : frags) {
        g.exec_time += f.end - f.start;
        g.counters += f.counters;
        if (f.end_reason == FragmentEnd::Fork) g.n_children++;
      }
      table.grains_[i - nroots] = std::move(g);
    }
  });

  // Row of a task grain by uid; duplicate uids (damaged traces) resolve to
  // the last occurrence, matching the serial builder's insert order.
  FlatMap<TaskId, size_t> index_of;
  index_of.reserve(ntask_grains);
  for (size_t i = nroots; i < ntasks; ++i)
    index_of[trace.tasks[i].uid] = i - nroots;

  // Second pass: synchronization-cost shares. Walk every task's fragment
  // stream matching forked children to the join they synchronize at (the
  // same pending-children discipline as the graph builder). Children left
  // unjoined synchronize at the root's last join (the implicit barrier).
  const JoinRec* root_last_join = nullptr;
  {
    const auto rjoins = trace.joins_span(kRootTask);
    if (!rjoins.empty()) root_last_join = &rjoins.back();
  }
  const size_t sync_shards = ntasks == 0 ? 1 : std::min(t, ntasks);
  std::vector<SyncShard> sync(sync_shards);
  par_for_shard(sync_shards, [&](size_t s) {
    SyncShard& sh = sync[s];
    const size_t lo = ntasks * s / sync_shards;
    const size_t hi = ntasks * (s + 1) / sync_shards;
    std::vector<TaskId> pending;
    for (size_t i = lo; i < hi; ++i) {
      const TaskRec& tr = trace.tasks[i];
      const auto frags = trace.fragments_span(tr.uid);
      const auto joins = trace.joins_span(tr.uid);
      pending.clear();
      for (const FragmentRec& f : frags) {
        if (f.end_reason == FragmentEnd::Fork) {
          pending.push_back(f.end_ref);
        } else if (f.end_reason == FragmentEnd::Join) {
          const JoinRec* jr = find_join(joins, f.end_ref);
          GG_CHECK(jr != nullptr);
          // The chargeable synchronization cost is the join overhead — the
          // tail of the join interval not overlapped by any synchronizing
          // child's execution. Time the parent spends merely *waiting* for
          // (or helping while) children run is not a parallelization cost.
          TimeNs last_child_end = jr->start;
          for (TaskId c : pending) {
            if (const size_t* row = index_of.find(c)) {
              last_child_end =
                  std::max(last_child_end, table.grains_[*row].last_end);
            }
          }
          const TimeNs overhead =
              jr->end > last_child_end ? jr->end - last_child_end : 0;
          const TimeNs share = pending.empty() ? 0 : overhead / pending.size();
          for (TaskId c : pending) {
            if (const size_t* row = index_of.find(c))
              sh.assigns.emplace_back(*row, share);
          }
          if (tr.uid == kRootTask && jr == root_last_join) {
            sh.root_barrier_extra = pending.size();
            sh.root_barrier_seen = true;
          }
          pending.clear();
        }
      }
      for (TaskId c : pending) sh.unjoined.push_back(c);
    }
  });
  std::vector<TaskId> unjoined;
  size_t root_barrier_extra = 0;  // children of root pending at its last join
  for (const SyncShard& sh : sync) {
    for (const auto& [row, share] : sh.assigns)
      table.grains_[row].sync_cost = share;
    if (sh.root_barrier_seen) root_barrier_extra = sh.root_barrier_extra;
    unjoined.insert(unjoined.end(), sh.unjoined.begin(), sh.unjoined.end());
  }
  if (!unjoined.empty() && root_last_join != nullptr) {
    const size_t total = unjoined.size() + root_barrier_extra;
    TimeNs last_child_end = root_last_join->start;
    for (TaskId c : unjoined) {
      if (const size_t* row = index_of.find(c)) {
        last_child_end =
            std::max(last_child_end, table.grains_[*row].last_end);
      }
    }
    const TimeNs overhead = root_last_join->end > last_child_end
                                ? root_last_join->end - last_child_end
                                : 0;
    const TimeNs share = overhead / total;
    for (TaskId c : unjoined) {
      if (const size_t* row = index_of.find(c))
        table.grains_[*row].sync_cost = share;
    }
  }

  // --- Chunk grains --------------------------------------------------------
  const size_t loop_shards = nloops == 0 ? 1 : std::min(t, nloops);
  par_for_shard(loop_shards, [&](size_t s) {
    const size_t lo = nloops * s / loop_shards;
    const size_t hi = nloops * (s + 1) / loop_shards;
    for (size_t l = lo; l < hi; ++l) {
      const LoopRec& loop = trace.loops[l];
      size_t row = chunk_base[l];
      // Pair each chunk with the book-keeping step that delivered it: the
      // n-th got_chunk book-keeping of a thread delivered the n-th chunk.
      // Both record kinds are (thread, seq)-sorted runs after finalize().
      std::string loop_prefix = "L";
      loop_prefix += std::to_string(loop.starting_thread);
      loop_prefix += '.';
      loop_prefix += std::to_string(loop.seq);
      loop_prefix += ':';
      for_each_thread_pair(
          trace.chunks_span(loop.uid), trace.bookkeeps_span(loop.uid),
          [&](u16, std::span<const ChunkRec> cs,
              std::span<const BookkeepRec> bs) {
            size_t bi = 0;  // next got_chunk book-keeping record
            for (const ChunkRec& c : cs) {
              Grain g;
              g.kind = GrainKind::Chunk;
              g.loop = loop.uid;
              g.thread = c.thread;
              g.chunk_seq = c.seq_on_thread;
              g.iter_begin = c.iter_begin;
              g.iter_end = c.iter_end;
              g.parent = loop.enclosing_task;
              g.src = loop.src;
              g.path = loop_prefix + std::to_string(c.iter_begin) + "-" +
                       std::to_string(c.iter_end);
              g.first_start = c.start;
              g.last_end = c.end;
              g.exec_time = c.end - c.start;
              g.counters = c.counters;
              g.core = c.core;
              while (bi < bs.size() && !bs[bi].got_chunk) ++bi;
              if (bi < bs.size()) {
                g.creation_cost = bs[bi].end - bs[bi].start;
                ++bi;
              }
              table.grains_[row++] = std::move(g);
            }
          });
      GG_CHECK(row == chunk_base[l + 1]);
    }
  });

  return table;
}

const Grain* GrainTable::by_path(const std::string& path) const {
  if (index_ == nullptr) return nullptr;  // moved-from table
  std::call_once(index_->once, [&] {
    index_->map.reserve(grains_.size());
    for (size_t i = 0; i < grains_.size(); ++i)
      index_->map.emplace(std::string_view(grains_[i].path), i);
  });
  auto it = index_->map.find(std::string_view(path));
  return it == index_->map.end() ? nullptr : &grains_[it->second];
}

std::vector<const Grain*> GrainTable::children_of(TaskId parent) const {
  std::vector<const Grain*> out;
  for (const Grain& g : grains_) {
    if (g.kind == GrainKind::Task && g.parent == parent) out.push_back(&g);
  }
  std::sort(out.begin(), out.end(), [](const Grain* a, const Grain* b) {
    return a->task < b->task;
  });
  return out;
}

GrainLookup::GrainLookup(const GrainTable& table) {
  const auto& grains = table.grains();
  task_.reserve(grains.size());
  chunk_.reserve(grains.size());
  for (size_t i = 0; i < grains.size(); ++i) {
    const Grain& g = grains[i];
    if (g.kind == GrainKind::Task) {
      task_[g.task] = i;
    } else {
      chunk_[ChunkKey{g.loop, g.chunk_seq, g.thread}] = i;
    }
  }
}

std::optional<size_t> GrainLookup::task_row(TaskId uid) const {
  const size_t* row = task_.find(uid);
  if (row == nullptr) return std::nullopt;
  return *row;
}

std::optional<size_t> GrainLookup::chunk_row(LoopId loop, u16 thread,
                                             u32 seq) const {
  const size_t* row = chunk_.find(ChunkKey{loop, seq, thread});
  if (row == nullptr) return std::nullopt;
  return *row;
}

std::optional<size_t> GrainLookup::row_of(const GraphNode& n) const {
  if (n.kind == NodeKind::Fragment && n.task != kRootTask)
    return task_row(n.task);
  if (n.kind == NodeKind::Chunk) return chunk_row(n.loop, n.thread, n.seq);
  return std::nullopt;
}

}  // namespace gg
