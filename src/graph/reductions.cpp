#include "graph/reductions.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.hpp"

namespace gg {

namespace {

/// Merges `src` into the accumulated group node `dst`.
void merge_into(GraphNode& dst, const GraphNode& src) {
  dst.start = std::min(dst.start, src.start);
  dst.end = std::max(dst.end, src.end);
  dst.seq = std::min(dst.seq, src.seq);
  dst.counters += src.counters;
  dst.busy += src.busy;
  dst.group_size += src.group_size;
  dst.iter_begin = std::min(dst.iter_begin, src.iter_begin);
  dst.iter_end = std::max(dst.iter_end, src.iter_end);
}

}  // namespace

GrainGraph reduce_graph(const GrainGraph& g, const ReductionOptions& opts) {
  const auto& nodes = g.nodes();
  const auto& edges = g.edges();

  // Fork grouping key: forks of one task created between the same pair of
  // joins group together. Rank each fork by the number of same-task joins
  // that start no later than it (event times within a task are ordered).
  std::map<TaskId, std::vector<TimeNs>> join_starts;
  if (opts.forks) {
    for (const GraphNode& n : nodes) {
      if (n.kind == NodeKind::Join && n.task != kNoTask && n.loop == 0)
        join_starts[n.task].push_back(n.start);
    }
    for (auto& [task, starts] : join_starts)
      std::sort(starts.begin(), starts.end());
  }

  // Group key per node; empty string = keep as an individual node.
  auto key_of = [&](const GraphNode& n) -> std::string {
    switch (n.kind) {
      case NodeKind::Fragment:
        if (opts.fragments)
          return "f:" + std::to_string(n.task);
        return {};
      case NodeKind::Fork:
        if (opts.forks) {
          const auto& starts = join_starts[n.task];
          const size_t rank = static_cast<size_t>(
              std::upper_bound(starts.begin(), starts.end(), n.start) -
              starts.begin());
          return "k:" + std::to_string(n.task) + ":" + std::to_string(rank);
        }
        return {};
      case NodeKind::Bookkeep:
        if (opts.bookkeeps)
          return "b:" + std::to_string(n.loop) + ":" + std::to_string(n.thread);
        return {};
      default:
        return {};
    }
  };

  GrainGraph out;
  std::vector<u32> remap(nodes.size());
  std::unordered_map<std::string, u32> reps;
  std::vector<GraphNode> merged;  // staged nodes for group representatives

  // Stage nodes: individual nodes are added directly; grouped nodes are
  // accumulated first so their aggregate weights are complete before adding.
  std::vector<std::pair<bool, u32>> staging(nodes.size());  // (grouped, idx)
  for (u32 i = 0; i < nodes.size(); ++i) {
    const std::string key = key_of(nodes[i]);
    if (key.empty()) {
      staging[i] = {false, i};
      continue;
    }
    auto it = reps.find(key);
    if (it == reps.end()) {
      const u32 mi = static_cast<u32>(merged.size());
      merged.push_back(nodes[i]);
      reps.emplace(key, mi);
      staging[i] = {true, mi};
    } else {
      merge_into(merged[it->second], nodes[i]);
      staging[i] = {true, it->second};
    }
  }
  // Emit: merged nodes first, then singles, building the remap table.
  std::vector<u32> merged_new_index(merged.size());
  for (u32 mi = 0; mi < merged.size(); ++mi)
    merged_new_index[mi] = out.add_node(merged[mi]);
  for (u32 i = 0; i < nodes.size(); ++i) {
    const auto [grouped, idx] = staging[i];
    remap[i] = grouped ? merged_new_index[idx] : out.add_node(nodes[i]);
  }

  // Edges: drop self-edges, coalesce duplicates of the same kind.
  std::unordered_set<u64> seen;
  for (const GraphEdge& e : edges) {
    const u32 a = remap[e.from];
    const u32 b = remap[e.to];
    if (a == b) continue;
    const u64 sig = (static_cast<u64>(a) << 34) ^ (static_cast<u64>(b) << 2) ^
                    static_cast<u64>(e.kind);
    if (!seen.insert(sig).second) continue;
    out.add_edge(a, b, e.kind);
  }
  out.finalize_lenient();
  return out;
}

}  // namespace gg
