// The grain graph (paper §3.1).
//
// A directed acyclic graph capturing the order of creation and
// synchronization between grains. Five node kinds — fragment, fork, join,
// book-keeping, chunk — and three control-flow edge kinds — creation
// (fork -> first fragment of the child, green in the paper), join (last
// fragment of a synchronizing child -> join node, orange), and continuation
// (fragment -> fork/join within the same context, black).
//
// Connection constraints enforced by the builder and checked by
// validate_graph():
//  * a fork node connects to exactly one child first-fragment;
//  * at least one fragment connects to every join node (the root's implicit
//    barrier join may be childless);
//  * continuation edges only connect fragments to fork/join nodes of the
//    same task context;
//  * book-keeping nodes are followed by a chunk node when iterations remain
//    and continue to the loop's join node otherwise; chunk nodes always
//    continue to a book-keeping node.
//
// For a deterministic task-based program with fixed input the graph is
// independent of machine size and scheduling; for for-loop programs its
// shape depends on the profiled thread count (§3.1).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gg {

enum class NodeKind : u8 { Fragment, Fork, Join, Bookkeep, Chunk };
enum class EdgeKind : u8 { Creation, Join, Continuation, Dependence };

const char* to_string(NodeKind k);
const char* to_string(EdgeKind k);

struct GraphNode {
  NodeKind kind = NodeKind::Fragment;
  TaskId task = kNoTask;  ///< owning task context (Fragment/Fork/Join)
  LoopId loop = 0;        ///< owning loop (Bookkeep/Chunk/loop Join)
  u32 seq = 0;            ///< fragment seq / join seq / chunk seq-on-thread
  u16 thread = 0;         ///< executing thread (Bookkeep/Chunk)
  u16 core = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  Counters counters;
  StrId src = 0;
  u64 iter_begin = 0, iter_end = 0;  ///< Chunk: iteration range
  u32 group_size = 1;  ///< members represented after reduction
  TimeNs busy = 0;     ///< summed member durations (== duration() before
                       ///< reduction; aggregated weight afterwards)
  TimeNs duration() const { return end - start; }
};

struct GraphEdge {
  u32 from = 0;
  u32 to = 0;
  EdgeKind kind = EdgeKind::Continuation;
};

class GrainGraph {
 public:
  /// Builds the grain graph from a finalized, valid trace.
  ///
  /// `threads` shards the construction: fragment nodes are added by a
  /// parallel pass over the (task, seq)-sorted fragment vector, then each
  /// shard wires a contiguous block of tasks into local node/edge runs that
  /// a deterministic merge concatenates in task order — assigning every
  /// node and edge the exact id the serial builder would. The resulting
  /// graph (ids, edge order, topological order, every export) is
  /// bit-identical for every thread count.
  static GrainGraph build(const Trace& trace, int threads = 1);

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphEdge>& edges() const { return edges_; }

  /// Outgoing / incoming edge indices of a node (views into the CSR
  /// adjacency arrays; valid until the next finalize()).
  std::span<const u32> out_edges(u32 node) const;
  std::span<const u32> in_edges(u32 node) const;

  /// Node index of the first/last fragment of a task, if present.
  std::optional<u32> first_fragment(TaskId task) const;
  std::optional<u32> last_fragment(TaskId task) const;

  /// All node indices of a given kind.
  std::vector<u32> nodes_of_kind(NodeKind kind) const;

  /// Topological order (creation order is already topological; verified).
  const std::vector<u32>& topo_order() const { return topo_; }

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }

  /// Builder-side mutation API (used by build() and by reductions).
  u32 add_node(GraphNode node);
  void add_edge(u32 from, u32 to, EdgeKind kind);
  /// Recomputes adjacency, fragment indices, and the topological order;
  /// aborts on cycles. Must be called after mutation before queries.
  void finalize();
  /// finalize() without the DAG requirement — reduced graphs may contain
  /// join-back cycles. topo_order() is empty afterwards.
  void finalize_lenient();

 private:
  void finalize_impl(bool require_dag);

  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  // CSR adjacency: edge ids of node v live at [offsets[v], offsets[v+1]),
  // in ascending edge-id order (matching the old per-node push_back order).
  std::vector<u32> out_offsets_, out_edge_ids_;
  std::vector<u32> in_offsets_, in_edge_ids_;
  std::vector<u32> topo_;
  std::vector<std::pair<TaskId, std::pair<u32, u32>>> frag_range_;  // sorted
  bool finalized_ = false;
};

/// Structural invariant check; returns human-readable violations (empty ==
/// valid). See the header comment for the constraint list.
std::vector<std::string> validate_graph(const GrainGraph& g);

}  // namespace gg
