// The grain table: one row per grain (task instance or loop chunk), the
// unit everything in §3.2 is derived at.
//
// Grains carry schedule-independent identifiers so runs of the same program
// on different machine sizes can be compared grain-by-grain (needed for the
// work-deviation metric):
//  * tasks use path enumeration — the chain of creation indices from the
//    root, e.g. "0.2.1" (§3.1: "relies on the static nature of the graph");
//  * chunks use (starting thread of the loop, loop sequence counter,
//    iteration range), e.g. "L0.2:128-256".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/flat_hash.hpp"
#include "graph/grain_graph.hpp"
#include "trace/trace.hpp"

namespace gg {

enum class GrainKind : u8 { Task, Chunk };

struct Grain {
  GrainKind kind = GrainKind::Task;
  // Task grains.
  TaskId task = kNoTask;
  // Chunk grains.
  LoopId loop = 0;
  u16 thread = 0;
  u32 chunk_seq = 0;
  u64 iter_begin = 0, iter_end = 0;

  std::string path;  ///< schedule-independent identifier
  StrId src = 0;     ///< definition site
  TaskId parent = kNoTask;  ///< creating task (chunks: loop's enclosing task)

  TimeNs first_start = 0;
  TimeNs last_end = 0;
  TimeNs exec_time = 0;  ///< sum of fragment durations / chunk duration
  Counters counters;
  u16 core = 0;
  u32 n_fragments = 1;
  u32 n_children = 0;  ///< direct children spawned (task grains)
  bool inlined = false;

  /// Parallelization cost components (§3.2, parallel benefit):
  /// creation_cost — time the parent spent creating this grain (tasks), or
  /// the book-keeping time that delivered this chunk (chunks);
  /// sync_cost — the parent's synchronization time averaged over the
  /// siblings synchronizing at the same join.
  TimeNs creation_cost = 0;
  TimeNs sync_cost = 0;
};

class GrainTable {
 public:
  /// Builds the table from a finalized trace. The root task is the region
  /// itself and is not a grain (matching the paper's grain counts).
  ///
  /// `threads` shards the build: task grains are filled by a parallel pass
  /// over the uid-sorted task vector (rows are a pure function of task
  /// position), chunk grains by a parallel pass over loops with
  /// prefix-summed row bases, and synchronization-cost shares are collected
  /// per shard and applied serially in global task order. Rows, paths, and
  /// costs are bit-identical for every thread count.
  static GrainTable build(const Trace& trace, int threads = 1);

  GrainTable();
  ~GrainTable();
  GrainTable(GrainTable&&) noexcept;
  GrainTable& operator=(GrainTable&&) noexcept;
  GrainTable(const GrainTable& other);
  GrainTable& operator=(const GrainTable& other);

  const std::vector<Grain>& grains() const { return grains_; }
  size_t size() const { return grains_.size(); }

  /// Looks up a grain by its schedule-independent path. The index is built
  /// lazily on first use (thread-safe), so the bulk load→graph→grains
  /// pipeline never pays for hashing millions of path strings.
  const Grain* by_path(const std::string& path) const;
  /// All task grains that are children of `parent`, in creation order.
  std::vector<const Grain*> children_of(TaskId parent) const;

 private:
  struct PathIndex;  // lazy path → row map; keys view into grains_[i].path

  std::vector<Grain> grains_;
  mutable std::unique_ptr<PathIndex> index_;
};

/// Flat-hash index from trace identities to grain-table rows, shared by the
/// metric passes and the exporters (both need to map graph nodes back to
/// grains; each used to build its own ordered std::map).
class GrainLookup {
 public:
  explicit GrainLookup(const GrainTable& table);

  /// Row of a task grain; nullopt for the root and unknown uids.
  std::optional<size_t> task_row(TaskId uid) const;

  /// Row of a chunk grain by its (loop, thread, seq-on-thread) identity.
  std::optional<size_t> chunk_row(LoopId loop, u16 thread, u32 seq) const;

  /// Row of the grain a graph node represents: task grains for non-root
  /// fragment nodes, chunk grains for chunk nodes; nullopt for everything
  /// else (forks, joins, book-keeping, root fragments).
  std::optional<size_t> row_of(const GraphNode& n) const;

 private:
  struct ChunkKey {
    LoopId loop = 0;
    u32 seq = 0;
    u16 thread = 0;
    bool operator==(const ChunkKey&) const = default;
  };
  struct ChunkKeyHash {
    size_t operator()(const ChunkKey& k) const {
      return static_cast<size_t>(flat_hash_mix64(
          k.loop ^ (static_cast<u64>(k.thread) << 48) ^
          (static_cast<u64>(k.seq) << 16)));
    }
  };

  FlatMap<TaskId, size_t> task_;
  FlatMap<ChunkKey, size_t, ChunkKeyHash> chunk_;
};

}  // namespace gg
