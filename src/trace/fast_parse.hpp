// Buffered trace parsing: whole-input string_view parsers that avoid the
// per-line istringstream and per-field allocation of the legacy stream
// loader. Text records are cut with std::from_chars over string views;
// binary records go through the same bounds-checked reader as before, just
// over a caller-owned buffer. Both are reached through the load_trace*_ex
// API (LoadOptions::engine selects the text implementation) and preserve the
// Strict/Lenient/Salvage diagnostics and exit-code contract.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "trace/load_result.hpp"

namespace gg {

/// Parses a complete text trace held in `buf`. Same records, same traces,
/// same diagnostics (codes, line numbers, messages) as the legacy stream
/// loader on well-formed and malformed input alike.
LoadResult parse_trace_text(std::string_view buf, const LoadOptions& opts = {});

/// Parses a complete binary trace held in `buf` (GGTB1/2/3). Bounds-checked;
/// a corrupt count or length can never over-read or over-allocate.
LoadResult parse_trace_binary(std::string_view buf,
                              const LoadOptions& opts = {});

/// Reads an entire file into `out` with one block read (no istreambuf
/// iterators). Returns false if the file cannot be opened.
bool read_file_contents(const std::string& path, std::string& out);

/// Drains an istream into a string with large block reads.
std::string slurp_stream(std::istream& is);

}  // namespace gg
