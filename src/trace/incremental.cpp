#include "trace/incremental.hpp"

#include <algorithm>
#include <string>

namespace gg::spool {

namespace {

u32 read_le32_at(std::string_view s, size_t pos) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(static_cast<u8>(s[pos + static_cast<size_t>(i)]))
         << (8 * i);
  return v;
}

/// Squashes a multi-line diagnostic into one provenance note ("; "-joined):
/// notes must stay single-line for the text trace format.
std::string collapse_lines(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  bool pending_sep = false;
  for (char c : text) {
    if (c == '\n') {
      pending_sep = true;
      continue;
    }
    if (pending_sep && !out.empty()) out += "; ";
    pending_sep = false;
    out.push_back(c);
  }
  return out;
}

}  // namespace

IncrementalTrace::IncrementalTrace(u32 num_workers)
    : num_workers_(num_workers) {
  report_.epochs_per_worker.assign(num_workers, 0);
  next_seq_.assign(num_workers, 0);
}

u64 IncrementalTrace::epochs_applied() const {
  u64 n = 0;
  for (u64 e : report_.epochs_per_worker) n += e;
  return n;
}

FrameOutcome IncrementalTrace::apply_frame(FrameType type, u32 worker,
                                           u32 seq, std::string_view payload,
                                           u64 stored_checksum, u64 offset) {
  RecoverReport& rep = report_;
  Trace& t = trace_;
  ++rep.frames_total;
  if (frame_checksum(type, worker, seq, payload.data(), payload.size()) !=
      stored_checksum) {
    if (type == FrameType::Telemetry) {
      // Telemetry is advisory: a corrupt snapshot degrades to "telemetry
      // unavailable" without damaging the recovered trace.
      ++rep.telemetry_corrupt;
      rep.diagnostics.push_back("corrupt telemetry frame at offset " +
                                std::to_string(offset) +
                                ", telemetry degraded");
      return FrameOutcome::TelemetryCorrupt;
    }
    ++rep.frames_corrupt;
    rep.diagnostics.push_back("checksum mismatch in frame at offset " +
                              std::to_string(offset) + ", skipped");
    return FrameOutcome::CorruptSkipped;
  }
  switch (type) {
    case FrameType::Meta:
    case FrameType::CleanFooter: {
      TraceMeta m;
      if (!decode_meta_payload(payload, &m)) {
        ++rep.frames_corrupt;
        rep.diagnostics.push_back("undecodable meta frame at offset " +
                                  std::to_string(offset));
        return FrameOutcome::CorruptSkipped;
      }
      t.meta = std::move(m);
      have_meta_ = true;
      ++rep.frames_kept;
      if (type == FrameType::CleanFooter) {
        rep.clean_footer = true;
        return FrameOutcome::Footer;
      }
      return FrameOutcome::Applied;
    }
    case FrameType::Strings: {
      if (payload.size() < 8) {
        ++rep.frames_out_of_order;
        rep.diagnostics.push_back("string delta at offset " +
                                  std::to_string(offset) +
                                  " does not extend the table, skipped");
        return FrameOutcome::OutOfOrderSkipped;
      }
      const u32 first_id = read_le32_at(payload, 0);
      const u32 count = read_le32_at(payload, 4);
      if (first_id != t.strings.size()) {
        ++rep.frames_out_of_order;
        rep.diagnostics.push_back("string delta at offset " +
                                  std::to_string(offset) +
                                  " does not extend the table, skipped");
        return FrameOutcome::OutOfOrderSkipped;
      }
      // Intern as we decode (the valid prefix of a half-garbled delta is
      // still worth keeping — its ids are referenced by sealed epochs).
      size_t pos = 8;
      bool ok = true;
      for (u32 i = 0; i < count; ++i) {
        if (payload.size() - pos < 4) {
          ok = false;
          break;
        }
        const u32 len = read_le32_at(payload, pos);
        pos += 4;
        if (payload.size() - pos < len) {
          ok = false;
          break;
        }
        t.strings.intern(std::string(payload.substr(pos, len)));
        resident_bytes_ += len;
        pos += len;
      }
      if (!ok) {
        ++rep.frames_corrupt;
        rep.diagnostics.push_back("undecodable string delta at offset " +
                                  std::to_string(offset));
        return FrameOutcome::CorruptSkipped;
      }
      ++rep.frames_kept;
      return FrameOutcome::Applied;
    }
    case FrameType::Epoch: {
      if (worker >= num_workers_) {
        ++rep.frames_corrupt;
        rep.diagnostics.push_back("epoch for unknown worker " +
                                  std::to_string(worker) + ", skipped");
        return FrameOutcome::CorruptSkipped;
      }
      if (seq < next_seq_[worker]) {
        ++rep.frames_out_of_order;
        rep.diagnostics.push_back(
            "worker " + std::to_string(worker) + " epoch seq " +
            std::to_string(seq) + " breaks the contiguous prefix (want " +
            std::to_string(next_seq_[worker]) + "), skipped");
        return FrameOutcome::OutOfOrderSkipped;
      }
      RecordBuffer buf;
      if (!decode_epoch_payload(payload, &buf)) {
        ++rep.frames_corrupt;
        rep.diagnostics.push_back("undecodable epoch at offset " +
                                  std::to_string(offset));
        return FrameOutcome::CorruptSkipped;
      }
      if (seq > next_seq_[worker]) {
        // The epochs in between rode frames that were skipped as corrupt.
        // Apply this one anyway: the bound is one epoch lost per bad frame.
        rep.epoch_gaps += seq - next_seq_[worker];
        rep.diagnostics.push_back(
            "worker " + std::to_string(worker) + " epoch seq " +
            std::to_string(seq) + " jumps the contiguous prefix (want " +
            std::to_string(next_seq_[worker]) + "): " +
            std::to_string(seq - next_seq_[worker]) + " epoch(s) lost");
      }
      auto move_into = [](auto& dst, auto& src) {
        dst.insert(dst.end(), src.begin(), src.end());
      };
      move_into(t.tasks, buf.tasks);
      move_into(t.fragments, buf.fragments);
      move_into(t.joins, buf.joins);
      move_into(t.loops, buf.loops);
      move_into(t.chunks, buf.chunks);
      move_into(t.bookkeeps, buf.bookkeeps);
      move_into(t.depends, buf.depends);
      move_into(t.worker_stats, buf.worker_stats);
      resident_bytes_ += buf.payload_bytes();
      next_seq_[worker] = seq + 1;
      ++rep.epochs_per_worker[worker];
      ++rep.frames_kept;
      return FrameOutcome::Applied;
    }
    case FrameType::Dump: {
      if (!rep.supervisor_dump.empty()) rep.supervisor_dump += "\n";
      rep.supervisor_dump.append(payload);
      resident_bytes_ += payload.size();
      ++rep.frames_kept;
      return FrameOutcome::Applied;
    }
    case FrameType::CrashFooter: {
      u32 sig = 0;
      std::string reason;
      if (payload.size() >= 4) {
        sig = read_le32_at(payload, 0);
        for (size_t i = 4; i < payload.size(); ++i) {
          const char c = payload[i];
          if (c == 0) break;
          reason.push_back(c);
        }
      }
      rep.crash_reason =
          !reason.empty() ? reason : "signal=" + std::to_string(sig);
      ++rep.frames_kept;
      return FrameOutcome::CrashFooter;
    }
    case FrameType::Telemetry: {
      // Keep the last valid snapshot: a crashed run's final 'T' frame is
      // its last known health state (ggstat reports it post-mortem).
      resident_bytes_ -= rep.telemetry.size();
      rep.telemetry.assign(payload);
      resident_bytes_ += rep.telemetry.size();
      ++rep.telemetry_frames;
      ++rep.frames_kept;
      return FrameOutcome::Telemetry;
    }
    default:
      ++rep.frames_corrupt;
      rep.diagnostics.push_back("unknown frame type at offset " +
                                std::to_string(offset) + ", skipped");
      return FrameOutcome::CorruptSkipped;
  }
}

void IncrementalTrace::note_torn_header(u64 offset) {
  report_.torn_tail = true;
  report_.diagnostics.push_back("torn frame header at offset " +
                                std::to_string(offset));
}

void IncrementalTrace::note_garbled_magic(u64 offset) {
  report_.torn_tail = true;
  report_.diagnostics.push_back("garbled frame magic at offset " +
                                std::to_string(offset));
}

void IncrementalTrace::note_overrun(u64 offset, u64 payload_len) {
  ++report_.frames_total;
  report_.torn_tail = true;
  report_.diagnostics.push_back("frame at offset " + std::to_string(offset) +
                                " overruns the file (len=" +
                                std::to_string(payload_len) + ")");
}

void IncrementalTrace::note_abandoned(u64 offset, u64 resume_offset) {
  ++report_.frames_total;
  ++report_.frames_corrupt;
  report_.diagnostics.push_back(
      "frame at offset " + std::to_string(offset) +
      " abandoned after the torn-tail deadline, resynced at offset " +
      std::to_string(resume_offset));
}

void IncrementalTrace::extend_region_to_records(Trace& t) {
  TimeNs max_end = t.meta.region_end;
  for (const auto& f : t.fragments) max_end = std::max(max_end, f.end);
  for (const auto& j : t.joins) max_end = std::max(max_end, j.end);
  for (const auto& c : t.chunks) max_end = std::max(max_end, c.end);
  for (const auto& b : t.bookkeeps) max_end = std::max(max_end, b.end);
  for (const auto& l : t.loops) max_end = std::max(max_end, l.end);
  t.meta.region_end = max_end;
}

bool IncrementalTrace::finish() {
  if (finished_) return usable_;
  finished_ = true;
  Trace& t = trace_;
  RecoverReport& rep = report_;
  const bool any_records =
      !t.tasks.empty() || !t.fragments.empty() || !t.chunks.empty() ||
      !t.loops.empty() || !t.joins.empty();
  if (!have_meta_ && !any_records) {
    rep.diagnostics.push_back("no recoverable frames");
    usable_ = false;
    return false;
  }
  if (!have_meta_) {
    t.meta.program = "<recovered>";
    t.meta.runtime = "recovered";
    t.meta.num_workers = static_cast<int>(num_workers_);
    t.meta.num_cores = static_cast<int>(num_workers_);
    rep.diagnostics.push_back("meta frame missing; synthesized defaults");
  }
  if (!rep.clean_footer) {
    // The footer carries the final region bounds; without it, extend the
    // region to cover everything that was recovered.
    extend_region_to_records(t);
  }
  const bool damaged = rep.partial() || rep.frames_corrupt > 0 ||
                       rep.frames_out_of_order > 0 || rep.epoch_gaps > 0 ||
                       rep.torn_tail;
  if (damaged) {
    t.meta.notes.push_back("recovered " + rep.summary());
    if (!rep.crash_reason.empty())
      t.meta.notes.push_back("crash " + rep.crash_reason);
  }
  if (!rep.supervisor_dump.empty())
    t.meta.notes.push_back("supervisor " + collapse_lines(rep.supervisor_dump));
  t.finalize();
  usable_ = true;
  return true;
}

}  // namespace gg::spool
