#include "trace/spool.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstring>
#include <exception>
#include <fstream>

#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "trace/incremental.hpp"
#include "trace/mmap_source.hpp"

namespace gg::spool {

namespace {

// --- little-endian primitives ----------------------------------------------

void put_u8(std::string& out, u8 v) { out.push_back(static_cast<char>(v)); }

void put_u16(std::string& out, u16 v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void put_u32(std::string& out, u32 v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& out, u64 v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<u32>(s.size()));
  out.append(s);
}

/// Bounds-checked little-endian reader; any overrun latches !ok and makes
/// every further read return 0 (the caller checks once at the end).
struct Reader {
  const char* p;
  size_t n;
  size_t pos = 0;
  bool ok = true;

  explicit Reader(std::string_view s) : p(s.data()), n(s.size()) {}

  bool need(size_t k) {
    if (!ok || n - pos < k) {
      ok = false;
      return false;
    }
    return true;
  }
  u8 get_u8() {
    if (!need(1)) return 0;
    return static_cast<u8>(p[pos++]);
  }
  u16 get_u16() {
    if (!need(2)) return 0;
    u16 v = 0;
    for (int i = 0; i < 2; ++i)
      v |= static_cast<u16>(static_cast<u8>(p[pos + static_cast<size_t>(i)]))
           << (8 * i);
    pos += 2;
    return v;
  }
  u32 get_u32() {
    if (!need(4)) return 0;
    u32 v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<u32>(static_cast<u8>(p[pos + static_cast<size_t>(i)]))
           << (8 * i);
    pos += 4;
    return v;
  }
  u64 get_u64() {
    if (!need(8)) return 0;
    u64 v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<u64>(static_cast<u8>(p[pos + static_cast<size_t>(i)]))
           << (8 * i);
    pos += 8;
    return v;
  }
  std::string get_str() {
    const u32 len = get_u32();
    if (!need(len)) return {};
    std::string s(p + pos, len);
    pos += len;
    return s;
  }
};

u32 read_le32(const char* p) {
  u32 v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<u32>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

u64 read_le64(const char* p) {
  u64 v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<u64>(static_cast<u8>(p[i])) << (8 * i);
  return v;
}

void write_le32(char* p, u32 v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void write_le64(char* p, u64 v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

// --- record payload encoding/decoding --------------------------------------

void put_counters(std::string& out, const Counters& c) {
  put_u64(out, c.compute);
  put_u64(out, c.stall);
  put_u64(out, c.cache_misses);
  put_u64(out, c.bytes_accessed);
}

Counters get_counters(Reader& r) {
  Counters c;
  c.compute = r.get_u64();
  c.stall = r.get_u64();
  c.cache_misses = r.get_u64();
  c.bytes_accessed = r.get_u64();
  return c;
}

void put_task(std::string& out, const TaskRec& t) {
  put_u64(out, t.uid);
  put_u64(out, t.parent);
  put_u32(out, t.child_index);
  put_u32(out, t.src);
  put_u64(out, t.create_time);
  put_u16(out, t.create_core);
  put_u64(out, t.creation_cost);
  put_u8(out, t.inlined ? 1 : 0);
}

TaskRec get_task(Reader& r) {
  TaskRec t;
  t.uid = r.get_u64();
  t.parent = r.get_u64();
  t.child_index = r.get_u32();
  t.src = r.get_u32();
  t.create_time = r.get_u64();
  t.create_core = r.get_u16();
  t.creation_cost = r.get_u64();
  t.inlined = r.get_u8() != 0;
  return t;
}

void put_fragment(std::string& out, const FragmentRec& f) {
  put_u64(out, f.task);
  put_u32(out, f.seq);
  put_u64(out, f.start);
  put_u64(out, f.end);
  put_u16(out, f.core);
  put_counters(out, f.counters);
  put_u8(out, static_cast<u8>(f.end_reason));
  put_u64(out, f.end_ref);
}

FragmentRec get_fragment(Reader& r) {
  FragmentRec f;
  f.task = r.get_u64();
  f.seq = r.get_u32();
  f.start = r.get_u64();
  f.end = r.get_u64();
  f.core = r.get_u16();
  f.counters = get_counters(r);
  f.end_reason = static_cast<FragmentEnd>(r.get_u8() & 0x3);
  f.end_ref = r.get_u64();
  return f;
}

void put_join(std::string& out, const JoinRec& j) {
  put_u64(out, j.task);
  put_u32(out, j.seq);
  put_u64(out, j.start);
  put_u64(out, j.end);
  put_u16(out, j.core);
}

JoinRec get_join(Reader& r) {
  JoinRec j;
  j.task = r.get_u64();
  j.seq = r.get_u32();
  j.start = r.get_u64();
  j.end = r.get_u64();
  j.core = r.get_u16();
  return j;
}

void put_loop(std::string& out, const LoopRec& l) {
  put_u64(out, l.uid);
  put_u64(out, l.enclosing_task);
  put_u32(out, l.src);
  put_u8(out, static_cast<u8>(l.sched));
  put_u64(out, l.chunk_param);
  put_u64(out, l.iter_begin);
  put_u64(out, l.iter_end);
  put_u16(out, l.num_threads);
  put_u16(out, l.starting_thread);
  put_u32(out, l.seq);
  put_u64(out, l.start);
  put_u64(out, l.end);
}

LoopRec get_loop(Reader& r) {
  LoopRec l;
  l.uid = r.get_u64();
  l.enclosing_task = r.get_u64();
  l.src = r.get_u32();
  l.sched = static_cast<ScheduleKind>(r.get_u8() % 3);
  l.chunk_param = r.get_u64();
  l.iter_begin = r.get_u64();
  l.iter_end = r.get_u64();
  l.num_threads = r.get_u16();
  l.starting_thread = r.get_u16();
  l.seq = r.get_u32();
  l.start = r.get_u64();
  l.end = r.get_u64();
  return l;
}

void put_chunk(std::string& out, const ChunkRec& c) {
  put_u64(out, c.loop);
  put_u16(out, c.thread);
  put_u16(out, c.core);
  put_u32(out, c.seq_on_thread);
  put_u64(out, c.iter_begin);
  put_u64(out, c.iter_end);
  put_u64(out, c.start);
  put_u64(out, c.end);
  put_counters(out, c.counters);
}

ChunkRec get_chunk(Reader& r) {
  ChunkRec c;
  c.loop = r.get_u64();
  c.thread = r.get_u16();
  c.core = r.get_u16();
  c.seq_on_thread = r.get_u32();
  c.iter_begin = r.get_u64();
  c.iter_end = r.get_u64();
  c.start = r.get_u64();
  c.end = r.get_u64();
  c.counters = get_counters(r);
  return c;
}

void put_bookkeep(std::string& out, const BookkeepRec& b) {
  put_u64(out, b.loop);
  put_u16(out, b.thread);
  put_u16(out, b.core);
  put_u32(out, b.seq_on_thread);
  put_u64(out, b.start);
  put_u64(out, b.end);
  put_u8(out, b.got_chunk ? 1 : 0);
}

BookkeepRec get_bookkeep(Reader& r) {
  BookkeepRec b;
  b.loop = r.get_u64();
  b.thread = r.get_u16();
  b.core = r.get_u16();
  b.seq_on_thread = r.get_u32();
  b.start = r.get_u64();
  b.end = r.get_u64();
  b.got_chunk = r.get_u8() != 0;
  return b;
}

void put_depend(std::string& out, const DependRec& d) {
  put_u64(out, d.pred);
  put_u64(out, d.succ);
}

DependRec get_depend(Reader& r) {
  DependRec d;
  d.pred = r.get_u64();
  d.succ = r.get_u64();
  return d;
}

void put_wstat(std::string& out, const WorkerStatsRec& s) {
  put_u16(out, s.worker);
  put_u64(out, s.tasks_spawned);
  put_u64(out, s.tasks_executed);
  put_u64(out, s.tasks_inlined);
  put_u64(out, s.steals);
  put_u64(out, s.steal_failures);
  put_u64(out, s.cas_failures);
  put_u64(out, s.deque_pushes);
  put_u64(out, s.deque_pops);
  put_u64(out, s.deque_resizes);
  put_u64(out, s.taskwait_helps);
  put_u64(out, s.idle_ns);
  put_u64(out, s.trace_bytes);
}

WorkerStatsRec get_wstat(Reader& r) {
  WorkerStatsRec s;
  s.worker = r.get_u16();
  s.tasks_spawned = r.get_u64();
  s.tasks_executed = r.get_u64();
  s.tasks_inlined = r.get_u64();
  s.steals = r.get_u64();
  s.steal_failures = r.get_u64();
  s.cas_failures = r.get_u64();
  s.deque_pushes = r.get_u64();
  s.deque_pops = r.get_u64();
  s.deque_resizes = r.get_u64();
  s.taskwait_helps = r.get_u64();
  s.idle_ns = r.get_u64();
  s.trace_bytes = r.get_u64();
  return s;
}

// Defined below the anonymous namespace (public: spool.hpp declares it for
// incremental ingestion); forward-declared here for in-file users.
}  // namespace
bool decode_epoch_payload(std::string_view payload, RecordBuffer* out);
namespace {

/// Minimum encoded byte size of each record kind, in count-header order
/// (tasks, fragments, joins, loops, chunks, bookkeeps, depends, wstats).
/// Every field is fixed-width, so these are exact sizes; they bound how
/// many records a payload can possibly hold.
constexpr u64 kMinRecordBytes[8] = {43, 71, 30, 69, 80, 33, 16, 98};

bool decode_epoch_payload_impl(std::string_view payload, RecordBuffer* out) {
  Reader r(payload);
  u32 counts[8];
  for (u32& c : counts) c = r.get_u32();
  if (!r.ok) return false;
  // Validate the declared counts against the bytes actually present before
  // any allocation is sized from them: a corrupt count field must fail
  // here, not in a multi-GB reserve(). u64 arithmetic — 8 u32 counts times
  // ~100-byte records cannot overflow.
  u64 declared = 0;
  for (size_t i = 0; i < 8; ++i) declared += counts[i] * kMinRecordBytes[i];
  if (declared > payload.size() - r.pos) return false;
  out->tasks.reserve(counts[0]);
  for (u32 i = 0; i < counts[0] && r.ok; ++i) out->tasks.push_back(get_task(r));
  out->fragments.reserve(counts[1]);
  for (u32 i = 0; i < counts[1] && r.ok; ++i)
    out->fragments.push_back(get_fragment(r));
  out->joins.reserve(counts[2]);
  for (u32 i = 0; i < counts[2] && r.ok; ++i) out->joins.push_back(get_join(r));
  out->loops.reserve(counts[3]);
  for (u32 i = 0; i < counts[3] && r.ok; ++i) out->loops.push_back(get_loop(r));
  out->chunks.reserve(counts[4]);
  for (u32 i = 0; i < counts[4] && r.ok; ++i)
    out->chunks.push_back(get_chunk(r));
  out->bookkeeps.reserve(counts[5]);
  for (u32 i = 0; i < counts[5] && r.ok; ++i)
    out->bookkeeps.push_back(get_bookkeep(r));
  out->depends.reserve(counts[6]);
  for (u32 i = 0; i < counts[6] && r.ok; ++i)
    out->depends.push_back(get_depend(r));
  out->worker_stats.reserve(counts[7]);
  for (u32 i = 0; i < counts[7] && r.ok; ++i)
    out->worker_stats.push_back(get_wstat(r));
  return r.ok && r.pos == payload.size();
}

// Defined below the anonymous namespace (public: spool.hpp declares it for
// spool-aware tools); forward-declared here for the decoders that use it.
}  // namespace
bool decode_meta_payload(std::string_view payload, TraceMeta* out);
namespace {

bool decode_meta_payload_impl(std::string_view payload, TraceMeta* out) {
  Reader r(payload);
  TraceMeta m;
  m.program = r.get_str();
  m.runtime = r.get_str();
  m.topology = r.get_str();
  m.num_workers = static_cast<int>(r.get_u32());
  m.num_cores = static_cast<int>(r.get_u32());
  const u64 ghz_bits = r.get_u64();
  std::memcpy(&m.ghz, &ghz_bits, sizeof m.ghz);
  m.region_start = r.get_u64();
  m.region_end = r.get_u64();
  m.profiled = r.get_u8() != 0;
  m.trace_buffer_bytes = r.get_u64();
  m.clock_source = r.get_str();
  const u32 n_notes = r.get_u32();
  if (n_notes > payload.size()) return false;
  for (u32 i = 0; i < n_notes && r.ok; ++i) m.notes.push_back(r.get_str());
  if (!r.ok || r.pos != payload.size()) return false;
  *out = std::move(m);
  return true;
}

}  // namespace

/// Checksum over (type, worker, seq, payload) — the header's self-describing
/// fields plus the data they frame. Public (spool.hpp): spool-aware tools
/// (ggstat) verify individual frames without a full recovery pass.
u64 frame_checksum(FrameType type, u32 worker, u32 seq, const void* payload,
                   size_t len) noexcept {
  char prefix[9];
  prefix[0] = static_cast<char>(type);
  write_le32(prefix + 1, worker);
  write_le32(prefix + 5, seq);
  const u64 h = fnv1a(prefix, sizeof prefix);
  return fnv1a(payload, len, h);
}

namespace {

const char* signal_name(int sig) noexcept {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGTERM: return "SIGTERM";
    case SIGBUS: return "SIGBUS";
    case SIGILL: return "SIGILL";
    case SIGFPE: return "SIGFPE";
    default: return "signal";
  }
}

// --- crash-handler registry (process-global, async-signal-safe) -------------

constexpr int kHandledSignals[] = {SIGSEGV, SIGABRT, SIGTERM};
constexpr size_t kMaxSinks = 8;

std::atomic<SpoolSink*> g_sinks[kMaxSinks];
struct sigaction g_old_actions[3];
std::terminate_handler g_old_terminate = nullptr;
std::mutex g_handler_mutex;
int g_registered_sinks = 0;

int signal_slot(int sig) {
  for (size_t i = 0; i < 3; ++i) {
    if (kHandledSignals[i] == sig) return static_cast<int>(i);
  }
  return -1;
}

extern "C" void gg_spool_signal_handler(int sig) {
  for (auto& slot : g_sinks) {
    if (SpoolSink* s = slot.load(std::memory_order_acquire))
      s->emergency_flush(sig, nullptr);
  }
  // Restore the previous disposition and re-raise so the process dies with
  // the original signal (core dumps, wait statuses and ASan reports intact).
  const int idx = signal_slot(sig);
  if (idx >= 0) ::sigaction(sig, &g_old_actions[idx], nullptr);
  ::raise(sig);
}

[[noreturn]] void gg_spool_terminate_handler() {
  for (auto& slot : g_sinks) {
    if (SpoolSink* s = slot.load(std::memory_order_acquire))
      s->emergency_flush(0, "terminate");
  }
  if (g_old_terminate != nullptr) g_old_terminate();
  std::abort();
}

void register_sink(SpoolSink* sink) {
  std::lock_guard lock(g_handler_mutex);
  for (auto& slot : g_sinks) {
    SpoolSink* expected = nullptr;
    if (slot.compare_exchange_strong(expected, sink)) break;
  }
  if (g_registered_sinks++ == 0) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof sa);
    sa.sa_handler = gg_spool_signal_handler;
    sigemptyset(&sa.sa_mask);
    for (int sig : kHandledSignals)
      ::sigaction(sig, &sa, &g_old_actions[signal_slot(sig)]);
    g_old_terminate = std::set_terminate(gg_spool_terminate_handler);
  }
}

void unregister_sink(SpoolSink* sink) {
  std::lock_guard lock(g_handler_mutex);
  for (auto& slot : g_sinks) {
    SpoolSink* expected = sink;
    slot.compare_exchange_strong(expected, nullptr);
  }
  if (--g_registered_sinks == 0) {
    for (int sig : kHandledSignals)
      ::sigaction(sig, &g_old_actions[signal_slot(sig)], nullptr);
    std::set_terminate(g_old_terminate);
    g_old_terminate = nullptr;
  }
}

}  // namespace

// --- public pure helpers ----------------------------------------------------

bool decode_meta_payload(std::string_view payload, TraceMeta* out) {
  return decode_meta_payload_impl(payload, out);
}

bool decode_epoch_payload(std::string_view payload, RecordBuffer* out) {
  return decode_epoch_payload_impl(payload, out);
}

u64 fnv1a(const void* data, size_t len, u64 seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  u64 h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void RecordBuffer::clear() {
  tasks.clear();
  fragments.clear();
  joins.clear();
  loops.clear();
  chunks.clear();
  bookkeeps.clear();
  depends.clear();
  worker_stats.clear();
}

u64 RecordBuffer::payload_bytes() const {
  auto bytes = [](const auto& v) {
    return static_cast<u64>(v.size() * sizeof(v[0]));
  };
  return bytes(tasks) + bytes(fragments) + bytes(joins) + bytes(loops) +
         bytes(chunks) + bytes(bookkeeps) + bytes(depends) +
         bytes(worker_stats);
}

std::string encode_frame(FrameType type, u32 worker, u32 seq,
                         std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kFrameMagic, sizeof kFrameMagic);
  put_u8(out, static_cast<u8>(type));
  put_u32(out, worker);
  put_u32(out, seq);
  put_u64(out, payload.size());
  put_u64(out, frame_checksum(type, worker, seq, payload.data(),
                              payload.size()));
  out.append(payload);
  return out;
}

std::string encode_meta_payload(const TraceMeta& meta) {
  std::string out;
  put_str(out, meta.program);
  put_str(out, meta.runtime);
  put_str(out, meta.topology);
  put_u32(out, static_cast<u32>(meta.num_workers));
  put_u32(out, static_cast<u32>(meta.num_cores));
  u64 ghz_bits = 0;
  std::memcpy(&ghz_bits, &meta.ghz, sizeof ghz_bits);
  put_u64(out, ghz_bits);
  put_u64(out, meta.region_start);
  put_u64(out, meta.region_end);
  put_u8(out, meta.profiled ? 1 : 0);
  put_u64(out, meta.trace_buffer_bytes);
  put_str(out, meta.clock_source);
  put_u32(out, static_cast<u32>(meta.notes.size()));
  for (const std::string& n : meta.notes) put_str(out, n);
  return out;
}

std::string encode_strings_payload(u32 first_id,
                                   const std::vector<std::string>& strings) {
  std::string out;
  put_u32(out, first_id);
  put_u32(out, static_cast<u32>(strings.size()));
  for (const std::string& s : strings) put_str(out, s);
  return out;
}

std::string encode_epoch_payload(const RecordBuffer& buf) {
  std::string out;
  put_u32(out, static_cast<u32>(buf.tasks.size()));
  put_u32(out, static_cast<u32>(buf.fragments.size()));
  put_u32(out, static_cast<u32>(buf.joins.size()));
  put_u32(out, static_cast<u32>(buf.loops.size()));
  put_u32(out, static_cast<u32>(buf.chunks.size()));
  put_u32(out, static_cast<u32>(buf.bookkeeps.size()));
  put_u32(out, static_cast<u32>(buf.depends.size()));
  put_u32(out, static_cast<u32>(buf.worker_stats.size()));
  for (const auto& r : buf.tasks) put_task(out, r);
  for (const auto& r : buf.fragments) put_fragment(out, r);
  for (const auto& r : buf.joins) put_join(out, r);
  for (const auto& r : buf.loops) put_loop(out, r);
  for (const auto& r : buf.chunks) put_chunk(out, r);
  for (const auto& r : buf.bookkeeps) put_bookkeep(out, r);
  for (const auto& r : buf.depends) put_depend(out, r);
  for (const auto& r : buf.worker_stats) put_wstat(out, r);
  return out;
}

// --- SpoolSink --------------------------------------------------------------

std::unique_ptr<SpoolSink> SpoolSink::open(const SpoolOptions& opts,
                                           const TraceMeta& initial_meta,
                                           int num_workers,
                                           std::string* error) {
  auto sink = std::unique_ptr<SpoolSink>(new SpoolSink());
  sink->opts_ = opts;
  sink->path_ = opts.path;
  sink->num_workers_ = num_workers;
  sink->fd_ = ::open(opts.path.c_str(),
                     O_CREAT | O_TRUNC | O_WRONLY | O_APPEND | O_CLOEXEC,
                     0644);
  if (sink->fd_ < 0) {
    if (error != nullptr)
      *error = "cannot open spool file " + opts.path + ": " +
               std::strerror(errno);
    return nullptr;
  }
  sink->epoch_seq_ =
      std::vector<std::atomic<u32>>(static_cast<size_t>(num_workers));
  sink->flush_due_ =
      std::vector<std::atomic<bool>>(static_cast<size_t>(num_workers));
  sink->ring_ = std::vector<Slot>(kRingSlots);

  // Preassemble the crash-footer frame; the signal handler only patches the
  // payload and checksum fields in place.
  {
    char* f = sink->crash_frame_;
    std::memcpy(f, kFrameMagic, sizeof kFrameMagic);
    f[4] = static_cast<char>(FrameType::CrashFooter);
    write_le32(f + 5, 0);                           // worker
    write_le32(f + 9, 0);                           // seq
    write_le64(f + 13, kCrashPayloadBytes);         // payload_len
    write_le64(f + 21, 0);                          // checksum (patched)
  }

  std::string header(kSpoolMagic);
  put_u32(header, static_cast<u32>(num_workers));
  sink->write_all(header.data(), header.size());
  sink->tap_offset_ = header.size();
  {
    std::lock_guard lock(sink->file_mutex_);
    sink->write_frame_locked(FrameType::Meta, 0, 0,
                             encode_meta_payload(initial_meta));
  }
  if (opts.telemetry != nullptr) {
    sink->m_frames_ = opts.telemetry->counter("spool.frames_written");
    sink->m_bytes_ = opts.telemetry->counter("spool.bytes_written");
    sink->m_records_ = opts.telemetry->counter("spool.records_sealed");
    sink->m_emergency_ = opts.telemetry->counter("spool.emergency_flushes");
    sink->m_flush_ns_ = opts.telemetry->histogram("spool.flush_ns");
  }
  if (opts.crash_handlers) {
    register_sink(sink.get());
    sink->handlers_registered_ = true;
  }
  if (opts.flush_interval_ns > 0 || !opts.durable_epochs ||
      (opts.telemetry_interval_ns > 0 && opts.telemetry_source)) {
    sink->flusher_ = std::thread([s = sink.get()] { s->flusher_main(); });
  }
  return sink;
}

SpoolSink::~SpoolSink() {
  if (!closed_.load(std::memory_order_acquire)) close_unclean();
}

void SpoolSink::write_all(const char* data, size_t len) noexcept {
  while (len > 0) {
    const ssize_t n = ::write(fd_, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // disk full / closed fd: nothing actionable mid-run
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
}

void SpoolSink::enqueue_or_write(std::string frame_bytes) {
  if (m_frames_ != nullptr) {
    m_frames_->add();
    m_bytes_->add(frame_bytes.size());
  }
  // The tap sees frames in emission order (callers hold file_mutex_) at the
  // offset they will occupy in the file, even in ring mode — the ring
  // preserves order, so the mirrored stream matches the eventual file.
  if (opts_.frame_tap) opts_.frame_tap(frame_bytes, tap_offset_);
  tap_offset_ += frame_bytes.size();
  if (opts_.durable_epochs) {
    if (m_flush_ns_ != nullptr) {
      const u64 t0 = obs::mono_ns();
      write_all(frame_bytes.data(), frame_bytes.size());
      m_flush_ns_->observe(obs::mono_ns() - t0);
      return;
    }
    write_all(frame_bytes.data(), frame_bytes.size());
    return;
  }
  // Producers are serialized by file_mutex_, so the ring is single-producer;
  // wait (bounded ring, bounded memory) for the flusher to free a slot.
  const u64 idx = ring_head_.load(std::memory_order_relaxed);
  Slot& slot = ring_[idx % kRingSlots];
  while (slot.state.load(std::memory_order_acquire) != 0) {
    if (crashed_.load(std::memory_order_acquire)) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  slot.data = new std::string(std::move(frame_bytes));
  slot.state.store(1, std::memory_order_release);
  ring_head_.store(idx + 1, std::memory_order_release);
}

void SpoolSink::write_frame_locked(FrameType type, u32 worker, u32 seq,
                                   std::string_view payload) {
  enqueue_or_write(encode_frame(type, worker, seq, payload));
}

void SpoolSink::seal_epoch(u32 worker, RecordBuffer& buf,
                           const StringsDeltaFn& delta) {
  if (closed_.load(std::memory_order_acquire) ||
      crashed_.load(std::memory_order_acquire)) {
    buf.clear();
    return;
  }
  flush_due_[worker].store(false, std::memory_order_relaxed);
  if (buf.empty()) return;
  const std::string payload = encode_epoch_payload(buf);
  payload_bytes_.fetch_add(buf.payload_bytes(), std::memory_order_relaxed);
  if (m_records_ != nullptr) {
    m_records_->add(buf.tasks.size() + buf.fragments.size() +
                    buf.joins.size() + buf.loops.size() + buf.chunks.size() +
                    buf.bookkeeps.size() + buf.depends.size() +
                    buf.worker_stats.size());
  }
  buf.clear();
  std::lock_guard lock(file_mutex_);
  if (delta) {
    std::vector<std::string> fresh;
    delta(strings_flushed_, &fresh);
    if (!fresh.empty()) {
      write_frame_locked(FrameType::Strings, 0, 0,
                         encode_strings_payload(strings_flushed_, fresh));
      strings_flushed_ += static_cast<u32>(fresh.size());
    }
  }
  const u32 seq = epoch_seq_[worker].fetch_add(1, std::memory_order_relaxed);
  write_frame_locked(FrameType::Epoch, worker, seq, payload);
}

void SpoolSink::flush_strings(const StringsDeltaFn& delta) {
  if (!delta || closed_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(file_mutex_);
  std::vector<std::string> fresh;
  delta(strings_flushed_, &fresh);
  if (fresh.empty()) return;
  write_frame_locked(FrameType::Strings, 0, 0,
                     encode_strings_payload(strings_flushed_, fresh));
  strings_flushed_ += static_cast<u32>(fresh.size());
}

void SpoolSink::append_dump(const std::string& text) {
  if (closed_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(file_mutex_);
  write_frame_locked(FrameType::Dump, 0, 0, text);
}

void SpoolSink::append_telemetry(std::string_view payload) {
  if (payload.empty()) return;
  if (closed_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(file_mutex_);
  write_frame_locked(FrameType::Telemetry, 0, telemetry_seq_++, payload);
}

void SpoolSink::flusher_main() {
  auto last_request = std::chrono::steady_clock::now();
  auto last_telemetry = last_request;
  auto drain = [this] {
    const u64 head = ring_head_.load(std::memory_order_acquire);
    while (ring_tail_ < head) {
      Slot& slot = ring_[ring_tail_ % kRingSlots];
      const int st = slot.state.load(std::memory_order_acquire);
      if (st == 0) break;  // producer mid-fill; come back next tick
      if (st == 1) {
        int expected = 1;
        if (slot.state.compare_exchange_strong(expected, 2)) {
          write_all(slot.data->data(), slot.data->size());
        }
      }
      delete slot.data;
      slot.data = nullptr;
      slot.state.store(0, std::memory_order_release);
      ++ring_tail_;
    }
  };
  while (!flusher_stop_.load(std::memory_order_acquire)) {
    drain();
    if (opts_.flush_interval_ns > 0) {
      const auto now = std::chrono::steady_clock::now();
      const u64 since = static_cast<u64>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                               last_request)
              .count());
      if (since >= opts_.flush_interval_ns) {
        for (auto& due : flush_due_)
          due.store(true, std::memory_order_relaxed);
        last_request = now;
      }
    }
    if (opts_.telemetry_interval_ns > 0 && opts_.telemetry_source) {
      const auto now = std::chrono::steady_clock::now();
      const u64 since = static_cast<u64>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              now - last_telemetry)
              .count());
      if (since >= static_cast<u64>(opts_.telemetry_interval_ns)) {
        append_telemetry(opts_.telemetry_source());
        last_telemetry = now;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  drain();
}

void SpoolSink::stop_flusher() {
  if (!flusher_.joinable()) return;
  flusher_stop_.store(true, std::memory_order_release);
  flusher_.join();
}

void SpoolSink::finish(const TraceMeta& final_meta) {
  // Final telemetry snapshot ahead of the footer, so a finished spool's
  // last 'T' frame reflects the completed run (ggstat's one-shot view).
  if (opts_.telemetry_source) append_telemetry(opts_.telemetry_source());
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard lock(file_mutex_);
    write_frame_locked(FrameType::CleanFooter, 0, 0,
                       encode_meta_payload(final_meta));
  }
  stop_flusher();
  if (handlers_registered_) {
    unregister_sink(this);
    handlers_registered_ = false;
  }
  ::close(fd_);
  fd_ = -1;
}

void SpoolSink::close_unclean() {
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  stop_flusher();
  if (handlers_registered_) {
    unregister_sink(this);
    handlers_registered_ = false;
  }
  ::close(fd_);
  fd_ = -1;
}

void SpoolSink::emergency_flush(int sig, const char* reason) noexcept {
  if (crashed_.exchange(true, std::memory_order_acq_rel)) return;
  if (fd_ < 0) return;
  // Counter::add is a lock-free fetch_add: async-signal-safe.
  if (m_emergency_ != nullptr) m_emergency_->add();
  // Drain already-framed bytes still queued for the background flusher. The
  // state CAS makes this safe against a concurrently-running flusher: a
  // blob is only freed after it leaves the Ready state, and this path never
  // frees. A slot the flusher is mid-writing is skipped (at worst the file
  // gains one torn frame, which recovery tolerates).
  const u64 head = ring_head_.load(std::memory_order_acquire);
  for (u64 i = ring_tail_; i < head; ++i) {
    Slot& slot = ring_[i % kRingSlots];
    int expected = 1;
    if (slot.state.compare_exchange_strong(expected, 2)) {
      write_all(slot.data->data(), slot.data->size());
    }
  }
  // Patch the preassembled crash footer: payload = u32 signal, then a
  // null-padded reason string. Manual formatting only — no allocation, no
  // stdio in signal context.
  char* payload = crash_frame_ + kFrameHeaderBytes;
  for (size_t i = 0; i < kCrashPayloadBytes; ++i) payload[i] = 0;
  write_le32(payload, static_cast<u32>(sig));
  char* text = payload + 4;
  const size_t text_cap = kCrashPayloadBytes - 4 - 1;
  size_t pos = 0;
  auto append = [&](const char* s) {
    for (size_t i = 0; s[i] != 0 && pos < text_cap; ++i) text[pos++] = s[i];
  };
  if (reason != nullptr) {
    append(reason);
  } else {
    append("signal=");
    char digits[12];
    int nd = 0;
    int v = sig;
    if (v == 0) digits[nd++] = '0';
    while (v > 0 && nd < 11) {
      digits[nd++] = static_cast<char>('0' + v % 10);
      v /= 10;
    }
    while (nd > 0 && pos < text_cap) text[pos++] = digits[--nd];
    append(" ");
    append(signal_name(sig));
  }
  write_le64(crash_frame_ + 21,
             frame_checksum(FrameType::CrashFooter, 0, 0, payload,
                            kCrashPayloadBytes));
  write_all(crash_frame_, sizeof crash_frame_);
}

// --- recovery ---------------------------------------------------------------

std::string RecoverReport::summary() const {
  std::string s = "frames=" + std::to_string(frames_kept) + "/" +
                  std::to_string(frames_total);
  s += clean_footer ? " footer=clean" : " footer=missing";
  if (frames_corrupt > 0) s += " corrupt=" + std::to_string(frames_corrupt);
  if (frames_out_of_order > 0)
    s += " out_of_order=" + std::to_string(frames_out_of_order);
  if (epoch_gaps > 0) s += " epoch_gaps=" + std::to_string(epoch_gaps);
  if (telemetry_corrupt > 0)
    s += " telemetry_corrupt=" + std::to_string(telemetry_corrupt);
  if (torn_tail) s += " torn-tail";
  s += " epochs=";
  for (size_t i = 0; i < epochs_per_worker.size(); ++i) {
    if (i > 0) s += ",";
    s += std::to_string(epochs_per_worker[i]);
  }
  return s;
}

bool looks_like_spool(std::string_view bytes) {
  return bytes.size() >= kSpoolMagic.size() &&
         bytes.substr(0, kSpoolMagic.size()) == kSpoolMagic;
}

bool spool_file_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[9];
  in.read(magic, sizeof magic);
  return in.gcount() == static_cast<std::streamsize>(sizeof magic) &&
         looks_like_spool(std::string_view(magic, sizeof magic));
}

RecoverResult recover_spool_bytes(std::string_view bytes) {
  RecoverResult res;

  if (!looks_like_spool(bytes)) {
    res.report.diagnostics.push_back("not a spool stream (bad magic)");
    return res;
  }
  size_t pos = kSpoolMagic.size();
  if (bytes.size() < pos + 4) {
    res.report.diagnostics.push_back("torn spool header");
    return res;
  }
  const u32 num_workers = read_le32(bytes.data() + pos);
  pos += 4;
  if (num_workers == 0 || num_workers > 4096) {
    res.report.diagnostics.push_back("implausible worker count " +
                                     std::to_string(num_workers));
    return res;
  }

  // The per-frame keep/skip/degrade decisions live in IncrementalTrace so
  // the live tailer (src/serve/) shares them; this loop only walks headers.
  IncrementalTrace inc(num_workers);
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeaderBytes) {
      inc.note_torn_header(pos);
      break;
    }
    const char* h = bytes.data() + pos;
    if (std::memcmp(h, kFrameMagic, sizeof kFrameMagic) != 0) {
      inc.note_garbled_magic(pos);
      break;
    }
    const auto type = static_cast<FrameType>(static_cast<u8>(h[4]));
    const u32 worker = read_le32(h + 5);
    const u32 seq = read_le32(h + 9);
    const u64 payload_len = read_le64(h + 13);
    const u64 checksum = read_le64(h + 21);
    if (payload_len > (1ull << 30) ||
        payload_len > bytes.size() - pos - kFrameHeaderBytes) {
      inc.note_overrun(pos, payload_len);
      break;
    }
    const std::string_view payload(h + kFrameHeaderBytes,
                                   static_cast<size_t>(payload_len));
    inc.apply_frame(type, worker, seq, payload, checksum, pos);
    pos += kFrameHeaderBytes + static_cast<size_t>(payload_len);
  }

  res.usable = inc.finish();
  res.report = std::move(inc.report());
  res.trace = std::move(inc.trace());
  return res;
}

RecoverResult recover_spool_file(const std::string& path, std::string* error) {
  // Zero-copy recovery: the frame walk in recover_spool_bytes is already
  // view-based, so mapping the spool avoids buffering what can be a
  // multi-gigabyte crash artifact (MmapSource falls back to a read loop for
  // non-regular files).
  MmapSource src;
  if (!src.open(path)) {
    if (error != nullptr) *error = "cannot open " + path;
    RecoverResult res;
    res.report.diagnostics.push_back("cannot open " + path);
    return res;
  }
  return recover_spool_bytes(src.view());
}

// --- whole-trace spooling ---------------------------------------------------

namespace {

/// Splits one worker's records into epoch-sized batches (in-memory payload
/// bytes, matching the recorder's seal threshold).
std::vector<RecordBuffer> slice_buffer(RecordBuffer& b, u64 epoch_bytes) {
  std::vector<RecordBuffer> slices;
  slices.emplace_back();
  u64 bytes = 0;
  auto drain = [&](auto member) {
    auto& src = b.*member;
    for (auto& rec : src) {
      if (bytes >= epoch_bytes && !slices.back().empty()) {
        slices.emplace_back();
        bytes = 0;
      }
      (slices.back().*member).push_back(rec);
      bytes += sizeof rec;
    }
    src.clear();
  };
  drain(&RecordBuffer::tasks);
  drain(&RecordBuffer::fragments);
  drain(&RecordBuffer::joins);
  drain(&RecordBuffer::loops);
  drain(&RecordBuffer::chunks);
  drain(&RecordBuffer::bookkeeps);
  drain(&RecordBuffer::depends);
  drain(&RecordBuffer::worker_stats);
  if (slices.back().empty()) slices.pop_back();
  return slices;
}

/// Partitions a finalized trace's records by the worker that would have
/// recorded them (core/thread fields; depends land on worker 0, as they are
/// recorded by the spawning context).
std::vector<RecordBuffer> partition_by_worker(const Trace& trace, u32 nw) {
  std::vector<RecordBuffer> per(nw);
  auto wk = [nw](u64 w) { return static_cast<size_t>(std::min<u64>(w, nw - 1)); };
  for (const auto& r : trace.tasks) per[wk(r.create_core)].tasks.push_back(r);
  for (const auto& r : trace.fragments)
    per[wk(r.core)].fragments.push_back(r);
  for (const auto& r : trace.joins) per[wk(r.core)].joins.push_back(r);
  for (const auto& r : trace.loops)
    per[wk(r.starting_thread)].loops.push_back(r);
  for (const auto& r : trace.chunks) per[wk(r.thread)].chunks.push_back(r);
  for (const auto& r : trace.bookkeeps)
    per[wk(r.thread)].bookkeeps.push_back(r);
  for (const auto& r : trace.depends) per[0].depends.push_back(r);
  for (const auto& r : trace.worker_stats)
    per[wk(r.worker)].worker_stats.push_back(r);
  return per;
}

}  // namespace

bool spool_trace(const Trace& trace, const SpoolOptions& opts,
                 std::string* error) {
  const u32 nw = static_cast<u32>(std::max(1, trace.meta.num_workers));
  auto sink = SpoolSink::open(opts, trace.meta, static_cast<int>(nw), error);
  if (!sink) return false;
  const auto delta = [&trace](u32 from, std::vector<std::string>* out) {
    for (u32 i = from; i < trace.strings.size(); ++i)
      out->push_back(std::string(trace.strings.get(i)));
  };
  sink->flush_strings(delta);
  std::vector<RecordBuffer> per = partition_by_worker(trace, nw);
  std::vector<std::vector<RecordBuffer>> sliced(nw);
  size_t max_slices = 0;
  for (u32 w = 0; w < nw; ++w) {
    sliced[w] = slice_buffer(per[w], opts.epoch_bytes);
    max_slices = std::max(max_slices, sliced[w].size());
  }
  // Interleave workers the way a live run would: one epoch per worker per
  // round, so recovery sees realistically mixed frame order.
  for (size_t s = 0; s < max_slices; ++s) {
    for (u32 w = 0; w < nw; ++w) {
      if (s < sliced[w].size()) sink->seal_epoch(w, sliced[w][s], delta);
    }
    // Modeled telemetry: one snapshot per seal round, at a deterministic
    // point in the frame stream (the threaded sink emits on a timer).
    if (opts.telemetry_source) sink->append_telemetry(opts.telemetry_source());
  }
  sink->finish(trace.meta);
  return true;
}

std::string spool_trace_bytes(const Trace& trace, u64 epoch_bytes,
                              const std::vector<std::string>& telemetry) {
  const u32 nw = static_cast<u32>(std::max(1, trace.meta.num_workers));
  std::string out(kSpoolMagic);
  put_u32(out, nw);
  out += encode_frame(FrameType::Meta, 0, 0,
                      encode_meta_payload(trace.meta));
  if (trace.strings.size() > 1) {
    std::vector<std::string> all;
    for (u32 i = 1; i < trace.strings.size(); ++i)
      all.push_back(std::string(trace.strings.get(i)));
    out += encode_frame(FrameType::Strings, 0, 0,
                        encode_strings_payload(1, all));
  }
  std::vector<RecordBuffer> per = partition_by_worker(trace, nw);
  std::vector<std::vector<RecordBuffer>> sliced(nw);
  std::vector<u32> seq(nw, 0);
  size_t max_slices = 0;
  for (u32 w = 0; w < nw; ++w) {
    sliced[w] = slice_buffer(per[w], epoch_bytes);
    max_slices = std::max(max_slices, sliced[w].size());
  }
  u32 tseq = 0;
  for (size_t s = 0; s < max_slices; ++s) {
    for (u32 w = 0; w < nw; ++w) {
      if (s < sliced[w].size()) {
        out += encode_frame(FrameType::Epoch, w, seq[w]++,
                            encode_epoch_payload(sliced[w][s]));
      }
    }
    if (tseq < telemetry.size()) {
      out += encode_frame(FrameType::Telemetry, 0, tseq, telemetry[tseq]);
      ++tseq;
    }
  }
  for (; tseq < telemetry.size(); ++tseq)
    out += encode_frame(FrameType::Telemetry, 0, tseq, telemetry[tseq]);
  out += encode_frame(FrameType::CleanFooter, 0, 0,
                      encode_meta_payload(trace.meta));
  return out;
}

std::vector<FrameSpan> scan_frames(std::string_view bytes) {
  std::vector<FrameSpan> spans;
  if (!looks_like_spool(bytes)) return spans;
  size_t pos = kSpoolMagic.size() + 4;
  while (pos + kFrameHeaderBytes <= bytes.size()) {
    const char* h = bytes.data() + pos;
    if (std::memcmp(h, kFrameMagic, sizeof kFrameMagic) != 0) break;
    const u64 payload_len = read_le64(h + 13);
    if (payload_len > (1ull << 30) ||
        payload_len > bytes.size() - pos - kFrameHeaderBytes) {
      break;
    }
    FrameSpan span;
    span.offset = pos;
    span.size = kFrameHeaderBytes + static_cast<size_t>(payload_len);
    span.type = static_cast<FrameType>(static_cast<u8>(h[4]));
    span.worker = read_le32(h + 5);
    span.seq = read_le32(h + 9);
    spans.push_back(span);
    pos += span.size;
  }
  return spans;
}

}  // namespace gg::spool
