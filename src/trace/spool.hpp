// Crash-safe trace spooling: epoch frames, the spool sink, and recovery.
//
// The in-memory TraceRecorder is all-or-nothing: a crashed, killed or hung
// run loses every record — exactly the runs an analyst most needs to see.
// The spool closes that gap. Workers still append to private buffers (the
// hot path stays unsynchronized, the paper's <2.5% overhead budget holds);
// periodically each buffer is *sealed* into a length-prefixed, checksummed
// epoch frame and appended to a per-run spool file. By default sealed
// frames are written through immediately ("durable epochs"), so a SIGKILL
// loses at most the one epoch per worker that was still accumulating;
// SIGSEGV/SIGABRT/SIGTERM and std::terminate additionally get an
// async-signal-safe emergency flush that appends any already-framed bytes
// plus a crash-provenance footer before the process dies.
//
// File layout ("GGSPOOL1" format):
//   header:  "GGSPOOL1\n" + u32 num_workers        (all integers LE)
//   frames:  u32 "GGSF" | u8 type | u32 worker | u32 seq |
//            u64 payload_len | u64 checksum | payload
// Frame types:
//   'M' meta          initial TraceMeta snapshot (program, team, clocks)
//   'S' string delta  newly-interned strings [first_id, first_id+count)
//   'E' epoch         one sealed per-worker record batch, seq-numbered
//   'D' dump          supervisor diagnostic text (hang/stall report)
//   'C' crash footer  crash provenance (signal / terminate / abort)
//   'F' clean footer  final TraceMeta; only a clean shutdown writes it
//   'T' telemetry     periodic self-telemetry snapshot (opaque payload,
//                     encoded by obs/exposition; see docs/FORMATS.md).
//                     Advisory only: a corrupt 'T' frame degrades to
//                     "telemetry unavailable", never to a damaged trace.
// The checksum is FNV-1a 64 over (type, worker, seq, payload) — cheap,
// async-signal-safe, and strong enough to reject torn or bit-flipped
// frames with the corpus's adversarial inputs.
//
// Recovery (recover_spool_*) replays the longest valid prefix: frames with
// bad checksums are skipped, a torn tail stops the scan, per-worker epoch
// sequence numbers must grow monotonically from 0 (a forward gap — epochs
// lost to a skipped frame — is tolerated and counted, so one bad frame
// loses one epoch, not the rest of the worker's stream; a backward or
// duplicate seq is skipped as out-of-order). A missing 'F' footer marks the
// trace as recovered/partial and stamps crash provenance into
// TraceMeta::notes, which reports surface (TraceMeta::recovered()).
// The per-frame decisions live in trace/incremental.hpp (IncrementalTrace),
// which the batch path here and the live tailer (src/serve/) both drive —
// streaming ingestion and post-mortem recovery agree by construction.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "trace/trace.hpp"

namespace gg::obs {
class Registry;
class Counter;
class Histogram;
}  // namespace gg::obs

namespace gg::spool {

// --- format constants -------------------------------------------------------

inline constexpr std::string_view kSpoolMagic = "GGSPOOL1\n";
inline constexpr char kFrameMagic[4] = {'G', 'G', 'S', 'F'};
inline constexpr size_t kFrameHeaderBytes = 4 + 1 + 4 + 4 + 8 + 8;

enum class FrameType : u8 {
  Meta = 'M',
  Strings = 'S',
  Epoch = 'E',
  Dump = 'D',
  CrashFooter = 'C',
  CleanFooter = 'F',
  Telemetry = 'T',
};

/// FNV-1a 64: the frame checksum. Loop-only, noexcept, async-signal-safe.
u64 fnv1a(const void* data, size_t len, u64 seed = 0xcbf29ce484222325ull) noexcept;

// --- options ----------------------------------------------------------------

struct SpoolOptions {
  /// Spool file path; empty disables spooling entirely (the default — the
  /// disabled path is byte-identical to the plain in-memory recorder).
  std::string path;
  /// Seal a worker's buffer into an epoch frame once it holds this many
  /// payload bytes (the at-most-one-epoch-per-worker loss bound).
  u64 epoch_bytes = 64 * 1024;
  /// Write sealed frames through to the file at seal time (default). When
  /// false, sealed frames queue in a bounded ring drained by the background
  /// flusher; the emergency flush drains whatever is still queued.
  bool durable_epochs = true;
  /// Background flusher period: requests a time-based seal from every
  /// worker so long idle phases cannot keep records buffered indefinitely.
  /// 0 disables the flusher thread.
  TimeNs flush_interval_ns = 50'000'000;
  /// Install SIGSEGV/SIGABRT/SIGTERM + std::terminate emergency-flush
  /// handlers for the lifetime of the sink.
  bool crash_handlers = true;
  /// Self-telemetry: when `telemetry_source` is set it is called from the
  /// background flusher every `telemetry_interval_ns` and its (opaque)
  /// payload is appended as a 'T' frame, so a live run can be monitored by
  /// tailing the spool (`ggstat --follow`). An empty payload skips the
  /// frame. 0/null (the default) emits nothing and the spool stream is
  /// byte-identical to a build without telemetry.
  TimeNs telemetry_interval_ns = 0;
  std::function<std::string()> telemetry_source;
  /// When set, the sink publishes its own counters/histograms
  /// (spool.frames_written, spool.bytes_written, spool.records_sealed,
  /// spool.emergency_flushes, spool.flush_ns) into this registry. Null (the
  /// default) keeps the sink free of any telemetry branch cost.
  obs::Registry* telemetry = nullptr;
  /// When set, called (under the frame-emission lock, so frames arrive in
  /// stream order) with every complete frame's bytes and the spool-stream
  /// offset the frame starts at. This is the recorder's network-sink hook:
  /// a WireClient mirrors each tapped frame to a ggserved ingest socket as
  /// one EPOCH. The emergency crash flush bypasses the tap — it must stay
  /// async-signal-safe, so a mirrored stream can lose the unacked tail a
  /// crash leaves behind, exactly the wire protocol's documented bound.
  std::function<void(std::string_view frame_bytes, u64 spool_offset)>
      frame_tap;

  bool enabled() const { return !path.empty(); }
};

// --- the record batch a seal captures --------------------------------------

/// One worker's private record buffer — what TraceRecorder::Writer appends
/// to and what a seal drains into an epoch frame. Public so the spool can
/// serialize it and tests can build batches directly.
struct RecordBuffer {
  std::vector<TaskRec> tasks;
  std::vector<FragmentRec> fragments;
  std::vector<JoinRec> joins;
  std::vector<LoopRec> loops;
  std::vector<ChunkRec> chunks;
  std::vector<BookkeepRec> bookkeeps;
  std::vector<DependRec> depends;
  std::vector<WorkerStatsRec> worker_stats;

  bool empty() const {
    return tasks.empty() && fragments.empty() && joins.empty() &&
           loops.empty() && chunks.empty() && bookkeeps.empty() &&
           depends.empty() && worker_stats.empty();
  }
  void clear();
  /// In-memory payload footprint (sizeof-based, the recorder's
  /// self-measurement unit).
  u64 payload_bytes() const;
};

// --- pure frame encoding (shared by the sink, spool_trace, and tests) ------

std::string encode_frame(FrameType type, u32 worker, u32 seq,
                         std::string_view payload);
std::string encode_meta_payload(const TraceMeta& meta);
std::string encode_strings_payload(u32 first_id,
                                   const std::vector<std::string>& strings);
std::string encode_epoch_payload(const RecordBuffer& buf);

// --- the sink ---------------------------------------------------------------

/// Copies newly-interned strings [from, table size) into *out, under
/// whatever lock protects the table. Supplied by the recorder so the sink
/// never touches recorder internals.
using StringsDeltaFn = std::function<void(u32 from, std::vector<std::string>* out)>;

/// Appends frames to one spool file. seal_epoch() may be called from any
/// worker concurrently; frames are written whole (one write(2) each on an
/// O_APPEND fd), so a crash can tear at most the final frame.
class SpoolSink {
 public:
  ~SpoolSink();

  SpoolSink(const SpoolSink&) = delete;
  SpoolSink& operator=(const SpoolSink&) = delete;

  /// Opens (truncates) the spool file and writes the header + 'M' frame.
  /// Returns nullptr with *error set on I/O failure.
  static std::unique_ptr<SpoolSink> open(const SpoolOptions& opts,
                                         const TraceMeta& initial_meta,
                                         int num_workers, std::string* error);

  /// Seals one worker's buffer: flushes the pending string delta (an 'S'
  /// frame) followed by an 'E' frame carrying the batch, then clears the
  /// buffer. The two frames are emitted adjacently so every StrId an epoch
  /// references is durable before the epoch itself.
  void seal_epoch(u32 worker, RecordBuffer& buf, const StringsDeltaFn& delta);

  /// Flushes any not-yet-spooled string-table tail (used at finish when the
  /// final buffers were already empty).
  void flush_strings(const StringsDeltaFn& delta);

  /// Appends a supervisor diagnostic dump ('D' frame).
  void append_dump(const std::string& text);

  /// Appends a self-telemetry snapshot ('T' frame, opaque payload). Called
  /// by the background flusher on the telemetry interval; public so the
  /// modeled path (spool_trace) and tests can emit snapshots directly.
  void append_telemetry(std::string_view payload);

  /// Writes the clean-shutdown footer ('F' frame with the final meta) and
  /// closes the file. Recovery treats its absence as a crashed run.
  void finish(const TraceMeta& final_meta);

  /// Closes without a footer (test hook modelling an unclean shutdown).
  void close_unclean();

  /// True when the background flusher asked this worker to seal (time-based
  /// flush); cleared by the next seal_epoch.
  bool flush_due(u32 worker) const {
    return flush_due_[worker].load(std::memory_order_relaxed);
  }

  /// Total epoch payload bytes sealed so far — the spooled equivalent of
  /// the recorder's buffer-footprint self-measurement.
  u64 payload_bytes() const {
    return payload_bytes_.load(std::memory_order_relaxed);
  }
  u64 epochs_sealed(u32 worker) const {
    return epoch_seq_[worker].load(std::memory_order_relaxed);
  }

  const std::string& path() const { return path_; }

  /// Async-signal-safe: drains queued frames with write(2) and appends a
  /// 'C' crash footer naming the reason. Idempotent (first caller wins).
  /// Called from the signal/terminate handlers; public so the supervisor's
  /// abort path can flush explicitly before raising.
  void emergency_flush(int sig, const char* reason) noexcept;

 private:
  SpoolSink() = default;

  void write_frame_locked(FrameType type, u32 worker, u32 seq,
                          std::string_view payload);
  void enqueue_or_write(std::string frame_bytes);
  void write_all(const char* data, size_t len) noexcept;
  void flusher_main();
  void stop_flusher();

  // Bounded queue of framed-but-unwritten byte blobs (durable_epochs=false
  // mode). Producers claim slots with head_; the flusher (and the
  // emergency flush) consume Ready slots in order. Slot states make the
  // signal handler safe: a blob is freed only after leaving Ready, and the
  // handler never frees.
  struct Slot {
    std::atomic<int> state{0};  // 0 empty, 1 ready, 2 consumed
    std::string* data = nullptr;
  };
  static constexpr size_t kRingSlots = 256;

  std::string path_;
  SpoolOptions opts_;
  int fd_ = -1;
  int num_workers_ = 0;
  std::mutex file_mutex_;  // serializes frame emission order
  u32 strings_flushed_ = 1;  // id 0 (the empty string) is implicit
  u32 telemetry_seq_ = 0;  // guarded by file_mutex_
  u64 tap_offset_ = 0;  // guarded by file_mutex_; next frame's stream offset

  // Self-metrics (null when SpoolOptions::telemetry is unset). Counter
  // updates are lock-free atomics, safe even from the emergency flush.
  obs::Counter* m_frames_ = nullptr;
  obs::Counter* m_bytes_ = nullptr;
  obs::Counter* m_records_ = nullptr;
  obs::Counter* m_emergency_ = nullptr;
  obs::Histogram* m_flush_ns_ = nullptr;
  std::vector<std::atomic<u32>> epoch_seq_;
  std::vector<std::atomic<bool>> flush_due_;
  std::atomic<u64> payload_bytes_{0};

  std::vector<Slot> ring_;
  std::atomic<u64> ring_head_{0};
  u64 ring_tail_ = 0;  // flusher-owned
  std::thread flusher_;
  std::atomic<bool> flusher_stop_{false};

  std::atomic<bool> closed_{false};
  std::atomic<bool> crashed_{false};
  bool handlers_registered_ = false;
  // Preassembled crash-footer frame; the handler only patches the reason
  // and checksum (no allocation in signal context).
  static constexpr size_t kCrashPayloadBytes = 64;
  char crash_frame_[kFrameHeaderBytes + kCrashPayloadBytes] = {};
};

// --- recovery ---------------------------------------------------------------

struct RecoverReport {
  u64 frames_total = 0;       ///< frames whose header was readable
  u64 frames_kept = 0;        ///< frames applied to the trace
  u64 frames_corrupt = 0;     ///< checksum/decode failures, skipped
  u64 frames_out_of_order = 0;///< backward/duplicate epoch seq, skipped
  /// Epochs lost to forward seq jumps: when an epoch frame is skipped as
  /// corrupt, the worker's next valid epoch arrives with seq > expected and
  /// is applied anyway, so one bad frame costs one epoch, not the rest of
  /// the worker's stream. This counts the epochs the jumps skipped over.
  u64 epoch_gaps = 0;
  bool torn_tail = false;     ///< file ends mid-frame (in-flight write)
  bool clean_footer = false;  ///< 'F' frame present: a clean shutdown
  std::string crash_reason;   ///< from the 'C' footer, "" if none
  std::string supervisor_dump;///< concatenated 'D' frames, "" if none
  std::string telemetry;      ///< last valid 'T' payload, "" if none
  u64 telemetry_frames = 0;   ///< valid 'T' frames seen
  /// Corrupt 'T' frames. Deliberately NOT part of frames_corrupt: telemetry
  /// is advisory, so its corruption degrades to "telemetry unavailable"
  /// without marking the trace itself damaged.
  u64 telemetry_corrupt = 0;
  std::vector<u64> epochs_per_worker;
  std::vector<std::string> diagnostics;  ///< human-readable skip reasons

  bool partial() const { return !clean_footer; }
  std::string summary() const;
};

struct RecoverResult {
  bool usable = false;  ///< a finalized (possibly partial) trace came back
  Trace trace;
  RecoverReport report;
};

/// Reconstructs a Trace from the longest valid prefix of spool frames.
/// Never throws on malformed input; !usable means nothing recoverable. A
/// partial recovery stamps provenance notes ("recovered ...", "crash ...",
/// "supervisor ...") that TraceMeta's provenance accessors expose. The
/// caller is expected to run the salvage pass afterwards — recovered
/// traces usually miss TaskEnds/joins for in-flight work.
RecoverResult recover_spool_bytes(std::string_view bytes);
RecoverResult recover_spool_file(const std::string& path,
                                 std::string* error = nullptr);

/// True if `bytes`/the file starts with the spool magic (cheap sniffing
/// for tools that accept .ggtrace/.ggbin/.ggspool alike).
bool looks_like_spool(std::string_view bytes);
bool spool_file_magic(const std::string& path);

// --- whole-trace spooling (modeled path: sim + deterministic tests) --------

/// Writes an existing trace through the real sink — records partitioned
/// per worker and sealed in interleaved epochs — so the simulator and the
/// fault corpus exercise the same frame/recover code paths as the threaded
/// runtime. Returns false on I/O failure.
bool spool_trace(const Trace& trace, const SpoolOptions& opts,
                 std::string* error = nullptr);

/// Pure in-memory variant of spool_trace for corpus construction: same
/// frame stream, no filesystem. Each entry of `telemetry` is appended as a
/// 'T' frame after successive seal rounds (leftovers before the footer).
std::string spool_trace_bytes(const Trace& trace, u64 epoch_bytes,
                              const std::vector<std::string>& telemetry = {});

/// Decodes an 'M'/'F' frame payload into *meta (strict; false on any
/// malformed field). Public so spool-aware tools (ggstat) can identify a
/// run without replaying its records.
bool decode_meta_payload(std::string_view payload, TraceMeta* meta);

/// Decodes an 'E' frame payload into *out (strict; false on any malformed
/// field, including record counts whose minimum encoded size cannot fit in
/// the payload — a corrupt count field must be rejected *before* any
/// allocation sized from it). Public so incremental ingestion
/// (trace/incremental.hpp) applies exactly the batch decoder.
bool decode_epoch_payload(std::string_view payload, RecordBuffer* out);

// --- frame scanning (fault injection + diagnostics) -------------------------

struct FrameSpan {
  size_t offset = 0;        ///< frame start (header) within the stream
  size_t size = 0;          ///< header + payload
  FrameType type = FrameType::Epoch;
  u32 worker = 0;
  u32 seq = 0;
};

/// Walks frame headers without verifying checksums; stops at the first
/// torn/garbled header. The fault layer uses this to aim corruption at
/// specific frames.
std::vector<FrameSpan> scan_frames(std::string_view bytes);

/// The frame checksum (FNV-1a over type, worker, seq, payload). Public so
/// spool-aware tools (ggstat) can verify an individual frame in place.
u64 frame_checksum(FrameType type, u32 worker, u32 seq, const void* payload,
                   size_t len) noexcept;

}  // namespace gg::spool
