// Referential/structural consistency checks on raw traces, run by tests and
// by the graph builder before construction. A valid trace is the contract
// between the runtimes and everything downstream.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gg {

/// One structural violation with enough context for a caller to point at
/// the offending entity (tools add file/offset context on top).
struct Violation {
  enum class Subject : u8 {
    Trace,     ///< whole-trace property (e.g. "no root task")
    Task,      ///< id = task uid
    Fragment,  ///< id = owning task uid
    Join,      ///< id = owning task uid
    Loop,      ///< id = loop uid
    Chunk,     ///< id = owning loop uid
    Bookkeep,  ///< id = owning loop uid
    Depend,    ///< id = successor task uid
    Worker,    ///< id = worker id
  };

  Subject subject = Subject::Trace;
  u64 id = 0;
  std::string message;  ///< human-readable description

  /// "task 7", "loop 3", "trace", ... — the entity the violation is about.
  std::string where() const;
};

const char* to_string(Violation::Subject s);

struct ValidationReport {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  /// Flattened human-readable messages (the legacy string API).
  std::vector<std::string> messages() const;
};

/// Structural validation with per-violation context. Checks include:
///  - exactly one root task (uid 0, parent == kNoTask)
///  - every non-root task's parent exists; child_index values of one parent
///    are 0..n-1 without gaps
///  - every task has >= 1 fragment; fragment seq contiguous from 0; at most
///    the last fragment ends with TaskEnd, and only the last
///  - fragment intervals of one task are non-overlapping and ordered
///  - Fork end_refs name existing children of that task; Join end_refs name
///    existing joins
///  - chunk iteration ranges lie inside their loop's range, are pairwise
///    disjoint, and cover the range exactly
///  - every chunk/bookkeep references an existing loop; threads < team size
///  - all record times lie within [region_start, region_end]
ValidationReport validate_trace_structured(const Trace& trace);

/// Legacy flattened form: human-readable descriptions of every violation
/// found (empty == valid).
std::vector<std::string> validate_trace(const Trace& trace);

}  // namespace gg
