// Referential/structural consistency checks on raw traces, run by tests and
// by the graph builder before construction. A valid trace is the contract
// between the runtimes and everything downstream.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gg {

/// Returns human-readable descriptions of every violation found (empty ==
/// valid). Checks include:
///  - exactly one root task (uid 0, parent == kNoTask)
///  - every non-root task's parent exists; child_index values of one parent
///    are 0..n-1 without gaps
///  - every task has >= 1 fragment; fragment seq contiguous from 0; at most
///    the last fragment ends with TaskEnd, and only the last
///  - fragment intervals of one task are non-overlapping and ordered
///  - Fork end_refs name existing children of that task; Join end_refs name
///    existing joins
///  - chunk iteration ranges lie inside their loop's range, are pairwise
///    disjoint, and cover the range exactly
///  - every chunk/bookkeep references an existing loop; threads < team size
///  - all record times lie within [region_start, region_end]
std::vector<std::string> validate_trace(const Trace& trace);

}  // namespace gg
