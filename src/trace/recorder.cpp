#include "trace/recorder.hpp"

#include <utility>

#include "common/check.hpp"

namespace gg {

TraceRecorder::TraceRecorder(int num_workers) {
  GG_CHECK(num_workers >= 1);
  buffers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i)
    buffers_.push_back(std::make_unique<spool::RecordBuffer>());
}

TraceRecorder::Writer TraceRecorder::writer(int worker) {
  GG_CHECK(worker >= 0 && static_cast<size_t>(worker) < buffers_.size());
  return Writer(this, static_cast<u32>(worker),
                buffers_[static_cast<size_t>(worker)].get());
}

void TraceRecorder::attach_spool(spool::SpoolSink* sink, u64 epoch_bytes) {
  spool_ = sink;
  if (epoch_bytes > 0) spool_epoch_bytes_ = epoch_bytes;
}

StrId TraceRecorder::intern(std::string_view s) {
  std::lock_guard lock(strings_mutex_);
  return strings_.intern(s);
}

StrId TraceRecorder::intern_source(std::string_view file, int line,
                                   std::string_view func) {
  std::lock_guard lock(strings_mutex_);
  return intern_src(strings_, file, line, func);
}

void TraceRecorder::seal_worker(u32 worker) {
  spool::RecordBuffer& buf = *buffers_[worker];
  spool_->seal_epoch(worker, buf,
                     [this](u32 from, std::vector<std::string>* out) {
                       std::lock_guard lock(strings_mutex_);
                       for (u32 i = from; i < strings_.size(); ++i)
                         out->push_back(std::string(strings_.get(i)));
                     });
}

Trace TraceRecorder::finish(TraceMeta meta) {
  Trace trace;
  trace.meta = std::move(meta);
  // Self-measurement: account the recorder's own buffer footprint before the
  // buffers are merged (and freed) into the trace.
  trace.meta.trace_buffer_bytes = 0;
  for (auto& buf : buffers_) trace.meta.trace_buffer_bytes += buf->payload_bytes();
  for (auto& buf : buffers_) {
    auto move_into = [](auto& dst, auto& src) {
      dst.insert(dst.end(), src.begin(), src.end());
      src.clear();
    };
    move_into(trace.tasks, buf->tasks);
    move_into(trace.fragments, buf->fragments);
    move_into(trace.joins, buf->joins);
    move_into(trace.loops, buf->loops);
    move_into(trace.chunks, buf->chunks);
    move_into(trace.bookkeeps, buf->bookkeeps);
    move_into(trace.depends, buf->depends);
    move_into(trace.worker_stats, buf->worker_stats);
  }
  {
    std::lock_guard lock(strings_mutex_);
    trace.strings = std::exchange(strings_, StringTable{});
  }
  trace.finalize();
  return trace;
}

void TraceRecorder::finish_to_spool(TraceMeta meta) {
  GG_CHECK(spool_ != nullptr);
  for (u32 w = 0; w < buffers_.size(); ++w) {
    if (!buffers_[w]->empty()) seal_worker(w);
  }
  spool_->flush_strings([this](u32 from, std::vector<std::string>* out) {
    std::lock_guard lock(strings_mutex_);
    for (u32 i = from; i < strings_.size(); ++i)
      out->push_back(std::string(strings_.get(i)));
  });
  // The spooled equivalent of the buffer-footprint self-measurement: total
  // record payload sealed over the run.
  meta.trace_buffer_bytes = spool_->payload_bytes();
  spool_->finish(meta);
  {
    std::lock_guard lock(strings_mutex_);
    strings_ = StringTable{};
  }
  spool_ = nullptr;
}

}  // namespace gg
