#include "trace/synth.hpp"

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "common/prng.hpp"
#include "trace/recorder.hpp"

namespace gg {

Trace synth_trace(const SynthOptions& o) {
  Xoshiro256 rng(mix64(o.seed ^ 0x99175ace5eedull));
  TraceRecorder rec(o.workers);
  auto w = rec.writer(0);

  std::vector<StrId> srcs;
  srcs.reserve(o.sources);
  for (u32 i = 0; i < std::max<u32>(o.sources, 1); ++i) {
    srcs.push_back(rec.intern_source("synth.c", static_cast<int>(10 + i),
                                     "fn" + std::to_string(i)));
  }
  auto rnd_src = [&] { return srcs[rng.bounded(srcs.size())]; };
  auto rnd_core = [&] {
    return static_cast<u16>(rng.bounded(static_cast<u64>(o.workers)));
  };

  u64 next_task = 1;
  u64 next_loop = 0;
  u64 produced = 0;
  TimeNs max_end = 0;
  auto touch = [&](TimeNs e) { max_end = std::max(max_end, e); };

  auto rnd_counters = [&](TimeNs dur) {
    Counters c;
    c.compute = dur * 2;  // ~cycles at the 2 GHz the meta advertises
    c.stall = rng.bounded(dur / 4 + 1);
    c.cache_misses = rng.bounded(dur / 64 + 1);
    c.bytes_accessed = dur + rng.bounded(dur + 1);
    return c;
  };
  auto emit_frag = [&](u64 task, u32 seq, TimeNs start, TimeNs dur, u16 core,
                       FragmentEnd reason, u64 ref) {
    FragmentRec f;
    f.task = task;
    f.seq = seq;
    f.start = start;
    f.end = start + dur;
    f.core = core;
    f.counters = rnd_counters(dur);
    f.end_reason = reason;
    f.end_ref = ref;
    w.fragment(f);
    touch(f.end);
    return f.end;
  };

  // Generates the body of a task created at `start`; returns its end time.
  // Nested tasks fork a small sub-batch, giving the grain table multi-level
  // paths and the graph real fork/join structure below the root.
  std::function<TimeNs(u64, TimeNs, int)> gen_task = [&](u64 uid, TimeNs start,
                                                         int depth) -> TimeNs {
    const u16 core = rnd_core();
    TimeNs cur = start;
    const bool nest =
        depth < 2 && produced + 4 < o.grains && rng.uniform01() < o.nest_prob;
    if (!nest) {
      const TimeNs work = 200 + static_cast<TimeNs>(rng.exponential(800));
      return emit_frag(uid, 0, cur, work, core, FragmentEnd::TaskEnd, 0);
    }
    const u32 kids = 2 + static_cast<u32>(rng.bounded(3));
    std::vector<u64> kid_uids;
    TimeNs kids_end = cur;
    u32 seq = 0;
    for (u32 k = 0; k < kids; ++k) {
      const TimeNs d = 100 + rng.bounded(400);
      const u64 kid = next_task++;
      cur = emit_frag(uid, seq++, cur, d, core, FragmentEnd::Fork, kid);
      TaskRec tr;
      tr.uid = kid;
      tr.parent = uid;
      tr.child_index = k;
      tr.src = rnd_src();
      tr.create_time = cur;
      tr.create_core = core;
      tr.creation_cost = 50 + rng.bounded(200);
      tr.inlined = rng.bounded(4) == 0;
      w.task(tr);
      ++produced;
      kids_end = std::max(kids_end,
                          gen_task(kid, cur + 20 + rng.bounded(100), depth + 1));
      kid_uids.push_back(kid);
    }
    const TimeNs jd = 50 + rng.bounded(150);
    cur = emit_frag(uid, seq++, cur, jd, core, FragmentEnd::Join, 0);
    JoinRec jr;
    jr.task = uid;
    jr.seq = 0;
    jr.start = cur;
    jr.end = std::max(cur, kids_end) + 10;
    jr.core = core;
    w.join(jr);
    touch(jr.end);
    cur = jr.end;
    if (kid_uids.size() >= 2 && rng.uniform01() < 0.3) {
      DependRec dr;
      dr.pred = kid_uids[0];
      dr.succ = kid_uids[1];
      w.depend(dr);
    }
    const TimeNs fd = 80 + rng.bounded(300);
    return emit_frag(uid, seq, cur, fd, core, FragmentEnd::TaskEnd, 0);
  };

  // Root task: alternating fork/join batches and worksharing loops until the
  // grain budget is met.
  {
    TaskRec root;
    root.uid = kRootTask;
    root.parent = kNoTask;
    root.child_index = 0;
    root.src = srcs[0];
    root.create_time = 0;
    root.create_core = 0;
    root.creation_cost = 0;
    root.inlined = false;
    w.task(root);
  }
  TimeNs t = 1000;
  u32 rseq = 0;       // root fragment seq
  u32 rjoin = 0;      // root join seq
  u32 rchild = 0;     // root child_index (dense across batches)
  u32 rloop_seq = 0;  // loop ordinal within the root

  while (produced < o.grains) {
    if (rng.uniform01() < o.loop_fraction) {
      const u64 L = next_loop++;
      const u64 nchunks = 1 + rng.bounded(3ull * o.fanout);
      const u64 iters_per = 1 + rng.bounded(16);
      t = emit_frag(kRootTask, rseq++, t, 100 + rng.bounded(200), 0,
                    FragmentEnd::Loop, L);

      LoopRec lr;
      lr.uid = L;
      lr.enclosing_task = kRootTask;
      lr.src = rnd_src();
      lr.sched = static_cast<ScheduleKind>(rng.bounded(3));
      lr.chunk_param = iters_per;
      lr.iter_begin = 0;
      lr.iter_end = nchunks * iters_per;
      lr.num_threads = static_cast<u16>(o.workers);
      lr.starting_thread = static_cast<u16>(rng.bounded(o.workers));
      lr.seq = rloop_seq++;
      lr.start = t;

      const u32 T = static_cast<u32>(o.workers);
      std::vector<TimeNs> cursor(T, t + 10);
      std::vector<u32> nchunk(T, 0), nbook(T, 0);
      for (u64 ci = 0; ci < nchunks; ++ci) {
        const u32 tid = static_cast<u32>((lr.starting_thread + ci) % T);
        BookkeepRec br;
        br.loop = L;
        br.thread = static_cast<u16>(tid);
        br.core = static_cast<u16>(tid);
        br.seq_on_thread = nbook[tid]++;
        br.start = cursor[tid];
        br.end = cursor[tid] + 20 + rng.bounded(60);
        br.got_chunk = true;
        w.bookkeep(br);
        cursor[tid] = br.end;

        // Pareto chunk cost: skewed per-chunk work, the shape the paper's
        // loop-imbalance metrics are designed to expose.
        const TimeNs cw = std::min<TimeNs>(
            100 + static_cast<TimeNs>(rng.pareto(100.0, 1.5)), 500000);
        ChunkRec cr;
        cr.loop = L;
        cr.thread = static_cast<u16>(tid);
        cr.core = static_cast<u16>(tid);
        cr.seq_on_thread = nchunk[tid]++;
        cr.iter_begin = ci * iters_per;
        cr.iter_end = (ci + 1) * iters_per;
        cr.start = cursor[tid];
        cr.end = cursor[tid] + cw;
        cr.counters = rnd_counters(cw);
        w.chunk(cr);
        touch(cr.end);
        cursor[tid] = cr.end;
        ++produced;
      }
      TimeNs lend = t;
      for (u32 tid = 0; tid < T; ++tid) {
        if (nchunk[tid] == 0) continue;
        BookkeepRec br;  // empty-handed final visit to the scheduler
        br.loop = L;
        br.thread = static_cast<u16>(tid);
        br.core = static_cast<u16>(tid);
        br.seq_on_thread = nbook[tid]++;
        br.start = cursor[tid];
        br.end = cursor[tid] + 15;
        br.got_chunk = false;
        w.bookkeep(br);
        cursor[tid] = br.end;
        lend = std::max(lend, cursor[tid]);
      }
      lr.end = lend + 10;
      w.loop(lr);
      touch(lr.end);
      t = lr.end;
    } else {
      const u32 F = 1 + static_cast<u32>(rng.bounded(o.fanout));
      std::vector<u64> kids;
      TimeNs kids_end = t;
      for (u32 k = 0; k < F; ++k) {
        const TimeNs d = 80 + rng.bounded(300);
        const u64 kid = next_task++;
        t = emit_frag(kRootTask, rseq++, t, d, 0, FragmentEnd::Fork, kid);
        TaskRec tr;
        tr.uid = kid;
        tr.parent = kRootTask;
        tr.child_index = rchild++;
        tr.src = rnd_src();
        tr.create_time = t;
        tr.create_core = 0;
        tr.creation_cost = 50 + rng.bounded(200);
        tr.inlined = rng.bounded(4) == 0;
        w.task(tr);
        ++produced;
        kids_end =
            std::max(kids_end, gen_task(kid, t + 20 + rng.bounded(100), 1));
        kids.push_back(kid);
      }
      const u32 jseq = rjoin++;
      t = emit_frag(kRootTask, rseq++, t, 60 + rng.bounded(120), 0,
                    FragmentEnd::Join, jseq);
      JoinRec jr;
      jr.task = kRootTask;
      jr.seq = jseq;
      jr.start = t;
      jr.end = std::max(t, kids_end) + 10;
      jr.core = 0;
      w.join(jr);
      touch(jr.end);
      t = jr.end;
      if (kids.size() >= 2 && rng.uniform01() < 0.2) {
        const size_t a = rng.bounded(kids.size() - 1);
        DependRec dr;
        dr.pred = kids[a];
        dr.succ = kids[a + 1];
        w.depend(dr);
      }
    }
  }
  emit_frag(kRootTask, rseq, t, 100, 0, FragmentEnd::TaskEnd, 0);

  // Fabricated but self-consistent scheduler stats (steals <= executed,
  // inlined <= spawned; one record per worker).
  const u64 per_worker = produced / std::max(o.workers, 1) + 1;
  for (int wk = 0; wk < o.workers; ++wk) {
    WorkerStatsRec s;
    s.worker = static_cast<u16>(wk);
    s.tasks_spawned = per_worker + rng.bounded(per_worker);
    s.tasks_executed = per_worker + rng.bounded(per_worker);
    s.tasks_inlined = rng.bounded(s.tasks_spawned + 1);
    s.steals = rng.bounded(s.tasks_executed + 1);
    s.steal_failures = rng.bounded(per_worker);
    s.cas_failures = rng.bounded(per_worker / 4 + 1);
    s.deque_pushes = s.tasks_spawned;
    s.deque_pops = s.tasks_executed;
    s.deque_resizes = rng.bounded(8);
    s.taskwait_helps = rng.bounded(per_worker / 2 + 1);
    s.idle_ns = rng.bounded(max_end / 8 + 1);
    s.trace_bytes = 0;
    w.stats(s);
  }

  TraceMeta meta;
  meta.program = "synth";
  meta.runtime = "synth/gen";
  meta.topology = "flat";
  meta.num_workers = o.workers;
  meta.num_cores = o.workers;
  meta.ghz = 2.0;
  meta.region_start = 0;
  meta.region_end = max_end + 1000;
  meta.profiled = true;
  meta.clock_source = "virtual";
  meta.notes.push_back("synth seed=" + std::to_string(o.seed) +
                       " grains=" + std::to_string(produced));
  return rec.finish(std::move(meta));
}

}  // namespace gg
