#include "trace/fast_parse.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <istream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "trace/serialize_detail.hpp"

namespace gg {
namespace {

// --- text field cursor -----------------------------------------------------
//
// Replicates the extraction semantics the legacy loader got from
// `istringstream >> field`: skip C-locale whitespace, optional sign, greedy
// decimal digits, failure on missing digits or overflow, strtoull-style
// wraparound for negative fields read into a 64-bit unsigned target, and the
// position resting on the first unconsumed character. Once one extraction
// fails, every later one fails too (failbit behavior), so a whole-record
// `if (!(c >> a >> b >> ...))` reads exactly like the stream code it
// replaces.

inline bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' ||
         c == '\n';
}

class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}
  explicit operator bool() const { return ok_; }

  Cursor& operator>>(std::string_view& out) {
    if (!skip_ws()) return *this;
    const size_t start = pos_;
    while (pos_ < s_.size() && !is_space(s_[pos_])) ++pos_;
    out = s_.substr(start, pos_ - start);
    return *this;
  }

  Cursor& operator>>(u64& v) { return extract_unsigned(v); }
  Cursor& operator>>(u32& v) { return extract_unsigned(v); }
  Cursor& operator>>(u16& v) { return extract_unsigned(v); }

  Cursor& operator>>(int& v) {
    if (!skip_ws()) return *this;
    size_t p = pos_;
    if (s_[p] == '+') {  // from_chars rejects '+'; streams accept it
      ++p;
      if (p >= s_.size() || s_[p] < '0' || s_[p] > '9') {
        ok_ = false;
        return *this;
      }
    }
    const char* first = s_.data() + p;
    int out = 0;
    auto [ptr, ec] = std::from_chars(first, s_.data() + s_.size(), out);
    if (ptr == first) {
      ok_ = false;
      return *this;
    }
    pos_ = static_cast<size_t>(ptr - s_.data());
    if (ec != std::errc()) {
      ok_ = false;
      return *this;
    }
    v = out;
    return *this;
  }

  Cursor& operator>>(double& v) {
    if (!skip_ws()) return *this;
    size_t p = pos_;
    bool neg = false;
    if (s_[p] == '+' || s_[p] == '-') {
      neg = s_[p] == '-';
      ++p;
    }
    const char* first = s_.data() + p;
    double out = 0;
    auto [ptr, ec] = std::from_chars(first, s_.data() + s_.size(), out);
    if (ptr == first || ec != std::errc()) {
      ok_ = false;
      return *this;
    }
    pos_ = static_cast<size_t>(ptr - s_.data());
    v = neg ? -out : out;
    return *this;
  }

 private:
  // Positions on the next field; extraction at end-of-view fails like eof.
  bool skip_ws() {
    if (!ok_) return false;
    while (pos_ < s_.size() && is_space(s_[pos_])) ++pos_;
    if (pos_ >= s_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <class T>
  Cursor& extract_unsigned(T& v) {
    if (!skip_ws()) return *this;
    size_t p = pos_;
    bool neg = false;
    if (s_[p] == '+' || s_[p] == '-') {
      neg = s_[p] == '-';
      ++p;
    }
    const char* first = s_.data() + p;
    u64 out = 0;
    auto [ptr, ec] = std::from_chars(first, s_.data() + s_.size(), out, 10);
    if (ptr == first) {
      ok_ = false;
      return *this;
    }
    pos_ = static_cast<size_t>(ptr - s_.data());
    if (ec != std::errc()) {  // magnitude overflowed even u64
      ok_ = false;
      return *this;
    }
    if (neg) out = 0 - out;  // strtoull wraparound, as num_get does
    if (out > std::numeric_limits<T>::max()) {
      ok_ = false;
      return *this;
    }
    v = static_cast<T>(out);
    return *this;
  }

  std::string_view s_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool read_counters(Cursor& c, Counters& k) {
  return static_cast<bool>(c >> k.compute >> k.stall >> k.cache_misses >>
                           k.bytes_accessed);
}

// The task record's parent field is either "-" or a number parsed from the
// token in isolation (trailing junk ignored, like `istringstream >> u64`).
bool parse_parent_token(std::string_view tok, u64& out) {
  Cursor c(tok);
  u64 v = 0;
  if (!(c >> v)) return false;
  out = v;
  return true;
}

}  // namespace

LoadResult parse_trace_text(std::string_view buf, const LoadOptions& opts) {
  LoadResult res;
  res.source = "<stream>";
  const bool salv = opts.mode == LoadMode::Salvage;
  auto add = [&](LoadErrorCode code, u64 line, std::string context,
                 std::string msg) {
    res.diagnostics.push_back(LoadDiagnostic{code, line, true,
                                             std::move(context),
                                             std::move(msg)});
  };

  size_t pos = 0;
  auto next_line = [&](std::string_view& line) -> bool {
    if (pos >= buf.size()) return false;
    const size_t nl = buf.find('\n', pos);
    const size_t end = nl == std::string_view::npos ? buf.size() : nl;
    line = buf.substr(pos, end - pos);
    pos = end == buf.size() ? buf.size() : end + 1;
    return true;
  };

  std::string_view line;
  if (!next_line(line)) {
    add(LoadErrorCode::EmptyInput, 0, "header", "empty input");
    return res;  // status defaults to Failed
  }
  {
    Cursor head(line);
    std::string_view magic;
    int version = 0;
    if (!(head >> magic >> version) || magic != "ggtrace") {
      add(LoadErrorCode::BadMagic, 1, "header",
          "bad header: " + std::string(line));
      return res;
    }
    if (version < 1 || version > detail::kTraceVersion) {
      add(LoadErrorCode::UnsupportedVersion, 1, "header",
          "unsupported version " + std::to_string(version));
      if (!salv) return res;
      // Salvage: read it as the newest format we know and let the record
      // parser flag whatever does not fit.
    }
  }

  Trace trace;
  // The string table must be rebuilt with identical ids; collect then intern
  // in id order.
  std::vector<std::pair<StrId, std::string>> strs;
  int lineno = 1;
  bool aborted = false;
  while (!aborted && next_line(line)) {
    ++lineno;
    if (line.empty()) continue;
    Cursor ls(line);
    std::string_view kind;
    ls >> kind;
    // In Strict/Lenient a malformed record is fatal; in Salvage it is
    // skipped with a diagnostic and parsing continues.
    auto bad = [&]() {
      add(LoadErrorCode::MalformedRecord, static_cast<u64>(lineno),
          std::string(kind),
          "malformed " + std::string(kind) + " record at line " +
              std::to_string(lineno));
      if (!salv) aborted = true;
    };
    if (kind == "frag") {
      FragmentRec f;
      int reason = 0;
      if (!(ls >> f.task >> f.seq >> f.start >> f.end >> f.core >> reason >>
            f.end_ref) ||
          !read_counters(ls, f.counters) || reason < 0 || reason > 3) {
        bad();
        continue;
      }
      f.end_reason = static_cast<FragmentEnd>(reason);
      trace.fragments.push_back(f);
    } else if (kind == "chunk") {
      ChunkRec c;
      if (!(ls >> c.loop >> c.thread >> c.core >> c.seq_on_thread >>
            c.iter_begin >> c.iter_end >> c.start >> c.end) ||
          !read_counters(ls, c.counters)) {
        bad();
        continue;
      }
      trace.chunks.push_back(c);
    } else if (kind == "book") {
      BookkeepRec b;
      int got = 0;
      if (!(ls >> b.loop >> b.thread >> b.core >> b.seq_on_thread >> b.start >>
            b.end >> got)) {
        bad();
        continue;
      }
      b.got_chunk = got != 0;
      trace.bookkeeps.push_back(b);
    } else if (kind == "task") {
      TaskRec t;
      std::string_view parent;
      int inlined = 0;
      if (!(ls >> t.uid >> parent >> t.child_index >> t.src >> t.create_time >>
            t.create_core >> t.creation_cost >> inlined)) {
        bad();
        continue;
      }
      if (parent == "-") {
        t.parent = kNoTask;
      } else {
        u64 p = 0;
        if (!parse_parent_token(parent, p)) {
          bad();
          continue;
        }
        t.parent = p;
      }
      t.inlined = inlined != 0;
      trace.tasks.push_back(t);
    } else if (kind == "join") {
      JoinRec j;
      if (!(ls >> j.task >> j.seq >> j.start >> j.end >> j.core)) {
        bad();
        continue;
      }
      trace.joins.push_back(j);
    } else if (kind == "loop") {
      LoopRec l;
      int sched = 0;
      if (!(ls >> l.uid >> l.enclosing_task >> l.src >> sched >>
            l.chunk_param >> l.iter_begin >> l.iter_end >> l.num_threads >>
            l.starting_thread >> l.seq >> l.start >> l.end) ||
          sched < 0 || sched > 2) {
        bad();
        continue;
      }
      l.sched = static_cast<ScheduleKind>(sched);
      trace.loops.push_back(l);
    } else if (kind == "dep") {
      DependRec d;
      if (!(ls >> d.pred >> d.succ)) {
        bad();
        continue;
      }
      trace.depends.push_back(d);
    } else if (kind == "str") {
      StrId id;
      std::string_view s;
      if (!(ls >> id >> s)) {
        bad();
        continue;
      }
      auto u = detail::unescape(s);
      if (!u) {
        bad();
        continue;
      }
      strs.emplace_back(id, *u);
    } else if (kind == "wstat") {
      WorkerStatsRec s;
      if (!(ls >> s.worker >> s.tasks_spawned >> s.tasks_executed >>
            s.tasks_inlined >> s.steals >> s.steal_failures >>
            s.cas_failures >> s.deque_pushes >> s.deque_pops >>
            s.deque_resizes >> s.taskwait_helps >> s.idle_ns >>
            s.trace_bytes)) {
        bad();
        continue;
      }
      trace.worker_stats.push_back(s);
    } else if (kind == "meta") {
      std::string_view program, runtime, topology;
      TraceMeta m;
      if (!(ls >> program >> runtime >> topology >> m.num_workers >>
            m.num_cores >> m.ghz >> m.region_start >> m.region_end)) {
        bad();
        continue;
      }
      auto p = detail::unescape(program), r = detail::unescape(runtime),
           t = detail::unescape(topology);
      if (!p || !r || !t) {
        bad();
        continue;
      }
      m.profiled = trace.meta.profiled;
      m.trace_buffer_bytes = trace.meta.trace_buffer_bytes;
      m.clock_source = trace.meta.clock_source;
      m.notes = std::move(trace.meta.notes);
      m.program = *p;
      m.runtime = *r;
      m.topology = *t;
      trace.meta = std::move(m);
    } else if (kind == "metax") {
      int profiled = 1;
      u64 buffer_bytes = 0;
      std::string_view clock;
      if (!(ls >> profiled >> buffer_bytes >> clock)) {
        bad();
        continue;
      }
      auto c = detail::unescape(clock);
      if (!c) {
        bad();
        continue;
      }
      trace.meta.profiled = profiled != 0;
      trace.meta.trace_buffer_bytes = buffer_bytes;
      trace.meta.clock_source = *c;
    } else if (kind == "note") {
      std::string_view n;
      if (!(ls >> n)) {
        bad();
        continue;
      }
      auto u = detail::unescape(n);
      if (!u) {
        bad();
        continue;
      }
      trace.meta.notes.push_back(*u);
    } else {
      add(LoadErrorCode::UnknownRecordKind, static_cast<u64>(lineno),
          std::string(kind),
          "unknown record kind '" + std::string(kind) + "' at line " +
              std::to_string(lineno));
      if (opts.mode == LoadMode::Strict) aborted = true;
      // Lenient/Salvage: skip the line (forward compatibility).
    }
  }
  if (aborted) return res;  // fatal diagnostic already recorded

  if (!detail::apply_string_table(strs, salv, trace, res)) return res;
  detail::finish_load(std::move(trace), opts, res);
  return res;
}

namespace {

// --- binary parsing --------------------------------------------------------

// Bounds-checked cursor over a fully-buffered binary stream. Every read is
// checked against the remaining bytes, so a corrupted length/count can never
// trigger an over-read or an attempted multi-gigabyte allocation.
struct ByteReader {
  std::string_view buf;
  size_t pos = 0;

  size_t remaining() const { return buf.size() - pos; }
  bool get_u64(u64& v) {
    if (remaining() < sizeof v) return false;
    std::memcpy(&v, buf.data() + pos, sizeof v);
    pos += sizeof v;
    return true;
  }
  bool get_u32(u32& v) {
    if (remaining() < sizeof v) return false;
    std::memcpy(&v, buf.data() + pos, sizeof v);
    pos += sizeof v;
    return true;
  }
  bool get_str(std::string& s) {
    u64 n = 0;
    if (!get_u64(n)) return false;
    if (n > remaining()) {
      pos -= sizeof n;
      return false;
    }
    s.assign(buf.data() + pos, static_cast<size_t>(n));
    pos += static_cast<size_t>(n);
    return true;
  }
  bool get_counters(Counters& c) {
    return get_u64(c.compute) && get_u64(c.stall) && get_u64(c.cache_misses) &&
           get_u64(c.bytes_accessed);
  }
};

constexpr char kBinMagic[] = "GGTB3";  // v3 adds worker stats + profiling meta
constexpr char kBinMagicV2[] = "GGTB2";  // v2 added a dependence section
constexpr char kBinMagicV1[] = "GGTB1";

// Minimum encoded sizes per record, used to reject section counts that could
// not possibly fit in the remaining bytes (a bit-flipped count would
// otherwise demand a huge allocation).
constexpr size_t kMinTaskBytes = 48;
constexpr size_t kMinFragBytes = 76;
constexpr size_t kMinJoinBytes = 32;
constexpr size_t kMinLoopBytes = 76;
constexpr size_t kMinChunkBytes = 84;
constexpr size_t kMinBookBytes = 40;
constexpr size_t kMinDependBytes = 16;
constexpr size_t kMinWstatBytes = 100;

// Parses the sections after the magic. Returns false on a fatal problem
// (Strict/Lenient); in Salvage mode it always returns true and simply stops
// at the end of the longest readable prefix, leaving what was parsed in
// `trace`. Diagnostics are appended either way.
bool parse_binary_body(ByteReader& r, bool v1, bool v2, bool salv,
                       Trace& trace, std::vector<LoadDiagnostic>& diags) {
  auto add = [&](LoadErrorCode code, u64 off, const char* ctx,
                 std::string msg) {
    diags.push_back(
        LoadDiagnostic{code, off, false, ctx, std::move(msg)});
  };
  auto truncated = [&](u64 off, const char* ctx, const char* msg) {
    add(LoadErrorCode::TruncatedStream, off, ctx, msg);
    return salv;  // salvage keeps the prefix; strict/lenient fail
  };
  // Reads a section count and sanity-checks it against the bytes that are
  // actually left; min_size == 0 skips the plausibility check.
  auto get_count = [&](u64& n, size_t min_size, const char* ctx,
                       const char* trunc_msg, bool& ok) {
    const u64 off = r.pos;
    if (!r.get_u64(n)) {
      ok = truncated(off, ctx, trunc_msg);
      return false;
    }
    if (min_size != 0 && n > r.remaining() / min_size) {
      add(LoadErrorCode::LimitExceeded, off, ctx,
          std::string("implausible ") + ctx + " count " + std::to_string(n));
      ok = salv;
      return false;
    }
    return true;
  };

  TraceMeta& m = trace.meta;
  u32 workers = 0, cores = 0;
  u64 ghz_u = 0, nnotes = 0;
  if (!(r.get_str(m.program) && r.get_str(m.runtime) &&
        r.get_str(m.topology) && r.get_u32(workers) && r.get_u32(cores) &&
        r.get_u64(ghz_u) && r.get_u64(m.region_start) &&
        r.get_u64(m.region_end))) {
    return truncated(r.pos, "meta", "truncated meta");
  }
  m.num_workers = static_cast<int>(workers);
  m.num_cores = static_cast<int>(cores);
  m.ghz = static_cast<double>(ghz_u) / 1e6;
  {
    bool ok = true;
    if (!get_count(nnotes, 8, "notes", "truncated notes", ok)) return ok;
    for (u64 i = 0; i < nnotes; ++i) {
      std::string n;
      if (!r.get_str(n)) return truncated(r.pos, "notes", "truncated notes");
      m.notes.push_back(std::move(n));
    }
  }
  {
    u64 nstrs = 0;
    const u64 off = r.pos;
    if (!r.get_u64(nstrs))
      return truncated(off, "strings", "truncated string table");
    if (nstrs > 0 && nstrs - 1 > r.remaining() / 8) {
      add(LoadErrorCode::LimitExceeded, off, "strings",
          "implausible string count " + std::to_string(nstrs));
      return salv;
    }
    bool warned = false;
    for (u64 i = 1; i < nstrs; ++i) {
      std::string str;
      const u64 soff = r.pos;
      if (!r.get_str(str))
        return truncated(soff, "strings", "truncated string table");
      StrId got = trace.strings.intern(str);
      if (got != i) {
        if (!salv) {
          add(LoadErrorCode::StringTableCorrupt, soff, "strings",
              "string ids not dense");
          return false;
        }
        if (!warned) {
          add(LoadErrorCode::StringTableCorrupt, soff, "strings",
              "duplicate string contents; de-duplicated with placeholders");
          warned = true;
        }
        while (got != i) {
          str += "#";
          got = trace.strings.intern(str);
        }
      }
    }
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinTaskBytes, "tasks", "truncated tasks", ok))
      return ok;
    trace.tasks.reserve(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) {
      TaskRec t;
      u32 core = 0, inl = 0;
      const u64 off = r.pos;
      if (!(r.get_u64(t.uid) && r.get_u64(t.parent) &&
            r.get_u32(t.child_index) && r.get_u32(t.src) &&
            r.get_u64(t.create_time) && r.get_u32(core) &&
            r.get_u64(t.creation_cost) && r.get_u32(inl)))
        return truncated(off, "tasks", "truncated task record");
      t.create_core = static_cast<u16>(core);
      t.inlined = inl != 0;
      trace.tasks.push_back(t);
    }
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinFragBytes, "fragments", "truncated fragments", ok))
      return ok;
    trace.fragments.reserve(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) {
      FragmentRec f;
      u32 core = 0, reason = 0;
      const u64 off = r.pos;
      if (!(r.get_u64(f.task) && r.get_u32(f.seq) && r.get_u64(f.start) &&
            r.get_u64(f.end) && r.get_u32(core) && r.get_u32(reason) &&
            r.get_u64(f.end_ref) && r.get_counters(f.counters)))
        return truncated(off, "fragments", "truncated fragment record");
      if (reason > 3) {
        add(LoadErrorCode::MalformedRecord, off, "fragments",
            "bad fragment end reason");
        if (!salv) return false;
        continue;  // salvage: skip the record, keep parsing
      }
      f.core = static_cast<u16>(core);
      f.end_reason = static_cast<FragmentEnd>(reason);
      trace.fragments.push_back(f);
    }
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinJoinBytes, "joins", "truncated joins", ok))
      return ok;
    trace.joins.reserve(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) {
      JoinRec j;
      u32 core = 0;
      const u64 off = r.pos;
      if (!(r.get_u64(j.task) && r.get_u32(j.seq) && r.get_u64(j.start) &&
            r.get_u64(j.end) && r.get_u32(core)))
        return truncated(off, "joins", "truncated join record");
      j.core = static_cast<u16>(core);
      trace.joins.push_back(j);
    }
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinLoopBytes, "loops", "truncated loops", ok))
      return ok;
    trace.loops.reserve(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) {
      LoopRec l;
      u32 sched = 0, threads = 0, start_thread = 0;
      const u64 off = r.pos;
      if (!(r.get_u64(l.uid) && r.get_u64(l.enclosing_task) &&
            r.get_u32(l.src) && r.get_u32(sched) && r.get_u64(l.chunk_param) &&
            r.get_u64(l.iter_begin) && r.get_u64(l.iter_end) &&
            r.get_u32(threads) && r.get_u32(start_thread) &&
            r.get_u32(l.seq) && r.get_u64(l.start) && r.get_u64(l.end)))
        return truncated(off, "loops", "truncated loop record");
      if (sched > 2) {
        add(LoadErrorCode::MalformedRecord, off, "loops", "bad loop schedule");
        if (!salv) return false;
        continue;
      }
      l.sched = static_cast<ScheduleKind>(sched);
      l.num_threads = static_cast<u16>(threads);
      l.starting_thread = static_cast<u16>(start_thread);
      trace.loops.push_back(l);
    }
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinChunkBytes, "chunks", "truncated chunks", ok))
      return ok;
    trace.chunks.reserve(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) {
      ChunkRec c;
      u32 thread = 0, core = 0;
      const u64 off = r.pos;
      if (!(r.get_u64(c.loop) && r.get_u32(thread) && r.get_u32(core) &&
            r.get_u32(c.seq_on_thread) && r.get_u64(c.iter_begin) &&
            r.get_u64(c.iter_end) && r.get_u64(c.start) && r.get_u64(c.end) &&
            r.get_counters(c.counters)))
        return truncated(off, "chunks", "truncated chunk record");
      c.thread = static_cast<u16>(thread);
      c.core = static_cast<u16>(core);
      trace.chunks.push_back(c);
    }
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinBookBytes, "bookkeeps", "truncated bookkeeps", ok))
      return ok;
    trace.bookkeeps.reserve(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) {
      BookkeepRec b;
      u32 thread = 0, core = 0, got = 0;
      const u64 off = r.pos;
      if (!(r.get_u64(b.loop) && r.get_u32(thread) && r.get_u32(core) &&
            r.get_u32(b.seq_on_thread) && r.get_u64(b.start) &&
            r.get_u64(b.end) && r.get_u32(got)))
        return truncated(off, "bookkeeps", "truncated bookkeep record");
      b.thread = static_cast<u16>(thread);
      b.core = static_cast<u16>(core);
      b.got_chunk = got != 0;
      trace.bookkeeps.push_back(b);
    }
  }
  if (!v1) {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinDependBytes, "depends", "truncated depends", ok))
      return ok;
    trace.depends.reserve(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) {
      DependRec d;
      const u64 off = r.pos;
      if (!(r.get_u64(d.pred) && r.get_u64(d.succ)))
        return truncated(off, "depends", "truncated depend record");
      trace.depends.push_back(d);
    }
  }
  if (!v1 && !v2) {
    u32 profiled = 1;
    if (!(r.get_u32(profiled) && r.get_u64(m.trace_buffer_bytes) &&
          r.get_str(m.clock_source)))
      return truncated(r.pos, "trailer", "truncated profiling meta");
    m.profiled = profiled != 0;
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinWstatBytes, "worker stats", "truncated worker stats",
                   ok))
      return ok;
    trace.worker_stats.reserve(static_cast<size_t>(n));
    for (u64 i = 0; i < n; ++i) {
      WorkerStatsRec s;
      u32 worker = 0;
      const u64 off = r.pos;
      if (!(r.get_u32(worker) && r.get_u64(s.tasks_spawned) &&
            r.get_u64(s.tasks_executed) && r.get_u64(s.tasks_inlined) &&
            r.get_u64(s.steals) && r.get_u64(s.steal_failures) &&
            r.get_u64(s.cas_failures) && r.get_u64(s.deque_pushes) &&
            r.get_u64(s.deque_pops) && r.get_u64(s.deque_resizes) &&
            r.get_u64(s.taskwait_helps) && r.get_u64(s.idle_ns) &&
            r.get_u64(s.trace_bytes)))
        return truncated(off, "worker stats", "truncated worker stats record");
      s.worker = static_cast<u16>(worker);
      trace.worker_stats.push_back(s);
    }
  }
  return true;
}

}  // namespace

LoadResult parse_trace_binary(std::string_view buf, const LoadOptions& opts) {
  LoadResult res;
  res.source = "<stream>";
  const bool salv = opts.mode == LoadMode::Salvage;
  if (buf.size() < 5) {
    res.diagnostics.push_back(LoadDiagnostic{LoadErrorCode::BadMagic, 0, false,
                                             "magic", "bad binary magic"});
    return res;
  }
  const std::string_view m5 = buf.substr(0, 5);
  const bool v1 = m5 == kBinMagicV1;
  const bool v2 = m5 == kBinMagicV2;
  if (!v1 && !v2 && m5 != kBinMagic) {
    res.diagnostics.push_back(LoadDiagnostic{LoadErrorCode::BadMagic, 0, false,
                                             "magic", "bad binary magic"});
    return res;
  }
  ByteReader r{buf, 5};
  Trace trace;
  if (!parse_binary_body(r, v1, v2, salv, trace, res.diagnostics)) {
    return res;  // fatal in Strict/Lenient; diagnostics already recorded
  }
  detail::finish_load(std::move(trace), opts, res);
  return res;
}

bool read_file_contents(const std::string& path, std::string& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  if (std::fseek(f, 0, SEEK_END) != 0) {
    std::fclose(f);
    return false;
  }
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return false;
  }
  std::rewind(f);
  out.resize(static_cast<size_t>(size));
  const size_t got = size > 0 ? std::fread(out.data(), 1, out.size(), f) : 0;
  std::fclose(f);
  out.resize(got);  // short read: parse what we got (truncation diagnostics)
  return true;
}

std::string slurp_stream(std::istream& is) {
  std::string buf;
  char block[1 << 16];
  for (;;) {
    is.read(block, sizeof block);
    const std::streamsize got = is.gcount();
    if (got > 0) buf.append(block, static_cast<size_t>(got));
    if (got < static_cast<std::streamsize>(sizeof block)) break;
  }
  return buf;
}

}  // namespace gg
