#include "trace/fast_parse.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cstring>
#include <istream>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/par_for.hpp"
#include "trace/mmap_source.hpp"
#include "trace/serialize_detail.hpp"

namespace gg {
namespace {

// --- text field cursor -----------------------------------------------------
//
// Replicates the extraction semantics the legacy loader got from
// `istringstream >> field`: skip C-locale whitespace, optional sign, greedy
// decimal digits, failure on missing digits or overflow, strtoull-style
// wraparound for negative fields read into a 64-bit unsigned target, and the
// position resting on the first unconsumed character. Once one extraction
// fails, every later one fails too (failbit behavior), so a whole-record
// `if (!(c >> a >> b >> ...))` reads exactly like the stream code it
// replaces.

inline bool is_space(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f' ||
         c == '\n';
}

class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}
  explicit operator bool() const { return ok_; }

  Cursor& operator>>(std::string_view& out) {
    if (!skip_ws()) return *this;
    const size_t start = pos_;
    while (pos_ < s_.size() && !is_space(s_[pos_])) ++pos_;
    out = s_.substr(start, pos_ - start);
    return *this;
  }

  Cursor& operator>>(u64& v) { return extract_unsigned(v); }
  Cursor& operator>>(u32& v) { return extract_unsigned(v); }
  Cursor& operator>>(u16& v) { return extract_unsigned(v); }

  Cursor& operator>>(int& v) {
    if (!skip_ws()) return *this;
    size_t p = pos_;
    if (s_[p] == '+') {  // from_chars rejects '+'; streams accept it
      ++p;
      if (p >= s_.size() || s_[p] < '0' || s_[p] > '9') {
        ok_ = false;
        return *this;
      }
    }
    const char* first = s_.data() + p;
    int out = 0;
    auto [ptr, ec] = std::from_chars(first, s_.data() + s_.size(), out);
    if (ptr == first) {
      ok_ = false;
      return *this;
    }
    pos_ = static_cast<size_t>(ptr - s_.data());
    if (ec != std::errc()) {
      ok_ = false;
      return *this;
    }
    v = out;
    return *this;
  }

  Cursor& operator>>(double& v) {
    if (!skip_ws()) return *this;
    size_t p = pos_;
    bool neg = false;
    if (s_[p] == '+' || s_[p] == '-') {
      neg = s_[p] == '-';
      ++p;
    }
    const char* first = s_.data() + p;
    double out = 0;
    auto [ptr, ec] = std::from_chars(first, s_.data() + s_.size(), out);
    if (ptr == first || ec != std::errc()) {
      ok_ = false;
      return *this;
    }
    pos_ = static_cast<size_t>(ptr - s_.data());
    v = neg ? -out : out;
    return *this;
  }

 private:
  // Positions on the next field; extraction at end-of-view fails like eof.
  bool skip_ws() {
    if (!ok_) return false;
    while (pos_ < s_.size() && is_space(s_[pos_])) ++pos_;
    if (pos_ >= s_.size()) {
      ok_ = false;
      return false;
    }
    return true;
  }

  template <class T>
  Cursor& extract_unsigned(T& v) {
    if (!skip_ws()) return *this;
    size_t p = pos_;
    bool neg = false;
    if (s_[p] == '+' || s_[p] == '-') {
      neg = s_[p] == '-';
      ++p;
    }
    const char* first = s_.data() + p;
    u64 out = 0;
    auto [ptr, ec] = std::from_chars(first, s_.data() + s_.size(), out, 10);
    if (ptr == first) {
      ok_ = false;
      return *this;
    }
    pos_ = static_cast<size_t>(ptr - s_.data());
    if (ec != std::errc()) {  // magnitude overflowed even u64
      ok_ = false;
      return *this;
    }
    if (neg) out = 0 - out;  // strtoull wraparound, as num_get does
    if (out > std::numeric_limits<T>::max()) {
      ok_ = false;
      return *this;
    }
    v = static_cast<T>(out);
    return *this;
  }

  std::string_view s_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool read_counters(Cursor& c, Counters& k) {
  return static_cast<bool>(c >> k.compute >> k.stall >> k.cache_misses >>
                           k.bytes_accessed);
}

// The task record's parent field is either "-" or a number parsed from the
// token in isolation (trailing junk ignored, like `istringstream >> u64`).
bool parse_parent_token(std::string_view tok, u64& out) {
  Cursor c(tok);
  u64 v = 0;
  if (!(c >> v)) return false;
  out = v;
  return true;
}

}  // namespace

LoadResult parse_trace_text(std::string_view buf, const LoadOptions& opts) {
  LoadResult res;
  res.source = "<stream>";
  const bool salv = opts.mode == LoadMode::Salvage;
  auto add = [&](LoadErrorCode code, u64 line, std::string context,
                 std::string msg) {
    res.diagnostics.push_back(LoadDiagnostic{code, line, true,
                                             std::move(context),
                                             std::move(msg)});
  };

  size_t pos = 0;
  auto next_line = [&](std::string_view& line) -> bool {
    if (pos >= buf.size()) return false;
    const size_t nl = buf.find('\n', pos);
    const size_t end = nl == std::string_view::npos ? buf.size() : nl;
    line = buf.substr(pos, end - pos);
    pos = end == buf.size() ? buf.size() : end + 1;
    return true;
  };

  std::string_view line;
  if (!next_line(line)) {
    add(LoadErrorCode::EmptyInput, 0, "header", "empty input");
    return res;  // status defaults to Failed
  }
  {
    Cursor head(line);
    std::string_view magic;
    int version = 0;
    if (!(head >> magic >> version) || magic != "ggtrace") {
      add(LoadErrorCode::BadMagic, 1, "header",
          "bad header: " + std::string(line));
      return res;
    }
    if (version < 1 || version > detail::kTraceVersion) {
      add(LoadErrorCode::UnsupportedVersion, 1, "header",
          "unsupported version " + std::to_string(version));
      if (!salv) return res;
      // Salvage: read it as the newest format we know and let the record
      // parser flag whatever does not fit.
    }
  }

  Trace trace;
  // The string table must be rebuilt with identical ids; collect then intern
  // in id order.
  std::vector<std::pair<StrId, std::string>> strs;
  int lineno = 1;
  bool aborted = false;
  while (!aborted && next_line(line)) {
    ++lineno;
    if (line.empty()) continue;
    Cursor ls(line);
    std::string_view kind;
    ls >> kind;
    // In Strict/Lenient a malformed record is fatal; in Salvage it is
    // skipped with a diagnostic and parsing continues.
    auto bad = [&]() {
      add(LoadErrorCode::MalformedRecord, static_cast<u64>(lineno),
          std::string(kind),
          "malformed " + std::string(kind) + " record at line " +
              std::to_string(lineno));
      if (!salv) aborted = true;
    };
    if (kind == "frag") {
      FragmentRec f;
      int reason = 0;
      if (!(ls >> f.task >> f.seq >> f.start >> f.end >> f.core >> reason >>
            f.end_ref) ||
          !read_counters(ls, f.counters) || reason < 0 || reason > 3) {
        bad();
        continue;
      }
      f.end_reason = static_cast<FragmentEnd>(reason);
      trace.fragments.push_back(f);
    } else if (kind == "chunk") {
      ChunkRec c;
      if (!(ls >> c.loop >> c.thread >> c.core >> c.seq_on_thread >>
            c.iter_begin >> c.iter_end >> c.start >> c.end) ||
          !read_counters(ls, c.counters)) {
        bad();
        continue;
      }
      trace.chunks.push_back(c);
    } else if (kind == "book") {
      BookkeepRec b;
      int got = 0;
      if (!(ls >> b.loop >> b.thread >> b.core >> b.seq_on_thread >> b.start >>
            b.end >> got)) {
        bad();
        continue;
      }
      b.got_chunk = got != 0;
      trace.bookkeeps.push_back(b);
    } else if (kind == "task") {
      TaskRec t;
      std::string_view parent;
      int inlined = 0;
      if (!(ls >> t.uid >> parent >> t.child_index >> t.src >> t.create_time >>
            t.create_core >> t.creation_cost >> inlined)) {
        bad();
        continue;
      }
      if (parent == "-") {
        t.parent = kNoTask;
      } else {
        u64 p = 0;
        if (!parse_parent_token(parent, p)) {
          bad();
          continue;
        }
        t.parent = p;
      }
      t.inlined = inlined != 0;
      trace.tasks.push_back(t);
    } else if (kind == "join") {
      JoinRec j;
      if (!(ls >> j.task >> j.seq >> j.start >> j.end >> j.core)) {
        bad();
        continue;
      }
      trace.joins.push_back(j);
    } else if (kind == "loop") {
      LoopRec l;
      int sched = 0;
      if (!(ls >> l.uid >> l.enclosing_task >> l.src >> sched >>
            l.chunk_param >> l.iter_begin >> l.iter_end >> l.num_threads >>
            l.starting_thread >> l.seq >> l.start >> l.end) ||
          sched < 0 || sched > 2) {
        bad();
        continue;
      }
      l.sched = static_cast<ScheduleKind>(sched);
      trace.loops.push_back(l);
    } else if (kind == "dep") {
      DependRec d;
      if (!(ls >> d.pred >> d.succ)) {
        bad();
        continue;
      }
      trace.depends.push_back(d);
    } else if (kind == "str") {
      StrId id;
      std::string_view s;
      if (!(ls >> id >> s)) {
        bad();
        continue;
      }
      auto u = detail::unescape(s);
      if (!u) {
        bad();
        continue;
      }
      strs.emplace_back(id, *u);
    } else if (kind == "wstat") {
      WorkerStatsRec s;
      if (!(ls >> s.worker >> s.tasks_spawned >> s.tasks_executed >>
            s.tasks_inlined >> s.steals >> s.steal_failures >>
            s.cas_failures >> s.deque_pushes >> s.deque_pops >>
            s.deque_resizes >> s.taskwait_helps >> s.idle_ns >>
            s.trace_bytes)) {
        bad();
        continue;
      }
      trace.worker_stats.push_back(s);
    } else if (kind == "meta") {
      std::string_view program, runtime, topology;
      TraceMeta m;
      if (!(ls >> program >> runtime >> topology >> m.num_workers >>
            m.num_cores >> m.ghz >> m.region_start >> m.region_end)) {
        bad();
        continue;
      }
      auto p = detail::unescape(program), r = detail::unescape(runtime),
           t = detail::unescape(topology);
      if (!p || !r || !t) {
        bad();
        continue;
      }
      m.profiled = trace.meta.profiled;
      m.trace_buffer_bytes = trace.meta.trace_buffer_bytes;
      m.clock_source = trace.meta.clock_source;
      m.notes = std::move(trace.meta.notes);
      m.program = *p;
      m.runtime = *r;
      m.topology = *t;
      trace.meta = std::move(m);
    } else if (kind == "metax") {
      int profiled = 1;
      u64 buffer_bytes = 0;
      std::string_view clock;
      if (!(ls >> profiled >> buffer_bytes >> clock)) {
        bad();
        continue;
      }
      auto c = detail::unescape(clock);
      if (!c) {
        bad();
        continue;
      }
      trace.meta.profiled = profiled != 0;
      trace.meta.trace_buffer_bytes = buffer_bytes;
      trace.meta.clock_source = *c;
    } else if (kind == "note") {
      std::string_view n;
      if (!(ls >> n)) {
        bad();
        continue;
      }
      auto u = detail::unescape(n);
      if (!u) {
        bad();
        continue;
      }
      trace.meta.notes.push_back(*u);
    } else {
      add(LoadErrorCode::UnknownRecordKind, static_cast<u64>(lineno),
          std::string(kind),
          "unknown record kind '" + std::string(kind) + "' at line " +
              std::to_string(lineno));
      if (opts.mode == LoadMode::Strict) aborted = true;
      // Lenient/Salvage: skip the line (forward compatibility).
    }
  }
  if (aborted) return res;  // fatal diagnostic already recorded

  if (!detail::apply_string_table(strs, salv, trace, res)) return res;
  detail::finish_load(std::move(trace), opts, res);
  return res;
}

namespace {

// --- binary parsing --------------------------------------------------------

// Bounds-checked cursor over a fully-buffered binary stream. Every read is
// checked against the remaining bytes, so a corrupted length/count can never
// trigger an over-read or an attempted multi-gigabyte allocation.
struct ByteReader {
  std::string_view buf;
  size_t pos = 0;

  size_t remaining() const { return buf.size() - pos; }
  bool get_u64(u64& v) {
    if (remaining() < sizeof v) return false;
    std::memcpy(&v, buf.data() + pos, sizeof v);
    pos += sizeof v;
    return true;
  }
  bool get_u32(u32& v) {
    if (remaining() < sizeof v) return false;
    std::memcpy(&v, buf.data() + pos, sizeof v);
    pos += sizeof v;
    return true;
  }
  bool get_str(std::string& s) {
    u64 n = 0;
    if (!get_u64(n)) return false;
    if (n > remaining()) {
      pos -= sizeof n;
      return false;
    }
    s.assign(buf.data() + pos, static_cast<size_t>(n));
    pos += static_cast<size_t>(n);
    return true;
  }
  bool get_counters(Counters& c) {
    return get_u64(c.compute) && get_u64(c.stall) && get_u64(c.cache_misses) &&
           get_u64(c.bytes_accessed);
  }
};

constexpr char kBinMagic[] = "GGTB3";  // v3 adds worker stats + profiling meta
constexpr char kBinMagicV2[] = "GGTB2";  // v2 added a dependence section
constexpr char kBinMagicV1[] = "GGTB1";

// Encoded sizes per record. These are *exact* strides — every record kind
// below serializes to a fixed byte count — which buys two things: a section
// count that passes the plausibility check (n <= remaining / stride, exact
// division) proves the whole section is present, and record i lives at a
// computable offset, so the section decodes in parallel with no scan.
constexpr size_t kMinTaskBytes = 48;
constexpr size_t kMinFragBytes = 76;
constexpr size_t kMinJoinBytes = 32;
constexpr size_t kMinLoopBytes = 76;
constexpr size_t kMinChunkBytes = 84;
constexpr size_t kMinBookBytes = 40;
constexpr size_t kMinDependBytes = 16;
constexpr size_t kMinWstatBytes = 100;

// --- parallel fixed-stride section decode ----------------------------------

inline u64 ld64(const char* p) {
  u64 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline u32 ld32(const char* p) {
  u32 v;
  std::memcpy(&v, p, sizeof v);
  return v;
}

// Per-record decoders, each reading exactly the stride above from `p`.
// Return false for a malformed (but complete) record — the same validity
// checks the strict loader applies.

inline bool decode_task(const char* p, TaskRec& t) {
  t.uid = ld64(p);
  t.parent = ld64(p + 8);
  t.child_index = ld32(p + 16);
  t.src = ld32(p + 20);
  t.create_time = ld64(p + 24);
  t.create_core = static_cast<u16>(ld32(p + 32));
  t.creation_cost = ld64(p + 36);
  t.inlined = ld32(p + 44) != 0;
  return true;
}

inline bool decode_frag(const char* p, FragmentRec& f) {
  f.task = ld64(p);
  f.seq = ld32(p + 8);
  f.start = ld64(p + 12);
  f.end = ld64(p + 20);
  f.core = static_cast<u16>(ld32(p + 28));
  const u32 reason = ld32(p + 32);
  f.end_ref = ld64(p + 36);
  f.counters.compute = ld64(p + 44);
  f.counters.stall = ld64(p + 52);
  f.counters.cache_misses = ld64(p + 60);
  f.counters.bytes_accessed = ld64(p + 68);
  if (reason > 3) return false;
  f.end_reason = static_cast<FragmentEnd>(reason);
  return true;
}

inline bool decode_join(const char* p, JoinRec& j) {
  j.task = ld64(p);
  j.seq = ld32(p + 8);
  j.start = ld64(p + 12);
  j.end = ld64(p + 20);
  j.core = static_cast<u16>(ld32(p + 28));
  return true;
}

inline bool decode_loop(const char* p, LoopRec& l) {
  l.uid = ld64(p);
  l.enclosing_task = ld64(p + 8);
  l.src = ld32(p + 16);
  const u32 sched = ld32(p + 20);
  l.chunk_param = ld64(p + 24);
  l.iter_begin = ld64(p + 32);
  l.iter_end = ld64(p + 40);
  l.num_threads = static_cast<u16>(ld32(p + 48));
  l.starting_thread = static_cast<u16>(ld32(p + 52));
  l.seq = ld32(p + 56);
  l.start = ld64(p + 60);
  l.end = ld64(p + 68);
  if (sched > 2) return false;
  l.sched = static_cast<ScheduleKind>(sched);
  return true;
}

inline bool decode_chunk(const char* p, ChunkRec& c) {
  c.loop = ld64(p);
  c.thread = static_cast<u16>(ld32(p + 8));
  c.core = static_cast<u16>(ld32(p + 12));
  c.seq_on_thread = ld32(p + 16);
  c.iter_begin = ld64(p + 20);
  c.iter_end = ld64(p + 28);
  c.start = ld64(p + 36);
  c.end = ld64(p + 44);
  c.counters.compute = ld64(p + 52);
  c.counters.stall = ld64(p + 60);
  c.counters.cache_misses = ld64(p + 68);
  c.counters.bytes_accessed = ld64(p + 76);
  return true;
}

inline bool decode_book(const char* p, BookkeepRec& b) {
  b.loop = ld64(p);
  b.thread = static_cast<u16>(ld32(p + 8));
  b.core = static_cast<u16>(ld32(p + 12));
  b.seq_on_thread = ld32(p + 16);
  b.start = ld64(p + 20);
  b.end = ld64(p + 28);
  b.got_chunk = ld32(p + 36) != 0;
  return true;
}

inline bool decode_depend(const char* p, DependRec& d) {
  d.pred = ld64(p);
  d.succ = ld64(p + 8);
  return true;
}

inline bool decode_wstat(const char* p, WorkerStatsRec& s) {
  s.worker = static_cast<u16>(ld32(p));
  s.tasks_spawned = ld64(p + 4);
  s.tasks_executed = ld64(p + 12);
  s.tasks_inlined = ld64(p + 20);
  s.steals = ld64(p + 28);
  s.steal_failures = ld64(p + 36);
  s.cas_failures = ld64(p + 44);
  s.deque_pushes = ld64(p + 52);
  s.deque_pops = ld64(p + 60);
  s.deque_resizes = ld64(p + 68);
  s.taskwait_helps = ld64(p + 76);
  s.idle_ns = ld64(p + 84);
  s.trace_bytes = ld64(p + 92);
  return true;
}

// Decodes a whole fixed-stride section (count already read and validated, so
// all `n` records are present) into `out`, partitioned across `threads`
// workers. Serial and parallel runs share this exact code path —
// par_for_blocks degenerates to one block — so the decoded records and the
// diagnostics are identical for every thread count by construction.
//
// Malformed-record semantics match the strict loader: in Strict/Lenient the
// first bad record is reported (at its byte offset) and the parse fails; in
// Salvage every bad record is reported in offset order and skipped, the
// survivors compacted in their original order.
template <class Rec, class Decode>
bool decode_section(ByteReader& r, u64 n, size_t stride, int threads,
                    bool salv, const char* ctx, const char* bad_msg,
                    std::vector<Rec>& out,
                    std::vector<LoadDiagnostic>& diags, Decode decode) {
  const size_t base = r.pos;
  const size_t count = static_cast<size_t>(n);
  r.pos = base + count * stride;
  out.resize(count);
  const size_t nblocks = static_cast<size_t>(std::max(threads, 1));
  // Per-block bad-record indices: block b only touches bad[b], and each
  // block's list is ascending, so concatenation in block order is the
  // ascending list of all bad records.
  std::vector<std::vector<size_t>> bad(nblocks);
  par_for_blocks(count, threads, [&](size_t b, size_t lo, size_t hi) {
    auto& mine = bad[b];
    const char* p = r.buf.data() + base + lo * stride;
    for (size_t i = lo; i < hi; ++i, p += stride) {
      if (!decode(p, out[i])) mine.push_back(i);
    }
  });
  size_t nbad = 0;
  for (const auto& b : bad) nbad += b.size();
  if (nbad == 0) return true;
  if (!salv) {
    size_t first = count;
    for (const auto& b : bad) {
      if (!b.empty()) {
        first = b.front();
        break;
      }
    }
    diags.push_back(LoadDiagnostic{LoadErrorCode::MalformedRecord,
                                   base + first * stride, false, ctx,
                                   bad_msg});
    return false;
  }
  std::vector<size_t> bad_all;
  bad_all.reserve(nbad);
  for (const auto& b : bad) {
    for (size_t i : b) {
      bad_all.push_back(i);
      diags.push_back(LoadDiagnostic{LoadErrorCode::MalformedRecord,
                                     base + i * stride, false, ctx, bad_msg});
    }
  }
  // Stable in-place compaction over the sorted bad list.
  size_t w = bad_all.front();
  size_t next = 0;
  for (size_t i = bad_all.front(); i < count; ++i) {
    if (next < bad_all.size() && bad_all[next] == i) {
      ++next;
      continue;
    }
    out[w++] = out[i];
  }
  out.resize(w);
  return true;
}

// Parses the sections after the magic. Returns false on a fatal problem
// (Strict/Lenient); in Salvage mode it always returns true and simply stops
// at the end of the longest readable prefix, leaving what was parsed in
// `trace`. Diagnostics are appended either way. The fixed-stride record
// sections decode across `threads` workers (see decode_section); the
// variable-size preamble (meta, notes, strings) stays serial.
bool parse_binary_body(ByteReader& r, bool v1, bool v2, bool salv, int threads,
                       Trace& trace, std::vector<LoadDiagnostic>& diags) {
  auto add = [&](LoadErrorCode code, u64 off, const char* ctx,
                 std::string msg) {
    diags.push_back(
        LoadDiagnostic{code, off, false, ctx, std::move(msg)});
  };
  auto truncated = [&](u64 off, const char* ctx, const char* msg) {
    add(LoadErrorCode::TruncatedStream, off, ctx, msg);
    return salv;  // salvage keeps the prefix; strict/lenient fail
  };
  // Reads a section count and sanity-checks it against the bytes that are
  // actually left; min_size == 0 skips the plausibility check.
  auto get_count = [&](u64& n, size_t min_size, const char* ctx,
                       const char* trunc_msg, bool& ok) {
    const u64 off = r.pos;
    if (!r.get_u64(n)) {
      ok = truncated(off, ctx, trunc_msg);
      return false;
    }
    if (min_size != 0 && n > r.remaining() / min_size) {
      add(LoadErrorCode::LimitExceeded, off, ctx,
          std::string("implausible ") + ctx + " count " + std::to_string(n));
      ok = salv;
      return false;
    }
    return true;
  };

  TraceMeta& m = trace.meta;
  u32 workers = 0, cores = 0;
  u64 ghz_u = 0, nnotes = 0;
  if (!(r.get_str(m.program) && r.get_str(m.runtime) &&
        r.get_str(m.topology) && r.get_u32(workers) && r.get_u32(cores) &&
        r.get_u64(ghz_u) && r.get_u64(m.region_start) &&
        r.get_u64(m.region_end))) {
    return truncated(r.pos, "meta", "truncated meta");
  }
  m.num_workers = static_cast<int>(workers);
  m.num_cores = static_cast<int>(cores);
  m.ghz = static_cast<double>(ghz_u) / 1e6;
  {
    bool ok = true;
    if (!get_count(nnotes, 8, "notes", "truncated notes", ok)) return ok;
    for (u64 i = 0; i < nnotes; ++i) {
      std::string n;
      if (!r.get_str(n)) return truncated(r.pos, "notes", "truncated notes");
      m.notes.push_back(std::move(n));
    }
  }
  {
    u64 nstrs = 0;
    const u64 off = r.pos;
    if (!r.get_u64(nstrs))
      return truncated(off, "strings", "truncated string table");
    if (nstrs > 0 && nstrs - 1 > r.remaining() / 8) {
      add(LoadErrorCode::LimitExceeded, off, "strings",
          "implausible string count " + std::to_string(nstrs));
      return salv;
    }
    bool warned = false;
    for (u64 i = 1; i < nstrs; ++i) {
      std::string str;
      const u64 soff = r.pos;
      if (!r.get_str(str))
        return truncated(soff, "strings", "truncated string table");
      StrId got = trace.strings.intern(str);
      if (got != i) {
        if (!salv) {
          add(LoadErrorCode::StringTableCorrupt, soff, "strings",
              "string ids not dense");
          return false;
        }
        if (!warned) {
          add(LoadErrorCode::StringTableCorrupt, soff, "strings",
              "duplicate string contents; de-duplicated with placeholders");
          warned = true;
        }
        while (got != i) {
          str += "#";
          got = trace.strings.intern(str);
        }
      }
    }
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinTaskBytes, "tasks", "truncated tasks", ok))
      return ok;
    if (!decode_section(r, n, kMinTaskBytes, threads, salv, "tasks",
                        "malformed task record", trace.tasks, diags,
                        decode_task))
      return false;
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinFragBytes, "fragments", "truncated fragments", ok))
      return ok;
    if (!decode_section(r, n, kMinFragBytes, threads, salv, "fragments",
                        "bad fragment end reason", trace.fragments, diags,
                        decode_frag))
      return false;
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinJoinBytes, "joins", "truncated joins", ok))
      return ok;
    if (!decode_section(r, n, kMinJoinBytes, threads, salv, "joins",
                        "malformed join record", trace.joins, diags,
                        decode_join))
      return false;
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinLoopBytes, "loops", "truncated loops", ok))
      return ok;
    if (!decode_section(r, n, kMinLoopBytes, threads, salv, "loops",
                        "bad loop schedule", trace.loops, diags, decode_loop))
      return false;
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinChunkBytes, "chunks", "truncated chunks", ok))
      return ok;
    if (!decode_section(r, n, kMinChunkBytes, threads, salv, "chunks",
                        "malformed chunk record", trace.chunks, diags,
                        decode_chunk))
      return false;
  }
  {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinBookBytes, "bookkeeps", "truncated bookkeeps", ok))
      return ok;
    if (!decode_section(r, n, kMinBookBytes, threads, salv, "bookkeeps",
                        "malformed bookkeep record", trace.bookkeeps, diags,
                        decode_book))
      return false;
  }
  if (!v1) {
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinDependBytes, "depends", "truncated depends", ok))
      return ok;
    if (!decode_section(r, n, kMinDependBytes, threads, salv, "depends",
                        "malformed depend record", trace.depends, diags,
                        decode_depend))
      return false;
  }
  if (!v1 && !v2) {
    u32 profiled = 1;
    if (!(r.get_u32(profiled) && r.get_u64(m.trace_buffer_bytes) &&
          r.get_str(m.clock_source)))
      return truncated(r.pos, "trailer", "truncated profiling meta");
    m.profiled = profiled != 0;
    u64 n = 0;
    bool ok = true;
    if (!get_count(n, kMinWstatBytes, "worker stats", "truncated worker stats",
                   ok))
      return ok;
    if (!decode_section(r, n, kMinWstatBytes, threads, salv, "worker stats",
                        "malformed worker stats record", trace.worker_stats,
                        diags, decode_wstat))
      return false;
  }
  return true;
}

}  // namespace

LoadResult parse_trace_binary(std::string_view buf, const LoadOptions& opts) {
  LoadResult res;
  res.source = "<stream>";
  const bool salv = opts.mode == LoadMode::Salvage;
  if (buf.size() < 5) {
    res.diagnostics.push_back(LoadDiagnostic{LoadErrorCode::BadMagic, 0, false,
                                             "magic", "bad binary magic"});
    return res;
  }
  const std::string_view m5 = buf.substr(0, 5);
  const bool v1 = m5 == kBinMagicV1;
  const bool v2 = m5 == kBinMagicV2;
  if (!v1 && !v2 && m5 != kBinMagic) {
    res.diagnostics.push_back(LoadDiagnostic{LoadErrorCode::BadMagic, 0, false,
                                             "magic", "bad binary magic"});
    return res;
  }
  ByteReader r{buf, 5};
  Trace trace;
  const int threads = resolve_threads(opts.threads);
  if (!parse_binary_body(r, v1, v2, salv, threads, trace, res.diagnostics)) {
    return res;  // fatal in Strict/Lenient; diagnostics already recorded
  }
  detail::finish_load(std::move(trace), opts, res);
  return res;
}

bool read_file_contents(const std::string& path, std::string& out) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  out.clear();
  struct stat st;
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    out.reserve(static_cast<size_t>(st.st_size));
  }
  // EINTR-safe read loop — unlike the old fread-once version this survives
  // signal interruption and short reads, and works on non-seekable sources
  // (pipes), reading to true EOF.
  const bool ok = read_fd_contents(fd, out);
  ::close(fd);
  if (!ok) out.clear();
  return ok;
}

std::string slurp_stream(std::istream& is) {
  std::string buf;
  char block[1 << 16];
  for (;;) {
    is.read(block, sizeof block);
    const std::streamsize got = is.gcount();
    if (got > 0) buf.append(block, static_cast<size_t>(got));
    if (got < static_cast<std::streamsize>(sizeof block)) break;
  }
  return buf;
}

}  // namespace gg
