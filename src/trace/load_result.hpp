// Structured load outcomes for trace ingestion.
//
// The legacy loaders answer "did it load?" with optional<Trace> and a single
// error string; corrupted inputs from crashed runs or lossy recorders all
// collapse into the same opaque failure. LoadResult keeps the machine-usable
// facts: what failed (an error code), where (line number for text traces,
// byte offset for binary ones), in which section/record, whether the trace
// was recovered by salvage, and how degraded the recovered trace is.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/salvage.hpp"
#include "trace/trace.hpp"
#include "trace/validate.hpp"

namespace gg {

enum class LoadStatus : u8 {
  Ok,        ///< loaded cleanly, nothing repaired
  Salvaged,  ///< damaged input, usable trace recovered (degraded)
  Failed,    ///< no usable trace
};

enum class LoadErrorCode : u8 {
  None = 0,
  CannotOpen,         ///< file could not be opened
  EmptyInput,         ///< no header at all
  BadMagic,           ///< not a ggtrace/GGTB stream
  UnsupportedVersion, ///< header version outside the known range
  MalformedRecord,    ///< record failed to parse or had impossible fields
  UnknownRecordKind,  ///< unrecognized record kind (text format)
  StringTableCorrupt, ///< string ids not dense / table unusable
  TruncatedStream,    ///< input ended mid-record or mid-section
  LimitExceeded,      ///< record count larger than the stream could hold
  InvalidStructure,   ///< parsed fine but failed structural validation
};

const char* to_string(LoadStatus s);
const char* to_string(LoadErrorCode c);

/// One diagnostic anchored to a position in the input.
struct LoadDiagnostic {
  LoadErrorCode code = LoadErrorCode::None;
  u64 offset = 0;        ///< line number (text) or byte offset (binary)
  bool offset_is_line = true;
  std::string context;   ///< record kind or section, e.g. "frag", "chunks"
  std::string message;   ///< human-readable description

  /// "line 12 [frag]: malformed frag record" / "byte 4096 [chunks]: ...".
  std::string to_string() const;
};

/// How strictly a loader treats damaged input.
enum class LoadMode : u8 {
  Strict,   ///< first problem is fatal (CI / regression gating)
  Lenient,  ///< skip unknown record kinds (forward compat), else strict
  Salvage,  ///< recover the longest valid prefix; repair the rest
};

/// Which text-parsing implementation a loader uses. Both accept the same
/// format, produce the same trace and the same diagnostics; Legacy is the
/// original line-by-line istream parser, kept compilable so the fast path's
/// speedup stays measurable (bench/perf_pipeline.cpp) and differentially
/// testable (tests/fastpath_test.cpp).
enum class ParseEngine : u8 {
  Fast,    ///< block-read + std::from_chars over string views (the default)
  Legacy,  ///< getline + per-line istringstream (the seed implementation)
};

/// How file-path loads get their bytes. Both produce identical traces and
/// identical diagnostics (byte offsets are into the file either way); Stream
/// is the read()-based fallback, also used automatically for non-regular
/// files (pipes, sockets) where mmap cannot apply.
enum class IoSource : u8 {
  Mmap,    ///< zero-copy mmap of regular files (the default)
  Stream,  ///< EINTR-safe read() loop into a heap buffer
};

struct LoadOptions {
  LoadMode mode = LoadMode::Lenient;
  bool validate = true;  ///< run validate_trace after load (and after salvage)
  ParseEngine engine = ParseEngine::Fast;
  IoSource io = IoSource::Mmap;  ///< file-path loads only; streams unaffected
  /// Worker threads for binary section decode and trace finalize sorting.
  /// 0 = auto (GG_THREADS env, else hardware concurrency, clamped to 8);
  /// 1 = serial. Outputs are identical for every value.
  int threads = 1;
};

/// Outcome of one load. `trace` is present when any records were recovered,
/// even on Failed (for postmortem inspection); only `usable()` results
/// should flow into analysis.
struct LoadResult {
  LoadStatus status = LoadStatus::Failed;
  std::optional<Trace> trace;
  std::vector<LoadDiagnostic> diagnostics;
  SalvageReport salvage;       ///< what salvage did (empty unless Salvage mode)
  std::string source;          ///< path or "<stream>", for messages

  bool ok() const { return status == LoadStatus::Ok; }
  /// A trace safe to analyze (clean or salvaged-and-revalidated).
  bool usable() const { return trace.has_value() && status != LoadStatus::Failed; }
  /// First fatal-severity diagnostic, or nullptr when none.
  const LoadDiagnostic* first_error() const;
  /// Multi-line report: status, per-diagnostic lines, salvage summary.
  std::string describe() const;
};

}  // namespace gg
