// Internals shared between the legacy stream loader (serialize.cpp) and the
// buffered fast parser (fast_parse.cpp). Both engines must produce identical
// traces and identical diagnostics, so the pieces with observable behavior —
// escaping, the load tail (salvage/validate/status), and the string-table
// density check + salvage rebuild — live here exactly once.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/load_result.hpp"
#include "trace/trace.hpp"

namespace gg::detail {

/// Current text/binary trace format version (v2 added dependence records;
/// v3 adds worker-stats records and profiling metadata).
inline constexpr int kTraceVersion = 3;

/// Percent-escapes a string so it stays one whitespace-free token; "" is
/// written as the sentinel "%".
std::string escape(std::string_view s);

/// Inverse of escape(); nullopt on a malformed escape sequence.
std::optional<std::string> unescape(std::string_view s);

/// Finalizes, optionally salvages, optionally validates, and fills in the
/// result status. Shared tail of every _ex loader.
void finish_load(Trace&& trace, const LoadOptions& opts, LoadResult& res);

/// Rebuilds the trace's string table from collected (id, contents) pairs,
/// enforcing dense ids. In Strict/Lenient a non-dense table is fatal
/// (diagnostic appended, returns false); in Salvage the table is rebuilt with
/// placeholders. Sorts `strs` in place.
bool apply_string_table(std::vector<std::pair<StrId, std::string>>& strs,
                        bool salv, Trace& trace, LoadResult& res);

}  // namespace gg::detail
