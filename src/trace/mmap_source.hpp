// Zero-copy file ingestion for the GGTB binary, ggtrace text and GGSPOOL1
// formats.
//
// MmapSource maps a regular file read-only and hands the parser a
// string_view over the mapping — no heap copy of a multi-GB trace, and the
// kernel prefetches sequentially (madvise) while the fixed-stride section
// decoders walk it. Non-regular files (pipes, /proc, sockets) cannot be
// mapped, so open() transparently falls back to the same EINTR-safe read()
// loop the Stream io engine uses; callers never need to care which path fed
// them. Byte offsets in diagnostics are file offsets either way.
//
// Edge cases handled explicitly (tests/mmap_ingest_test.cpp):
//   * zero-length files: mmap(len=0) is EINVAL, so an empty view is returned
//     without mapping — loaders then report EmptyInput exactly as the stream
//     path does;
//   * files whose size is an exact page multiple (no zero-fill tail): the
//     view length comes from fstat, never from page rounding, so a trace
//     truncated at a page boundary reports the same TruncatedStream offset
//     under both io engines;
//   * files that shrink between fstat and the parse would normally SIGBUS on
//     the vanished tail; loads are point-in-time reads of sealed files, so
//     this is out of contract (the live-tailing path in src/serve/ uses
//     pread for exactly this reason).
#pragma once

#include <string>
#include <string_view>

namespace gg {

class MmapSource {
 public:
  MmapSource() = default;
  ~MmapSource() { reset(); }
  MmapSource(MmapSource&& other) noexcept { swap(other); }
  MmapSource& operator=(MmapSource&& other) noexcept {
    reset();
    swap(other);
    return *this;
  }
  MmapSource(const MmapSource&) = delete;
  MmapSource& operator=(const MmapSource&) = delete;

  /// Maps (or, for non-regular files, reads) `path`. Returns false when the
  /// file cannot be opened or read; the source is then empty. A zero-length
  /// regular file opens successfully with an empty view.
  bool open(const std::string& path);

  /// The file's bytes. Valid until reset()/destruction/reassignment.
  std::string_view view() const { return view_; }

  /// True when view() is backed by an actual mapping (vs the read fallback).
  bool mapped() const { return map_base_ != nullptr; }

  void reset();

 private:
  void swap(MmapSource& other) noexcept;

  std::string_view view_;
  void* map_base_ = nullptr;  ///< non-null only when mmap succeeded
  size_t map_len_ = 0;
  std::string fallback_;  ///< owns the bytes on the read() path
};

/// EINTR-safe whole-file read through an already-open descriptor; appends to
/// `out`. Handles short reads and non-seekable sources (pipes). Returns false
/// on a read error (out may hold a partial prefix).
bool read_fd_contents(int fd, std::string& out);

}  // namespace gg
