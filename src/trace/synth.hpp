// Seeded synthetic trace generation for benchmarks and differential tests.
//
// Produces structurally valid traces (validate_trace_structured-clean) of a
// requested grain count: a root task forking batches of children (some of
// which fork sub-batches), interleaved with worksharing loops whose chunks
// exactly partition the iteration range and carry per-thread bookkeeping.
// Fully deterministic for a given options struct — the bench harness and the
// fast/legacy parser equivalence tests rely on byte-identical re-generation.
#pragma once

#include "trace/trace.hpp"

namespace gg {

struct SynthOptions {
  u64 seed = 1;
  u64 grains = 1000;        ///< target grain count (non-root tasks + chunks);
                            ///< generation stops at the first section boundary
                            ///< at or past this
  int workers = 8;          ///< team size (threads, cores, loop teams)
  u32 fanout = 8;           ///< max children per fork batch under the root
  double loop_fraction = 0.25;  ///< probability a section is a loop
  double nest_prob = 0.25;      ///< probability a child forks a sub-batch
  u32 sources = 32;         ///< distinct synthetic source locations
};

/// Generates one finalized trace. Identical options yield identical traces.
Trace synth_trace(const SynthOptions& opts = {});

}  // namespace gg
