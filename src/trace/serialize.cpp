#include "trace/serialize.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace gg {

namespace {

constexpr int kVersion = 3;  // v2 added dependence records; v3 adds
                             // worker-stats records and profiling metadata

// Strings may contain spaces; they are written percent-escaped so that every
// record stays a single whitespace-separated line.
std::string escape(std::string_view s) {
  if (s.empty()) return "%";  // sentinel: a lone '%' is otherwise invalid
  std::string out;
  out.reserve(s.size());
  static const char* hex = "0123456789ABCDEF";
  for (char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\t') {
      out += '%';
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += hex[static_cast<unsigned char>(c) & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::optional<std::string> unescape(std::string_view s) {
  if (s == "%") return std::string();
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) return std::nullopt;
      auto nib = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = nib(s[i + 1]), lo = nib(s[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

void write_counters(std::ostream& os, const Counters& c) {
  os << ' ' << c.compute << ' ' << c.stall << ' ' << c.cache_misses << ' '
     << c.bytes_accessed;
}

bool read_counters(std::istringstream& is, Counters& c) {
  return static_cast<bool>(is >> c.compute >> c.stall >> c.cache_misses >>
                           c.bytes_accessed);
}

}  // namespace

void save_trace(const Trace& trace, std::ostream& os) {
  os << "ggtrace " << kVersion << '\n';
  const TraceMeta& m = trace.meta;
  os << "meta " << escape(m.program) << ' ' << escape(m.runtime) << ' '
     << escape(m.topology) << ' ' << m.num_workers << ' ' << m.num_cores
     << ' ' << m.ghz << ' ' << m.region_start << ' ' << m.region_end << '\n';
  // v3 profiling-substrate metadata (a separate record so v1/v2 `meta` lines
  // keep their field layout).
  os << "metax " << (m.profiled ? 1 : 0) << ' ' << m.trace_buffer_bytes << ' '
     << escape(m.clock_source) << '\n';
  for (const std::string& n : m.notes) os << "note " << escape(n) << '\n';
  // String table (skip the implicit empty string at id 0).
  const auto& strs = trace.strings.all();
  for (size_t i = 1; i < strs.size(); ++i)
    os << "str " << i << ' ' << escape(strs[i]) << '\n';
  for (const TaskRec& t : trace.tasks) {
    os << "task " << t.uid << ' '
       << (t.parent == kNoTask ? std::string("-")
                               : std::to_string(t.parent))
       << ' ' << t.child_index << ' ' << t.src << ' ' << t.create_time << ' '
       << t.create_core << ' ' << t.creation_cost << ' ' << (t.inlined ? 1 : 0)
       << '\n';
  }
  for (const FragmentRec& f : trace.fragments) {
    os << "frag " << f.task << ' ' << f.seq << ' ' << f.start << ' ' << f.end
       << ' ' << f.core << ' ' << static_cast<int>(f.end_reason) << ' '
       << f.end_ref;
    write_counters(os, f.counters);
    os << '\n';
  }
  for (const JoinRec& j : trace.joins) {
    os << "join " << j.task << ' ' << j.seq << ' ' << j.start << ' ' << j.end
       << ' ' << j.core << '\n';
  }
  for (const LoopRec& l : trace.loops) {
    os << "loop " << l.uid << ' ' << l.enclosing_task << ' ' << l.src << ' '
       << static_cast<int>(l.sched) << ' ' << l.chunk_param << ' '
       << l.iter_begin << ' ' << l.iter_end << ' ' << l.num_threads << ' '
       << l.starting_thread << ' ' << l.seq << ' ' << l.start << ' ' << l.end
       << '\n';
  }
  for (const ChunkRec& c : trace.chunks) {
    os << "chunk " << c.loop << ' ' << c.thread << ' ' << c.core << ' '
       << c.seq_on_thread << ' ' << c.iter_begin << ' ' << c.iter_end << ' '
       << c.start << ' ' << c.end;
    write_counters(os, c.counters);
    os << '\n';
  }
  for (const BookkeepRec& b : trace.bookkeeps) {
    os << "book " << b.loop << ' ' << b.thread << ' ' << b.core << ' '
       << b.seq_on_thread << ' ' << b.start << ' ' << b.end << ' '
       << (b.got_chunk ? 1 : 0) << '\n';
  }
  for (const DependRec& d : trace.depends) {
    os << "dep " << d.pred << ' ' << d.succ << '\n';
  }
  for (const WorkerStatsRec& s : trace.worker_stats) {
    os << "wstat " << s.worker << ' ' << s.tasks_spawned << ' '
       << s.tasks_executed << ' ' << s.tasks_inlined << ' ' << s.steals << ' '
       << s.steal_failures << ' ' << s.cas_failures << ' ' << s.deque_pushes
       << ' ' << s.deque_pops << ' ' << s.deque_resizes << ' '
       << s.taskwait_helps << ' ' << s.idle_ns << ' ' << s.trace_bytes
       << '\n';
  }
}

std::optional<Trace> load_trace(std::istream& is, std::string* error) {
  auto fail = [&](const std::string& msg) -> std::optional<Trace> {
    if (error) *error = msg;
    return std::nullopt;
  };
  std::string line;
  if (!std::getline(is, line)) return fail("empty input");
  {
    std::istringstream head(line);
    std::string magic;
    int version = 0;
    if (!(head >> magic >> version) || magic != "ggtrace")
      return fail("bad header: " + line);
    if (version < 1 || version > kVersion)
      return fail("unsupported version " + std::to_string(version));
  }

  Trace trace;
  // The string table must be rebuilt with identical ids; collect then intern
  // in id order.
  std::vector<std::pair<StrId, std::string>> strs;
  int lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    auto bad = [&]() {
      return fail("malformed " + kind + " record at line " +
                  std::to_string(lineno));
    };
    if (kind == "meta") {
      std::string program, runtime, topology;
      TraceMeta& m = trace.meta;
      if (!(ls >> program >> runtime >> topology >> m.num_workers >>
            m.num_cores >> m.ghz >> m.region_start >> m.region_end))
        return bad();
      auto p = unescape(program), r = unescape(runtime), t = unescape(topology);
      if (!p || !r || !t) return bad();
      m.program = *p;
      m.runtime = *r;
      m.topology = *t;
    } else if (kind == "metax") {
      TraceMeta& m = trace.meta;
      int profiled = 1;
      std::string clock;
      if (!(ls >> profiled >> m.trace_buffer_bytes >> clock)) return bad();
      auto c = unescape(clock);
      if (!c) return bad();
      m.profiled = profiled != 0;
      m.clock_source = *c;
    } else if (kind == "note") {
      std::string n;
      if (!(ls >> n)) return bad();
      auto u = unescape(n);
      if (!u) return bad();
      trace.meta.notes.push_back(*u);
    } else if (kind == "str") {
      StrId id;
      std::string s;
      if (!(ls >> id >> s)) return bad();
      auto u = unescape(s);
      if (!u) return bad();
      strs.emplace_back(id, *u);
    } else if (kind == "task") {
      TaskRec t;
      std::string parent;
      int inlined = 0;
      if (!(ls >> t.uid >> parent >> t.child_index >> t.src >> t.create_time >>
            t.create_core >> t.creation_cost >> inlined))
        return bad();
      t.parent = parent == "-" ? kNoTask : std::stoull(parent);
      t.inlined = inlined != 0;
      trace.tasks.push_back(t);
    } else if (kind == "frag") {
      FragmentRec f;
      int reason = 0;
      if (!(ls >> f.task >> f.seq >> f.start >> f.end >> f.core >> reason >>
            f.end_ref) ||
          !read_counters(ls, f.counters))
        return bad();
      if (reason < 0 || reason > 3) return bad();
      f.end_reason = static_cast<FragmentEnd>(reason);
      trace.fragments.push_back(f);
    } else if (kind == "join") {
      JoinRec j;
      if (!(ls >> j.task >> j.seq >> j.start >> j.end >> j.core)) return bad();
      trace.joins.push_back(j);
    } else if (kind == "loop") {
      LoopRec l;
      int sched = 0;
      if (!(ls >> l.uid >> l.enclosing_task >> l.src >> sched >>
            l.chunk_param >> l.iter_begin >> l.iter_end >> l.num_threads >>
            l.starting_thread >> l.seq >> l.start >> l.end))
        return bad();
      if (sched < 0 || sched > 2) return bad();
      l.sched = static_cast<ScheduleKind>(sched);
      trace.loops.push_back(l);
    } else if (kind == "chunk") {
      ChunkRec c;
      if (!(ls >> c.loop >> c.thread >> c.core >> c.seq_on_thread >>
            c.iter_begin >> c.iter_end >> c.start >> c.end) ||
          !read_counters(ls, c.counters))
        return bad();
      trace.chunks.push_back(c);
    } else if (kind == "dep") {
      DependRec d;
      if (!(ls >> d.pred >> d.succ)) return bad();
      trace.depends.push_back(d);
    } else if (kind == "wstat") {
      WorkerStatsRec s;
      if (!(ls >> s.worker >> s.tasks_spawned >> s.tasks_executed >>
            s.tasks_inlined >> s.steals >> s.steal_failures >>
            s.cas_failures >> s.deque_pushes >> s.deque_pops >>
            s.deque_resizes >> s.taskwait_helps >> s.idle_ns >>
            s.trace_bytes))
        return bad();
      trace.worker_stats.push_back(s);
    } else if (kind == "book") {
      BookkeepRec b;
      int got = 0;
      if (!(ls >> b.loop >> b.thread >> b.core >> b.seq_on_thread >> b.start >>
            b.end >> got))
        return bad();
      b.got_chunk = got != 0;
      trace.bookkeeps.push_back(b);
    } else {
      return fail("unknown record kind '" + kind + "' at line " +
                  std::to_string(lineno));
    }
  }

  std::sort(strs.begin(), strs.end());
  for (const auto& [id, s] : strs) {
    const StrId got = trace.strings.intern(s);
    if (got != id)
      return fail("string table ids not dense (expected " +
                  std::to_string(id) + ", got " + std::to_string(got) + ")");
  }
  trace.finalize();
  return trace;
}

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- binary helpers (little-endian native; checked by magic) ---------------

void put_u64(std::ostream& os, u64 v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u32(std::ostream& os, u32 v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_str(std::ostream& os, const std::string& s) {
  put_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
bool get_u64(std::istream& is, u64& v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(&v), sizeof v));
}
bool get_u32(std::istream& is, u32& v) {
  return static_cast<bool>(is.read(reinterpret_cast<char*>(&v), sizeof v));
}
bool get_str(std::istream& is, std::string& s) {
  u64 n = 0;
  if (!get_u64(is, n) || n > (1ull << 32)) return false;
  s.resize(n);
  return static_cast<bool>(is.read(s.data(), static_cast<std::streamsize>(n)));
}
void put_counters(std::ostream& os, const Counters& c) {
  put_u64(os, c.compute);
  put_u64(os, c.stall);
  put_u64(os, c.cache_misses);
  put_u64(os, c.bytes_accessed);
}
bool get_counters(std::istream& is, Counters& c) {
  return get_u64(is, c.compute) && get_u64(is, c.stall) &&
         get_u64(is, c.cache_misses) && get_u64(is, c.bytes_accessed);
}

constexpr char kBinMagic[] = "GGTB3";  // v3 adds worker stats + profiling meta
constexpr char kBinMagicV2[] = "GGTB2";  // v2 added a dependence section
constexpr char kBinMagicV1[] = "GGTB1";

}  // namespace

void save_trace_binary(const Trace& trace, std::ostream& os) {
  os.write(kBinMagic, 5);
  const TraceMeta& m = trace.meta;
  put_str(os, m.program);
  put_str(os, m.runtime);
  put_str(os, m.topology);
  put_u32(os, static_cast<u32>(m.num_workers));
  put_u32(os, static_cast<u32>(m.num_cores));
  put_u64(os, static_cast<u64>(m.ghz * 1e6));  // micro-GHz fixed point
  put_u64(os, m.region_start);
  put_u64(os, m.region_end);
  put_u64(os, m.notes.size());
  for (const std::string& n : m.notes) put_str(os, n);

  const auto& strs = trace.strings.all();
  put_u64(os, strs.size());
  for (size_t i = 1; i < strs.size(); ++i) put_str(os, strs[i]);

  put_u64(os, trace.tasks.size());
  for (const TaskRec& t : trace.tasks) {
    put_u64(os, t.uid);
    put_u64(os, t.parent);
    put_u32(os, t.child_index);
    put_u32(os, t.src);
    put_u64(os, t.create_time);
    put_u32(os, t.create_core);
    put_u64(os, t.creation_cost);
    put_u32(os, t.inlined ? 1 : 0);
  }
  put_u64(os, trace.fragments.size());
  for (const FragmentRec& f : trace.fragments) {
    put_u64(os, f.task);
    put_u32(os, f.seq);
    put_u64(os, f.start);
    put_u64(os, f.end);
    put_u32(os, f.core);
    put_u32(os, static_cast<u32>(f.end_reason));
    put_u64(os, f.end_ref);
    put_counters(os, f.counters);
  }
  put_u64(os, trace.joins.size());
  for (const JoinRec& j : trace.joins) {
    put_u64(os, j.task);
    put_u32(os, j.seq);
    put_u64(os, j.start);
    put_u64(os, j.end);
    put_u32(os, j.core);
  }
  put_u64(os, trace.loops.size());
  for (const LoopRec& l : trace.loops) {
    put_u64(os, l.uid);
    put_u64(os, l.enclosing_task);
    put_u32(os, l.src);
    put_u32(os, static_cast<u32>(l.sched));
    put_u64(os, l.chunk_param);
    put_u64(os, l.iter_begin);
    put_u64(os, l.iter_end);
    put_u32(os, l.num_threads);
    put_u32(os, l.starting_thread);
    put_u32(os, l.seq);
    put_u64(os, l.start);
    put_u64(os, l.end);
  }
  put_u64(os, trace.chunks.size());
  for (const ChunkRec& c : trace.chunks) {
    put_u64(os, c.loop);
    put_u32(os, c.thread);
    put_u32(os, c.core);
    put_u32(os, c.seq_on_thread);
    put_u64(os, c.iter_begin);
    put_u64(os, c.iter_end);
    put_u64(os, c.start);
    put_u64(os, c.end);
    put_counters(os, c.counters);
  }
  put_u64(os, trace.bookkeeps.size());
  for (const BookkeepRec& b : trace.bookkeeps) {
    put_u64(os, b.loop);
    put_u32(os, b.thread);
    put_u32(os, b.core);
    put_u32(os, b.seq_on_thread);
    put_u64(os, b.start);
    put_u64(os, b.end);
    put_u32(os, b.got_chunk ? 1 : 0);
  }
  put_u64(os, trace.depends.size());
  for (const DependRec& d : trace.depends) {
    put_u64(os, d.pred);
    put_u64(os, d.succ);
  }
  // v3 trailer: profiling-substrate metadata + per-worker scheduler stats.
  put_u32(os, m.profiled ? 1 : 0);
  put_u64(os, m.trace_buffer_bytes);
  put_str(os, m.clock_source);
  put_u64(os, trace.worker_stats.size());
  for (const WorkerStatsRec& s : trace.worker_stats) {
    put_u32(os, s.worker);
    put_u64(os, s.tasks_spawned);
    put_u64(os, s.tasks_executed);
    put_u64(os, s.tasks_inlined);
    put_u64(os, s.steals);
    put_u64(os, s.steal_failures);
    put_u64(os, s.cas_failures);
    put_u64(os, s.deque_pushes);
    put_u64(os, s.deque_pops);
    put_u64(os, s.deque_resizes);
    put_u64(os, s.taskwait_helps);
    put_u64(os, s.idle_ns);
    put_u64(os, s.trace_bytes);
  }
}

std::optional<Trace> load_trace_binary(std::istream& is, std::string* error) {
  auto fail = [&](const char* msg) -> std::optional<Trace> {
    if (error) *error = msg;
    return std::nullopt;
  };
  char magic[5];
  if (!is.read(magic, 5)) return fail("bad binary magic");
  const std::string_view m5(magic, 5);
  const bool v1 = m5 == kBinMagicV1;
  const bool v2 = m5 == kBinMagicV2;
  if (!v1 && !v2 && m5 != kBinMagic) return fail("bad binary magic");
  Trace trace;
  TraceMeta& m = trace.meta;
  u32 workers = 0, cores = 0;
  u64 ghz_u = 0, nnotes = 0;
  if (!get_str(is, m.program) || !get_str(is, m.runtime) ||
      !get_str(is, m.topology) || !get_u32(is, workers) ||
      !get_u32(is, cores) || !get_u64(is, ghz_u) ||
      !get_u64(is, m.region_start) || !get_u64(is, m.region_end) ||
      !get_u64(is, nnotes)) {
    return fail("truncated meta");
  }
  m.num_workers = static_cast<int>(workers);
  m.num_cores = static_cast<int>(cores);
  m.ghz = static_cast<double>(ghz_u) / 1e6;
  for (u64 i = 0; i < nnotes; ++i) {
    std::string n;
    if (!get_str(is, n)) return fail("truncated notes");
    m.notes.push_back(std::move(n));
  }
  u64 nstrs = 0;
  if (!get_u64(is, nstrs)) return fail("truncated string table");
  for (u64 i = 1; i < nstrs; ++i) {
    std::string str;
    if (!get_str(is, str)) return fail("truncated string table");
    if (trace.strings.intern(str) != i) return fail("string ids not dense");
  }
  u64 n = 0;
  if (!get_u64(is, n)) return fail("truncated tasks");
  trace.tasks.resize(n);
  for (TaskRec& t : trace.tasks) {
    u32 core = 0, inl = 0;
    if (!get_u64(is, t.uid) || !get_u64(is, t.parent) ||
        !get_u32(is, t.child_index) || !get_u32(is, t.src) ||
        !get_u64(is, t.create_time) || !get_u32(is, core) ||
        !get_u64(is, t.creation_cost) || !get_u32(is, inl))
      return fail("truncated task record");
    t.create_core = static_cast<u16>(core);
    t.inlined = inl != 0;
  }
  if (!get_u64(is, n)) return fail("truncated fragments");
  trace.fragments.resize(n);
  for (FragmentRec& f : trace.fragments) {
    u32 core = 0, reason = 0;
    if (!get_u64(is, f.task) || !get_u32(is, f.seq) || !get_u64(is, f.start) ||
        !get_u64(is, f.end) || !get_u32(is, core) || !get_u32(is, reason) ||
        !get_u64(is, f.end_ref) || !get_counters(is, f.counters))
      return fail("truncated fragment record");
    if (reason > 3) return fail("bad fragment end reason");
    f.core = static_cast<u16>(core);
    f.end_reason = static_cast<FragmentEnd>(reason);
  }
  if (!get_u64(is, n)) return fail("truncated joins");
  trace.joins.resize(n);
  for (JoinRec& j : trace.joins) {
    u32 core = 0;
    if (!get_u64(is, j.task) || !get_u32(is, j.seq) || !get_u64(is, j.start) ||
        !get_u64(is, j.end) || !get_u32(is, core))
      return fail("truncated join record");
    j.core = static_cast<u16>(core);
  }
  if (!get_u64(is, n)) return fail("truncated loops");
  trace.loops.resize(n);
  for (LoopRec& l : trace.loops) {
    u32 sched = 0, threads = 0, start_thread = 0;
    if (!get_u64(is, l.uid) || !get_u64(is, l.enclosing_task) ||
        !get_u32(is, l.src) || !get_u32(is, sched) ||
        !get_u64(is, l.chunk_param) || !get_u64(is, l.iter_begin) ||
        !get_u64(is, l.iter_end) || !get_u32(is, threads) ||
        !get_u32(is, start_thread) || !get_u32(is, l.seq) ||
        !get_u64(is, l.start) || !get_u64(is, l.end))
      return fail("truncated loop record");
    if (sched > 2) return fail("bad loop schedule");
    l.sched = static_cast<ScheduleKind>(sched);
    l.num_threads = static_cast<u16>(threads);
    l.starting_thread = static_cast<u16>(start_thread);
  }
  if (!get_u64(is, n)) return fail("truncated chunks");
  trace.chunks.resize(n);
  for (ChunkRec& c : trace.chunks) {
    u32 thread = 0, core = 0;
    if (!get_u64(is, c.loop) || !get_u32(is, thread) || !get_u32(is, core) ||
        !get_u32(is, c.seq_on_thread) || !get_u64(is, c.iter_begin) ||
        !get_u64(is, c.iter_end) || !get_u64(is, c.start) ||
        !get_u64(is, c.end) || !get_counters(is, c.counters))
      return fail("truncated chunk record");
    c.thread = static_cast<u16>(thread);
    c.core = static_cast<u16>(core);
  }
  if (!get_u64(is, n)) return fail("truncated bookkeeps");
  trace.bookkeeps.resize(n);
  for (BookkeepRec& b : trace.bookkeeps) {
    u32 thread = 0, core = 0, got = 0;
    if (!get_u64(is, b.loop) || !get_u32(is, thread) || !get_u32(is, core) ||
        !get_u32(is, b.seq_on_thread) || !get_u64(is, b.start) ||
        !get_u64(is, b.end) || !get_u32(is, got))
      return fail("truncated bookkeep record");
    b.thread = static_cast<u16>(thread);
    b.core = static_cast<u16>(core);
    b.got_chunk = got != 0;
  }
  if (!v1) {
    if (!get_u64(is, n)) return fail("truncated depends");
    trace.depends.resize(n);
    for (DependRec& d : trace.depends) {
      if (!get_u64(is, d.pred) || !get_u64(is, d.succ))
        return fail("truncated depend record");
    }
  }
  if (!v1 && !v2) {
    u32 profiled = 1;
    if (!get_u32(is, profiled) || !get_u64(is, m.trace_buffer_bytes) ||
        !get_str(is, m.clock_source))
      return fail("truncated profiling meta");
    m.profiled = profiled != 0;
    if (!get_u64(is, n)) return fail("truncated worker stats");
    trace.worker_stats.resize(n);
    for (WorkerStatsRec& s : trace.worker_stats) {
      u32 worker = 0;
      if (!get_u32(is, worker) || !get_u64(is, s.tasks_spawned) ||
          !get_u64(is, s.tasks_executed) || !get_u64(is, s.tasks_inlined) ||
          !get_u64(is, s.steals) || !get_u64(is, s.steal_failures) ||
          !get_u64(is, s.cas_failures) || !get_u64(is, s.deque_pushes) ||
          !get_u64(is, s.deque_pops) || !get_u64(is, s.deque_resizes) ||
          !get_u64(is, s.taskwait_helps) || !get_u64(is, s.idle_ns) ||
          !get_u64(is, s.trace_bytes))
        return fail("truncated worker stats record");
      s.worker = static_cast<u16>(worker);
    }
  }
  trace.finalize();
  return trace;
}

bool save_trace_file(const Trace& trace, const std::string& path) {
  const bool binary = has_suffix(path, ".ggbin");
  std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
  if (!os) return false;
  if (binary) {
    save_trace_binary(trace, os);
  } else {
    save_trace(trace, os);
  }
  return static_cast<bool>(os);
}

std::optional<Trace> load_trace_file(const std::string& path,
                                     std::string* error) {
  const bool binary = has_suffix(path, ".ggbin");
  std::ifstream is(path, binary ? std::ios::binary : std::ios::in);
  if (!is) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return binary ? load_trace_binary(is, error) : load_trace(is, error);
}

}  // namespace gg
