#include "trace/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "common/par_for.hpp"
#include "trace/fast_parse.hpp"
#include "trace/mmap_source.hpp"
#include "trace/salvage.hpp"
#include "trace/serialize_detail.hpp"
#include "trace/validate.hpp"

namespace gg {

namespace detail {

// Strings may contain spaces; they are written percent-escaped so that every
// record stays a single whitespace-separated line.
std::string escape(std::string_view s) {
  if (s.empty()) return "%";  // sentinel: a lone '%' is otherwise invalid
  std::string out;
  out.reserve(s.size());
  static const char* hex = "0123456789ABCDEF";
  for (char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\t') {
      out += '%';
      out += hex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += hex[static_cast<unsigned char>(c) & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::optional<std::string> unescape(std::string_view s) {
  if (s == "%") return std::string();
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%') {
      if (i + 2 >= s.size()) return std::nullopt;
      auto nib = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = nib(s[i + 1]), lo = nib(s[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out += static_cast<char>(hi * 16 + lo);
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

void finish_load(Trace&& trace, const LoadOptions& opts, LoadResult& res) {
  trace.finalize(resolve_threads(opts.threads));
  if (opts.mode == LoadMode::Salvage) {
    res.salvage = salvage_trace(trace);
    if (opts.validate) {
      const ValidationReport v = validate_trace_structured(trace);
      if (!v.ok()) {
        size_t listed = 0;
        for (const Violation& viol : v.violations) {
          if (listed++ >= 16) break;
          res.diagnostics.push_back(LoadDiagnostic{
              LoadErrorCode::InvalidStructure, 0, true, viol.where(),
              "unsalvageable: " + viol.message});
        }
        res.status = LoadStatus::Failed;
        res.trace = std::move(trace);  // kept for postmortem inspection
        return;
      }
    }
    res.status = (res.salvage.any() || !res.diagnostics.empty())
                     ? LoadStatus::Salvaged
                     : LoadStatus::Ok;
    res.trace = std::move(trace);
    return;
  }
  if (opts.validate) {
    const ValidationReport v = validate_trace_structured(trace);
    if (!v.ok()) {
      size_t listed = 0;
      for (const Violation& viol : v.violations) {
        if (listed++ >= 16) break;
        res.diagnostics.push_back(LoadDiagnostic{
            LoadErrorCode::InvalidStructure, 0, true, viol.where(),
            viol.message});
      }
      res.status = LoadStatus::Failed;
      res.trace = std::move(trace);
      return;
    }
  }
  res.status = LoadStatus::Ok;
  res.trace = std::move(trace);
}

bool apply_string_table(std::vector<std::pair<StrId, std::string>>& strs,
                        bool salv, Trace& trace, LoadResult& res) {
  auto add = [&](LoadErrorCode code, std::string msg) {
    res.diagnostics.push_back(
        LoadDiagnostic{code, 0, true, "str", std::move(msg)});
  };
  std::sort(strs.begin(), strs.end());
  bool table_ok = true;
  for (const auto& [id, s] : strs) {
    const StrId got = trace.strings.intern(s);
    if (got != id) {
      if (!salv) {
        add(LoadErrorCode::StringTableCorrupt,
            "string table ids not dense (expected " + std::to_string(id) +
                ", got " + std::to_string(got) + ")");
        return false;
      }
      table_ok = false;
      break;
    }
  }
  if (!table_ok) {
    // Salvage: rebuild a dense table, padding holes and de-duplicating
    // colliding contents with unique placeholders so every recorded id keeps
    // its original string where possible. Dangling src ids degrade to ""
    // (StringTable::get is total), so references never become unsafe.
    trace.strings = StringTable{};
    add(LoadErrorCode::StringTableCorrupt,
        "string table ids not dense; rebuilt with placeholders");
    std::map<StrId, std::string> by_id;
    u64 max_id = 0;
    for (const auto& [id, s] : strs) {
      by_id.emplace(id, s);
      max_id = std::max<u64>(max_id, id);
    }
    if (max_id > strs.size() + 1024) {
      // Garbage ids: keep the contents, abandon the numbering.
      for (const auto& [id, s] : by_id) trace.strings.intern(s);
    } else {
      for (u64 i = 1; i <= max_id; ++i) {
        auto it = by_id.find(static_cast<StrId>(i));
        std::string candidate = it != by_id.end()
                                    ? it->second
                                    : "<missing-str-" + std::to_string(i) + ">";
        StrId got = trace.strings.intern(candidate);
        while (got != i) {  // content collides with an earlier id
          candidate += "#";
          got = trace.strings.intern(candidate);
        }
      }
    }
  }
  return true;
}

}  // namespace detail

namespace {

using detail::escape;
using detail::unescape;

void write_counters(std::ostream& os, const Counters& c) {
  os << ' ' << c.compute << ' ' << c.stall << ' ' << c.cache_misses << ' '
     << c.bytes_accessed;
}

bool read_counters(std::istringstream& is, Counters& c) {
  return static_cast<bool>(is >> c.compute >> c.stall >> c.cache_misses >>
                           c.bytes_accessed);
}

}  // namespace

void save_trace(const Trace& trace, std::ostream& os) {
  os << "ggtrace " << detail::kTraceVersion << '\n';
  const TraceMeta& m = trace.meta;
  os << "meta " << escape(m.program) << ' ' << escape(m.runtime) << ' '
     << escape(m.topology) << ' ' << m.num_workers << ' ' << m.num_cores
     << ' ' << m.ghz << ' ' << m.region_start << ' ' << m.region_end << '\n';
  // v3 profiling-substrate metadata (a separate record so v1/v2 `meta` lines
  // keep their field layout).
  os << "metax " << (m.profiled ? 1 : 0) << ' ' << m.trace_buffer_bytes << ' '
     << escape(m.clock_source) << '\n';
  for (const std::string& n : m.notes) os << "note " << escape(n) << '\n';
  // String table (skip the implicit empty string at id 0).
  const auto& strs = trace.strings.all();
  for (size_t i = 1; i < strs.size(); ++i)
    os << "str " << i << ' ' << escape(strs[i]) << '\n';
  for (const TaskRec& t : trace.tasks) {
    os << "task " << t.uid << ' '
       << (t.parent == kNoTask ? std::string("-")
                               : std::to_string(t.parent))
       << ' ' << t.child_index << ' ' << t.src << ' ' << t.create_time << ' '
       << t.create_core << ' ' << t.creation_cost << ' ' << (t.inlined ? 1 : 0)
       << '\n';
  }
  for (const FragmentRec& f : trace.fragments) {
    os << "frag " << f.task << ' ' << f.seq << ' ' << f.start << ' ' << f.end
       << ' ' << f.core << ' ' << static_cast<int>(f.end_reason) << ' '
       << f.end_ref;
    write_counters(os, f.counters);
    os << '\n';
  }
  for (const JoinRec& j : trace.joins) {
    os << "join " << j.task << ' ' << j.seq << ' ' << j.start << ' ' << j.end
       << ' ' << j.core << '\n';
  }
  for (const LoopRec& l : trace.loops) {
    os << "loop " << l.uid << ' ' << l.enclosing_task << ' ' << l.src << ' '
       << static_cast<int>(l.sched) << ' ' << l.chunk_param << ' '
       << l.iter_begin << ' ' << l.iter_end << ' ' << l.num_threads << ' '
       << l.starting_thread << ' ' << l.seq << ' ' << l.start << ' ' << l.end
       << '\n';
  }
  for (const ChunkRec& c : trace.chunks) {
    os << "chunk " << c.loop << ' ' << c.thread << ' ' << c.core << ' '
       << c.seq_on_thread << ' ' << c.iter_begin << ' ' << c.iter_end << ' '
       << c.start << ' ' << c.end;
    write_counters(os, c.counters);
    os << '\n';
  }
  for (const BookkeepRec& b : trace.bookkeeps) {
    os << "book " << b.loop << ' ' << b.thread << ' ' << b.core << ' '
       << b.seq_on_thread << ' ' << b.start << ' ' << b.end << ' '
       << (b.got_chunk ? 1 : 0) << '\n';
  }
  for (const DependRec& d : trace.depends) {
    os << "dep " << d.pred << ' ' << d.succ << '\n';
  }
  for (const WorkerStatsRec& s : trace.worker_stats) {
    os << "wstat " << s.worker << ' ' << s.tasks_spawned << ' '
       << s.tasks_executed << ' ' << s.tasks_inlined << ' ' << s.steals << ' '
       << s.steal_failures << ' ' << s.cas_failures << ' ' << s.deque_pushes
       << ' ' << s.deque_pops << ' ' << s.deque_resizes << ' '
       << s.taskwait_helps << ' ' << s.idle_ns << ' ' << s.trace_bytes
       << '\n';
  }
}

namespace {

// The seed line-by-line stream parser, kept intact behind
// ParseEngine::Legacy so the fast path's speedup is measured against it and
// its behavior is differentially tested (tests/fastpath_test.cpp).
LoadResult load_trace_text_legacy(std::istream& is, const LoadOptions& opts) {
  LoadResult res;
  res.source = "<stream>";
  const bool salv = opts.mode == LoadMode::Salvage;
  auto add = [&](LoadErrorCode code, u64 line, std::string context,
                 std::string msg) {
    res.diagnostics.push_back(LoadDiagnostic{code, line, true,
                                             std::move(context),
                                             std::move(msg)});
  };

  std::string line;
  if (!std::getline(is, line)) {
    add(LoadErrorCode::EmptyInput, 0, "header", "empty input");
    return res;  // status defaults to Failed
  }
  {
    std::istringstream head(line);
    std::string magic;
    int version = 0;
    if (!(head >> magic >> version) || magic != "ggtrace") {
      add(LoadErrorCode::BadMagic, 1, "header", "bad header: " + line);
      return res;
    }
    if (version < 1 || version > detail::kTraceVersion) {
      add(LoadErrorCode::UnsupportedVersion, 1, "header",
          "unsupported version " + std::to_string(version));
      if (!salv) return res;
      // Salvage: read it as the newest format we know and let the record
      // parser flag whatever does not fit.
    }
  }

  Trace trace;
  // The string table must be rebuilt with identical ids; collect then intern
  // in id order.
  std::vector<std::pair<StrId, std::string>> strs;
  int lineno = 1;
  bool aborted = false;
  while (!aborted && std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    // In Strict/Lenient a malformed record is fatal; in Salvage it is
    // skipped with a diagnostic and parsing continues.
    auto bad = [&]() {
      add(LoadErrorCode::MalformedRecord, static_cast<u64>(lineno), kind,
          "malformed " + kind + " record at line " + std::to_string(lineno));
      if (!salv) aborted = true;
    };
    if (kind == "meta") {
      std::string program, runtime, topology;
      TraceMeta m;
      if (!(ls >> program >> runtime >> topology >> m.num_workers >>
            m.num_cores >> m.ghz >> m.region_start >> m.region_end)) {
        bad();
        continue;
      }
      auto p = unescape(program), r = unescape(runtime), t = unescape(topology);
      if (!p || !r || !t) {
        bad();
        continue;
      }
      m.profiled = trace.meta.profiled;
      m.trace_buffer_bytes = trace.meta.trace_buffer_bytes;
      m.clock_source = trace.meta.clock_source;
      m.notes = std::move(trace.meta.notes);
      m.program = *p;
      m.runtime = *r;
      m.topology = *t;
      trace.meta = std::move(m);
    } else if (kind == "metax") {
      int profiled = 1;
      u64 buffer_bytes = 0;
      std::string clock;
      if (!(ls >> profiled >> buffer_bytes >> clock)) {
        bad();
        continue;
      }
      auto c = unescape(clock);
      if (!c) {
        bad();
        continue;
      }
      trace.meta.profiled = profiled != 0;
      trace.meta.trace_buffer_bytes = buffer_bytes;
      trace.meta.clock_source = *c;
    } else if (kind == "note") {
      std::string n;
      if (!(ls >> n)) {
        bad();
        continue;
      }
      auto u = unescape(n);
      if (!u) {
        bad();
        continue;
      }
      trace.meta.notes.push_back(*u);
    } else if (kind == "str") {
      StrId id;
      std::string s;
      if (!(ls >> id >> s)) {
        bad();
        continue;
      }
      auto u = unescape(s);
      if (!u) {
        bad();
        continue;
      }
      strs.emplace_back(id, *u);
    } else if (kind == "task") {
      TaskRec t;
      std::string parent;
      int inlined = 0;
      if (!(ls >> t.uid >> parent >> t.child_index >> t.src >> t.create_time >>
            t.create_core >> t.creation_cost >> inlined)) {
        bad();
        continue;
      }
      if (parent == "-") {
        t.parent = kNoTask;
      } else {
        u64 p = 0;
        std::istringstream ps(parent);
        if (!(ps >> p)) {
          bad();
          continue;
        }
        t.parent = p;
      }
      t.inlined = inlined != 0;
      trace.tasks.push_back(t);
    } else if (kind == "frag") {
      FragmentRec f;
      int reason = 0;
      if (!(ls >> f.task >> f.seq >> f.start >> f.end >> f.core >> reason >>
            f.end_ref) ||
          !read_counters(ls, f.counters) || reason < 0 || reason > 3) {
        bad();
        continue;
      }
      f.end_reason = static_cast<FragmentEnd>(reason);
      trace.fragments.push_back(f);
    } else if (kind == "join") {
      JoinRec j;
      if (!(ls >> j.task >> j.seq >> j.start >> j.end >> j.core)) {
        bad();
        continue;
      }
      trace.joins.push_back(j);
    } else if (kind == "loop") {
      LoopRec l;
      int sched = 0;
      if (!(ls >> l.uid >> l.enclosing_task >> l.src >> sched >>
            l.chunk_param >> l.iter_begin >> l.iter_end >> l.num_threads >>
            l.starting_thread >> l.seq >> l.start >> l.end) ||
          sched < 0 || sched > 2) {
        bad();
        continue;
      }
      l.sched = static_cast<ScheduleKind>(sched);
      trace.loops.push_back(l);
    } else if (kind == "chunk") {
      ChunkRec c;
      if (!(ls >> c.loop >> c.thread >> c.core >> c.seq_on_thread >>
            c.iter_begin >> c.iter_end >> c.start >> c.end) ||
          !read_counters(ls, c.counters)) {
        bad();
        continue;
      }
      trace.chunks.push_back(c);
    } else if (kind == "dep") {
      DependRec d;
      if (!(ls >> d.pred >> d.succ)) {
        bad();
        continue;
      }
      trace.depends.push_back(d);
    } else if (kind == "wstat") {
      WorkerStatsRec s;
      if (!(ls >> s.worker >> s.tasks_spawned >> s.tasks_executed >>
            s.tasks_inlined >> s.steals >> s.steal_failures >>
            s.cas_failures >> s.deque_pushes >> s.deque_pops >>
            s.deque_resizes >> s.taskwait_helps >> s.idle_ns >>
            s.trace_bytes)) {
        bad();
        continue;
      }
      trace.worker_stats.push_back(s);
    } else if (kind == "book") {
      BookkeepRec b;
      int got = 0;
      if (!(ls >> b.loop >> b.thread >> b.core >> b.seq_on_thread >> b.start >>
            b.end >> got)) {
        bad();
        continue;
      }
      b.got_chunk = got != 0;
      trace.bookkeeps.push_back(b);
    } else {
      add(LoadErrorCode::UnknownRecordKind, static_cast<u64>(lineno), kind,
          "unknown record kind '" + kind + "' at line " +
              std::to_string(lineno));
      if (opts.mode == LoadMode::Strict) aborted = true;
      // Lenient/Salvage: skip the line (forward compatibility).
    }
  }
  if (aborted) return res;  // fatal diagnostic already recorded

  if (!detail::apply_string_table(strs, salv, trace, res)) return res;
  detail::finish_load(std::move(trace), opts, res);
  return res;
}

}  // namespace

LoadResult load_trace_ex(std::istream& is, const LoadOptions& opts) {
  if (opts.engine == ParseEngine::Legacy) {
    return load_trace_text_legacy(is, opts);
  }
  const std::string buf = slurp_stream(is);
  return parse_trace_text(buf, opts);
}

std::optional<Trace> load_trace(std::istream& is, std::string* error) {
  LoadResult r = load_trace_ex(is, LoadOptions{LoadMode::Strict, false});
  if (!r.ok()) {
    if (error) {
      const LoadDiagnostic* d = r.first_error();
      *error = d ? d->message : "load failed";
    }
    return std::nullopt;
  }
  return std::move(r.trace);
}

namespace {

bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

// --- binary helpers (little-endian native; checked by magic) ---------------

void put_u64(std::ostream& os, u64 v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_u32(std::ostream& os, u32 v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}
void put_str(std::ostream& os, const std::string& s) {
  put_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}
void put_counters(std::ostream& os, const Counters& c) {
  put_u64(os, c.compute);
  put_u64(os, c.stall);
  put_u64(os, c.cache_misses);
  put_u64(os, c.bytes_accessed);
}

constexpr char kBinMagic[] = "GGTB3";  // v3 adds worker stats + profiling meta

}  // namespace

void save_trace_binary(const Trace& trace, std::ostream& os) {
  os.write(kBinMagic, 5);
  const TraceMeta& m = trace.meta;
  put_str(os, m.program);
  put_str(os, m.runtime);
  put_str(os, m.topology);
  put_u32(os, static_cast<u32>(m.num_workers));
  put_u32(os, static_cast<u32>(m.num_cores));
  put_u64(os, static_cast<u64>(m.ghz * 1e6));  // micro-GHz fixed point
  put_u64(os, m.region_start);
  put_u64(os, m.region_end);
  put_u64(os, m.notes.size());
  for (const std::string& n : m.notes) put_str(os, n);

  const auto& strs = trace.strings.all();
  put_u64(os, strs.size());
  for (size_t i = 1; i < strs.size(); ++i) put_str(os, strs[i]);

  put_u64(os, trace.tasks.size());
  for (const TaskRec& t : trace.tasks) {
    put_u64(os, t.uid);
    put_u64(os, t.parent);
    put_u32(os, t.child_index);
    put_u32(os, t.src);
    put_u64(os, t.create_time);
    put_u32(os, t.create_core);
    put_u64(os, t.creation_cost);
    put_u32(os, t.inlined ? 1 : 0);
  }
  put_u64(os, trace.fragments.size());
  for (const FragmentRec& f : trace.fragments) {
    put_u64(os, f.task);
    put_u32(os, f.seq);
    put_u64(os, f.start);
    put_u64(os, f.end);
    put_u32(os, f.core);
    put_u32(os, static_cast<u32>(f.end_reason));
    put_u64(os, f.end_ref);
    put_counters(os, f.counters);
  }
  put_u64(os, trace.joins.size());
  for (const JoinRec& j : trace.joins) {
    put_u64(os, j.task);
    put_u32(os, j.seq);
    put_u64(os, j.start);
    put_u64(os, j.end);
    put_u32(os, j.core);
  }
  put_u64(os, trace.loops.size());
  for (const LoopRec& l : trace.loops) {
    put_u64(os, l.uid);
    put_u64(os, l.enclosing_task);
    put_u32(os, l.src);
    put_u32(os, static_cast<u32>(l.sched));
    put_u64(os, l.chunk_param);
    put_u64(os, l.iter_begin);
    put_u64(os, l.iter_end);
    put_u32(os, l.num_threads);
    put_u32(os, l.starting_thread);
    put_u32(os, l.seq);
    put_u64(os, l.start);
    put_u64(os, l.end);
  }
  put_u64(os, trace.chunks.size());
  for (const ChunkRec& c : trace.chunks) {
    put_u64(os, c.loop);
    put_u32(os, c.thread);
    put_u32(os, c.core);
    put_u32(os, c.seq_on_thread);
    put_u64(os, c.iter_begin);
    put_u64(os, c.iter_end);
    put_u64(os, c.start);
    put_u64(os, c.end);
    put_counters(os, c.counters);
  }
  put_u64(os, trace.bookkeeps.size());
  for (const BookkeepRec& b : trace.bookkeeps) {
    put_u64(os, b.loop);
    put_u32(os, b.thread);
    put_u32(os, b.core);
    put_u32(os, b.seq_on_thread);
    put_u64(os, b.start);
    put_u64(os, b.end);
    put_u32(os, b.got_chunk ? 1 : 0);
  }
  put_u64(os, trace.depends.size());
  for (const DependRec& d : trace.depends) {
    put_u64(os, d.pred);
    put_u64(os, d.succ);
  }
  // v3 trailer: profiling-substrate metadata + per-worker scheduler stats.
  put_u32(os, m.profiled ? 1 : 0);
  put_u64(os, m.trace_buffer_bytes);
  put_str(os, m.clock_source);
  put_u64(os, trace.worker_stats.size());
  for (const WorkerStatsRec& s : trace.worker_stats) {
    put_u32(os, s.worker);
    put_u64(os, s.tasks_spawned);
    put_u64(os, s.tasks_executed);
    put_u64(os, s.tasks_inlined);
    put_u64(os, s.steals);
    put_u64(os, s.steal_failures);
    put_u64(os, s.cas_failures);
    put_u64(os, s.deque_pushes);
    put_u64(os, s.deque_pops);
    put_u64(os, s.deque_resizes);
    put_u64(os, s.taskwait_helps);
    put_u64(os, s.idle_ns);
    put_u64(os, s.trace_bytes);
  }
}

LoadResult load_trace_binary_ex(std::istream& is, const LoadOptions& opts) {
  const std::string buf = slurp_stream(is);
  return parse_trace_binary(buf, opts);
}

std::optional<Trace> load_trace_binary(std::istream& is, std::string* error) {
  LoadResult r = load_trace_binary_ex(is, LoadOptions{LoadMode::Strict, false});
  if (!r.ok()) {
    if (error) {
      const LoadDiagnostic* d = r.first_error();
      *error = d ? d->message : "load failed";
    }
    return std::nullopt;
  }
  return std::move(r.trace);
}

bool save_trace_file(const Trace& trace, const std::string& path) {
  const bool binary = has_suffix(path, ".ggbin");
  std::ofstream os(path, binary ? std::ios::binary : std::ios::out);
  if (!os) return false;
  if (binary) {
    save_trace_binary(trace, os);
  } else {
    save_trace(trace, os);
  }
  return static_cast<bool>(os);
}

LoadResult load_trace_file_ex(const std::string& path,
                              const LoadOptions& opts) {
  const bool binary = has_suffix(path, ".ggbin");
  if (opts.engine == ParseEngine::Legacy && !binary) {
    // Seed behavior: stream the file through the line-by-line parser.
    std::ifstream is(path);
    if (!is) {
      LoadResult res;
      res.source = path;
      res.diagnostics.push_back(LoadDiagnostic{LoadErrorCode::CannotOpen, 0,
                                               true, "file",
                                               "cannot open " + path});
      return res;
    }
    LoadResult res = load_trace_text_legacy(is, opts);
    res.source = path;
    return res;
  }
  // Both io engines produce one string_view over the whole file, parsed by
  // the same code with the same byte offsets: Mmap maps regular files
  // zero-copy (falling back to a read loop for pipes and the like), Stream
  // always reads into a heap buffer. Failure to get bytes at all is the
  // same CannotOpen either way.
  MmapSource mapped;
  std::string buf;
  std::string_view bytes;
  bool opened;
  if (opts.io == IoSource::Mmap) {
    opened = mapped.open(path);
    bytes = mapped.view();
  } else {
    opened = read_file_contents(path, buf);
    bytes = buf;
  }
  if (!opened) {
    LoadResult res;
    res.source = path;
    res.diagnostics.push_back(LoadDiagnostic{LoadErrorCode::CannotOpen, 0,
                                             !binary, "file",
                                             "cannot open " + path});
    return res;
  }
  LoadResult res = binary ? parse_trace_binary(bytes, opts)
                          : parse_trace_text(bytes, opts);
  res.source = path;
  return res;
}

std::optional<Trace> load_trace_file(const std::string& path,
                                     std::string* error) {
  LoadResult r = load_trace_file_ex(path, LoadOptions{LoadMode::Strict, false});
  if (!r.ok()) {
    if (error) {
      const LoadDiagnostic* d = r.first_error();
      *error = d ? d->message : "load failed";
    }
    return std::nullopt;
  }
  return std::move(r.trace);
}

}  // namespace gg
