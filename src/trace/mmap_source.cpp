#include "trace/mmap_source.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

namespace gg {

bool read_fd_contents(int fd, std::string& out) {
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      out.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return true;  // EOF
    if (errno == EINTR) continue;
    return false;
  }
}

bool MmapSource::open(const std::string& path) {
  reset();
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }

  if (S_ISREG(st.st_mode)) {
    const size_t len = static_cast<size_t>(st.st_size);
    if (len == 0) {
      // mmap with length 0 is EINVAL; an empty file is simply an empty view.
      ::close(fd);
      view_ = std::string_view{};
      return true;
    }
    void* base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
#ifdef MADV_SEQUENTIAL
      ::madvise(base, len, MADV_SEQUENTIAL);
#endif
      ::close(fd);
      map_base_ = base;
      map_len_ = len;
      view_ = std::string_view(static_cast<const char*>(base), len);
      return true;
    }
    // mmap can fail on exotic filesystems; fall through to the read loop.
    if (::lseek(fd, 0, SEEK_SET) < 0) {
      ::close(fd);
      return false;
    }
  }

  // Non-regular file (pipe, socket, /proc) or mmap refusal: read it.
  fallback_.clear();
  const bool ok = read_fd_contents(fd, fallback_);
  ::close(fd);
  if (!ok) {
    fallback_.clear();
    return false;
  }
  view_ = fallback_;
  return true;
}

void MmapSource::reset() {
  if (map_base_ != nullptr) {
    ::munmap(map_base_, map_len_);
    map_base_ = nullptr;
    map_len_ = 0;
  }
  fallback_.clear();
  fallback_.shrink_to_fit();
  view_ = std::string_view{};
}

void MmapSource::swap(MmapSource& other) noexcept {
  // fallback_ owns bytes view_ may point into; re-derive views after the
  // swap when they were fallback-backed (SSO makes pointer-stability of a
  // swapped std::string implementation-defined).
  const bool self_fb = !mapped() && !view_.empty();
  const bool other_fb = !other.mapped() && !other.view_.empty();
  std::swap(view_, other.view_);
  std::swap(map_base_, other.map_base_);
  std::swap(map_len_, other.map_len_);
  fallback_.swap(other.fallback_);
  if (other_fb) view_ = fallback_;
  if (self_fb) other.view_ = other.fallback_;
}

}  // namespace gg
