// Incremental spool ingestion: fold GGSPOOL1 frames into a growing Trace
// one frame at a time, without re-parsing the stream from byte 0.
//
// This is the refactor that turns batch spool recovery into a streaming
// primitive. recover_spool_bytes() (trace/spool.hpp) and the live tailer
// (src/serve/tailer.hpp) both drive this class, so a long-running ingestion
// daemon makes byte-for-byte the same keep/skip/degrade decisions as a
// post-mortem `gganalyze --recover` over the same stream — the equivalence
// the serve chaos test pins.
//
// Contract (identical to batch recovery):
//  * a frame whose checksum fails is skipped and counted in frames_corrupt
//    — except telemetry ('T') frames, which are advisory and degrade to
//    telemetry_corrupt without damaging the trace;
//  * per-worker epoch seqs grow monotonically from 0; a forward jump (the
//    epochs a skipped frame carried) is tolerated and counted in
//    epoch_gaps, so one bad frame loses one epoch, not the rest of the
//    worker's stream; a backward/duplicate seq is skipped as out-of-order;
//  * string deltas must extend the table contiguously;
//  * finish() stamps the same provenance notes and region repair that
//    batch recovery stamps, then finalizes the trace.
#pragma once

#include <string_view>
#include <vector>

#include "trace/spool.hpp"

namespace gg::spool {

/// What apply_frame() did with a frame — the tailer's signal for epoch
/// accounting, session sealing, and crash detection.
enum class FrameOutcome : u8 {
  Applied,            ///< folded into the trace (meta/strings/epoch/dump)
  Footer,             ///< clean footer applied: the writer shut down cleanly
  CrashFooter,        ///< crash provenance recorded: the writer died flushing
  Telemetry,          ///< telemetry snapshot kept (advisory)
  CorruptSkipped,     ///< checksum/decode failure, counted in frames_corrupt
  OutOfOrderSkipped,  ///< backward epoch seq / non-extending strings delta
  TelemetryCorrupt,   ///< corrupt 'T' frame: telemetry degraded, trace intact
};

/// One stream's accumulating recovery state. Construct once per spool,
/// apply frames in file order as they seal, call finish() at end-of-stream
/// (clean footer, crashed writer, or session eviction).
class IncrementalTrace {
 public:
  explicit IncrementalTrace(u32 num_workers);

  /// Applies one frame whose header was readable and whose payload is fully
  /// present. Verifies the checksum, then dispatches on type with exactly
  /// the batch-recovery semantics. `offset` is the frame's position in the
  /// stream, used verbatim in diagnostics so live and batch reports match.
  FrameOutcome apply_frame(FrameType type, u32 worker, u32 seq,
                           std::string_view payload, u64 stored_checksum,
                           u64 offset);

  // End-of-stream tail accounting, batch-identical wording. The batch scan
  // calls these the moment it hits the condition; a live tailer calls them
  // only once the condition is final (writer dead / session evicted),
  // because a live tail in the same state may legitimately still grow.
  void note_torn_header(u64 offset);   ///< < kFrameHeaderBytes remain
  void note_garbled_magic(u64 offset); ///< bytes at offset are not "GGSF"
  void note_overrun(u64 offset, u64 payload_len);  ///< len exceeds the file

  /// Live-tail escalation (no batch equivalent): a frame stuck at `offset`
  /// past the torn-tail deadline while later valid frames already exist in
  /// the stream — proof the damage is not an in-flight write. Counted as
  /// one corrupt frame; ingestion resumes at `resume_offset`, so one bad
  /// frame loses one epoch, not the session. Batch recovery over the same
  /// final bytes stops at such damage instead; the serve layer therefore
  /// only claims batch parity for streams whose damage sits at EOF.
  void note_abandoned(u64 offset, u64 resume_offset);

  bool have_meta() const { return have_meta_; }
  u32 num_workers() const { return num_workers_; }
  bool clean_footer() const { return report_.clean_footer; }
  bool crashed() const { return !report_.crash_reason.empty(); }
  u64 epochs_applied() const;

  /// Approximate heap footprint of the accumulated records and strings —
  /// the unit the serve admission budget charges per session.
  u64 resident_bytes() const { return resident_bytes_; }

  const RecoverReport& report() const { return report_; }
  RecoverReport& report() { return report_; }

  /// The accumulating trace. Records are in stream arrival order and NOT
  /// finalized until finish(); live mid-session queries must copy, then
  /// extend_region_to_records() + finalize the copy.
  Trace& trace() { return trace_; }
  const Trace& trace() const { return trace_; }

  /// End of stream: synthesizes meta defaults when the 'M' frame was lost,
  /// repairs region bounds when the footer is missing, stamps recovered/
  /// crash/supervisor provenance notes, finalizes. Returns false when
  /// nothing recoverable was ingested (no meta, no records). Idempotent.
  bool finish();
  bool finished() const { return finished_; }

  /// Extends meta.region_end over every recovered record — what finish()
  /// does for a footer-less stream. Public so live queries on a session
  /// that is still tailing bound the region the same way.
  static void extend_region_to_records(Trace& t);

 private:
  Trace trace_;
  RecoverReport report_;
  std::vector<u32> next_seq_;
  u32 num_workers_ = 0;
  u64 resident_bytes_ = 0;
  bool have_meta_ = false;
  bool finished_ = false;
  bool usable_ = false;
};

}  // namespace gg::spool
