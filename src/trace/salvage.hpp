// Salvage-mode recovery for damaged traces.
//
// A crashed run, a lossy flush or a truncated file leaves a trace that
// validate_trace rejects. Rejecting wholesale throws away everything a
// profiler user still cares about ("what was the program doing up to the
// crash?"). salvage_trace() instead recovers the longest structurally-valid
// subset: it synthesizes the missing closing records (TaskEnd fragments,
// joins, covering chunks) at the last observed timestamps, quarantines
// grains whose context is unrecoverable (orphaned subtrees, records of
// missing tasks/loops) into a reported set, and repairs metadata (region
// bounds, team sizes) from the surviving records. The repaired trace passes
// validate_trace, so downstream graph/metric code never sees a malformed
// trace; the report quantifies exactly how degraded the analysis is.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gg {

/// Everything salvage did to one trace. `any()` == false means the trace
/// was already structurally sound and untouched.
struct SalvageReport {
  // Quarantine: grains whose context could not be reconstructed.
  u64 quarantined_tasks = 0;  ///< tasks removed with their records
  std::vector<TaskId> unrecoverable_tasks;  ///< uids (capped at kMaxListed)
  std::vector<LoopId> unrecoverable_loops;  ///< loop uids (capped)

  // Dropped records (duplicates, dangling references, unusable tails).
  u64 dropped_records = 0;

  // Synthesis: records invented to close open structures.
  u64 synthesized_task_ends = 0;  ///< last fragments forced to TaskEnd
  u64 synthesized_fragments = 0;  ///< zero-length fragments for bare tasks
  u64 synthesized_joins = 0;      ///< joins for dangling Join/Loop/Fork refs
  u64 synthesized_chunks = 0;     ///< chunks filling iteration-range holes

  // Repairs in place.
  u64 repaired_times = 0;       ///< clamped/reordered intervals
  u64 repaired_records = 0;     ///< other field repairs (indices, team sizes)
  bool root_synthesized = false;
  bool bounds_extended = false;  ///< region bounds grown to cover records

  // Degradation accounting (grains = tasks excl. root + chunks).
  u64 grains_before = 0;
  u64 grains_after = 0;

  /// Human-readable action log, most significant first (capped).
  std::vector<std::string> actions;

  static constexpr size_t kMaxListed = 32;

  bool any() const;
  /// Fraction of pre-salvage grains that survived (1.0 when nothing to lose).
  double grain_survival() const;
  /// One-paragraph degradation summary for tools.
  std::string summary() const;
};

/// Repairs `trace` in place (finalizing it) and reports what was done.
/// Postcondition: validate_trace(trace) is empty for every input this
/// function can repair; the corrupted-trace corpus test enforces that for
/// all damage the fault harness can produce. Callers should still re-run
/// validate_trace and treat remaining violations as unsalvageable.
SalvageReport salvage_trace(Trace& trace);

}  // namespace gg
