// Versioned line-oriented text serialization of traces (the equivalent of
// the MIR profiler's on-disk raw files). Human-greppable, diff-friendly,
// and round-trip exact.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/load_result.hpp"
#include "trace/trace.hpp"

namespace gg {

/// Writes the full trace. Format: one "ggtrace <version>" header line, then
/// one record per line with a kind prefix (meta/str/task/frag/join/loop/
/// chunk/book).
void save_trace(const Trace& trace, std::ostream& os);

/// Parses a trace written by save_trace. Returns nullopt (and sets *error
/// when provided) on malformed input. The returned trace is finalized.
std::optional<Trace> load_trace(std::istream& is, std::string* error = nullptr);

/// File-path convenience wrappers (format chosen by extension: `.ggtrace`
/// text, `.ggbin` binary; anything else defaults to text).
bool save_trace_file(const Trace& trace, const std::string& path);
std::optional<Trace> load_trace_file(const std::string& path,
                                     std::string* error = nullptr);

/// Binary serialization: ~10x smaller/faster than text for the million-task
/// traces unoptimized kdtree/FFT produce. Little-endian, versioned
/// ("GGTB1"); round-trip exact.
void save_trace_binary(const Trace& trace, std::ostream& os);
std::optional<Trace> load_trace_binary(std::istream& is,
                                       std::string* error = nullptr);

// --- hardened ingestion ----------------------------------------------------
//
// The _ex loaders never abort, never over-allocate from a corrupt count, and
// classify every problem with a position (line / byte offset). Behavior per
// LoadMode:
//   Strict  — first problem is fatal; for regression gating and CI.
//   Lenient — unknown record kinds are skipped with a diagnostic (forward
//             compatibility); everything else is fatal. The default.
//   Salvage — recovers the longest valid prefix of a damaged stream, then
//             repairs it with salvage_trace(); result.salvage reports the
//             degradation. Fails only when nothing usable survives.
// With opts.validate (default), the loaded (or salvaged) trace is checked by
// validate_trace_structured and violations are surfaced as diagnostics with
// entity context; a non-valid trace yields status Failed.

LoadResult load_trace_ex(std::istream& is, const LoadOptions& opts = {});
LoadResult load_trace_binary_ex(std::istream& is, const LoadOptions& opts = {});
LoadResult load_trace_file_ex(const std::string& path,
                              const LoadOptions& opts = {});

}  // namespace gg
