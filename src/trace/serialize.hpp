// Versioned line-oriented text serialization of traces (the equivalent of
// the MIR profiler's on-disk raw files). Human-greppable, diff-friendly,
// and round-trip exact.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trace/trace.hpp"

namespace gg {

/// Writes the full trace. Format: one "ggtrace <version>" header line, then
/// one record per line with a kind prefix (meta/str/task/frag/join/loop/
/// chunk/book).
void save_trace(const Trace& trace, std::ostream& os);

/// Parses a trace written by save_trace. Returns nullopt (and sets *error
/// when provided) on malformed input. The returned trace is finalized.
std::optional<Trace> load_trace(std::istream& is, std::string* error = nullptr);

/// File-path convenience wrappers (format chosen by extension: `.ggtrace`
/// text, `.ggbin` binary; anything else defaults to text).
bool save_trace_file(const Trace& trace, const std::string& path);
std::optional<Trace> load_trace_file(const std::string& path,
                                     std::string* error = nullptr);

/// Binary serialization: ~10x smaller/faster than text for the million-task
/// traces unoptimized kdtree/FFT produce. Little-endian, versioned
/// ("GGTB1"); round-trip exact.
void save_trace_binary(const Trace& trace, std::ostream& os);
std::optional<Trace> load_trace_binary(std::istream& is,
                                       std::string* error = nullptr);

}  // namespace gg
