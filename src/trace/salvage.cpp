#include "trace/salvage.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace gg {

namespace {

// Removes adjacent records with equal keys (the vectors are in canonical
// finalize() order, which sorts by exactly these keys) and returns the
// number removed.
template <typename Rec, typename Key>
u64 dedup(std::vector<Rec>& recs, const Key& key) {
  const size_t before = recs.size();
  recs.erase(std::unique(recs.begin(), recs.end(),
                         [&](const Rec& a, const Rec& b) {
                           return key(a) == key(b);
                         }),
             recs.end());
  return before - recs.size();
}

template <typename Id>
void note_unrecoverable(std::vector<Id>& list, Id id) {
  if (list.size() >= SalvageReport::kMaxListed) return;
  if (std::find(list.begin(), list.end(), id) == list.end()) list.push_back(id);
}

}  // namespace

bool SalvageReport::any() const {
  return quarantined_tasks || dropped_records || synthesized_task_ends ||
         synthesized_fragments || synthesized_joins || synthesized_chunks ||
         repaired_times || repaired_records || root_synthesized ||
         bounds_extended;
}

double SalvageReport::grain_survival() const {
  if (grains_before == 0) return 1.0;
  return static_cast<double>(grains_after > grains_before ? grains_before
                                                          : grains_after) /
         static_cast<double>(grains_before);
}

std::string SalvageReport::summary() const {
  std::ostringstream os;
  os << "salvage: " << grains_after << "/" << grains_before
     << " grains survived (" << static_cast<int>(grain_survival() * 100.0)
     << "%)";
  if (quarantined_tasks) os << "; quarantined " << quarantined_tasks << " tasks";
  if (!unrecoverable_loops.empty())
    os << "; " << unrecoverable_loops.size() << " unrecoverable loops";
  if (dropped_records) os << "; dropped " << dropped_records << " records";
  if (synthesized_task_ends)
    os << "; closed " << synthesized_task_ends << " open tasks";
  if (synthesized_fragments)
    os << "; synthesized " << synthesized_fragments << " fragments";
  if (synthesized_joins) os << "; synthesized " << synthesized_joins << " joins";
  if (synthesized_chunks)
    os << "; synthesized " << synthesized_chunks << " chunks";
  if (repaired_times) os << "; repaired " << repaired_times << " timestamps";
  if (repaired_records) os << "; repaired " << repaired_records << " fields";
  if (root_synthesized) os << "; synthesized root task";
  if (bounds_extended) os << "; extended region bounds";
  return os.str();
}

SalvageReport salvage_trace(Trace& t) {
  SalvageReport rep;
  t.finalize();  // canonical order for dedup + stable grouping
  rep.grains_before = t.grain_count();

  // --- 1. Exact-duplicate records (duplicated deliveries, double flushes).
  rep.dropped_records += dedup(t.tasks, [](const TaskRec& r) { return r.uid; });
  rep.dropped_records += dedup(t.fragments, [](const FragmentRec& r) {
    return std::make_pair(r.task, r.seq);
  });
  rep.dropped_records += dedup(t.joins, [](const JoinRec& r) {
    return std::make_pair(r.task, r.seq);
  });
  rep.dropped_records += dedup(t.loops, [](const LoopRec& r) { return r.uid; });
  rep.dropped_records += dedup(t.chunks, [](const ChunkRec& r) {
    return std::make_tuple(r.loop, r.thread, r.seq_on_thread);
  });
  rep.dropped_records += dedup(t.bookkeeps, [](const BookkeepRec& r) {
    return std::make_tuple(r.loop, r.thread, r.seq_on_thread);
  });
  rep.dropped_records += dedup(t.depends, [](const DependRec& r) {
    return std::make_pair(r.succ, r.pred);
  });
  rep.dropped_records +=
      dedup(t.worker_stats, [](const WorkerStatsRec& r) { return r.worker; });

  // --- 2. Meta sanity: a corrupted/missing team size is recomputed from the
  // cores the records actually name.
  if (t.meta.num_workers < 1) {
    int max_core = 0;
    for (const FragmentRec& f : t.fragments)
      max_core = std::max(max_core, static_cast<int>(f.core));
    for (const ChunkRec& c : t.chunks)
      max_core = std::max(max_core, static_cast<int>(c.core));
    for (const WorkerStatsRec& s : t.worker_stats)
      max_core = std::max(max_core, static_cast<int>(s.worker));
    t.meta.num_workers = max_core + 1;
    ++rep.repaired_records;
  }

  // --- 3. Root task: tasks are sorted by uid, so a surviving root is first.
  if (t.tasks.empty() || t.tasks.front().uid != kRootTask) {
    TaskRec root;
    root.uid = kRootTask;
    root.parent = kNoTask;
    root.create_time = t.meta.region_start;
    t.tasks.insert(t.tasks.begin(), root);
    rep.root_synthesized = true;
  } else if (t.tasks.front().parent != kNoTask) {
    t.tasks.front().parent = kNoTask;
    ++rep.repaired_records;
  }

  // --- 4. Parent chains: a task is recoverable iff its parent chain reaches
  // the root without gaps or cycles; everything else is quarantined with all
  // of its records.
  std::unordered_map<TaskId, size_t> by_uid;
  by_uid.reserve(t.tasks.size());
  for (size_t i = 0; i < t.tasks.size(); ++i) by_uid.emplace(t.tasks[i].uid, i);

  enum class State : u8 { Unknown, Good, Bad, Visiting };
  std::unordered_map<TaskId, State> state;
  state.reserve(t.tasks.size());
  state[kRootTask] = State::Good;
  auto resolve = [&](TaskId uid) {
    std::vector<TaskId> path;
    TaskId cur = uid;
    State verdict = State::Bad;
    for (;;) {
      auto it = state.find(cur);
      if (it != state.end()) {
        if (it->second == State::Visiting) {
          verdict = State::Bad;  // parent cycle
        } else {
          verdict = it->second;
        }
        break;
      }
      state[cur] = State::Visiting;
      path.push_back(cur);
      const TaskRec& rec = t.tasks[by_uid.at(cur)];
      if (rec.parent == kNoTask || !by_uid.count(rec.parent)) {
        verdict = State::Bad;
        break;
      }
      cur = rec.parent;
    }
    for (TaskId p : path) state[p] = verdict;
    return verdict;
  };
  std::unordered_set<TaskId> alive;
  alive.reserve(t.tasks.size());
  for (const TaskRec& task : t.tasks) {
    if (resolve(task.uid) == State::Good) alive.insert(task.uid);
  }
  if (alive.size() != t.tasks.size()) {
    for (const TaskRec& task : t.tasks) {
      if (!alive.count(task.uid)) {
        ++rep.quarantined_tasks;
        note_unrecoverable(rep.unrecoverable_tasks, task.uid);
      }
    }
    std::erase_if(t.tasks,
                  [&](const TaskRec& task) { return !alive.count(task.uid); });
    by_uid.clear();
    for (size_t i = 0; i < t.tasks.size(); ++i)
      by_uid.emplace(t.tasks[i].uid, i);
  }
  // Records of quarantined or entirely-missing tasks are orphaned grains.
  auto drop_orphans = [&](auto& recs, const auto& task_of) {
    return std::erase_if(recs, [&](const auto& r) {
      if (alive.count(task_of(r))) return false;
      note_unrecoverable(rep.unrecoverable_tasks, task_of(r));
      return true;
    });
  };
  rep.dropped_records +=
      drop_orphans(t.fragments, [](const FragmentRec& f) { return f.task; });
  rep.dropped_records +=
      drop_orphans(t.joins, [](const JoinRec& j) { return j.task; });

  // --- 5. Child indices: renumber each parent's surviving children densely
  // in their recorded creation order.
  {
    std::map<TaskId, std::vector<size_t>> children;
    for (size_t i = 0; i < t.tasks.size(); ++i) {
      if (t.tasks[i].uid != kRootTask) children[t.tasks[i].parent].push_back(i);
    }
    for (auto& [parent, idx] : children) {
      std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
        const TaskRec& x = t.tasks[a];
        const TaskRec& y = t.tasks[b];
        return x.child_index != y.child_index ? x.child_index < y.child_index
                                              : x.uid < y.uid;
      });
      for (u32 i = 0; i < idx.size(); ++i) {
        if (t.tasks[idx[i]].child_index != i) {
          t.tasks[idx[i]].child_index = i;
          ++rep.repaired_records;
        }
      }
    }
  }

  // --- 6. Loops: quarantine loops of missing tasks; repair ranges and team
  // sizes; drop chunk/bookkeep records of missing loops.
  {
    std::erase_if(t.loops, [&](const LoopRec& l) {
      if (alive.count(l.enclosing_task)) return false;
      ++rep.dropped_records;
      note_unrecoverable(rep.unrecoverable_loops, l.uid);
      return true;
    });
    std::unordered_set<LoopId> live_loops;
    live_loops.reserve(t.loops.size());
    for (LoopRec& l : t.loops) {
      live_loops.insert(l.uid);
      if (l.iter_end < l.iter_begin) {
        l.iter_end = l.iter_begin;
        ++rep.repaired_records;
      }
    }
    auto drop_loopless = [&](auto& recs) {
      return std::erase_if(recs, [&](const auto& r) {
        if (live_loops.count(r.loop)) return false;
        note_unrecoverable(rep.unrecoverable_loops, r.loop);
        return true;
      });
    };
    rep.dropped_records += drop_loopless(t.chunks);
    rep.dropped_records += drop_loopless(t.bookkeeps);
    // Team sizes must cover every thread the loop's records name.
    std::unordered_map<LoopId, u16> max_thread;
    for (const ChunkRec& c : t.chunks)
      max_thread[c.loop] = std::max(max_thread[c.loop], c.thread);
    for (const BookkeepRec& b : t.bookkeeps)
      max_thread[b.loop] = std::max(max_thread[b.loop], b.thread);
    for (LoopRec& l : t.loops) {
      const u16 need = static_cast<u16>(
          std::max<u32>(max_thread.count(l.uid) ? max_thread[l.uid] + 1u : 1u,
                        1u));
      if (l.num_threads < need) {
        l.num_threads = need;
        ++rep.repaired_records;
      }
    }
  }

  // --- 7. Fragments: per task, truncate after the first TaskEnd, renumber
  // seq densely, clamp intervals into order, repair dangling end refs
  // (synthesizing zero-length joins where needed), and close the last
  // fragment with TaskEnd at its last observed timestamp. Tasks with no
  // surviving fragments get one synthesized zero-length fragment.
  {
    std::unordered_set<LoopId> live_loops;
    for (const LoopRec& l : t.loops) live_loops.insert(l.uid);
    std::unordered_map<TaskId, std::set<u64>> join_seqs;
    for (const JoinRec& j : t.joins) join_seqs[j.task].insert(j.seq);

    std::unordered_map<TaskId, std::vector<FragmentRec>> frags_of;
    for (FragmentRec& f : t.fragments) frags_of[f.task].push_back(f);

    std::vector<FragmentRec> repaired;
    repaired.reserve(t.fragments.size());
    std::vector<JoinRec> synthesized_joins;

    for (const TaskRec& task : t.tasks) {
      auto it = frags_of.find(task.uid);
      if (it == frags_of.end() || it->second.empty()) {
        FragmentRec f;
        f.task = task.uid;
        f.seq = 0;
        f.start = f.end = task.create_time;
        f.core = task.create_core;
        f.end_reason = FragmentEnd::TaskEnd;
        repaired.push_back(f);
        ++rep.synthesized_fragments;
        continue;
      }
      std::vector<FragmentRec>& fr = it->second;  // already in seq order
      // Truncate after the first TaskEnd: anything later belongs to a task
      // the runtime already finished — unusable tail.
      for (size_t i = 0; i < fr.size(); ++i) {
        if (fr[i].end_reason == FragmentEnd::TaskEnd && i + 1 < fr.size()) {
          rep.dropped_records += fr.size() - (i + 1);
          fr.resize(i + 1);
          break;
        }
      }
      auto& seqs = join_seqs[task.uid];
      u64 next_seq = seqs.empty() ? 0 : *seqs.rbegin() + 1;
      auto fresh_join = [&](const FragmentRec& f) -> u64 {
        while (next_seq > std::numeric_limits<u32>::max() || seqs.count(next_seq))
          next_seq = next_seq > std::numeric_limits<u32>::max() ? 0
                                                                : next_seq + 1;
        JoinRec j;
        j.task = task.uid;
        j.seq = static_cast<u32>(next_seq);
        j.start = j.end = f.end;
        j.core = f.core;
        synthesized_joins.push_back(j);
        seqs.insert(next_seq);
        ++rep.synthesized_joins;
        return next_seq++;
      };
      TimeNs prev_end = 0;
      for (size_t i = 0; i < fr.size(); ++i) {
        FragmentRec& f = fr[i];
        if (f.seq != i) {
          f.seq = static_cast<u32>(i);
          ++rep.repaired_records;
        }
        if (f.start < prev_end) {
          f.start = prev_end;
          ++rep.repaired_times;
        }
        if (f.end < f.start) {
          f.end = f.start;
          ++rep.repaired_times;
        }
        prev_end = f.end;
        const bool last = (i + 1 == fr.size());
        if (last) {
          if (f.end_reason != FragmentEnd::TaskEnd) {
            // The closing event was lost (crash mid-task, truncated file):
            // close the task at its last observed timestamp.
            f.end_reason = FragmentEnd::TaskEnd;
            f.end_ref = 0;
            ++rep.synthesized_task_ends;
          }
          continue;
        }
        switch (f.end_reason) {
          case FragmentEnd::TaskEnd:
            break;  // unreachable: truncated above
          case FragmentEnd::Fork: {
            auto child = by_uid.find(f.end_ref);
            if (child == by_uid.end() ||
                t.tasks[child->second].parent != task.uid) {
              f.end_reason = FragmentEnd::Join;
              f.end_ref = fresh_join(f);
            }
            break;
          }
          case FragmentEnd::Loop:
            if (!live_loops.count(f.end_ref)) {
              f.end_reason = FragmentEnd::Join;
              f.end_ref = fresh_join(f);
            }
            break;
          case FragmentEnd::Join:
            if (!seqs.count(f.end_ref)) {
              if (f.end_ref <= std::numeric_limits<u32>::max()) {
                JoinRec j;
                j.task = task.uid;
                j.seq = static_cast<u32>(f.end_ref);
                j.start = j.end = f.end;
                j.core = f.core;
                synthesized_joins.push_back(j);
                seqs.insert(f.end_ref);
                ++rep.synthesized_joins;
              } else {
                f.end_ref = fresh_join(f);
              }
            }
            break;
        }
      }
      repaired.insert(repaired.end(), fr.begin(), fr.end());
    }
    t.fragments.swap(repaired);
    t.joins.insert(t.joins.end(), synthesized_joins.begin(),
                   synthesized_joins.end());
  }

  // --- 8. Chunks: per loop, drop unusable ranges, drop overlaps, and fill
  // coverage holes with synthesized chunks so the surviving chunks partition
  // the iteration range exactly.
  {
    std::unordered_map<LoopId, std::vector<ChunkRec>> chunks_of;
    for (ChunkRec& c : t.chunks) chunks_of[c.loop].push_back(c);
    std::vector<ChunkRec> repaired;
    repaired.reserve(t.chunks.size());
    for (const LoopRec& loop : t.loops) {
      auto it = chunks_of.find(loop.uid);
      std::vector<ChunkRec> cs =
          it == chunks_of.end() ? std::vector<ChunkRec>{} : it->second;
      rep.dropped_records += std::erase_if(cs, [&](const ChunkRec& c) {
        return c.iter_end <= c.iter_begin || c.iter_begin < loop.iter_begin ||
               c.iter_end > loop.iter_end;
      });
      std::sort(cs.begin(), cs.end(), [](const ChunkRec& a, const ChunkRec& b) {
        return a.iter_begin != b.iter_begin ? a.iter_begin < b.iter_begin
                                            : a.iter_end < b.iter_end;
      });
      auto synth = [&](u64 lo, u64 hi) {
        ChunkRec c;
        c.loop = loop.uid;
        c.thread = 0;
        c.core = 0;
        // seq_on_thread rewritten below; times pinned to the loop's own
        // interval (zero-length: no work was observed for these iterations).
        c.iter_begin = lo;
        c.iter_end = hi;
        c.start = c.end = loop.end;
        ++rep.synthesized_chunks;
        return c;
      };
      std::vector<ChunkRec> out;
      u64 cursor = loop.iter_begin;
      for (ChunkRec& c : cs) {
        if (c.iter_begin < cursor) {  // overlaps covered iterations
          ++rep.dropped_records;
          continue;
        }
        if (c.iter_begin > cursor) out.push_back(synth(cursor, c.iter_begin));
        if (c.end < c.start) {
          c.end = c.start;
          ++rep.repaired_times;
        }
        if (c.thread >= loop.num_threads) {
          c.thread = 0;
          ++rep.repaired_records;
        }
        cursor = c.iter_end;
        out.push_back(c);
      }
      if (cursor < loop.iter_end) out.push_back(synth(cursor, loop.iter_end));
      // Re-key per-(loop,thread) counters so synthesized/dropped chunks
      // cannot collide with survivors.
      std::unordered_map<u16, u32> next_on_thread;
      for (ChunkRec& c : out) c.seq_on_thread = next_on_thread[c.thread]++;
      repaired.insert(repaired.end(), out.begin(), out.end());
    }
    t.chunks.swap(repaired);
    // Bookkeep thread ids beyond the (already-raised) team size cannot
    // happen; bookkeeps of live loops survive as-is.
  }

  // --- 9. Dependences: drop edges whose endpoints are gone or whose
  // direction is impossible.
  rep.dropped_records += std::erase_if(t.depends, [&](const DependRec& d) {
    return d.pred >= d.succ || !alive.count(d.pred) || !alive.count(d.succ);
  });

  // --- 10. Worker stats: drop records for workers outside the team, clamp
  // internally-inconsistent counters.
  rep.dropped_records += std::erase_if(t.worker_stats, [&](const WorkerStatsRec& s) {
    return static_cast<int>(s.worker) >= t.meta.num_workers;
  });
  for (WorkerStatsRec& s : t.worker_stats) {
    if (s.steals > s.tasks_executed) {
      s.steals = s.tasks_executed;
      ++rep.repaired_records;
    }
    if (s.tasks_inlined > s.tasks_spawned) {
      s.tasks_inlined = s.tasks_spawned;
      ++rep.repaired_records;
    }
  }

  // --- 11. Region bounds: grow to cover every surviving record (skewed
  // clocks, lost trailers). Never shrink — the recorded makespan may
  // legitimately exceed the busy interval.
  {
    TimeNs lo = std::numeric_limits<TimeNs>::max();
    TimeNs hi = 0;
    auto cover = [&](TimeNs s, TimeNs e) {
      lo = std::min(lo, s);
      hi = std::max(hi, e);
    };
    for (const FragmentRec& f : t.fragments) cover(f.start, f.end);
    for (const ChunkRec& c : t.chunks) cover(c.start, c.end);
    for (const JoinRec& j : t.joins) cover(j.start, j.end);
    for (const LoopRec& l : t.loops) cover(l.start, l.end);
    for (const BookkeepRec& b : t.bookkeeps) cover(b.start, b.end);
    if (t.meta.region_end < t.meta.region_start) {
      t.meta.region_end = t.meta.region_start;
      rep.bounds_extended = true;
    }
    if (lo != std::numeric_limits<TimeNs>::max()) {
      if (lo < t.meta.region_start) {
        t.meta.region_start = lo;
        rep.bounds_extended = true;
      }
      if (hi > t.meta.region_end) {
        t.meta.region_end = hi;
        rep.bounds_extended = true;
      }
    }
  }

  t.finalize();
  rep.grains_after = t.grain_count();
  if (rep.any()) {
    rep.actions.push_back(rep.summary());
    for (TaskId uid : rep.unrecoverable_tasks)
      rep.actions.push_back("unrecoverable task " + std::to_string(uid));
    for (LoopId uid : rep.unrecoverable_loops)
      rep.actions.push_back("unrecoverable loop " + std::to_string(uid));
  }
  return rep;
}

}  // namespace gg
