// Raw per-grain records captured at OMPT-like runtime events.
//
// The MIR profiler in the paper records grain properties at task and chunk
// events notified by the runtime (a superset of OMPT with chunk events and
// affinity information). These records are that superset: everything the
// grain-graph builder and the metric derivations need, and nothing else.
#pragma once

#include "common/types.hpp"

namespace gg {

/// Hardware-counter-style measurements accumulated over one fragment/chunk.
/// In threaded executions compute cycles come from wall time; in simulated
/// executions both fields come from the cost model. `stall` is the basis of
/// the memory-hierarchy-utilization metric (compute/stall, §3.2).
struct Counters {
  Cycles compute = 0;      ///< cycles spent performing computation
  Cycles stall = 0;        ///< cycles stalled waiting for data
  u64 cache_misses = 0;    ///< private-cache line misses
  u64 bytes_accessed = 0;  ///< bytes touched (working-set indicator)

  Counters& operator+=(const Counters& o) {
    compute += o.compute;
    stall += o.stall;
    cache_misses += o.cache_misses;
    bytes_accessed += o.bytes_accessed;
    return *this;
  }
};

/// OpenMP loop schedule kinds supported by the runtimes.
enum class ScheduleKind : u8 { Static, Dynamic, Guided };

const char* to_string(ScheduleKind k);

/// One task instance. `uid` 0 is the implicit root task of the profiled
/// region; it has `parent == kNoTask`.
struct TaskRec {
  TaskId uid = 0;
  TaskId parent = kNoTask;
  u32 child_index = 0;  ///< 0-based creation index among the parent's children
  StrId src = 0;        ///< definition site, e.g. "sparselu.c:246(bmod)"
  TimeNs create_time = 0;
  u16 create_core = 0;
  TimeNs creation_cost = 0;  ///< time the parent spent creating this task
  bool inlined = false;      ///< executed immediately in the parent's context
                             ///< (runtime internal cutoff), not deferred
};

/// Why a fragment ended: the task forked a child, reached a taskwait,
/// finished, or encountered a parallel for-loop (the enclosing context
/// resumes after the loop's join).
enum class FragmentEnd : u8 { Fork, Join, TaskEnd, Loop };

/// Execution of a task between two runtime events (creation/synchronization
/// points). Fragments of one task are sequentially ordered by `seq`.
struct FragmentRec {
  TaskId task = 0;
  u32 seq = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  u16 core = 0;
  Counters counters;
  FragmentEnd end_reason = FragmentEnd::TaskEnd;
  u64 end_ref = 0;  ///< Fork: uid of the created child; Join: join seq;
                    ///< Loop: uid of the encountered loop
};

/// One taskwait-style synchronization point inside a task. Children created
/// since the previous join of the same task synchronize here.
struct JoinRec {
  TaskId task = 0;
  u32 seq = 0;  ///< join index within the task
  TimeNs start = 0;
  TimeNs end = 0;
  u16 core = 0;
};

/// One parallel for-loop instance.
struct LoopRec {
  LoopId uid = 0;
  TaskId enclosing_task = 0;
  StrId src = 0;
  ScheduleKind sched = ScheduleKind::Static;
  u64 chunk_param = 0;  ///< requested chunk size (0 = schedule default)
  u64 iter_begin = 0;
  u64 iter_end = 0;  ///< exclusive
  u16 num_threads = 0;
  u16 starting_thread = 0;  ///< thread that encountered the loop — part of
                            ///< the schedule-independent chunk identifier
  u32 seq = 0;              ///< loop sequence counter of the starting thread
  TimeNs start = 0;
  TimeNs end = 0;
};

/// Computation performed by the set of iterations assigned to one chunk.
struct ChunkRec {
  LoopId loop = 0;
  u16 thread = 0;
  u16 core = 0;
  u32 seq_on_thread = 0;  ///< per-(loop,thread) chunk counter
  u64 iter_begin = 0;
  u64 iter_end = 0;  ///< exclusive
  TimeNs start = 0;
  TimeNs end = 0;
  Counters counters;
};

/// One resolved task dependence: `succ` may not start before `pred`
/// finishes (OpenMP depend clauses, resolved by the runtime's last-writer /
/// reader tracking at spawn time). Structural edges are recorded even when
/// the predecessor already finished by the time the successor was spawned.
struct DependRec {
  TaskId pred = 0;
  TaskId succ = 0;
};

/// Book-keeping performed by a thread to claim its next chunk (iteration
/// space division / chunk assignment).
struct BookkeepRec {
  LoopId loop = 0;
  u16 thread = 0;
  u16 core = 0;
  u32 seq_on_thread = 0;
  TimeNs start = 0;
  TimeNs end = 0;
  bool got_chunk = false;  ///< false for the final (empty) book-keeping step
                           ///< that proceeds to the loop join
};

/// Scheduler-internal counters accumulated by one worker over the profiled
/// region. These explain the gap between a grain graph's predicted
/// parallelism and the realized makespan (steal rates, queue contention,
/// idle time) and account for the profiler's own footprint. The threaded
/// runtime measures them; the simulator emits the modeled equivalents.
/// Emitted once per worker at region end (trace-format v3).
struct WorkerStatsRec {
  u16 worker = 0;           ///< worker/core id
  u64 tasks_spawned = 0;    ///< children created by tasks running here
  u64 tasks_executed = 0;   ///< task bodies executed here (incl. inlined)
  u64 tasks_inlined = 0;    ///< spawns cut off inline (internal cutoffs)
  u64 steals = 0;           ///< successful steals by this worker
  u64 steal_failures = 0;   ///< victim probes that came back empty-handed
  u64 cas_failures = 0;     ///< Chase-Lev top CAS races lost (pop + steal)
  u64 deque_pushes = 0;     ///< deferred tasks enqueued by this worker
  u64 deque_pops = 0;       ///< tasks taken from the own queue
  u64 deque_resizes = 0;    ///< Chase-Lev buffer growths
  u64 taskwait_helps = 0;   ///< tasks executed while helping inside a wait
  TimeNs idle_ns = 0;       ///< time spent spinning with nothing to run
  u64 trace_bytes = 0;      ///< profiler buffer bytes this worker recorded
};

}  // namespace gg
