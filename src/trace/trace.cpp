#include "trace/trace.hpp"

#include <algorithm>

#include "common/par_sort.hpp"

namespace gg {

const char* to_string(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::Static: return "static";
    case ScheduleKind::Dynamic: return "dynamic";
    case ScheduleKind::Guided: return "guided";
  }
  return "?";
}

void Trace::finalize(int threads) {
  // Stable sorts throughout: records with equal keys (possible in damaged
  // inputs) keep their arrival order, and par_stable_sort produces the same
  // permutation for every thread count — so a salvaged trace serializes
  // identically whether finalized serial or parallel.
  par_stable_sort(tasks, threads, [](const TaskRec& a, const TaskRec& b) {
    return a.uid < b.uid;
  });
  par_stable_sort(fragments, threads,
                  [](const FragmentRec& a, const FragmentRec& b) {
                    return a.task != b.task ? a.task < b.task : a.seq < b.seq;
                  });
  par_stable_sort(joins, threads, [](const JoinRec& a, const JoinRec& b) {
    return a.task != b.task ? a.task < b.task : a.seq < b.seq;
  });
  par_stable_sort(loops, threads, [](const LoopRec& a, const LoopRec& b) {
    return a.uid < b.uid;
  });
  par_stable_sort(chunks, threads, [](const ChunkRec& a, const ChunkRec& b) {
    if (a.loop != b.loop) return a.loop < b.loop;
    if (a.thread != b.thread) return a.thread < b.thread;
    return a.seq_on_thread < b.seq_on_thread;
  });
  par_stable_sort(depends, threads,
                  [](const DependRec& a, const DependRec& b) {
                    return a.succ != b.succ ? a.succ < b.succ
                                            : a.pred < b.pred;
                  });
  par_stable_sort(bookkeeps, threads,
                  [](const BookkeepRec& a, const BookkeepRec& b) {
                    if (a.loop != b.loop) return a.loop < b.loop;
                    if (a.thread != b.thread) return a.thread < b.thread;
                    return a.seq_on_thread < b.seq_on_thread;
                  });
  par_stable_sort(worker_stats, threads,
                  [](const WorkerStatsRec& a, const WorkerStatsRec& b) {
                    return a.worker < b.worker;
                  });

  task_index_.clear();
  task_index_.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i)
    task_index_.emplace_back(tasks[i].uid, i);
  loop_index_.clear();
  loop_index_.reserve(loops.size());
  for (size_t i = 0; i < loops.size(); ++i)
    loop_index_.emplace_back(loops[i].uid, i);
  children_index_.clear();
  children_index_.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) children_index_.push_back(i);
  par_stable_sort(children_index_, threads, [this](size_t a, size_t b) {
    const TaskRec& ta = tasks[a];
    const TaskRec& tb = tasks[b];
    return ta.parent != tb.parent ? ta.parent < tb.parent
                                  : ta.child_index < tb.child_index;
  });
  finalized_ = true;
}

std::span<const FragmentRec> Trace::fragments_span(TaskId uid) const {
  if (!finalized_) return {};
  auto lo = std::lower_bound(
      fragments.begin(), fragments.end(), uid,
      [](const FragmentRec& f, TaskId v) { return f.task < v; });
  auto hi = std::upper_bound(
      lo, fragments.end(), uid,
      [](TaskId v, const FragmentRec& f) { return v < f.task; });
  return {fragments.data() + (lo - fragments.begin()),
          static_cast<size_t>(hi - lo)};
}

std::span<const JoinRec> Trace::joins_span(TaskId uid) const {
  if (!finalized_) return {};
  auto lo = std::lower_bound(
      joins.begin(), joins.end(), uid,
      [](const JoinRec& j, TaskId v) { return j.task < v; });
  auto hi = std::upper_bound(lo, joins.end(), uid,
                             [](TaskId v, const JoinRec& j) { return v < j.task; });
  return {joins.data() + (lo - joins.begin()), static_cast<size_t>(hi - lo)};
}

std::span<const ChunkRec> Trace::chunks_span(LoopId uid) const {
  if (!finalized_) return {};
  auto lo = std::lower_bound(
      chunks.begin(), chunks.end(), uid,
      [](const ChunkRec& c, LoopId v) { return c.loop < v; });
  auto hi = std::upper_bound(
      lo, chunks.end(), uid,
      [](LoopId v, const ChunkRec& c) { return v < c.loop; });
  return {chunks.data() + (lo - chunks.begin()), static_cast<size_t>(hi - lo)};
}

std::span<const BookkeepRec> Trace::bookkeeps_span(LoopId uid) const {
  if (!finalized_) return {};
  auto lo = std::lower_bound(
      bookkeeps.begin(), bookkeeps.end(), uid,
      [](const BookkeepRec& b, LoopId v) { return b.loop < v; });
  auto hi = std::upper_bound(
      lo, bookkeeps.end(), uid,
      [](LoopId v, const BookkeepRec& b) { return v < b.loop; });
  return {bookkeeps.data() + (lo - bookkeeps.begin()),
          static_cast<size_t>(hi - lo)};
}

const JoinRec* find_join(std::span<const JoinRec> joins, u64 seq) {
  // The span is seq-sorted (Trace::finalize), so the last occurrence is the
  // element before the upper bound. u32 seqs promote losslessly to u64.
  auto hi = std::upper_bound(
      joins.begin(), joins.end(), seq,
      [](u64 v, const JoinRec& j) { return v < j.seq; });
  if (hi == joins.begin()) return nullptr;
  const JoinRec* j = &*(hi - 1);
  return j->seq == seq ? j : nullptr;
}

std::optional<size_t> Trace::task_index(TaskId uid) const {
  if (!finalized_) return std::nullopt;
  auto it = std::lower_bound(
      task_index_.begin(), task_index_.end(), uid,
      [](const auto& p, TaskId v) { return p.first < v; });
  if (it == task_index_.end() || it->first != uid) return std::nullopt;
  return it->second;
}

std::optional<size_t> Trace::loop_index(LoopId uid) const {
  if (!finalized_) return std::nullopt;
  auto it = std::lower_bound(
      loop_index_.begin(), loop_index_.end(), uid,
      [](const auto& p, LoopId v) { return p.first < v; });
  if (it == loop_index_.end() || it->first != uid) return std::nullopt;
  return it->second;
}

std::vector<const FragmentRec*> Trace::fragments_of(TaskId uid) const {
  if (!finalized_) return {};
  std::vector<const FragmentRec*> out;
  auto lo = std::lower_bound(
      fragments.begin(), fragments.end(), uid,
      [](const FragmentRec& f, TaskId v) { return f.task < v; });
  for (auto it = lo; it != fragments.end() && it->task == uid; ++it)
    out.push_back(&*it);
  return out;
}

std::vector<const JoinRec*> Trace::joins_of(TaskId uid) const {
  if (!finalized_) return {};
  std::vector<const JoinRec*> out;
  auto lo = std::lower_bound(joins.begin(), joins.end(), uid,
                             [](const JoinRec& j, TaskId v) { return j.task < v; });
  for (auto it = lo; it != joins.end() && it->task == uid; ++it)
    out.push_back(&*it);
  return out;
}

std::vector<const ChunkRec*> Trace::chunks_of(LoopId uid) const {
  if (!finalized_) return {};
  std::vector<const ChunkRec*> out;
  auto lo = std::lower_bound(chunks.begin(), chunks.end(), uid,
                             [](const ChunkRec& c, LoopId v) { return c.loop < v; });
  for (auto it = lo; it != chunks.end() && it->loop == uid; ++it)
    out.push_back(&*it);
  return out;
}

std::vector<const BookkeepRec*> Trace::bookkeeps_of(LoopId uid) const {
  if (!finalized_) return {};
  std::vector<const BookkeepRec*> out;
  auto lo = std::lower_bound(
      bookkeeps.begin(), bookkeeps.end(), uid,
      [](const BookkeepRec& b, LoopId v) { return b.loop < v; });
  for (auto it = lo; it != bookkeeps.end() && it->loop == uid; ++it)
    out.push_back(&*it);
  return out;
}

std::vector<const TaskRec*> Trace::children_of(TaskId uid) const {
  if (!finalized_) return {};
  auto lo = std::lower_bound(
      children_index_.begin(), children_index_.end(), uid,
      [this](size_t i, TaskId v) { return tasks[i].parent < v; });
  std::vector<const TaskRec*> out;
  for (auto it = lo; it != children_index_.end() && tasks[*it].parent == uid;
       ++it) {
    out.push_back(&tasks[*it]);
  }
  return out;
}

std::vector<TaskId> Trace::predecessors_of(TaskId uid) const {
  if (!finalized_) return {};
  std::vector<TaskId> out;
  auto lo = std::lower_bound(
      depends.begin(), depends.end(), uid,
      [](const DependRec& d, TaskId v) { return d.succ < v; });
  for (auto it = lo; it != depends.end() && it->succ == uid; ++it)
    out.push_back(it->pred);
  return out;
}

const WorkerStatsRec* Trace::worker_stats_of(u16 worker) const {
  if (!finalized_) return nullptr;
  auto it = std::lower_bound(
      worker_stats.begin(), worker_stats.end(), worker,
      [](const WorkerStatsRec& s, u16 v) { return s.worker < v; });
  if (it == worker_stats.end() || it->worker != worker) return nullptr;
  return &*it;
}

size_t Trace::grain_count() const {
  size_t n = chunks.size();
  for (const TaskRec& t : tasks) {
    if (t.uid != kRootTask) ++n;
  }
  return n;
}

namespace {

/// First note starting with `prefix` followed by a space, with the prefix
/// stripped; "" if absent.
std::string note_with_prefix(const std::vector<std::string>& notes,
                             std::string_view prefix) {
  for (const std::string& n : notes) {
    if (n.size() > prefix.size() && n.compare(0, prefix.size(), prefix) == 0 &&
        n[prefix.size()] == ' ') {
      return n.substr(prefix.size() + 1);
    }
  }
  return {};
}

}  // namespace

bool TraceMeta::recovered() const {
  return !note_with_prefix(notes, "recovered").empty();
}

std::string TraceMeta::recovery_note() const {
  return note_with_prefix(notes, "recovered");
}

std::string TraceMeta::crash_note() const {
  return note_with_prefix(notes, "crash");
}

std::string TraceMeta::supervisor_note() const {
  return note_with_prefix(notes, "supervisor");
}

std::string TraceMeta::recorder_note() const {
  return note_with_prefix(notes, "recorder");
}

std::optional<double> TraceMeta::recorder_overhead_pct() const {
  const std::string note = recorder_note();
  const std::string key = "overhead_pct=";
  const size_t at = note.find(key);
  if (at == std::string::npos) return std::nullopt;
  try {
    return std::stod(note.substr(at + key.size()));
  } catch (...) {
    return std::nullopt;
  }
}

StrId intern_src(StringTable& strings, std::string_view file, int line,
                 std::string_view func) {
  std::string s;
  s.reserve(file.size() + func.size() + 16);
  s += file;
  s += ':';
  s += std::to_string(line);
  s += '(';
  s += func;
  s += ')';
  return strings.intern(s);
}

}  // namespace gg
