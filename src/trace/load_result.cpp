#include "trace/load_result.hpp"

#include <sstream>

namespace gg {

const char* to_string(LoadStatus s) {
  switch (s) {
    case LoadStatus::Ok: return "ok";
    case LoadStatus::Salvaged: return "salvaged";
    case LoadStatus::Failed: return "failed";
  }
  return "?";
}

const char* to_string(LoadErrorCode c) {
  switch (c) {
    case LoadErrorCode::None: return "none";
    case LoadErrorCode::CannotOpen: return "cannot-open";
    case LoadErrorCode::EmptyInput: return "empty-input";
    case LoadErrorCode::BadMagic: return "bad-magic";
    case LoadErrorCode::UnsupportedVersion: return "unsupported-version";
    case LoadErrorCode::MalformedRecord: return "malformed-record";
    case LoadErrorCode::UnknownRecordKind: return "unknown-record-kind";
    case LoadErrorCode::StringTableCorrupt: return "string-table-corrupt";
    case LoadErrorCode::TruncatedStream: return "truncated-stream";
    case LoadErrorCode::LimitExceeded: return "limit-exceeded";
    case LoadErrorCode::InvalidStructure: return "invalid-structure";
  }
  return "?";
}

std::string LoadDiagnostic::to_string() const {
  std::ostringstream os;
  os << (offset_is_line ? "line " : "byte ") << offset;
  if (!context.empty()) os << " [" << context << "]";
  os << ": " << message << " (" << gg::to_string(code) << ")";
  return os.str();
}

const LoadDiagnostic* LoadResult::first_error() const {
  for (const LoadDiagnostic& d : diagnostics) {
    if (d.code != LoadErrorCode::None) return &d;
  }
  return nullptr;
}

std::string LoadResult::describe() const {
  std::ostringstream os;
  os << (source.empty() ? std::string("<stream>") : source) << ": "
     << to_string(status);
  if (trace.has_value() && status != LoadStatus::Failed) {
    os << ", " << trace->grain_count() << " grains";
  }
  os << '\n';
  for (const LoadDiagnostic& d : diagnostics) {
    os << "  " << d.to_string() << '\n';
  }
  if (salvage.any()) {
    os << "  " << salvage.summary() << '\n';
    for (size_t i = 1; i < salvage.actions.size(); ++i)
      os << "    " << salvage.actions[i] << '\n';
  }
  return os.str();
}

}  // namespace gg
