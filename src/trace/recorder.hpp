// TraceRecorder: low-overhead collection of trace records from concurrent
// workers.
//
// Each worker appends records to its private buffer (no synchronization on
// the hot path — the paper's MIR profiler keeps overhead under 2.5% and so
// must we); finish() merges the buffers into a canonical Trace. String
// interning is the only shared mutable state and is mutex-protected; callers
// cache interned ids per call site.
//
// Crash safety (optional): attach_spool() hooks a spool::SpoolSink into the
// recorder. Appends then count bytes and, once a worker's buffer reaches
// the epoch threshold (or the sink's background flusher requests a
// time-based flush), the buffer is sealed into a checksummed epoch frame on
// disk — see trace/spool.hpp. With no sink attached every append is the
// same single push_back as before; the disabled path produces byte-identical
// traces.
#pragma once

#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "trace/spool.hpp"
#include "trace/trace.hpp"

namespace gg {

class TraceRecorder {
 public:
  explicit TraceRecorder(int num_workers);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// A handle bound to one worker's private buffer. Cheap to copy; not
  /// usable from other workers.
  class Writer {
   public:
    void task(const TaskRec& r) {
      buf_->tasks.push_back(r);
      on_append(sizeof r);
    }
    void fragment(const FragmentRec& r) {
#ifdef GG_MUT_RECORDER_DROP_FRAGMENT
      // Seeded bug for the mutation smoke-test: the recorder silently drops
      // every task's second fragment, the kind of event-loss bug
      // validate_trace's seq-contiguity check and the cross-engine
      // differential oracle exist to catch. Never enabled in production.
      if (r.seq == 1) return;
#endif
      buf_->fragments.push_back(r);
      on_append(sizeof r);
    }
    void join(const JoinRec& r) {
      buf_->joins.push_back(r);
      on_append(sizeof r);
    }
    void loop(const LoopRec& r) {
      buf_->loops.push_back(r);
      on_append(sizeof r);
    }
    void chunk(const ChunkRec& r) {
      buf_->chunks.push_back(r);
      on_append(sizeof r);
    }
    void bookkeep(const BookkeepRec& r) {
      buf_->bookkeeps.push_back(r);
      on_append(sizeof r);
    }
    void depend(const DependRec& r) {
      buf_->depends.push_back(r);
      on_append(sizeof r);
    }
    void stats(const WorkerStatsRec& r) {
      buf_->worker_stats.push_back(r);
      on_append(sizeof r);
    }

    /// Bytes of record payload held by this worker's buffer — the profiler's
    /// own memory footprint, reported in WorkerStatsRec::trace_bytes and
    /// summed into TraceMeta::trace_buffer_bytes.
    u64 footprint_bytes() const { return buf_->payload_bytes(); }

    /// Total bytes this worker has recorded: the live buffer plus everything
    /// already sealed to the spool. Equals footprint_bytes() when no spool
    /// is attached.
    u64 recorded_bytes() const { return sealed_bytes_ + footprint_bytes(); }

    /// Idle-path hook: seals the buffer if the spool's background flusher
    /// requested a time-based flush. No-op (one branch) without a spool.
    void poll_flush() {
      if (rec_->spool_ != nullptr && rec_->spool_->flush_due(worker_)) seal();
    }

    /// Seals whatever the buffer holds into an epoch frame now.
    void seal() {
      if (rec_->spool_ == nullptr || buf_->empty()) return;
      sealed_bytes_ += footprint_bytes();
      rec_->seal_worker(worker_);
      pending_bytes_ = 0;
    }

   private:
    friend class TraceRecorder;
    Writer(TraceRecorder* rec, u32 worker, spool::RecordBuffer* buf)
        : rec_(rec), worker_(worker), buf_(buf) {}

    void on_append(u64 bytes) {
      if (rec_->spool_ == nullptr) return;
      pending_bytes_ += bytes;
      if (pending_bytes_ >= rec_->spool_epoch_bytes_ ||
          rec_->spool_->flush_due(worker_)) {
        seal();
      }
    }

    TraceRecorder* rec_;
    u32 worker_;
    spool::RecordBuffer* buf_;
    u64 pending_bytes_ = 0;  // buffer bytes since the last seal
    u64 sealed_bytes_ = 0;   // total bytes already spooled by this worker
  };

  Writer writer(int worker);

  /// Attaches a spool sink: subsequent appends seal epoch frames into it.
  /// Must be called before any writer records (typically right after
  /// construction). The sink must outlive the recorder's last append.
  void attach_spool(spool::SpoolSink* sink, u64 epoch_bytes);

  spool::SpoolSink* spool() const { return spool_; }

  /// Thread-safe string interning (cache the result per call site).
  StrId intern(std::string_view s);
  StrId intern_source(std::string_view file, int line, std::string_view func);

  /// Merges all worker buffers into a finalized Trace. The recorder is
  /// empty afterwards and may be reused.
  Trace finish(TraceMeta meta);

  /// Spooled finish: seals every worker's remaining buffer, flushes the
  /// string-table tail and writes the clean footer carrying `meta` (with
  /// trace_buffer_bytes set to the total spooled payload). The caller then
  /// recovers the trace from the spool file — one code path for clean and
  /// crashed runs. Requires an attached spool.
  void finish_to_spool(TraceMeta meta);

 private:
  friend class Writer;

  /// Seals one worker's buffer into the sink (string delta first).
  void seal_worker(u32 worker);

  std::vector<std::unique_ptr<spool::RecordBuffer>> buffers_;
  std::mutex strings_mutex_;
  StringTable strings_;
  spool::SpoolSink* spool_ = nullptr;
  u64 spool_epoch_bytes_ = 64 * 1024;
};

}  // namespace gg
