// TraceRecorder: low-overhead collection of trace records from concurrent
// workers.
//
// Each worker appends records to its private buffer (no synchronization on
// the hot path — the paper's MIR profiler keeps overhead under 2.5% and so
// must we); finish() merges the buffers into a canonical Trace. String
// interning is the only shared mutable state and is mutex-protected; callers
// cache interned ids per call site.
#pragma once

#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#include "trace/trace.hpp"

namespace gg {

class TraceRecorder {
 public:
  explicit TraceRecorder(int num_workers);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// A handle bound to one worker's private buffer. Cheap to copy; not
  /// usable from other workers.
  class Writer {
   public:
    void task(const TaskRec& r) { buf_->tasks.push_back(r); }
    void fragment(const FragmentRec& r) {
#ifdef GG_MUT_RECORDER_DROP_FRAGMENT
      // Seeded bug for the mutation smoke-test: the recorder silently drops
      // every task's second fragment, the kind of event-loss bug
      // validate_trace's seq-contiguity check and the cross-engine
      // differential oracle exist to catch. Never enabled in production.
      if (r.seq == 1) return;
#endif
      buf_->fragments.push_back(r);
    }
    void join(const JoinRec& r) { buf_->joins.push_back(r); }
    void loop(const LoopRec& r) { buf_->loops.push_back(r); }
    void chunk(const ChunkRec& r) { buf_->chunks.push_back(r); }
    void bookkeep(const BookkeepRec& r) { buf_->bookkeeps.push_back(r); }
    void depend(const DependRec& r) { buf_->depends.push_back(r); }
    void stats(const WorkerStatsRec& r) { buf_->worker_stats.push_back(r); }

    /// Bytes of record payload held by this worker's buffer — the profiler's
    /// own memory footprint, reported in WorkerStatsRec::trace_bytes and
    /// summed into TraceMeta::trace_buffer_bytes.
    u64 footprint_bytes() const {
      auto bytes = [](const auto& v) {
        return static_cast<u64>(v.size() * sizeof(v[0]));
      };
      return bytes(buf_->tasks) + bytes(buf_->fragments) +
             bytes(buf_->joins) + bytes(buf_->loops) + bytes(buf_->chunks) +
             bytes(buf_->bookkeeps) + bytes(buf_->depends) +
             bytes(buf_->worker_stats);
    }

   private:
    friend class TraceRecorder;
    struct Buffer {
      std::vector<TaskRec> tasks;
      std::vector<FragmentRec> fragments;
      std::vector<JoinRec> joins;
      std::vector<LoopRec> loops;
      std::vector<ChunkRec> chunks;
      std::vector<BookkeepRec> bookkeeps;
      std::vector<DependRec> depends;
      std::vector<WorkerStatsRec> worker_stats;
    };
    explicit Writer(Buffer* buf) : buf_(buf) {}
    Buffer* buf_;
  };

  Writer writer(int worker);

  /// Thread-safe string interning (cache the result per call site).
  StrId intern(std::string_view s);
  StrId intern_source(std::string_view file, int line, std::string_view func);

  /// Merges all worker buffers into a finalized Trace. The recorder is
  /// empty afterwards and may be reused.
  Trace finish(TraceMeta meta);

 private:
  std::vector<std::unique_ptr<Writer::Buffer>> buffers_;
  std::mutex strings_mutex_;
  StringTable strings_;
};

}  // namespace gg
