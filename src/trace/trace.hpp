// The in-memory trace: every record captured during one profiled execution,
// plus execution metadata. Produced by a TraceRecorder attached to either
// runtime; consumed by the grain-graph builder and metric derivations.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "common/types.hpp"
#include "trace/records.hpp"

namespace gg {

/// Execution-wide facts needed to interpret a trace.
struct TraceMeta {
  std::string program;       ///< e.g. "sort"
  std::string runtime;       ///< e.g. "sim/mir-ws" or "threaded/ws"
  std::string topology;      ///< topology preset name
  int num_workers = 1;       ///< team size used for the run
  int num_cores = 1;         ///< cores of the (possibly simulated) machine
  double ghz = 1.0;          ///< core frequency for cycle<->ns conversion
  TimeNs region_start = 0;   ///< profiled-region bounds (makespan =
  TimeNs region_end = 0;     ///<   region_end - region_start)
  std::vector<std::string> notes;  ///< free-form provenance, e.g. knobs used
  // Profiling-substrate accounting (trace-format v3; defaults describe
  // pre-v3 traces, which were always recorded with profiling on).
  bool profiled = true;           ///< per-grain profiling was enabled
  u64 trace_buffer_bytes = 0;     ///< recorder buffer footprint at finish
  std::string clock_source;       ///< "tsc", "steady_clock", or "virtual"

  // Crash provenance. Spool recovery (trace/spool.hpp) stamps well-known
  // note prefixes instead of bumping the trace format: "recovered ..." for
  // a partial reconstruction, "crash ..." naming the signal/reason, and
  // "supervisor ..." carrying the stall diagnostic. These accessors are how
  // reports and exporters detect and render partial runs.

  /// True when this trace was reconstructed from a spool of a run that did
  /// not shut down cleanly (some records may be missing).
  bool recovered() const;

  /// The "recovered ..." note (frame/epoch accounting), or "" if clean.
  std::string recovery_note() const;

  /// The crash reason ("signal=11 SIGSEGV", "terminate", ...), or "".
  std::string crash_note() const;

  /// The supervisor's stall diagnostic (single line, "; "-joined), or "".
  std::string supervisor_note() const;

  /// The recorder's self-measured overhead note ("overhead_pct=0.42
  /// events=N est_ns_per_event=25"), stamped by the threaded engine when
  /// telemetry is enabled, or "" when the run did not self-measure.
  std::string recorder_note() const;

  /// Parsed overhead percentage from recorder_note(), if present. Reports
  /// compare it against the paper's 2.5% instrumentation budget.
  std::optional<double> recorder_overhead_pct() const;
};

class Trace {
 public:
  TraceMeta meta;

  std::vector<TaskRec> tasks;
  std::vector<FragmentRec> fragments;
  std::vector<JoinRec> joins;
  std::vector<LoopRec> loops;
  std::vector<ChunkRec> chunks;
  std::vector<BookkeepRec> bookkeeps;
  std::vector<DependRec> depends;
  std::vector<WorkerStatsRec> worker_stats;  ///< one per worker; may be empty
                                             ///< (pre-v3 or unprofiled runs)

  StringTable strings;

  /// Sorts all record vectors into canonical order (tasks by uid, fragments
  /// by (task, seq), ...) and builds the task-uid index. Must be called
  /// after recording and after deserialization, before lookups. Lookups on
  /// a not-yet-finalized trace return empty/nullopt instead of aborting, so
  /// partially-ingested traces are safe to probe.
  ///
  /// `threads` parallelizes the sorts (par_stable_sort). Every sort is
  /// stable, so the canonical order — including the relative order of
  /// duplicate-key records a damaged input may contain — is identical for
  /// every thread count.
  void finalize(int threads = 1);

  /// Index of a task by uid after finalize(); nullopt if absent.
  std::optional<size_t> task_index(TaskId uid) const;

  /// Index of a loop by uid after finalize(); nullopt if absent.
  std::optional<size_t> loop_index(LoopId uid) const;

  // Zero-copy range accessors. After finalize() each record vector is sorted
  // with its owner's records contiguous, so one binary search yields a view;
  // these are what the analysis hot paths use (the *_of pointer-vector
  // accessors below allocate per call and remain for convenience).

  /// Fragments of one task in seq order; empty before finalize().
  std::span<const FragmentRec> fragments_span(TaskId uid) const;

  /// Joins of one task in seq order.
  std::span<const JoinRec> joins_span(TaskId uid) const;

  /// Chunks of one loop in (thread, seq_on_thread) order.
  std::span<const ChunkRec> chunks_span(LoopId uid) const;

  /// Book-keeping records of one loop in (thread, seq_on_thread) order.
  std::span<const BookkeepRec> bookkeeps_span(LoopId uid) const;

  /// Fragments of one task in seq order (contiguous after finalize()).
  std::vector<const FragmentRec*> fragments_of(TaskId uid) const;

  /// Joins of one task in seq order.
  std::vector<const JoinRec*> joins_of(TaskId uid) const;

  /// Chunks of one loop.
  std::vector<const ChunkRec*> chunks_of(LoopId uid) const;

  /// Book-keeping records of one loop.
  std::vector<const BookkeepRec*> bookkeeps_of(LoopId uid) const;

  /// Children of a task in creation order. Indexed after finalize()
  /// (O(log n + k) per call rather than a scan over all tasks).
  std::vector<const TaskRec*> children_of(TaskId uid) const;

  /// Dependence predecessors of a task (sorted after finalize()).
  std::vector<TaskId> predecessors_of(TaskId uid) const;

  /// Stats of one worker after finalize(); nullptr if not recorded.
  const WorkerStatsRec* worker_stats_of(u16 worker) const;

  TimeNs makespan() const { return meta.region_end - meta.region_start; }

  /// Total grains (tasks excluding the implicit root, plus chunks) — the
  /// counts the paper quotes per figure ("contains N grains").
  size_t grain_count() const;

  bool finalized() const { return finalized_; }

 private:
  bool finalized_ = false;
  std::vector<std::pair<TaskId, size_t>> task_index_;  // sorted by uid
  std::vector<std::pair<LoopId, size_t>> loop_index_;  // sorted by uid
  std::vector<size_t> children_index_;  // task indices, sorted by
                                        // (parent, child_index)
};

/// Join with the given seq in one task's (seq-sorted) span, or nullptr.
/// Damaged traces can carry duplicate seqs; the *last* occurrence is
/// returned, matching what a forward linear scan that keeps overwriting its
/// match would select — every caller that resolves a fragment's
/// FragmentEnd::Join end_ref must use this so they agree on damaged inputs.
const JoinRec* find_join(std::span<const JoinRec> joins, u64 seq);

/// Interns a "file:line(func)" source identifier, the format the paper uses
/// to name task/loop definitions (e.g. "sparselu.c:246(bmod)").
StrId intern_src(StringTable& strings, std::string_view file, int line,
                 std::string_view func);

}  // namespace gg
