#include "trace/validate.hpp"

#include <algorithm>
#include <sstream>

namespace gg {

namespace {

class Reporter {
 public:
  explicit Reporter(ValidationReport& rep) : rep_(rep) {}

  template <typename... Args>
  void operator()(Violation::Subject subject, u64 id, Args&&... args) {
    std::ostringstream os;
    (os << ... << args);
    rep_.violations.push_back(Violation{subject, id, os.str()});
  }

 private:
  ValidationReport& rep_;
};

}  // namespace

const char* to_string(Violation::Subject s) {
  switch (s) {
    case Violation::Subject::Trace: return "trace";
    case Violation::Subject::Task: return "task";
    case Violation::Subject::Fragment: return "fragment";
    case Violation::Subject::Join: return "join";
    case Violation::Subject::Loop: return "loop";
    case Violation::Subject::Chunk: return "chunk";
    case Violation::Subject::Bookkeep: return "bookkeep";
    case Violation::Subject::Depend: return "depend";
    case Violation::Subject::Worker: return "worker";
  }
  return "?";
}

std::string Violation::where() const {
  if (subject == Subject::Trace) return "trace";
  return std::string(to_string(subject)) + " " + std::to_string(id);
}

std::vector<std::string> ValidationReport::messages() const {
  std::vector<std::string> out;
  out.reserve(violations.size());
  for (const Violation& v : violations) out.push_back(v.message);
  return out;
}

ValidationReport validate_trace_structured(const Trace& trace) {
  ValidationReport rep;
  Reporter report(rep);
  using S = Violation::Subject;
  if (!trace.finalized()) {
    report(S::Trace, 0, "trace not finalized");
    return rep;
  }

  // Root task.
  size_t roots = 0;
  for (const TaskRec& t : trace.tasks) {
    if (t.uid == kRootTask) {
      ++roots;
      if (t.parent != kNoTask)
        report(S::Task, t.uid, "root task has a parent: ", t.parent);
    } else if (t.parent == kNoTask) {
      report(S::Task, t.uid, "non-root task ", t.uid, " has no parent");
    }
  }
  if (roots != 1)
    report(S::Trace, 0, "expected exactly 1 root task, found ", roots);

  // Parent existence + child_index density. Sorted (parent, child_index)
  // pairs group each parent's children contiguously, in the same ascending
  // parent order the per-parent map produced.
  std::vector<std::pair<TaskId, u32>> child_indices;
  child_indices.reserve(trace.tasks.size());
  for (const TaskRec& t : trace.tasks) {
    if (t.uid == kRootTask) continue;
    if (!trace.task_index(t.parent)) {
      report(S::Task, t.uid, "task ", t.uid, " references missing parent ",
             t.parent);
      continue;
    }
    child_indices.emplace_back(t.parent, t.child_index);
  }
  std::sort(child_indices.begin(), child_indices.end());
  for (size_t i = 0; i < child_indices.size();) {
    const TaskId parent = child_indices[i].first;
    size_t j = i;
    bool dense = true;
    for (; j < child_indices.size() && child_indices[j].first == parent; ++j) {
      if (child_indices[j].second != j - i) dense = false;
    }
    if (!dense)
      report(S::Task, parent, "task ", parent, " has non-dense child indices");
    i = j;
  }

  // Fragments per task.
  for (const TaskRec& t : trace.tasks) {
    const auto frags = trace.fragments_span(t.uid);
    if (frags.empty()) {
      report(S::Task, t.uid, "task ", t.uid, " has no fragments");
      continue;
    }
    const auto joins = trace.joins_span(t.uid);
    for (size_t i = 0; i < frags.size(); ++i) {
      const FragmentRec& f = frags[i];
      if (f.seq != i) {
        report(S::Fragment, t.uid, "task ", t.uid, " fragment seq gap at ", i);
        break;
      }
      if (f.end < f.start)
        report(S::Fragment, t.uid, "task ", t.uid, " fragment ", i,
               " ends before start");
      if (i + 1 < frags.size() && frags[i + 1].start < f.end)
        report(S::Fragment, t.uid, "task ", t.uid, " fragments ", i, " and ",
               i + 1, " overlap");
      const bool last = (i + 1 == frags.size());
      if (last && f.end_reason != FragmentEnd::TaskEnd)
        report(S::Fragment, t.uid, "task ", t.uid,
               " last fragment does not end the task");
      if (!last && f.end_reason == FragmentEnd::TaskEnd)
        report(S::Fragment, t.uid, "task ", t.uid, " fragment ", i,
               " ends task before last fragment");
      if (f.end_reason == FragmentEnd::Fork) {
        auto child = trace.task_index(f.end_ref);
        if (!child) {
          report(S::Fragment, t.uid, "task ", t.uid,
                 " fork fragment references missing child ", f.end_ref);
        } else if (trace.tasks[*child].parent != t.uid) {
          report(S::Fragment, t.uid, "task ", t.uid,
                 " fork fragment references task ", f.end_ref,
                 " that is not its child");
        }
      }
      if (f.end_reason == FragmentEnd::Loop) {
        if (!trace.loop_index(f.end_ref))
          report(S::Fragment, t.uid, "task ", t.uid, " fragment ", i,
                 " references missing loop ", f.end_ref);
      }
      if (f.end_reason == FragmentEnd::Join) {
        if (find_join(joins, f.end_ref) == nullptr)
          report(S::Fragment, t.uid, "task ", t.uid, " fragment ", i,
                 " references missing join ", f.end_ref);
      }
    }
  }

  // Loops, chunks, bookkeeping.
  for (const LoopRec& loop : trace.loops) {
    if (loop.iter_end < loop.iter_begin)
      report(S::Loop, loop.uid, "loop ", loop.uid, " has inverted range");
    if (!trace.task_index(loop.enclosing_task))
      report(S::Loop, loop.uid, "loop ", loop.uid, " references missing task ",
             loop.enclosing_task);
    const auto chunks = trace.chunks_span(loop.uid);
    std::vector<std::pair<u64, u64>> ranges;
    ranges.reserve(chunks.size());
    for (const ChunkRec& c : chunks) {
      if (c.iter_begin < loop.iter_begin || c.iter_end > loop.iter_end)
        report(S::Chunk, loop.uid, "loop ", loop.uid,
               " chunk outside iteration range");
      if (c.iter_end <= c.iter_begin)
        report(S::Chunk, loop.uid, "loop ", loop.uid, " has an empty chunk");
      if (c.thread >= loop.num_threads)
        report(S::Chunk, loop.uid, "loop ", loop.uid, " chunk on thread ",
               c.thread, " >= team size ", loop.num_threads);
      ranges.emplace_back(c.iter_begin, c.iter_end);
    }
    std::sort(ranges.begin(), ranges.end());
    u64 cursor = loop.iter_begin;
    bool covered = true;
    for (auto [lo, hi] : ranges) {
      if (lo != cursor) {
        covered = false;
        break;
      }
      cursor = hi;
    }
    if (cursor != loop.iter_end) covered = false;
    if (!covered && loop.iter_end > loop.iter_begin)
      report(S::Loop, loop.uid, "loop ", loop.uid,
             " chunks do not partition the iteration range");
    for (const BookkeepRec& b : trace.bookkeeps_span(loop.uid)) {
      if (b.thread >= loop.num_threads)
        report(S::Bookkeep, loop.uid, "loop ", loop.uid, " bookkeep on thread ",
               b.thread, " >= team size ", loop.num_threads);
    }
  }

  // Chunk/bookkeep loop references.
  for (const ChunkRec& c : trace.chunks) {
    if (!trace.loop_index(c.loop))
      report(S::Chunk, c.loop, "chunk references missing loop ", c.loop);
  }
  for (const BookkeepRec& b : trace.bookkeeps) {
    if (!trace.loop_index(b.loop))
      report(S::Bookkeep, b.loop, "bookkeep references missing loop ", b.loop);
  }

  // Dependences: both endpoints exist, no self-dependence, and the
  // predecessor was spawned first (dependences order siblings in program
  // order, so runtime-assigned uids are monotone across a dependence).
  for (const DependRec& d : trace.depends) {
    if (d.pred == d.succ)
      report(S::Depend, d.succ, "self-dependence on task ", d.pred);
    if (!trace.task_index(d.pred))
      report(S::Depend, d.succ, "dependence references missing pred ", d.pred);
    if (!trace.task_index(d.succ))
      report(S::Depend, d.succ, "dependence references missing succ ", d.succ);
    if (d.pred >= d.succ)
      report(S::Depend, d.succ, "dependence pred ", d.pred,
             " not spawned before succ ", d.succ);
  }

  // Worker stats: one record per worker at most, ids within the team, and
  // internal consistency (a steal always dispatches a task on the thief).
  {
    std::vector<u16> seen;
    for (const WorkerStatsRec& s : trace.worker_stats) {
      if (static_cast<int>(s.worker) >= trace.meta.num_workers)
        report(S::Worker, s.worker, "worker stats for worker ", s.worker,
               " >= team size ", trace.meta.num_workers);
      if (std::find(seen.begin(), seen.end(), s.worker) != seen.end())
        report(S::Worker, s.worker, "duplicate worker stats for worker ",
               s.worker);
      seen.push_back(s.worker);
      if (s.steals > s.tasks_executed)
        report(S::Worker, s.worker, "worker ", s.worker, " stole ", s.steals,
               " tasks but executed only ", s.tasks_executed);
      if (s.tasks_inlined > s.tasks_spawned)
        report(S::Worker, s.worker, "worker ", s.worker, " inlined ",
               s.tasks_inlined, " of only ", s.tasks_spawned, " spawns");
    }
  }

  // Time bounds.
  const TimeNs lo = trace.meta.region_start;
  const TimeNs hi = trace.meta.region_end;
  auto in_bounds = [&](TimeNs s, TimeNs e) {
    return s >= lo && e <= hi && s <= e;
  };
  for (const FragmentRec& f : trace.fragments) {
    if (!in_bounds(f.start, f.end)) {
      report(S::Fragment, f.task, "fragment of task ", f.task,
             " outside region bounds");
      break;
    }
  }
  for (const ChunkRec& c : trace.chunks) {
    if (!in_bounds(c.start, c.end)) {
      report(S::Chunk, c.loop, "chunk of loop ", c.loop,
             " outside region bounds");
      break;
    }
  }
  return rep;
}

std::vector<std::string> validate_trace(const Trace& trace) {
  return validate_trace_structured(trace).messages();
}

}  // namespace gg
