#include "trace/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace gg {

namespace {

template <typename... Args>
void report(std::vector<std::string>& errs, Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  errs.push_back(os.str());
}

}  // namespace

std::vector<std::string> validate_trace(const Trace& trace) {
  std::vector<std::string> errs;
  if (!trace.finalized()) {
    report(errs, "trace not finalized");
    return errs;
  }

  // Root task.
  size_t roots = 0;
  for (const TaskRec& t : trace.tasks) {
    if (t.uid == kRootTask) {
      ++roots;
      if (t.parent != kNoTask)
        report(errs, "root task has a parent: ", t.parent);
    } else if (t.parent == kNoTask) {
      report(errs, "non-root task ", t.uid, " has no parent");
    }
  }
  if (roots != 1) report(errs, "expected exactly 1 root task, found ", roots);

  // Parent existence + child_index density.
  std::map<TaskId, std::vector<u32>> child_indices;
  for (const TaskRec& t : trace.tasks) {
    if (t.uid == kRootTask) continue;
    if (!trace.task_index(t.parent)) {
      report(errs, "task ", t.uid, " references missing parent ", t.parent);
      continue;
    }
    child_indices[t.parent].push_back(t.child_index);
  }
  for (auto& [parent, idx] : child_indices) {
    std::sort(idx.begin(), idx.end());
    for (size_t i = 0; i < idx.size(); ++i) {
      if (idx[i] != i) {
        report(errs, "task ", parent, " has non-dense child indices");
        break;
      }
    }
  }

  // Fragments per task.
  for (const TaskRec& t : trace.tasks) {
    auto frags = trace.fragments_of(t.uid);
    if (frags.empty()) {
      report(errs, "task ", t.uid, " has no fragments");
      continue;
    }
    auto joins = trace.joins_of(t.uid);
    for (size_t i = 0; i < frags.size(); ++i) {
      const FragmentRec& f = *frags[i];
      if (f.seq != i) {
        report(errs, "task ", t.uid, " fragment seq gap at ", i);
        break;
      }
      if (f.end < f.start)
        report(errs, "task ", t.uid, " fragment ", i, " ends before start");
      if (i + 1 < frags.size() && frags[i + 1]->start < f.end)
        report(errs, "task ", t.uid, " fragments ", i, " and ", i + 1,
               " overlap");
      const bool last = (i + 1 == frags.size());
      if (last && f.end_reason != FragmentEnd::TaskEnd)
        report(errs, "task ", t.uid, " last fragment does not end the task");
      if (!last && f.end_reason == FragmentEnd::TaskEnd)
        report(errs, "task ", t.uid, " fragment ", i,
               " ends task before last fragment");
      if (f.end_reason == FragmentEnd::Fork) {
        auto child = trace.task_index(f.end_ref);
        if (!child) {
          report(errs, "task ", t.uid, " fork fragment references missing "
                 "child ", f.end_ref);
        } else if (trace.tasks[*child].parent != t.uid) {
          report(errs, "task ", t.uid, " fork fragment references task ",
                 f.end_ref, " that is not its child");
        }
      }
      if (f.end_reason == FragmentEnd::Loop) {
        if (!trace.loop_index(f.end_ref))
          report(errs, "task ", t.uid, " fragment ", i,
                 " references missing loop ", f.end_ref);
      }
      if (f.end_reason == FragmentEnd::Join) {
        const bool found = std::any_of(
            joins.begin(), joins.end(),
            [&](const JoinRec* j) { return j->seq == f.end_ref; });
        if (!found)
          report(errs, "task ", t.uid, " fragment ", i,
                 " references missing join ", f.end_ref);
      }
    }
  }

  // Loops, chunks, bookkeeping.
  for (const LoopRec& loop : trace.loops) {
    if (loop.iter_end < loop.iter_begin)
      report(errs, "loop ", loop.uid, " has inverted range");
    if (!trace.task_index(loop.enclosing_task))
      report(errs, "loop ", loop.uid, " references missing task ",
             loop.enclosing_task);
    auto chunks = trace.chunks_of(loop.uid);
    std::vector<std::pair<u64, u64>> ranges;
    for (const ChunkRec* c : chunks) {
      if (c->iter_begin < loop.iter_begin || c->iter_end > loop.iter_end)
        report(errs, "loop ", loop.uid, " chunk outside iteration range");
      if (c->iter_end <= c->iter_begin)
        report(errs, "loop ", loop.uid, " has an empty chunk");
      if (c->thread >= loop.num_threads)
        report(errs, "loop ", loop.uid, " chunk on thread ", c->thread,
               " >= team size ", loop.num_threads);
      ranges.emplace_back(c->iter_begin, c->iter_end);
    }
    std::sort(ranges.begin(), ranges.end());
    u64 cursor = loop.iter_begin;
    bool covered = true;
    for (auto [lo, hi] : ranges) {
      if (lo != cursor) {
        covered = false;
        break;
      }
      cursor = hi;
    }
    if (cursor != loop.iter_end) covered = false;
    if (!covered && loop.iter_end > loop.iter_begin)
      report(errs, "loop ", loop.uid,
             " chunks do not partition the iteration range");
    for (const BookkeepRec* b : trace.bookkeeps_of(loop.uid)) {
      if (b->thread >= loop.num_threads)
        report(errs, "loop ", loop.uid, " bookkeep on thread ", b->thread,
               " >= team size ", loop.num_threads);
    }
  }

  // Chunk/bookkeep loop references.
  for (const ChunkRec& c : trace.chunks) {
    if (!trace.loop_index(c.loop))
      report(errs, "chunk references missing loop ", c.loop);
  }
  for (const BookkeepRec& b : trace.bookkeeps) {
    if (!trace.loop_index(b.loop))
      report(errs, "bookkeep references missing loop ", b.loop);
  }

  // Dependences: both endpoints exist, no self-dependence, and the
  // predecessor was spawned first (dependences order siblings in program
  // order, so runtime-assigned uids are monotone across a dependence).
  for (const DependRec& d : trace.depends) {
    if (d.pred == d.succ) report(errs, "self-dependence on task ", d.pred);
    if (!trace.task_index(d.pred))
      report(errs, "dependence references missing pred ", d.pred);
    if (!trace.task_index(d.succ))
      report(errs, "dependence references missing succ ", d.succ);
    if (d.pred >= d.succ)
      report(errs, "dependence pred ", d.pred, " not spawned before succ ",
             d.succ);
  }

  // Worker stats: one record per worker at most, ids within the team, and
  // internal consistency (a steal always dispatches a task on the thief).
  {
    std::vector<u16> seen;
    for (const WorkerStatsRec& s : trace.worker_stats) {
      if (static_cast<int>(s.worker) >= trace.meta.num_workers)
        report(errs, "worker stats for worker ", s.worker, " >= team size ",
               trace.meta.num_workers);
      if (std::find(seen.begin(), seen.end(), s.worker) != seen.end())
        report(errs, "duplicate worker stats for worker ", s.worker);
      seen.push_back(s.worker);
      if (s.steals > s.tasks_executed)
        report(errs, "worker ", s.worker, " stole ", s.steals,
               " tasks but executed only ", s.tasks_executed);
      if (s.tasks_inlined > s.tasks_spawned)
        report(errs, "worker ", s.worker, " inlined ", s.tasks_inlined,
               " of only ", s.tasks_spawned, " spawns");
    }
  }

  // Time bounds.
  const TimeNs lo = trace.meta.region_start;
  const TimeNs hi = trace.meta.region_end;
  auto in_bounds = [&](TimeNs s, TimeNs e) { return s >= lo && e <= hi && s <= e; };
  for (const FragmentRec& f : trace.fragments) {
    if (!in_bounds(f.start, f.end)) {
      report(errs, "fragment of task ", f.task, " outside region bounds");
      break;
    }
  }
  for (const ChunkRec& c : trace.chunks) {
    if (!in_bounds(c.start, c.end)) {
      report(errs, "chunk of loop ", c.loop, " outside region bounds");
      break;
    }
  }
  return errs;
}

}  // namespace gg
