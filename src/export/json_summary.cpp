#include "export/json_summary.hpp"

#include <cmath>
#include <fstream>
#include <ostream>

#include "common/bufwriter.hpp"
#include "common/strings.hpp"

namespace gg {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

std::string num(double v) {
  if (std::isnan(v)) return "null";
  if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
  return strings::trim_double(v, 6);
}

}  // namespace

void write_json_summary(std::ostream& os, const Trace& trace,
                        const Analysis& a, const PipelineTimings* timings) {
  BufWriter buf(1 << 16);
  buf << "{\n";
  buf << "  \"program\": \"" << json_escape(trace.meta.program) << "\",\n";
  buf << "  \"runtime\": \"" << json_escape(trace.meta.runtime) << "\",\n";
  buf << "  \"topology\": \"" << json_escape(trace.meta.topology) << "\",\n";
  buf << "  \"workers\": " << trace.meta.num_workers << ",\n";
  buf << "  \"recovered\": " << (trace.meta.recovered() ? "true" : "false")
      << ",\n";
  if (trace.meta.recovered()) {
    buf << "  \"recovery_note\": \""
        << json_escape(trace.meta.recovery_note()) << "\",\n";
  }
  if (!trace.meta.crash_note().empty()) {
    buf << "  \"crash_note\": \"" << json_escape(trace.meta.crash_note())
        << "\",\n";
  }
  buf << "  \"makespan_ns\": " << trace.makespan() << ",\n";
  buf << "  \"grains\": " << a.grains.size() << ",\n";
  buf << "  \"tasks\": " << (trace.tasks.empty() ? 0 : trace.tasks.size() - 1)
      << ",\n";
  buf << "  \"chunks\": " << trace.chunks.size() << ",\n";
  buf << "  \"graph\": {\"nodes\": " << a.graph.node_count()
      << ", \"edges\": " << a.graph.edge_count() << "},\n";
  buf << "  \"critical_path_ns\": " << a.metrics.critical_path_time << ",\n";
  buf << "  \"region_load_balance\": " << num(a.metrics.region_load_balance)
      << ",\n";
  buf << "  \"loop_load_balance\": {";
  bool first = true;
  for (const auto& [loop, lb] : a.metrics.loop_load_balance) {
    if (!first) buf << ", ";
    first = false;
    buf << "\"" << loop << "\": " << num(lb);
  }
  buf << "},\n";
  buf << "  \"scheduler_health\": {\n";
  buf << "    \"profiled\": " << (trace.meta.profiled ? "true" : "false")
      << ",\n";
  if (!trace.meta.supervisor_note().empty()) {
    buf << "    \"supervisor\": \""
        << json_escape(trace.meta.supervisor_note()) << "\",\n";
  }
  buf << "    \"clock_source\": \"" << json_escape(trace.meta.clock_source)
      << "\",\n";
  buf << "    \"trace_buffer_bytes\": " << trace.meta.trace_buffer_bytes
      << ",\n";
  if (!trace.meta.recorder_note().empty()) {
    buf << "    \"recorder\": \"" << json_escape(trace.meta.recorder_note())
        << "\",\n";
    if (const auto pct = trace.meta.recorder_overhead_pct()) {
      buf << "    \"recorder_overhead_pct\": " << num(*pct) << ",\n";
      buf << "    \"recorder_overhead_budget_exceeded\": "
          << (*pct > 2.5 ? "true" : "false") << ",\n";
    }
  }
  buf << "    \"workers\": [\n";
  for (size_t i = 0; i < trace.worker_stats.size(); ++i) {
    const WorkerStatsRec& s = trace.worker_stats[i];
    buf << "      {\"worker\": " << s.worker
        << ", \"tasks_spawned\": " << s.tasks_spawned
        << ", \"tasks_executed\": " << s.tasks_executed
        << ", \"tasks_inlined\": " << s.tasks_inlined
        << ", \"steals\": " << s.steals
        << ", \"steal_failures\": " << s.steal_failures
        << ", \"cas_failures\": " << s.cas_failures
        << ", \"deque_pushes\": " << s.deque_pushes
        << ", \"deque_pops\": " << s.deque_pops
        << ", \"deque_resizes\": " << s.deque_resizes
        << ", \"taskwait_helps\": " << s.taskwait_helps
        << ", \"idle_ns\": " << s.idle_ns
        << ", \"trace_bytes\": " << s.trace_bytes << "}"
        << (i + 1 < trace.worker_stats.size() ? "," : "") << "\n";
  }
  buf << "    ]\n";
  buf << "  },\n";
  buf << "  \"problems\": {\n";
  for (size_t p = 0; p < kProblemCount; ++p) {
    const ProblemView& v = a.problems[p];
    buf << "    \"" << to_string(v.problem) << "\": {\"count\": "
        << v.flagged_count << ", \"percent\": " << num(v.flagged_percent)
        << "}" << (p + 1 < kProblemCount ? "," : "") << "\n";
  }
  buf << "  },\n";
  buf << "  \"sources\": [\n";
  for (size_t i = 0; i < a.sources.size(); ++i) {
    const SourceProfileRow& r = a.sources[i];
    buf << "    {\"source\": \"" << json_escape(r.source)
        << "\", \"grains\": " << r.grain_count
        << ", \"work_share\": " << num(r.work_share)
        << ", \"median_exec_ns\": " << r.median_exec
        << ", \"low_benefit_percent\": " << num(r.low_benefit_percent)
        << ", \"inflated_percent\": " << num(r.inflated_percent)
        << ", \"poor_mem_percent\": " << num(r.poor_mem_util_percent) << "}"
        << (i + 1 < a.sources.size() ? "," : "") << "\n";
  }
  buf << "  ]";
  if (timings != nullptr) {
    const AnalysisTimings& t = timings->analysis;
    buf << ",\n  \"timings\": {\n";
    buf << "    \"load_ns\": " << timings->load_ns << ",\n";
    buf << "    \"analysis\": {\"graph_ns\": " << t.graph_ns
        << ", \"grains_ns\": " << t.grains_ns
        << ", \"metrics_ns\": " << t.metrics_ns
        << ", \"problems_ns\": " << t.problems_ns
        << ", \"total_ns\": " << t.total_ns() << "},\n";
    const MetricPassTimings& p = t.metric_passes;
    buf << "    \"metric_passes\": {\"benefit_ns\": " << p.benefit_ns
        << ", \"load_balance_ns\": " << p.load_balance_ns
        << ", \"parallelism_ns\": " << p.parallelism_ns
        << ", \"scatter_ns\": " << p.scatter_ns
        << ", \"critical_path_ns\": " << p.critical_path_ns << "},\n";
    buf << "    \"exports\": [";
    for (size_t i = 0; i < timings->exports.size(); ++i) {
      if (i > 0) buf << ", ";
      buf << "{\"name\": \"" << json_escape(timings->exports[i].first)
          << "\", \"wall_ns\": " << timings->exports[i].second << "}";
    }
    buf << "]\n";
    buf << "  }";
  }
  buf << "\n}\n";
  buf.write_to(os);
}

bool write_json_summary_file(const std::string& path, const Trace& trace,
                             const Analysis& analysis,
                             const PipelineTimings* timings) {
  std::ofstream os(path);
  if (!os) return false;
  write_json_summary(os, trace, analysis, timings);
  return static_cast<bool>(os);
}

}  // namespace gg
