#include "export/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>
#include <vector>

#include "common/bufwriter.hpp"
#include "export/json_summary.hpp"

namespace gg {

namespace {

// Trace-event timestamps are microseconds; keep nanosecond resolution with
// three decimals (the format accepts fractional ts/dur).
void us(BufWriter& buf, TimeNs t) {
  char tmp[32];
  const int n =
      std::snprintf(tmp, sizeof tmp, "%.3f", static_cast<double>(t) / 1000.0);
  if (n > 0) buf << std::string_view(tmp, static_cast<size_t>(n));
}

/// Separator management for the event array; callers append the event body
/// to the returned buffer.
class EventSink {
 public:
  explicit EventSink(BufWriter& buf) : buf_(buf) {}

  BufWriter& next() {
    buf_ << (first_ ? "\n  " : ",\n  ");
    first_ = false;
    return buf_;
  }

 private:
  BufWriter& buf_;
  bool first_ = true;
};

/// Emits one counter track from +1/-1 deltas. Samples are the running sum
/// with all deltas at a given timestamp applied before sampling, so a track
/// whose every decrement has a matching earlier-or-equal increment (slice
/// starts/ends, create/finish pairs) never goes negative.
void emit_counter(EventSink& sink, const char* name,
                  std::vector<std::pair<TimeNs, int>> deltas) {
  std::sort(deltas.begin(), deltas.end());
  long long value = 0;
  size_t i = 0;
  while (i < deltas.size()) {
    const TimeNs t = deltas[i].first;
    while (i < deltas.size() && deltas[i].first == t) {
      value += deltas[i].second;
      ++i;
    }
    BufWriter& buf = sink.next();
    buf << "{\"ph\":\"C\",\"pid\":1,\"name\":\"" << name << "\",\"ts\":";
    us(buf, t);
    buf << ",\"args\":{\"value\":" << value << "}}";
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Trace& trace) {
  BufWriter buf(1 << 20);
  buf << "{\"traceEvents\":[";
  EventSink sink(buf);

  // Metadata: name the process after the run, one named thread per worker.
  const std::string pname =
      trace.meta.program + " (" + trace.meta.runtime + ")";
  sink.next() << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
                 "\"args\":{\"name\":\""
              << json_escape(pname) << "\"}}";
  for (int w = 0; w < trace.meta.num_workers; ++w) {
    sink.next() << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << w
                << ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker "
                << w << "\"}}";
  }

  // Recovered (partial) traces: label the process and drop a global
  // instant marker at the crash boundary — the last instant anything was
  // recorded. Everything to its right was lost with the process.
  if (trace.meta.recovered()) {
    sink.next() << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_labels\","
                   "\"args\":{\"labels\":\"recovered (partial trace)\"}}";
    BufWriter& b = sink.next();
    b << "{\"ph\":\"i\",\"pid\":1,\"tid\":0,\"s\":\"g\","
         "\"name\":\"crash boundary\",\"cat\":\"crash\",\"ts\":";
    us(b, trace.meta.region_end);
    b << ",\"args\":{\"recovery\":\""
      << json_escape(trace.meta.recovery_note()) << "\"";
    if (!trace.meta.crash_note().empty()) {
      b << ",\"crash\":\"" << json_escape(trace.meta.crash_note()) << "\"";
    }
    if (!trace.meta.supervisor_note().empty()) {
      b << ",\"supervisor\":\""
        << json_escape(trace.meta.supervisor_note()) << "\"";
    }
    b << "}}";
  }

  // Task fragments: one complete slice each, on the executing worker's
  // track, named by the task's source location.
  for (const FragmentRec& f : trace.fragments) {
    std::string_view name = "task";
    if (auto idx = trace.task_index(f.task))
      name = trace.strings.get(trace.tasks[*idx].src);
    BufWriter& b = sink.next();
    b << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << f.core << ",\"ts\":";
    us(b, f.start);
    b << ",\"dur\":";
    us(b, f.end - f.start);
    b << ",\"name\":\"" << json_escape(name)
      << "\",\"cat\":\"task\",\"args\":{\"task\":" << f.task
      << ",\"seq\":" << f.seq << "}}";
  }

  // Loop chunks: one complete slice each, named by the loop's source.
  for (const ChunkRec& c : trace.chunks) {
    std::string_view name = "chunk";
    if (auto idx = trace.loop_index(c.loop))
      name = trace.strings.get(trace.loops[*idx].src);
    BufWriter& b = sink.next();
    b << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << c.core << ",\"ts\":";
    us(b, c.start);
    b << ",\"dur\":";
    us(b, c.end - c.start);
    b << ",\"name\":\"" << json_escape(name)
      << "\",\"cat\":\"chunk\",\"args\":{\"loop\":" << c.loop
      << ",\"iter_begin\":" << c.iter_begin
      << ",\"iter_end\":" << c.iter_end << "}}";
  }

  // Flow arrows. Spawn edges: creation point on the spawner's track to the
  // first fragment of the child. Join edges: end of the child's last
  // fragment to the end of the parent join that synchronized with it. Flows
  // bind by (cat, id), so the two edge families use distinct categories
  // with the child's uid as the id in both.
  for (const TaskRec& t : trace.tasks) {
    if (t.uid == kRootTask) continue;
    const auto frags = trace.fragments_span(t.uid);
    if (frags.empty()) continue;
    BufWriter& b1 = sink.next();
    b1 << "{\"ph\":\"s\",\"pid\":1,\"tid\":" << t.create_core << ",\"ts\":";
    us(b1, t.create_time);
    b1 << ",\"id\":" << t.uid << ",\"name\":\"spawn\",\"cat\":\"spawn\"}";
    BufWriter& b2 = sink.next();
    b2 << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":"
       << frags.front().core << ",\"ts\":";
    us(b2, frags.front().start);
    b2 << ",\"id\":" << t.uid << ",\"name\":\"spawn\",\"cat\":\"spawn\"}";
    const FragmentRec& last = frags.back();
    const auto joins = trace.joins_span(t.parent);
    const JoinRec* join = nullptr;
    for (const JoinRec& j : joins) {
      if (j.end >= last.end && (join == nullptr || j.end < join->end))
        join = &j;
    }
    if (join != nullptr) {
      BufWriter& b3 = sink.next();
      b3 << "{\"ph\":\"s\",\"pid\":1,\"tid\":" << last.core << ",\"ts\":";
      us(b3, last.end);
      b3 << ",\"id\":" << t.uid << ",\"name\":\"join\",\"cat\":\"join\"}";
      BufWriter& b4 = sink.next();
      b4 << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" << join->core
         << ",\"ts\":";
      us(b4, join->end);
      b4 << ",\"id\":" << t.uid << ",\"name\":\"join\",\"cat\":\"join\"}";
    }
  }

  // Counter tracks: instantaneous parallelism (executing fragments and
  // chunks) and outstanding tasks (created but not yet finished).
  {
    std::vector<std::pair<TimeNs, int>> par;
    par.reserve(2 * (trace.fragments.size() + trace.chunks.size()));
    for (const FragmentRec& f : trace.fragments) {
      par.emplace_back(f.start, +1);
      par.emplace_back(f.end, -1);
    }
    for (const ChunkRec& c : trace.chunks) {
      par.emplace_back(c.start, +1);
      par.emplace_back(c.end, -1);
    }
    emit_counter(sink, "parallelism", std::move(par));

    std::vector<std::pair<TimeNs, int>> out;
    out.reserve(2 * trace.tasks.size());
    for (const TaskRec& t : trace.tasks) {
      if (t.uid == kRootTask) continue;
      const auto frags = trace.fragments_span(t.uid);
      if (frags.empty()) continue;
      out.emplace_back(t.create_time, +1);
      out.emplace_back(frags.back().end, -1);
    }
    emit_counter(sink, "outstanding tasks", std::move(out));
  }

  buf << "\n],\"displayTimeUnit\":\"ns\"}\n";
  buf.write_to(os);
}

bool write_chrome_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, trace);
  return static_cast<bool>(os);
}

}  // namespace gg
