#include "export/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>
#include <vector>

#include "export/json_summary.hpp"

namespace gg {

namespace {

// Trace-event timestamps are microseconds; keep nanosecond resolution with
// three decimals (the format accepts fractional ts/dur).
std::string us(TimeNs t) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(t) / 1000.0);
  return buf;
}

class EventSink {
 public:
  explicit EventSink(std::ostream& os) : os_(os) {}

  void emit(const std::string& event) {
    os_ << (first_ ? "\n  " : ",\n  ") << event;
    first_ = false;
  }

 private:
  std::ostream& os_;
  bool first_ = true;
};

/// Emits one counter track from +1/-1 deltas. Samples are the running sum
/// with all deltas at a given timestamp applied before sampling, so a track
/// whose every decrement has a matching earlier-or-equal increment (slice
/// starts/ends, create/finish pairs) never goes negative.
void emit_counter(EventSink& sink, const char* name,
                  std::vector<std::pair<TimeNs, int>> deltas) {
  std::sort(deltas.begin(), deltas.end());
  long long value = 0;
  size_t i = 0;
  while (i < deltas.size()) {
    const TimeNs t = deltas[i].first;
    while (i < deltas.size() && deltas[i].first == t) {
      value += deltas[i].second;
      ++i;
    }
    sink.emit(std::string("{\"ph\":\"C\",\"pid\":1,\"name\":\"") + name +
              "\",\"ts\":" + us(t) + ",\"args\":{\"value\":" +
              std::to_string(value) + "}}");
  }
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Trace& trace) {
  os << "{\"traceEvents\":[";
  EventSink sink(os);

  // Metadata: name the process after the run, one named thread per worker.
  const std::string pname =
      trace.meta.program + " (" + trace.meta.runtime + ")";
  sink.emit("{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
            "\"args\":{\"name\":\"" + json_escape(pname) + "\"}}");
  for (int w = 0; w < trace.meta.num_workers; ++w) {
    sink.emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(w) +
              ",\"name\":\"thread_name\",\"args\":{\"name\":\"worker " +
              std::to_string(w) + "\"}}");
  }

  // Task fragments: one complete slice each, on the executing worker's
  // track, named by the task's source location.
  for (const FragmentRec& f : trace.fragments) {
    std::string name = "task";
    if (auto idx = trace.task_index(f.task))
      name = std::string(trace.strings.get(trace.tasks[*idx].src));
    sink.emit("{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(f.core) +
              ",\"ts\":" + us(f.start) + ",\"dur\":" + us(f.end - f.start) +
              ",\"name\":\"" + json_escape(name) +
              "\",\"cat\":\"task\",\"args\":{\"task\":" +
              std::to_string(f.task) + ",\"seq\":" + std::to_string(f.seq) +
              "}}");
  }

  // Loop chunks: one complete slice each, named by the loop's source.
  for (const ChunkRec& c : trace.chunks) {
    std::string name = "chunk";
    if (auto idx = trace.loop_index(c.loop))
      name = std::string(trace.strings.get(trace.loops[*idx].src));
    sink.emit("{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(c.core) +
              ",\"ts\":" + us(c.start) + ",\"dur\":" + us(c.end - c.start) +
              ",\"name\":\"" + json_escape(name) +
              "\",\"cat\":\"chunk\",\"args\":{\"loop\":" +
              std::to_string(c.loop) + ",\"iter_begin\":" +
              std::to_string(c.iter_begin) + ",\"iter_end\":" +
              std::to_string(c.iter_end) + "}}");
  }

  // Flow arrows. Spawn edges: creation point on the spawner's track to the
  // first fragment of the child. Join edges: end of the child's last
  // fragment to the end of the parent join that synchronized with it. Flows
  // bind by (cat, id), so the two edge families use distinct categories
  // with the child's uid as the id in both.
  for (const TaskRec& t : trace.tasks) {
    if (t.uid == kRootTask) continue;
    auto frags = trace.fragments_of(t.uid);
    if (frags.empty()) continue;
    const std::string id = std::to_string(t.uid);
    sink.emit("{\"ph\":\"s\",\"pid\":1,\"tid\":" +
              std::to_string(t.create_core) + ",\"ts\":" +
              us(t.create_time) + ",\"id\":" + id +
              ",\"name\":\"spawn\",\"cat\":\"spawn\"}");
    sink.emit("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" +
              std::to_string(frags.front()->core) + ",\"ts\":" +
              us(frags.front()->start) + ",\"id\":" + id +
              ",\"name\":\"spawn\",\"cat\":\"spawn\"}");
    const FragmentRec& last = *frags.back();
    auto joins = trace.joins_of(t.parent);
    const JoinRec* join = nullptr;
    for (const JoinRec* j : joins) {
      if (j->end >= last.end && (join == nullptr || j->end < join->end))
        join = j;
    }
    if (join != nullptr) {
      sink.emit("{\"ph\":\"s\",\"pid\":1,\"tid\":" +
                std::to_string(last.core) + ",\"ts\":" + us(last.end) +
                ",\"id\":" + id + ",\"name\":\"join\",\"cat\":\"join\"}");
      sink.emit("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":" +
                std::to_string(join->core) + ",\"ts\":" + us(join->end) +
                ",\"id\":" + id + ",\"name\":\"join\",\"cat\":\"join\"}");
    }
  }

  // Counter tracks: instantaneous parallelism (executing fragments and
  // chunks) and outstanding tasks (created but not yet finished).
  {
    std::vector<std::pair<TimeNs, int>> par;
    par.reserve(2 * (trace.fragments.size() + trace.chunks.size()));
    for (const FragmentRec& f : trace.fragments) {
      par.emplace_back(f.start, +1);
      par.emplace_back(f.end, -1);
    }
    for (const ChunkRec& c : trace.chunks) {
      par.emplace_back(c.start, +1);
      par.emplace_back(c.end, -1);
    }
    emit_counter(sink, "parallelism", std::move(par));

    std::vector<std::pair<TimeNs, int>> out;
    for (const TaskRec& t : trace.tasks) {
      if (t.uid == kRootTask) continue;
      auto frags = trace.fragments_of(t.uid);
      if (frags.empty()) continue;
      out.emplace_back(t.create_time, +1);
      out.emplace_back(frags.back()->end, -1);
    }
    emit_counter(sink, "outstanding tasks", std::move(out));
  }

  os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

bool write_chrome_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os, trace);
  return static_cast<bool>(os);
}

}  // namespace gg
