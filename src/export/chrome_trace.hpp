// Chrome trace-event JSON export (loadable in Perfetto / about://tracing):
// one timeline track per worker with a complete slice per task fragment and
// loop chunk, flow arrows along spawn and join edges, and counter tracks
// for instantaneous parallelism and outstanding (created, unfinished)
// tasks. Complements the grain-graph exports with a familiar wall-clock
// timeline view of the same execution.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace gg {

void write_chrome_trace(std::ostream& os, const Trace& trace);

bool write_chrome_trace_file(const std::string& path, const Trace& trace);

}  // namespace gg
