#include "export/graphml.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>

#include "common/bufwriter.hpp"
#include "common/strings.hpp"

namespace gg {

namespace {

struct NodeStyle {
  std::string fill;
  std::string border = "#000000";
  std::string shape = "rectangle";
  double width = 12, height = 14;
};

std::string kind_color(NodeKind k) {
  switch (k) {
    case NodeKind::Fragment: return "#9dc6e0";  // light blue
    case NodeKind::Fork: return "#66bb66";      // green
    case NodeKind::Join: return "#ff9933";      // orange
    case NodeKind::Bookkeep: return "#40e0d0";  // turquoise
    case NodeKind::Chunk: return "#77cc77";     // green rectangle
  }
  return "#cccccc";
}

}  // namespace

void write_graphml(std::ostream& os, const GrainGraph& graph,
                   const Trace& trace, const GrainTable* grains,
                   const MetricsResult* metrics, const GraphMlOptions& opts) {
  const auto& nodes = graph.nodes();
  const auto& edges = graph.edges();

  // Map graph nodes to grain-table indices (for problem-view coloring).
  std::optional<GrainLookup> lookup;
  if (grains != nullptr) lookup.emplace(*grains);
  auto grain_index = [&](const GraphNode& n) -> std::optional<size_t> {
    if (!lookup.has_value()) return std::nullopt;
    return lookup->row_of(n);
  };

  // Problem view (optional).
  std::optional<ProblemView> view;
  if (opts.view.has_value() && grains != nullptr && metrics != nullptr) {
    const ProblemThresholds th = ProblemThresholds::defaults(
        trace.meta.num_workers, Topology::opteron48());
    view = evaluate_problem(*opts.view, *grains, *metrics, th);
  }

  // Layout: depth = longest path from a source (in edges), column = running
  // index within the depth level.
  std::vector<u32> depth(nodes.size(), 0);
  const bool has_topo = graph.topo_order().size() == nodes.size();
  u32 max_depth = 0;
  if (has_topo) {
    for (u32 v : graph.topo_order()) {
      for (u32 e : graph.out_edges(v)) {
        depth[edges[e].to] = std::max(depth[edges[e].to], depth[v] + 1);
      }
    }
    for (u32 d : depth) max_depth = std::max(max_depth, d);
  }
  std::vector<u32> col_at_depth(static_cast<size_t>(max_depth) + 1, 0);

  BufWriter buf(1 << 20);
  buf << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\"\n"
      << "         xmlns:y=\"http://www.yworks.com/xml/graphml\">\n"
      << "  <key id=\"d0\" for=\"node\" yfiles.type=\"nodegraphics\"/>\n"
      << "  <key id=\"d1\" for=\"edge\" yfiles.type=\"edgegraphics\"/>\n"
      << "  <key id=\"kind\" for=\"node\" attr.name=\"kind\" attr.type=\"string\"/>\n"
      << "  <key id=\"src\" for=\"node\" attr.name=\"source\" attr.type=\"string\"/>\n"
      << "  <key id=\"exec\" for=\"node\" attr.name=\"exec_ns\" attr.type=\"long\"/>\n"
      << "  <key id=\"grp\" for=\"node\" attr.name=\"group_size\" attr.type=\"int\"/>\n"
      << "  <key id=\"ekind\" for=\"edge\" attr.name=\"kind\" attr.type=\"string\"/>\n"
      << "  <graph id=\"" << strings::xml_escape(
             opts.title.empty() ? trace.meta.program : opts.title)
      << "\" edgedefault=\"directed\">\n";

  for (u32 i = 0; i < nodes.size(); ++i) {
    const GraphNode& n = nodes[i];
    NodeStyle style;
    style.fill = kind_color(n.kind);
    if (view.has_value()) {
      const auto gi = grain_index(n);
      if (gi.has_value()) {
        style.fill = view->flagged[*gi] ? severity_color(view->severity[*gi])
                                        : dimmed_color();
      } else {
        style.fill = dimmed_color();
      }
    }
    bool on_cp = false;
    if (opts.mark_critical_path && metrics != nullptr) {
      const auto gi = grain_index(n);
      if (gi.has_value()) on_cp = metrics->per_grain[*gi].on_critical_path;
    }
    if (on_cp) style.border = "#ff0000";
    // Rectangle length linearly scaled to execution time, log-compressed
    // beyond 100 px so huge grains stay on screen.
    const double ms = static_cast<double>(n.busy) / 1e6;
    double len = opts.px_per_ms * ms;
    if (len > 100.0) len = 100.0 + 40.0 * std::log2(len / 100.0);
    style.width = std::max(6.0, len);
    if (n.kind == NodeKind::Fork || n.kind == NodeKind::Join) {
      style.shape = "ellipse";
      style.width = 10;
      style.height = 10;
    }
    const double x = 30.0 * col_at_depth[depth[i]]++;
    const double y = 40.0 * depth[i];

    std::string label;
    if (n.kind == NodeKind::Fragment || n.kind == NodeKind::Chunk) {
      label = std::string(trace.strings.get(n.src));
      if (n.kind == NodeKind::Chunk) {
        label += " [";
        label += std::to_string(n.iter_begin);
        label += ',';
        label += std::to_string(n.iter_end);
        label += ')';
      }
      if (n.group_size > 1) {
        label += " x";
        label += std::to_string(n.group_size);
      }
    }

    buf << "    <node id=\"n" << i << "\">\n"
        << "      <data key=\"kind\">" << to_string(n.kind) << "</data>\n"
        << "      <data key=\"src\">"
        << strings::xml_escape(trace.strings.get(n.src)) << "</data>\n"
        << "      <data key=\"exec\">" << n.busy << "</data>\n"
        << "      <data key=\"grp\">" << n.group_size << "</data>\n"
        << "      <data key=\"d0\"><y:ShapeNode>"
        << "<y:Geometry height=\"" << style.height << "\" width=\""
        << style.width << "\" x=\"" << x << "\" y=\"" << y << "\"/>"
        << "<y:Fill color=\"" << style.fill << "\" transparent=\"false\"/>"
        << "<y:BorderStyle color=\"" << style.border
        << "\" type=\"line\" width=\"" << (on_cp ? 2.0 : 1.0) << "\"/>"
        << "<y:NodeLabel visible=\"" << (label.empty() ? "false" : "true")
        << "\">" << strings::xml_escape(label) << "</y:NodeLabel>"
        << "<y:Shape type=\"" << style.shape << "\"/>"
        << "</y:ShapeNode></data>\n"
        << "    </node>\n";
  }

  for (u32 e = 0; e < edges.size(); ++e) {
    const GraphEdge& ed = edges[e];
    const char* color = ed.kind == EdgeKind::Creation     ? "#008000"
                        : ed.kind == EdgeKind::Join       ? "#ff8000"
                        : ed.kind == EdgeKind::Dependence ? "#8000ff"
                                                          : "#000000";
    const char* style =
        ed.kind == EdgeKind::Dependence ? "dashed" : "line";
    buf << "    <edge id=\"e" << e << "\" source=\"n" << ed.from
        << "\" target=\"n" << ed.to << "\">\n"
        << "      <data key=\"ekind\">" << to_string(ed.kind) << "</data>\n"
        << "      <data key=\"d1\"><y:PolyLineEdge><y:LineStyle color=\""
        << color << "\" type=\"" << style << "\" width=\"1.0\"/>"
        << "<y:Arrows source=\"none\" target=\"standard\"/>"
        << "</y:PolyLineEdge></data>\n"
        << "    </edge>\n";
  }
  buf << "  </graph>\n</graphml>\n";
  buf.write_to(os);
}

bool write_graphml_file(const std::string& path, const GrainGraph& graph,
                        const Trace& trace, const GrainTable* grains,
                        const MetricsResult* metrics,
                        const GraphMlOptions& opts) {
  std::ofstream os(path);
  if (!os) return false;
  write_graphml(os, graph, trace, grains, metrics, opts);
  return static_cast<bool>(os);
}

}  // namespace gg
