#include "export/dot.hpp"

#include <fstream>
#include <ostream>

#include "common/strings.hpp"

namespace gg {

namespace {

std::string dot_escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

void write_dot(std::ostream& os, const GrainGraph& graph, const Trace& trace,
               const DotOptions& opts) {
  os << "digraph \"" << dot_escape(opts.title.empty() ? trace.meta.program
                                                      : opts.title)
     << "\" {\n  rankdir=TB;\n  node [fontsize=9];\n";
  const auto& nodes = graph.nodes();
  for (u32 i = 0; i < nodes.size(); ++i) {
    const GraphNode& n = nodes[i];
    std::string shape = "box", color = "lightblue";
    switch (n.kind) {
      case NodeKind::Fork: shape = "circle"; color = "green"; break;
      case NodeKind::Join: shape = "circle"; color = "orange"; break;
      case NodeKind::Bookkeep: shape = "box"; color = "turquoise"; break;
      case NodeKind::Chunk: shape = "box"; color = "palegreen"; break;
      case NodeKind::Fragment: break;
    }
    os << "  n" << i << " [shape=" << shape << ", style=filled, fillcolor=\""
       << color << "\"";
    if (opts.labels) {
      std::string label{trace.strings.get(n.src)};
      if (n.kind == NodeKind::Chunk)
        label += "\\n[" + std::to_string(n.iter_begin) + "," +
                 std::to_string(n.iter_end) + ")";
      if (n.kind == NodeKind::Fragment || n.kind == NodeKind::Chunk)
        label += "\\n" + strings::human_time(n.busy);
      if (n.group_size > 1) label += " x" + std::to_string(n.group_size);
      os << ", label=\"" << dot_escape(label) << "\"";
    } else {
      os << ", label=\"\"";
    }
    os << "];\n";
  }
  for (const GraphEdge& e : graph.edges()) {
    const char* color = e.kind == EdgeKind::Creation     ? "green"
                        : e.kind == EdgeKind::Join       ? "orange"
                        : e.kind == EdgeKind::Dependence ? "purple"
                                                         : "black";
    os << "  n" << e.from << " -> n" << e.to << " [color=" << color
       << (e.kind == EdgeKind::Dependence ? ", style=dashed" : "") << "];\n";
  }
  os << "}\n";
}

bool write_dot_file(const std::string& path, const GrainGraph& graph,
                    const Trace& trace, const DotOptions& opts) {
  std::ofstream os(path);
  if (!os) return false;
  write_dot(os, graph, trace, opts);
  return static_cast<bool>(os);
}

}  // namespace gg
