// GraphML export (paper §4.2: "The grain graph is stored as a GRAPHML file
// that is viewable on off-the-shelf, large-scale graph viewers such as yEd
// and Cytoscape").
//
// Visual encoding follows §3.1: grains are rectangles with length linearly
// scaled to execution time; fork nodes are green, join nodes orange,
// book-keeping turquoise; problem views color flagged grains with a
// red-to-yellow severity gradient and dim the rest; critical-path nodes get
// a red border. Output includes yEd's <y:ShapeNode> extension (yEd renders
// shapes/colors directly) alongside plain data keys (Cytoscape reads those).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "analysis/problems.hpp"
#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"

namespace gg {

struct GraphMlOptions {
  /// Color grains by this problem view (red-to-yellow severity; others are
  /// dimmed). nullopt = color by node kind only.
  std::optional<Problem> view;
  /// Mark critical-path nodes/edges red (needs metrics).
  bool mark_critical_path = true;
  /// Rectangle length per millisecond of execution time (log-compressed
  /// above 100 px to keep big grains on screen).
  double px_per_ms = 40.0;
  std::string title;
};

/// Writes the graph. `grains` and `metrics` may be null when exporting a
/// reduced graph for structure only (no problem view / critical path then).
void write_graphml(std::ostream& os, const GrainGraph& graph,
                   const Trace& trace, const GrainTable* grains,
                   const MetricsResult* metrics, const GraphMlOptions& opts);

bool write_graphml_file(const std::string& path, const GrainGraph& graph,
                        const Trace& trace, const GrainTable* grains,
                        const MetricsResult* metrics,
                        const GraphMlOptions& opts);

}  // namespace gg
