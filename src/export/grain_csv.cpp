#include "export/grain_csv.hpp"

#include <fstream>
#include <ostream>
#include <string_view>

#include "common/bufwriter.hpp"
#include "common/check.hpp"
#include "common/strings.hpp"

namespace gg {

namespace {

/// Appends one CSV cell with the same quoting rules as Table::to_csv():
/// quote when the cell contains a comma, quote, or newline; double embedded
/// quotes.
void csv_cell(BufWriter& buf, std::string_view cell) {
  if (cell.find_first_of(",\"\n") == std::string_view::npos) {
    buf << cell;
    return;
  }
  buf << '"';
  for (char c : cell) {
    if (c == '"') buf << '"';
    buf << c;
  }
  buf << '"';
}

}  // namespace

void write_grain_csv(std::ostream& os, const Trace& trace,
                     const GrainTable& grains, const MetricsResult& metrics) {
  GG_CHECK(metrics.per_grain.size() == grains.size());
  BufWriter buf(1 << 20);
  buf << "path,kind,source,core,start_ns,end_ns,exec_ns,compute_cycles,"
         "stall_cycles,cache_misses,bytes,creation_cost_ns,sync_cost_ns,"
         "fragments,children,inlined,parallel_benefit,work_deviation,"
         "mem_util,inst_parallelism,inst_parallelism_opt,scatter,"
         "on_critical_path\n";
  const auto& table = grains.grains();
  for (size_t i = 0; i < table.size(); ++i) {
    const Grain& g = table[i];
    const GrainMetrics& m = metrics.per_grain[i];
    csv_cell(buf, g.path);
    buf << ',' << (g.kind == GrainKind::Task ? "task" : "chunk") << ',';
    csv_cell(buf, trace.strings.get(g.src));
    buf << ',' << g.core << ',' << g.first_start << ',' << g.last_end << ','
        << g.exec_time << ',' << g.counters.compute << ','
        << g.counters.stall << ',' << g.counters.cache_misses << ','
        << g.counters.bytes_accessed << ',' << g.creation_cost << ','
        << g.sync_cost << ',' << g.n_fragments << ',' << g.n_children << ','
        << (g.inlined ? "1" : "0") << ',';
    csv_cell(buf, strings::trim_double(m.parallel_benefit, 4));
    buf << ',';
    csv_cell(buf, strings::trim_double(m.work_deviation, 4));
    buf << ',';
    csv_cell(buf, strings::trim_double(m.mem_util, 4));
    buf << ',' << m.inst_parallelism << ',' << m.inst_parallelism_optimistic
        << ',';
    csv_cell(buf, strings::trim_double(m.scatter, 2));
    buf << ',' << (m.on_critical_path ? "1" : "0") << '\n';
  }
  buf.write_to(os);
}

bool write_grain_csv_file(const std::string& path, const Trace& trace,
                          const GrainTable& grains,
                          const MetricsResult& metrics) {
  std::ofstream os(path);
  if (!os) return false;
  write_grain_csv(os, trace, grains, metrics);
  return static_cast<bool>(os);
}

}  // namespace gg
