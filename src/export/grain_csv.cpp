#include "export/grain_csv.hpp"

#include <fstream>
#include <ostream>

#include "common/check.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace gg {

void write_grain_csv(std::ostream& os, const Trace& trace,
                     const GrainTable& grains, const MetricsResult& metrics) {
  GG_CHECK(metrics.per_grain.size() == grains.size());
  Table t;
  t.set_header({"path", "kind", "source", "core", "start_ns", "end_ns",
                "exec_ns", "compute_cycles", "stall_cycles", "cache_misses",
                "bytes", "creation_cost_ns", "sync_cost_ns", "fragments",
                "children", "inlined", "parallel_benefit", "work_deviation",
                "mem_util", "inst_parallelism", "inst_parallelism_opt",
                "scatter", "on_critical_path"});
  const auto& table = grains.grains();
  for (size_t i = 0; i < table.size(); ++i) {
    const Grain& g = table[i];
    const GrainMetrics& m = metrics.per_grain[i];
    t.add_row({g.path,
               g.kind == GrainKind::Task ? "task" : "chunk",
               std::string(trace.strings.get(g.src)),
               std::to_string(g.core),
               std::to_string(g.first_start),
               std::to_string(g.last_end),
               std::to_string(g.exec_time),
               std::to_string(g.counters.compute),
               std::to_string(g.counters.stall),
               std::to_string(g.counters.cache_misses),
               std::to_string(g.counters.bytes_accessed),
               std::to_string(g.creation_cost),
               std::to_string(g.sync_cost),
               std::to_string(g.n_fragments),
               std::to_string(g.n_children),
               g.inlined ? "1" : "0",
               strings::trim_double(m.parallel_benefit, 4),
               strings::trim_double(m.work_deviation, 4),
               strings::trim_double(m.mem_util, 4),
               std::to_string(m.inst_parallelism),
               std::to_string(m.inst_parallelism_optimistic),
               strings::trim_double(m.scatter, 2),
               m.on_critical_path ? "1" : "0"});
  }
  os << t.to_csv();
}

bool write_grain_csv_file(const std::string& path, const Trace& trace,
                          const GrainTable& grains,
                          const MetricsResult& metrics) {
  std::ofstream os(path);
  if (!os) return false;
  write_grain_csv(os, trace, grains, metrics);
  return static_cast<bool>(os);
}

}  // namespace gg
