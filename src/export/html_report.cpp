#include "export/html_report.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "analysis/recommend.hpp"
#include "common/strings.hpp"

namespace gg {

namespace {

std::string esc(std::string_view s) { return strings::xml_escape(s); }

/// Inline SVG polyline of the optimistic-parallelism timeline, with a line
/// marking the core count.
void emit_parallelism_svg(std::ostream& os, const MetricsResult& m,
                          int cores) {
  const auto& par = m.parallelism_optimistic;
  if (par.empty()) return;
  const int w = 720, h = 140, pad = 24;
  u32 peak = static_cast<u32>(cores);
  for (u32 v : par) peak = std::max(peak, v);
  os << "<svg width='" << w << "' height='" << h
     << "' style='background:#fafafa;border:1px solid #ddd'>";
  // Core-count guide line.
  const double core_y =
      h - pad - (static_cast<double>(cores) / peak) * (h - 2 * pad);
  os << "<line x1='" << pad << "' y1='" << core_y << "' x2='" << w - pad
     << "' y2='" << core_y
     << "' stroke='#cc3333' stroke-dasharray='4 3'/>"
     << "<text x='" << w - pad - 60 << "' y='" << core_y - 4
     << "' font-size='10' fill='#cc3333'>" << cores << " cores</text>";
  os << "<polyline fill='none' stroke='#3366aa' stroke-width='1.5' points='";
  const size_t samples = std::min<size_t>(par.size(), 720);
  for (size_t i = 0; i < samples; ++i) {
    const size_t idx = i * par.size() / samples;
    const double x =
        pad + (static_cast<double>(i) / samples) * (w - 2 * pad);
    const double y =
        h - pad - (static_cast<double>(par[idx]) / peak) * (h - 2 * pad);
    os << x << ',' << y << ' ';
  }
  os << "'/></svg>";
}

}  // namespace

void write_html_report(std::ostream& os, const Trace& trace,
                       const Analysis& a) {
  os << "<!DOCTYPE html><html><head><meta charset='utf-8'><title>grain graph: "
     << esc(trace.meta.program) << "</title><style>"
     << "body{font:14px/1.4 sans-serif;margin:2em;max-width:60em}"
     << "table{border-collapse:collapse;margin:1em 0}"
     << "td,th{border:1px solid #ccc;padding:3px 8px;text-align:right}"
     << "th{background:#eee}td:first-child,th:first-child{text-align:left}"
     << ".bad{background:#ffd9d9}.ok{background:#e6f4e6}"
     << "</style></head><body>";
  os << "<h1>grain graph report: " << esc(trace.meta.program) << "</h1>";
  os << "<p>" << trace.meta.num_workers << " workers on "
     << esc(trace.meta.topology) << " (" << esc(trace.meta.runtime)
     << ") &mdash; makespan <b>" << strings::human_time(trace.makespan())
     << "</b>, " << a.grains.size() << " grains, critical path "
     << strings::human_time(a.metrics.critical_path_time)
     << ", average parallelism "
     << strings::trim_double(a.metrics.avg_parallelism, 1) << "</p>";
  if (trace.meta.recovered()) {
    os << "<p class='bad' style='padding:4px 8px'><b>partial trace</b>: "
       << esc(trace.meta.recovery_note());
    if (!trace.meta.crash_note().empty()) {
      os << " &mdash; " << esc(trace.meta.crash_note());
    }
    os << ". Grains past the crash boundary were never recorded; every "
       << "total below is a lower bound.</p>";
  }

  os << "<h2>Instantaneous parallelism</h2>";
  emit_parallelism_svg(os, a.metrics, trace.meta.num_workers);

  const auto recs = recommend(trace, a);
  if (!recs.empty()) {
    os << "<h2>Recommendations</h2><ol>";
    for (const Recommendation& r : recs) {
      os << "<li><b>" << esc(r.headline) << "</b><br><small>" 
         << esc(r.rationale) << " &mdash; cf. " << esc(r.paper_ref)
         << "</small></li>";
    }
    os << "</ol>";
  }
  os << "<h2>Problems</h2><table><tr><th>problem</th><th>affected grains"
     << "</th><th>percent</th></tr>";
  for (const ProblemView& v : a.problems) {
    os << "<tr><td>" << esc(to_string(v.problem)) << "</td><td"
       << (v.flagged_percent > 25.0 ? " class='bad'" : " class='ok'") << ">"
       << v.flagged_count << "</td><td>"
       << strings::trim_double(v.flagged_percent, 1) << "%</td></tr>";
  }
  os << "</table>";

  os << "<h2>Grains by definition</h2><table><tr><th>definition</th>"
     << "<th>grains</th><th>work %</th><th>median exec</th>"
     << "<th>low benefit %</th><th>inflated %</th><th>poor mem %</th></tr>";
  for (const SourceProfileRow& r : a.sources) {
    os << "<tr><td>" << esc(r.source) << "</td><td>" << r.grain_count
       << "</td><td>" << strings::trim_double(100.0 * r.work_share, 1)
       << "</td><td>" << strings::human_time(r.median_exec) << "</td><td"
       << (r.low_benefit_percent > 25.0 ? " class='bad'" : "") << ">"
       << strings::trim_double(r.low_benefit_percent, 1) << "</td><td"
       << (r.inflated_percent > 25.0 ? " class='bad'" : "") << ">"
       << strings::trim_double(r.inflated_percent, 1) << "</td><td"
       << (r.poor_mem_util_percent > 25.0 ? " class='bad'" : "") << ">"
       << strings::trim_double(r.poor_mem_util_percent, 1) << "</td></tr>";
  }
  os << "</table>";

  os << "<h2>Loops</h2>";
  if (trace.loops.empty()) {
    os << "<p>(no parallel for-loops)</p>";
  } else {
    os << "<table><tr><th>loop</th><th>schedule</th><th>chunks</th>"
       << "<th>team</th><th>load balance</th></tr>";
    for (const LoopRec& loop : trace.loops) {
      const double lb = a.metrics.loop_load_balance.count(loop.uid)
                            ? a.metrics.loop_load_balance.at(loop.uid)
                            : 0.0;
      os << "<tr><td>" << esc(trace.strings.get(loop.src)) << "</td><td>"
         << to_string(loop.sched) << "</td><td>"
         << trace.chunks_of(loop.uid).size() << "</td><td>"
         << loop.num_threads << "</td><td"
         << (lb > 1.5 ? " class='bad'" : "") << ">"
         << strings::trim_double(lb, 2) << "</td></tr>";
    }
    os << "</table>";
  }
  os << "<h2>Scheduler health</h2>";
  if (!trace.meta.supervisor_note().empty()) {
    os << "<p class='bad'>" << esc(trace.meta.supervisor_note()) << "</p>";
  }
  if (!trace.meta.crash_note().empty()) {
    os << "<p class='bad'>" << esc(trace.meta.crash_note()) << "</p>";
  }
  os << "<p>profiling " << (trace.meta.profiled ? "on" : "off")
     << ", clock source <b>"
     << esc(trace.meta.clock_source.empty() ? "unknown"
                                            : trace.meta.clock_source)
     << "</b>, recorder buffers " << trace.meta.trace_buffer_bytes
     << " bytes</p>";
  if (!trace.meta.recorder_note().empty()) {
    const auto pct = trace.meta.recorder_overhead_pct();
    const bool busted = pct.has_value() && *pct > 2.5;
    os << "<p" << (busted ? " class='bad'" : "") << ">recorder "
       << esc(trace.meta.recorder_note())
       << (busted ? " &mdash; exceeds the paper's 2.5% overhead budget" : "")
       << "</p>";
  }
  if (trace.worker_stats.empty()) {
    os << "<p>(no per-worker scheduler stats in this trace)</p>";
  } else {
    os << "<table><tr><th>worker</th><th>spawned</th><th>executed</th>"
       << "<th>inlined</th><th>steals</th><th>steal fails</th>"
       << "<th>CAS fails</th><th>pushes</th><th>pops</th><th>resizes</th>"
       << "<th>helps</th><th>idle</th><th>trace bytes</th></tr>";
    for (const WorkerStatsRec& s : trace.worker_stats) {
      os << "<tr><td>" << s.worker << "</td><td>" << s.tasks_spawned
         << "</td><td>" << s.tasks_executed << "</td><td>" << s.tasks_inlined
         << "</td><td>" << s.steals << "</td><td>" << s.steal_failures
         << "</td><td>" << s.cas_failures << "</td><td>" << s.deque_pushes
         << "</td><td>" << s.deque_pops << "</td><td>" << s.deque_resizes
         << "</td><td>" << s.taskwait_helps << "</td><td>"
         << strings::human_time(s.idle_ns) << "</td><td>" << s.trace_bytes
         << "</td></tr>";
    }
    os << "</table>";
  }
  os << "<p style='color:#888'>generated by graingraphs (PPoPP'16 "
     << "reproduction)</p></body></html>\n";
}

bool write_html_report_file(const std::string& path, const Trace& trace,
                            const Analysis& analysis) {
  std::ofstream os(path);
  if (!os) return false;
  write_html_report(os, trace, analysis);
  return static_cast<bool>(os);
}

}  // namespace gg
