// Self-contained HTML report: the textual analysis report plus an inline
// SVG instantaneous-parallelism timeline and per-problem/source tables —
// one file to attach to a bug report or CI artifact, no viewer required.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/report.hpp"
#include "trace/trace.hpp"

namespace gg {

void write_html_report(std::ostream& os, const Trace& trace,
                       const Analysis& analysis);

bool write_html_report_file(const std::string& path, const Trace& trace,
                            const Analysis& analysis);

}  // namespace gg
