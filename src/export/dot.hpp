// Graphviz DOT export — a quick-look alternative to GraphML for small
// graphs (paper figures 2/3-scale examples render well with `dot -Tsvg`).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/grain_graph.hpp"
#include "trace/trace.hpp"

namespace gg {

struct DotOptions {
  bool labels = true;  ///< node labels (source + time)
  std::string title;
};

void write_dot(std::ostream& os, const GrainGraph& graph, const Trace& trace,
               const DotOptions& opts = {});

bool write_dot_file(const std::string& path, const GrainGraph& graph,
                    const Trace& trace, const DotOptions& opts = {});

}  // namespace gg
