// Machine-readable JSON summary of an analysis: run metadata, headline
// metrics, per-problem counts, and the per-source table. Complements the
// GraphML/CSV exports for dashboards and regression tracking.
#pragma once

#include <iosfwd>
#include <string>

#include "analysis/report.hpp"
#include "trace/trace.hpp"

namespace gg {

/// When `timings` is non-null a "timings" object is appended: trace-load
/// wall time, per-stage analysis breakdown (including per-metric-pass
/// times), and each export that ran before this one. The default (null)
/// emits byte-identical output to prior versions.
void write_json_summary(std::ostream& os, const Trace& trace,
                        const Analysis& analysis,
                        const PipelineTimings* timings = nullptr);

bool write_json_summary_file(const std::string& path, const Trace& trace,
                             const Analysis& analysis,
                             const PipelineTimings* timings = nullptr);

/// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string json_escape(std::string_view s);

}  // namespace gg
