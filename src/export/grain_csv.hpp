// CSV export of the grain table + derived metrics — the "clicking on a
// grain displays its timing, source location, and other properties" data
// (§4.2), in bulk, for spreadsheet/pandas analysis.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace gg {

/// One row per grain: identity, timing, counters, and all derived metrics.
void write_grain_csv(std::ostream& os, const Trace& trace,
                     const GrainTable& grains, const MetricsResult& metrics);

bool write_grain_csv_file(const std::string& path, const Trace& trace,
                          const GrainTable& grains,
                          const MetricsResult& metrics);

}  // namespace gg
