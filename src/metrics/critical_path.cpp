#include "metrics/critical_path.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gg {

CriticalPath critical_path(const GrainGraph& g) {
  CriticalPath cp;
  const auto& nodes = g.nodes();
  const auto& edges = g.edges();
  const auto& topo = g.topo_order();
  GG_CHECK_MSG(topo.size() == nodes.size(),
               "critical path requires a finalized DAG (unreduced graph)");
  cp.on_path.assign(nodes.size(), false);
  if (nodes.empty()) return cp;

  std::vector<TimeNs> dist(nodes.size(), 0);
  std::vector<i64> pred(nodes.size(), -1);
  // Join nodes span the time the parent *waits*, which overlaps the very
  // children whose paths flow into the join — weighting them would double
  // count. The elapsed time of synchronization is carried by the longest
  // incoming child path; the join itself contributes no work.
  auto weight = [&](u32 v) -> TimeNs {
    return nodes[v].kind == NodeKind::Join ? 0 : nodes[v].busy;
  };
  for (u32 v : topo) {
    dist[v] += weight(v);
    for (u32 e : g.out_edges(v)) {
      const u32 w = edges[e].to;
      if (dist[v] > dist[w]) {
        dist[w] = dist[v];
        pred[w] = static_cast<i64>(v);
      }
    }
  }
  u32 sink = 0;
  for (u32 i = 1; i < nodes.size(); ++i) {
    if (dist[i] > dist[sink]) sink = i;
  }
  cp.length = dist[sink];
  for (i64 v = static_cast<i64>(sink); v >= 0; v = pred[static_cast<size_t>(v)]) {
    cp.nodes.push_back(static_cast<u32>(v));
    cp.on_path[static_cast<size_t>(v)] = true;
  }
  std::reverse(cp.nodes.begin(), cp.nodes.end());
  return cp;
}

}  // namespace gg
