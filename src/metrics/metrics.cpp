#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace gg {

namespace {

/// Execution intervals of one grain: fragment intervals for tasks, the
/// chunk interval for chunks. `trace` supplies the fragments.
std::vector<std::pair<TimeNs, TimeNs>> grain_intervals(const Trace& trace,
                                                       const Grain& g) {
  std::vector<std::pair<TimeNs, TimeNs>> out;
  if (g.kind == GrainKind::Task) {
    for (const FragmentRec* f : trace.fragments_of(g.task))
      out.emplace_back(f->start, f->end);
  } else {
    out.emplace_back(g.first_start, g.last_end);
  }
  return out;
}

TimeNs choose_interval(const Trace& trace, const GrainTable& grains,
                       const MetricOptions& opts) {
  const TimeNs makespan = std::max<TimeNs>(1, trace.makespan());
  std::vector<u64> lengths;
  lengths.reserve(grains.size());
  for (const Grain& g : grains.grains())
    if (g.exec_time > 0) lengths.push_back(g.exec_time);
  TimeNs interval = 0;
  switch (opts.interval) {
    case IntervalPreset::MinGrain:
      interval = stats::min_value(lengths);
      break;
    case IntervalPreset::MedianGrain:
      interval = static_cast<TimeNs>(stats::median(lengths));
      break;
    case IntervalPreset::MinGap: {
      // Smallest positive difference between any grain start and any other
      // grain's end: merge the sorted boundary lists.
      std::vector<TimeNs> starts, ends;
      for (const Grain& g : grains.grains()) {
        starts.push_back(g.first_start);
        ends.push_back(g.last_end);
      }
      std::sort(starts.begin(), starts.end());
      std::sort(ends.begin(), ends.end());
      TimeNs best = makespan;
      for (TimeNs e : ends) {
        auto it = std::lower_bound(starts.begin(), starts.end(), e);
        if (it != starts.end() && *it > e) best = std::min(best, *it - e);
        if (it != starts.begin() && e > *(it - 1))
          best = std::min(best, e - *(it - 1));
      }
      interval = best;
      break;
    }
    case IntervalPreset::Fixed:
      interval = opts.fixed_interval_ns;
      break;
  }
  if (interval == 0) interval = makespan / 100 + 1;
  // Bound post-processing time.
  const TimeNs floor_interval =
      (makespan + opts.max_intervals - 1) / opts.max_intervals;
  return std::max<TimeNs>({interval, floor_interval, 1});
}

}  // namespace

double loop_load_balance(const Trace& trace, const LoopRec& loop) {
  const auto chunks = trace.chunks_of(loop.uid);
  if (chunks.empty()) return 1.0;
  TimeNs longest = 0;
  std::map<u16, u64> chain;
  for (const ChunkRec* c : chunks) {
    longest = std::max<TimeNs>(longest, c->end - c->start);
    chain[c->thread] += c->end - c->start;
  }
  std::vector<u64> chains;
  chains.reserve(chain.size());
  for (auto& [t, len] : chain) chains.push_back(len);
  const double med = stats::median(chains);
  if (med <= 0) return 1.0;
  return static_cast<double>(longest) / med;
}

double region_load_balance(const GrainTable& grains, int num_cores) {
  if (grains.size() == 0) return 1.0;
  TimeNs longest = 0;
  std::vector<u64> busy(static_cast<size_t>(std::max(1, num_cores)), 0);
  for (const Grain& g : grains.grains()) {
    longest = std::max(longest, g.exec_time);
    if (g.core < busy.size()) busy[g.core] += g.exec_time;
  }
  std::vector<u64> nonzero;
  for (u64 b : busy)
    if (b > 0) nonzero.push_back(b);
  const double med = stats::median(nonzero);
  if (med <= 0) return 1.0;
  return static_cast<double>(longest) / med;
}

double work_deviation(const Grain& grain, const GrainTable& baseline) {
  const Grain* ref = baseline.by_path(grain.path);
  if (ref == nullptr || ref->exec_time == 0)
    return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(grain.exec_time) /
         static_cast<double>(ref->exec_time);
}

MetricsResult compute_metrics(const Trace& trace, const GrainGraph& graph,
                              const GrainTable& grains, const Topology& topo,
                              const MetricOptions& opts,
                              const GrainTable* baseline) {
  MetricsResult res;
  const auto& table = grains.grains();
  res.per_grain.assign(table.size(), GrainMetrics{});

  // ---- parallel benefit, mem util, work deviation -------------------------
  for (size_t i = 0; i < table.size(); ++i) {
    const Grain& g = table[i];
    GrainMetrics& m = res.per_grain[i];
    const TimeNs cost = g.creation_cost + g.sync_cost;
    m.parallel_benefit = cost == 0
                             ? std::numeric_limits<double>::infinity()
                             : static_cast<double>(g.exec_time) /
                                   static_cast<double>(cost);
    m.mem_util = g.counters.stall == 0
                     ? std::numeric_limits<double>::infinity()
                     : static_cast<double>(g.counters.compute) /
                           static_cast<double>(g.counters.stall);
    if (baseline != nullptr) m.work_deviation = work_deviation(g, *baseline);
  }

  // ---- load balance ---------------------------------------------------------
  res.region_load_balance = region_load_balance(grains, trace.meta.num_cores);
  for (const LoopRec& loop : trace.loops)
    res.loop_load_balance[loop.uid] = loop_load_balance(trace, loop);

  // ---- instantaneous parallelism --------------------------------------------
  const TimeNs interval = choose_interval(trace, grains, opts);
  res.interval_used = interval;
  const TimeNs makespan = std::max<TimeNs>(1, trace.makespan());
  const size_t slots = static_cast<size_t>((makespan + interval - 1) / interval);
  std::vector<i64> opt_diff(slots + 1, 0), con_diff(slots + 1, 0);
  // Each grain contributes its execution intervals.
  std::vector<std::vector<std::pair<TimeNs, TimeNs>>> g_ivs(table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    g_ivs[i] = grain_intervals(trace, table[i]);
    for (auto [s, e] : g_ivs[i]) {
      if (e <= s) continue;
      // Optimistic: any overlap.
      const size_t o_lo = static_cast<size_t>(s / interval);
      const size_t o_hi = static_cast<size_t>((e - 1) / interval);
      opt_diff[o_lo] += 1;
      opt_diff[std::min(o_hi + 1, slots)] -= 1;
      // Conservative: full overlap only.
      const size_t c_lo = static_cast<size_t>((s + interval - 1) / interval);
      const size_t c_hi_excl = static_cast<size_t>(e / interval);
      if (c_hi_excl > c_lo) {
        con_diff[c_lo] += 1;
        con_diff[std::min(c_hi_excl, slots)] -= 1;
      }
    }
  }
  res.parallelism_optimistic.assign(slots, 0);
  res.parallelism_conservative.assign(slots, 0);
  i64 acc_o = 0, acc_c = 0;
  for (size_t s = 0; s < slots; ++s) {
    acc_o += opt_diff[s];
    acc_c += con_diff[s];
    res.parallelism_optimistic[s] = static_cast<u32>(std::max<i64>(0, acc_o));
    res.parallelism_conservative[s] = static_cast<u32>(std::max<i64>(0, acc_c));
  }
  // Per grain: minimum over its overlapping intervals (§3.2).
  for (size_t i = 0; i < table.size(); ++i) {
    u32 min_o = std::numeric_limits<u32>::max();
    u32 min_c = std::numeric_limits<u32>::max();
    for (auto [s, e] : g_ivs[i]) {
      if (e <= s) continue;
      const size_t lo = static_cast<size_t>(s / interval);
      const size_t hi = std::min(static_cast<size_t>((e - 1) / interval),
                                 slots == 0 ? 0 : slots - 1);
      for (size_t k = lo; k <= hi && k < slots; ++k) {
        min_o = std::min(min_o, res.parallelism_optimistic[k]);
        min_c = std::min(min_c, res.parallelism_conservative[k]);
      }
    }
    if (min_o == std::numeric_limits<u32>::max()) min_o = 0;
    if (min_c == std::numeric_limits<u32>::max()) min_c = 0;
    res.per_grain[i].inst_parallelism_optimistic = static_cast<int>(min_o);
    res.per_grain[i].inst_parallelism = static_cast<int>(min_c);
  }

  // ---- scatter ----------------------------------------------------------------
  // Sibling groups: task grains share a parent; chunks share a loop.
  std::map<std::pair<u64, u64>, std::vector<size_t>> siblings;
  for (size_t i = 0; i < table.size(); ++i) {
    const Grain& g = table[i];
    const auto key = g.kind == GrainKind::Task
                         ? std::make_pair<u64, u64>(0, u64{g.parent})
                         : std::make_pair<u64, u64>(1, u64{g.loop});
    siblings[key].push_back(i);
  }
  const int cores_in_machine = topo.num_cores();
  for (auto& [key, members] : siblings) {
    if (members.size() < 2) continue;
    // Deterministically sample large groups to bound the pairwise cost.
    std::vector<size_t> sample;
    if (members.size() > opts.scatter_sample) {
      const size_t stride = members.size() / opts.scatter_sample;
      for (size_t k = 0; k < members.size(); k += stride)
        sample.push_back(members[k]);
    } else {
      sample = members;
    }
    std::vector<double> dists;
    dists.reserve(sample.size() * (sample.size() - 1) / 2);
    for (size_t a = 0; a < sample.size(); ++a) {
      for (size_t b = a + 1; b < sample.size(); ++b) {
        int ca = table[sample[a]].core;
        int cb = table[sample[b]].core;
        if (ca >= cores_in_machine) ca = ca % cores_in_machine;
        if (cb >= cores_in_machine) cb = cb % cores_in_machine;
        dists.push_back(static_cast<double>(topo.core_distance(ca, cb)));
      }
    }
    const double med = stats::median(dists);
    for (size_t i : members) res.per_grain[i].scatter = med;
  }

  // ---- critical path + work/span --------------------------------------------
  const CriticalPath cp = critical_path(graph);
  res.critical_path_time = cp.length;
  for (const Grain& g : table) res.total_work += g.exec_time;
  res.avg_parallelism = cp.length == 0
                            ? 0.0
                            : static_cast<double>(res.total_work) /
                                  static_cast<double>(cp.length);
  // Map graph nodes on the path back to grains.
  std::map<TaskId, size_t> task_to_grain;
  std::map<std::pair<LoopId, std::pair<u16, u32>>, size_t> chunk_to_grain;
  for (size_t i = 0; i < table.size(); ++i) {
    if (table[i].kind == GrainKind::Task) {
      task_to_grain[table[i].task] = i;
    } else {
      chunk_to_grain[{table[i].loop, {table[i].thread, table[i].chunk_seq}}] =
          i;
    }
  }
  for (u32 v : cp.nodes) {
    const GraphNode& n = graph.nodes()[v];
    if (n.kind == NodeKind::Fragment && n.task != kRootTask) {
      auto it = task_to_grain.find(n.task);
      if (it != task_to_grain.end())
        res.per_grain[it->second].on_critical_path = true;
    } else if (n.kind == NodeKind::Chunk) {
      auto it = chunk_to_grain.find({n.loop, {n.thread, n.seq}});
      if (it != chunk_to_grain.end())
        res.per_grain[it->second].on_critical_path = true;
    }
  }
  return res;
}

}  // namespace gg
