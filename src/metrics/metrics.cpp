#include "metrics/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <tuple>

#include "common/check.hpp"
#include "common/par_for.hpp"
#include "common/stats.hpp"
#include "graph/thread_groups.hpp"
#include "obs/telemetry.hpp"

namespace gg {

namespace {

i64 pass_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Visits the execution intervals of one grain: fragment intervals for
/// tasks (a zero-copy span lookup), the chunk interval for chunks.
template <class Fn>
void for_each_grain_interval(const Trace& trace, const Grain& g, Fn&& fn) {
  if (g.kind == GrainKind::Task) {
    for (const FragmentRec& f : trace.fragments_span(g.task))
      fn(f.start, f.end);
  } else {
    fn(g.first_start, g.last_end);
  }
}

TimeNs choose_interval(const Trace& trace, const GrainTable& grains,
                       const MetricOptions& opts) {
  const TimeNs makespan = std::max<TimeNs>(1, trace.makespan());
  std::vector<u64> lengths;
  lengths.reserve(grains.size());
  for (const Grain& g : grains.grains())
    if (g.exec_time > 0) lengths.push_back(g.exec_time);
  TimeNs interval = 0;
  switch (opts.interval) {
    case IntervalPreset::MinGrain:
      interval = stats::min_value(lengths);
      break;
    case IntervalPreset::MedianGrain:
      interval = static_cast<TimeNs>(stats::median(lengths));
      break;
    case IntervalPreset::MinGap: {
      // Smallest positive difference between any grain start and any other
      // grain's end: merge the sorted boundary lists.
      std::vector<TimeNs> starts, ends;
      for (const Grain& g : grains.grains()) {
        starts.push_back(g.first_start);
        ends.push_back(g.last_end);
      }
      std::sort(starts.begin(), starts.end());
      std::sort(ends.begin(), ends.end());
      TimeNs best = makespan;
      for (TimeNs e : ends) {
        auto it = std::lower_bound(starts.begin(), starts.end(), e);
        if (it != starts.end() && *it > e) best = std::min(best, *it - e);
        if (it != starts.begin() && e > *(it - 1))
          best = std::min(best, e - *(it - 1));
      }
      interval = best;
      break;
    }
    case IntervalPreset::Fixed:
      interval = opts.fixed_interval_ns;
      break;
  }
  if (interval == 0) interval = makespan / 100 + 1;
  // Bound post-processing time.
  const TimeNs floor_interval =
      (makespan + opts.max_intervals - 1) / opts.max_intervals;
  return std::max<TimeNs>({interval, floor_interval, 1});
}

}  // namespace

double loop_load_balance(const Trace& trace, const LoopRec& loop) {
  const auto chunks = trace.chunks_span(loop.uid);
  if (chunks.empty()) return 1.0;
  TimeNs longest = 0;
  std::vector<u64> chains;  // per-thread summed chunk time, thread order
  for_each_thread_run(chunks, [&](u16, std::span<const ChunkRec> cs) {
    u64 len = 0;
    for (const ChunkRec& c : cs) {
      longest = std::max<TimeNs>(longest, c.end - c.start);
      len += c.end - c.start;
    }
    chains.push_back(len);
  });
  const double med = stats::median(chains);
  if (med <= 0) return 1.0;
  return static_cast<double>(longest) / med;
}

double region_load_balance(const GrainTable& grains, int num_cores) {
  if (grains.size() == 0) return 1.0;
  TimeNs longest = 0;
  std::vector<u64> busy(static_cast<size_t>(std::max(1, num_cores)), 0);
  for (const Grain& g : grains.grains()) {
    longest = std::max(longest, g.exec_time);
    if (g.core < busy.size()) busy[g.core] += g.exec_time;
  }
  std::vector<u64> nonzero;
  for (u64 b : busy)
    if (b > 0) nonzero.push_back(b);
  const double med = stats::median(nonzero);
  if (med <= 0) return 1.0;
  return static_cast<double>(longest) / med;
}

double work_deviation(const Grain& grain, const GrainTable& baseline) {
  const Grain* ref = baseline.by_path(grain.path);
  if (ref == nullptr || ref->exec_time == 0)
    return std::numeric_limits<double>::quiet_NaN();
  return static_cast<double>(grain.exec_time) /
         static_cast<double>(ref->exec_time);
}

MetricsResult compute_metrics(const Trace& trace, const GrainGraph& graph,
                              const GrainTable& grains, const Topology& topo,
                              const MetricOptions& opts,
                              const GrainTable* baseline) {
  MetricsResult res;
  const auto& table = grains.grains();
  res.per_grain.assign(table.size(), GrainMetrics{});
  const int threads = resolve_threads(opts.threads);

  // ---- parallel benefit, mem util, work deviation -------------------------
  // Pure per-grain computation into per-index slots: any partition of the
  // index range produces the same bytes.
  i64 pass_t0 = pass_now_ns();
  {
    obs::PhaseSpan span("metrics.benefit");
    par_for_each_index(table.size(), threads, [&](size_t i) {
      const Grain& g = table[i];
      GrainMetrics& m = res.per_grain[i];
      const TimeNs cost = g.creation_cost + g.sync_cost;
      m.parallel_benefit = cost == 0
                               ? std::numeric_limits<double>::infinity()
                               : static_cast<double>(g.exec_time) /
                                     static_cast<double>(cost);
      m.mem_util = g.counters.stall == 0
                       ? std::numeric_limits<double>::infinity()
                       : static_cast<double>(g.counters.compute) /
                             static_cast<double>(g.counters.stall);
      if (baseline != nullptr) m.work_deviation = work_deviation(g, *baseline);
    });
  }
  i64 pass_t1 = pass_now_ns();
  res.pass_timings.benefit_ns = pass_t1 - pass_t0;

  // ---- load balance ---------------------------------------------------------
  {
    obs::PhaseSpan span("metrics.load_balance");
    res.region_load_balance =
        region_load_balance(grains, trace.meta.num_cores);
    std::vector<double> lb(trace.loops.size());
    par_for_each_index(trace.loops.size(), threads, [&](size_t i) {
      lb[i] = loop_load_balance(trace, trace.loops[i]);
    });
    for (size_t i = 0; i < trace.loops.size(); ++i)
      res.loop_load_balance[trace.loops[i].uid] = lb[i];
  }
  i64 pass_t2 = pass_now_ns();
  res.pass_timings.load_balance_ns = pass_t2 - pass_t1;

  // ---- instantaneous parallelism --------------------------------------------
  obs::PhaseSpan par_span("metrics.parallelism");
  const TimeNs interval = choose_interval(trace, grains, opts);
  res.interval_used = interval;
  const TimeNs makespan = std::max<TimeNs>(1, trace.makespan());
  const size_t slots = static_cast<size_t>((makespan + interval - 1) / interval);
  // Each grain contributes its execution intervals to +1/-1 histogram
  // deltas. Blocks accumulate into private diff arrays which are then summed
  // in block order; integer addition is associative and commutative, so the
  // merged histogram is identical for every thread count.
  const size_t nblocks = static_cast<size_t>(std::max(threads, 1));
  std::vector<std::vector<i64>> opt_local(nblocks), con_local(nblocks);
  par_for_blocks(table.size(), threads, [&](size_t b, size_t lo, size_t hi) {
    auto& opt_diff = opt_local[b];
    auto& con_diff = con_local[b];
    opt_diff.assign(slots + 1, 0);
    con_diff.assign(slots + 1, 0);
    for (size_t i = lo; i < hi; ++i) {
      for_each_grain_interval(trace, table[i], [&](TimeNs s, TimeNs e) {
        if (e <= s) return;
        // Optimistic: any overlap.
        const size_t o_lo = static_cast<size_t>(s / interval);
        const size_t o_hi = static_cast<size_t>((e - 1) / interval);
        opt_diff[o_lo] += 1;
        opt_diff[std::min(o_hi + 1, slots)] -= 1;
        // Conservative: full overlap only.
        const size_t c_lo = static_cast<size_t>((s + interval - 1) / interval);
        const size_t c_hi_excl = static_cast<size_t>(e / interval);
        if (c_hi_excl > c_lo) {
          con_diff[c_lo] += 1;
          con_diff[std::min(c_hi_excl, slots)] -= 1;
        }
      });
    }
  });
  res.parallelism_optimistic.assign(slots, 0);
  res.parallelism_conservative.assign(slots, 0);
  i64 acc_o = 0, acc_c = 0;
  for (size_t s = 0; s < slots; ++s) {
    for (size_t b = 0; b < nblocks; ++b) {
      if (!opt_local[b].empty()) acc_o += opt_local[b][s];
      if (!con_local[b].empty()) acc_c += con_local[b][s];
    }
    res.parallelism_optimistic[s] = static_cast<u32>(std::max<i64>(0, acc_o));
    res.parallelism_conservative[s] = static_cast<u32>(std::max<i64>(0, acc_c));
  }
  // Per grain: minimum over its overlapping intervals (§3.2). Reads the
  // finished timeline, writes per-grain slots.
  par_for_each_index(table.size(), threads, [&](size_t i) {
    u32 min_o = std::numeric_limits<u32>::max();
    u32 min_c = std::numeric_limits<u32>::max();
    for_each_grain_interval(trace, table[i], [&](TimeNs s, TimeNs e) {
      if (e <= s) return;
      const size_t lo = static_cast<size_t>(s / interval);
      const size_t hi = std::min(static_cast<size_t>((e - 1) / interval),
                                 slots == 0 ? 0 : slots - 1);
      for (size_t k = lo; k <= hi && k < slots; ++k) {
        min_o = std::min(min_o, res.parallelism_optimistic[k]);
        min_c = std::min(min_c, res.parallelism_conservative[k]);
      }
    });
    if (min_o == std::numeric_limits<u32>::max()) min_o = 0;
    if (min_c == std::numeric_limits<u32>::max()) min_c = 0;
    res.per_grain[i].inst_parallelism_optimistic = static_cast<int>(min_o);
    res.per_grain[i].inst_parallelism = static_cast<int>(min_c);
  });
  par_span.end();
  i64 pass_t3 = pass_now_ns();
  res.pass_timings.parallelism_ns = pass_t3 - pass_t2;

  // ---- scatter ----------------------------------------------------------------
  obs::PhaseSpan scatter_span("metrics.scatter");
  // Sibling groups: task grains share a parent; chunks share a loop. Sorting
  // (kind, owner, row) triples makes each group a contiguous range with
  // members in ascending row order — exactly the order the previous
  // std::map-of-vectors produced — and groups are then independent work.
  std::vector<std::tuple<u64, u64, u64>> sib;
  sib.reserve(table.size());
  for (size_t i = 0; i < table.size(); ++i) {
    const Grain& g = table[i];
    if (g.kind == GrainKind::Task) {
      sib.emplace_back(0, u64{g.parent}, i);
    } else {
      sib.emplace_back(1, u64{g.loop}, i);
    }
  }
  std::sort(sib.begin(), sib.end());
  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) into sib
  for (size_t i = 0; i < sib.size();) {
    size_t j = i + 1;
    while (j < sib.size() && std::get<0>(sib[j]) == std::get<0>(sib[i]) &&
           std::get<1>(sib[j]) == std::get<1>(sib[i]))
      ++j;
    if (j - i >= 2) groups.emplace_back(i, j);
    i = j;
  }
  const int cores_in_machine = topo.num_cores();
  par_for_each_index(groups.size(), threads, [&](size_t gi) {
    const auto [gbegin, gend] = groups[gi];
    const size_t count = gend - gbegin;
    auto member = [&](size_t k) {
      return static_cast<size_t>(std::get<2>(sib[gbegin + k]));
    };
    // Deterministically sample large groups to bound the pairwise cost.
    std::vector<size_t> sample;
    if (count > opts.scatter_sample) {
      const size_t stride = count / opts.scatter_sample;
      for (size_t k = 0; k < count; k += stride) sample.push_back(member(k));
    } else {
      sample.reserve(count);
      for (size_t k = 0; k < count; ++k) sample.push_back(member(k));
    }
    std::vector<double> dists;
    dists.reserve(sample.size() * (sample.size() - 1) / 2);
    for (size_t a = 0; a < sample.size(); ++a) {
      for (size_t b = a + 1; b < sample.size(); ++b) {
        int ca = table[sample[a]].core;
        int cb = table[sample[b]].core;
        if (ca >= cores_in_machine) ca = ca % cores_in_machine;
        if (cb >= cores_in_machine) cb = cb % cores_in_machine;
        dists.push_back(static_cast<double>(topo.core_distance(ca, cb)));
      }
    }
    const double med = stats::median(dists);
    for (size_t k = 0; k < count; ++k)
      res.per_grain[member(k)].scatter = med;
  });
  scatter_span.end();
  i64 pass_t4 = pass_now_ns();
  res.pass_timings.scatter_ns = pass_t4 - pass_t3;

  // ---- critical path + work/span --------------------------------------------
  obs::PhaseSpan cp_span("metrics.critical_path");
  const CriticalPath cp = critical_path(graph);
  res.critical_path_time = cp.length;
  for (const Grain& g : table) res.total_work += g.exec_time;
  res.avg_parallelism = cp.length == 0
                            ? 0.0
                            : static_cast<double>(res.total_work) /
                                  static_cast<double>(cp.length);
  // Map graph nodes on the path back to grains.
  const GrainLookup lookup(grains);
  for (u32 v : cp.nodes) {
    if (const auto row = lookup.row_of(graph.nodes()[v]))
      res.per_grain[*row].on_critical_path = true;
  }
  cp_span.end();
  res.pass_timings.critical_path_ns = pass_now_ns() - pass_t4;
  return res;
}

}  // namespace gg
