// Derived per-grain metrics (paper §3.2):
//
//  * parallel benefit — grain execution time / parallelization cost borne by
//    the parent (creation time + average share of the parent's time
//    synchronizing the siblings; chunks use book-keeping cost instead of
//    creation time). Low benefit -> execute serially (inline / cutoff).
//  * load balance — longest grain length / median length of all chains of
//    consecutive grains in the unreduced graph (>1 means at least one grain
//    approaches the parallel section's makespan).
//  * work deviation — per-grain execution time on N cores / on 1 core,
//    matched by schedule-independent grain id. > 1 is work inflation
//    (Olivier et al.'s term, computed per grain instead of per program).
//  * instantaneous parallelism — grains overlapping each time interval;
//    optimistic counts any overlap, conservative only full overlap. A
//    grain's value is the minimum over its overlapping intervals.
//  * scatter — median pairwise NUMA distance between cores executing
//    sibling grains.
//  * memory-hierarchy utilization — compute cycles / stalled cycles.
#pragma once

#include <limits>
#include <map>
#include <optional>
#include <vector>

#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/critical_path.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace gg {

/// Interval-size presets for instantaneous parallelism (§3.2 offers minimum
/// grain length, smallest start/end gap, and median grain length).
enum class IntervalPreset : u8 { MinGrain, MinGap, MedianGrain, Fixed };

struct MetricOptions {
  IntervalPreset interval = IntervalPreset::MedianGrain;
  TimeNs fixed_interval_ns = 0;  ///< used when interval == Fixed
  /// Post-processing-time bound: the interval is widened so the timeline
  /// has at most this many slots (the paper notes interval size balances
  /// accuracy and post-processing time).
  size_t max_intervals = 20000;
  /// Pairwise-distance computations sample at most this many siblings.
  size_t scatter_sample = 512;
  /// Worker threads for the per-grain metric passes. 0 = auto (GG_THREADS
  /// env, then hardware concurrency). Results are bit-identical for every
  /// setting: parallel passes write per-grain slots or merge integer
  /// partial sums in a fixed order.
  int threads = 0;
};

struct GrainMetrics {
  double parallel_benefit = std::numeric_limits<double>::infinity();
  double work_deviation = std::numeric_limits<double>::quiet_NaN();
  double mem_util = std::numeric_limits<double>::infinity();
  int inst_parallelism = 0;             ///< conservative flavor
  int inst_parallelism_optimistic = 0;  ///< optimistic flavor
  double scatter = 0.0;
  bool on_critical_path = false;
};

/// Wall time of each metric pass inside compute_metrics, in nanoseconds.
/// The passes correspond 1:1 to the section banners in metrics.cpp.
struct MetricPassTimings {
  i64 benefit_ns = 0;        ///< parallel benefit, mem util, work deviation
  i64 load_balance_ns = 0;   ///< region + per-loop load balance
  i64 parallelism_ns = 0;    ///< instantaneous-parallelism timeline + minima
  i64 scatter_ns = 0;        ///< sibling-group NUMA scatter
  i64 critical_path_ns = 0;  ///< critical path + work/span
  i64 total_ns() const {
    return benefit_ns + load_balance_ns + parallelism_ns + scatter_ns +
           critical_path_ns;
  }
};

struct MetricsResult {
  std::vector<GrainMetrics> per_grain;  ///< aligned with GrainTable order
  TimeNs critical_path_time = 0;  ///< T_inf: the span
  TimeNs total_work = 0;          ///< T_1: summed grain execution time
  double avg_parallelism = 0.0;   ///< T_1 / T_inf (Cilk-style)
  double region_load_balance = 1.0;
  std::map<LoopId, double> loop_load_balance;
  TimeNs interval_used = 0;  ///< the instantaneous-parallelism interval
  /// Timeline of optimistic/conservative parallelism per interval.
  std::vector<u32> parallelism_optimistic;
  std::vector<u32> parallelism_conservative;
  MetricPassTimings pass_timings;  ///< wall time of each pass above
};

/// Computes every §3.2 metric. `baseline` is the grain table of a 1-core
/// execution of the same program (for work deviation); pass nullptr to skip.
MetricsResult compute_metrics(const Trace& trace, const GrainGraph& graph,
                              const GrainTable& grains, const Topology& topo,
                              const MetricOptions& opts = {},
                              const GrainTable* baseline = nullptr);

/// Load balance of one loop: longest chunk / median per-thread chain length.
double loop_load_balance(const Trace& trace, const LoopRec& loop);

/// Region-wide load balance: longest grain / median per-core busy time.
double region_load_balance(const GrainTable& grains, int num_cores);

/// Work deviation for one grain against a baseline table (NaN if the grain
/// has no counterpart).
double work_deviation(const Grain& grain, const GrainTable& baseline);

}  // namespace gg
