// Critical path of the grain graph: the longest node-weighted path through
// the DAG. The paper colors nodes and edges on the critical path red — it
// is the first filter for selecting optimization candidates (§5 notes no
// OpenMP thread-timeline tool highlights it).
#pragma once

#include <vector>

#include "graph/grain_graph.hpp"

namespace gg {

struct CriticalPath {
  TimeNs length = 0;           ///< summed busy time along the path
  std::vector<u32> nodes;      ///< node indices, source to sink
  std::vector<bool> on_path;   ///< per-node membership flags
};

/// Computes the critical path of an (unreduced, acyclic) grain graph using
/// node busy-times as weights.
CriticalPath critical_path(const GrainGraph& g);

}  // namespace gg
