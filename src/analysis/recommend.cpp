#include "analysis/recommend.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "analysis/binpack.hpp"
#include "common/strings.hpp"

namespace gg {

namespace {

double pct(const Analysis& a, Problem p) {
  return a.problems[static_cast<size_t>(p)].flagged_percent;
}

}  // namespace

std::vector<Recommendation> recommend(const Trace& trace, const Analysis& a) {
  std::vector<Recommendation> recs;
  const size_t grains = a.grains.size();
  if (grains == 0) return recs;

  // ---- Rule 1: low parallel benefit concentrated by definition -----------
  if (pct(a, Problem::LowParallelBenefit) > 25.0) {
    // Find the definition with the most low-benefit grains weighted by
    // count (the paper picks "high prevalence AND heavy work share").
    const SourceProfileRow* culprit = nullptr;
    double best = 0.0;
    for (const SourceProfileRow& r : a.sources) {
      const double weight = r.low_benefit_percent *
                            static_cast<double>(r.grain_count);
      if (weight > best) {
        best = weight;
        culprit = &r;
      }
    }
    if (culprit != nullptr && culprit->low_benefit_percent > 25.0) {
      Recommendation rec;
      rec.headline = "Add a cutoff (or raise grainsize) at " +
                     culprit->source + " — its grains don't pay for their "
                     "own creation.";
      rec.rationale = strings::trim_double(culprit->low_benefit_percent, 1) +
                      "% of its " + std::to_string(culprit->grain_count) +
                      " grains have parallel benefit < 1 (exec time below "
                      "creation + sync cost).";
      rec.paper_ref = "FFT §4.3.3 (cutoffs via fft.c:4680); kdtree §2";
      rec.score = best;
      recs.push_back(std::move(rec));
    }
  }

  // ---- Rule 2: suspicious grain explosion --------------------------------
  if (grains > 100000 ||
      (grains > 1000 && pct(a, Problem::LowParallelBenefit) > 60.0)) {
    Recommendation rec;
    rec.headline = "Verify your cutoffs actually take effect — the grain "
                   "count looks unbounded.";
    rec.rationale = std::to_string(grains) + " grains with " +
                    strings::trim_double(
                        pct(a, Problem::LowParallelBenefit), 1) +
                    "% low parallel benefit; check recursion-depth "
                    "arguments and hard-coded overrides.";
    rec.paper_ref = "376.kdtree §2 (missing depth increment); Strassen "
                    "§4.3.5 (hard-coded cutoff)";
    rec.score = static_cast<double>(grains);
    recs.push_back(std::move(rec));
  }

  // ---- Rule 3: work inflation ---------------------------------------------
  if (pct(a, Problem::WorkInflation) > 25.0) {
    const SourceProfileRow* culprit = nullptr;
    double best = 0.0;
    for (const SourceProfileRow& r : a.sources) {
      const double weight =
          r.inflated_percent * static_cast<double>(r.grain_count);
      if (weight > best) {
        best = weight;
        culprit = &r;
      }
    }
    Recommendation rec;
    rec.headline =
        culprit != nullptr && culprit->inflated_percent > 25.0
            ? "Fix the memory access pattern of " + culprit->source +
                  " (loop order / blocking), then distribute pages "
                  "round-robin across NUMA nodes."
            : "Distribute pages round-robin across NUMA nodes (numactl "
              "--interleave or per-region placement).";
    rec.rationale = strings::trim_double(pct(a, Problem::WorkInflation), 1) +
                    "% of grains run slower than their 1-core baseline "
                    "(work inflation).";
    rec.paper_ref = "Sort §4.3.1 (round-robin pages); 359.botsspar §4.3.2 "
                    "(bmod loop interchange)";
    rec.score = pct(a, Problem::WorkInflation) * static_cast<double>(grains);
    recs.push_back(std::move(rec));
  }

  // ---- Rule 4: irreparably skewed loop -> trim the team -------------------
  for (const LoopRec& loop : trace.loops) {
    const auto it = a.metrics.loop_load_balance.find(loop.uid);
    if (it == a.metrics.loop_load_balance.end() || it->second < 3.0) continue;
    if (loop.sched == ScheduleKind::Dynamic && loop.chunk_param <= 1) {
      std::vector<u64> durations;
      for (const ChunkRec* c : trace.chunks_of(loop.uid))
        durations.push_back(c->end - c->start);
      const int cores =
          min_cores_for_makespan(durations, loop.end - loop.start);
      if (cores < trace.meta.num_workers) {
        Recommendation rec;
        rec.headline =
            "Loop " + std::string(trace.strings.get(loop.src)) +
            " is irreparably imbalanced at chunk size 1 — set "
            "num_threads(" +
            std::to_string(cores) + ") and free the remaining cores.";
        rec.rationale = "load balance " +
                        strings::trim_double(it->second, 1) + " on " +
                        std::to_string(loop.num_threads) +
                        " threads; a bin-packer fits all " +
                        std::to_string(durations.size()) +
                        " chunks into " + std::to_string(cores) +
                        " cores at the same makespan.";
        rec.paper_ref = "Freqmine §4.3.4 (FPGF, 48 -> 7 cores)";
        rec.score = it->second * 1000.0;
        recs.push_back(std::move(rec));
      }
    }
  }

  // ---- Rule 5: scatter ------------------------------------------------------
  if (pct(a, Problem::HighScatter) > 50.0) {
    Recommendation rec;
    rec.headline = "Sibling grains execute across sockets — prefer a "
                   "work-stealing (or locality-aware) scheduler over a "
                   "central queue.";
    rec.rationale = strings::trim_double(pct(a, Problem::HighScatter), 1) +
                    "% of grains have off-socket sibling scatter.";
    rec.paper_ref = "Strassen §4.3.5 (Fig. 11c/d)";
    rec.score = pct(a, Problem::HighScatter) * 100.0;
    recs.push_back(std::move(rec));
  }

  // ---- Rule 6: structurally limited parallelism ---------------------------
  if (pct(a, Problem::LowParallelism) > 40.0 &&
      pct(a, Problem::LowParallelBenefit) < 25.0) {
    Recommendation rec;
    rec.headline = "Parallelism is structurally below the machine size with "
                   "healthy grain sizes — restructure the algorithm or run "
                   "on fewer cores; lowering cutoffs will only destroy "
                   "parallel benefit.";
    rec.rationale = strings::trim_double(pct(a, Problem::LowParallelism), 1) +
                    "% of grains see less instantaneous parallelism than "
                    "the " + std::to_string(trace.meta.num_workers) +
                    " cores used.";
    rec.paper_ref = "Sort §4.3.1 (incurable low parallelism)";
    rec.score = pct(a, Problem::LowParallelism) * 10.0;
    recs.push_back(std::move(rec));
  }

  std::sort(recs.begin(), recs.end(),
            [](const Recommendation& x, const Recommendation& y) {
              return x.score > y.score;
            });
  return recs;
}

std::string render_recommendations(const std::vector<Recommendation>& recs) {
  std::ostringstream os;
  if (recs.empty()) {
    os << "no recommendations: all problem views look healthy\n";
    return os.str();
  }
  os << "=== recommendations ===\n";
  for (size_t i = 0; i < recs.size(); ++i) {
    os << (i + 1) << ". " << recs[i].headline << "\n";
    os << "   evidence: " << recs[i].rationale << "\n";
    os << "   cf. " << recs[i].paper_ref << "\n";
  }
  return os.str();
}

}  // namespace gg
