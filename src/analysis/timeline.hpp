// The thread-timeline "existing tools" foil (paper Fig. 4 and §5).
//
// Reconstructs what a VTune/Paraver-style view shows from the same trace:
// per-thread aggregate busy / runtime-overhead / idle shares and a coarse
// state strip per thread. The point the paper makes — and the benches
// reproduce — is that this view shows *that* load is imbalanced and that
// threads sit in the runtime, but cannot link the imbalance to culprit
// tasks, chunks, or source lines. Contrast with the grain-graph report.
#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace gg {

struct ThreadTimeline {
  u16 thread = 0;
  TimeNs busy = 0;      ///< executing task fragments or chunks
  TimeNs overhead = 0;  ///< task creation, joins, book-keeping
  TimeNs idle = 0;      ///< the rest of the region
  double busy_percent = 0.0;
  double overhead_percent = 0.0;
  double idle_percent = 0.0;
};

struct TimelineView {
  std::vector<ThreadTimeline> threads;
  double imbalance = 0.0;  ///< max busy / mean busy across threads
  /// Coarse per-thread state strips ('#': busy, '+': overhead, '.': idle),
  /// `width` characters spanning the region.
  std::vector<std::string> strips;
};

TimelineView thread_timeline(const Trace& trace, size_t width = 64);

}  // namespace gg
