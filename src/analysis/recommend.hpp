// Rule-based optimization recommendations.
//
// The paper's promise is "actionable feedback" (§1): each §4.3 case study
// follows the same moves — read the problem views, find the dominating
// definition, apply a known fix. This module encodes those moves:
//
//  * many low-benefit grains concentrated in one definition -> add a
//    cutoff / raise grainsize there (FFT §4.3.3, kdtree §2);
//  * an explosive grain count with bounded-looking cutoffs -> suspect an
//    ineffective cutoff (kdtree's missing depth increment, Strassen's
//    hard-coded cutoff §4.3.5);
//  * widespread work inflation against the 1-core baseline + first-touch
//    regions -> distribute pages round-robin (Sort §4.3.1) or fix the
//    dominant definition's access pattern (botsspar §4.3.2);
//  * an irreparably skewed loop at the smallest chunk size -> bin-pack the
//    team and set num_threads (Freqmine §4.3.4);
//  * high sibling scatter -> prefer work stealing / locality-aware
//    scheduling (Strassen §4.3.5);
//  * parallelism below the core count with healthy benefit -> structural
//    limit; consider restructuring or fewer cores (Sort §4.3.1).
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "trace/trace.hpp"

namespace gg {

struct Recommendation {
  std::string headline;   ///< one-line action
  std::string rationale;  ///< the evidence that triggered the rule
  std::string paper_ref;  ///< the paper case study this move comes from
  double score = 0.0;     ///< rough impact proxy for ordering
};

/// Produces ordered recommendations from an analysis. `min_cores_hint`
/// supplies the bin-packed team size for skewed loops (0 = compute it here
/// from the dominant loop's chunks).
std::vector<Recommendation> recommend(const Trace& trace, const Analysis& a);

/// Renders the recommendations as a numbered text list.
std::string render_recommendations(const std::vector<Recommendation>& recs);

}  // namespace gg
