#include "analysis/report.hpp"

#include <chrono>
#include <sstream>

#include "common/par_for.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "obs/telemetry.hpp"
#include "topology/topology.hpp"

namespace gg {

namespace {

i64 now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Analysis analyze(const Trace& trace, const Topology& topo,
                 const AnalysisOptions& opts, AnalysisTimings* timings) {
  Analysis a;
  const int build_threads = resolve_threads(opts.threads);
  i64 t0 = now_ns();
  {
    obs::PhaseSpan span("analysis.graph");
    a.graph = GrainGraph::build(trace, build_threads);
  }
  const i64 t1 = now_ns();
  {
    obs::PhaseSpan span("analysis.grains");
    a.grains = GrainTable::build(trace, build_threads);
  }
  const i64 t2 = now_ns();
  {
    obs::PhaseSpan span("analysis.metrics");
    a.metrics = compute_metrics(trace, a.graph, a.grains, topo, opts.metrics,
                                opts.baseline);
  }
  const i64 t3 = now_ns();
  {
    obs::PhaseSpan span("analysis.problems");
    a.thresholds = opts.thresholds.value_or(
        ProblemThresholds::defaults(trace.meta.num_workers, topo));
    a.problems = evaluate_all(a.grains, a.metrics, a.thresholds);
    a.sources = source_profile(trace, a.grains, a.metrics, a.thresholds,
                               SourceSort::ByCount);
  }
  const i64 t4 = now_ns();
  if (timings != nullptr) {
    timings->graph_ns = t1 - t0;
    timings->grains_ns = t2 - t1;
    timings->metrics_ns = t3 - t2;
    timings->problems_ns = t4 - t3;
    timings->graph_threads = build_threads;
    timings->grains_threads = build_threads;
    timings->metrics_threads = resolve_threads(opts.metrics.threads);
    timings->metric_passes = a.metrics.pass_timings;
  }
  if (obs::Registry* reg = obs::current_registry()) {
    reg->counter("analyze.runs")->add();
    reg->gauge("analyze.grains")->set(static_cast<double>(a.grains.size()));
    const i64 total = t4 - t0;
    if (total > 0) {
      reg->gauge("analyze.grains_per_sec")
          ->set(static_cast<double>(a.grains.size()) * 1e9 /
                static_cast<double>(total));
    }
  }
  return a;
}

std::string render_report(const Trace& trace, const Analysis& a) {
  std::ostringstream os;
  os << "=== grain graph report: " << trace.meta.program << " ===\n";
  os << "runtime " << trace.meta.runtime << ", " << trace.meta.num_workers
     << " workers on " << trace.meta.topology << "\n";
  if (trace.meta.recovered()) {
    os << "PARTIAL TRACE: " << trace.meta.recovery_note();
    if (!trace.meta.crash_note().empty()) {
      os << "; " << trace.meta.crash_note();
    }
    os << " -- totals below are lower bounds\n";
  }
  os << "makespan " << strings::human_time(trace.makespan()) << ", grains "
     << a.grains.size() << " (" << trace.tasks.size() - 1 << " tasks, "
     << trace.chunks.size() << " chunks), graph nodes "
     << a.graph.node_count() << ", edges " << a.graph.edge_count() << "\n";
  os << "critical path " << strings::human_time(a.metrics.critical_path_time)
     << " (" << strings::trim_double(
                    trace.makespan() == 0
                        ? 0.0
                        : 100.0 *
                              static_cast<double>(a.metrics.critical_path_time) /
                              static_cast<double>(trace.makespan()))
     << "% of makespan)\n";
  os << "total grain work " << strings::human_time(a.metrics.total_work)
     << ", average parallelism (T1/Tinf) "
     << strings::trim_double(a.metrics.avg_parallelism, 1) << "\n";
  os << "region load balance "
     << strings::trim_double(a.metrics.region_load_balance) << "\n";
  for (const auto& [loop, lb] : a.metrics.loop_load_balance) {
    os << "loop " << loop << " load balance " << strings::trim_double(lb)
       << "\n";
  }

  Table problems("problem summary (affected grains)");
  problems.set_header({"problem", "affected", "percent"});
  for (const ProblemView& v : a.problems) {
    problems.add_row({to_string(v.problem), std::to_string(v.flagged_count),
                      strings::trim_double(v.flagged_percent, 2) + "%"});
  }
  os << problems.to_text();

  Table sources("grains by definition (sorted by creation count)");
  sources.set_header({"definition", "grains", "work%", "median exec",
                      "low benefit%", "inflated%", "poor mem%"});
  for (const SourceProfileRow& r : a.sources) {
    sources.add_row({r.source, std::to_string(r.grain_count),
                     strings::trim_double(100.0 * r.work_share, 1),
                     strings::human_time(r.median_exec),
                     strings::trim_double(r.low_benefit_percent, 1),
                     strings::trim_double(r.inflated_percent, 1),
                     strings::trim_double(r.poor_mem_util_percent, 1)});
  }
  os << sources.to_text();

  if (!trace.meta.supervisor_note().empty()) {
    os << trace.meta.supervisor_note() << "\n";
  }
  if (!trace.worker_stats.empty()) {
    os << "profiling " << (trace.meta.profiled ? "on" : "off")
       << ", clock source "
       << (trace.meta.clock_source.empty() ? "unknown"
                                           : trace.meta.clock_source)
       << ", recorder buffers " << trace.meta.trace_buffer_bytes
       << " bytes\n";
    if (!trace.meta.recorder_note().empty()) {
      os << "recorder " << trace.meta.recorder_note();
      if (const auto pct = trace.meta.recorder_overhead_pct();
          pct.has_value() && *pct > 2.5) {
        os << "  ** EXCEEDS the paper's 2.5% overhead budget **";
      }
      os << "\n";
    }
    Table sched("scheduler health (per worker)");
    sched.set_header({"worker", "spawned", "executed", "inlined", "steals",
                      "steal fails", "CAS fails", "pushes", "pops", "resizes",
                      "helps", "idle"});
    for (const WorkerStatsRec& s : trace.worker_stats) {
      sched.add_row({std::to_string(s.worker),
                     std::to_string(s.tasks_spawned),
                     std::to_string(s.tasks_executed),
                     std::to_string(s.tasks_inlined),
                     std::to_string(s.steals),
                     std::to_string(s.steal_failures),
                     std::to_string(s.cas_failures),
                     std::to_string(s.deque_pushes),
                     std::to_string(s.deque_pops),
                     std::to_string(s.deque_resizes),
                     std::to_string(s.taskwait_helps),
                     strings::human_time(s.idle_ns)});
    }
    os << sched.to_text();
  }
  return os.str();
}

}  // namespace gg
