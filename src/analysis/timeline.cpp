#include "analysis/timeline.hpp"

#include <algorithm>

namespace gg {

TimelineView thread_timeline(const Trace& trace, size_t width) {
  TimelineView view;
  const int n = std::max(1, trace.meta.num_workers);
  const TimeNs span = std::max<TimeNs>(1, trace.makespan());
  view.threads.resize(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    view.threads[static_cast<size_t>(i)].thread = static_cast<u16>(i);
  std::vector<std::string> strips(static_cast<size_t>(n),
                                  std::string(width, '.'));

  auto paint = [&](u16 core, TimeNs s, TimeNs e, char c) {
    if (core >= n || e <= s) return;
    auto lo = static_cast<size_t>(static_cast<double>(s) / span * width);
    auto hi = static_cast<size_t>(static_cast<double>(e) / span * width);
    lo = std::min(lo, width - 1);
    hi = std::min(std::max(hi, lo + 1), width);
    for (size_t k = lo; k < hi; ++k) {
      char& cell = strips[core][k];
      if (cell == '.' || (cell == '+' && c == '#')) cell = c;
    }
  };

  for (const FragmentRec& f : trace.fragments) {
    if (f.core >= n) continue;
    view.threads[f.core].busy += f.end - f.start;
    paint(f.core, f.start, f.end, '#');
  }
  for (const ChunkRec& c : trace.chunks) {
    if (c.core >= n) continue;
    view.threads[c.core].busy += c.end - c.start;
    paint(c.core, c.start, c.end, '#');
  }
  for (const BookkeepRec& b : trace.bookkeeps) {
    if (b.core >= n) continue;
    view.threads[b.core].overhead += b.end - b.start;
    paint(b.core, b.start, b.end, '+');
  }
  for (const JoinRec& j : trace.joins) {
    if (j.core >= n) continue;
    // Join waits paint as runtime ('+') but are not summed as overhead: the
    // waiting thread is either helping (busy, painted over) or idle.
    paint(j.core, j.start, j.end, '+');
  }
  for (const TaskRec& t : trace.tasks) {
    if (t.create_core >= n || t.uid == kRootTask) continue;
    view.threads[t.create_core].overhead += t.creation_cost;
  }

  double total_busy = 0.0, max_busy = 0.0;
  for (auto& th : view.threads) {
    // Join wait time overlaps helped task execution on the same thread;
    // only the non-overlapped remainder counts as runtime overhead.
    th.busy = std::min(th.busy, span);
    th.overhead = std::min(th.overhead, span - th.busy);
    th.idle = span - th.busy - th.overhead;
    th.busy_percent = 100.0 * static_cast<double>(th.busy) / span;
    th.overhead_percent = 100.0 * static_cast<double>(th.overhead) / span;
    th.idle_percent = 100.0 * static_cast<double>(th.idle) / span;
    total_busy += static_cast<double>(th.busy);
    max_busy = std::max(max_busy, static_cast<double>(th.busy));
  }
  const double mean_busy = total_busy / n;
  view.imbalance = mean_busy > 0 ? max_busy / mean_busy : 0.0;
  view.strips = std::move(strips);
  return view;
}

}  // namespace gg
