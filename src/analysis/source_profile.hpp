// Per-source-definition aggregation (paper Fig. 7: "FFT performance grouped
// by definition in source files", and §4.3.2's "sorting task definitions by
// creation count and work inflation").
//
// Grains are individual instances; a definition is all grains sharing one
// source location. The profile answers: which definition contributes most
// work, creates most grains, and has the highest prevalence of a problem?
#pragma once

#include <string>
#include <vector>

#include "analysis/problems.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "trace/trace.hpp"

namespace gg {

struct SourceProfileRow {
  std::string source;       ///< e.g. "sparselu.c:246(bmod)"
  size_t grain_count = 0;   ///< creation count
  TimeNs total_exec = 0;
  double work_share = 0.0;  ///< fraction of total grain work
  TimeNs median_exec = 0;
  double median_parallel_benefit = 0.0;
  double low_benefit_percent = 0.0;   ///< grains below the benefit threshold
  double median_work_deviation = 0.0; ///< NaN-free median (0 if no baseline)
  double inflated_percent = 0.0;      ///< grains above the deviation threshold
  double poor_mem_util_percent = 0.0;
};

enum class SourceSort : u8 { ByCount, ByWorkShare, ByInflation, ByLowBenefit };

/// Builds one row per distinct source location, sorted per `sort`.
std::vector<SourceProfileRow> source_profile(
    const Trace& trace, const GrainTable& grains, const MetricsResult& metrics,
    const ProblemThresholds& thresholds, SourceSort sort = SourceSort::ByCount);

}  // namespace gg
