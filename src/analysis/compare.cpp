#include "analysis/compare.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/strings.hpp"
#include "common/table.hpp"

namespace gg {

Comparison compare_runs(const Trace& before_trace, const Analysis& before,
                        const Trace& after_trace, const Analysis& after) {
  Comparison c;
  c.makespan_before = before_trace.makespan();
  c.makespan_after = after_trace.makespan();
  c.speedup = c.makespan_after == 0
                  ? 0.0
                  : static_cast<double>(c.makespan_before) /
                        static_cast<double>(c.makespan_after);
  c.grains_before = before.grains.size();
  c.grains_after = after.grains.size();
  for (size_t p = 0; p < kProblemCount; ++p) {
    c.problems[p] = {before.problems[p].flagged_percent,
                     after.problems[p].flagged_percent};
  }

  // Per-source deltas: union of definitions from both runs.
  std::map<std::string, SourceDelta> by_src;
  for (const SourceProfileRow& r : before.sources) {
    SourceDelta& d = by_src[r.source];
    d.source = r.source;
    d.grains_before = r.grain_count;
    d.work_share_before = r.work_share;
    d.low_benefit_before = r.low_benefit_percent;
    d.inflated_before = r.inflated_percent;
    d.poor_mem_before = r.poor_mem_util_percent;
  }
  for (const SourceProfileRow& r : after.sources) {
    SourceDelta& d = by_src[r.source];
    d.source = r.source;
    d.grains_after = r.grain_count;
    d.work_share_after = r.work_share;
    d.low_benefit_after = r.low_benefit_percent;
    d.inflated_after = r.inflated_percent;
    d.poor_mem_after = r.poor_mem_util_percent;
  }
  for (auto& [src, d] : by_src) c.sources.push_back(d);
  std::sort(c.sources.begin(), c.sources.end(),
            [](const SourceDelta& a, const SourceDelta& b) {
              return a.work_share_before > b.work_share_before;
            });

  // Matched-grain execution-time shifts (tasks only; chunk ids depend on
  // the team size).
  for (const Grain& g : after.grains.grains()) {
    if (g.kind != GrainKind::Task) continue;
    const Grain* ref = before.grains.by_path(g.path);
    if (ref == nullptr || ref->exec_time == 0) continue;
    const double ratio = static_cast<double>(g.exec_time) /
                         static_cast<double>(ref->exec_time);
    if (ratio < 0.8) ++c.grains_faster;
    if (ratio > 1.2) ++c.grains_slower;
  }
  return c;
}

std::string render_comparison(const Comparison& c) {
  std::ostringstream os;
  os << "=== before -> after comparison ===\n";
  os << "makespan " << strings::human_time(c.makespan_before) << " -> "
     << strings::human_time(c.makespan_after) << "  (speedup "
     << strings::trim_double(c.speedup, 2) << "x)\n";
  os << "grains " << c.grains_before << " -> " << c.grains_after << "\n";
  os << "matched task grains >20% faster: " << c.grains_faster
     << ", slower: " << c.grains_slower << "\n";
  Table problems("problems (affected grains %, before -> after)");
  problems.set_header({"problem", "before", "after"});
  for (size_t p = 0; p < kProblemCount; ++p) {
    problems.add_row({to_string(static_cast<Problem>(p)),
                      strings::trim_double(c.problems[p].first, 1),
                      strings::trim_double(c.problems[p].second, 1)});
  }
  os << problems.to_text();
  Table sources("definitions (sorted by work share before)");
  sources.set_header({"definition", "grains b->a", "work% b->a",
                      "low benefit% b->a", "inflated% b->a"});
  for (const SourceDelta& d : c.sources) {
    sources.add_row(
        {d.source,
         std::to_string(d.grains_before) + " -> " +
             std::to_string(d.grains_after),
         strings::trim_double(100.0 * d.work_share_before, 1) + " -> " +
             strings::trim_double(100.0 * d.work_share_after, 1),
         strings::trim_double(d.low_benefit_before, 1) + " -> " +
             strings::trim_double(d.low_benefit_after, 1),
         strings::trim_double(d.inflated_before, 1) + " -> " +
             strings::trim_double(d.inflated_after, 1)});
  }
  os << sources.to_text();
  return os.str();
}

}  // namespace gg
