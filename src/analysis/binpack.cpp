#include "analysis/binpack.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/check.hpp"

namespace gg {

namespace {

/// First-fit decreasing over pre-sorted (descending) items. Returns bin
/// loads, or empty if any item exceeds the capacity.
std::vector<u64> ffd(const std::vector<u64>& sorted, u64 capacity) {
  std::vector<u64> bins;
  for (u64 item : sorted) {
    if (item > capacity) return {};
    bool placed = false;
    for (u64& load : bins) {
      if (load + item <= capacity) {
        load += item;
        placed = true;
        break;
      }
    }
    if (!placed) bins.push_back(item);
  }
  return bins;
}

/// Can `sorted` be packed into `k` bins of `capacity`? Exact backtracking
/// with symmetry pruning (identical bin loads are interchangeable). On
/// success `*out_loads` (if given) receives the bin loads.
bool packable(const std::vector<u64>& sorted, u64 capacity, size_t k,
              size_t node_budget, std::vector<u64>* out_loads = nullptr) {
  std::vector<u64> bins(k, 0);
  size_t nodes = 0;
  std::function<bool(size_t)> place = [&](size_t i) -> bool {
    if (i == sorted.size()) {
      if (out_loads != nullptr) *out_loads = bins;
      return true;
    }
    if (++nodes > node_budget) return false;  // give up -> treated as "no"
    u64 tried_load = ~u64{0};
    for (size_t b = 0; b < bins.size(); ++b) {
      if (bins[b] == tried_load) continue;  // symmetric to a tried bin
      if (bins[b] + sorted[i] > capacity) continue;
      tried_load = bins[b];
      bins[b] += sorted[i];
      if (place(i + 1)) return true;
      bins[b] -= sorted[i];
      if (bins[b] == 0) break;  // empty bins are interchangeable
    }
    return false;
  };
  return place(0);
}

}  // namespace

BinPackResult min_bins(std::vector<u64> items, u64 capacity,
                       size_t exact_limit) {
  BinPackResult res;
  std::erase(items, u64{0});
  if (items.empty()) {
    res.bins = items.empty() ? 0 : 1;
    res.exact = true;
    return res;
  }
  GG_CHECK(capacity > 0);
  std::sort(items.begin(), items.end(), std::greater<>());
  if (items.front() > capacity) {
    // Infeasible: even one item overflows. Report the tight lower bound of
    // one bin per oversized item plus FFD of the rest at face value.
    res.bins = static_cast<int>(items.size());
    res.exact = false;
    res.max_bin_load = items.front();
    return res;
  }
  std::vector<u64> heur = ffd(items, capacity);
  size_t best = heur.size();
  std::vector<u64> best_loads = heur;
  // Volume lower bound.
  const u64 total = std::accumulate(items.begin(), items.end(), u64{0});
  const size_t lower =
      static_cast<size_t>((total + capacity - 1) / capacity);
  res.exact = best == lower;
  if (!res.exact && items.size() <= exact_limit) {
    // Try to close the gap exactly.
    res.exact = true;
    for (size_t k = lower; k < best; ++k) {
      std::vector<u64> loads;
      if (packable(items, capacity, k, 2'000'000, &loads)) {
        best = k;
        best_loads = std::move(loads);
        break;
      }
    }
  }
  res.bins = static_cast<int>(std::max<size_t>(1, best));
  res.max_bin_load =
      best_loads.empty() ? 0
                         : *std::max_element(best_loads.begin(),
                                             best_loads.end());
  return res;
}

int min_cores_for_makespan(const std::vector<u64>& durations, u64 makespan) {
  if (makespan == 0) return 1;
  const BinPackResult r = min_bins(durations, makespan);
  return std::max(1, r.bins);
}

}  // namespace gg
