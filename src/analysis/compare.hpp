// Before/after comparison of two analyses of the same program — the
// paper's optimization work flow is exactly this loop (profile, fix,
// re-profile, compare): Fig. 1 compares makespans, Fig. 6c/d inflation
// tables, Fig. 7 per-definition benefit tables.
//
// Task grains are matched by their schedule-independent path ids, so the
// comparison survives cutoff changes that remove grains ("not all grains
// are created in the optimized program", Fig. 7).
#pragma once

#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "trace/trace.hpp"

namespace gg {

struct SourceDelta {
  std::string source;
  size_t grains_before = 0;
  size_t grains_after = 0;  ///< 0 = definition eliminated by the fix
  double work_share_before = 0.0;
  double work_share_after = 0.0;
  double low_benefit_before = 0.0;  ///< percent
  double low_benefit_after = 0.0;
  double inflated_before = 0.0;
  double inflated_after = 0.0;
  double poor_mem_before = 0.0;
  double poor_mem_after = 0.0;
};

struct Comparison {
  TimeNs makespan_before = 0;
  TimeNs makespan_after = 0;
  double speedup = 0.0;  ///< makespan_before / makespan_after
  size_t grains_before = 0;
  size_t grains_after = 0;
  /// Per-problem affected percent before -> after.
  std::array<std::pair<double, double>, kProblemCount> problems{};
  /// Per-source-definition deltas, ordered by work share before.
  std::vector<SourceDelta> sources;
  /// Task grains present in both runs whose execution time changed by more
  /// than 20% (matched by path id) — candidates the fix actually touched.
  size_t grains_faster = 0;
  size_t grains_slower = 0;
};

/// Compares two analyses of the same program (before/after an optimization).
Comparison compare_runs(const Trace& before_trace, const Analysis& before,
                        const Trace& after_trace, const Analysis& after);

/// Renders the comparison as an aligned text report.
std::string render_comparison(const Comparison& c);

}  // namespace gg
