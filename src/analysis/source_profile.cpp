#include "analysis/source_profile.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/check.hpp"
#include "common/stats.hpp"

namespace gg {

std::vector<SourceProfileRow> source_profile(const Trace& trace,
                                             const GrainTable& grains,
                                             const MetricsResult& metrics,
                                             const ProblemThresholds& th,
                                             SourceSort sort) {
  GG_CHECK(metrics.per_grain.size() == grains.size());
  struct Acc {
    std::vector<u64> exec;
    std::vector<double> benefit;
    std::vector<double> deviation;
    TimeNs total = 0;
    size_t low_benefit = 0;
    size_t inflated = 0;
    size_t poor_mem = 0;
  };
  std::map<StrId, Acc> by_src;
  TimeNs grand_total = 0;
  const auto& table = grains.grains();
  for (size_t i = 0; i < table.size(); ++i) {
    const Grain& g = table[i];
    const GrainMetrics& m = metrics.per_grain[i];
    Acc& a = by_src[g.src];
    a.exec.push_back(g.exec_time);
    a.total += g.exec_time;
    grand_total += g.exec_time;
    if (std::isfinite(m.parallel_benefit)) a.benefit.push_back(m.parallel_benefit);
    if (m.parallel_benefit < th.parallel_benefit_min) ++a.low_benefit;
    if (!std::isnan(m.work_deviation)) {
      a.deviation.push_back(m.work_deviation);
      if (m.work_deviation > th.work_deviation_max) ++a.inflated;
    }
    if (m.mem_util < th.mem_util_min) ++a.poor_mem;
  }

  std::vector<SourceProfileRow> rows;
  rows.reserve(by_src.size());
  for (auto& [src, a] : by_src) {
    SourceProfileRow r;
    r.source = std::string(trace.strings.get(src));
    r.grain_count = a.exec.size();
    r.total_exec = a.total;
    r.work_share = grand_total == 0
                       ? 0.0
                       : static_cast<double>(a.total) /
                             static_cast<double>(grand_total);
    r.median_exec = static_cast<TimeNs>(stats::median(a.exec));
    r.median_parallel_benefit = stats::median(a.benefit);
    r.low_benefit_percent =
        100.0 * static_cast<double>(a.low_benefit) /
        static_cast<double>(r.grain_count);
    r.median_work_deviation = stats::median(a.deviation);
    r.inflated_percent = a.deviation.empty()
                             ? 0.0
                             : 100.0 * static_cast<double>(a.inflated) /
                                   static_cast<double>(a.deviation.size());
    r.poor_mem_util_percent = 100.0 * static_cast<double>(a.poor_mem) /
                              static_cast<double>(r.grain_count);
    rows.push_back(std::move(r));
  }
  auto key = [&](const SourceProfileRow& r) -> double {
    switch (sort) {
      case SourceSort::ByCount: return static_cast<double>(r.grain_count);
      case SourceSort::ByWorkShare: return r.work_share;
      case SourceSort::ByInflation: return r.median_work_deviation;
      case SourceSort::ByLowBenefit: return r.low_benefit_percent;
    }
    return 0.0;
  };
  std::sort(rows.begin(), rows.end(),
            [&](const SourceProfileRow& a, const SourceProfileRow& b) {
              return key(a) > key(b);
            });
  return rows;
}

}  // namespace gg
