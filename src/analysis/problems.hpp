// Problem detection and highlighting (paper §3.3).
//
// Default thresholds, straight from the paper: memory-hierarchy utilization
// < 2, parallel benefit < 1, load balance > 1, work deviation > 2,
// instantaneous parallelism < cores used, and scatter farther than one CPU
// socket. Grains that cross a threshold are highlighted with a severity in
// [0,1] (the paper's red-to-yellow gradients); others are dimmed.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "topology/topology.hpp"

namespace gg {

enum class Problem : u8 {
  LowParallelBenefit = 0,
  WorkInflation,
  PoorMemUtil,
  LowParallelism,
  HighScatter,
  kCount
};

constexpr size_t kProblemCount = static_cast<size_t>(Problem::kCount);

const char* to_string(Problem p);

struct ProblemThresholds {
  double parallel_benefit_min = 1.0;
  double work_deviation_max = 2.0;
  double mem_util_min = 2.0;
  int min_parallelism = 0;    ///< 0 = number of cores used in the run
  int scatter_max = 0;        ///< 0 = same-socket NUMA distance (off-socket
                              ///< scatter is highlighted)
  bool optimistic_parallelism = true;  ///< which flavor feeds LowParallelism

  /// Paper defaults resolved against a run (cores used) and a topology.
  static ProblemThresholds defaults(int cores_used, const Topology& topo);
};

/// Per-grain verdicts for one problem view.
struct ProblemView {
  Problem problem = Problem::LowParallelBenefit;
  std::vector<bool> flagged;       ///< aligned with the grain table
  std::vector<double> severity;    ///< 0 (mild) .. 1 (worst); 0 if not flagged
  size_t flagged_count = 0;
  double flagged_percent = 0.0;    ///< the paper's "affected grains (%)"
};

/// Evaluates one problem across all grains.
ProblemView evaluate_problem(Problem problem, const GrainTable& grains,
                             const MetricsResult& metrics,
                             const ProblemThresholds& thresholds);

/// Evaluates every problem.
std::array<ProblemView, kProblemCount> evaluate_all(
    const GrainTable& grains, const MetricsResult& metrics,
    const ProblemThresholds& thresholds);

/// Severity -> red-to-yellow linear gradient (red = severity 1), as "#rrggbb".
/// Non-flagged grains are dimmed gray.
std::string severity_color(double severity);
std::string dimmed_color();

}  // namespace gg
