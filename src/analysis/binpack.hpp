// Minimum-cores bin packing (paper §4.3.4).
//
// Freqmine's FPGF loop is bound to be imbalanced, so the paper optimizes
// resource usage instead: "We used a straight-forward bin-packer implemented
// in Gecode to compute the minimum number of cores necessary to retain the
// same makespan — 7 cores." We replace the Gecode dependency with a
// first-fit-decreasing heuristic plus an exact branch-and-bound refinement
// for small item counts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"

namespace gg {

struct BinPackResult {
  int bins = 0;            ///< minimum cores found
  bool exact = false;      ///< true if proven optimal (B&B completed)
  u64 max_bin_load = 0;    ///< the packed makespan achieved
};

/// Packs `items` (grain durations) into the fewest bins of capacity
/// `capacity` (the makespan to retain). `exact_limit` bounds the item count
/// for the branch-and-bound refinement; larger inputs return the FFD
/// solution (which is within 11/9 OPT + 1).
BinPackResult min_bins(std::vector<u64> items, u64 capacity,
                       std::size_t exact_limit = 64);

/// Convenience: the minimum number of cores that keeps the same makespan for
/// the given grain durations (capacity = observed makespan). Returns at
/// least 1.
int min_cores_for_makespan(const std::vector<u64>& durations, u64 makespan);

}  // namespace gg
