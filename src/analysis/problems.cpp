#include "analysis/problems.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.hpp"

namespace gg {

const char* to_string(Problem p) {
  switch (p) {
    case Problem::LowParallelBenefit: return "low parallel benefit";
    case Problem::WorkInflation: return "work inflation";
    case Problem::PoorMemUtil: return "poor memory hierarchy utilization";
    case Problem::LowParallelism: return "low instantaneous parallelism";
    case Problem::HighScatter: return "high scatter";
    case Problem::kCount: break;
  }
  return "?";
}

ProblemThresholds ProblemThresholds::defaults(int cores_used,
                                              const Topology& topo) {
  ProblemThresholds t;
  t.min_parallelism = cores_used;
  // "Scatter farther than the number of cores in a CPU socket": in NUMA
  // distance terms, anything beyond the same-socket distance.
  int same_socket = 10;
  if (topo.num_numa_nodes() > 1) {
    // Distance between the two dies of socket 0, or the local distance on
    // single-die sockets.
    const int node0 = topo.numa_of_core(0);
    const int last_core_socket0 = topo.cores_per_socket() - 1;
    same_socket = topo.numa_distance(node0, topo.numa_of_core(last_core_socket0));
  }
  t.scatter_max = same_socket;
  return t;
}

ProblemView evaluate_problem(Problem problem, const GrainTable& grains,
                             const MetricsResult& metrics,
                             const ProblemThresholds& th) {
  const size_t n = grains.size();
  GG_CHECK(metrics.per_grain.size() == n);
  ProblemView view;
  view.problem = problem;
  view.flagged.assign(n, false);
  view.severity.assign(n, 0.0);

  // Severity maps the metric linearly between the threshold (severity 0) and
  // an extreme value (severity 1).
  auto clamp01 = [](double x) { return std::min(1.0, std::max(0.0, x)); };
  for (size_t i = 0; i < n; ++i) {
    const GrainMetrics& m = metrics.per_grain[i];
    bool flag = false;
    double sev = 0.0;
    switch (problem) {
      case Problem::LowParallelBenefit:
        flag = m.parallel_benefit < th.parallel_benefit_min;
        if (flag)
          sev = clamp01(1.0 - m.parallel_benefit / th.parallel_benefit_min);
        break;
      case Problem::WorkInflation:
        flag = !std::isnan(m.work_deviation) &&
               m.work_deviation > th.work_deviation_max;
        if (flag)
          sev = clamp01((m.work_deviation - th.work_deviation_max) /
                        (3.0 * th.work_deviation_max));
        break;
      case Problem::PoorMemUtil:
        flag = m.mem_util < th.mem_util_min;
        if (flag) sev = clamp01(1.0 - m.mem_util / th.mem_util_min);
        break;
      case Problem::LowParallelism: {
        const int ip = th.optimistic_parallelism
                           ? m.inst_parallelism_optimistic
                           : m.inst_parallelism;
        flag = ip < th.min_parallelism;
        if (flag && th.min_parallelism > 0)
          sev = clamp01(1.0 - static_cast<double>(ip) /
                                  static_cast<double>(th.min_parallelism));
        break;
      }
      case Problem::HighScatter:
        flag = m.scatter > static_cast<double>(th.scatter_max);
        if (flag)
          sev = clamp01((m.scatter - th.scatter_max) /
                        std::max(1.0, 1.5 * th.scatter_max));
        break;
      case Problem::kCount:
        break;
    }
    view.flagged[i] = flag;
    view.severity[i] = flag ? sev : 0.0;
    if (flag) ++view.flagged_count;
  }
  view.flagged_percent =
      n == 0 ? 0.0
             : 100.0 * static_cast<double>(view.flagged_count) /
                   static_cast<double>(n);
  return view;
}

std::array<ProblemView, kProblemCount> evaluate_all(
    const GrainTable& grains, const MetricsResult& metrics,
    const ProblemThresholds& thresholds) {
  std::array<ProblemView, kProblemCount> out;
  for (size_t p = 0; p < kProblemCount; ++p) {
    out[p] = evaluate_problem(static_cast<Problem>(p), grains, metrics,
                              thresholds);
  }
  return out;
}

std::string severity_color(double severity) {
  // Linear red-to-yellow: severity 1 -> #ff0000, severity 0 -> #ffe000.
  const double s = std::min(1.0, std::max(0.0, severity));
  const int green = static_cast<int>(std::lround(224.0 * (1.0 - s)));
  char buf[8];
  std::snprintf(buf, sizeof buf, "#ff%02x00", green);
  return buf;
}

std::string dimmed_color() { return "#d9d9d9"; }

}  // namespace gg
