// One-call analysis pipeline: trace -> grain graph -> grain table ->
// metrics -> problem views, plus a textual report renderer. This is the
// programmer-facing work flow of §4.2: build the graph, shift between
// problem views, read grain properties, drill into source locations.
#pragma once

#include <array>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/problems.hpp"
#include "analysis/source_profile.hpp"
#include "graph/grain_graph.hpp"
#include "graph/grain_table.hpp"
#include "metrics/metrics.hpp"
#include "topology/topology.hpp"
#include "trace/trace.hpp"

namespace gg {

struct AnalysisOptions {
  MetricOptions metrics;
  /// Unset fields of thresholds resolve to paper defaults for the run.
  std::optional<ProblemThresholds> thresholds;
  /// 1-core grain table of the same program, enabling work deviation.
  const GrainTable* baseline = nullptr;
  /// Worker threads for the sharded graph build and grain derivation.
  /// 0 = auto (GG_THREADS env, then hardware concurrency). Results are
  /// bit-identical for every setting, same contract as metrics.threads.
  int threads = 0;
};

struct Analysis {
  GrainGraph graph;
  GrainTable grains;
  MetricsResult metrics;
  ProblemThresholds thresholds;
  std::array<ProblemView, kProblemCount> problems;
  std::vector<SourceProfileRow> sources;  ///< sorted by creation count
};

/// Per-stage wall times of one analyze() call, in nanoseconds.
struct AnalysisTimings {
  i64 graph_ns = 0;
  i64 grains_ns = 0;
  i64 metrics_ns = 0;
  i64 problems_ns = 0;  ///< thresholds + problem views + source profile
  /// Resolved worker counts the parallel stages actually ran with (what an
  /// `0 = auto` request expanded to).
  int graph_threads = 1;
  int grains_threads = 1;
  int metrics_threads = 1;
  /// Per-pass breakdown of the metrics stage (copied from MetricsResult).
  MetricPassTimings metric_passes;
  i64 total_ns() const {
    return graph_ns + grains_ns + metrics_ns + problems_ns;
  }
};

/// Wall times of one whole tool invocation: trace load, analysis stages,
/// and each export that ran (name, ns) in execution order. This is the
/// machine-readable counterpart of `gganalyze --timing`.
struct PipelineTimings {
  i64 load_ns = 0;
  AnalysisTimings analysis;
  std::vector<std::pair<std::string, i64>> exports;
};

/// Runs the full pipeline on a finalized trace. When `timings` is non-null
/// it receives the wall time of each stage.
Analysis analyze(const Trace& trace, const Topology& topo,
                 const AnalysisOptions& opts = {},
                 AnalysisTimings* timings = nullptr);

/// Renders the summary the paper's tool shows next to the graph: makespan,
/// grain counts, critical path, load balance, per-problem affected-grain
/// percentages, and the per-source table.
std::string render_report(const Trace& trace, const Analysis& a);

}  // namespace gg
