#include "topology/topology.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace gg {

Topology Topology::symmetric(int sockets, int numa_per_socket,
                             int cores_per_numa, std::string name) {
  GG_CHECK(sockets >= 1 && numa_per_socket >= 1 && cores_per_numa >= 1);
  Topology t;
  t.name_ = std::move(name);
  t.num_sockets_ = sockets;
  t.cores_per_numa_ = cores_per_numa;
  t.cores_per_socket_ = numa_per_socket * cores_per_numa;
  const int nodes = sockets * numa_per_socket;
  for (int node = 0; node < nodes; ++node) {
    const int socket = node / numa_per_socket;
    for (int c = 0; c < cores_per_numa; ++c) {
      t.core_numa_.push_back(node);
      t.core_socket_.push_back(socket);
    }
  }
  t.distance_.assign(static_cast<size_t>(nodes),
                     std::vector<int>(static_cast<size_t>(nodes), 0));
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      if (a == b) {
        t.distance_[a][b] = 10;
      } else if (a / numa_per_socket == b / numa_per_socket) {
        t.distance_[a][b] = 16;
      } else {
        t.distance_[a][b] = 22;
      }
    }
  }
  return t;
}

Topology Topology::opteron48() {
  Topology t = symmetric(/*sockets=*/4, /*numa_per_socket=*/2,
                         /*cores_per_numa=*/6, "opteron48");
  t.ghz_ = 2.1;
  // Magny-Cours: 512 KB private L2 per core, 6 MB L3 per die.
  t.memory_.private_cache_bytes = 512 * 1024;
  t.memory_.shared_cache_bytes = 6 * 1024 * 1024;
  return t;
}

Topology Topology::generic4() {
  Topology t = symmetric(1, 1, 4, "generic4");
  t.ghz_ = 2.0;
  return t;
}

Topology Topology::generic16() {
  Topology t = symmetric(2, 2, 4, "generic16");
  t.ghz_ = 2.0;
  return t;
}

int Topology::numa_of_core(int core) const {
  GG_CHECK(core >= 0 && core < num_cores());
  return core_numa_[static_cast<size_t>(core)];
}

int Topology::socket_of_core(int core) const {
  GG_CHECK(core >= 0 && core < num_cores());
  return core_socket_[static_cast<size_t>(core)];
}

int Topology::numa_distance(int node_a, int node_b) const {
  GG_CHECK(node_a >= 0 && node_a < num_numa_nodes());
  GG_CHECK(node_b >= 0 && node_b < num_numa_nodes());
  return distance_[static_cast<size_t>(node_a)][static_cast<size_t>(node_b)];
}

int Topology::core_distance(int core_a, int core_b) const {
  if (core_a == core_b) return 0;
  return numa_distance(numa_of_core(core_a), numa_of_core(core_b));
}

std::vector<int> Topology::cores_of_numa(int node) const {
  std::vector<int> cores;
  for (int c = 0; c < num_cores(); ++c) {
    if (core_numa_[static_cast<size_t>(c)] == node) cores.push_back(c);
  }
  return cores;
}

TimeNs Topology::cycles_to_ns(Cycles c) const {
  return static_cast<TimeNs>(static_cast<double>(c) / ghz_);
}

Cycles Topology::ns_to_cycles(TimeNs ns) const {
  return static_cast<Cycles>(static_cast<double>(ns) * ghz_);
}

}  // namespace gg
