// Machine topology descriptions.
//
// The scatter metric (§3.2 of the paper) measures the median pairwise
// distance in the system topology between cores executing sibling grains,
// using the NUMA distance table. The simulator additionally uses the
// topology for its memory cost model (private cache size, NUMA latencies,
// cores per socket). The paper's test machine — 4 × 2.1 GHz AMD Opteron
// 6172 (12 cores each, 2 NUMA dies of 6 cores per package), 48 cores, 8
// NUMA nodes, 64 GB — ships as the `opteron48()` preset.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace gg {

/// Cache and memory latency parameters used by the simulator's cost model.
/// Latencies are in processor cycles per cache line.
struct MemoryParams {
  u64 private_cache_bytes = 512 * 1024;  ///< per-core private cache (L1+L2)
  u64 shared_cache_bytes = 6 * 1024 * 1024;  ///< per-NUMA-die shared L3
  u32 line_bytes = 64;
  u32 local_line_cycles = 60;    ///< miss serviced by the local NUMA node
  u32 distance_unit_cycles = 8;  ///< extra cycles per NUMA-distance unit
                                 ///< above the local distance
  u32 l1_miss_cycles = 12;       ///< strided access missing L1, hitting L2
  u32 l1_stream_cycles = 2;      ///< sequential (prefetched) L1 refill
  double contention_factor = 0.04;  ///< memory-controller queueing slope per
                                    ///< extra core hammering the same node
  double coherence_rate = 0.2;    ///< fraction of strided re-walk misses that
                                 ///< hit remote caches under multicore
                                 ///< execution (coherence traffic — Olivier
                                 ///< et al.'s work-inflation source)
};

/// Description of a shared-memory machine: cores grouped into NUMA nodes
/// grouped into sockets, plus the ACPI-style NUMA distance table.
class Topology {
 public:
  Topology() = default;

  /// Builds a symmetric machine: `sockets` sockets, `numa_per_socket` NUMA
  /// nodes per socket, `cores_per_numa` cores per node. Distances follow the
  /// common ACPI convention: 10 local, 16 same-socket, 22 one-hop remote.
  static Topology symmetric(int sockets, int numa_per_socket,
                            int cores_per_numa, std::string name);

  /// The paper's machine: 4 sockets x 2 NUMA dies x 6 cores = 48 cores,
  /// 2.1 GHz, frequency scaling disabled.
  static Topology opteron48();

  /// Small presets for tests and laptop-scale examples.
  static Topology generic4();
  static Topology generic16();

  const std::string& name() const { return name_; }
  int num_cores() const { return static_cast<int>(core_numa_.size()); }
  int num_numa_nodes() const { return static_cast<int>(distance_.size()); }
  int num_sockets() const { return num_sockets_; }
  int cores_per_socket() const { return cores_per_socket_; }
  int cores_per_numa() const { return cores_per_numa_; }
  double ghz() const { return ghz_; }
  void set_ghz(double ghz) { ghz_ = ghz; }

  int numa_of_core(int core) const;
  int socket_of_core(int core) const;

  /// NUMA distance between two nodes (10 == local by ACPI convention).
  int numa_distance(int node_a, int node_b) const;

  /// Distance between the NUMA nodes of two cores; 0 when equal cores.
  int core_distance(int core_a, int core_b) const;

  /// Cores that belong to the given NUMA node, in id order.
  std::vector<int> cores_of_numa(int node) const;

  /// Converts cycles to nanoseconds at this machine's frequency.
  TimeNs cycles_to_ns(Cycles c) const;
  Cycles ns_to_cycles(TimeNs ns) const;

  const MemoryParams& memory() const { return memory_; }
  MemoryParams& memory() { return memory_; }

 private:
  std::string name_;
  std::vector<int> core_numa_;    // core id -> NUMA node
  std::vector<int> core_socket_;  // core id -> socket
  std::vector<std::vector<int>> distance_;
  int num_sockets_ = 0;
  int cores_per_socket_ = 0;
  int cores_per_numa_ = 0;
  double ghz_ = 2.1;
  MemoryParams memory_;
};

}  // namespace gg
