// Chase–Lev dynamic circular work-stealing deque (SPAA'05), the lock-free
// task queue the MIR runtime uses (paper §4.2, citing Chase & Lev [8]).
//
// Memory ordering follows Lê, Pop, Cohen & Zappa Nardelli, "Correct and
// Efficient Work-Stealing for Weak Memory Models" (PPoPP'13), with the
// standalone fences of that formulation replaced by equivalent (or
// stronger) orderings on the operations themselves: ThreadSanitizer does
// not model atomic_thread_fence, and operation-level orderings keep the
// whole runtime TSan-clean without suppressions. The owner pushes and pops
// at the bottom; thieves steal from the top. Retired buffers are kept
// alive until destruction so racing thieves never read freed memory (a
// standard simplification in runtime deques; growth is amortized and
// buffers are small).
//
// Every scheduling-relevant step announces itself through a preemption
// point (rts/preempt.hpp) so the deterministic schedule controller can
// explore interleavings. The GG_MUT_* blocks are compile-time seeded bugs
// for the mutation smoke-test (tests/mutation_smoke_test.cpp): they exist
// to prove the schedule-exploration harness detects exactly these bug
// classes, and are never enabled in production builds.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "rts/preempt.hpp"

namespace gg::rts {

template <typename T>
class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "slots are raw atomics; store pointers or handles");

 public:
  explicit ChaseLevDeque(size_t initial_capacity = 64) {
    GG_CHECK((initial_capacity & (initial_capacity - 1)) == 0);
    auto buf = std::make_unique<Buffer>(initial_capacity);
    buffer_.store(buf.get(), std::memory_order_relaxed);
    retired_.push_back(std::move(buf));
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;

  /// Owner-only: pushes a value at the bottom.
  void push(T value) {
    preempt_point(PreemptPoint::DequePush);
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t > static_cast<i64>(buf->capacity) - 1) {
      buf = grow(buf, t, b);
    }
#ifdef GG_MUT_DEQUE_PUSH_PUBLISH_EARLY
    // Seeded bug: the bottom publish is reordered before the slot write, so
    // a thief scheduled in between reads an unwritten (or stale) slot.
    bottom_.store(b + 1, std::memory_order_release);
    preempt_point(PreemptPoint::DequePushPublish);
    buf->put(b, value);
#else
    buf->put(b, value);
    preempt_point(PreemptPoint::DequePushPublish);
    // Release on the bottom store publishes the slot write to thieves whose
    // bottom load (seq_cst, hence acquire) observes it.
    bottom_.store(b + 1, std::memory_order_release);
#endif
  }

  /// Owner-only: pops the most recently pushed value (LIFO). When
  /// `lost_race` is given it is set to true iff the pop failed because a
  /// thief won the CAS on the last element (scheduler introspection).
  std::optional<T> pop(bool* lost_race = nullptr) {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::DequePopReserve);
    const i64 b = bottom_.load(std::memory_order_relaxed) - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // The seq_cst store/load pair below orders this reservation against
    // concurrent thieves' (seq_cst) top/bottom accesses, replacing the
    // classic seq_cst fence.
    bottom_.store(b, std::memory_order_seq_cst);
    i64 t = top_.load(std::memory_order_seq_cst);
    if (t <= b) {
      T value = buf->get(b);
      if (t == b) {
        preempt_point(PreemptPoint::DequePopCas);
#ifdef GG_MUT_DEQUE_POP_SKIP_CAS
        // Seeded bug: the owner claims the last element without racing the
        // thieves on top, so a thief that already read the slot delivers
        // the same element a second time.
        if (lost_race) *lost_race = false;
        return value;
#else
        // Last element: race against thieves for it.
        const bool won = top_.compare_exchange_strong(
            t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
        bottom_.store(b + 1, std::memory_order_relaxed);
        if (!won && lost_race) *lost_race = true;
        return won ? std::optional<T>(value) : std::nullopt;
#endif
      }
      return value;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return std::nullopt;
  }

  /// Thief: steals the oldest value (FIFO end). May spuriously fail under
  /// contention; callers retry or move to the next victim. When `lost_race`
  /// is given it is set to true iff the steal saw an element but lost the
  /// top CAS to a competing thief or the owner.
  std::optional<T> steal(bool* lost_race = nullptr) {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::DequeStealLoad);
    i64 t = top_.load(std::memory_order_seq_cst);
    const i64 b = bottom_.load(std::memory_order_seq_cst);
    if (t < b) {
      Buffer* buf = buffer_.load(std::memory_order_acquire);
      T value = buf->get(t);
      preempt_point(PreemptPoint::DequeStealCas);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        if (lost_race) *lost_race = true;
        return std::nullopt;
      }
      return value;
    }
    return std::nullopt;
  }

  /// Approximate number of queued items (any thread).
  size_t size_estimate() const {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

  /// Times the buffer doubled since construction. Owner-written (amortized,
  /// off the hot path) but readable from any thread: the telemetry sampler
  /// and supervisor poll it while the owner is live, so the counter is a
  /// relaxed atomic — monotonic, no ordering implied for other state.
  u64 resize_count() const {
    return resizes_.load(std::memory_order_relaxed);
  }

 private:
  struct Buffer {
    explicit Buffer(size_t cap)
        : capacity(cap), mask(cap - 1),
          slots(std::make_unique<std::atomic<T>[]>(cap)) {}
    T get(i64 i) const {
      return slots[static_cast<size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(i64 i, T v) {
      slots[static_cast<size_t>(i) & mask].store(v,
                                                 std::memory_order_relaxed);
    }
    size_t capacity;
    size_t mask;
    std::unique_ptr<std::atomic<T>[]> slots;
  };

  // Owner-only: doubles the buffer, copying live entries [t, b).
  Buffer* grow(Buffer* old, i64 t, i64 b) {
    resizes_.fetch_add(1, std::memory_order_relaxed);
    auto bigger = std::make_unique<Buffer>(old->capacity * 2);
#ifdef GG_MUT_DEQUE_GROW_DROP_OLDEST
    // Seeded bug: the copy starts one past the top, losing the oldest live
    // element (a thief that raced the growth reads a never-written slot).
    for (i64 i = t + 1; i < b; ++i) bigger->put(i, old->get(i));
#else
    for (i64 i = t; i < b; ++i) bigger->put(i, old->get(i));
#endif
    Buffer* raw = bigger.get();
    buffer_.store(raw, std::memory_order_release);
    retired_.push_back(std::move(bigger));
    return raw;
  }

  std::atomic<i64> top_{0};
  std::atomic<i64> bottom_{0};
  std::atomic<Buffer*> buffer_{nullptr};
  std::vector<std::unique_ptr<Buffer>> retired_;  // owner-only mutation
  std::atomic<u64> resizes_{0};  // owner-written, any-thread readable
};

}  // namespace gg::rts
