// Explicit preemption points for deterministic concurrency testing.
//
// The threaded runtime's lock-free fast paths (Chase-Lev deque, central
// queue) are exactly where schedule-sensitive bugs hide, yet the host OS
// only ever shows us a few interleavings. The runtime therefore announces
// every scheduling-relevant step through a PreemptObserver hook. In normal
// operation no observer is installed and each hook is a single relaxed
// atomic load plus an untaken branch; under the schedule controller
// (src/check/schedule.hpp) the observer serializes all worker threads and
// decides, seeded and replayably, which thread runs through each point.
#pragma once

#include <atomic>

#include "common/types.hpp"

namespace gg::rts {

/// Where in the runtime a preemption point sits. The names matter for
/// diagnostics only; the schedule controller treats all non-Idle points
/// uniformly (switching away at one consumes preemption budget) and Idle
/// points as voluntary yields (always free to switch).
enum class PreemptPoint : u8 {
  DequePush,         ///< owner push, before touching top/bottom
  DequePushPublish,  ///< between the slot write and the bottom publish
  DequePopReserve,   ///< owner pop, before the bottom reservation
  DequePopCas,       ///< owner pop, before the last-element top CAS
  DequeStealLoad,    ///< thief, before loading top/bottom
  DequeStealCas,     ///< thief, after reading the slot, before the top CAS
  DequeCombine,      ///< flat combining, before trying to become combiner
  DequeStamp,        ///< timestamped deque, before acquiring a timestamp
  QueuePush,         ///< central queue enqueue, before taking the lock
  QueuePop,          ///< central queue dequeue, before taking the lock
  TaskExec,          ///< a task body is about to run
  LoopClaim,         ///< a worker is about to claim a loop chunk
  Idle,              ///< a scheduling loop found nothing to do
};

const char* to_string(PreemptPoint p);

/// Callback interface the schedule controller implements. Threads identify
/// themselves once via on_thread_start (worker id) and report termination
/// via on_thread_stop; in between every preempt() call may block the
/// calling thread until the controller schedules it again. Calls from
/// threads that never registered must be (and are) ignored.
class PreemptObserver {
 public:
  virtual ~PreemptObserver() = default;
  virtual void on_thread_start(int worker_id) = 0;
  virtual void on_thread_stop() = 0;
  virtual void preempt(PreemptPoint point) = 0;
};

namespace detail {
inline std::atomic<PreemptObserver*> g_preempt_observer{nullptr};
}  // namespace detail

/// Installs (or, with nullptr, removes) the process-wide observer. Testing
/// only; production runs never install one.
inline void set_preempt_observer(PreemptObserver* obs) {
  detail::g_preempt_observer.store(obs, std::memory_order_release);
}

inline PreemptObserver* preempt_observer() {
  return detail::g_preempt_observer.load(std::memory_order_acquire);
}

/// The hook the runtime calls at every scheduling-relevant step. With no
/// observer installed this is one atomic load and a predictable branch.
inline void preempt_point(PreemptPoint p) {
  if (PreemptObserver* o = preempt_observer()) o->preempt(p);
}

inline void preempt_thread_start(int worker_id) {
  if (PreemptObserver* o = preempt_observer()) o->on_thread_start(worker_id);
}

inline void preempt_thread_stop() {
  if (PreemptObserver* o = preempt_observer()) o->on_thread_stop();
}

inline const char* to_string(PreemptPoint p) {
  switch (p) {
    case PreemptPoint::DequePush: return "deque-push";
    case PreemptPoint::DequePushPublish: return "deque-push-publish";
    case PreemptPoint::DequePopReserve: return "deque-pop-reserve";
    case PreemptPoint::DequePopCas: return "deque-pop-cas";
    case PreemptPoint::DequeStealLoad: return "deque-steal-load";
    case PreemptPoint::DequeStealCas: return "deque-steal-cas";
    case PreemptPoint::DequeCombine: return "deque-combine";
    case PreemptPoint::DequeStamp: return "deque-stamp";
    case PreemptPoint::QueuePush: return "queue-push";
    case PreemptPoint::QueuePop: return "queue-pop";
    case PreemptPoint::TaskExec: return "task-exec";
    case PreemptPoint::LoopClaim: return "loop-claim";
    case PreemptPoint::Idle: return "idle";
  }
  return "?";
}

}  // namespace gg::rts
