// A single mutex-protected FIFO task queue — the "central queue-based task
// scheduler" the paper contrasts with work stealing in the Strassen scatter
// experiment (§4.3.5, Fig. 11d).
//
// Preemption points (rts/preempt.hpp) sit BEFORE the lock acquisition:
// points inside the critical section would let the schedule controller park
// a thread while it holds the mutex and deadlock the serialized schedule.
// The GG_MUT_* block is a compile-time seeded bug for the mutation
// smoke-test; never enabled in production builds.
#pragma once

#include <deque>
#include <mutex>
#include <optional>

#include "rts/preempt.hpp"

namespace gg::rts {

template <typename T>
class CentralQueue {
 public:
  void push(T value) {
    preempt_point(PreemptPoint::QueuePush);
    std::lock_guard lock(mutex_);
    items_.push_back(value);
  }

  std::optional<T> pop() {
    preempt_point(PreemptPoint::QueuePop);
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T v = items_.front();
#ifndef GG_MUT_CQ_POP_NO_REMOVE
    items_.pop_front();
#endif
    // Seeded bug (GG_MUT_CQ_POP_NO_REMOVE): the dequeue returns the front
    // element without removing it, so every consumer sees duplicates.
    return v;
  }

  size_t size_estimate() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

}  // namespace gg::rts
