// A single mutex-protected FIFO task queue — the "central queue-based task
// scheduler" the paper contrasts with work stealing in the Strassen scatter
// experiment (§4.3.5, Fig. 11d).
#pragma once

#include <deque>
#include <mutex>
#include <optional>

namespace gg::rts {

template <typename T>
class CentralQueue {
 public:
  void push(T value) {
    std::lock_guard lock(mutex_);
    items_.push_back(value);
  }

  std::optional<T> pop() {
    std::lock_guard lock(mutex_);
    if (items_.empty()) return std::nullopt;
    T v = items_.front();
    items_.pop_front();
    return v;
  }

  size_t size_estimate() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::deque<T> items_;
};

}  // namespace gg::rts
