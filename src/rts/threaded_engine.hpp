// ThreadedEngine: a real multithreaded tasking runtime modeled on MIR
// (paper §4.2) — the substrate the grain-graph profiler attaches to.
//
// Features reproduced from the paper's runtime substrate:
//  * work-stealing scheduler with Chase–Lev lock-free deques (children are
//    pushed to the front of the owner's queue; thieves steal from the back)
//  * alternative central-queue scheduler (Fig. 11d foil)
//  * parallel for-loops with static / dynamic / guided schedules, profiled
//    at per-chunk granularity with explicit book-keeping events
//  * runtime internal cutoffs: an ICC-like queue-size inline cutoff and a
//    GCC-like live-task throttle (64 x threads by default in libgomp)
//  * OMPT-superset profiling events recorded into a Trace with < a few
//    percent overhead (per-worker buffers, two clock reads per grain)
//
// Restrictions (shared with the paper's profiler, which does not support
// nested parallelism): parallel_for may only be used from the root task, and
// tasks may not be spawned from inside loop chunks.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/fault.hpp"
#include "front/front.hpp"
#include "obs/metrics.hpp"
#include "rts/central_queue.hpp"
#include "rts/chase_lev_deque.hpp"
#include "rts/supervisor.hpp"
#include "rts/work_queue.hpp"
#include "trace/recorder.hpp"
#include "trace/spool.hpp"

namespace gg::rts {

enum class SchedulerKind : u8 { WorkStealing, CentralQueue };

struct Options {
  int num_workers = 2;
  SchedulerKind scheduler = SchedulerKind::WorkStealing;
  /// Per-worker queue implementation used by the work-stealing scheduler
  /// (rts/work_queue.hpp). Ignored by SchedulerKind::CentralQueue, which
  /// keeps the single shared FIFO. QueueBackend::Central here means
  /// per-worker mutex-protected deques ("ws-locked"), not the shared queue.
  QueueBackend queue_backend = QueueBackend::ChaseLev;
  bool profile = true;
  /// Timestamp with steady_clock instead of calibrated rdtsc. The TSC is
  /// what keeps profiling overhead in the paper's couple-percent range,
  /// but per-core TSC offsets (common under virtualization) can make
  /// causally-ordered events on different workers overlap by a few
  /// thousand ns. Check harnesses that assert wall-clock invariants
  /// (critical path <= makespan in the oracle's envelope tier) set this
  /// to get a globally-truthful clock; production profiling leaves it
  /// off.
  bool strict_clock = false;
  /// GCC-like throttle: spawn executes the child inline (undeferred) when
  /// live tasks >= task_throttle_per_worker * num_workers. 0 disables.
  u64 task_throttle_per_worker = 0;
  /// ICC-like internal cutoff: spawn executes the child inline when the
  /// spawning worker's queue already holds >= inline_queue_limit tasks.
  /// 0 disables.
  u64 inline_queue_limit = 0;
  /// Fault-injection harness hook: when set, the plan's record-level faults
  /// are applied deterministically to the trace this engine produces (the
  /// damage is noted in the trace's provenance notes). Testing only.
  std::optional<fault::FaultPlan> fault_plan;
  /// Crash-safe spooling: when spool.path is set (and profiling is on),
  /// workers stream sealed epoch frames to that file as they record, and
  /// the final trace is reconstructed from the spool — one code path for
  /// clean and crashed runs. Empty path (the default) keeps the original
  /// in-memory recorder behavior bit-for-bit.
  spool::SpoolOptions spool;
  /// Runtime supervision: a watchdog thread that detects no-progress stalls
  /// (hangs, deadlocked spins) and emits a structured diagnostic before
  /// aborting-with-flush. Off by default; see rts/supervisor.hpp.
  SupervisorOptions supervisor;
  /// Self-telemetry: when set (or when GG_TELEMETRY=1 falls back to
  /// obs::process_registry()), the engine publishes scheduler counters,
  /// task-latency/queue-depth histograms and per-worker health gauges into
  /// this registry, and — when spooling — streams periodic 'T' frames so
  /// the run can be monitored live with `ggstat --follow`. Null with no
  /// env override keeps every hot path bit-identical to the seed (one
  /// untaken branch per site). Explicit per-engine registries keep future
  /// multi-instance services (ggserved) isolated.
  obs::Registry* telemetry = nullptr;
};

class ThreadedEngine final : public front::Engine {
 public:
  explicit ThreadedEngine(Options opts);
  ~ThreadedEngine() override;

  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  front::RegionId alloc_region(const std::string& name, u64 bytes,
                               front::PagePlacement placement,
                               int touch_node = -1) override;

  Trace run(const std::string& program_name, const front::TaskFn& root) override;

  const Options& options() const { return opts_; }
  bool profiling() const { return opts_.profile; }

 private:
  struct Task;
  struct Worker;
  struct LoopState;
  struct DepMap;
  struct EngineTelemetry;
  class CtxImpl;
  friend class CtxImpl;

  TimeNs now() const;

  Task* make_task(front::TaskFn body, Task* parent, StrId src,
                  TimeNs create_time, u16 create_core, bool inlined);
  void release_task(Task* task);

  void worker_main(int id);
  Task* get_task(Worker& w);
  void exec_task(Task* task, Worker& w);
  void push_task(Task* task, Worker& w);
  void help_until(Worker& w, const std::atomic<u32>& counter);

  void run_parallel_for(Worker& w, Task* root_task, const front::SrcLoc& loc,
                        u64 lo, u64 hi, const front::ForOpts& opts,
                        const front::LoopFn& body, TimeNs frag_start,
                        CtxImpl& ctx);
  void participate_in_loop(const std::shared_ptr<LoopState>& loop, Worker& w);

  // Supervision (active only when opts_.supervisor.enabled).
  void watchdog_main();
  SupervisorReport build_supervisor_report(TimeNs stalled_ns,
                                           const std::vector<u64>& window_beats);
  void register_blocked(TaskId uid, std::vector<TaskId> preds);
  void unregister_blocked(TaskId uid);

  Options opts_;
  std::vector<std::unique_ptr<Worker>> workers_;
  CentralQueue<Task*> central_queue_;
  // Shared stuttering clock for the TSDeque backend (one slot per worker so
  // stamps are comparable across deques). Null for every other backend.
  std::unique_ptr<StutteringStamp> ts_clock_;

  std::unique_ptr<TraceRecorder> recorder_;
  std::atomic<TaskId> next_task_id_{1};
  std::atomic<LoopId> next_loop_id_{1};
  std::atomic<u64> live_tasks_{0};  // deferred, not-yet-finished tasks
  // The active loop slot. A plain mutex-protected shared_ptr rather than
  // std::atomic<shared_ptr>: libstdc++'s _Sp_atomic uses a pointer-tag
  // spinlock that ThreadSanitizer cannot model, and idle-path polling is
  // not hot enough to justify suppressions.
  mutable std::mutex loop_mutex_;
  std::shared_ptr<LoopState> current_loop_;

  std::shared_ptr<LoopState> load_loop() const {
    std::lock_guard lock(loop_mutex_);
    return current_loop_;
  }
  void store_loop(std::shared_ptr<LoopState> loop) {
    std::lock_guard lock(loop_mutex_);
    current_loop_ = std::move(loop);
  }
  std::atomic<bool> shutdown_{false};
  std::atomic<bool> root_done_{false};

  // Crash-safe spooling + supervision state (null/idle when disabled).
  std::unique_ptr<spool::SpoolSink> spool_sink_;
  bool supervising_ = false;  // snapshot of opts_.supervisor.enabled per run
  std::atomic<u64> progress_{0};  // grains completed (tasks + chunks)
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  // Dependence-blocked tasks (uid -> live predecessor uids), maintained only
  // while supervising so stall dumps can show wait-for chains/cycles.
  mutable std::mutex blocked_mutex_;
  std::map<TaskId, std::vector<TaskId>> blocked_tasks_;
  std::mutex supervisor_note_mutex_;
  std::vector<std::string> supervisor_notes_;

  // Self-telemetry (null when disabled). telem_ caches metric handles for
  // the hot paths; telemetry_ready_ gates the spool's sampling callback,
  // which can fire from the flusher thread before workers exist.
  std::unique_ptr<EngineTelemetry> telem_;
  std::atomic<bool> telemetry_ready_{false};
  std::string telemetry_payload();  // live snapshot for 'T' frames
  // Per-worker heartbeat/state upkeep feeds both the watchdog and the
  // telemetry sampler; all stores are relaxed atomics, so enabling either
  // consumer costs the same and disabling both is branch-only.
  bool track_worker_health() const {
    return supervising_ || telem_ != nullptr;
  }

  std::chrono::steady_clock::time_point region_start_{};
  u64 tsc_base_ = 0;  // TSC value at region start (x86 fast timestamps)
  Task* root_task_for_loops_ = nullptr;  // parent context for chunk bodies
  front::RegionId next_region_ = 1;
  std::vector<std::string> region_notes_;
};

}  // namespace gg::rts
