// Flat-combining work-stealing deque (FCDeque).
//
// Flat combining (Hendler, Incze, Shavit & Tzafrir, SPAA'10) replaces
// per-operation fine-grained synchronization with announcement + combining:
// a thread publishes its operation as a request record on a lock-free
// publication list (a Treiber stack claimed wholesale by the combiner, so
// no per-slot registration is needed), then either becomes the combiner —
// acquiring a try-lock and applying *every* pending request against a plain
// sequential deque — or spins until some combiner has applied its request.
// One cacheline acquisition per batch amortizes the synchronization cost
// that a CAS-per-op deque pays on every operation; under contention the
// batch grows and throughput rises instead of collapsing.
//
// Operation semantics match the other backends: push/pop at the newest end
// (owner, LIFO), steal from the oldest end (FIFO). Requests are
// stack-allocated by the caller and live until the combiner marks them
// done; the combiner reads a request's link BEFORE completing it, and never
// touches it after, so the release on `done` is the record's last use.
//
// Under the deterministic schedule controller, waiting threads spin at
// PreemptPoint::Idle — a voluntary yield the controller can always switch
// at, even with the preemption budget exhausted — so combining can never
// livelock a serialized schedule. No preemption point sits inside the
// combiner's critical section for the same reason preempt points sit
// before the central queue's lock. The GG_MUT_* block is a compile-time
// seeded bug for the mutation smoke-test; never enabled in production.
#pragma once

#include <atomic>
#include <deque>
#include <optional>

#include "common/types.hpp"
#include "rts/preempt.hpp"

namespace gg::rts {

template <typename T>
class FCDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "requests copy values; store pointers or handles");

 public:
  FCDeque() = default;
  FCDeque(const FCDeque&) = delete;
  FCDeque& operator=(const FCDeque&) = delete;

  /// Owner-only by convention (any thread is actually safe — everything is
  /// combined); publishes a value at the newest end.
  void push(T value) {
    preempt_point(PreemptPoint::DequePush);
    Request req(Op::Push, value);
    announce(req);
    // Publish-class point: wakes sleep-set-parked thieves, exactly like the
    // bottom publish in the Chase-Lev push.
    preempt_point(PreemptPoint::DequePushPublish);
    await(req);
  }

  /// Owner: takes the most recently pushed value (LIFO).
  std::optional<T> pop(bool* lost_race = nullptr) {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::DequePopReserve);
    Request req(Op::Pop, T{});
    announce(req);
    await(req);
    return req.result;
  }

  /// Thief: takes the oldest value (FIFO).
  std::optional<T> steal(bool* lost_race = nullptr) {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::DequeStealLoad);
    Request req(Op::Steal, T{});
    announce(req);
    await(req);
    return req.result;
  }

  /// Approximate number of queued items (any thread).
  size_t size_estimate() const {
    return size_hint_.load(std::memory_order_relaxed);
  }

  bool empty_estimate() const { return size_estimate() == 0; }

  /// The sequential deque never reallocates visibly; growth is a
  /// non-event for this backend.
  u64 grow_count() const { return 0; }

  /// Failed combiner-lock acquisitions (any thread): each one is a batch
  /// formed under contention.
  u64 contention_events() const {
    return contention_.load(std::memory_order_relaxed);
  }

  /// Requests applied minus combining batches: how much synchronization
  /// flat combining amortized away (diagnostics for the bench).
  u64 combined_ops() const {
    return combined_.load(std::memory_order_relaxed);
  }

 private:
  enum class Op : u8 { Push, Pop, Steal };

  struct Request {
    Request(Op o, T v) : op(o), value(v) {}
    const Op op;
    const T value;
    std::optional<T> result;
    std::atomic<bool> done{false};
    std::atomic<Request*> next{nullptr};
  };

  /// Treiber-stack publication: one release CAS, no registration.
  void announce(Request& req) {
    Request* head = published_.load(std::memory_order_relaxed);
    do {
      req.next.store(head, std::memory_order_relaxed);
    } while (!published_.compare_exchange_weak(head, &req,
                                               std::memory_order_release,
                                               std::memory_order_relaxed));
  }

  /// Spin until a combiner (possibly this thread) has applied `req`.
  void await(Request& req) {
    while (!req.done.load(std::memory_order_acquire)) {
      preempt_point(PreemptPoint::DequeCombine);
      if (!lock_.exchange(true, std::memory_order_acquire)) {
        combine();
        lock_.store(false, std::memory_order_release);
        continue;  // re-check: our request was in some drained batch
      }
      contention_.fetch_add(1, std::memory_order_relaxed);
      // Someone else is combining; a voluntary yield keeps the serialized
      // schedule controller free to run the combiner.
      preempt_point(PreemptPoint::Idle);
    }
  }

  /// Combiner (lock held): claim the whole publication list, apply every
  /// request against the sequential deque in announcement order.
  void combine() {
    Request* batch = published_.exchange(nullptr, std::memory_order_acquire);
    // The Treiber stack yields newest-first; reverse so the batch applies
    // in the order the operations were announced.
    Request* ordered = nullptr;
    size_t batch_size = 0;
    while (batch != nullptr) {
      Request* next = batch->next.load(std::memory_order_relaxed);
      batch->next.store(ordered, std::memory_order_relaxed);
      ordered = batch;
      batch = next;
      ++batch_size;
    }
    if (batch_size > 1) {
      combined_.fetch_add(batch_size - 1, std::memory_order_relaxed);
    }
    while (ordered != nullptr) {
      Request* req = ordered;
      // Read the link BEFORE completing: the moment `done` is released the
      // requester may destroy the record.
      ordered = req->next.load(std::memory_order_relaxed);
#ifdef GG_MUT_FC_DROP_COMBINE
      // Seeded bug: the combiner's slot bookkeeping loses every third push
      // — the request is marked done without ever being applied, so the
      // announced value silently vanishes from the deque.
      if (req->op == Op::Push && ++mut_drop_tick_ % 3 == 0) {
        req->done.store(true, std::memory_order_release);
        continue;
      }
#endif
      apply(*req);
      req->done.store(true, std::memory_order_release);
    }
  }

  void apply(Request& req) {
    switch (req.op) {
      case Op::Push:
        items_.push_back(req.value);
        break;
      case Op::Pop:
        if (!items_.empty()) {
          req.result = items_.back();
          items_.pop_back();
        }
        break;
      case Op::Steal:
        if (!items_.empty()) {
          req.result = items_.front();
          items_.pop_front();
        }
        break;
    }
    size_hint_.store(items_.size(), std::memory_order_relaxed);
  }

  std::atomic<Request*> published_{nullptr};
  std::atomic<bool> lock_{false};
  std::deque<T> items_;  // combiner-only, guarded by lock_
  std::atomic<size_t> size_hint_{0};
  std::atomic<u64> contention_{0};
  std::atomic<u64> combined_{0};
#ifdef GG_MUT_FC_DROP_COMBINE
  u64 mut_drop_tick_ = 0;  // combiner-only, guarded by lock_
#endif
};

}  // namespace gg::rts
