// Obstruction-free unbounded work-stealing deque (OFDeque).
//
// Design (after the unbounded obstruction-free deques of the Herlihy/
// Luchangco/Moir lineage, simplified for the single-owner runtime setting):
// values live in an append-only chain of fixed-size segments; each cell
// carries an atomic state {Empty, Ready, Taken}. The owner publishes a cell
// by writing the value and then releasing state=Ready; claiming — by the
// owner from the newest end (LIFO) or by thieves from the oldest end
// (FIFO) — is a single CAS Ready->Taken on the cell itself, so no two
// claimants can ever receive the same value, and a stalled thread can only
// delay, never block, the others: there is no shared top/bottom CAS to
// fight over, only per-cell claims (obstruction freedom).
//
// Cells are never reused (indices grow monotonically), which rules out ABA
// on the state byte by construction, and segments are retained until
// destruction — the same retire-nothing simplification the Chase-Lev deque
// makes for its grown buffers, with growth linear in pushes rather than
// logarithmic. The runtime allocates a Task object per spawn anyway, so
// one cell per push is the same order of traffic.
//
// Index hints: `bottom_` is the next index the owner writes (monotonic);
// `top_hint_` is a lower bound on the oldest possibly-Ready index, advanced
// cooperatively by thieves that observe Taken cells; `scan_top_` is an
// owner-private cursor that skips the owner's own consumed suffix so
// repeated pops stay amortized O(1). All are hints — per-cell state is the
// ground truth — so stale loads cost extra scanning, never correctness.
//
// Preemption points (rts/preempt.hpp) mark every publish/claim step so the
// deterministic schedule controller can explore interleavings, and the
// GG_MUT_* block is a compile-time seeded bug for the mutation smoke-test;
// never enabled in production builds.
#pragma once

#include <atomic>
#include <optional>

#include "common/check.hpp"
#include "common/types.hpp"
#include "rts/preempt.hpp"

namespace gg::rts {

template <typename T>
class OFDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "cells are raw atomics; store pointers or handles");

 public:
  explicit OFDeque(size_t segment_capacity = 64)
      : segment_capacity_(segment_capacity < 2 ? 2 : segment_capacity) {
    Segment* seg = new Segment(0, segment_capacity_, nullptr);
    first_.store(seg, std::memory_order_release);
    tail_seg_ = seg;
  }

  OFDeque(const OFDeque&) = delete;
  OFDeque& operator=(const OFDeque&) = delete;

  ~OFDeque() {
    Segment* s = first_.load(std::memory_order_acquire);
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_acquire);
      delete s;
      s = next;
    }
  }

  /// Owner-only: publishes a value at the newest end.
  void push(T value) {
    preempt_point(PreemptPoint::DequePush);
    const i64 b = bottom_.load(std::memory_order_relaxed);
    Cell* cell = owner_cell_for(b);
#ifdef GG_MUT_OF_PUBLISH_BEFORE_WRITE
    // Seeded bug: the Ready publish (and the bottom bump) is reordered
    // before the value write — the missing release edge made visible in
    // program order. A thief scheduled in the window claims the cell and
    // reads the never-written slot (a bogus zero), and the owner's late
    // write lands in a Taken cell nobody looks at again (the value is
    // lost).
    cell->state.store(kReady, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_release);
    preempt_point(PreemptPoint::DequePushPublish);
    cell->value.store(value, std::memory_order_relaxed);
#else
    cell->value.store(value, std::memory_order_relaxed);
    preempt_point(PreemptPoint::DequePushPublish);
    // Release on the state publish orders the value write before any
    // claimant's acquire of the state.
    cell->state.store(kReady, std::memory_order_release);
    bottom_.store(b + 1, std::memory_order_release);
#endif
    scan_top_ = b;
  }

  /// Owner-only: claims the newest Ready cell (LIFO). Sets `lost_race` iff
  /// a thief won a claim CAS this pop attempted.
  std::optional<T> pop(bool* lost_race = nullptr) {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::DequePopReserve);
    const i64 t = top_hint_.load(std::memory_order_acquire);
    i64 i = scan_top_;
    while (i >= t) {
      Cell& cell = owner_cell_at(i);
      u8 st = cell.state.load(std::memory_order_acquire);
      if (st == kTaken) {
        // Consumed suffix: never rescanned (the cursor only moves down
        // between pushes), keeping drains amortized O(1) per pop.
        scan_top_ = --i;
        continue;
      }
      GG_CHECK(st == kReady);  // owner never sees Empty below its bottom
      preempt_point(PreemptPoint::DequePopCas);
      if (cell.state.compare_exchange_strong(st, kTaken,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        scan_top_ = i - 1;
        return cell.value.load(std::memory_order_relaxed);
      }
      // A thief claimed it between our load and CAS; it is Taken now.
      if (lost_race) *lost_race = true;
      contention_.fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }

  /// Thief: claims the oldest Ready cell (FIFO). Scans up from the top
  /// hint, helping advance it over Taken prefixes. A lost claim CAS sets
  /// `lost_race` and moves on to the next cell — a stalled competitor
  /// never forces a retry loop on the same cell.
  std::optional<T> steal(bool* lost_race = nullptr) {
    if (lost_race) *lost_race = false;
    preempt_point(PreemptPoint::DequeStealLoad);
    i64 t = top_hint_.load(std::memory_order_acquire);
    const i64 b = bottom_.load(std::memory_order_acquire);
    Segment* seg = segment_for(t);
    for (i64 i = t; i < b; ++i) {
      while (seg != nullptr &&
             i >= seg->base + static_cast<i64>(seg->capacity)) {
        seg = seg->next.load(std::memory_order_acquire);
      }
      if (seg == nullptr) break;  // next segment not linked in yet
      Cell& cell = seg->cells[static_cast<size_t>(i - seg->base)];
      u8 st = cell.state.load(std::memory_order_acquire);
      if (st == kTaken) {
        if (i == t) {
          // Help advance the hint over the consumed prefix.
          top_hint_.compare_exchange_strong(t, i + 1,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire);
          t = i + 1;
        }
        continue;
      }
      if (st == kEmpty) break;  // raced past the published range
      preempt_point(PreemptPoint::DequeStealCas);
      if (cell.state.compare_exchange_strong(st, kTaken,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        return cell.value.load(std::memory_order_relaxed);
      }
      if (lost_race) *lost_race = true;
      contention_.fetch_add(1, std::memory_order_relaxed);
    }
    return std::nullopt;
  }

  /// Approximate number of live items (any thread). Over-counts cells
  /// claimed between the hints; an estimate, like Chase-Lev's.
  size_t size_estimate() const {
    const i64 b = bottom_.load(std::memory_order_relaxed);
    const i64 t = top_hint_.load(std::memory_order_relaxed);
    return b > t ? static_cast<size_t>(b - t) : 0;
  }

  bool empty_estimate() const { return size_estimate() == 0; }

  /// Segments allocated past the first (the unbounded-growth analogue of
  /// Chase-Lev's resize count). Owner-written, any-thread readable.
  u64 grow_count() const { return grows_.load(std::memory_order_relaxed); }

  /// Claim CASes lost to a competing claimant (any thread).
  u64 contention_events() const {
    return contention_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr u8 kEmpty = 0;
  static constexpr u8 kReady = 1;
  static constexpr u8 kTaken = 2;

  struct Cell {
    std::atomic<u8> state{kEmpty};
    std::atomic<T> value{};
  };

  struct Segment {
    Segment(i64 base_, size_t cap, Segment* prev_)
        : base(base_), capacity(cap), cells(new Cell[cap]), prev(prev_) {}
    ~Segment() { delete[] cells; }
    const i64 base;
    const size_t capacity;
    Cell* const cells;
    std::atomic<Segment*> next{nullptr};
    Segment* const prev;  // owner-only back-link for pop scans
  };

  // Owner-only: cell for index `i`, allocating a new tail segment when `i`
  // is one past the chain.
  Cell* owner_cell_for(i64 i) {
    Segment* seg = tail_seg_;
    if (i >= seg->base + static_cast<i64>(seg->capacity)) {
      Segment* fresh = new Segment(
          seg->base + static_cast<i64>(seg->capacity), segment_capacity_, seg);
      grows_.fetch_add(1, std::memory_order_relaxed);
      // Publish the link last so thieves only ever traverse fully
      // constructed segments.
      seg->next.store(fresh, std::memory_order_release);
      tail_seg_ = fresh;
      seg = fresh;
    }
    return &seg->cells[static_cast<size_t>(i - seg->base)];
  }

  // Owner-only: cell at an already-published index (pop scans).
  Cell& owner_cell_at(i64 i) {
    Segment* seg = tail_seg_;
    while (i < seg->base) seg = seg->prev;
    return seg->cells[static_cast<size_t>(i - seg->base)];
  }

  // Any thread: segment containing index `i`, or null past the chain.
  Segment* segment_for(i64 i) const {
    Segment* seg = first_.load(std::memory_order_acquire);
    while (seg != nullptr &&
           i >= seg->base + static_cast<i64>(seg->capacity)) {
      seg = seg->next.load(std::memory_order_acquire);
    }
    return seg;
  }

  const size_t segment_capacity_;
  std::atomic<Segment*> first_{nullptr};
  Segment* tail_seg_ = nullptr;  // owner-only
  i64 scan_top_ = -1;            // owner-only: newest maybe-unconsumed index
  std::atomic<i64> top_hint_{0};
  std::atomic<i64> bottom_{0};
  std::atomic<u64> grows_{0};
  std::atomic<u64> contention_{0};
};

}  // namespace gg::rts
